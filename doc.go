// Package repro is a from-scratch Go reproduction of "An Architecture
// for Archiving and Post-Processing Large, Distributed, Scientific Data
// Using SQL/MED and XML" (Papiani, Wason, Nicole; EDBT 2000) — the
// EASIA system: a web-based active archive where multi-gigabyte
// simulation results stay on the file servers that generated them,
// managed through SQL/MED DATALINKs, while a schema-derived XML user
// interface specification (XUIS) drives searching, browsing and
// server-side post-processing.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure. The library
// lives under internal/ (core is the archive facade); cmd/ holds the
// runnable daemons and tools; examples/ holds runnable walkthroughs.
//
// # The metadata engine's prepare/cache layer
//
// All archive traffic funnels through the embedded SQL/MED engine
// (internal/sqldb), so its per-statement cost bounds the whole system.
// Two mechanisms keep that cost down:
//
//   - Prepared statements and a plan cache. DB.Prepare(sql) returns a
//     *sqldb.Stmt whose parsed AST and — for SELECTs — bound plan
//     (resolved table/column slots, expanded projection) are reused
//     across executions. An internal LRU keyed by SQL text backs
//     Prepare and is consulted by plain Exec/Query too, so every caller
//     gets statement caching for free. Any DDL bumps a schema epoch;
//     plans record the epoch they were bound at and transparently
//     re-bind when it moves, so a stale plan is never served.
//
//   - A concurrent read path. The engine lock is an RWMutex: SELECTs
//     (Query, Stmt.Query) share a read lock and run in parallel, while
//     DML, DDL, explicit transactions and checkpoints take it
//     exclusively. Query results are fully materialised copies, valid
//     after the lock is released and concurrent with later writes.
//
// The hot internal callers hold prepared statements: QBE searches and
// FK substitution (internal/core/qbe.go), row-by-key lookups, the
// link-control column scan behind download-URL minting and startup
// reconciliation (internal/core/archive.go), and — through those — the
// webui query/browse/result handlers. BenchmarkAblation_PlanCache and
// BenchmarkParallelQuery in bench_test.go track both mechanisms.
package repro
