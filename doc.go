// Package repro is a from-scratch Go reproduction of "An Architecture
// for Archiving and Post-Processing Large, Distributed, Scientific Data
// Using SQL/MED and XML" (Papiani, Wason, Nicole; EDBT 2000) — the
// EASIA system: a web-based active archive where multi-gigabyte
// simulation results stay on the file servers that generated them,
// managed through SQL/MED DATALINKs, while a schema-derived XML user
// interface specification (XUIS) drives searching, browsing and
// server-side post-processing.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure. The library
// lives under internal/ (core is the archive facade); cmd/ holds the
// runnable daemons and tools; examples/ holds runnable walkthroughs.
//
// # The metadata engine's prepare/cache layer
//
// All archive traffic funnels through the embedded SQL/MED engine
// (internal/sqldb), so its per-statement cost bounds the whole system.
// Four mechanisms keep that cost down:
//
//   - Prepared statements and a plan cache. DB.Prepare(sql) returns a
//     *sqldb.Stmt whose parsed AST and — for SELECTs — bound plan
//     (resolved table/column slots, expanded projection) are reused
//     across executions. An internal LRU keyed by SQL text backs
//     Prepare and is consulted by plain Exec/Query too, so every caller
//     gets statement caching for free. Any DDL bumps a schema epoch;
//     plans record the epoch they were bound at and transparently
//     re-bind when it moves, so a stale plan is never served.
//
//   - A concurrent read path. SELECTs (Query, Stmt.Query) share the
//     engine's read lock and run in parallel — against each other and,
//     through MVCC snapshot reads, against sharded single-table DML
//     (see "Concurrency model" below). Query results are fully
//     materialised copies, valid after the lock is released and
//     concurrent with later writes.
//
//   - A compact value layout. sqltypes.Value is a 32-byte tagged union
//     (kind + flags byte, one 64-bit scalar word shared by INTEGER/
//     DOUBLE/BOOLEAN/TIMESTAMP, and a string header shared by text,
//     DATALINK and BLOB payloads — timestamps encode as UTC unix
//     nanoseconds, with instants outside 1678–2262 kept marshalled
//     behind the far-time flag). Rows are copied by value throughout
//     the SELECT path, so the shrink from the previous 112-byte struct
//     (~27% of SELECT CPU in duffcopy) cuts both scan time and result
//     materialisation B/op (BenchmarkAblation_ValueLayout; layout
//     invariants documented in internal/sqltypes/value.go).
//
//   - Secondary indexes with an access-path planner. CREATE INDEX name
//     ON table (col, ...) USING {HASH|ORDERED} builds either an O(1)
//     equality index or an ordered B+tree (the default) over a
//     canonical total-order key encoding of sqltypes values; composite
//     indexes concatenate the per-column encodings, whose terminator
//     scheme makes tuple order equal byte order. The planner matches
//     WHERE conjuncts against each index's leading prefix: a hash
//     index serves full-tuple equality, an ordered index serves any
//     equality prefix plus one range/BETWEEN/IS [NOT] NULL predicate
//     on the next column, and ORDER BY keys that walk the index
//     columns after the (constant) equality prefix — all in one
//     direction — are emitted in order with no sort (LIMIT stops the
//     scan early). The choice is cached in the prepared plan and
//     re-made when DDL moves the schema epoch. Index paths only
//     narrow the candidate set — the residual predicate is always
//     re-applied — so the returned row set is identical to a full
//     scan's (property-tested in internal/sqldb/planner_test.go and
//     composite_test.go; ablated by BenchmarkAblation_OrderedIndex and
//     BenchmarkAblation_CompositeIndex). One documented ordering
//     caveat: integers beyond 2^53 that share a float64 key image (see
//     key.go) sort in insertion order within the collision when ORDER
//     BY is served by the index. The B+tree merges emptied leaves away
//     on delete (merge-at-empty, no further rebalancing), so
//     delete-heavy tables do not accumulate hollow nodes.
//
//   - A fold-based aggregation pipeline. Every COUNT/SUM/AVG/MIN/MAX
//     call gets an accumulator slot and rows fold into per-group
//     accumulator structs (internal/sqldb/agg.go); single-table
//     aggregates fold rows as they stream out of the scan and never
//     retain them, while multi-table aggregates fold the joined row
//     set the join executor materialises (grouped state stays
//     O(groups), the join product does not).
//     Grouping picks the cheapest strategy the plan allows: when the
//     chosen ordered index emits rows clustered by the GROUP BY
//     columns (leading-prefix match with equality-constant skipping,
//     or an index selected expressly for the GROUP BY), groups close
//     one at a time with O(groups) state and no hash table
//     ("group-ordered" in Stmt.AccessPath); otherwise groups hash on
//     the canonical tuple encoding of their keys ("hash-agg"), which
//     keeps NULL, '' and 0 vs '0' in distinct groups and allocates a
//     key string only when a group first appears. When the path is
//     additionally residual-free and every aggregate argument is an
//     index column, whole groups fold from the index KEYS — COUNT adds
//     the row-ID list length, SUM adds the decoded value once per row
//     it stands for (identical double rounding), MIN/MAX compare
//     the decoded component — reading zero heap rows (" index-only",
//     asserted via DB.HeapRowReads); keys in the far-integer collision
//     window fall back to fetching just that key's rows. The legacy
//     materialise-then-group executor survives behind
//     DB.SetLegacyAggregation as the ablation baseline and the oracle
//     the aggregation property tests compare all strategies against
//     (BenchmarkAblation_GroupPushdown: ~6x time and ~56x B/op on a
//     100k-row, 400-group rollup).
//
//   - Index-only aggregates. When a single-table COUNT/MIN/MAX query's
//     WHERE clause is consumed exactly by the chosen path (no residual
//     conjuncts — tracked at plan time) and the probes are exact at
//     execution time (no far-integer key collisions), COUNT is
//     answered by summing row-ID list lengths under the exact key
//     range — zero heap rows read, asserted via DB.HeapRowReads — and
//     MIN/MAX decode the answer straight off the boundary key for
//     every kind whose canonical encoding round-trips (integers inside
//     ±2^53, text, TIMESTAMP, BOOLEAN, BLOB, DATALINK — see the
//     decoding notes in key.go), materialising the boundary key's rows
//     only for ambiguous keys (far integers, a DOUBLE ±0.0). Inexact
//     probes fall back to the ordinary residual-checked executor.
//
//   - Index nested-loop and hash joins. Equality conjuncts of the form
//     inner.col = expr(outer tables) in ON or WHERE are matched against
//     the inner table's indexes; each accumulated outer row then probes
//     the index instead of re-scanning the inner heap, with the ON
//     condition still applied to every candidate and the WHERE applied
//     after the join (identical results, property-tested against the
//     cross-product path in join_test.go). When equi-conjuncts exist
//     but NO index covers them, the executor builds a hash table over
//     the probed table once — keyed by the same canonical encoding,
//     NULL keys never matching — and probes it per outer row, so an
//     unindexed equi-join costs O(|inner| + |outer|) instead of the
//     cross product (BenchmarkAblation_HashJoin: ~200x on 1k×1k). For
//     a two-table inner join the executor picks the probed side at run
//     time — the indexed table, the larger of two indexed tables, or
//     the smaller side for the hash build — so the smaller table
//     drives the outer loop. Join plans live in the cached selectPlan
//     under the same schema-epoch invalidation
//     (BenchmarkAblation_JoinPlan: ≥100x on a 1k×1k equi-join).
//
//   - WAL group commit. Committers stage their redo frames under the
//     writer lock (log order = commit order) and wait for durability
//     after releasing it; the first waiter flushes the whole pending
//     batch with one fsync. Concurrent commit load therefore pays ~one
//     fsync per flush window instead of one per transaction
//     (BenchmarkAblation_GroupCommit). A transaction that stages
//     nothing still acknowledges only after the state it could have
//     observed in the group-commit visibility window is durable.
//
// # Concurrency model
//
// The engine is multi-version: every heap row is a chain of versions
// stamped with the commit timestamps that created and (when
// overwritten or deleted) ended them, and secondary-index postings
// carry the same stamps. The rules:
//
//   - Visibility. A statement run under the shared read lock pins a
//     snapshot — the highest published commit stamp — at statement
//     start, and sees exactly the versions whose begin stamp is
//     committed and ≤ the snapshot and whose end stamp is absent,
//     uncommitted, or > the snapshot. Writers install new versions and
//     stamp old ones without ever blocking readers: an open scan keeps
//     answering from its snapshot while later transactions commit.
//     Statements inside an explicit transaction (Tx, ExecScript) run
//     under the exclusive lock in latest-state mode, so they see their
//     own uncommitted writes — explicit transactions remain
//     serialisable. Commit stamps are allocated in WAL-stage order
//     under one commit mutex, so on-disk order, stamp order and
//     visibility order always agree, and crash replay reassigns stamps
//     transaction-by-transaction in the same order.
//
//   - Sharded writes. Autocommit single-table DML whose table has no
//     foreign keys in either direction and no DATALINK columns commits
//     under the shared engine lock plus a per-table write latch:
//     writers on different tables proceed concurrently through the
//     same WAL group-commit path, and readers are never blocked by
//     either. Everything else — DDL, FK-bearing DML, link-control
//     writes, explicit transactions — takes the engine lock
//     exclusively (the DDL/global barrier), which also guarantees no
//     statement snapshot is open while the catalogue changes.
//
//   - Vacuum. Dead versions (and their index postings) accumulate
//     until reclaimed: DB.Vacuum on demand, or the background vacuum
//     once the dead-version debt crosses DB.AutoVacuumDeadRows
//     (default 16384; 0 disables). Vacuum runs under the global
//     barrier with the WAL fenced, so every stamp is resolved and no
//     snapshot is live; because readers hold the read lock for the
//     whole statement, "older than the oldest live snapshot" reduces
//     to "not the current committed version", and each table folds to
//     exactly one version per live row, with hash and B+tree indexes
//     swept of dead postings (emptied leaves merge away). Checkpoints
//     vacuum as a side effect, since the snapshot they write keeps
//     only current rows. TestMVCCSnapshotIsolation, TestVacuumReclaim
//     and TestAutoVacuum pin these contracts down; BenchmarkParallelQuery
//     tracks read scaling and the 90/10 mixed workload.
//
// # Result pipeline and caching
//
// SELECT results flow through an arena/columnar pipeline rather than a
// per-row make on the heap:
//
//   - Arena ownership. Every statement carves its result rows from a
//     per-statement bump allocator (rowArena) backed by pooled
//     fixed-size Value chunks. The returned Rows owns the arena:
//     Rows.Close releases every chunk back to the pool wholesale — one
//     pool round-trip per statement instead of one allocation per row —
//     after which the row slices must not be touched. Rows.Detach
//     copies the rows out into plain heap memory first, so detached
//     results stay valid indefinitely (the contract long-lived callers
//     rely on); Close is idempotent and nil-safe either way.
//     Intermediate join rows live in a separate scratch arena released
//     when the statement returns — projection always copies surviving
//     values into the result arena, so no scratch reference escapes.
//     Single-table unsorted projections additionally batch rows through
//     a columnar buffer (colBatch) and fill column-at-a-time before
//     transposing into arena rows (BenchmarkAblation_Arena tracks the
//     B/op and allocs/op win; DB.SetLegacyResultAlloc restores the
//     per-row make path as the ablation baseline, and
//     TestArenaLegacyEquivalence proves the two paths row-identical).
//
//   - Result cache. DB.SetResultCache(bytes) arms an opt-in LRU of
//     complete SELECT results keyed by statement text plus bound
//     arguments (the canonical key.go encoding, sharing its documented
//     far-integer collision window). An entry records the schema epoch
//     and the snapshot it was computed at; a lookup serves it only when
//     the epoch still matches, every referenced table's last committed
//     write stamp is ≤ the entry's snapshot, and the reader's snapshot
//     is ≥ it — so a cached read can never observe staler data than a
//     fresh execution (TestResultCacheConcurrentNoStaleReads). Commits
//     eagerly drop entries for the tables they touched and DDL flushes
//     the cache with the epoch bump; both are reclamation, not the
//     correctness mechanism — the serve-time stamp check is. Statements
//     with volatile functions (NOW, CURRENT_TIMESTAMP) bypass the
//     cache, explicit-transaction reads never consult it (they run in
//     latest-state mode), and a statement that fails or is canceled
//     mid-fill publishes nothing. Entries are byte- and row-capped,
//     charged against Options.MemoryBudget while resident (refunded on
//     eviction), and observable via the sqldb_result_cache_* metrics,
//     the " cached" AccessPath suffix and the trace cache:"hit|miss|
//     bypass" tag (BenchmarkAblation_OpCache tracks the repeated-query
//     win).
//
// # Durability and recovery contract
//
// All storage-tier I/O goes through internal/iofault: an FS abstraction
// whose production implementation is the real disk and whose test
// implementation scripts faults in the netsim style — per-path fsync
// failures, short writes, and crash points after which every operation
// fails and only a configurable torn prefix of the in-flight write
// persists. The contract it enforces, verified by a randomized
// crash-recovery soak (TestCrashRecoverySoak: seeded crash schedules
// against a committed-transaction oracle) plus a corruption corpus:
//
//   - An acknowledged commit survives any crash. Acknowledgement means
//     the WAL frames passed fsync; replay applies exactly the committed
//     transactions, in commit order.
//   - A failed fsync poisons the database (ErrPoisoned). After
//     fsyncgate, a retry that "succeeds" proves nothing — the kernel
//     may have dropped the dirty pages. Every in-flight and subsequent
//     commit fails, the failed batch is unwound from memory in reverse
//     commit order, and the log is truncated back to its last-synced
//     length so a transaction reported as rolled back cannot resurrect
//     on replay. Close skips the checkpoint; reopening recovers from
//     the last durable state.
//   - Recovery classifies the log tail instead of trusting it. An
//     incomplete or garbage final region (crash mid-append) is truncated
//     and reported (RecoveryInfo); a bad frame with intact frames after
//     it is mid-log corruption of once-durable data, and Open refuses
//     with ErrWALCorrupt rather than silently dropping committed
//     transactions (Options.Salvage opens with the intact prefix,
//     explicitly). Snapshots carry a whole-file checksum verified
//     before any field is trusted (ErrSnapshotCorrupt on mismatch) and
//     rotate by tmp + fsync + rename + parent-dir fsync.
//   - Checkpoints are crash-safe at every step. Each snapshot carries a
//     generation and each log an epoch frame; a crash between snapshot
//     rename and log rotation leaves a stale log that replay discards
//     by the epoch check, and any failure after the rename poisons the
//     database so no commit lands in a log that a restart would skip.
//
// The same WriteFileAtomic discipline covers the dlfs link registry
// (with unlink tombstones, below) and the cluster's repair-state
// checkpoint, whose failures are counted in Stats rather than dropped.
//
// # The replicated DATALINK file-server tier
//
// The paper's files live on distributed file servers; one crashed
// daemon must not make its files unreadable or wedge link-control 2PC.
// internal/dlfs/cluster groups several Data Links File Managers behind
// one logical DATALINK host as a ReplicaSet: rendezvous-hash placement
// puts every file on ReplicationFactor members (default 2), Prepare/
// Commit/EnsureLinked/Put fan out to the placed replicas, Open/Stat
// fail over in placement order with token checks intact, and a health
// checker (periodic Ping probe + consecutive-failure circuit breaker,
// manual MarkDown/MarkUp) keeps routing away from dead members. A down
// replica never blocks a link or a read; the divergence it accrues is
// recorded and an anti-entropy pass (Repair — run by the background
// loop, by core's Reconcile, and on demand) re-replicates files, link
// state and staged commits once the member rejoins, last writer
// winning by event time: unlinks leave TTL-bounded tombstones in the
// registry itself, so a member that slept through an unlink cannot
// resurrect the stale link via the registry union. A write that
// reaches every placed replica supersedes any stale repair verdict for
// its path, and with Config.StatePath (dlfsd -state) the repair queue
// — removal tombstones included — survives a gateway restart. Abort failures are no longer dropped anywhere in the stack:
// they surface through Coordinator.Abort/Tx.Rollback and are queued
// for retry so a rolled-back prepare cannot leak reserved files on a
// server that missed the abort. See internal/dlfs/README.md for the
// placement/consistency details and cmd/dlfsd for the gateway
// deployment mode; BenchmarkAblation_Failover and
// BenchmarkReplicatedPut track the tier's read/write costs.
//
// The hot internal callers hold prepared statements: QBE searches and
// FK substitution (internal/core/qbe.go), row-by-key lookups, the
// link-control column probe behind download-URL minting and startup
// reconciliation (internal/core/archive.go), and — through those — the
// webui query/browse/result handlers. The turbulence schema
// (internal/core/schema.go) picks index kinds per query shape: HASH on
// the SIMULATION_KEY browse columns, ORDERED on TIMESTEP/CREATED range
// columns and on the DATALINK columns, so the DLVALUE(?) equality probe
// and Reconcile's IS NOT NULL scan are both index-served; the composite
// (SIMULATION_KEY, TIMESTEP) index serves the compound "this run, this
// timestep window" shape with one prefix+range scan, answers its
// COUNT/MIN/MAX forms index-only, and gives SIMULATION_KEY equi-joins
// an index nested-loop probe. The webui /status page surfaces the
// replicated tier's health (replica-set members, open breakers, paths
// awaiting re-replication) via core.Archive.HostStatuses.
//
// # Cancellation, deadlines, and overload
//
// Every statement entry point has a context-aware form —
// DB.QueryContext / DB.ExecContext and the Stmt equivalents — and
// every streaming loop in the executor (heap and index scans, fold
// aggregation, hash-join build and probe, top-k, sort, DML row loops)
// polls a per-statement interrupt on an amortised stride, so
// cancelling the context or exceeding the statement deadline (the
// per-call context deadline, or the DB.SetStatementTimeout default
// applied when a statement arrives without one) surfaces
// sqldb.ErrCanceled / sqldb.ErrDeadlineExceeded within milliseconds
// without poisoning the engine: reads hold no state beyond their
// latch, and a cancelled DML unwinds its MVCC intents exactly like a
// constraint failure. The cancellation boundary is the WAL stage —
// the interrupt is checked one last time immediately before the
// commit is staged; once staged, the statement commits and reports
// success (the same at-most-once boundary a crash recovery exposes).
//
// Overload is governed by two budgets. Options.MaxConcurrentStatements
// caps simultaneously executing statements with a fair admission
// semaphore and a bounded wait queue (Options.AdmissionQueue, default
// 4x); a statement arriving with the queue full is shed immediately
// with ErrAdmissionRejected rather than piling latency onto everyone
// else. Options.MemoryBudget bounds the bytes statements may retain
// concurrently — hash-aggregation groups, join hash tables, sort keys
// and materialised result rows are charged against it, and a
// statement that would exceed the budget fails with ErrMemoryBudget
// instead of taking the process down. DB.Close drains admitted
// statements for a grace period (DB.CloseGrace) before tearing down
// the WAL, so
// shutdown is a drain, not an amputation; the easiad and dlfsd
// daemons translate SIGTERM into exactly that drain. The remote file
// tier applies the same discipline: dlfs.Client RPCs honour a context
// (WithContext) and per-attempt deadline (SetRPCTimeout), idempotent
// RPCs can retry with jittered exponential backoff (SetRetry), and
// cluster fan-out reads stop failing over once the caller's context
// ends (ReplicaSet.OpenContext/StatContext, cluster.Config.RPCTimeout).
//
// # Observability
//
// internal/telemetry is the dependency-free metrics core the whole
// stack reports through: sharded atomic counters, gauges (including
// scrape-time callbacks), and log-bucketed latency histograms with
// p50/p95/p99 summaries, collected in named registries with optional
// labels and rendered in Prometheus text exposition format
// (Registry.WritePrometheus / Handler; telemetry.ContentType). A nil
// metric handle no-ops, so instrumented code never checks whether
// telemetry is wired.
//
// The engine registers its registry at Open — DB.Metrics /
// DB.MetricsSnapshot — with families covering the commit pipeline
// (sqldb_wal_fsync_ns, sqldb_wal_group_commit_batch,
// sqldb_wal_poison_total, sqldb_commits_total), the plan cache
// (sqldb_plan_cache_{hits,misses}_total, sqldb_plan_cache_entries),
// contention (sqldb_latch_wait_ns for the sharded per-table latch,
// sqldb_barrier_wait_ns for the exclusive barrier), and MVCC hygiene
// (sqldb_vacuum_pass_ns, sqldb_vacuum_passes_total,
// sqldb_vacuum_rows_reclaimed_total, sqldb_autovacuum_triggers_total,
// sqldb_dead_rows, sqldb_snapshot_age_ns), and statement governance
// (sqldb_statements_{canceled,timed_out,shed}_total,
// sqldb_admission_wait_ns, sqldb_admission_queue_depth,
// sqldb_mem_budget_rejected_total, sqldb_mem_budget_bytes_in_use).
// The replicated file tier
// registers dlfs_cluster_* counters and histograms on the registry
// passed via cluster.Config.Metrics (failovers, breaker trips, 2PC
// partial commits/writes, put latency, anti-entropy repair totals and
// the pending-repair gauge); cluster.Stats remains as a thin view.
//
// Per-statement execution tracing upgrades Stmt.AccessPath into
// EXPLAIN ANALYZE: Stmt.Trace forces a Trace for one execution —
// per-plan-node wall time, output rows and heap row-version reads
// (zero for index-only stages, asserted against DB.HeapRowReads),
// plus the DML commit-pipeline breakdown (latch or barrier wait, WAL
// staging, fsync wait, and the group-commit batch the fsync rode in).
// DB.SetTraceThreshold(d) traces every statement and writes any whose
// wall time reaches d to the slow-query log (DB.SetSlowQueryLog) as
// one JSON object per line, counting them in
// sqldb_slow_queries_total. The threshold-zero default collects
// nothing on the statement path; BenchmarkAblation_Telemetry pins the
// untraced configuration to within noise of the pre-telemetry engine
// and prices always-on tracing.
//
// Exposure: the webui serves the archive-wide exposition at /metrics
// (login-gated, like every page) via core.Archive.WriteMetrics, which
// concatenates the engine registry with each attached file host's;
// /status renders the headline numbers (WAL batch size, fsync
// percentiles, plan-cache hit rate, dead-row debt, repair counts)
// next to replica-set health. cmd/dlfsd mounts its process registry
// at /metrics unauthenticated, in both single-server and gateway
// modes. scripts/bench.sh folds easiabench -latency percentile series
// into the BENCH_<date>.json record, and scripts/parallel_gate.sh +
// the CI core-count guard turn BenchmarkParallelQuery into the
// multi-core scaling regression gate.
package repro
