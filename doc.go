// Package repro is a from-scratch Go reproduction of "An Architecture
// for Archiving and Post-Processing Large, Distributed, Scientific Data
// Using SQL/MED and XML" (Papiani, Wason, Nicole; EDBT 2000) — the
// EASIA system: a web-based active archive where multi-gigabyte
// simulation results stay on the file servers that generated them,
// managed through SQL/MED DATALINKs, while a schema-derived XML user
// interface specification (XUIS) drives searching, browsing and
// server-side post-processing.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure. The library
// lives under internal/ (core is the archive facade); cmd/ holds the
// runnable daemons and tools; examples/ holds runnable walkthroughs.
package repro
