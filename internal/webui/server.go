package webui

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
	"repro/internal/xuis"
)

// Server is the EASIA web front end over an Archive.
type Server struct {
	archive *core.Archive
	mux     *http.ServeMux

	mu       sync.Mutex
	sessions map[string]core.User
	runs     map[string]*ops.Result // recent operation results for /opfile
	runSeq   int
}

// NewServer builds the HTTP front end.
func NewServer(a *core.Archive) *Server {
	s := &Server{
		archive:  a,
		mux:      http.NewServeMux(),
		sessions: map[string]core.User{},
		runs:     map[string]*ops.Result{},
	}
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/login", s.handleLogin)
	s.mux.HandleFunc("/logout", s.handleLogout)
	s.mux.HandleFunc("/table", s.withUser(s.handleQueryForm))
	s.mux.HandleFunc("/query", s.withUser(s.handleQuery))
	s.mux.HandleFunc("/browse", s.withUser(s.handleBrowse))
	s.mux.HandleFunc("/lob", s.withUser(s.handleLOB))
	s.mux.HandleFunc("/download", s.withUser(s.handleDownload))
	s.mux.HandleFunc("/opform", s.withUser(s.handleOpForm))
	s.mux.HandleFunc("/oprun", s.withUser(s.handleOpRun))
	s.mux.HandleFunc("/opfile", s.withUser(s.handleOpFile))
	s.mux.HandleFunc("/uploadform", s.withUser(s.handleUploadForm))
	s.mux.HandleFunc("/upload", s.withUser(s.handleUpload))
	s.mux.HandleFunc("/xuis", s.withUser(s.handleXUIS))
	s.mux.HandleFunc("/status", s.withUser(s.handleStatus))
	s.mux.HandleFunc("/metrics", s.withUser(s.handleMetrics))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ---------- sessions ----------

const sessionCookie = "easia_session"

func (s *Server) currentUser(r *http.Request) (core.User, bool) {
	c, err := r.Cookie(sessionCookie)
	if err != nil {
		return core.User{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.sessions[c.Value]
	return u, ok
}

func (s *Server) startSession(w http.ResponseWriter, u core.User) {
	var raw [16]byte
	if _, err := rand.Read(raw[:]); err != nil {
		http.Error(w, "session error", http.StatusInternalServerError)
		return
	}
	id := hex.EncodeToString(raw[:])
	s.mu.Lock()
	s.sessions[id] = u
	s.mu.Unlock()
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: id, Path: "/", HttpOnly: true})
}

// withUser gates a handler behind login.
func (s *Server) withUser(h func(http.ResponseWriter, *http.Request, core.User)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		u, ok := s.currentUser(r)
		if !ok {
			http.Redirect(w, r, "/", http.StatusSeeOther)
			return
		}
		h(w, r, u)
	}
}

func (s *Server) renderError(w http.ResponseWriter, u core.User, status int, msg string) {
	w.WriteHeader(status)
	_ = homeTmpl.Execute(w, struct {
		Title  string
		User   core.User
		Error  string
		Tables []tableEntry
	}{Title: "Error", User: u, Error: msg})
}

// ---------- pages ----------

type tableEntry struct {
	Name    string
	Display string
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	u, _ := s.currentUser(r)
	var tables []tableEntry
	if spec := s.archive.Spec(); spec != nil {
		for _, t := range spec.VisibleTables() {
			tables = append(tables, tableEntry{Name: t.Name, Display: t.DisplayName()})
		}
	}
	_ = homeTmpl.Execute(w, struct {
		Title  string
		User   core.User
		Error  string
		Tables []tableEntry
	}{Title: "Scientific Data Archive", User: u, Tables: tables})
}

func (s *Server) handleLogin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	u, err := s.archive.Users.Authenticate(r.FormValue("username"), r.FormValue("password"))
	if err != nil {
		s.renderError(w, core.User{}, http.StatusUnauthorized, "invalid username or password")
		return
	}
	s.startSession(w, u)
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) handleLogout(w http.ResponseWriter, r *http.Request) {
	if c, err := r.Cookie(sessionCookie); err == nil {
		s.mu.Lock()
		delete(s.sessions, c.Value)
		s.mu.Unlock()
	}
	http.SetCookie(w, &http.Cookie{Name: sessionCookie, Value: "", Path: "/", MaxAge: -1})
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) handleQueryForm(w http.ResponseWriter, r *http.Request, u core.User) {
	spec := s.archive.Spec()
	if spec == nil {
		s.renderError(w, u, http.StatusServiceUnavailable, "no XUIS installed")
		return
	}
	view, err := buildQueryForm(spec, r.URL.Query().Get("name"), u)
	if err != nil {
		s.renderError(w, u, http.StatusNotFound, err.Error())
		return
	}
	_ = queryFormTmpl.Execute(w, view)
}

// handleQuery translates the QBE form submission and renders results.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, u core.User) {
	if err := r.ParseForm(); err != nil {
		s.renderError(w, u, http.StatusBadRequest, err.Error())
		return
	}
	table := r.Form.Get("table")
	q := core.QBE{Table: table}
	if r.Form.Get("all") == "" {
		q.Select = r.Form["sel"]
		for key, vals := range r.Form {
			if !strings.HasPrefix(key, "val_") || len(vals) == 0 || strings.TrimSpace(vals[0]) == "" {
				continue
			}
			col := strings.TrimPrefix(key, "val_")
			op := r.Form.Get("op_" + col)
			if op == "" {
				op = "="
			}
			q.Restrictions = append(q.Restrictions, core.Restriction{Column: col, Op: op, Value: vals[0]})
		}
		q.OrderBy = r.Form.Get("orderby")
		q.Desc = r.Form.Get("desc") == "1"
		if lim := r.Form.Get("limit"); lim != "" {
			n, err := strconv.Atoi(lim)
			if err != nil || n < 0 {
				s.renderError(w, u, http.StatusBadRequest, "invalid limit")
				return
			}
			q.Limit = n
		}
	}
	rs, err := s.archive.Search(q)
	if err != nil {
		s.renderError(w, u, http.StatusBadRequest, err.Error())
		return
	}
	s.renderResults(w, rs, u)
}

func (s *Server) renderResults(w http.ResponseWriter, rs *core.ResultSet, u core.User) {
	view, err := buildResults(s.archive, rs, u)
	if err != nil {
		s.renderError(w, u, http.StatusInternalServerError, err.Error())
		return
	}
	view.Title = "Results from " + view.TableDisplay
	view.User = u
	_ = resultsTmpl.Execute(w, view)
}

// handleBrowse serves both browsing modes.
func (s *Server) handleBrowse(w http.ResponseWriter, r *http.Request, u core.User) {
	q := r.URL.Query()
	table, col, value := q.Get("table"), q.Get("col"), q.Get("value")
	var (
		rs  *core.ResultSet
		err error
	)
	switch q.Get("mode") {
	case "fk":
		rs, err = s.archive.BrowseFK(table, col, value)
	case "pk":
		rs, err = s.archive.BrowsePK(table, col, value)
	default:
		err = fmt.Errorf("webui: unknown browse mode %q", q.Get("mode"))
	}
	if err != nil {
		s.renderError(w, u, http.StatusBadRequest, err.Error())
		return
	}
	s.renderResults(w, rs, u)
}

// handleLOB rematerialises a BLOB/CLOB and returns it with the
// appropriate MIME type.
func (s *Server) handleLOB(w http.ResponseWriter, r *http.Request, u core.User) {
	q := r.URL.Query()
	table, col := q.Get("table"), q.Get("col")
	key := map[string]string{}
	for k, vs := range q {
		if strings.HasPrefix(k, "pk_") && len(vs) > 0 {
			key[strings.TrimPrefix(k, "pk_")] = vs[0]
		}
	}
	row, err := s.archive.RowByKey(table, key)
	if err != nil {
		s.renderError(w, u, http.StatusNotFound, err.Error())
		return
	}
	v, ok := row[strings.ToUpper(table)+"."+strings.ToUpper(col)]
	if !ok || v.IsNull() {
		s.renderError(w, u, http.StatusNotFound, "no such object")
		return
	}
	switch v.Kind() {
	case sqltypes.KindClob:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, v.AsString())
	case sqltypes.KindBytes:
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(v.Bytes())
	default:
		s.renderError(w, u, http.StatusBadRequest, "column is not a BLOB or CLOB")
	}
}

// handleDownload streams a DATALINK file via its tokenized URL. The
// token inside the URL is what authorises the read — exactly the
// paper's mechanism.
func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request, u core.User) {
	tokURL := r.URL.Query().Get("url")
	rc, err := s.archive.OpenDownload(tokURL)
	if err != nil {
		s.renderError(w, u, http.StatusForbidden, err.Error())
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, rc) //nolint:errcheck // client disconnects are not errors
}

func (s *Server) opFromRequest(r *http.Request) (opName, colID, table string, key map[string]string) {
	get := func(k string) string {
		if r.Method == http.MethodPost {
			return r.PostFormValue(k)
		}
		return r.URL.Query().Get(k)
	}
	key = map[string]string{}
	var src map[string][]string
	if r.Method == http.MethodPost {
		r.ParseForm()
		src = r.PostForm
	} else {
		src = r.URL.Query()
	}
	for k, vs := range src {
		if strings.HasPrefix(k, "pk_") && len(vs) > 0 {
			key[strings.TrimPrefix(k, "pk_")] = vs[0]
		}
	}
	return get("op"), get("colid"), get("table"), key
}

// handleOpForm renders the parameter form generated from XUIS markup.
func (s *Server) handleOpForm(w http.ResponseWriter, r *http.Request, u core.User) {
	opName, colID, table, key := s.opFromRequest(r)
	spec := s.archive.Spec()
	if spec == nil {
		s.renderError(w, u, http.StatusServiceUnavailable, "no XUIS installed")
		return
	}
	tbl, colName, err := xuis.SplitColID(colID)
	if err != nil {
		s.renderError(w, u, http.StatusBadRequest, err.Error())
		return
	}
	specTable, ok := spec.Table(tbl)
	if !ok {
		s.renderError(w, u, http.StatusNotFound, "unknown table")
		return
	}
	col, ok := specTable.Column(colName)
	if !ok {
		s.renderError(w, u, http.StatusNotFound, "unknown column")
		return
	}
	var op *xuis.Operation
	for _, candidate := range col.Operations {
		if candidate.Name == opName {
			op = candidate
		}
	}
	if op == nil {
		s.renderError(w, u, http.StatusNotFound, "unknown operation")
		return
	}
	view := struct {
		Title       string
		User        core.User
		Error       string
		Op          string
		ColID       string
		Table       string
		Description string
		Key         map[string]string
		Params      []xuis.Variable
	}{
		Title: "Run " + op.Name, User: u, Op: op.Name, ColID: colID, Table: table,
		Description: op.Description, Key: key,
	}
	if op.Parameters != nil {
		for _, p := range op.Parameters.Params {
			view.Params = append(view.Params, p.Variable)
		}
	}
	_ = opFormTmpl.Execute(w, view)
}

// handleOpRun executes the operation and renders its result.
func (s *Server) handleOpRun(w http.ResponseWriter, r *http.Request, u core.User) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	opName, colID, table, key := s.opFromRequest(r)
	params := map[string]string{}
	for k, vs := range r.PostForm {
		if k == "op" || k == "colid" || k == "table" || strings.HasPrefix(k, "pk_") || len(vs) == 0 {
			continue
		}
		params[k] = vs[0]
	}
	res, err := s.archive.RunOperation(opName, colID, table, key, params, u)
	if err != nil {
		s.renderError(w, u, http.StatusBadRequest, err.Error())
		return
	}
	s.renderOpResult(w, res, u)
}

type opFileEntry struct {
	Name string
	Size int
}

func (s *Server) renderOpResult(w http.ResponseWriter, res *ops.Result, u core.User) {
	s.mu.Lock()
	s.runSeq++
	runID := fmt.Sprintf("r%06d", s.runSeq)
	s.runs[runID] = res
	// Bound the retained results.
	if len(s.runs) > 64 {
		for k := range s.runs {
			if k != runID {
				delete(s.runs, k)
				break
			}
		}
	}
	s.mu.Unlock()
	var files []opFileEntry
	for _, f := range res.Files {
		files = append(files, opFileEntry{Name: f.Name, Size: len(f.Data)})
	}
	_ = opResultTmpl.Execute(w, struct {
		Title     string
		User      core.User
		Error     string
		Op        string
		Elapsed   string
		Steps     int64
		FromCache bool
		Stdout    string
		Files     []opFileEntry
		BatchPlan string
		RunID     string
	}{
		Title: "Operation output", User: u, Op: res.Operation,
		Elapsed: res.Elapsed.String(), Steps: res.Steps, FromCache: res.FromCache,
		Stdout: res.Stdout, Files: files, BatchPlan: res.BatchPlan, RunID: runID,
	})
}

// handleOpFile serves one artefact of a recent operation run.
func (s *Server) handleOpFile(w http.ResponseWriter, r *http.Request, u core.User) {
	q := r.URL.Query()
	s.mu.Lock()
	res, ok := s.runs[q.Get("run")]
	s.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	name := q.Get("name")
	for _, f := range res.Files {
		if f.Name == name {
			w.Header().Set("Content-Type", mimeFor(name))
			w.Write(f.Data)
			return
		}
	}
	http.NotFound(w, r)
}

func mimeFor(name string) string {
	switch {
	case strings.HasSuffix(name, ".pgm"):
		return "image/x-portable-graymap"
	case strings.HasSuffix(name, ".ppm"):
		return "image/x-portable-pixmap"
	case strings.HasSuffix(name, ".txt"):
		return "text/plain; charset=utf-8"
	default:
		return "application/octet-stream"
	}
}

func (s *Server) handleUploadForm(w http.ResponseWriter, r *http.Request, u core.User) {
	_, colID, table, key := s.opFromRequest(r)
	file := key["FILE_NAME"]
	_ = uploadFormTmpl.Execute(w, struct {
		Title string
		User  core.User
		Error string
		ColID string
		Table string
		File  string
		Key   map[string]string
	}{Title: "Upload post-processing code", User: u, ColID: colID, Table: table, File: file, Key: key})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request, u core.User) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	_, colID, table, key := s.opFromRequest(r)
	entry := r.PostFormValue("entry")
	if entry == "" {
		entry = "main.easl"
	}
	code := []byte(r.PostFormValue("code"))
	res, err := s.archive.UploadAndRun(colID, table, key, code, "easl", entry, nil, u)
	if err != nil {
		s.renderError(w, u, http.StatusBadRequest, err.Error())
		return
	}
	s.renderOpResult(w, res, u)
}

// statusMetric is one name/value row of the status page's summaries.
type statusMetric struct {
	Name, Value string
}

// statusHost decorates a host's replication health with the telemetry
// rows worth an operator's glance.
type statusHost struct {
	core.HostStatus
	MetricRows []statusMetric
}

// findMetric returns the snapshot entry with the given (unlabelled)
// name, if present.
func findMetric(ms []telemetry.Metric, name string) (telemetry.Metric, bool) {
	for _, m := range ms {
		if m.Name == name && len(m.Labels) == 0 {
			return m, true
		}
	}
	return telemetry.Metric{}, false
}

// engineSummary distils the SQL engine's metrics snapshot into the
// status page's headline rows: group-commit behaviour, vacuum debt and
// plan-cache effectiveness.
func engineSummary(ms []telemetry.Metric) []statusMetric {
	var rows []statusMetric
	if m, ok := findMetric(ms, "sqldb_commits_total"); ok {
		rows = append(rows, statusMetric{"Committed transactions", strconv.FormatInt(m.Value, 10)})
	}
	if m, ok := findMetric(ms, "sqldb_wal_group_commit_batch"); ok && m.Hist != nil {
		rows = append(rows, statusMetric{"WAL group-commit batch (mean / p95)",
			fmt.Sprintf("%d / %d", m.Hist.Mean(), m.Hist.P95)})
	}
	if m, ok := findMetric(ms, "sqldb_wal_fsync_ns"); ok && m.Hist != nil {
		rows = append(rows, statusMetric{"WAL fsync latency (p50 / p99)",
			fmt.Sprintf("%s / %s", time.Duration(m.Hist.P50), time.Duration(m.Hist.P99))})
	}
	hits, _ := findMetric(ms, "sqldb_plan_cache_hits_total")
	misses, _ := findMetric(ms, "sqldb_plan_cache_misses_total")
	if total := hits.Value + misses.Value; total > 0 {
		rows = append(rows, statusMetric{"Plan-cache hit rate",
			fmt.Sprintf("%.1f%% (%d of %d lookups)", 100*float64(hits.Value)/float64(total), hits.Value, total)})
	}
	// Result-cache effectiveness: only shown once the cache has seen
	// traffic (hits+misses counts every cacheable lookup).
	rcHits, _ := findMetric(ms, "sqldb_result_cache_hits_total")
	rcMisses, _ := findMetric(ms, "sqldb_result_cache_misses_total")
	if total := rcHits.Value + rcMisses.Value; total > 0 {
		bytes, _ := findMetric(ms, "sqldb_result_cache_bytes")
		rows = append(rows, statusMetric{"Result-cache hit rate",
			fmt.Sprintf("%.1f%% (%d of %d lookups, %d bytes held)",
				100*float64(rcHits.Value)/float64(total), rcHits.Value, total, bytes.Value)})
	}
	if m, ok := findMetric(ms, "sqldb_dead_rows"); ok {
		rows = append(rows, statusMetric{"Dead-row debt (awaiting vacuum)", strconv.FormatInt(m.Value, 10)})
	}
	passes, _ := findMetric(ms, "sqldb_vacuum_passes_total")
	reclaimed, _ := findMetric(ms, "sqldb_vacuum_rows_reclaimed_total")
	if passes.Value > 0 {
		rows = append(rows, statusMetric{"Vacuum passes / rows reclaimed",
			fmt.Sprintf("%d / %d", passes.Value, reclaimed.Value)})
	}
	if m, ok := findMetric(ms, "sqldb_slow_queries_total"); ok && m.Value > 0 {
		rows = append(rows, statusMetric{"Slow queries over threshold", strconv.FormatInt(m.Value, 10)})
	}
	// Overload posture: how deep the admission queue is right now, and
	// how many statements have been shed, timed out or canceled so far.
	if m, ok := findMetric(ms, "sqldb_admission_queue_depth"); ok {
		rows = append(rows, statusMetric{"Admission queue depth", strconv.FormatInt(m.Value, 10)})
	}
	shed, _ := findMetric(ms, "sqldb_statements_shed_total")
	timedOut, _ := findMetric(ms, "sqldb_statements_timed_out_total")
	canceled, _ := findMetric(ms, "sqldb_statements_canceled_total")
	if shed.Value+timedOut.Value+canceled.Value > 0 {
		rows = append(rows, statusMetric{"Statements shed / timed out / canceled",
			fmt.Sprintf("%d / %d / %d", shed.Value, timedOut.Value, canceled.Value)})
	}
	if m, ok := findMetric(ms, "sqldb_mem_budget_rejected_total"); ok && m.Value > 0 {
		rows = append(rows, statusMetric{"Memory-budget rejections", strconv.FormatInt(m.Value, 10)})
	}
	return rows
}

// hostSummary distils a replica set's metrics into the per-host rows:
// failovers, breaker trips and cumulative repair outcomes.
func hostSummary(ms []telemetry.Metric) []statusMetric {
	if ms == nil {
		return nil
	}
	var rows []statusMetric
	if m, ok := findMetric(ms, "dlfs_cluster_failovers_total"); ok {
		rows = append(rows, statusMetric{"Failovers", strconv.FormatInt(m.Value, 10)})
	}
	if m, ok := findMetric(ms, "dlfs_cluster_breaker_trips_total"); ok {
		rows = append(rows, statusMetric{"Breaker trips", strconv.FormatInt(m.Value, 10)})
	}
	copied, _ := findMetric(ms, "dlfs_cluster_repair_copied_total")
	relinked, _ := findMetric(ms, "dlfs_cluster_repair_relinked_total")
	unlinked, _ := findMetric(ms, "dlfs_cluster_repair_unlinked_total")
	rows = append(rows, statusMetric{"Repairs (copied / relinked / unlinked)",
		fmt.Sprintf("%d / %d / %d", copied.Value, relinked.Value, unlinked.Value)})
	if m, ok := findMetric(ms, "dlfs_cluster_repair_errors_total"); ok && m.Value > 0 {
		rows = append(rows, statusMetric{"Repair errors", strconv.FormatInt(m.Value, 10)})
	}
	pc, _ := findMetric(ms, "dlfs_cluster_partial_commits_total")
	pw, _ := findMetric(ms, "dlfs_cluster_partial_writes_total")
	if pc.Value+pw.Value > 0 {
		rows = append(rows, statusMetric{"Partial commits / writes",
			fmt.Sprintf("%d / %d", pc.Value, pw.Value)})
	}
	return rows
}

// handleStatus surfaces the file-server tier's replication health and a
// telemetry summary: per registered host, the replica-set members, the
// members whose breaker is open (Down), the paths awaiting
// re-replication (UnderReplicated) and the tier's repair counters;
// above them, the SQL engine's headline metrics. The full exposition
// lives at /metrics.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, u core.User) {
	hs := s.archive.HostStatuses()
	hosts := make([]statusHost, len(hs))
	for i, h := range hs {
		hosts[i] = statusHost{HostStatus: h, MetricRows: hostSummary(h.Metrics)}
	}
	_ = statusTmpl.Execute(w, struct {
		Title  string
		User   core.User
		Error  string
		Engine []statusMetric
		Hosts  []statusHost
	}{
		Title:  "File-server status",
		User:   u,
		Engine: engineSummary(s.archive.DB.MetricsSnapshot()),
		Hosts:  hosts,
	})
}

// handleMetrics serves the archive's full telemetry in Prometheus text
// exposition format: the SQL engine's registry plus every registered
// replica set's. Login-gated like every other page.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request, u core.User) {
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = s.archive.WriteMetrics(w)
}

// handleXUIS serves the active specification as XML — the document that
// defines the whole interface.
func (s *Server) handleXUIS(w http.ResponseWriter, r *http.Request, u core.User) {
	spec := s.archive.Spec()
	if spec == nil {
		http.Error(w, "no XUIS installed", http.StatusServiceUnavailable)
		return
	}
	data, err := spec.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.Write(data)
}
