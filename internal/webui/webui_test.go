package webui

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/cookiejar"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/turb"
	"repro/internal/xuis"
)

// testSite assembles a full EASIA web deployment for HTTP-level tests.
type testSite struct {
	srv     *httptest.Server
	archive *core.Archive
	client  *http.Client
}

func newSite(t *testing.T) *testSite {
	t.Helper()
	secret := []byte("webui-secret")
	a, err := core.Open(core.Config{Secret: secret, WorkRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	auth, _ := med.NewTokenAuthority(secret, 0)
	store, err := dlfs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a.AttachFileServer(core.WrapManager(dlfs.NewManager("fs1.sim:80", store, auth)))
	if err := a.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	seed := []string{
		`INSERT INTO AUTHOR VALUES ('A19990110151042', 'Papiani', 'University of Southampton', 'p@soton.ac.uk')`,
		`INSERT INTO SIMULATION VALUES ('S19990110150932', 'A19990110151042', 'Turbulent channel flow',
			'DNS of channel flow at Re=1395.', 12, 1395.0, 100, '2000-03-27 09:00:00')`,
	}
	for _, sql := range seed {
		if _, err := a.DB.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	var tsf bytes.Buffer
	if _, err := turb.Generate(12, 4, 7).WriteTo(&tsf); err != nil {
		t.Fatal(err)
	}
	dsURL, err := a.ArchiveFile("fs1.sim:80", "/vol0/run1/ts4.tsf", bytes.NewReader(tsf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts4.tsf', 'S19990110150932', 4, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
		tsf.Len(), dsURL)); err != nil {
		t.Fatal(err)
	}
	codeURL, err := a.ArchiveFile("fs1.sim:80", "/codes/getimage.easl", strings.NewReader(`
let axis = params["slice"]
if (axis == nil) { axis = "z" }
writeImage("slice.pgm", filename, "u", axis, floor(datasetInfo(filename).n / 2))
print("rendered", axis)
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO CODE_FILE VALUES ('GetImage.easl', 'S19990110150932', 'EASL', 'Slice renderer', DLVALUE('%s'))`,
		codeURL)); err != nil {
		t.Fatal(err)
	}
	spec, err := a.GenerateXUIS("TURBULENCE")
	if err != nil {
		t.Fatal(err)
	}
	// Customisations from the paper: alias + FK substitution + an
	// operation with a parameter form + upload.
	if err := spec.SetFKSubstitution("SIMULATION", "AUTHOR_KEY", "AUTHOR.NAME"); err != nil {
		t.Fatal(err)
	}
	if err := spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Operation{
		Name: "GetImage", Type: "EASL", Filename: "getimage.easl", Format: "easl", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'GetImage.easl'"}},
		}},
		Description: "Visualise one slice of the dataset",
		Parameters: &xuis.Parameters{Params: []xuis.Param{
			{Variable: xuis.Variable{
				Description: "Select the slice you wish to visualise:",
				Select: &xuis.Select{Name: "slice", Size: 3, Options: []xuis.Option{
					{Value: "x", Label: "x plane"}, {Value: "y", Label: "y plane"}, {Value: "z", Label: "z plane"},
				}},
			}},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := spec.SetUpload("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Upload{
		Type: "EASL", Format: "easl", GuestAccess: false,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetSpec(spec); err != nil {
		t.Fatal(err)
	}
	if err := a.Users.Add(core.User{Name: "papiani"}, "s3cret"); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewServer(a))
	t.Cleanup(srv.Close)
	jar, _ := cookiejar.New(nil)
	client := &http.Client{Jar: jar}
	return &testSite{srv: srv, archive: a, client: client}
}

func (ts *testSite) login(t *testing.T, user, pass string) {
	t.Helper()
	resp, err := ts.client.PostForm(ts.srv.URL+"/login", url.Values{
		"username": {user}, "password": {pass},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("login status %d", resp.StatusCode)
	}
}

func (ts *testSite) get(t *testing.T, path string) (int, string) {
	t.Helper()
	resp, err := ts.client.Get(ts.srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func (ts *testSite) post(t *testing.T, path string, form url.Values) (int, string) {
	t.Helper()
	resp, err := ts.client.PostForm(ts.srv.URL+path, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(body)
}

func TestLoginAndHome(t *testing.T) {
	ts := newSite(t)
	// Anonymous home shows the login form, not the tables.
	_, body := ts.get(t, "/")
	if !strings.Contains(body, "Login") || strings.Contains(body, "RESULT_FILE") {
		t.Fatalf("anonymous home wrong:\n%s", body)
	}
	// Bad credentials rejected.
	code, _ := ts.post(t, "/login", url.Values{"username": {"guest"}, "password": {"wrong"}})
	if code != http.StatusUnauthorized {
		t.Fatalf("bad login status %d", code)
	}
	ts.login(t, "guest", "guest")
	_, body = ts.get(t, "/")
	for _, want := range []string{"Author", "Simulation", "Result File", "/table?name=AUTHOR"} {
		if !strings.Contains(body, want) {
			t.Errorf("home missing %q", want)
		}
	}
}

func TestProtectedPagesRedirectAnonymous(t *testing.T) {
	ts := newSite(t)
	for _, path := range []string{"/table?name=AUTHOR", "/query?table=AUTHOR&all=1", "/xuis"} {
		resp, err := http.Get(ts.srv.URL + path) // no cookie jar
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		// The default client follows the redirect back to "/".
		if resp.Request.URL.Path != "/" {
			t.Errorf("%s not gated (landed on %s)", path, resp.Request.URL.Path)
		}
	}
}

// TestQueryFormRendering reproduces the paper's "Searching the archive"
// figure: field checkboxes, operator drop-downs, sample values.
func TestQueryFormRendering(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	code, body := ts.get(t, "/table?name=SIMULATION")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		`name="sel" value="SIMULATION_KEY"`,
		`name="op_TITLE"`,
		`<option>CONTAINS</option>`,
		`S19990110150932`, // sample value from the data
		`name="val_REYNOLDS"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("query form missing %q", want)
		}
	}
}

// TestResultTableBrowsingLinks reproduces the paper's "Result table"
// figure: PK browsing, FK browsing with substitution, CLOB link, and
// DATALINK links with operations.
func TestResultTableBrowsingLinks(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "papiani", "s3cret")

	_, body := ts.get(t, "/query?table=SIMULATION&all=1")
	// FK substitution: the AUTHOR_KEY cell shows the author's name.
	if !strings.Contains(body, "Papiani") {
		t.Error("FK substitution not applied")
	}
	if !strings.Contains(body, "/browse?col=AUTHOR_KEY&amp;mode=fk&amp;table=AUTHOR") &&
		!strings.Contains(body, "mode=fk") {
		t.Error("FK browse link missing")
	}
	// PK browsing: SIMULATION_KEY links to the three referencing tables.
	for _, child := range []string{"RESULT_FILE", "CODE_FILE", "VISUALISATION_FILE"} {
		if !strings.Contains(body, "→ "+child) {
			t.Errorf("PK browse link to %s missing", child)
		}
	}
	// CLOB link with size.
	if !strings.Contains(body, "CLOB (") {
		t.Error("CLOB size link missing")
	}

	_, body = ts.get(t, "/query?table=RESULT_FILE&all=1")
	// DATALINK cell: file name with size, download link with token, op link.
	if !strings.Contains(body, "ts4.tsf (") {
		t.Error("DATALINK size display missing")
	}
	if !strings.Contains(body, "/download?url=") || !strings.Contains(body, "%3B") {
		t.Error("tokenized download link missing")
	}
	if !strings.Contains(body, "op:GetImage") {
		t.Error("operation link missing")
	}
	if !strings.Contains(body, "upload code") {
		t.Error("upload link missing")
	}
}

// TestGuestPolicy: guests see no download or upload links but still see
// guest-accessible operations.
func TestGuestPolicy(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	_, body := ts.get(t, "/query?table=RESULT_FILE&all=1")
	if strings.Contains(body, "/download?url=") {
		t.Error("guest sees download link")
	}
	if strings.Contains(body, "upload code") {
		t.Error("guest sees upload link")
	}
	if !strings.Contains(body, "op:GetImage") {
		t.Error("guest-accessible operation hidden from guest")
	}
}

func TestQBEQueryWithRestrictions(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	q := url.Values{
		"table":     {"SIMULATION"},
		"sel":       {"SIMULATION_KEY", "TITLE"},
		"op_TITLE":  {"CONTAINS"},
		"val_TITLE": {"channel"},
	}
	_, body := ts.get(t, "/query?"+q.Encode())
	if !strings.Contains(body, "1 row(s)") {
		t.Fatalf("restricted query wrong:\n%s", body)
	}
	q.Set("val_TITLE", "no-such-thing")
	_, body = ts.get(t, "/query?"+q.Encode())
	if !strings.Contains(body, "0 row(s)") {
		t.Fatal("impossible restriction returned rows")
	}
}

func TestBrowseEndpoints(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	_, body := ts.get(t, "/browse?mode=fk&table=AUTHOR&col=AUTHOR_KEY&value=A19990110151042")
	if !strings.Contains(body, "p@soton.ac.uk") {
		t.Error("fk browse missing author details")
	}
	_, body = ts.get(t, "/browse?mode=pk&table=RESULT_FILE&col=SIMULATION_KEY&value=S19990110150932")
	if !strings.Contains(body, "ts4.tsf") {
		t.Error("pk browse missing result file")
	}
	code, _ := ts.get(t, "/browse?mode=zap&table=AUTHOR&col=X&value=1")
	if code != http.StatusBadRequest {
		t.Errorf("bad mode status %d", code)
	}
}

func TestLOBRematerialisation(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	code, body := ts.get(t, "/lob?table=SIMULATION&col=DESCRIPTION&pk_SIMULATION_KEY=S19990110150932")
	if code != 200 || !strings.Contains(body, "DNS of channel flow") {
		t.Fatalf("lob: %d %q", code, body)
	}
}

// TestDownloadFlow: the full DATALINK browsing path over HTTP — follow
// the tokenized link from the result table and get the file bytes.
func TestDownloadFlow(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "papiani", "s3cret")
	_, body := ts.get(t, "/query?table=RESULT_FILE&all=1")
	// Extract the download link.
	i := strings.Index(body, `/download?url=`)
	if i < 0 {
		t.Fatal("no download link")
	}
	end := strings.IndexByte(body[i:], '"')
	href := strings.ReplaceAll(body[i:i+end], "&amp;", "&")
	code, content := ts.get(t, href)
	if code != 200 {
		t.Fatalf("download status %d", code)
	}
	if int64(len(content)) != turb.FileBytes(12) {
		t.Fatalf("downloaded %d bytes, want %d", len(content), turb.FileBytes(12))
	}
}

// TestOperationFlow: operation form (generated from XUIS), run, fetch
// the produced image — the paper's three operation figures.
func TestOperationFlow(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	q := url.Values{
		"op":                {"GetImage"},
		"colid":             {"RESULT_FILE.DOWNLOAD_RESULT"},
		"table":             {"RESULT_FILE"},
		"pk_FILE_NAME":      {"ts4.tsf"},
		"pk_SIMULATION_KEY": {"S19990110150932"},
	}
	code, body := ts.get(t, "/opform?"+q.Encode())
	if code != 200 {
		t.Fatalf("opform status %d", code)
	}
	for _, want := range []string{
		"Select the slice you wish to visualise:",
		`<select name="slice" size="3">`,
		`<option value="z">z plane</option>`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("opform missing %q", want)
		}
	}

	form := url.Values{}
	for k, vs := range q {
		form[k] = vs
	}
	form.Set("slice", "z")
	code, body = ts.post(t, "/oprun", form)
	if code != 200 {
		t.Fatalf("oprun status %d: %s", code, body)
	}
	if !strings.Contains(body, "rendered z") {
		t.Errorf("operation output missing:\n%s", body)
	}
	if !strings.Contains(body, "easl-run --sandbox") {
		t.Error("batch plan missing")
	}
	// Fetch the produced image.
	i := strings.Index(body, `/opfile?run=`)
	if i < 0 {
		t.Fatal("no result file link")
	}
	end := strings.IndexByte(body[i:], '"')
	href := strings.ReplaceAll(body[i:i+end], "&amp;", "&")
	resp, err := ts.client.Get(ts.srv.URL + href)
	if err != nil {
		t.Fatal(err)
	}
	img, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Type") != "image/x-portable-graymap" {
		t.Errorf("content type %q", resp.Header.Get("Content-Type"))
	}
	if !bytes.HasPrefix(img, []byte("P5\n12 12\n")) {
		t.Errorf("image payload wrong: %q", img[:12])
	}
}

// TestUploadFlow: authorised code upload over HTTP; guests rejected.
func TestUploadFlow(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "papiani", "s3cret")
	form := url.Values{
		"colid":             {"RESULT_FILE.DOWNLOAD_RESULT"},
		"table":             {"RESULT_FILE"},
		"pk_FILE_NAME":      {"ts4.tsf"},
		"pk_SIMULATION_KEY": {"S19990110150932"},
		"entry":             {"main.easl"},
		"code":              {`print("uploaded code ran on", filename)`},
	}
	code, body := ts.post(t, "/upload", form)
	if code != 200 || !strings.Contains(body, "uploaded code ran on ts4.tsf") {
		t.Fatalf("upload: %d\n%s", code, body)
	}

	ts2 := newSite(t)
	ts2.login(t, "guest", "guest")
	code, _ = ts2.post(t, "/upload", form)
	if code != http.StatusBadRequest {
		t.Fatalf("guest upload status %d, want 400", code)
	}
}

func TestXUISEndpoint(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	resp, err := ts.client.Get(ts.srv.URL + "/xuis")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/xml") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(string(body), `<xuis database="TURBULENCE"`) {
		t.Error("XUIS body wrong")
	}
}

func TestLogout(t *testing.T) {
	ts := newSite(t)
	ts.login(t, "guest", "guest")
	if _, body := ts.get(t, "/"); !strings.Contains(body, "logout") {
		t.Fatal("not logged in")
	}
	ts.get(t, "/logout")
	if _, body := ts.get(t, "/"); strings.Contains(body, "logout") {
		t.Fatal("still logged in after logout")
	}
}
