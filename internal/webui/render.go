package webui

import (
	"fmt"
	"net/url"
	"strings"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/sqltypes"
	"repro/internal/xuis"
)

// Link is one hyperlink rendered beside a cell value.
type Link struct {
	Href  string
	Label string
}

// Cell is one rendered result-table cell.
type Cell struct {
	Text  string
	Links []Link
}

// RenderedRow is one rendered result row.
type RenderedRow struct {
	Cells []Cell
}

// resultsView is the data handed to the results template.
type resultsView struct {
	Title        string
	User         core.User
	Error        string
	Table        string
	TableDisplay string
	Count        int
	Headers      []string
	Rows         []RenderedRow
}

// buildResults decorates a result set with the paper's four browsing
// modes. It needs the XUIS (aliases, FK/PK markup, substitutions), the
// archive (token minting, FK substitution queries) and the user (guest
// policy).
func buildResults(a *core.Archive, rs *core.ResultSet, u core.User) (*resultsView, error) {
	spec := a.Spec()
	view := &resultsView{
		Table:        rs.Table,
		TableDisplay: rs.Table,
		Count:        len(rs.Rows),
	}
	var specTable *xuis.Table
	if spec != nil {
		if t, ok := spec.Table(rs.Table); ok {
			specTable = t
			view.TableDisplay = t.DisplayName()
		}
	}
	colMeta := make([]*xuis.Column, len(rs.Columns))
	for j, name := range rs.Columns {
		header := name
		if specTable != nil {
			if c, ok := specTable.Column(name); ok {
				colMeta[j] = c
				header = c.DisplayName()
			}
		}
		view.Headers = append(view.Headers, header)
	}

	// Identify primary-key columns present in the result so rows can be
	// addressed by LOB and operation links.
	schema, _ := a.DB.Catalog().Table(rs.Table)
	pkPresent := map[string]int{}
	if schema != nil {
		for _, pk := range schema.PrimaryKey {
			for j, col := range rs.Columns {
				if strings.EqualFold(col, pk) {
					pkPresent[pk] = j
				}
			}
		}
		if len(pkPresent) != len(schema.PrimaryKey) {
			pkPresent = nil // incomplete key: suppress row-addressed links
		}
	}

	eng := a.Ops()
	for i := range rs.Rows {
		// Only DATALINK cells consult the row as a colid→value map (for
		// operation applicability); build it lazily so ordinary metadata
		// rows skip the per-row map allocation entirely.
		var rowMap map[string]sqltypes.Value
		rowOf := func() map[string]sqltypes.Value {
			if rowMap == nil {
				rowMap = rs.Row(i)
			}
			return rowMap
		}
		keyParams := url.Values{}
		for pk, j := range pkPresent {
			keyParams.Set("pk_"+pk, rs.Rows[i][j].AsString())
		}
		var row RenderedRow
		for j, v := range rs.Rows[i] {
			cell := renderCell(a, eng, rs, colMeta[j], rs.ColIDs[j], v, rowOf, keyParams, u)
			row.Cells = append(row.Cells, cell)
		}
		view.Rows = append(view.Rows, row)
	}
	return view, nil
}

func renderCell(a *core.Archive, eng *ops.Engine, rs *core.ResultSet, meta *xuis.Column,
	colID string, v sqltypes.Value, rowOf func() map[string]sqltypes.Value, keyParams url.Values, u core.User) Cell {

	if v.IsNull() {
		return Cell{Text: ""}
	}
	table, column, _ := xuis.SplitColID(colID)

	switch v.Kind() {
	case sqltypes.KindDatalink:
		return renderDatalinkCell(a, eng, colID, v, rowOf(), keyParams, u, table)
	case sqltypes.KindBytes, sqltypes.KindClob:
		// "Hypertext link displays size of object — rematerialised and
		// returned to the client."
		label := fmt.Sprintf("%s (%d bytes)", v.Kind(), v.Size())
		if len(keyParams) == 0 {
			return Cell{Text: label}
		}
		q := cloneValues(keyParams)
		q.Set("table", table)
		q.Set("col", column)
		return Cell{Text: "", Links: []Link{{Href: "/lob?" + q.Encode(), Label: label}}}
	}

	text := v.AsString()
	var links []Link

	if meta != nil && meta.FK != nil {
		refTable, refCol, err := xuis.SplitColID(meta.FK.TableColumn)
		if err == nil {
			// FK substitution: show the referenced row's display column.
			if meta.FK.SubstColumn != "" {
				if _, subst, err := xuis.SplitColID(meta.FK.SubstColumn); err == nil {
					if s, err := a.SubstituteFK(refTable, refCol, subst, text); err == nil {
						text = s
					}
				}
			}
			q := url.Values{}
			q.Set("mode", "fk")
			q.Set("table", refTable)
			q.Set("col", refCol)
			q.Set("value", v.AsString())
			links = append(links, Link{Href: "/browse?" + q.Encode(), Label: "details"})
		}
	}
	if meta != nil && meta.PK != nil {
		for _, ref := range meta.PK.RefBy {
			childTable, childCol, err := xuis.SplitColID(ref.TableColumn)
			if err != nil {
				continue
			}
			q := url.Values{}
			q.Set("mode", "pk")
			q.Set("table", childTable)
			q.Set("col", childCol)
			q.Set("value", v.AsString())
			links = append(links, Link{Href: "/browse?" + q.Encode(), Label: "→ " + childTable})
		}
	}
	return Cell{Text: text, Links: links}
}

func renderDatalinkCell(a *core.Archive, eng *ops.Engine, colID string, v sqltypes.Value,
	rowMap map[string]sqltypes.Value, keyParams url.Values, u core.User, table string) Cell {

	parsed, err := sqltypes.ParseDatalinkURL(v.Str())
	if err != nil {
		return Cell{Text: v.Str()}
	}
	text := parsed.File()
	if h, ok := a.Host(parsed.Host); ok {
		if fi, err := h.StatFile(parsed.Path); err == nil {
			text = fmt.Sprintf("%s (%d bytes)", parsed.File(), fi.Size)
		}
	}
	var links []Link
	// DATALINK browsing: the hyperlink carries the encrypted access
	// token; guests get no download link at all.
	if u.CanDownload() {
		if tokURL, err := a.DownloadURL(v.Str(), u); err == nil {
			q := url.Values{}
			q.Set("url", tokURL)
			links = append(links, Link{Href: "/download?" + q.Encode(), Label: "download"})
		}
	}
	// Operations applicable to this row.
	if eng != nil {
		for _, op := range eng.Applicable(colID, rowMap, ops.User{Name: u.Name, Guest: u.Guest}) {
			q := cloneValues(keyParams)
			q.Set("op", op.Name)
			q.Set("colid", colID)
			q.Set("table", table)
			links = append(links, Link{Href: "/opform?" + q.Encode(), Label: "op:" + op.Name})
		}
		if u.CanUpload() && eng.CanUpload(colID, rowMap, ops.User{Name: u.Name, Guest: u.Guest}) {
			q := cloneValues(keyParams)
			q.Set("colid", colID)
			q.Set("table", table)
			links = append(links, Link{Href: "/uploadform?" + q.Encode(), Label: "upload code"})
		}
	}
	return Cell{Text: text, Links: links}
}

func cloneValues(v url.Values) url.Values {
	out := url.Values{}
	for k, vs := range v {
		for _, s := range vs {
			out.Add(k, s)
		}
	}
	return out
}

// queryFormView feeds the QBE form template.
type queryFormView struct {
	Title     string
	User      core.User
	Error     string
	Table     string
	Fields    []formField
	Operators []string
}

type formField struct {
	Name    string
	Display string
	Samples []string
}

var formOperators = []string{"=", "<>", "<", "<=", ">", ">=", "LIKE", "CONTAINS", "STARTS"}

// buildQueryForm assembles the QBE form for one table from the XUIS.
func buildQueryForm(spec *xuis.Spec, table string, u core.User) (*queryFormView, error) {
	t, ok := spec.Table(table)
	if !ok || t.Hidden {
		return nil, fmt.Errorf("webui: unknown table %s", table)
	}
	view := &queryFormView{
		Title:     "Query " + t.DisplayName(),
		User:      u,
		Table:     t.Name,
		Operators: formOperators,
	}
	for _, c := range t.VisibleColumns() {
		f := formField{Name: c.Name, Display: c.DisplayName()}
		if c.Samples != nil {
			f.Samples = c.Samples.Values
		}
		view.Fields = append(view.Fields, f)
	}
	return view, nil
}
