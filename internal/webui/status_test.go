package webui

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// fakeCluster wraps a plain FileHost with the replica-set health
// surface core.HostStatuses looks for.
type fakeCluster struct {
	core.FileHost
	host  string
	down  []string
	under []string
}

func (f fakeCluster) Host() string              { return f.host }
func (f fakeCluster) Members() []string         { return []string{"r0.sim:80", "r1.sim:80", "r2.sim:80"} }
func (f fakeCluster) Down() []string            { return f.down }
func (f fakeCluster) UnderReplicated() []string { return f.under }

// TestStatusPage: /status surfaces the cluster's Down() and
// UnderReplicated() state per registered host (ROADMAP item from the
// replicated-tier PR) and is login-gated like every other page.
func TestStatusPage(t *testing.T) {
	ts := newSite(t)

	// Unauthenticated requests bounce to login.
	code, _ := ts.get(t, "/status")
	if code != 200 { // redirect to "/" renders the login page
		t.Fatalf("status (anon) code %d", code)
	}

	ts.login(t, "guest", "guest")
	code, body := ts.get(t, "/status")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	// The plain single-manager host shows up without replica info.
	if !strings.Contains(body, "fs1.sim:80") || !strings.Contains(body, "single manager") {
		t.Fatalf("single-manager host missing from status page:\n%s", body)
	}

	// Attach a degraded replicated host and check its health renders.
	base, _ := ts.archive.Host("fs1.sim:80")
	ts.archive.AttachFileServer(fakeCluster{
		FileHost: base,
		host:     "cluster.sim:80",
		down:     []string{"r1.sim:80"},
		under:    []string{"/vol0/run1/ts4.tsf"},
	})
	_, body = ts.get(t, "/status")
	for _, want := range []string{
		"cluster.sim:80",
		"r0.sim:80, r1.sim:80, r2.sim:80", // members
		"r1.sim:80",                       // down
		"/vol0/run1/ts4.tsf",              // under-replicated path
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("status page missing %q:\n%s", want, body)
		}
	}

	// The engine telemetry headlines render above the host tables
	// (queries against the seeded archive guarantee non-zero counters).
	if !strings.Contains(body, "Archive engine") ||
		!strings.Contains(body, "Committed transactions") ||
		!strings.Contains(body, "Plan-cache hit rate") {
		t.Fatalf("status page missing engine telemetry summary:\n%s", body)
	}
}

// TestMetricsEndpoint: /metrics serves the full Prometheus exposition —
// login-gated like every other page — and carries the engine families
// the acceptance list names (WAL fsync histogram, dead-row gauge,
// plan-cache hit counter).
func TestMetricsEndpoint(t *testing.T) {
	ts := newSite(t)

	// Unauthenticated scrape bounces to the login page, not the data.
	_, body := ts.get(t, "/metrics")
	if strings.Contains(body, "sqldb_commits_total") {
		t.Fatalf("anonymous /metrics leaked telemetry:\n%s", body)
	}

	ts.login(t, "guest", "guest")
	resp, err := ts.client.Get(ts.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != telemetry.ContentType {
		t.Fatalf("Content-Type = %q, want %q", got, telemetry.ContentType)
	}
	code, body := ts.get(t, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics code %d", code)
	}
	for _, want := range []string{
		"# TYPE sqldb_wal_fsync_ns histogram",
		"# TYPE sqldb_dead_rows gauge",
		"# TYPE sqldb_plan_cache_hits_total counter",
		"sqldb_commits_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}
