package webui

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// fakeCluster wraps a plain FileHost with the replica-set health
// surface core.HostStatuses looks for.
type fakeCluster struct {
	core.FileHost
	host  string
	down  []string
	under []string
}

func (f fakeCluster) Host() string              { return f.host }
func (f fakeCluster) Members() []string         { return []string{"r0.sim:80", "r1.sim:80", "r2.sim:80"} }
func (f fakeCluster) Down() []string            { return f.down }
func (f fakeCluster) UnderReplicated() []string { return f.under }

// TestStatusPage: /status surfaces the cluster's Down() and
// UnderReplicated() state per registered host (ROADMAP item from the
// replicated-tier PR) and is login-gated like every other page.
func TestStatusPage(t *testing.T) {
	ts := newSite(t)

	// Unauthenticated requests bounce to login.
	code, _ := ts.get(t, "/status")
	if code != 200 { // redirect to "/" renders the login page
		t.Fatalf("status (anon) code %d", code)
	}

	ts.login(t, "guest", "guest")
	code, body := ts.get(t, "/status")
	if code != 200 {
		t.Fatalf("status code %d", code)
	}
	// The plain single-manager host shows up without replica info.
	if !strings.Contains(body, "fs1.sim:80") || !strings.Contains(body, "single manager") {
		t.Fatalf("single-manager host missing from status page:\n%s", body)
	}

	// Attach a degraded replicated host and check its health renders.
	base, _ := ts.archive.Host("fs1.sim:80")
	ts.archive.AttachFileServer(fakeCluster{
		FileHost: base,
		host:     "cluster.sim:80",
		down:     []string{"r1.sim:80"},
		under:    []string{"/vol0/run1/ts4.tsf"},
	})
	_, body = ts.get(t, "/status")
	for _, want := range []string{
		"cluster.sim:80",
		"r0.sim:80, r1.sim:80, r2.sim:80", // members
		"r1.sim:80",                       // down
		"/vol0/run1/ts4.tsf",              // under-replicated path
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("status page missing %q:\n%s", want, body)
		}
	}
}
