// Package webui is the servlet layer of the reproduction: it turns the
// XUIS into the paper's web interface — a dynamically generated QBE
// query form per table, hyperlinked result tables with four browsing
// modes (primary key, foreign key, BLOB/CLOB rematerialisation and
// DATALINK download), operation parameter forms generated from XUIS
// markup, code upload, and session-based user management with the
// guest policy from the demo.
package webui

import "html/template"

// pageTmpl is the shared layout; every page executes one of the named
// content templates defined below.
var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html>
<head>
<title>{{.Title}} — EASIA</title>
<style>
body { font-family: sans-serif; margin: 1.5em; }
table.results { border-collapse: collapse; }
table.results th, table.results td { border: 1px solid #888; padding: 3px 8px; }
table.results th { background: #dde; }
.meta { color: #555; font-size: 90%; }
.err { color: #a00; }
form.qbe td { padding: 2px 8px; }
pre.output { background: #f4f4f4; padding: 8px; border: 1px solid #ccc; }
</style>
</head>
<body>
<p class="meta">
EASIA — Extensible Architecture for Scientific Information Archives
{{if .User.Name}} | user: <b>{{.User.Name}}</b>{{if .User.Guest}} (guest){{end}}
 | <a href="/logout">logout</a>{{else}} | <a href="/">login</a>{{end}}
</p>
<h1>{{.Title}}</h1>
{{if .Error}}<p class="err">{{.Error}}</p>{{end}}
{{template "content" .}}
</body>
</html>
`))

func mustDefine(name, text string) *template.Template {
	t := template.Must(pageTmpl.Clone())
	template.Must(t.New("content").Parse(text))
	return t // executing t renders the full "page" layout
}

var homeTmpl = mustDefine("home", `
{{if not .User.Name}}
<h2>Login</h2>
<form method="POST" action="/login">
 <label>Username <input name="username" value="guest"></label>
 <label>Password <input type="password" name="password" value="guest"></label>
 <button type="submit">Login</button>
</form>
{{else}}
<h2>Search the archive</h2>
<p>Select a link to a query form for a particular table:</p>
<ul>
{{range .Tables}}
 <li><a href="/table?name={{.Name}}">{{.Display}}</a>
     (<a href="/query?table={{.Name}}&all=1">all data</a>)</li>
{{end}}
</ul>
<p class="meta"><a href="/xuis">View the active XUIS (XML user interface specification)</a></p>
{{end}}
`)

var queryFormTmpl = mustDefine("queryform", `
<p>Select the fields to be returned and add optional restrictions.
Wildcards (%, _) are allowed with the LIKE operator.</p>
<form class="qbe" method="GET" action="/query">
<input type="hidden" name="table" value="{{.Table}}">
<table class="results">
<tr><th>Return</th><th>Field</th><th>Operator</th><th>Restriction</th><th>Sample values</th></tr>
{{range .Fields}}
<tr>
 <td><input type="checkbox" name="sel" value="{{.Name}}" checked></td>
 <td>{{.Display}}</td>
 <td>
  <select name="op_{{.Name}}">
   {{range $.Operators}}<option>{{.}}</option>{{end}}
  </select>
 </td>
 <td><input name="val_{{.Name}}" list="dl_{{.Name}}"></td>
 <td>
  {{if .Samples}}
  <datalist id="dl_{{.Name}}">
   {{range .Samples}}<option value="{{.}}">{{end}}
  </datalist>
  <span class="meta">{{range $i, $s := .Samples}}{{if $i}}, {{end}}{{$s}}{{end}}</span>
  {{end}}
 </td>
</tr>
{{end}}
</table>
<p><label>Order by
 <select name="orderby"><option value=""></option>
  {{range .Fields}}<option value="{{.Name}}">{{.Display}}</option>{{end}}
 </select></label>
 <label><input type="checkbox" name="desc" value="1"> descending</label>
 <label>Limit <input name="limit" size="5"></label>
 <button type="submit">Search</button></p>
</form>
`)

var resultsTmpl = mustDefine("results", `
<p class="meta">{{.Count}} row(s) from {{.TableDisplay}}.</p>
<table class="results">
<tr>{{range .Headers}}<th>{{.}}</th>{{end}}</tr>
{{range .Rows}}
<tr>
 {{range .Cells}}
 <td>
  {{if .Links}}
    {{.Text}}
    {{range .Links}} <a href="{{.Href}}">{{.Label}}</a>{{end}}
  {{else}}{{.Text}}{{end}}
 </td>
 {{end}}
</tr>
{{end}}
</table>
<p><a href="/table?name={{.Table}}">New search on {{.TableDisplay}}</a> | <a href="/">Home</a></p>
`)

var opFormTmpl = mustDefine("opform", `
<p>{{.Description}}</p>
<form method="POST" action="/oprun">
<input type="hidden" name="op" value="{{.Op}}">
<input type="hidden" name="colid" value="{{.ColID}}">
<input type="hidden" name="table" value="{{.Table}}">
{{range $k, $v := .Key}}<input type="hidden" name="pk_{{$k}}" value="{{$v}}">{{end}}
{{range .Params}}
 <p>{{.Description}}<br>
 {{if .Select}}
  <select name="{{.Select.Name}}" size="{{.Select.Size}}">
   {{range .Select.Options}}<option value="{{.Value}}">{{.Label}}</option>{{end}}
  </select>
 {{end}}
 {{range .Inputs}}
  <label><input type="{{.Type}}" name="{{.Name}}" value="{{.Value}}"> {{.Label}}</label>
 {{end}}
 </p>
{{end}}
<button type="submit">Run {{.Op}}</button>
</form>
`)

var opResultTmpl = mustDefine("opresult", `
<p class="meta">operation {{.Op}} finished in {{.Elapsed}}
 ({{.Steps}} interpreter steps{{if .FromCache}}, served from cache{{end}}).</p>
{{if .Stdout}}<h2>Output</h2><pre class="output">{{.Stdout}}</pre>{{end}}
{{if .Files}}
<h2>Result files</h2>
<ul>
{{range .Files}}<li><a href="/opfile?run={{$.RunID}}&name={{.Name}}">{{.Name}}</a> ({{.Size}} bytes)</li>{{end}}
</ul>
{{end}}
<h2>Batch plan</h2>
<pre class="output">{{.BatchPlan}}</pre>
<p><a href="/">Home</a></p>
`)

var statusTmpl = mustDefine("status", `
<p class="meta">Replication health of the registered file-server hosts
(the DATALINK tier behind the archive's download links) and the
archive's telemetry headlines. The full Prometheus exposition is at
<a href="/metrics">/metrics</a>.</p>
{{if .Engine}}
<h2>Archive engine</h2>
<table class="results">
{{range .Engine}}<tr><th>{{.Name}}</th><td>{{.Value}}</td></tr>
{{end}}</table>
{{end}}
{{if not .Hosts}}<p>No file servers registered.</p>{{end}}
{{range .Hosts}}
<h2>{{.Host}}</h2>
{{if .Replicated}}
<table class="results">
<tr><th>Members</th><td>{{range $i, $m := .Members}}{{if $i}}, {{end}}{{$m}}{{end}}</td></tr>
<tr><th>Down</th><td>
 {{if .Down}}<span class="err">{{range $i, $m := .Down}}{{if $i}}, {{end}}{{$m}}{{end}}</span>
 {{else}}none{{end}}</td></tr>
<tr><th>Under-replicated paths</th><td>
 {{if .UnderReplicated}}<span class="err">{{len .UnderReplicated}}</span>:
  {{range $i, $p := .UnderReplicated}}{{if $i}}, {{end}}<code>{{$p}}</code>{{end}}
 {{else}}none{{end}}</td></tr>
{{range .MetricRows}}<tr><th>{{.Name}}</th><td>{{.Value}}</td></tr>
{{end}}</table>
{{else}}
<p class="meta">single manager (no replica set)</p>
{{end}}
{{end}}
<p><a href="/">Home</a></p>
`)

var uploadFormTmpl = mustDefine("uploadform", `
<p>Upload post-processing code for secure server-side execution against
<b>{{.File}}</b>. The code must accept the dataset filename in the
variable <code>filename</code> and write output to relative filenames.</p>
<form method="POST" action="/upload">
<input type="hidden" name="colid" value="{{.ColID}}">
<input type="hidden" name="table" value="{{.Table}}">
{{range $k, $v := .Key}}<input type="hidden" name="pk_{{$k}}" value="{{$v}}">{{end}}
<p><label>Entry file name <input name="entry" value="main.easl"></label></p>
<p><textarea name="code" rows="16" cols="80">// EASL post-processing code
let info = datasetInfo(filename)
print("grid:", info.n)
</textarea></p>
<button type="submit">Upload and run</button>
</form>
`)
