package sqltypes

import (
	"math"
	"strings"
)

// Compare orders two non-NULL values. It returns (-1|0|1, true) when the
// pair is comparable under SQL rules (numeric with numeric, string with
// string/CLOB, bool with bool, time with time, blob with blob, datalink
// with datalink by URL), and (0, false) otherwise — including when either
// side is NULL, since NULL compares as UNKNOWN.
func Compare(a, b Value) (int, bool) {
	if a.kind == KindNull || b.kind == KindNull {
		return 0, false
	}
	// Numeric cross-kind promotion.
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			return cmpInt(int64(a.x), int64(b.x)), true
		}
		af, _ := a.AsDouble()
		bf, _ := b.AsDouble()
		return cmpFloat(af, bf), true
	}
	switch {
	case a.IsTextual() && b.IsTextual():
		return strings.Compare(a.s, b.s), true
	case a.kind == KindBool && b.kind == KindBool:
		return cmpInt(int64(a.x), int64(b.x)), true
	case a.kind == KindTime && b.kind == KindTime:
		an, afar := a.timeOrd()
		bn, bfar := b.timeOrd()
		if !afar && !bfar {
			return cmpInt(an, bn), true
		}
		at, bt := a.Time(), b.Time()
		switch {
		case at.Before(bt):
			return -1, true
		case at.After(bt):
			return 1, true
		default:
			return 0, true
		}
	case a.kind == KindBytes && b.kind == KindBytes:
		return strings.Compare(a.s, b.s), true
	case a.kind == KindDatalink && b.kind == KindDatalink:
		return strings.Compare(a.s, b.s), true
	// Mixed string/number: SQL engines typically attempt numeric coercion
	// of the string operand; we follow that convention because the QBE
	// layer sends every restriction as text.
	case a.IsTextual() && b.IsNumeric():
		if af, ok := a.AsDouble(); ok {
			bf, _ := b.AsDouble()
			return cmpFloat(af, bf), true
		}
		return 0, false
	case a.IsNumeric() && b.IsTextual():
		if bf, ok := b.AsDouble(); ok {
			af, _ := a.AsDouble()
			return cmpFloat(af, bf), true
		}
		return 0, false
	case a.kind == KindTime && b.IsTextual():
		if bt, err := ParseTimestamp(b.s); err == nil {
			return Compare(a, NewTime(bt))
		}
		return 0, false
	case a.IsTextual() && b.kind == KindTime:
		c, ok := Compare(b, a)
		return -c, ok
	}
	return 0, false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case a == b:
		return 0
	}
	// At least one NaN (every operator above is false). Order NaN below
	// every number and equal to itself, keeping the ordering total —
	// the naive "neither < nor >" fallthrough reported NaN equal to
	// everything, which no index structure can represent.
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	default:
		return 1
	}
}

// SortCompare orders values for ORDER BY: NULLs sort first, then by
// Compare; incomparable pairs order by kind so sorting is total and stable.
func SortCompare(a, b Value) int {
	an, bn := a.kind == KindNull, b.kind == KindNull
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	return cmpInt(int64(a.kind), int64(b.kind))
}
