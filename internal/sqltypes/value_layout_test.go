package sqltypes

import (
	"testing"
	"time"
	"unsafe"
)

// TestValueLayoutSize pins the compact layout: rows are copied by value
// throughout the SELECT path, so Value must stay within 32 bytes (kind
// + flags + one scalar word + a string header).
func TestValueLayoutSize(t *testing.T) {
	if got := unsafe.Sizeof(Value{}); got > 32 {
		t.Fatalf("unsafe.Sizeof(Value) = %d, want <= 32", got)
	}
}

// TestTimeRoundTrip covers the inline nanosecond window, the zero-time
// sentinel and the far-time (marshalled) fallback.
func TestTimeRoundTrip(t *testing.T) {
	cases := []time.Time{
		{}, // zero time must survive exactly
		time.Date(1999, 1, 10, 15, 9, 32, 0, time.UTC),
		time.Date(2026, 7, 28, 0, 0, 0, 123456789, time.UTC),
		time.Unix(0, 1),
		time.Unix(0, -1),
		time.Date(1677, 9, 1, 0, 0, 0, 0, time.UTC),  // before the int64-ns window
		time.Date(2263, 1, 1, 0, 0, 0, 0, time.UTC),  // after the window
		time.Date(1000, 6, 15, 12, 30, 45, 7, time.UTC),
		time.Date(9999, 12, 31, 23, 59, 59, 999999999, time.UTC),
	}
	for _, want := range cases {
		v := NewTime(want)
		if v.Kind() != KindTime {
			t.Fatalf("NewTime(%v).Kind() = %v", want, v.Kind())
		}
		got := v.Time()
		if !got.Equal(want) {
			t.Fatalf("Time round trip: got %v, want %v", got, want)
		}
	}
}

// TestTimeCompareAcrossLayouts orders inline and far timestamps
// consistently.
func TestTimeCompareAcrossLayouts(t *testing.T) {
	times := []time.Time{
		time.Date(1000, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1677, 9, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1999, 1, 10, 15, 9, 32, 0, time.UTC),
		time.Date(1999, 1, 10, 15, 9, 32, 1, time.UTC),
		time.Date(2263, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	for i := range times {
		for j := range times {
			c, ok := Compare(NewTime(times[i]), NewTime(times[j]))
			if !ok {
				t.Fatalf("Compare(%v, %v) not ok", times[i], times[j])
			}
			want := 0
			if times[i].Before(times[j]) {
				want = -1
			} else if times[i].After(times[j]) {
				want = 1
			}
			if c != want {
				t.Fatalf("Compare(%v, %v) = %d, want %d", times[i], times[j], c, want)
			}
		}
	}
}

// TestBytesRoundTrip: the BLOB payload aliases the constructor slice.
func TestBytesRoundTrip(t *testing.T) {
	if got := NewBytes(nil).Bytes(); got != nil {
		t.Fatalf("NewBytes(nil).Bytes() = %v, want nil", got)
	}
	b := []byte{0, 1, 2, 0xff}
	v := NewBytes(b)
	got := v.Bytes()
	if string(got) != string(b) {
		t.Fatalf("Bytes round trip: %v != %v", got, b)
	}
	if v.Size() != 4 {
		t.Fatalf("Size = %d", v.Size())
	}
	if c, ok := Compare(v, NewBytes([]byte{0, 1, 2, 0xff})); !ok || c != 0 {
		t.Fatalf("equal blobs compare %d ok=%v", c, ok)
	}
	if c, ok := Compare(v, NewBytes([]byte{0, 2})); !ok || c >= 0 {
		t.Fatalf("blob ordering compare %d ok=%v", c, ok)
	}
}
