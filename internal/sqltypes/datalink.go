package sqltypes

import (
	"fmt"
	"strings"
)

// The SQL/MED DATALINK column options (ISO/IEC 9075-9). Each option maps
// one-to-one onto the clauses shown in the paper's CREATE TABLE slide:
//
//	download_result DATALINK
//	    LINKTYPE URL
//	    FILE LINK CONTROL
//	    READ PERMISSION DB ...
type (
	// ReadPermission controls who may read a linked file.
	ReadPermission uint8
	// WritePermission controls who may modify a linked file.
	WritePermission uint8
	// UnlinkAction controls what happens to the file when its row is
	// deleted (or the DATALINK value replaced).
	UnlinkAction uint8
)

// READ PERMISSION values.
const (
	// ReadFS — the file system alone controls reads (no tokens).
	ReadFS ReadPermission = iota
	// ReadDB — reads require an encrypted access token obtained from the
	// database by a user holding SELECT privilege; this is the mode EASIA
	// uses for result files.
	ReadDB
)

// WRITE PERMISSION values.
const (
	// WriteFS — the file system controls writes.
	WriteFS WritePermission = iota
	// WriteBlocked — linked files are immutable while linked.
	WriteBlocked
)

// ON UNLINK values.
const (
	// UnlinkNone — nothing happens on unlink (only valid without file
	// link control).
	UnlinkNone UnlinkAction = iota
	// UnlinkRestore — ownership/permissions are restored to the file
	// owner; the file remains.
	UnlinkRestore
	// UnlinkDelete — the file is deleted when unlinked.
	UnlinkDelete
)

// DatalinkOptions is the full option set for one DATALINK column.
// The zero value is "DATALINK LINKTYPE URL NO FILE LINK CONTROL".
type DatalinkOptions struct {
	// FileLinkControl — when true the DBMS takes control of the file:
	// existence is checked at INSERT/UPDATE, and the file manager blocks
	// rename/delete while linked.
	FileLinkControl bool
	// IntegrityAll — INTEGRITY ALL (files may not be deleted/renamed
	// through any interface while linked); false means SELECTIVE.
	IntegrityAll bool
	ReadPerm     ReadPermission
	WritePerm    WritePermission
	// RecoveryYes — the DBMS includes the file in coordinated
	// backup/recovery (RECOVERY YES).
	RecoveryYes bool
	OnUnlink    UnlinkAction
	// TokenLifetime is the access-token expiry interval in seconds for
	// READ PERMISSION DB columns; 0 selects the database default. The
	// paper: "The access tokens have a finite life determined by a
	// database configuration parameter."
	TokenLifetime int
}

// DefaultEASIA returns the option set used by the paper's RESULT_FILE
// table: full link control, DB read permission, blocked writes, recovery
// and restore-on-unlink.
func DefaultEASIA() DatalinkOptions {
	return DatalinkOptions{
		FileLinkControl: true,
		IntegrityAll:    true,
		ReadPerm:        ReadDB,
		WritePerm:       WriteBlocked,
		RecoveryYes:     true,
		OnUnlink:        UnlinkRestore,
	}
}

// String renders the options as DDL clauses.
func (o DatalinkOptions) String() string {
	var b strings.Builder
	b.WriteString("LINKTYPE URL")
	if o.FileLinkControl {
		b.WriteString(" FILE LINK CONTROL")
		if o.IntegrityAll {
			b.WriteString(" INTEGRITY ALL")
		} else {
			b.WriteString(" INTEGRITY SELECTIVE")
		}
		if o.ReadPerm == ReadDB {
			b.WriteString(" READ PERMISSION DB")
		} else {
			b.WriteString(" READ PERMISSION FS")
		}
		if o.WritePerm == WriteBlocked {
			b.WriteString(" WRITE PERMISSION BLOCKED")
		} else {
			b.WriteString(" WRITE PERMISSION FS")
		}
		if o.RecoveryYes {
			b.WriteString(" RECOVERY YES")
		} else {
			b.WriteString(" RECOVERY NO")
		}
		switch o.OnUnlink {
		case UnlinkRestore:
			b.WriteString(" ON UNLINK RESTORE")
		case UnlinkDelete:
			b.WriteString(" ON UNLINK DELETE")
		}
	} else {
		b.WriteString(" NO FILE LINK CONTROL")
	}
	return b.String()
}

// Validate rejects option combinations SQL/MED forbids.
func (o DatalinkOptions) Validate() error {
	if !o.FileLinkControl {
		if o.ReadPerm == ReadDB {
			return fmt.Errorf("sqltypes: READ PERMISSION DB requires FILE LINK CONTROL")
		}
		if o.RecoveryYes {
			return fmt.Errorf("sqltypes: RECOVERY YES requires FILE LINK CONTROL")
		}
		if o.OnUnlink != UnlinkNone {
			return fmt.Errorf("sqltypes: ON UNLINK requires FILE LINK CONTROL")
		}
		return nil
	}
	if o.OnUnlink == UnlinkNone {
		return fmt.Errorf("sqltypes: FILE LINK CONTROL requires ON UNLINK RESTORE or DELETE")
	}
	if o.ReadPerm == ReadFS && o.OnUnlink == UnlinkDelete && !o.IntegrityAll {
		return fmt.Errorf("sqltypes: ON UNLINK DELETE with READ PERMISSION FS requires INTEGRITY ALL")
	}
	return nil
}

// DatalinkURL is the parsed form of a DATALINK value:
//
//	http://host/filesystem/directory/filename
//
// Scheme and Host identify the file server; Path is the file-server-local
// path (always beginning with "/").
type DatalinkURL struct {
	Scheme string
	Host   string // host[:port]
	Path   string // "/filesystem/directory/filename"
}

// ParseDatalinkURL parses the URL form used in INSERT/UPDATE statements.
// Only http and file schemes are accepted (LINKTYPE URL).
func ParseDatalinkURL(s string) (DatalinkURL, error) {
	rest := s
	var u DatalinkURL
	switch {
	case strings.HasPrefix(rest, "http://"):
		u.Scheme, rest = "http", rest[len("http://"):]
	case strings.HasPrefix(rest, "https://"):
		u.Scheme, rest = "https", rest[len("https://"):]
	case strings.HasPrefix(rest, "file://"):
		u.Scheme, rest = "file", rest[len("file://"):]
	default:
		return u, fmt.Errorf("sqltypes: datalink URL %q: unsupported scheme (want http/https/file)", s)
	}
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 {
		return u, fmt.Errorf("sqltypes: datalink URL %q: missing host or path", s)
	}
	u.Host = rest[:slash]
	u.Path = rest[slash:]
	if strings.HasSuffix(u.Path, "/") {
		return u, fmt.Errorf("sqltypes: datalink URL %q: path names a directory, not a file", s)
	}
	return u, nil
}

// String reassembles the canonical URL.
func (u DatalinkURL) String() string {
	return u.Scheme + "://" + u.Host + u.Path
}

// Dir returns the directory part of Path (with trailing slash trimmed),
// and File the final path element.
func (u DatalinkURL) Dir() string {
	i := strings.LastIndexByte(u.Path, '/')
	if i <= 0 {
		return "/"
	}
	return u.Path[:i]
}

// File returns the filename component of the linked path.
func (u DatalinkURL) File() string {
	i := strings.LastIndexByte(u.Path, '/')
	return u.Path[i+1:]
}

// WithToken injects an access token ahead of the filename, producing the
// SELECT-time form the paper shows:
//
//	http://host/filesystem/directory/access_token;filename
func (u DatalinkURL) WithToken(token string) string {
	return u.Scheme + "://" + u.Host + u.Dir() + "/" + token + ";" + u.File()
}

// SplitTokenizedPath splits a path of the form "/dir/token;file" into
// ("/dir/file", "token"). When no token is present the token is empty.
func SplitTokenizedPath(p string) (path, token string) {
	i := strings.LastIndexByte(p, '/')
	last := p[i+1:]
	if j := strings.IndexByte(last, ';'); j >= 0 {
		return p[:i+1] + last[j+1:], last[:j]
	}
	return p, ""
}
