package sqltypes

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero value is not NULL")
	}
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{NewInt(42), KindInt, "42"},
		{NewDouble(2.5), KindDouble, "2.5"},
		{NewString("abc"), KindString, "abc"},
		{NewBool(true), KindBool, "TRUE"},
		{NewBytes([]byte{1, 2}), KindBytes, "\x01\x02"},
		{NewClob("large text"), KindClob, "large text"},
		{NewDatalink("http://h/p/f"), KindDatalink, "http://h/p/f"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind(), c.kind)
		}
		if c.v.AsString() != c.str {
			t.Errorf("AsString = %q, want %q", c.v.AsString(), c.str)
		}
		if c.v.IsNull() {
			t.Errorf("%v claims NULL", c.v)
		}
	}
	ts := time.Date(2000, 3, 27, 9, 30, 0, 0, time.UTC)
	if NewTime(ts).AsString() != "2000-03-27 09:30:00" {
		t.Errorf("timestamp string = %q", NewTime(ts).AsString())
	}
}

func TestCoercions(t *testing.T) {
	if n, ok := NewString(" 17 ").AsInt(); !ok || n != 17 {
		t.Errorf("string→int: %d %v", n, ok)
	}
	if _, ok := NewString("x").AsInt(); ok {
		t.Error("garbage string coerced to int")
	}
	if f, ok := NewInt(3).AsDouble(); !ok || f != 3 {
		t.Errorf("int→double: %f %v", f, ok)
	}
	if f, ok := NewDouble(2.75).AsDouble(); !ok || f != 2.75 {
		t.Errorf("double identity: %f %v", f, ok)
	}
	if _, ok := NewDouble(2.5).AsInt(); ok {
		t.Error("fractional double coerced to int")
	}
}

// Property: Compare is antisymmetric and reflexive over ints/doubles/strings.
func TestCompareProperties(t *testing.T) {
	antisym := func(a, b int64) bool {
		x, y := NewInt(a), NewInt(b)
		c1, ok1 := Compare(x, y)
		c2, ok2 := Compare(y, x)
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	reflStr := func(s string) bool {
		c, ok := Compare(NewString(s), NewString(s))
		return ok && c == 0
	}
	if err := quick.Check(reflStr, nil); err != nil {
		t.Error(err)
	}
	crossNum := func(a int64, b float64) bool {
		c1, ok1 := Compare(NewInt(a), NewDouble(b))
		c2, ok2 := Compare(NewDouble(b), NewInt(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(crossNum, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareNullIsUnknown(t *testing.T) {
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("NULL compared")
	}
	if Null.Equal(Null) {
		t.Error("NULL = NULL must not be true")
	}
}

// Property: SortCompare is a total order (antisymmetric; NULLs first).
func TestSortCompareTotal(t *testing.T) {
	mk := func(sel uint8, n int64, s string) Value {
		switch sel % 4 {
		case 0:
			return Null
		case 1:
			return NewInt(n)
		case 2:
			return NewString(s)
		default:
			return NewDouble(float64(n) / 3)
		}
	}
	f := func(s1, s2 uint8, n1, n2 int64, a, b string) bool {
		x, y := mk(s1, n1, a), mk(s2, n2, b)
		return SortCompare(x, y) == -SortCompare(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	if SortCompare(Null, NewInt(-999)) != -1 {
		t.Error("NULL must sort first")
	}
}

func TestCoerceFor(t *testing.T) {
	vc := TypeInfo{Kind: KindString, Size: 5}
	if _, err := CoerceFor(vc, NewString("toolong")); err == nil {
		t.Error("overlong VARCHAR accepted")
	}
	v, err := CoerceFor(vc, NewInt(42))
	if err != nil || v.AsString() != "42" {
		t.Errorf("int→varchar: %v %v", v, err)
	}
	if v, err := CoerceFor(TypeInfo{Kind: KindBool}, NewString("yes")); err != nil || !v.Bool() {
		t.Errorf("yes→bool: %v %v", v, err)
	}
	if _, err := CoerceFor(TypeInfo{Kind: KindTime}, NewString("not a date")); err == nil {
		t.Error("garbage timestamp accepted")
	}
	if v, err := CoerceFor(TypeInfo{Kind: KindTime}, NewString("2000-03-27")); err != nil || v.Kind() != KindTime {
		t.Errorf("date literal: %v %v", v, err)
	}
	if _, err := CoerceFor(TypeInfo{Kind: KindDatalink}, NewString("ftp://host/x")); err == nil {
		t.Error("unsupported scheme accepted for DATALINK")
	}
	if v, err := CoerceFor(TypeInfo{Kind: KindDatalink}, NewString("http://h/d/f.dat")); err != nil || v.Kind() != KindDatalink {
		t.Errorf("url→datalink: %v %v", v, err)
	}
	// NULL passes through every type.
	for _, k := range []Kind{KindInt, KindDouble, KindString, KindBool, KindTime, KindBytes, KindClob, KindDatalink} {
		if v, err := CoerceFor(TypeInfo{Kind: k}, Null); err != nil || !v.IsNull() {
			t.Errorf("NULL into %v: %v %v", k, v, err)
		}
	}
}

func TestDatalinkURLParsing(t *testing.T) {
	u, err := ParseDatalinkURL("http://fs1.soton.ac.uk:8080/vol0/run1/ts42.tsf")
	if err != nil {
		t.Fatal(err)
	}
	if u.Scheme != "http" || u.Host != "fs1.soton.ac.uk:8080" || u.Path != "/vol0/run1/ts42.tsf" {
		t.Fatalf("parsed = %+v", u)
	}
	if u.Dir() != "/vol0/run1" || u.File() != "ts42.tsf" {
		t.Fatalf("dir/file = %q %q", u.Dir(), u.File())
	}
	if got := u.WithToken("TOK"); got != "http://fs1.soton.ac.uk:8080/vol0/run1/TOK;ts42.tsf" {
		t.Fatalf("WithToken = %q", got)
	}
	for _, bad := range []string{"ftp://h/p", "http://", "http://host", "http://host/dir/", "nonsense"} {
		if _, err := ParseDatalinkURL(bad); err == nil {
			t.Errorf("ParseDatalinkURL(%q) accepted", bad)
		}
	}
}

// Property: parse/format round-trips for URL-ish inputs.
func TestDatalinkRoundTripProperty(t *testing.T) {
	f := func(hostRaw, dirRaw, fileRaw string) bool {
		clean := func(s, fallback string) string {
			s = strings.Map(func(r rune) rune {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
					return r
				}
				return -1
			}, s)
			if s == "" {
				return fallback
			}
			return s
		}
		url := "http://" + clean(hostRaw, "host") + "/" + clean(dirRaw, "dir") + "/" + clean(fileRaw, "file")
		u, err := ParseDatalinkURL(url)
		return err == nil && u.String() == url
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplitTokenizedPath(t *testing.T) {
	p, tok := SplitTokenizedPath("/dir/sub/TOKEN;file.dat")
	if p != "/dir/sub/file.dat" || tok != "TOKEN" {
		t.Fatalf("got %q %q", p, tok)
	}
	p, tok = SplitTokenizedPath("/dir/plain.dat")
	if p != "/dir/plain.dat" || tok != "" {
		t.Fatalf("got %q %q", p, tok)
	}
}

func TestDatalinkOptionsValidate(t *testing.T) {
	if err := DefaultEASIA().Validate(); err != nil {
		t.Fatalf("paper defaults invalid: %v", err)
	}
	bad := DatalinkOptions{FileLinkControl: false, ReadPerm: ReadDB}
	if err := bad.Validate(); err == nil {
		t.Error("READ PERMISSION DB without control accepted")
	}
	bad = DatalinkOptions{FileLinkControl: false, RecoveryYes: true}
	if err := bad.Validate(); err == nil {
		t.Error("RECOVERY YES without control accepted")
	}
	bad = DatalinkOptions{FileLinkControl: true, OnUnlink: UnlinkNone}
	if err := bad.Validate(); err == nil {
		t.Error("control without ON UNLINK accepted")
	}
}

func TestDatalinkOptionsString(t *testing.T) {
	s := DefaultEASIA().String()
	for _, want := range []string{
		"LINKTYPE URL", "FILE LINK CONTROL", "INTEGRITY ALL",
		"READ PERMISSION DB", "WRITE PERMISSION BLOCKED",
		"RECOVERY YES", "ON UNLINK RESTORE",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("options string missing %q: %s", want, s)
		}
	}
	loose := DatalinkOptions{}
	if !strings.Contains(loose.String(), "NO FILE LINK CONTROL") {
		t.Errorf("loose options: %s", loose.String())
	}
}

func TestSizeAndStringRendering(t *testing.T) {
	if NewString("abcd").Size() != 4 || NewBytes(make([]byte, 9)).Size() != 9 {
		t.Error("sizes wrong")
	}
	if got := NewString("O'Brien").String(); got != "'O''Brien'" {
		t.Errorf("SQL literal escape: %q", got)
	}
	if got := NewDatalink("http://h/d/f").String(); !strings.HasPrefix(got, "DLVALUE(") {
		t.Errorf("datalink literal: %q", got)
	}
}

func TestParseTimestampFormats(t *testing.T) {
	for _, s := range []string{
		"2000-03-27 09:30:00",
		"2000-03-27",
		"2000-03-27T09:30:00Z",
	} {
		if _, err := ParseTimestamp(s); err != nil {
			t.Errorf("ParseTimestamp(%q): %v", s, err)
		}
	}
	if _, err := ParseTimestamp("27/03/2000"); err == nil {
		t.Error("ambiguous format accepted")
	}
}
