// Package sqltypes defines the SQL value system shared by the relational
// engine (internal/sqldb), the SQL/MED layer (internal/med) and every
// component above them.
//
// A Value is a compact tagged union covering the SQL types the EASIA
// archive needs: NULL, INTEGER, DOUBLE, VARCHAR, BOOLEAN, TIMESTAMP, BLOB,
// CLOB and DATALINK (SQL/MED, ISO/IEC 9075-9). Values are immutable by
// convention: once stored in the engine they must not be mutated in place.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported SQL kinds.
const (
	KindNull     Kind = iota
	KindInt           // INTEGER / BIGINT (64-bit)
	KindDouble        // DOUBLE PRECISION / FLOAT
	KindString        // CHAR / VARCHAR
	KindBool          // BOOLEAN
	KindTime          // TIMESTAMP
	KindBytes         // BLOB
	KindClob          // CLOB (character large object)
	KindDatalink      // DATALINK (SQL/MED)
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindDouble:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	case KindBytes:
		return "BLOB"
	case KindClob:
		return "CLOB"
	case KindDatalink:
		return "DATALINK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is SQL NULL.
type Value struct {
	kind Kind
	i    int64     // KindInt, KindBool (0/1)
	f    float64   // KindDouble
	s    string    // KindString, KindClob, KindDatalink (URL form)
	b    []byte    // KindBytes
	t    time.Time // KindTime
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewDouble returns a DOUBLE value.
func NewDouble(v float64) Value { return Value{kind: KindDouble, f: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// NewTime returns a TIMESTAMP value (stored in UTC).
func NewTime(v time.Time) Value { return Value{kind: KindTime, t: v.UTC()} }

// NewBytes returns a BLOB value. The slice is used directly; callers must
// not mutate it afterwards.
func NewBytes(v []byte) Value { return Value{kind: KindBytes, b: v} }

// NewClob returns a CLOB value.
func NewClob(v string) Value { return Value{kind: KindClob, s: v} }

// NewDatalink returns a DATALINK value holding the canonical URL form
// "scheme://host/path" exactly as it would appear in an SQL INSERT.
func NewDatalink(url string) Value { return Value{kind: KindDatalink, s: url} }

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the INTEGER payload; valid only when Kind()==KindInt or KindBool.
func (v Value) Int() int64 { return v.i }

// Double returns the DOUBLE payload.
func (v Value) Double() float64 { return v.f }

// Str returns the string payload of VARCHAR, CLOB or DATALINK values.
func (v Value) Str() string { return v.s }

// Bool returns the BOOLEAN payload.
func (v Value) Bool() bool { return v.i != 0 }

// Time returns the TIMESTAMP payload.
func (v Value) Time() time.Time { return v.t }

// Bytes returns the BLOB payload. Callers must not mutate the result.
func (v Value) Bytes() []byte { return v.b }

// AsInt coerces the value to int64 where a lossless or conventional SQL
// conversion exists.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt, KindBool:
		return v.i, true
	case KindDouble:
		if v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) {
			return int64(v.f), true
		}
		return 0, false
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	default:
		return 0, false
	}
}

// AsDouble coerces the value to float64 under SQL numeric promotion rules.
func (v Value) AsDouble() (float64, bool) {
	switch v.kind {
	case KindInt, KindBool:
		return float64(v.i), true
	case KindDouble:
		return v.f, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsString renders the value as the string a CAST(x AS VARCHAR) would give.
func (v Value) AsString() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindDouble:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString, KindClob, KindDatalink:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindTime:
		return v.t.Format("2006-01-02 15:04:05")
	case KindBytes:
		return string(v.b)
	default:
		return ""
	}
}

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool {
	return v.kind == KindInt || v.kind == KindDouble
}

// IsTextual reports whether the value is character data (VARCHAR or CLOB).
func (v Value) IsTextual() bool {
	return v.kind == KindString || v.kind == KindClob
}

// Size returns the logical size in bytes/characters of the value: the
// length for strings/CLOBs/BLOBs, 8 for numerics and timestamps, and the
// URL length for DATALINKs. The web layer displays this next to LOB and
// DATALINK hyperlinks, as in the paper's result-table figure.
func (v Value) Size() int {
	switch v.kind {
	case KindString, KindClob, KindDatalink:
		return len(v.s)
	case KindBytes:
		return len(v.b)
	case KindNull:
		return 0
	default:
		return 8
	}
}

// String implements fmt.Stringer with an SQL-literal style rendering,
// used in logs and error messages.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindClob:
		return fmt.Sprintf("CLOB(%d)", len(v.s))
	case KindBytes:
		return fmt.Sprintf("BLOB(%d)", len(v.b))
	case KindDatalink:
		return fmt.Sprintf("DLVALUE('%s')", v.s)
	default:
		return v.AsString()
	}
}

// Equal reports strict SQL equality (NULL is not equal to anything,
// including NULL). Use Compare for ordering with NULL handling.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	c, ok := Compare(v, o)
	return ok && c == 0
}
