// Package sqltypes defines the SQL value system shared by the relational
// engine (internal/sqldb), the SQL/MED layer (internal/med) and every
// component above them.
//
// A Value is a compact tagged union covering the SQL types the EASIA
// archive needs: NULL, INTEGER, DOUBLE, VARCHAR, BOOLEAN, TIMESTAMP, BLOB,
// CLOB and DATALINK (SQL/MED, ISO/IEC 9075-9). Values are immutable by
// convention: once stored in the engine they must not be mutated in place.
//
// # Layout
//
// Value is 32 bytes — a kind byte, a flags byte, one 64-bit scalar word
// and a string header — so SELECT scans copy rows in a handful of MOVs
// instead of the duffcopy loop the previous 112-byte struct (separate
// int64, float64, string, []byte and time.Time fields) required:
//
//	kind  Kind   — runtime type tag
//	flags uint8  — layout flags (flagFarTime)
//	x     uint64 — INTEGER payload, BOOLEAN (0/1), DOUBLE as IEEE-754
//	               bits, or TIMESTAMP as UTC unix nanoseconds
//	s     string — VARCHAR/CLOB/DATALINK text; BLOB bytes aliased as a
//	               string (values are immutable, so the no-copy view is
//	               safe); far-timestamp gob payload
//
// Invariants:
//
//   - The zero Value is SQL NULL.
//   - TIMESTAMP values are stored in UTC. Instants representable as
//     int64 nanoseconds (years 1678–2262, plus the zero time.Time) live
//     in x; anything outside that window sets flagFarTime and keeps the
//     time.Time marshalled in s, so no instant is silently truncated.
//   - BLOB payloads alias the []byte passed to NewBytes; neither the
//     caller (after construction) nor the receiver of Bytes() may
//     mutate them.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
	"unsafe"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported SQL kinds.
const (
	KindNull     Kind = iota
	KindInt           // INTEGER / BIGINT (64-bit)
	KindDouble        // DOUBLE PRECISION / FLOAT
	KindString        // CHAR / VARCHAR
	KindBool          // BOOLEAN
	KindTime          // TIMESTAMP
	KindBytes         // BLOB
	KindClob          // CLOB (character large object)
	KindDatalink      // DATALINK (SQL/MED)
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindDouble:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindTime:
		return "TIMESTAMP"
	case KindBytes:
		return "BLOB"
	case KindClob:
		return "CLOB"
	case KindDatalink:
		return "DATALINK"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// flagFarTime marks a TIMESTAMP whose instant lies outside the int64
// unix-nanosecond window; its payload is marshalled in s instead of x.
const flagFarTime = 1 << 0

// zeroTimeBits is the x sentinel (the bit pattern of math.MinInt64) for
// the zero time.Time, which predates the nanosecond window but must
// round-trip exactly (it is the "absent" timestamp throughout the
// archive).
const zeroTimeBits uint64 = 1 << 63

// The int64-nanosecond window NewTime can encode inline.
var (
	minNanoTime = time.Unix(0, math.MinInt64).Add(time.Nanosecond).UTC()
	maxNanoTime = time.Unix(0, math.MaxInt64).UTC()
)

// InNanoRange reports whether t lies in the window representable as
// int64 unix nanoseconds — the instants Value stores inline and
// UnixNano is defined for. Callers persisting timestamps (the sqldb
// codec) must use a wider encoding outside it.
func InNanoRange(t time.Time) bool {
	return !t.Before(minNanoTime) && !t.After(maxNanoTime)
}

// Value is a single SQL value. The zero Value is SQL NULL.
// See the package comment for the layout and its invariants.
type Value struct {
	kind  Kind
	flags uint8
	x     uint64
	s     string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER value.
func NewInt(v int64) Value { return Value{kind: KindInt, x: uint64(v)} }

// NewDouble returns a DOUBLE value.
func NewDouble(v float64) Value { return Value{kind: KindDouble, x: math.Float64bits(v)} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value {
	var x uint64
	if v {
		x = 1
	}
	return Value{kind: KindBool, x: x}
}

// NewTime returns a TIMESTAMP value (stored in UTC).
func NewTime(v time.Time) Value {
	t := v.UTC()
	if t.IsZero() {
		return Value{kind: KindTime, x: zeroTimeBits}
	}
	if t.Before(minNanoTime) || t.After(maxNanoTime) {
		// Outside the inline window (before 1678 or after 2262): keep
		// the full instant marshalled rather than truncating it.
		b, err := t.MarshalBinary()
		if err != nil {
			// MarshalBinary only fails on malformed zone offsets, which
			// UTC() has already normalised away; keep NULL-safe anyway.
			return Value{kind: KindTime, x: zeroTimeBits}
		}
		return Value{kind: KindTime, flags: flagFarTime, s: string(b)}
	}
	return Value{kind: KindTime, x: uint64(t.UnixNano())}
}

// NewBytes returns a BLOB value. The slice is used directly; callers must
// not mutate it afterwards.
func NewBytes(v []byte) Value {
	return Value{kind: KindBytes, s: unsafe.String(unsafe.SliceData(v), len(v))}
}

// NewClob returns a CLOB value.
func NewClob(v string) Value { return Value{kind: KindClob, s: v} }

// NewDatalink returns a DATALINK value holding the canonical URL form
// "scheme://host/path" exactly as it would appear in an SQL INSERT.
func NewDatalink(url string) Value { return Value{kind: KindDatalink, s: url} }

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the INTEGER payload; valid only when Kind()==KindInt or KindBool.
func (v Value) Int() int64 { return int64(v.x) }

// Double returns the DOUBLE payload.
func (v Value) Double() float64 { return math.Float64frombits(v.x) }

// Str returns the string payload of VARCHAR, CLOB or DATALINK values.
func (v Value) Str() string { return v.s }

// Bool returns the BOOLEAN payload.
func (v Value) Bool() bool { return v.x != 0 }

// Time returns the TIMESTAMP payload.
func (v Value) Time() time.Time {
	if v.flags&flagFarTime != 0 {
		var t time.Time
		if err := t.UnmarshalBinary([]byte(v.s)); err != nil {
			return time.Time{}
		}
		return t
	}
	if v.x == zeroTimeBits {
		return time.Time{}
	}
	return time.Unix(0, int64(v.x)).UTC()
}

// timeOrd returns an ordering key for TIMESTAMP values: far times order
// by their reconstructed instant, inline times by their nanosecond word.
// Comparing two inline timestamps never allocates.
func (v Value) timeOrd() (nanos int64, far bool) {
	if v.flags&flagFarTime != 0 {
		return 0, true
	}
	return int64(v.x), false
}

// Bytes returns the BLOB payload. Callers must not mutate the result.
func (v Value) Bytes() []byte {
	if len(v.s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(v.s), len(v.s))
}

// AsInt coerces the value to int64 where a lossless or conventional SQL
// conversion exists.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt, KindBool:
		return int64(v.x), true
	case KindDouble:
		f := v.Double()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			return int64(f), true
		}
		return 0, false
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		if err != nil {
			return 0, false
		}
		return n, true
	default:
		return 0, false
	}
}

// AsDouble coerces the value to float64 under SQL numeric promotion rules.
func (v Value) AsDouble() (float64, bool) {
	switch v.kind {
	case KindInt, KindBool:
		return float64(int64(v.x)), true
	case KindDouble:
		return v.Double(), true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// AsString renders the value as the string a CAST(x AS VARCHAR) would give.
func (v Value) AsString() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(int64(v.x), 10)
	case KindDouble:
		return strconv.FormatFloat(v.Double(), 'g', -1, 64)
	case KindString, KindClob, KindDatalink, KindBytes:
		return v.s
	case KindBool:
		if v.x != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindTime:
		return v.Time().Format("2006-01-02 15:04:05")
	default:
		return ""
	}
}

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool {
	return v.kind == KindInt || v.kind == KindDouble
}

// IsTextual reports whether the value is character data (VARCHAR or CLOB).
func (v Value) IsTextual() bool {
	return v.kind == KindString || v.kind == KindClob
}

// Size returns the logical size in bytes/characters of the value: the
// length for strings/CLOBs/BLOBs, 8 for numerics and timestamps, and the
// URL length for DATALINKs. The web layer displays this next to LOB and
// DATALINK hyperlinks, as in the paper's result-table figure.
func (v Value) Size() int {
	switch v.kind {
	case KindString, KindClob, KindDatalink, KindBytes:
		return len(v.s)
	case KindNull:
		return 0
	default:
		return 8
	}
}

// String implements fmt.Stringer with an SQL-literal style rendering,
// used in logs and error messages.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindClob:
		return fmt.Sprintf("CLOB(%d)", len(v.s))
	case KindBytes:
		return fmt.Sprintf("BLOB(%d)", len(v.s))
	case KindDatalink:
		return fmt.Sprintf("DLVALUE('%s')", v.s)
	default:
		return v.AsString()
	}
}

// Equal reports strict SQL equality (NULL is not equal to anything,
// including NULL). Use Compare for ordering with NULL handling.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	c, ok := Compare(v, o)
	return ok && c == 0
}
