package sqltypes

import (
	"fmt"
	"strings"
	"time"
)

// TypeInfo is the declared type of a table column, as written in DDL.
// Size is the declared length for VARCHAR/CHAR (0 means unbounded).
// Datalink carries the SQL/MED column options for DATALINK columns.
type TypeInfo struct {
	Kind     Kind
	Size     int
	Datalink *DatalinkOptions
}

// String renders the type as it would appear in CREATE TABLE.
func (t TypeInfo) String() string {
	switch t.Kind {
	case KindString:
		if t.Size > 0 {
			return fmt.Sprintf("VARCHAR(%d)", t.Size)
		}
		return "VARCHAR"
	case KindDatalink:
		if t.Datalink != nil {
			return "DATALINK " + t.Datalink.String()
		}
		return "DATALINK"
	default:
		return t.Kind.String()
	}
}

// ParseTimestamp parses the timestamp literal formats accepted in SQL text
// and QBE form input.
func ParseTimestamp(s string) (time.Time, error) {
	s = strings.TrimSpace(s)
	for _, layout := range []string{
		"2006-01-02 15:04:05.999999999",
		"2006-01-02 15:04:05",
		"2006-01-02T15:04:05Z07:00",
		"2006-01-02",
	} {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), nil
		}
	}
	return time.Time{}, fmt.Errorf("sqltypes: cannot parse timestamp %q", s)
}

// CoerceFor converts v so it can be stored into a column of type t,
// returning an error when SQL assignment rules forbid the conversion.
// It is the single point deciding INSERT/UPDATE type compatibility.
func CoerceFor(t TypeInfo, v Value) (Value, error) {
	if v.IsNull() {
		return Null, nil
	}
	switch t.Kind {
	case KindInt:
		if n, ok := v.AsInt(); ok {
			return NewInt(n), nil
		}
	case KindDouble:
		if f, ok := v.AsDouble(); ok {
			return NewDouble(f), nil
		}
	case KindString:
		if v.IsTextual() || v.IsNumeric() || v.kind == KindBool || v.kind == KindTime {
			s := v.AsString()
			if t.Size > 0 && len(s) > t.Size {
				return Null, fmt.Errorf("sqltypes: value too long for %s (%d > %d)", t, len(s), t.Size)
			}
			return NewString(s), nil
		}
	case KindBool:
		switch v.kind {
		case KindBool:
			return v, nil
		case KindInt:
			return NewBool(v.x != 0), nil
		case KindString:
			switch strings.ToUpper(strings.TrimSpace(v.s)) {
			case "TRUE", "T", "1", "YES":
				return NewBool(true), nil
			case "FALSE", "F", "0", "NO":
				return NewBool(false), nil
			}
		}
	case KindTime:
		switch v.kind {
		case KindTime:
			return v, nil
		case KindString:
			if ts, err := ParseTimestamp(v.s); err == nil {
				return NewTime(ts), nil
			}
		}
	case KindBytes:
		switch v.kind {
		case KindBytes:
			return v, nil
		case KindString, KindClob:
			return NewBytes([]byte(v.s)), nil
		}
	case KindClob:
		if v.IsTextual() {
			return NewClob(v.AsString()), nil
		}
		if v.kind == KindBytes {
			return NewClob(v.s), nil
		}
	case KindDatalink:
		switch v.kind {
		case KindDatalink:
			return v, nil
		case KindString:
			if _, err := ParseDatalinkURL(v.s); err != nil {
				return Null, err
			}
			return NewDatalink(v.s), nil
		}
	}
	return Null, fmt.Errorf("sqltypes: cannot store %s value into %s column", v.Kind(), t)
}
