package iofault

import (
	"fmt"
	"math/rand"
	"os"
)

// Post-crash tail mutations for corruption corpora: these edit a file
// in place the way a dying disk or a buggy tool would, so recovery code
// can be pinned against torn frames, bit flips and garbage tails. They
// operate on the real filesystem — corruption is injected between
// "process death" and "restart", when no FS handle exists.

// FlipBit flips one bit of the byte at off (negative off counts back
// from the end of the file).
func FlipBit(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if off < 0 {
		off += fi.Size()
	}
	if off < 0 || off >= fi.Size() {
		return fmt.Errorf("iofault: FlipBit offset %d outside file of %d bytes", off, fi.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= 0x10
	_, err = f.WriteAt(b[:], off)
	return err
}

// AppendGarbage appends n pseudo-random bytes (a torn, never-synced
// tail of foreign data).
func AppendGarbage(path string, rng *rand.Rand, n int) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	b := make([]byte, n)
	rng.Read(b) //nolint:errcheck // rand.Read never fails
	_, err = f.Write(b)
	return err
}

// TruncateTail cuts the last n bytes off the file (a torn final write).
func TruncateTail(path string, n int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}
