package iofault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
)

// Fault-injection controller, shaped like netsim.Faults: production code
// is handed a Faults as its FS and the test scripts failures against it.
//
//   - FailSync(substr): every fsync of a file whose path contains substr
//     fails (sticky until HealSync) — the fsyncgate shape: the kernel may
//     have dropped the dirty pages, so a later retry succeeding proves
//     nothing. The storage layers must treat the first failure as fatal.
//   - ShortWriteNext(substr, keep): the next write to a matching file
//     persists only the first keep bytes and reports a short write.
//   - CrashAfterOps(substr, n, torn): the nth subsequent mutating
//     operation touching a matching path is the crash point — a write
//     persists only torn bytes, any other operation (sync, rename,
//     truncate, remove) does not happen at all — and every operation
//     after it fails with ErrCrashed, exactly what a process death looks
//     like to the next process that opens the directory.
//
// Close remains allowed after a crash (it releases the real descriptor
// so crash-loop tests do not leak fds) but syncs nothing.

// Errors surfaced by injected faults.
var (
	// ErrCrashed is returned by every operation after a scripted crash
	// point has fired.
	ErrCrashed = errors.New("iofault: simulated crash")
	// ErrInjected wraps non-crash injected failures (fsync errors, short
	// writes) so tests can assert the failure came from the script.
	ErrInjected = errors.New("iofault: injected I/O failure")
)

type crashRule struct {
	substr    string
	remaining int
	torn      int
}

type shortRule struct {
	substr string
	keep   int
}

// Faults wraps a base FS with scripted failures.
type Faults struct {
	mu        sync.Mutex
	base      FS
	ops       int // mutating operations observed
	crashed   bool
	crash     *crashRule
	short     *shortRule
	failSyncs map[string]bool
}

// New wraps base (nil selects Disk) with a controller holding no
// scripted failures.
func New(base FS) *Faults {
	if base == nil {
		base = Disk{}
	}
	return &Faults{base: base, failSyncs: make(map[string]bool)}
}

// FailSync makes every Sync of files whose path contains substr fail
// until HealSync. Matching "" fails every sync.
func (f *Faults) FailSync(substr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs[substr] = true
}

// HealSync removes a FailSync rule. Durable state must NOT become
// writable again just because the fault cleared — that is exactly the
// retry-after-failed-fsync hole the storage layers guard against.
func (f *Faults) HealSync(substr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.failSyncs, substr)
}

// ShortWriteNext arms a one-shot short write: the next write to a file
// whose path contains substr persists only keep bytes.
func (f *Faults) ShortWriteNext(substr string, keep int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.short = &shortRule{substr: substr, keep: keep}
}

// CrashAfterOps arms the crash point: the nth (1-based) subsequent
// mutating operation on a path containing substr fires it. If that
// operation is a write, its first torn bytes persist (a torn tail);
// any other mutating operation is suppressed entirely. "" matches every
// path.
func (f *Faults) CrashAfterOps(substr string, n, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = false
	f.crash = &crashRule{substr: substr, remaining: n, torn: torn}
}

// CrashNow fires the crash point immediately.
func (f *Faults) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
	f.crash = nil
}

// Crashed reports whether the crash point has fired.
func (f *Faults) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops reports how many mutating operations the controller has observed
// (schedule calibration for the soak tests).
func (f *Faults) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// gate records one mutating op against path and reports what the script
// says should happen: crashed (operation must fail), and for writes the
// torn byte count (-1 = write everything).
func (f *Faults) gate(path string, isWrite bool) (dead bool, torn int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return true, 0
	}
	f.ops++
	if f.crash != nil && strings.Contains(path, f.crash.substr) {
		f.crash.remaining--
		if f.crash.remaining <= 0 {
			f.crashed = true
			t := f.crash.torn
			f.crash = nil
			if isWrite {
				return false, t // this write tears, then the world ends
			}
			return true, 0
		}
	}
	return false, -1
}

// dead reports whether the crash point has fired (read-path check).
func (f *Faults) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// OpenFile implements FS.
func (f *Faults) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	mutates := flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0
	if mutates {
		if dead, _ := f.gate(name, false); dead {
			return nil, fmt.Errorf("%w: open %s", ErrCrashed, name)
		}
	} else if f.dead() {
		return nil, fmt.Errorf("%w: open %s", ErrCrashed, name)
	}
	fl, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: fl, ctl: f}, nil
}

// Rename implements FS.
func (f *Faults) Rename(oldpath, newpath string) error {
	if dead, _ := f.gate(newpath, false); dead {
		return fmt.Errorf("%w: rename %s", ErrCrashed, newpath)
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faults) Remove(name string) error {
	if dead, _ := f.gate(name, false); dead {
		return fmt.Errorf("%w: remove %s", ErrCrashed, name)
	}
	return f.base.Remove(name)
}

// Truncate implements FS.
func (f *Faults) Truncate(name string, size int64) error {
	if dead, _ := f.gate(name, false); dead {
		return fmt.Errorf("%w: truncate %s", ErrCrashed, name)
	}
	return f.base.Truncate(name, size)
}

// MkdirAll implements FS.
func (f *Faults) MkdirAll(path string, perm os.FileMode) error {
	if dead, _ := f.gate(path, false); dead {
		return fmt.Errorf("%w: mkdir %s", ErrCrashed, path)
	}
	return f.base.MkdirAll(path, perm)
}

// Stat implements FS.
func (f *Faults) Stat(name string) (os.FileInfo, error) {
	if f.dead() {
		return nil, fmt.Errorf("%w: stat %s", ErrCrashed, name)
	}
	return f.base.Stat(name)
}

// SyncDir implements FS.
func (f *Faults) SyncDir(dir string) error {
	if dead, _ := f.gate(dir, false); dead {
		return fmt.Errorf("%w: syncdir %s", ErrCrashed, dir)
	}
	f.mu.Lock()
	for substr := range f.failSyncs {
		if strings.Contains(dir, substr) {
			f.mu.Unlock()
			return fmt.Errorf("%w: fsync dir %s", ErrInjected, dir)
		}
	}
	f.mu.Unlock()
	return f.base.SyncDir(dir)
}

type faultFile struct {
	f   File
	ctl *Faults
}

func (ff *faultFile) Name() string { return ff.f.Name() }

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.ctl.dead() {
		return 0, fmt.Errorf("%w: read %s", ErrCrashed, ff.f.Name())
	}
	return ff.f.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	name := ff.f.Name()
	dead, torn := ff.ctl.gate(name, true)
	if dead {
		return 0, fmt.Errorf("%w: write %s", ErrCrashed, name)
	}
	if torn >= 0 { // crash point: persist the torn prefix, then die
		if torn > len(p) {
			torn = len(p)
		}
		if torn > 0 {
			ff.f.Write(p[:torn]) //nolint:errcheck // the caller sees the crash either way
		}
		return torn, fmt.Errorf("%w: write %s torn after %d bytes", ErrCrashed, name, torn)
	}
	ff.ctl.mu.Lock()
	if s := ff.ctl.short; s != nil && strings.Contains(name, s.substr) {
		keep := s.keep
		ff.ctl.short = nil
		ff.ctl.mu.Unlock()
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			if _, err := ff.f.Write(p[:keep]); err != nil {
				return 0, err
			}
		}
		return keep, fmt.Errorf("%w: %w", ErrInjected, io.ErrShortWrite)
	}
	ff.ctl.mu.Unlock()
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	name := ff.f.Name()
	dead, _ := ff.ctl.gate(name, false)
	if dead {
		return fmt.Errorf("%w: fsync %s", ErrCrashed, name)
	}
	ff.ctl.mu.Lock()
	for substr := range ff.ctl.failSyncs {
		if strings.Contains(name, substr) {
			ff.ctl.mu.Unlock()
			return fmt.Errorf("%w: fsync %s", ErrInjected, name)
		}
	}
	ff.ctl.mu.Unlock()
	return ff.f.Sync()
}

func (ff *faultFile) Stat() (os.FileInfo, error) {
	if ff.ctl.dead() {
		return nil, fmt.Errorf("%w: stat %s", ErrCrashed, ff.f.Name())
	}
	return ff.f.Stat()
}

// Close always releases the real descriptor — crash-loop tests reopen
// hundreds of databases and must not leak fds — but reports the crash
// so no caller mistakes it for a durable close.
func (ff *faultFile) Close() error {
	err := ff.f.Close()
	if ff.ctl.dead() {
		return nil // the data's fate was already reported by write/sync
	}
	return err
}

var _ FS = (*Faults)(nil)
