package iofault

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomicDurableReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	fs := Disk{}
	if err := WriteFileAtomic(fs, path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(fs, path, []byte("v2"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2" {
		t.Fatalf("read %q, %v; want v2", b, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("tmp file left behind: %v", err)
	}
}

func TestFailSyncIsStickyUntilHealed(t *testing.T) {
	dir := t.TempDir()
	f := New(nil)
	fl, err := Create(f, filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	f.FailSync("wal.log")
	if err := fl.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync with FailSync rule: %v, want ErrInjected", err)
	}
	if err := fl.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second sync: %v, want sticky ErrInjected", err)
	}
	f.HealSync("wal.log")
	if err := fl.Sync(); err != nil {
		t.Fatalf("sync after heal: %v", err)
	}
}

func TestShortWriteNextIsOneShot(t *testing.T) {
	dir := t.TempDir()
	f := New(nil)
	path := filepath.Join(dir, "data")
	fl, err := Create(f, path)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	f.ShortWriteNext("data", 3)
	n, err := fl.Write([]byte("hello world"))
	if n != 3 || !errors.Is(err, ErrInjected) || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if n, err := fl.Write([]byte("!!")); n != 2 || err != nil {
		t.Fatalf("write after one-shot rule: n=%d err=%v", n, err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "hel!!" {
		t.Fatalf("on disk %q, want only the torn prefix plus the clean write", b)
	}
}

func TestCrashAfterOpsTornWriteAndDeadness(t *testing.T) {
	dir := t.TempDir()
	f := New(nil)
	path := filepath.Join(dir, "wal.log")
	fl, err := Create(f, path)
	if err != nil {
		t.Fatal(err)
	}
	// Creating the file was mutating op 1; arm the crash on the second
	// write from now, tearing it after 4 bytes.
	f.CrashAfterOps("wal.log", 2, 4)
	if _, err := fl.Write([]byte("first-")); err != nil {
		t.Fatal(err)
	}
	n, err := fl.Write([]byte("second"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point write: %v, want ErrCrashed", err)
	}
	if n != 4 {
		t.Fatalf("torn write persisted %d bytes, want 4", n)
	}
	if !f.Crashed() {
		t.Fatal("controller not dead after crash point")
	}
	// Everything after the crash fails — including new opens and syncs.
	if err := fl.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if _, err := Create(f, filepath.Join(dir, "other")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create: %v", err)
	}
	if err := f.Rename(path, path+"x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v", err)
	}
	// Close still releases the descriptor without reporting an error.
	if err := fl.Close(); err != nil {
		t.Fatalf("post-crash close: %v", err)
	}
	// The torn prefix is what the "next process" sees.
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "first-seco" {
		t.Fatalf("on disk %q, %v; want torn prefix", b, err)
	}
}

func TestCrashSuppressesNonWriteMutations(t *testing.T) {
	dir := t.TempDir()
	f := New(nil)
	a := filepath.Join(dir, "a")
	if err := WriteFile(f, a, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	f.CrashNow()
	if err := f.Remove(a); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove: %v", err)
	}
	if _, err := os.Stat(a); err != nil {
		t.Fatal("suppressed remove still deleted the file")
	}
}

func TestMutators(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte{0, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, -1); err != nil {
		t.Fatal(err)
	}
	b, _ := os.ReadFile(path)
	if b[3] == 0 {
		t.Fatal("FlipBit changed nothing")
	}
	if err := AppendGarbage(path, rand.New(rand.NewSource(1)), 16); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 20 {
		t.Fatalf("size %d after AppendGarbage, want 20", fi.Size())
	}
	if err := TruncateTail(path, 18); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != 2 {
		t.Fatalf("size %d after TruncateTail, want 2", fi.Size())
	}
}
