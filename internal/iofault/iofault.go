// Package iofault is an injectable filesystem abstraction for the
// storage tiers. Production code takes an FS (Disk is the real thing)
// and a Faults controller wraps any FS with scriptable failures in the
// netsim style — per-path fsync errors, short writes, and crash points
// ("die after the Nth write to wal.log") — so the crash-recovery and
// durability tests exercise the exact file operations production runs,
// not mocks of them.
//
// The package also carries the durability helpers the storage layers
// share: SyncDir (parent-directory fsync, the half of atomic-rename
// durability that is easy to forget) and WriteFileAtomic
// (tmp + write + fsync + rename + dir fsync).
package iofault

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the storage tiers use.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
}

// FS is the filesystem the storage tiers run on. Disk is the real
// implementation; Faults wraps any FS with injected failures.
type FS interface {
	// OpenFile is the generalised open call (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making previously-renamed or created
	// entries durable. An atomic-rename that skips it can lose the new
	// name (or resurrect the old file) across a power failure.
	SyncDir(dir string) error
}

// Disk is the real filesystem.
type Disk struct{}

type diskFile struct{ *os.File }

// OpenFile implements FS.
func (Disk) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return diskFile{f}, nil
}

// Rename implements FS.
func (Disk) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (Disk) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (Disk) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// MkdirAll implements FS.
func (Disk) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Stat implements FS.
func (Disk) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

// SyncDir implements FS: open the directory and fsync it.
func (Disk) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open opens name read-only on fs.
func Open(f FS, name string) (File, error) {
	return f.OpenFile(name, os.O_RDONLY, 0)
}

// Create creates (truncating) name on fs.
func Create(f FS, name string) (File, error) {
	return f.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// ReadFile reads the whole of name from fs.
func ReadFile(f FS, name string) ([]byte, error) {
	fl, err := Open(f, name)
	if err != nil {
		return nil, err
	}
	defer fl.Close()
	fi, err := fl.Stat()
	var data []byte
	if err == nil && fi.Size() > 0 {
		data = make([]byte, 0, int(fi.Size()))
	}
	buf := make([]byte, 32*1024)
	for {
		n, rerr := fl.Read(buf)
		data = append(data, buf[:n]...)
		if rerr == io.EOF {
			return data, nil
		}
		if rerr != nil {
			return data, rerr
		}
	}
}

// WriteFile writes data to name on fs (no durability guarantee — the
// plain os.WriteFile shape). Prefer WriteFileAtomic for state files.
func WriteFile(f FS, name string, data []byte, perm os.FileMode) error {
	fl, err := f.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := fl.Write(data)
	cerr := fl.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// WriteFileAtomic durably replaces name with data: write to name+".tmp",
// fsync the file, rename over name, fsync the parent directory. After it
// returns nil, a crash at any point leaves either the complete old file
// or the complete new file — never a torn mix, never neither.
func WriteFileAtomic(f FS, name string, data []byte, perm os.FileMode) error {
	tmp := name + ".tmp"
	fl, err := f.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, err = fl.Write(data)
	if err == nil {
		err = fl.Sync()
	}
	if cerr := fl.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		f.Remove(tmp) //nolint:errcheck // best-effort cleanup of the torn tmp
		return err
	}
	if err := f.Rename(tmp, name); err != nil {
		f.Remove(tmp) //nolint:errcheck
		return err
	}
	return f.SyncDir(filepath.Dir(name))
}

// IsNotExist reports whether err is a not-exists error from any FS.
func IsNotExist(err error) bool {
	return errors.Is(err, fs.ErrNotExist)
}
