package netsim

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestFaultsPartitionAndHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	f := NewFaults()
	hc := f.Client(nil)

	if _, err := hc.Get(srv.URL); err != nil {
		t.Fatalf("healthy request: %v", err)
	}
	f.Partition(host)
	if !f.Partitioned(host) {
		t.Fatal("Partitioned not reported")
	}
	_, err := hc.Get(srv.URL)
	if err == nil {
		t.Fatal("request crossed a partition")
	}
	var pe *PartitionError
	if !errors.As(err, &pe) || pe.Host != host {
		t.Fatalf("err = %v, want PartitionError for %s", err, host)
	}
	f.Heal(host)
	if _, err := hc.Get(srv.URL); err != nil {
		t.Fatalf("request after heal: %v", err)
	}
}

func TestFaultsCrashAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "served")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	f := NewFaults()
	hc := f.Client(nil)
	f.CrashAfter(host, "/dlfm/prepare", 1)

	// Non-matching traffic does not consume the rule.
	if _, err := hc.Get(srv.URL + "/files/x"); err != nil {
		t.Fatal(err)
	}
	// The matching request is DELIVERED (the daemon acts on it)…
	resp, err := hc.Get(srv.URL + "/dlfm/prepare")
	if err != nil {
		t.Fatalf("crash-triggering request must still be served: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "served" {
		t.Fatalf("body = %q", body)
	}
	// …and every request after it fails: crashed between prepare and
	// commit, from the coordinator's point of view.
	if _, err := hc.Get(srv.URL + "/dlfm/commit"); err == nil {
		t.Fatal("host survived its scripted crash")
	}
}

func TestFaultsDelay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	f := NewFaults()
	hc := f.Client(nil)
	f.SetDelay(host, 30*time.Millisecond)
	start := time.Now()
	if _, err := hc.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("slow-replica delay not applied: %v", took)
	}
	f.SetDelay(host, 0)
	start = time.Now()
	if _, err := hc.Get(srv.URL); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 20*time.Millisecond {
		t.Fatalf("delay survived removal: %v", took)
	}
}
