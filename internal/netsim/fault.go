package netsim

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// WAN fault injection for the distributed-tier tests and examples. A
// Faults controller wraps an http.RoundTripper and applies scripted
// failures per target host:
//
//   - Partition(host): requests fail with a connection-style error, the
//     way a severed WAN path or a crashed daemon looks to the caller;
//   - SetDelay(host, d): requests stall for d first (a slow replica);
//   - CrashAfter(host, pathSubstr, n): the nth matching request is
//     delivered, then the host partitions — which is exactly "the
//     daemon crashed between prepare and commit" when pathSubstr is
//     "/dlfm/prepare".
//
// Faults composes with real HTTP stacks (httptest daemons, dlfs.Client)
// so the 2PC fault tests exercise the same wire protocol production
// uses, not mocks.

// PartitionError is the failure surfaced for a partitioned host.
type PartitionError struct{ Host string }

func (e *PartitionError) Error() string {
	return fmt.Sprintf("netsim: host %s is partitioned", e.Host)
}

// crashRule arms a deferred partition.
type crashRule struct {
	pathSubstr string
	remaining  int
}

// Faults is a scriptable fault controller keyed by request host.
type Faults struct {
	mu      sync.Mutex
	blocked map[string]bool
	delay   map[string]time.Duration
	crashes map[string]*crashRule
}

// NewFaults returns a controller with no failures armed.
func NewFaults() *Faults {
	return &Faults{
		blocked: make(map[string]bool),
		delay:   make(map[string]time.Duration),
		crashes: make(map[string]*crashRule),
	}
}

// Partition cuts the host off: every subsequent request errors.
func (f *Faults) Partition(host string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blocked[host] = true
}

// Heal restores the host and disarms any pending crash rule.
func (f *Faults) Heal(host string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.blocked, host)
	delete(f.crashes, host)
}

// Partitioned reports whether the host is currently cut off.
func (f *Faults) Partitioned(host string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blocked[host]
}

// SetDelay stalls every request to host by d (0 removes the stall).
func (f *Faults) SetDelay(host string, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d <= 0 {
		delete(f.delay, host)
		return
	}
	f.delay[host] = d
}

// CrashAfter arms a deferred partition: the host serves the next n
// requests whose URL path contains pathSubstr, then drops off the
// network. CrashAfter(h, "/dlfm/prepare", 1) crashes h between prepare
// and commit of the next transaction that touches it.
func (f *Faults) CrashAfter(host, pathSubstr string, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashes[host] = &crashRule{pathSubstr: pathSubstr, remaining: n}
}

// Transport wraps base (nil = http.DefaultTransport) with this
// controller's rules.
func (f *Faults) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{faults: f, base: base}
}

// Client is a convenience: an *http.Client whose transport applies the
// controller's rules.
func (f *Faults) Client(base http.RoundTripper) *http.Client {
	return &http.Client{Transport: f.Transport(base)}
}

type faultTransport struct {
	faults *Faults
	base   http.RoundTripper
}

// RoundTrip applies partition/delay rules before delegating, and arms
// deferred crashes after delivery.
func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.faults.mu.Lock()
	if t.faults.blocked[host] {
		t.faults.mu.Unlock()
		return nil, &PartitionError{Host: host}
	}
	delay := t.faults.delay[host]
	t.faults.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	resp, err := t.base.RoundTrip(req)
	t.faults.mu.Lock()
	if rule := t.faults.crashes[host]; rule != nil && strings.Contains(req.URL.Path, rule.pathSubstr) {
		rule.remaining--
		if rule.remaining <= 0 {
			t.faults.blocked[host] = true
			delete(t.faults.crashes, host)
		}
	}
	t.faults.mu.Unlock()
	return resp, err
}
