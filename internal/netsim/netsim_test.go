package netsim

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestTable1MatchesPaper checks every cell of the paper's measurement
// table to the second. This is experiment E1's ground truth.
func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1(SuperJANET1999)
	want := []struct {
		period    Period
		direction Direction
		mbit      float64
		small     string
		large     string
	}{
		{Day, ToArchive, 0.25, "45m20s", "4h50m08s"},
		{Day, FromArchive, 0.37, "30m38s", "3h16m02s"},
		{Evening, ToArchive, 0.58, "19m32s", "2h05m03s"},
		{Evening, FromArchive, 1.94, "5m51s", "37m23s"},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, w := range want {
		r := rows[i]
		if r.Period != w.period || r.Direction != w.direction {
			t.Errorf("row %d header: %v %v", i, r.Period, r.Direction)
		}
		if math.Abs(float64(r.Bandwidth)/1e6-w.mbit) > 1e-9 {
			t.Errorf("row %d bandwidth = %v", i, r.Bandwidth)
		}
		if got := FormatDuration(r.SmallTime); got != w.small {
			t.Errorf("row %d small = %s, want %s", i, got, w.small)
		}
		if got := FormatDuration(r.LargeTime); got != w.large {
			t.Errorf("row %d large = %s, want %s", i, got, w.large)
		}
	}
}

func TestTransferTimeLaw(t *testing.T) {
	// 1 MB at 1 Mbit/s is exactly 8 seconds.
	if got := TransferTime(1_000_000, 1*MbitPerSec); got != 8*time.Second {
		t.Fatalf("got %v", got)
	}
	if got := TransferTime(0, 1*MbitPerSec); got != 0 {
		t.Fatalf("zero bytes: %v", got)
	}
	// Zero rate yields effectively infinite time, not a panic.
	if got := TransferTime(1, 0); got < time.Duration(math.MaxInt64) {
		t.Fatalf("zero rate: %v", got)
	}
}

// Property: transfer time is monotone in bytes and antitone in rate.
func TestTransferTimeMonotonic(t *testing.T) {
	f := func(b1, b2 uint32, r1, r2 uint16) bool {
		bytes1, bytes2 := int64(b1), int64(b2)
		rate1 := Rate(r1)*KbitPerSec + 1
		rate2 := Rate(r2)*KbitPerSec + 1
		if bytes1 <= bytes2 && TransferTimeExact(bytes1, rate1) > TransferTimeExact(bytes2, rate1) {
			return false
		}
		if rate1 <= rate2 && TransferTimeExact(bytes1, rate1) < TransferTimeExact(bytes1, rate2) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleLookup(t *testing.T) {
	s := SuperJANET1999
	if s.Rate(Day, ToArchive) != 0.25*MbitPerSec {
		t.Fatal("day/to")
	}
	if s.Rate(Evening, FromArchive) != 1.94*MbitPerSec {
		t.Fatal("evening/from")
	}
}

func TestSimulateSingleFlow(t *testing.T) {
	topo := NewTopology()
	topo.Egress["s"] = 10 * MbitPerSec
	res := topo.Simulate([]Flow{{Src: "s", Dst: "c", Bytes: 10_000_000}})
	want := 8 * time.Second // 80 Mbit / 10 Mbit/s
	if d := res.PerFlow[0] - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("flow time = %v, want %v", res.PerFlow[0], want)
	}
}

func TestSimulateSharedUplink(t *testing.T) {
	// Two clients on one 10 Mbit/s server: each gets 5 Mbit/s, both
	// finish together at 2× the solo time.
	topo := NewTopology()
	topo.Egress["s"] = 10 * MbitPerSec
	flows := []Flow{
		{Src: "s", Dst: "c1", Bytes: 10_000_000},
		{Src: "s", Dst: "c2", Bytes: 10_000_000},
	}
	res := topo.Simulate(flows)
	want := 16 * time.Second
	for i, d := range res.PerFlow {
		if diff := d - want; diff < -time.Millisecond || diff > time.Millisecond {
			t.Fatalf("flow %d = %v, want %v", i, d, want)
		}
	}
}

func TestSimulateUnevenFinishReallocates(t *testing.T) {
	// A short and a long flow share a 10 Mbit/s uplink. The short flow
	// finishes, then the long one speeds up.
	topo := NewTopology()
	topo.Egress["s"] = 10 * MbitPerSec
	flows := []Flow{
		{Src: "s", Dst: "c1", Bytes: 2_500_000},  // 20 Mbit
		{Src: "s", Dst: "c2", Bytes: 10_000_000}, // 80 Mbit
	}
	res := topo.Simulate(flows)
	// Short: 20 Mbit at 5 Mbit/s = 4 s.
	// Long: 20 Mbit at 5 Mbit/s (first 4 s) + 60 Mbit at 10 Mbit/s = 4+6 = 10 s.
	if d := res.PerFlow[0] - 4*time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("short = %v", res.PerFlow[0])
	}
	if d := res.PerFlow[1] - 10*time.Second; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("long = %v", res.PerFlow[1])
	}
}

func TestSimulateClientBottleneck(t *testing.T) {
	// Server has 100 Mbit/s but the client only 2: client limits.
	topo := NewTopology()
	topo.Egress["s"] = 100 * MbitPerSec
	topo.Ingress["c"] = 2 * MbitPerSec
	res := topo.Simulate([]Flow{{Src: "s", Dst: "c", Bytes: 1_000_000}})
	want := 4 * time.Second
	if d := res.PerFlow[0] - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("flow = %v, want %v", res.PerFlow[0], want)
	}
}

// TestFairShareScaling is the shape behind experiment E4: with k clients
// fixed, makespan improves roughly linearly as servers are added until
// client downlinks become the bottleneck.
func TestFairShareScaling(t *testing.T) {
	const k = 8
	bytes := int64(10_000_000)
	server := 10 * MbitPerSec
	client := 100 * MbitPerSec // clients are not the bottleneck

	m1 := FairShareDownload(k, 1, bytes, server, client).Makespan
	m2 := FairShareDownload(k, 2, bytes, server, client).Makespan
	m4 := FairShareDownload(k, 4, bytes, server, client).Makespan
	m8 := FairShareDownload(k, 8, bytes, server, client).Makespan

	if !(m1 > m2 && m2 > m4 && m4 > m8) {
		t.Fatalf("makespans not improving: %v %v %v %v", m1, m2, m4, m8)
	}
	// Doubling servers should roughly halve the makespan (fluid model:
	// exactly halve while servers are the bottleneck).
	ratio := float64(m1) / float64(m2)
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("m1/m2 = %.2f, want ≈2", ratio)
	}
	// With 8 servers for 8 clients, each flow runs at full server rate.
	solo := TransferTimeExact(bytes, server)
	if d := m8 - solo; d < -10*time.Millisecond || d > 10*time.Millisecond {
		t.Fatalf("m8 = %v, want %v", m8, solo)
	}
}

// Property: makespan never increases when servers are added.
func TestFairShareMonotoneInServers(t *testing.T) {
	f := func(kRaw, mRaw uint8) bool {
		k := int(kRaw%12) + 1
		m := int(mRaw%8) + 1
		a := FairShareDownload(k, m, 1_000_000, 10*MbitPerSec, 100*MbitPerSec).Makespan
		b := FairShareDownload(k, m+1, 1_000_000, 10*MbitPerSec, 100*MbitPerSec).Makespan
		return b <= a+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{2720 * time.Second, "45m20s"},
		{17408 * time.Second, "4h50m08s"},
		{351 * time.Second, "5m51s"},
		{0, "0m00s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %s, want %s", c.d, got, c.want)
		}
	}
}

func TestThrottledReader(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 1000)
	var slept time.Duration
	tr := NewThrottledReader(bytes.NewReader(payload), 8*KbitPerSec, 1)
	tr.sleep = func(d time.Duration) { slept += d }
	n, err := io.Copy(io.Discard, tr)
	if err != nil || n != 1000 {
		t.Fatalf("copy: n=%d err=%v", n, err)
	}
	// 8000 bits at 8 kbit/s is 1 s of modelled time.
	if me := tr.ModelledElapsed(); me != time.Second {
		t.Fatalf("modelled = %v", me)
	}
	if slept < 900*time.Millisecond {
		t.Fatalf("throttle slept only %v", slept)
	}
}

func TestThrottledReaderScale(t *testing.T) {
	payload := strings.Repeat("y", 1000)
	var slept time.Duration
	tr := NewThrottledReader(strings.NewReader(payload), 8*KbitPerSec, 1000)
	tr.sleep = func(d time.Duration) { slept += d }
	if _, err := io.Copy(io.Discard, tr); err != nil {
		t.Fatal(err)
	}
	// Modelled 1 s compressed 1000×: about 1 ms of wall sleep.
	if slept > 10*time.Millisecond {
		t.Fatalf("scaled throttle slept %v", slept)
	}
	if me := tr.ModelledElapsed(); me != time.Second {
		t.Fatalf("modelled = %v", me)
	}
}

func TestRateString(t *testing.T) {
	if s := (1.94 * MbitPerSec).String(); s != "1.94 Mbit/s" {
		t.Fatalf("rate string = %q", s)
	}
	if s := (2 * GbitPerSec).String(); s != "2.00 Gbit/s" {
		t.Fatalf("rate string = %q", s)
	}
}
