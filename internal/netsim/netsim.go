// Package netsim models the wide-area network conditions of the paper's
// evaluation: the measured SuperJANET FTP bandwidths between Southampton
// and London (Queen Mary & Westfield College), asymmetric by direction
// and time of day, plus a max-min fair bandwidth-sharing model used for
// the contention experiments (many clients against one or many file
// servers).
//
// The paper's Table 1 law is simple and exact: transfer time =
// bytes × 8 / bandwidth, with decimal megabytes and megabits. The same
// law, plus fair sharing under contention, drives every bandwidth
// experiment in EXPERIMENTS.md.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Rate is a link bandwidth in bits per second.
type Rate float64

// Convenience rate units (decimal, as in the paper).
const (
	BitPerSec  Rate = 1
	KbitPerSec Rate = 1e3
	MbitPerSec Rate = 1e6
	GbitPerSec Rate = 1e9
)

// String renders the rate the way the paper's table does: Mbit/s for
// everything in the WAN range (the table shows "0.25 Mbit/s").
func (r Rate) String() string {
	switch {
	case r >= GbitPerSec:
		return fmt.Sprintf("%.2f Gbit/s", float64(r)/1e9)
	case r >= MbitPerSec/10:
		return fmt.Sprintf("%.2f Mbit/s", float64(r)/1e6)
	case r >= KbitPerSec:
		return fmt.Sprintf("%.2f Kbit/s", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.0f bit/s", float64(r))
	}
}

// Period is the time-of-day band of the paper's measurements.
type Period int

// Measurement periods.
const (
	Day Period = iota
	Evening
)

// String names the period as in Table 1.
func (p Period) String() string {
	if p == Evening {
		return "Evening"
	}
	return "Day"
}

// Direction is the transfer direction relative to the archive site.
type Direction int

// Transfer directions, named from the paper's table ("To Southampton"
// is an upload into the archive site; "From Southampton" a download).
const (
	ToArchive Direction = iota
	FromArchive
)

// String names the direction as in Table 1.
func (d Direction) String() string {
	if d == FromArchive {
		return "From Southampton"
	}
	return "To Southampton"
}

// TransferTime applies the paper's law: bytes × 8 / rate, rounded to the
// nearest second exactly as the published table rounds.
func TransferTime(bytes int64, r Rate) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	seconds := float64(bytes) * 8 / float64(r)
	return time.Duration(math.Round(seconds)) * time.Second
}

// TransferTimeExact is the unrounded law, for simulations that
// accumulate many legs.
func TransferTimeExact(bytes int64, r Rate) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(float64(bytes) * 8 / float64(r) * float64(time.Second))
}

// Schedule is a diurnal, directional bandwidth schedule for one WAN path.
type Schedule struct {
	// Rates[period][direction]
	rates [2][2]Rate
}

// NewSchedule builds a schedule from the four measured cells.
func NewSchedule(dayTo, dayFrom, eveningTo, eveningFrom Rate) Schedule {
	var s Schedule
	s.rates[Day][ToArchive] = dayTo
	s.rates[Day][FromArchive] = dayFrom
	s.rates[Evening][ToArchive] = eveningTo
	s.rates[Evening][FromArchive] = eveningFrom
	return s
}

// Rate returns the bandwidth for a period and direction.
func (s Schedule) Rate(p Period, d Direction) Rate { return s.rates[p][d] }

// SuperJANET1999 is the paper's measured schedule: repeated FTP
// measurements between Southampton and QMW London, both on 10 Mbit/s
// SuperJANET connections (Table 1).
var SuperJANET1999 = NewSchedule(
	0.25*MbitPerSec, // Day, To Southampton
	0.37*MbitPerSec, // Day, From Southampton
	0.58*MbitPerSec, // Evening, To Southampton
	1.94*MbitPerSec, // Evening, From Southampton
)

// Paper file sizes: the two simulation resolutions the UK Turbulence
// Consortium used (decimal megabytes, as the timings confirm).
const (
	SmallSimulationBytes int64 = 85 * 1000 * 1000
	LargeSimulationBytes int64 = 544 * 1000 * 1000
)

// FormatDuration renders a duration in the paper's "4h50m08s" /
// "45m20s" style.
func FormatDuration(d time.Duration) string {
	d = d.Round(time.Second)
	h := int(d / time.Hour)
	m := int(d/time.Minute) % 60
	s := int(d/time.Second) % 60
	if h > 0 {
		return fmt.Sprintf("%dh%02dm%02ds", h, m, s)
	}
	return fmt.Sprintf("%dm%02ds", m, s)
}

// ---------- contention model ----------

// Flow is one transfer in the contention simulator.
type Flow struct {
	// Src and Dst name the endpoints; capacity constraints attach to
	// endpoint egress (Src) and ingress (Dst).
	Src, Dst string
	Bytes    int64
}

// Topology holds per-endpoint capacity limits. A missing entry means
// unlimited in that direction.
type Topology struct {
	Egress  map[string]Rate // upload capacity per endpoint
	Ingress map[string]Rate // download capacity per endpoint
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{Egress: make(map[string]Rate), Ingress: make(map[string]Rate)}
}

// maxMinRates computes the max-min fair allocation for the active flows
// via progressive filling: repeatedly saturate the tightest constraint,
// freeze its flows, and continue with residual capacity.
func (t *Topology) maxMinRates(flows []Flow, active []bool) []Rate {
	rates := make([]Rate, len(flows))
	type constraint struct {
		cap   float64
		flows []int
	}
	remaining := map[string]*constraint{}
	addFlow := func(key string, capacity Rate, i int) {
		c, ok := remaining[key]
		if !ok {
			c = &constraint{cap: float64(capacity)}
			remaining[key] = c
		}
		c.flows = append(c.flows, i)
	}
	frozen := make([]bool, len(flows))
	nActive := 0
	for i, f := range flows {
		if !active[i] {
			frozen[i] = true
			continue
		}
		nActive++
		if capacity, ok := t.Egress[f.Src]; ok {
			addFlow("e:"+f.Src, capacity, i)
		}
		if capacity, ok := t.Ingress[f.Dst]; ok {
			addFlow("i:"+f.Dst, capacity, i)
		}
	}
	for nActive > 0 {
		// Find the tightest constraint (min cap / unfrozen flow count).
		var (
			bestKey  string
			bestFair = math.Inf(1)
		)
		for key, c := range remaining {
			n := 0
			for _, fi := range c.flows {
				if !frozen[fi] {
					n++
				}
			}
			if n == 0 {
				delete(remaining, key)
				continue
			}
			fair := c.cap / float64(n)
			if fair < bestFair {
				bestFair = fair
				bestKey = key
			}
		}
		if math.IsInf(bestFair, 1) {
			// No constraints left: unconstrained flows get "infinite"
			// bandwidth; model as 100 Gbit/s LAN.
			for i := range flows {
				if !frozen[i] {
					rates[i] = 100 * GbitPerSec
					frozen[i] = true
					nActive--
				}
			}
			break
		}
		c := remaining[bestKey]
		for _, fi := range c.flows {
			if frozen[fi] {
				continue
			}
			rates[fi] = Rate(bestFair)
			frozen[fi] = true
			nActive--
			// Subtract this flow's share from its other constraints.
			f := flows[fi]
			if o, ok := remaining["e:"+f.Src]; ok && "e:"+f.Src != bestKey {
				o.cap -= bestFair
				if o.cap < 0 {
					o.cap = 0
				}
			}
			if o, ok := remaining["i:"+f.Dst]; ok && "i:"+f.Dst != bestKey {
				o.cap -= bestFair
				if o.cap < 0 {
					o.cap = 0
				}
			}
		}
		delete(remaining, bestKey)
	}
	return rates
}

// SimResult reports a contention simulation.
type SimResult struct {
	// PerFlow is each flow's completion time.
	PerFlow []time.Duration
	// Makespan is the time until the last flow completes.
	Makespan time.Duration
	// AggregateRate is total bytes moved divided by makespan.
	AggregateRate Rate
}

// Simulate runs the flows to completion under max-min fair sharing,
// recomputing the allocation whenever a flow finishes (fluid model).
func (t *Topology) Simulate(flows []Flow) SimResult {
	n := len(flows)
	res := SimResult{PerFlow: make([]time.Duration, n)}
	if n == 0 {
		return res
	}
	remaining := make([]float64, n) // bits left
	active := make([]bool, n)
	totalBytes := int64(0)
	for i, f := range flows {
		remaining[i] = float64(f.Bytes) * 8
		active[i] = remaining[i] > 0
		totalBytes += f.Bytes
		if !active[i] {
			res.PerFlow[i] = 0
		}
	}
	now := 0.0 // seconds
	for {
		anyActive := false
		for i := range flows {
			if active[i] {
				anyActive = true
				break
			}
		}
		if !anyActive {
			break
		}
		rates := t.maxMinRates(flows, active)
		// Time until the next flow drains at current rates.
		next := math.Inf(1)
		for i := range flows {
			if !active[i] || rates[i] <= 0 {
				continue
			}
			tFin := remaining[i] / float64(rates[i])
			if tFin < next {
				next = tFin
			}
		}
		if math.IsInf(next, 1) {
			break // stalled: no capacity at all
		}
		now += next
		for i := range flows {
			if !active[i] {
				continue
			}
			remaining[i] -= float64(rates[i]) * next
			if remaining[i] <= 1e-6 {
				remaining[i] = 0
				active[i] = false
				res.PerFlow[i] = time.Duration(now * float64(time.Second))
			}
		}
	}
	res.Makespan = time.Duration(now * float64(time.Second))
	if now > 0 {
		res.AggregateRate = Rate(float64(totalBytes) * 8 / now)
	}
	return res
}

// FairShareDownload is a convenience for experiment E4: k clients each
// download one file of size bytes, spread round-robin over m servers
// with the given per-server uplink and per-client downlink capacities.
func FairShareDownload(k, m int, bytes int64, serverUplink, clientDownlink Rate) SimResult {
	topo := NewTopology()
	flows := make([]Flow, k)
	for s := 0; s < m; s++ {
		topo.Egress[fmt.Sprintf("server%d", s)] = serverUplink
	}
	for c := 0; c < k; c++ {
		topo.Ingress[fmt.Sprintf("client%d", c)] = clientDownlink
		flows[c] = Flow{
			Src:   fmt.Sprintf("server%d", c%m),
			Dst:   fmt.Sprintf("client%d", c),
			Bytes: bytes,
		}
	}
	return topo.Simulate(flows)
}

// BandwidthRow is one row of the paper's Table 1.
type BandwidthRow struct {
	Period    Period
	Direction Direction
	Bandwidth Rate
	SmallTime time.Duration
	LargeTime time.Duration
}

// Table1 regenerates the paper's measurement table from the schedule.
func Table1(s Schedule) []BandwidthRow {
	rows := []BandwidthRow{
		{Period: Day, Direction: ToArchive},
		{Period: Day, Direction: FromArchive},
		{Period: Evening, Direction: ToArchive},
		{Period: Evening, Direction: FromArchive},
	}
	for i := range rows {
		r := s.Rate(rows[i].Period, rows[i].Direction)
		rows[i].Bandwidth = r
		rows[i].SmallTime = TransferTime(SmallSimulationBytes, r)
		rows[i].LargeTime = TransferTime(LargeSimulationBytes, r)
	}
	return rows
}

// SortedHosts is a small helper for deterministic iteration in reports.
func SortedHosts(m map[string]Rate) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
