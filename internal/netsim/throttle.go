package netsim

import (
	"io"
	"time"
)

// ThrottledReader wraps a reader so it delivers bytes at a fixed rate,
// optionally accelerated by a time-scale factor. The live examples use
// it to "replay" the paper's WAN conditions in seconds instead of hours
// while keeping the arithmetic honest (scale only compresses wall-clock
// time, never the modelled transfer time).
type ThrottledReader struct {
	r         io.Reader
	rate      Rate
	scale     float64 // e.g. 1000 → modelled hour passes in 3.6 s
	start     time.Time
	delivered int64
	sleep     func(time.Duration)
}

// NewThrottledReader shapes r to rate with the given acceleration scale
// (scale >= 1; 1 means real time).
func NewThrottledReader(r io.Reader, rate Rate, scale float64) *ThrottledReader {
	if scale < 1 {
		scale = 1
	}
	return &ThrottledReader{r: r, rate: rate, scale: scale, sleep: time.Sleep}
}

// Read implements io.Reader, pausing as needed to hold the target rate.
func (t *ThrottledReader) Read(p []byte) (int, error) {
	if t.start.IsZero() {
		t.start = time.Now()
	}
	n, err := t.r.Read(p)
	if n > 0 {
		t.delivered += int64(n)
		// Modelled elapsed time for the bytes delivered so far.
		modelled := float64(t.delivered) * 8 / float64(t.rate)
		wallTarget := time.Duration(modelled / t.scale * float64(time.Second))
		if ahead := wallTarget - time.Since(t.start); ahead > 0 {
			t.sleep(ahead)
		}
	}
	return n, err
}

// ModelledElapsed reports how much simulated transfer time the bytes
// delivered so far represent.
func (t *ThrottledReader) ModelledElapsed() time.Duration {
	return TransferTimeExact(t.delivered, t.rate)
}
