// Package med implements the SQL/MED (ISO/IEC 9075-9, "Management of
// External Data") machinery the paper relies on: encrypted, expiring
// file-access tokens for READ PERMISSION DB columns, and the two-phase
// link-control coordinator that keeps the database and the distributed
// file servers transactionally consistent.
//
// The paper (SQL/MED slide): "files can only be accessed using an
// encrypted file access token, obtained from the database by users with
// the correct database privileges … The access tokens have a finite life
// determined by a database configuration parameter."
package med

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Token validation failures. ErrExpired is distinct so the web layer can
// tell users to re-run their query for a fresh link.
var (
	ErrTokenTampered  = errors.New("med: access token is invalid or tampered")
	ErrTokenExpired   = errors.New("med: access token has expired")
	ErrTokenWrongFile = errors.New("med: access token was issued for a different file")
)

// Claims is the decrypted content of an access token.
type Claims struct {
	Path    string    // file-server-local path the token grants access to
	User    string    // database user the token was minted for
	Expires time.Time // expiry instant
}

// TokenAuthority mints and validates encrypted access tokens. Tokens are
// AES-256-GCM sealed (confidential and tamper-evident) and rendered in
// unpadded URL-safe base64 so they can be spliced into the
// "access_token;filename" URL form from the paper.
type TokenAuthority struct {
	aead       cipher.AEAD
	defaultTTL time.Duration
	now        func() time.Time
}

// DefaultTokenTTL is the token lifetime used when the DATALINK column
// does not specify one (the "database configuration parameter").
const DefaultTokenTTL = 5 * time.Minute

// NewTokenAuthority derives an authority from a shared secret. The same
// secret must be configured on the database host (mint side) and every
// file server (validate side).
func NewTokenAuthority(secret []byte, defaultTTL time.Duration) (*TokenAuthority, error) {
	if len(secret) == 0 {
		return nil, fmt.Errorf("med: token secret must not be empty")
	}
	if defaultTTL <= 0 {
		defaultTTL = DefaultTokenTTL
	}
	key := sha256.Sum256(secret)
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return &TokenAuthority{aead: aead, defaultTTL: defaultTTL, now: time.Now}, nil
}

// SetClock injects the clock (deterministic expiry tests and the
// simulated experiments).
func (ta *TokenAuthority) SetClock(now func() time.Time) { ta.now = now }

// DefaultTTL reports the configured default lifetime.
func (ta *TokenAuthority) DefaultTTL() time.Duration { return ta.defaultTTL }

// Mint issues a token for path on behalf of user. ttl<=0 selects the
// authority default.
func (ta *TokenAuthority) Mint(path, user string, ttl time.Duration) (string, error) {
	if ttl <= 0 {
		ttl = ta.defaultTTL
	}
	claims := Claims{Path: path, User: user, Expires: ta.now().Add(ttl)}
	plain := encodeClaims(claims)
	nonce := make([]byte, ta.aead.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return "", err
	}
	sealed := ta.aead.Seal(nonce, nonce, plain, nil)
	return base64.RawURLEncoding.EncodeToString(sealed), nil
}

// Validate decrypts the token and checks it grants access to path now.
func (ta *TokenAuthority) Validate(token, path string) (Claims, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil || len(raw) < ta.aead.NonceSize() {
		return Claims{}, ErrTokenTampered
	}
	nonce, ct := raw[:ta.aead.NonceSize()], raw[ta.aead.NonceSize():]
	plain, err := ta.aead.Open(nil, nonce, ct, nil)
	if err != nil {
		return Claims{}, ErrTokenTampered
	}
	claims, err := decodeClaims(plain)
	if err != nil {
		return Claims{}, ErrTokenTampered
	}
	if claims.Path != path {
		return claims, ErrTokenWrongFile
	}
	if ta.now().After(claims.Expires) {
		return claims, ErrTokenExpired
	}
	return claims, nil
}

// Inspect decrypts a token without path or expiry checks, for audit logs.
func (ta *TokenAuthority) Inspect(token string) (Claims, error) {
	raw, err := base64.RawURLEncoding.DecodeString(token)
	if err != nil || len(raw) < ta.aead.NonceSize() {
		return Claims{}, ErrTokenTampered
	}
	nonce, ct := raw[:ta.aead.NonceSize()], raw[ta.aead.NonceSize():]
	plain, err := ta.aead.Open(nil, nonce, ct, nil)
	if err != nil {
		return Claims{}, ErrTokenTampered
	}
	return decodeClaims(plain)
}

func encodeClaims(c Claims) []byte {
	var buf bytes.Buffer
	writeField := func(s string) {
		var l [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(l[:], uint64(len(s)))
		buf.Write(l[:n])
		buf.WriteString(s)
	}
	writeField(c.Path)
	writeField(c.User)
	var ts [8]byte
	binary.LittleEndian.PutUint64(ts[:], uint64(c.Expires.UnixNano()))
	buf.Write(ts[:])
	return buf.Bytes()
}

func decodeClaims(b []byte) (Claims, error) {
	r := bytes.NewReader(b)
	readField := func() (string, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil || n > 1<<20 {
			return "", fmt.Errorf("med: corrupt claims")
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(r, s); err != nil {
			return "", err
		}
		return string(s), nil
	}
	var c Claims
	var err error
	if c.Path, err = readField(); err != nil {
		return c, err
	}
	if c.User, err = readField(); err != nil {
		return c, err
	}
	var ts [8]byte
	if _, err := io.ReadFull(r, ts[:]); err != nil {
		return c, err
	}
	c.Expires = time.Unix(0, int64(binary.LittleEndian.Uint64(ts[:]))).UTC()
	return c, nil
}
