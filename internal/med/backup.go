package med

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Coordinated backup and recovery (the fourth SQL/MED guarantee in the
// paper: "the database management system can take responsibility for
// backup and recovery of external files in synchronisation with the
// internal data").
//
// A backup set is a directory:
//
//	<dir>/db/           — copy of the database directory (snapshot + WAL)
//	<dir>/files/<host>/ — linked files from each RECOVERY YES server

// Checkpointer is the database side of a coordinated backup.
type Checkpointer interface {
	// Checkpoint folds the WAL into a consistent on-disk snapshot.
	Checkpoint() error
}

// BackupParticipant is the file-server side of a coordinated backup.
// dlfs.Manager implements it.
type BackupParticipant interface {
	Host() string
	// BackupLinked copies every linked RECOVERY YES file under dst,
	// preserving the server-local path layout, and returns the count.
	BackupLinked(dst string) (int, error)
	// RestoreLinked copies files back from a backup produced by
	// BackupLinked and re-links them.
	RestoreLinked(src string) (int, error)
}

// BackupSet orchestrates a coordinated backup across the database and
// its file servers.
type BackupSet struct {
	Dir string
}

// Backup runs a full coordinated backup: checkpoint the database, copy
// its directory, then collect linked files from every participant.
// It returns the number of external files captured.
func (b BackupSet) Backup(db Checkpointer, dbDir string, participants []BackupParticipant) (int, error) {
	if err := db.Checkpoint(); err != nil {
		return 0, fmt.Errorf("med: backup checkpoint: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(b.Dir, "db"), 0o755); err != nil {
		return 0, err
	}
	if dbDir != "" {
		if err := copyDir(dbDir, filepath.Join(b.Dir, "db")); err != nil {
			return 0, fmt.Errorf("med: backup database: %w", err)
		}
	}
	total := 0
	var errs []error
	for _, p := range participants {
		dst := filepath.Join(b.Dir, "files", hostDirName(p.Host()))
		if err := os.MkdirAll(dst, 0o755); err != nil {
			errs = append(errs, err)
			continue
		}
		n, err := p.BackupLinked(dst)
		if err != nil {
			errs = append(errs, fmt.Errorf("host %s: %w", p.Host(), err))
			continue
		}
		total += n
	}
	return total, errors.Join(errs...)
}

// Restore copies the database directory back and restores linked files
// on every participant. The caller re-opens the database afterwards.
func (b BackupSet) Restore(dbDir string, participants []BackupParticipant) (int, error) {
	if dbDir != "" {
		if err := os.MkdirAll(dbDir, 0o755); err != nil {
			return 0, err
		}
		if err := copyDir(filepath.Join(b.Dir, "db"), dbDir); err != nil {
			return 0, fmt.Errorf("med: restore database: %w", err)
		}
	}
	total := 0
	var errs []error
	for _, p := range participants {
		src := filepath.Join(b.Dir, "files", hostDirName(p.Host()))
		if _, err := os.Stat(src); err != nil {
			continue // this host contributed no files
		}
		n, err := p.RestoreLinked(src)
		if err != nil {
			errs = append(errs, fmt.Errorf("host %s: %w", p.Host(), err))
			continue
		}
		total += n
	}
	return total, errors.Join(errs...)
}

// hostDirName makes "host:port" safe as a directory name.
func hostDirName(host string) string {
	out := make([]byte, 0, len(host))
	for i := 0; i < len(host); i++ {
		c := host[i]
		if c == ':' || c == '/' || c == '\\' {
			c = '_'
		}
		out = append(out, c)
	}
	return string(out)
}

func copyDir(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		return copyFile(path, target)
	})
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
