package med

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sqltypes"
)

// LinkOpKind distinguishes link from unlink work.
type LinkOpKind uint8

// Link-control operation kinds.
const (
	OpLink LinkOpKind = iota
	OpUnlink
)

// LinkOp is one unit of link-control work shipped to a file server.
type LinkOp struct {
	Kind LinkOpKind
	Path string // file-server-local path
	Opts sqltypes.DatalinkOptions
}

// FileServer is the coordinator's view of one Data Links File Manager
// (the daemon running on each file-server host). internal/dlfs provides
// an in-process implementation and an HTTP client/daemon pair.
type FileServer interface {
	// Host returns the "host[:port]" this manager serves, matching the
	// host component of DATALINK URLs.
	Host() string
	// Prepare validates and reserves an operation inside transaction
	// txID: for OpLink the file must exist and not already be linked;
	// for OpUnlink the file must currently be linked. Prepare must be
	// idempotent per (txID, op).
	Prepare(txID uint64, op LinkOp) error
	// Commit atomically applies every operation prepared under txID.
	// It must be idempotent: committing an unknown txID is a no-op.
	Commit(txID uint64) error
	// Abort discards every operation prepared under txID. Like Commit it
	// must be idempotent (aborting an unknown txID is a no-op), so the
	// coordinator can retry aborts that failed to reach the server. A
	// non-nil error means the server may still hold the staged prepare.
	Abort(txID uint64) error
	// EnsureLinked repairs divergence after a crash between the
	// database commit and the file-manager commit: the file must end up
	// linked with the given options no matter what state it was in.
	EnsureLinked(path string, opts sqltypes.DatalinkOptions) error
}

// Coordinator routes SQL/MED link-control callbacks from the database
// engine to the file managers named in each DATALINK URL. It satisfies
// sqldb.LinkController structurally.
//
// Protocol (see DESIGN.md): the engine calls PrepareLink/PrepareUnlink
// while executing statements, then, after its WAL records are durable,
// Commit; Abort on rollback. The coordinator fans each call out to the
// file servers involved in the transaction.
type Coordinator struct {
	mu      sync.Mutex
	servers map[string]FileServer // host → manager
	pending map[uint64]map[string]FileServer
	// failedAborts queues (txID → servers) whose Abort did not get
	// through (e.g. the daemon was unreachable). Until the abort lands,
	// the server holds the staged prepare and its path reservations —
	// files could leak. RetryFailedAborts drains the queue; Reconcile
	// calls it as part of startup repair.
	failedAborts map[uint64]map[string]FileServer
}

// NewCoordinator returns a coordinator with no registered file servers.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		servers:      make(map[string]FileServer),
		pending:      make(map[uint64]map[string]FileServer),
		failedAborts: make(map[uint64]map[string]FileServer),
	}
}

// Register adds (or replaces) the manager for a host.
func (c *Coordinator) Register(fs FileServer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.servers[strings.ToLower(fs.Host())] = fs
}

// Server returns the manager for host, if registered.
func (c *Coordinator) Server(host string) (FileServer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs, ok := c.servers[strings.ToLower(host)]
	return fs, ok
}

// Hosts lists registered hosts, sorted.
func (c *Coordinator) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	hosts := make([]string, 0, len(c.servers))
	for h := range c.servers {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

func (c *Coordinator) prepare(txID uint64, url string, kind LinkOpKind, opts sqltypes.DatalinkOptions) error {
	u, err := sqltypes.ParseDatalinkURL(url)
	if err != nil {
		return err
	}
	host := strings.ToLower(u.Host)
	c.mu.Lock()
	fs, ok := c.servers[host]
	if ok {
		m := c.pending[txID]
		if m == nil {
			m = make(map[string]FileServer)
			c.pending[txID] = m
		}
		m[host] = fs
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("med: no file manager registered for host %s", u.Host)
	}
	// Opportunistically drain aborts this host missed: a leaked staged
	// prepare holds its paths reserved, which would reject this new
	// prepare with a reservation conflict. If the server is reachable
	// enough to prepare, it is reachable enough to take the aborts.
	c.retryFailedAbortsForHost(host)
	return fs.Prepare(txID, LinkOp{Kind: kind, Path: u.Path, Opts: opts})
}

// retryFailedAbortsForHost re-sends queued aborts destined for host
// (best-effort; still-failing entries stay queued).
func (c *Coordinator) retryFailedAbortsForHost(host string) {
	type entry struct {
		txID uint64
		fs   FileServer
	}
	c.mu.Lock()
	var retry []entry
	for txID, servers := range c.failedAborts {
		if fs, ok := servers[host]; ok {
			retry = append(retry, entry{txID: txID, fs: fs})
		}
	}
	c.mu.Unlock()
	for _, e := range retry {
		if err := e.fs.Abort(e.txID); err != nil {
			continue // stays queued
		}
		c.dropFailedAbort(e.txID, host)
	}
}

// PrepareLink implements the engine's LinkController contract.
func (c *Coordinator) PrepareLink(txID uint64, url string, opts sqltypes.DatalinkOptions) error {
	return c.prepare(txID, url, OpLink, opts)
}

// PrepareUnlink implements the engine's LinkController contract.
func (c *Coordinator) PrepareUnlink(txID uint64, url string, opts sqltypes.DatalinkOptions) error {
	return c.prepare(txID, url, OpUnlink, opts)
}

// Commit applies the transaction's link work on every involved server.
func (c *Coordinator) Commit(txID uint64) error {
	c.mu.Lock()
	involved := c.pending[txID]
	delete(c.pending, txID)
	c.mu.Unlock()
	var errs []error
	for _, fs := range involved {
		if err := fs.Commit(txID); err != nil {
			errs = append(errs, fmt.Errorf("host %s: %w", fs.Host(), err))
		}
	}
	return errors.Join(errs...)
}

// Abort discards the transaction's link work on every involved server.
// Failures are aggregated and returned — a server that missed its abort
// still holds the staged prepare, which would leak files — and the
// (txID, server) pairs are queued for RetryFailedAborts.
func (c *Coordinator) Abort(txID uint64) error {
	c.mu.Lock()
	involved := c.pending[txID]
	delete(c.pending, txID)
	c.mu.Unlock()
	var errs []error
	for host, fs := range involved {
		if err := fs.Abort(txID); err != nil {
			errs = append(errs, fmt.Errorf("host %s: abort tx %d: %w", fs.Host(), txID, err))
			c.mu.Lock()
			m := c.failedAborts[txID]
			if m == nil {
				m = make(map[string]FileServer)
				c.failedAborts[txID] = m
			}
			m[host] = fs
			c.mu.Unlock()
		}
	}
	return errors.Join(errs...)
}

// RetryFailedAborts re-sends every queued abort. Entries that succeed
// (Abort is idempotent on the server) are dropped; the rest stay queued
// and their errors are returned. The queue maps are only ever touched
// under the lock — the snapshot taken here is a private slice — so this
// is safe against concurrent per-host retries from prepare.
func (c *Coordinator) RetryFailedAborts() error {
	type entry struct {
		txID uint64
		host string
		fs   FileServer
	}
	c.mu.Lock()
	var queued []entry
	for txID, servers := range c.failedAborts {
		for host, fs := range servers {
			queued = append(queued, entry{txID: txID, host: host, fs: fs})
		}
	}
	c.mu.Unlock()
	var errs []error
	for _, e := range queued {
		if err := e.fs.Abort(e.txID); err != nil {
			errs = append(errs, fmt.Errorf("host %s: abort tx %d: %w", e.fs.Host(), e.txID, err))
			continue
		}
		c.dropFailedAbort(e.txID, e.host)
	}
	return errors.Join(errs...)
}

// dropFailedAbort removes one settled entry from the retry queue.
func (c *Coordinator) dropFailedAbort(txID uint64, host string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if servers, ok := c.failedAborts[txID]; ok {
		delete(servers, host)
		if len(servers) == 0 {
			delete(c.failedAborts, txID)
		}
	}
}

// FailedAbortCount reports how many (transaction, server) aborts are
// still queued for retry.
func (c *Coordinator) FailedAbortCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, servers := range c.failedAborts {
		n += len(servers)
	}
	return n
}

// Reconcile repairs file-manager state after recovery: for every
// DATALINK value that the (already recovered) database holds, the
// corresponding file must be linked. The archive core calls this at
// startup with the URLs of all controlled DATALINK columns. Aborts that
// previously failed to reach their server are retried first, so a
// rolled-back prepare cannot keep files reserved across a recovery.
func (c *Coordinator) Reconcile(urls []string, opts sqltypes.DatalinkOptions) error {
	var errs []error
	if err := c.RetryFailedAborts(); err != nil {
		errs = append(errs, err)
	}
	for _, url := range urls {
		u, err := sqltypes.ParseDatalinkURL(url)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		fs, ok := c.Server(u.Host)
		if !ok {
			errs = append(errs, fmt.Errorf("med: reconcile %s: no file manager for host %s", url, u.Host))
			continue
		}
		if err := fs.EnsureLinked(u.Path, opts); err != nil {
			errs = append(errs, fmt.Errorf("med: reconcile %s: %w", url, err))
		}
	}
	return errors.Join(errs...)
}
