package med

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sqltypes"
)

// LinkOpKind distinguishes link from unlink work.
type LinkOpKind uint8

// Link-control operation kinds.
const (
	OpLink LinkOpKind = iota
	OpUnlink
)

// LinkOp is one unit of link-control work shipped to a file server.
type LinkOp struct {
	Kind LinkOpKind
	Path string // file-server-local path
	Opts sqltypes.DatalinkOptions
}

// FileServer is the coordinator's view of one Data Links File Manager
// (the daemon running on each file-server host). internal/dlfs provides
// an in-process implementation and an HTTP client/daemon pair.
type FileServer interface {
	// Host returns the "host[:port]" this manager serves, matching the
	// host component of DATALINK URLs.
	Host() string
	// Prepare validates and reserves an operation inside transaction
	// txID: for OpLink the file must exist and not already be linked;
	// for OpUnlink the file must currently be linked. Prepare must be
	// idempotent per (txID, op).
	Prepare(txID uint64, op LinkOp) error
	// Commit atomically applies every operation prepared under txID.
	// It must be idempotent: committing an unknown txID is a no-op.
	Commit(txID uint64) error
	// Abort discards every operation prepared under txID.
	Abort(txID uint64)
	// EnsureLinked repairs divergence after a crash between the
	// database commit and the file-manager commit: the file must end up
	// linked with the given options no matter what state it was in.
	EnsureLinked(path string, opts sqltypes.DatalinkOptions) error
}

// Coordinator routes SQL/MED link-control callbacks from the database
// engine to the file managers named in each DATALINK URL. It satisfies
// sqldb.LinkController structurally.
//
// Protocol (see DESIGN.md): the engine calls PrepareLink/PrepareUnlink
// while executing statements, then, after its WAL records are durable,
// Commit; Abort on rollback. The coordinator fans each call out to the
// file servers involved in the transaction.
type Coordinator struct {
	mu      sync.Mutex
	servers map[string]FileServer // host → manager
	pending map[uint64]map[string]FileServer
}

// NewCoordinator returns a coordinator with no registered file servers.
func NewCoordinator() *Coordinator {
	return &Coordinator{
		servers: make(map[string]FileServer),
		pending: make(map[uint64]map[string]FileServer),
	}
}

// Register adds (or replaces) the manager for a host.
func (c *Coordinator) Register(fs FileServer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.servers[strings.ToLower(fs.Host())] = fs
}

// Server returns the manager for host, if registered.
func (c *Coordinator) Server(host string) (FileServer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fs, ok := c.servers[strings.ToLower(host)]
	return fs, ok
}

// Hosts lists registered hosts, sorted.
func (c *Coordinator) Hosts() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	hosts := make([]string, 0, len(c.servers))
	for h := range c.servers {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

func (c *Coordinator) prepare(txID uint64, url string, kind LinkOpKind, opts sqltypes.DatalinkOptions) error {
	u, err := sqltypes.ParseDatalinkURL(url)
	if err != nil {
		return err
	}
	c.mu.Lock()
	fs, ok := c.servers[strings.ToLower(u.Host)]
	if ok {
		m := c.pending[txID]
		if m == nil {
			m = make(map[string]FileServer)
			c.pending[txID] = m
		}
		m[strings.ToLower(u.Host)] = fs
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("med: no file manager registered for host %s", u.Host)
	}
	return fs.Prepare(txID, LinkOp{Kind: kind, Path: u.Path, Opts: opts})
}

// PrepareLink implements the engine's LinkController contract.
func (c *Coordinator) PrepareLink(txID uint64, url string, opts sqltypes.DatalinkOptions) error {
	return c.prepare(txID, url, OpLink, opts)
}

// PrepareUnlink implements the engine's LinkController contract.
func (c *Coordinator) PrepareUnlink(txID uint64, url string, opts sqltypes.DatalinkOptions) error {
	return c.prepare(txID, url, OpUnlink, opts)
}

// Commit applies the transaction's link work on every involved server.
func (c *Coordinator) Commit(txID uint64) error {
	c.mu.Lock()
	involved := c.pending[txID]
	delete(c.pending, txID)
	c.mu.Unlock()
	var errs []error
	for _, fs := range involved {
		if err := fs.Commit(txID); err != nil {
			errs = append(errs, fmt.Errorf("host %s: %w", fs.Host(), err))
		}
	}
	return errors.Join(errs...)
}

// Abort discards the transaction's link work on every involved server.
func (c *Coordinator) Abort(txID uint64) {
	c.mu.Lock()
	involved := c.pending[txID]
	delete(c.pending, txID)
	c.mu.Unlock()
	for _, fs := range involved {
		fs.Abort(txID)
	}
}

// Reconcile repairs file-manager state after recovery: for every
// DATALINK value that the (already recovered) database holds, the
// corresponding file must be linked. The archive core calls this at
// startup with the URLs of all controlled DATALINK columns.
func (c *Coordinator) Reconcile(urls []string, opts sqltypes.DatalinkOptions) error {
	var errs []error
	for _, url := range urls {
		u, err := sqltypes.ParseDatalinkURL(url)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		fs, ok := c.Server(u.Host)
		if !ok {
			errs = append(errs, fmt.Errorf("med: reconcile %s: no file manager for host %s", url, u.Host))
			continue
		}
		if err := fs.EnsureLinked(u.Path, opts); err != nil {
			errs = append(errs, fmt.Errorf("med: reconcile %s: %w", url, err))
		}
	}
	return errors.Join(errs...)
}
