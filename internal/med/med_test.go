package med

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sqltypes"
)

func newAuthority(t *testing.T) *TokenAuthority {
	t.Helper()
	ta, err := NewTokenAuthority([]byte("easia-test-secret"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return ta
}

func TestTokenRoundTrip(t *testing.T) {
	ta := newAuthority(t)
	tok, err := ta.Mint("/vol0/run1/ts42.tsf", "guest", 0)
	if err != nil {
		t.Fatal(err)
	}
	claims, err := ta.Validate(tok, "/vol0/run1/ts42.tsf")
	if err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if claims.User != "guest" || claims.Path != "/vol0/run1/ts42.tsf" {
		t.Fatalf("claims = %+v", claims)
	}
}

func TestTokenWrongPath(t *testing.T) {
	ta := newAuthority(t)
	tok, _ := ta.Mint("/a/b.dat", "u", 0)
	if _, err := ta.Validate(tok, "/a/c.dat"); err != ErrTokenWrongFile {
		t.Fatalf("err = %v, want ErrTokenWrongFile", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	ta := newAuthority(t)
	now := time.Date(2000, 3, 27, 12, 0, 0, 0, time.UTC)
	ta.SetClock(func() time.Time { return now })
	tok, _ := ta.Mint("/a/b.dat", "u", 30*time.Second)
	if _, err := ta.Validate(tok, "/a/b.dat"); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
	now = now.Add(31 * time.Second)
	if _, err := ta.Validate(tok, "/a/b.dat"); err != ErrTokenExpired {
		t.Fatalf("err = %v, want ErrTokenExpired", err)
	}
}

func TestTokenTamperRejected(t *testing.T) {
	ta := newAuthority(t)
	tok, _ := ta.Mint("/a/b.dat", "u", 0)
	// Flip a character.
	b := []byte(tok)
	if b[5] == 'A' {
		b[5] = 'B'
	} else {
		b[5] = 'A'
	}
	if _, err := ta.Validate(string(b), "/a/b.dat"); err != ErrTokenTampered {
		t.Fatalf("err = %v, want ErrTokenTampered", err)
	}
	if _, err := ta.Validate("not-base64!!!", "/a/b.dat"); err != ErrTokenTampered {
		t.Fatalf("garbage: err = %v, want ErrTokenTampered", err)
	}
}

func TestTokenAuthoritiesWithDifferentSecrets(t *testing.T) {
	ta1, _ := NewTokenAuthority([]byte("secret-one"), time.Minute)
	ta2, _ := NewTokenAuthority([]byte("secret-two"), time.Minute)
	tok, _ := ta1.Mint("/a/b.dat", "u", 0)
	if _, err := ta2.Validate(tok, "/a/b.dat"); err != ErrTokenTampered {
		t.Fatalf("cross-secret validation: %v, want ErrTokenTampered", err)
	}
}

// Property: any path/user pair round-trips and the token is URL-safe.
func TestTokenRoundTripProperty(t *testing.T) {
	ta := newAuthority(t)
	f := func(rawPath, user string) bool {
		path := "/" + strings.Map(func(r rune) rune {
			if r == ';' || r == '\x00' || r == '\n' {
				return '_'
			}
			return r
		}, rawPath)
		tok, err := ta.Mint(path, user, 0)
		if err != nil {
			return false
		}
		if strings.ContainsAny(tok, "/+=;") {
			return false // must survive inside "token;file" URLs
		}
		claims, err := ta.Validate(tok, path)
		return err == nil && claims.Path == path && claims.User == user
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenInspect(t *testing.T) {
	ta := newAuthority(t)
	now := time.Date(2000, 3, 27, 12, 0, 0, 0, time.UTC)
	ta.SetClock(func() time.Time { return now })
	tok, _ := ta.Mint("/x/y.dat", "alice", 2*time.Minute)
	claims, err := ta.Inspect(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !claims.Expires.Equal(now.Add(2 * time.Minute)) {
		t.Fatalf("expiry = %v", claims.Expires)
	}
}

// fakeServer records coordinator calls for protocol tests.
type fakeServer struct {
	host     string
	prepared []LinkOp
	commits   []uint64
	aborts    []uint64
	failPrep  bool
	failAbort bool
}

func (f *fakeServer) Host() string { return f.host }
func (f *fakeServer) Prepare(tx uint64, op LinkOp) error {
	if f.failPrep {
		return ErrTokenTampered // any error will do
	}
	f.prepared = append(f.prepared, op)
	return nil
}
func (f *fakeServer) Commit(tx uint64) error { f.commits = append(f.commits, tx); return nil }
func (f *fakeServer) Abort(tx uint64) error {
	if f.failAbort {
		return ErrTokenTampered // any error will do
	}
	f.aborts = append(f.aborts, tx)
	return nil
}
func (f *fakeServer) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	f.prepared = append(f.prepared, LinkOp{Kind: OpLink, Path: path, Opts: opts})
	return nil
}

func TestCoordinatorRouting(t *testing.T) {
	c := NewCoordinator()
	fs1 := &fakeServer{host: "fs1.sim:80"}
	fs2 := &fakeServer{host: "fs2.sim:80"}
	c.Register(fs1)
	c.Register(fs2)

	opts := sqltypes.DefaultEASIA()
	if err := c.PrepareLink(7, "http://fs1.sim:80/data/a.tsf", opts); err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareLink(7, "http://fs2.sim:80/data/b.tsf", opts); err != nil {
		t.Fatal(err)
	}
	if err := c.PrepareUnlink(7, "http://fs1.sim:80/data/c.tsf", opts); err != nil {
		t.Fatal(err)
	}
	if err := c.Commit(7); err != nil {
		t.Fatal(err)
	}
	if len(fs1.prepared) != 2 || len(fs2.prepared) != 1 {
		t.Fatalf("prepare fanout: fs1=%d fs2=%d", len(fs1.prepared), len(fs2.prepared))
	}
	if len(fs1.commits) != 1 || len(fs2.commits) != 1 {
		t.Fatalf("commit fanout: fs1=%v fs2=%v", fs1.commits, fs2.commits)
	}
	// Commit of an unknown transaction touches no servers.
	if err := c.Commit(99); err != nil {
		t.Fatal(err)
	}
	if len(fs1.commits) != 1 {
		t.Fatal("unknown tx reached server")
	}
}

func TestCoordinatorAbortFanout(t *testing.T) {
	c := NewCoordinator()
	fs1 := &fakeServer{host: "fs1.sim:80"}
	c.Register(fs1)
	opts := sqltypes.DefaultEASIA()
	if err := c.PrepareLink(3, "http://fs1.sim:80/d/x.tsf", opts); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(3); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if len(fs1.aborts) != 1 {
		t.Fatalf("aborts = %v", fs1.aborts)
	}
}

// TestCoordinatorAbortFailureQueued: an abort that cannot reach its
// server is surfaced, queued, and retried until it lands — a staged
// prepare must not silently leak files on a server that missed the
// abort.
func TestCoordinatorAbortFailureQueued(t *testing.T) {
	c := NewCoordinator()
	fs1 := &fakeServer{host: "fs1.sim:80", failAbort: true}
	c.Register(fs1)
	opts := sqltypes.DefaultEASIA()
	if err := c.PrepareLink(4, "http://fs1.sim:80/d/x.tsf", opts); err != nil {
		t.Fatal(err)
	}
	if err := c.Abort(4); err == nil {
		t.Fatal("abort failure was swallowed")
	}
	if c.FailedAbortCount() != 1 {
		t.Fatalf("FailedAbortCount = %d, want 1", c.FailedAbortCount())
	}
	// While the server stays unreachable the retry keeps it queued.
	if err := c.RetryFailedAborts(); err == nil || c.FailedAbortCount() != 1 {
		t.Fatalf("retry against dead server: err=%v queued=%d", err, c.FailedAbortCount())
	}
	// Once it comes back the retry drains the queue.
	fs1.failAbort = false
	if err := c.RetryFailedAborts(); err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	if c.FailedAbortCount() != 0 || len(fs1.aborts) != 1 {
		t.Fatalf("queue not drained: queued=%d aborts=%v", c.FailedAbortCount(), fs1.aborts)
	}
}

func TestCoordinatorUnknownHost(t *testing.T) {
	c := NewCoordinator()
	err := c.PrepareLink(1, "http://unknown.host/d/x.tsf", sqltypes.DefaultEASIA())
	if err == nil || !strings.Contains(err.Error(), "no file manager") {
		t.Fatalf("err = %v", err)
	}
}

func TestCoordinatorReconcile(t *testing.T) {
	c := NewCoordinator()
	fs1 := &fakeServer{host: "fs1.sim:80"}
	c.Register(fs1)
	urls := []string{"http://fs1.sim:80/d/a.tsf", "http://fs1.sim:80/d/b.tsf"}
	if err := c.Reconcile(urls, sqltypes.DefaultEASIA()); err != nil {
		t.Fatal(err)
	}
	if len(fs1.prepared) != 2 {
		t.Fatalf("reconciled %d files, want 2", len(fs1.prepared))
	}
	// Unknown host is reported, known host still processed.
	err := c.Reconcile([]string{"http://nope/d/x.tsf", "http://fs1.sim:80/d/c.tsf"}, sqltypes.DefaultEASIA())
	if err == nil {
		t.Fatal("expected error for unknown host")
	}
	if len(fs1.prepared) != 3 {
		t.Fatalf("partial reconcile: %d", len(fs1.prepared))
	}
}
