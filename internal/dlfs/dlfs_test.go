package dlfs

import (
	"errors"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/med"
	"repro/internal/sqltypes"
)

func newAuth(t *testing.T) *med.TokenAuthority {
	t.Helper()
	ta, err := med.NewTokenAuthority([]byte("test-secret"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return ta
}

func newManager(t *testing.T) *Manager {
	t.Helper()
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewManager("fs1.sim:80", store, newAuth(t))
}

func putFile(t *testing.T, m *Manager, path, content string) {
	t.Helper()
	if _, err := m.Put(path, strings.NewReader(content)); err != nil {
		t.Fatalf("Put(%s): %v", path, err)
	}
}

func linkFile(t *testing.T, m *Manager, tx uint64, path string, opts sqltypes.DatalinkOptions) {
	t.Helper()
	if err := m.Prepare(tx, med.LinkOp{Kind: med.OpLink, Path: path, Opts: opts}); err != nil {
		t.Fatalf("Prepare link %s: %v", path, err)
	}
	if err := m.Commit(tx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestLinkRequiresExistingFile(t *testing.T) {
	m := newManager(t)
	err := m.Prepare(1, med.LinkOp{Kind: med.OpLink, Path: "/data/missing.tsf", Opts: sqltypes.DefaultEASIA()})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLinkedFileCannotBeRenamedOrDeleted(t *testing.T) {
	m := newManager(t)
	putFile(t, m, "/data/run1/ts1.tsf", "payload")
	linkFile(t, m, 1, "/data/run1/ts1.tsf", sqltypes.DefaultEASIA())

	if err := m.Store().Remove("/data/run1/ts1.tsf"); !errors.Is(err, ErrLinked) {
		t.Fatalf("Remove: %v, want ErrLinked", err)
	}
	if err := m.Store().Rename("/data/run1/ts1.tsf", "/data/run1/moved.tsf"); !errors.Is(err, ErrLinked) {
		t.Fatalf("Rename: %v, want ErrLinked", err)
	}
	// WRITE PERMISSION BLOCKED refuses overwrites.
	if _, err := m.Put("/data/run1/ts1.tsf", strings.NewReader("overwrite")); !errors.Is(err, ErrWriteBlocked) {
		t.Fatalf("Put: %v, want ErrWriteBlocked", err)
	}
}

func TestUnlinkRestoreReleasesFile(t *testing.T) {
	m := newManager(t)
	opts := sqltypes.DefaultEASIA() // ON UNLINK RESTORE
	putFile(t, m, "/d/f.dat", "x")
	linkFile(t, m, 1, "/d/f.dat", opts)

	if err := m.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: "/d/f.dat", Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	// File still exists and is now mutable again.
	if _, err := m.Stat("/d/f.dat"); err != nil {
		t.Fatalf("file vanished after RESTORE unlink: %v", err)
	}
	if err := m.Store().Remove("/d/f.dat"); err != nil {
		t.Fatalf("unlinked file still protected: %v", err)
	}
}

func TestUnlinkDeleteRemovesFile(t *testing.T) {
	m := newManager(t)
	opts := sqltypes.DefaultEASIA()
	opts.OnUnlink = sqltypes.UnlinkDelete
	putFile(t, m, "/d/f.dat", "x")
	linkFile(t, m, 1, "/d/f.dat", opts)

	if err := m.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: "/d/f.dat", Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Stat("/d/f.dat"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("file survived DELETE unlink: %v", err)
	}
}

func TestDoubleLinkRejected(t *testing.T) {
	m := newManager(t)
	putFile(t, m, "/d/f.dat", "x")
	linkFile(t, m, 1, "/d/f.dat", sqltypes.DefaultEASIA())
	err := m.Prepare(2, med.LinkOp{Kind: med.OpLink, Path: "/d/f.dat", Opts: sqltypes.DefaultEASIA()})
	if !errors.Is(err, ErrAlreadyLinked) {
		t.Fatalf("err = %v, want ErrAlreadyLinked", err)
	}
}

func TestConcurrentTxReservationConflict(t *testing.T) {
	m := newManager(t)
	putFile(t, m, "/d/f.dat", "x")
	if err := m.Prepare(1, med.LinkOp{Kind: med.OpLink, Path: "/d/f.dat", Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatal(err)
	}
	// A second transaction cannot claim the same path.
	if err := m.Prepare(2, med.LinkOp{Kind: med.OpLink, Path: "/d/f.dat", Opts: sqltypes.DefaultEASIA()}); err == nil {
		t.Fatal("conflicting prepare accepted")
	}
	// After abort the path is free again.
	m.Abort(1)
	if err := m.Prepare(2, med.LinkOp{Kind: med.OpLink, Path: "/d/f.dat", Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatalf("prepare after abort: %v", err)
	}
}

func TestReadPermissionDBRequiresToken(t *testing.T) {
	m := newManager(t)
	putFile(t, m, "/d/secret.dat", "classified")
	linkFile(t, m, 1, "/d/secret.dat", sqltypes.DefaultEASIA())

	if _, _, err := m.Open("/d/secret.dat", ""); !errors.Is(err, ErrTokenRequired) {
		t.Fatalf("tokenless read: %v, want ErrTokenRequired", err)
	}
	// A token minted under the right secret is accepted.
	goodTok, _ := newAuth(t).Mint("/d/secret.dat", "u", 0)
	rc, _, err := m.Open("/d/secret.dat", goodTok)
	if err != nil {
		t.Fatalf("valid token rejected: %v", err)
	}
	rc.Close()
	// A token minted by a different authority (wrong secret) fails.
	rogue, _ := med.NewTokenAuthority([]byte("rogue-secret"), time.Minute)
	badTok, _ := rogue.Mint("/d/secret.dat", "u", 0)
	if _, _, err := m.Open("/d/secret.dat", badTok); err == nil {
		t.Fatal("cross-secret token accepted")
	}
}

func TestReadPermissionFSNeedsNoToken(t *testing.T) {
	m := newManager(t)
	opts := sqltypes.DatalinkOptions{
		FileLinkControl: true, IntegrityAll: true,
		ReadPerm: sqltypes.ReadFS, WritePerm: sqltypes.WriteFS,
		OnUnlink: sqltypes.UnlinkRestore,
	}
	putFile(t, m, "/d/open.dat", "public")
	linkFile(t, m, 1, "/d/open.dat", opts)
	rc, fi, err := m.Open("/d/open.dat", "")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if fi.Size != 6 {
		t.Fatalf("size = %d", fi.Size)
	}
}

func TestPathTraversalRejected(t *testing.T) {
	m := newManager(t)
	if _, err := m.Put("../escape.dat", strings.NewReader("x")); !errors.Is(err, ErrBadPath) {
		t.Fatalf("relative path: %v", err)
	}
	if _, err := m.Stat("/../../etc/passwd"); err == nil {
		// Clean() collapses this inside the root; ensure it did not escape.
		p, _ := m.Store().resolve("/../../etc/passwd")
		if !strings.HasPrefix(p, m.Store().Root()) {
			t.Fatal("path escaped the store root")
		}
	}
	// The registry file is not addressable.
	if _, err := m.Stat("/.dlfm-links.json"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("registry addressable: %v", err)
	}
}

func TestRegistryPersistence(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager("fs1.sim:80", store, nil)
	putFile(t, m, "/d/f.dat", "x")
	linkFile(t, m, 1, "/d/f.dat", sqltypes.DefaultEASIA())

	// Re-open the store: the link must survive.
	store2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store2.LinkedCount() != 1 {
		t.Fatalf("links lost across restart: %d", store2.LinkedCount())
	}
	if err := store2.Remove("/d/f.dat"); !errors.Is(err, ErrLinked) {
		t.Fatalf("protection lost across restart: %v", err)
	}
}

func TestEnsureLinkedIdempotent(t *testing.T) {
	m := newManager(t)
	putFile(t, m, "/d/f.dat", "x")
	for i := 0; i < 3; i++ {
		if err := m.EnsureLinked("/d/f.dat", sqltypes.DefaultEASIA()); err != nil {
			t.Fatal(err)
		}
	}
	if m.Store().LinkedCount() != 1 {
		t.Fatalf("LinkedCount = %d", m.Store().LinkedCount())
	}
	if err := m.EnsureLinked("/d/missing.dat", sqltypes.DefaultEASIA()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("EnsureLinked missing: %v", err)
	}
}

func TestBackupRestore(t *testing.T) {
	m := newManager(t)
	putFile(t, m, "/d/a.dat", "aaa")
	putFile(t, m, "/d/b.dat", "bbb")
	putFile(t, m, "/d/c.dat", "ccc") // not linked: excluded from backup
	linkFile(t, m, 1, "/d/a.dat", sqltypes.DefaultEASIA())
	linkFile(t, m, 2, "/d/b.dat", sqltypes.DefaultEASIA())

	backupDir := t.TempDir()
	n, err := m.BackupLinked(backupDir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("backed up %d files, want 2", n)
	}

	// Restore into a fresh store (disaster recovery of a file host).
	store2, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager("fs1.sim:80", store2, nil)
	rn, err := m2.RestoreLinked(backupDir)
	if err != nil {
		t.Fatal(err)
	}
	if rn != 2 || store2.LinkedCount() != 2 {
		t.Fatalf("restore: n=%d linked=%d", rn, store2.LinkedCount())
	}
	rc, _, err := store2.Open("/d/a.dat", "", nil)
	if err == nil {
		defer rc.Close()
		b, _ := io.ReadAll(rc)
		if string(b) != "aaa" {
			t.Fatalf("restored content = %q", b)
		}
	} else if !errors.Is(err, ErrTokenRequired) {
		t.Fatal(err)
	}
}

func TestRecoveryNoFilesExcludedFromBackup(t *testing.T) {
	m := newManager(t)
	opts := sqltypes.DefaultEASIA()
	opts.RecoveryYes = false
	putFile(t, m, "/d/volatile.dat", "x")
	linkFile(t, m, 1, "/d/volatile.dat", opts)
	n, err := m.BackupLinked(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("RECOVERY NO file was backed up")
	}
}

// TestHTTPRoundTrip drives the full daemon+client stack over real HTTP:
// upload, link via the coordinator protocol, token-gated download,
// integrity enforcement.
func TestHTTPRoundTrip(t *testing.T) {
	auth := newAuth(t)
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager("fs1.sim:80", store, auth)
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()

	client := NewClient("fs1.sim:80", srv.URL, srv.Client())

	// Upload.
	if err := client.Put("/data/run1/ts1.tsf", strings.NewReader("timestep-data")); err != nil {
		t.Fatal(err)
	}
	fi, err := client.Stat("/data/run1/ts1.tsf")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != int64(len("timestep-data")) || fi.Linked {
		t.Fatalf("stat = %+v", fi)
	}

	// Two-phase link over HTTP.
	opts := sqltypes.DefaultEASIA()
	if err := client.Prepare(1, med.LinkOp{Kind: med.OpLink, Path: "/data/run1/ts1.tsf", Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := client.Commit(1); err != nil {
		t.Fatal(err)
	}

	// Tokenless download refused; tokened download succeeds.
	if _, err := client.Open("/data/run1/ts1.tsf", ""); err == nil {
		t.Fatal("tokenless read of READ PERMISSION DB file succeeded")
	}
	tok, _ := auth.Mint("/data/run1/ts1.tsf", "guest", 0)
	rc, err := client.Open("/data/run1/ts1.tsf", tok)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "timestep-data" {
		t.Fatalf("downloaded %q", body)
	}

	// Remote delete/rename of a linked file is refused with a mapped error.
	if err := client.Remove("/data/run1/ts1.tsf"); !errors.Is(err, ErrLinked) {
		t.Fatalf("remote remove: %v, want ErrLinked", err)
	}
	if err := client.Rename("/data/run1/ts1.tsf", "/data/run1/x.tsf"); !errors.Is(err, ErrLinked) {
		t.Fatalf("remote rename: %v, want ErrLinked", err)
	}

	// Unlink over HTTP, then the file is mutable again.
	if err := client.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: "/data/run1/ts1.tsf", Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := client.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := client.Remove("/data/run1/ts1.tsf"); err != nil {
		t.Fatalf("remove after unlink: %v", err)
	}
}

func TestHTTPExpiredToken(t *testing.T) {
	auth := newAuth(t)
	now := time.Date(2000, 3, 27, 12, 0, 0, 0, time.UTC)
	auth.SetClock(func() time.Time { return now })
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager("fs1.sim:80", store, auth)
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()
	client := NewClient("fs1.sim:80", srv.URL, srv.Client())

	if err := client.Put("/d/f.dat", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	if err := client.Prepare(1, med.LinkOp{Kind: med.OpLink, Path: "/d/f.dat", Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatal(err)
	}
	if err := client.Commit(1); err != nil {
		t.Fatal(err)
	}
	tok, _ := auth.Mint("/d/f.dat", "u", 10*time.Second)
	now = now.Add(time.Hour) // the token is now long expired
	if _, err := client.Open("/d/f.dat", tok); !errors.Is(err, med.ErrTokenExpired) {
		t.Fatalf("expired token: %v, want ErrTokenExpired", err)
	}
}

func TestStoreFilePlacement(t *testing.T) {
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Put("/vol0/run 1/f.dat", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(store.Root(), "vol0", "run 1", "f.dat")
	if _, err := filepath.Glob(want); err != nil {
		t.Fatal(err)
	}
	fi, err := store.Stat("/vol0/run 1/f.dat")
	if err != nil || fi.Size != 1 {
		t.Fatalf("stat: %+v err=%v", fi, err)
	}
}

// TestHTTPWriteBlocked: WRITE PERMISSION BLOCKED is enforced for
// uploads arriving over the wire, not just local Put calls.
func TestHTTPWriteBlocked(t *testing.T) {
	auth := newAuth(t)
	store, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager("fs1.sim:80", store, auth)
	srv := httptest.NewServer(NewServer(mgr))
	defer srv.Close()
	client := NewClient("fs1.sim:80", srv.URL, srv.Client())

	if err := client.Put("/d/frozen.dat", strings.NewReader("v1")); err != nil {
		t.Fatal(err)
	}
	if err := client.Prepare(1, med.LinkOp{Kind: med.OpLink, Path: "/d/frozen.dat", Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatal(err)
	}
	if err := client.Commit(1); err != nil {
		t.Fatal(err)
	}
	err = client.Put("/d/frozen.dat", strings.NewReader("v2 overwrite"))
	if !errors.Is(err, ErrWriteBlocked) {
		t.Fatalf("remote overwrite of linked file: %v, want ErrWriteBlocked", err)
	}
}
