package dlfs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"repro/internal/med"
	"repro/internal/sqltypes"
)

// Client is the database host's handle on a remote file-manager daemon.
// It implements med.FileServer over the dlfs HTTP protocol, so a
// Coordinator can drive remote hosts exactly like in-process Managers.
//
// Every RPC honours the client's context (WithContext) and optional
// per-attempt deadline (SetRPCTimeout). Idempotent RPCs — health
// probes, metadata reads, downloads, and the tx-keyed link-control
// verbs, which the daemon deduplicates by transaction ID — can retry
// transient failures (transport errors, HTTP 502/503/504) with
// jittered exponential backoff (SetRetry). Mutating file operations
// (Put, Rename, Remove) never retry: a duplicate apply is observable.
type Client struct {
	host    string // host[:port] as it appears in DATALINK URLs
	baseURL string // e.g. "http://host:port"
	hc      *http.Client

	ctx        context.Context // nil = context.Background()
	rpcTimeout time.Duration   // per-attempt deadline; 0 = unbounded
	retries    int             // extra attempts for idempotent RPCs
	backoff    time.Duration   // base backoff between attempts
}

// NewClient returns a client for the daemon at baseURL serving DATALINK
// host name host.
func NewClient(host, baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{host: host, baseURL: strings.TrimSuffix(baseURL, "/"), hc: hc}
}

// Host implements med.FileServer.
func (c *Client) Host() string { return c.host }

// WithContext returns a copy of the client whose RPCs are bounded by
// ctx: cancellation aborts in-flight requests and backoff waits. The
// receiver is unchanged, so a shared base client can hand out
// per-statement views cheaply.
func (c *Client) WithContext(ctx context.Context) *Client {
	cc := *c
	cc.ctx = ctx
	return &cc
}

// SetRPCTimeout bounds each RPC attempt (not the whole retry sequence)
// to d. Zero removes the bound. A caller context with an earlier
// deadline still wins.
func (c *Client) SetRPCTimeout(d time.Duration) { c.rpcTimeout = d }

// SetRetry allows up to extra additional attempts for idempotent RPCs,
// spaced by jittered exponential backoff starting at base (50ms when
// base <= 0). Retries are off by default so failure injection and
// breaker accounting observe every fault exactly once unless a
// deployment opts in.
func (c *Client) SetRetry(extra int, base time.Duration) {
	c.retries = extra
	c.backoff = base
}

// retryableStatus reports whether an HTTP status is a transient
// server/gateway condition worth retrying.
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

// sleepBackoff waits out the attempt-th backoff window (exponential,
// capped at 2s, with ±50% jitter so synchronized clients desynchronize)
// unless ctx ends first.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) error {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// roundTrip issues the request built by newReq, retrying transient
// failures for idempotent RPCs. On success the caller owns the response
// body and must invoke cancel after closing it (the per-attempt
// deadline stays armed while the body streams).
func (c *Client) roundTrip(idem bool, newReq func() (*http.Request, error)) (*http.Response, context.CancelFunc, error) {
	base := c.ctx
	if base == nil {
		base = context.Background()
	}
	attempts := 1
	if idem && c.retries > 0 {
		attempts += c.retries
	}
	var lastErr error
	for i := 0; ; i++ {
		if err := base.Err(); err != nil {
			return nil, nil, err
		}
		ctx, cancel := base, context.CancelFunc(func() {})
		if c.rpcTimeout > 0 {
			ctx, cancel = context.WithTimeout(base, c.rpcTimeout)
		}
		req, err := newReq()
		if err != nil {
			cancel()
			return nil, nil, err
		}
		resp, err := c.hc.Do(req.WithContext(ctx))
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, cancel, nil
		}
		if err == nil {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
		} else {
			lastErr = err
		}
		cancel()
		if i+1 >= attempts {
			return nil, nil, lastErr
		}
		if err := sleepBackoff(base, c.backoff, i); err != nil {
			return nil, nil, err
		}
	}
}

func (c *Client) post(path string, body any, idem bool) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, cancel, err := c.roundTrip(idem, func() (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, c.baseURL+path, bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// get issues a GET through the retry/deadline layer. The caller owns
// resp.Body and must call cancel after closing it.
func (c *Client) get(url string) (*http.Response, context.CancelFunc, error) {
	return c.roundTrip(true, func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url, nil)
	})
}

// remoteError maps HTTP status codes back onto the store's sentinel
// errors so callers can errors.Is on either side of the wire.
func remoteError(code int, msg string) error {
	base := fmt.Errorf("dlfs: remote: %s", msg)
	switch code {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case http.StatusConflict:
		switch {
		case strings.Contains(msg, "already linked"):
			return fmt.Errorf("%w: %s", ErrAlreadyLinked, msg)
		case strings.Contains(msg, "not linked"):
			return fmt.Errorf("%w: %s", ErrNotLinked, msg)
		case strings.Contains(msg, "WRITE PERMISSION"):
			return fmt.Errorf("%w: %s", ErrWriteBlocked, msg)
		default:
			return fmt.Errorf("%w: %s", ErrLinked, msg)
		}
	case http.StatusForbidden:
		switch {
		case strings.Contains(msg, "expired"):
			return med.ErrTokenExpired
		case strings.Contains(msg, "different file"):
			return med.ErrTokenWrongFile
		case strings.Contains(msg, "token required"):
			return fmt.Errorf("%w: %s", ErrTokenRequired, msg)
		default:
			return med.ErrTokenTampered
		}
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadPath, msg)
	}
	return base
}

// Prepare implements med.FileServer. Tx-keyed on the daemon, so a
// retried prepare lands on the same staged transaction.
func (c *Client) Prepare(txID uint64, op med.LinkOp) error {
	return c.post("/dlfm/prepare", prepareReq{Tx: txID, Kind: op.Kind, Path: op.Path, Opts: op.Opts}, true)
}

// Commit implements med.FileServer.
func (c *Client) Commit(txID uint64) error { return c.post("/dlfm/commit", txReq{Tx: txID}, true) }

// Abort implements med.FileServer. A failure is surfaced — an
// unreachable daemon still holds the staged prepare and its path
// reservations, so the coordinator queues the abort for retry rather
// than letting a rolled-back transaction leak files on that server.
func (c *Client) Abort(txID uint64) error { return c.post("/dlfm/abort", txReq{Tx: txID}, true) }

// EnsureLinked implements med.FileServer.
func (c *Client) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	return c.post("/dlfm/ensure", ensureReq{Path: path, Opts: opts}, true)
}

// Put uploads a file to the remote store. Never retried: the body
// stream is consumed by the first attempt and a duplicate apply is
// observable.
func (c *Client) Put(path string, r io.Reader) error {
	resp, cancel, err := c.roundTrip(false, func() (*http.Request, error) {
		return http.NewRequest(http.MethodPut, c.baseURL+"/files"+path, r)
	})
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Open downloads a file; token may be empty for READ PERMISSION FS files.
func (c *Client) Open(path, token string) (io.ReadCloser, error) {
	rc, _, err := c.OpenStat(path, token)
	return rc, err
}

// OpenStat downloads a file and rebuilds its FileInfo from the
// response headers — one round trip, which is what the replication
// tier's failover reads use.
func (c *Client) OpenStat(path, token string) (io.ReadCloser, FileInfo, error) {
	url := c.baseURL + "/files" + path
	if token != "" {
		u, err := sqltypes.ParseDatalinkURL("http://" + c.host + path)
		if err != nil {
			return nil, FileInfo{}, err
		}
		url = c.baseURL + "/files" + u.Dir() + "/" + token + ";" + u.File()
	}
	resp, cancel, err := c.get(url)
	if err != nil {
		return nil, FileInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		return nil, FileInfo{}, remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	fi := FileInfo{Path: path, Size: resp.ContentLength, Linked: resp.Header.Get("X-Dlfs-Linked") == "true"}
	if t, terr := http.ParseTime(resp.Header.Get("Last-Modified")); terr == nil {
		fi.ModTime = t
	}
	// The per-attempt deadline stays armed while the caller streams the
	// body; Close releases it.
	return &cancelReadCloser{rc: resp.Body, cancel: cancel}, fi, nil
}

// cancelReadCloser couples a streamed response body to its RPC
// deadline: closing the body releases the context timer.
type cancelReadCloser struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelReadCloser) Read(p []byte) (int, error) { return c.rc.Read(p) }

func (c *cancelReadCloser) Close() error {
	err := c.rc.Close()
	c.cancel()
	return err
}

// Stat queries file metadata.
func (c *Client) Stat(path string) (FileInfo, error) {
	resp, cancel, err := c.get(c.baseURL + "/dlfm/stat?path=" + path)
	if err != nil {
		return FileInfo{}, err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return FileInfo{}, remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var sr statResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: sr.Path, Size: sr.Size, ModTime: sr.ModTime, Linked: sr.Linked, Opts: sr.Opts}, nil
}

// Ping probes the daemon's health endpoint (the cluster's failure
// detector calls it periodically).
func (c *Client) Ping() error {
	resp, cancel, err := c.get(c.baseURL + "/healthz")
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dlfs: health probe of %s: HTTP %d", c.host, resp.StatusCode)
	}
	return nil
}

// LinkStates fetches the daemon's full link registry (anti-entropy).
func (c *Client) LinkStates() ([]LinkState, error) {
	resp, cancel, err := c.get(c.baseURL + "/dlfm/links")
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var states []LinkState
	if err := json.NewDecoder(resp.Body).Decode(&states); err != nil {
		return nil, err
	}
	return states, nil
}

// Rename asks the remote store to rename a file (refused while linked).
// Not retried: a repeat of a succeeded-but-unacknowledged rename fails
// with ErrNotFound.
func (c *Client) Rename(oldPath, newPath string) error {
	return c.post("/dlfm/rename", renameReq{Old: oldPath, New: newPath}, false)
}

// Remove asks the remote store to delete a file (refused while linked).
// Not retried, like Rename.
func (c *Client) Remove(path string) error {
	return c.post("/dlfm/remove", pathReq{Path: path}, false)
}

var _ med.FileServer = (*Client)(nil)
