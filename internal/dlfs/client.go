package dlfs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/med"
	"repro/internal/sqltypes"
)

// Client is the database host's handle on a remote file-manager daemon.
// It implements med.FileServer over the dlfs HTTP protocol, so a
// Coordinator can drive remote hosts exactly like in-process Managers.
type Client struct {
	host    string // host[:port] as it appears in DATALINK URLs
	baseURL string // e.g. "http://host:port"
	hc      *http.Client
}

// NewClient returns a client for the daemon at baseURL serving DATALINK
// host name host.
func NewClient(host, baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{host: host, baseURL: strings.TrimSuffix(baseURL, "/"), hc: hc}
}

// Host implements med.FileServer.
func (c *Client) Host() string { return c.host }

func (c *Client) post(path string, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Post(c.baseURL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// remoteError maps HTTP status codes back onto the store's sentinel
// errors so callers can errors.Is on either side of the wire.
func remoteError(code int, msg string) error {
	base := fmt.Errorf("dlfs: remote: %s", msg)
	switch code {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case http.StatusConflict:
		switch {
		case strings.Contains(msg, "already linked"):
			return fmt.Errorf("%w: %s", ErrAlreadyLinked, msg)
		case strings.Contains(msg, "not linked"):
			return fmt.Errorf("%w: %s", ErrNotLinked, msg)
		case strings.Contains(msg, "WRITE PERMISSION"):
			return fmt.Errorf("%w: %s", ErrWriteBlocked, msg)
		default:
			return fmt.Errorf("%w: %s", ErrLinked, msg)
		}
	case http.StatusForbidden:
		switch {
		case strings.Contains(msg, "expired"):
			return med.ErrTokenExpired
		case strings.Contains(msg, "different file"):
			return med.ErrTokenWrongFile
		case strings.Contains(msg, "token required"):
			return fmt.Errorf("%w: %s", ErrTokenRequired, msg)
		default:
			return med.ErrTokenTampered
		}
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadPath, msg)
	}
	return base
}

// Prepare implements med.FileServer.
func (c *Client) Prepare(txID uint64, op med.LinkOp) error {
	return c.post("/dlfm/prepare", prepareReq{Tx: txID, Kind: op.Kind, Path: op.Path, Opts: op.Opts})
}

// Commit implements med.FileServer.
func (c *Client) Commit(txID uint64) error { return c.post("/dlfm/commit", txReq{Tx: txID}) }

// Abort implements med.FileServer. A failure is surfaced — an
// unreachable daemon still holds the staged prepare and its path
// reservations, so the coordinator queues the abort for retry rather
// than letting a rolled-back transaction leak files on that server.
func (c *Client) Abort(txID uint64) error { return c.post("/dlfm/abort", txReq{Tx: txID}) }

// EnsureLinked implements med.FileServer.
func (c *Client) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	return c.post("/dlfm/ensure", ensureReq{Path: path, Opts: opts})
}

// Put uploads a file to the remote store.
func (c *Client) Put(path string, r io.Reader) error {
	req, err := http.NewRequest(http.MethodPut, c.baseURL+"/files"+path, r)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Open downloads a file; token may be empty for READ PERMISSION FS files.
func (c *Client) Open(path, token string) (io.ReadCloser, error) {
	rc, _, err := c.OpenStat(path, token)
	return rc, err
}

// OpenStat downloads a file and rebuilds its FileInfo from the
// response headers — one round trip, which is what the replication
// tier's failover reads use.
func (c *Client) OpenStat(path, token string) (io.ReadCloser, FileInfo, error) {
	url := c.baseURL + "/files" + path
	if token != "" {
		u, err := sqltypes.ParseDatalinkURL("http://" + c.host + path)
		if err != nil {
			return nil, FileInfo{}, err
		}
		url = c.baseURL + "/files" + u.Dir() + "/" + token + ";" + u.File()
	}
	resp, err := c.hc.Get(url)
	if err != nil {
		return nil, FileInfo{}, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, FileInfo{}, remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	fi := FileInfo{Path: path, Size: resp.ContentLength, Linked: resp.Header.Get("X-Dlfs-Linked") == "true"}
	if t, terr := http.ParseTime(resp.Header.Get("Last-Modified")); terr == nil {
		fi.ModTime = t
	}
	return resp.Body, fi, nil
}

// Stat queries file metadata.
func (c *Client) Stat(path string) (FileInfo, error) {
	resp, err := c.hc.Get(c.baseURL + "/dlfm/stat?path=" + path)
	if err != nil {
		return FileInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return FileInfo{}, remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var sr statResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Path: sr.Path, Size: sr.Size, ModTime: sr.ModTime, Linked: sr.Linked, Opts: sr.Opts}, nil
}

// Ping probes the daemon's health endpoint (the cluster's failure
// detector calls it periodically).
func (c *Client) Ping() error {
	resp, err := c.hc.Get(c.baseURL + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dlfs: health probe of %s: HTTP %d", c.host, resp.StatusCode)
	}
	return nil
}

// LinkStates fetches the daemon's full link registry (anti-entropy).
func (c *Client) LinkStates() ([]LinkState, error) {
	resp, err := c.hc.Get(c.baseURL + "/dlfm/links")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, remoteError(resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	var states []LinkState
	if err := json.NewDecoder(resp.Body).Decode(&states); err != nil {
		return nil, err
	}
	return states, nil
}

// Rename asks the remote store to rename a file (refused while linked).
func (c *Client) Rename(oldPath, newPath string) error {
	return c.post("/dlfm/rename", renameReq{Old: oldPath, New: newPath})
}

// Remove asks the remote store to delete a file (refused while linked).
func (c *Client) Remove(path string) error {
	return c.post("/dlfm/remove", pathReq{Path: path})
}

var _ med.FileServer = (*Client)(nil)
