// Package dlfs implements the Data Links File Manager: the daemon that
// runs on every file-server host and gives the database SQL/MED control
// over external files. It enforces the paper's four DATALINK guarantees
// on the file side:
//
//	referential integrity — linked files cannot be renamed or deleted;
//	transaction consistency — link/unlink happens under a two-phase
//	  protocol driven by the database engine;
//	security — READ PERMISSION DB files are only served against a valid
//	  encrypted access token;
//	coordinated backup — linked RECOVERY YES files can be captured and
//	  restored in sync with the database.
//
// The package provides the on-disk Store, an in-process Manager that
// implements med.FileServer (used in tests, simulations and benches),
// and an HTTP daemon plus client for real distributed deployment.
package dlfs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/iofault"
	"repro/internal/med"
	"repro/internal/sqltypes"
)

// Store errors surfaced to the database and web layers.
var (
	ErrNotFound      = errors.New("dlfs: file not found")
	ErrAlreadyLinked = errors.New("dlfs: file is already linked")
	ErrNotLinked     = errors.New("dlfs: file is not linked")
	ErrLinked        = errors.New("dlfs: operation refused: file is under database link control")
	ErrWriteBlocked  = errors.New("dlfs: write refused: linked with WRITE PERMISSION BLOCKED")
	ErrTokenRequired = errors.New("dlfs: access token required (READ PERMISSION DB)")
	ErrBadPath       = errors.New("dlfs: invalid path")
)

// LinkState records one linked file in the manager's registry — or,
// when UnlinkedAt is set, a tombstone for a file that was unlinked.
// Tombstones ride the same wire format as links (the anti-entropy scan
// consumes both), so a healed partition learns "this was unlinked at T"
// instead of resurrecting the stale link by last-writer-wins union.
type LinkState struct {
	Path     string                   `json:"path"`
	Opts     sqltypes.DatalinkOptions `json:"opts"`
	LinkedAt time.Time                `json:"linked_at"`
	// UnlinkedAt, when non-zero, marks this entry as an unlink
	// tombstone: the path is NOT linked here, and the unlink event at
	// this time outranks any older link elsewhere in the replica set.
	UnlinkedAt time.Time `json:"unlinked_at,omitempty"`
}

// Tombstone reports whether this entry records an unlink rather than a
// live link.
func (ls LinkState) Tombstone() bool { return !ls.UnlinkedAt.IsZero() }

// EventTime is the instant of the entry's most recent state change —
// the timestamp last-writer-wins reconciliation compares.
func (ls LinkState) EventTime() time.Time {
	if ls.UnlinkedAt.After(ls.LinkedAt) {
		return ls.UnlinkedAt
	}
	return ls.LinkedAt
}

// DefaultTombstoneTTL bounds how long unlink tombstones are retained.
// It must exceed the longest partition the tier is expected to heal
// from; after GC a rejoining replica's stale link can win the union
// again, which is the documented residual risk of bounded tombstones.
const DefaultTombstoneTTL = 24 * time.Hour

// FileInfo describes a stored file for the UI layer (the paper's result
// tables display object sizes beside each hyperlink).
type FileInfo struct {
	Path    string
	Size    int64
	ModTime time.Time
	Linked  bool
	Opts    sqltypes.DatalinkOptions // meaningful when Linked
}

// Store is the on-disk file store plus link registry of one file-server
// host. Server-local paths always start with "/" and are mapped below
// the root directory; traversal outside the root is rejected.
type Store struct {
	mu      sync.Mutex
	root    string
	fs      iofault.FS
	links   map[string]LinkState
	// unlinked holds unlink tombstones by path, GC'd after tombstoneTTL.
	unlinked     map[string]LinkState
	tombstoneTTL time.Duration
	pending      map[uint64][]med.LinkOp
	// reserved tracks paths claimed by in-flight transactions so two
	// concurrent transactions cannot prepare conflicting work.
	reserved map[string]uint64
}

// NewStore opens (creating if needed) a store rooted at dir, loading any
// persisted link registry.
func NewStore(dir string) (*Store, error) { return NewStoreFS(dir, nil) }

// NewStoreFS opens a store whose durability I/O goes through fs (nil
// selects the real disk); tests inject an iofault controller here.
func NewStoreFS(dir string, fsys iofault.FS) (*Store, error) {
	if fsys == nil {
		fsys = iofault.Disk{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		root:         dir,
		fs:           fsys,
		links:        make(map[string]LinkState),
		unlinked:     make(map[string]LinkState),
		tombstoneTTL: DefaultTombstoneTTL,
		pending:      make(map[uint64][]med.LinkOp),
		reserved:     make(map[string]uint64),
	}
	if err := s.loadRegistry(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetTombstoneTTL bounds unlink-tombstone retention (tests shrink it to
// exercise GC; production keeps DefaultTombstoneTTL).
func (s *Store) SetTombstoneTTL(ttl time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tombstoneTTL = ttl
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) registryPath() string { return filepath.Join(s.root, ".dlfm-links.json") }

// registryFile is the persisted v2 registry: live links plus unlink
// tombstones. The v1 format was a bare JSON array of links; loadRegistry
// still reads it (first byte '[') so existing stores upgrade in place on
// their next save.
type registryFile struct {
	Version    int         `json:"version"`
	Links      []LinkState `json:"links"`
	Tombstones []LinkState `json:"tombstones,omitempty"`
}

func (s *Store) loadRegistry() error {
	b, err := iofault.ReadFile(s.fs, s.registryPath())
	if iofault.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	trimmed := strings.TrimSpace(string(b))
	if strings.HasPrefix(trimmed, "[") { // legacy v1: bare link array
		var list []LinkState
		if err := json.Unmarshal(b, &list); err != nil {
			return fmt.Errorf("dlfs: corrupt link registry: %w", err)
		}
		for _, ls := range list {
			s.links[ls.Path] = ls
		}
		return nil
	}
	var reg registryFile
	if err := json.Unmarshal(b, &reg); err != nil {
		return fmt.Errorf("dlfs: corrupt link registry: %w", err)
	}
	for _, ls := range reg.Links {
		s.links[ls.Path] = ls
	}
	for _, ls := range reg.Tombstones {
		s.unlinked[ls.Path] = ls
	}
	return nil
}

// saveRegistryLocked persists the link registry durably: tmp file +
// fsync + rename + parent-dir fsync, so a crash at any point leaves the
// complete old or complete new registry — never a torn file, and never
// a rename that evaporates with the page cache. Expired tombstones are
// GC'd on the way out.
func (s *Store) saveRegistryLocked() error {
	reg := registryFile{Version: 2, Links: make([]LinkState, 0, len(s.links))}
	for _, ls := range s.links {
		reg.Links = append(reg.Links, ls)
	}
	cutoff := time.Now().UTC().Add(-s.tombstoneTTL)
	for path, ls := range s.unlinked {
		if ls.UnlinkedAt.Before(cutoff) {
			delete(s.unlinked, path)
			continue
		}
		reg.Tombstones = append(reg.Tombstones, ls)
	}
	sort.Slice(reg.Links, func(i, j int) bool { return reg.Links[i].Path < reg.Links[j].Path })
	sort.Slice(reg.Tombstones, func(i, j int) bool { return reg.Tombstones[i].Path < reg.Tombstones[j].Path })
	b, err := json.MarshalIndent(reg, "", "  ")
	if err != nil {
		return err
	}
	return iofault.WriteFileAtomic(s.fs, s.registryPath(), b, 0o644)
}

// resolve maps a server-local path ("/dir/file") to a filesystem path,
// rejecting traversal.
func (s *Store) resolve(path string) (string, error) {
	if !strings.HasPrefix(path, "/") {
		return "", ErrBadPath
	}
	clean := filepath.Clean("/" + strings.TrimPrefix(path, "/"))
	if strings.Contains(clean, "..") {
		return "", ErrBadPath
	}
	if strings.HasPrefix(filepath.Base(clean), ".dlfm") {
		return "", ErrBadPath
	}
	return filepath.Join(s.root, filepath.FromSlash(clean)), nil
}

// ---------- two-phase link control ----------

// Prepare validates and reserves op under txID.
func (s *Store) Prepare(txID uint64, op med.LinkOp) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fsPath, err := s.resolve(op.Path)
	if err != nil {
		return err
	}
	if holder, busy := s.reserved[op.Path]; busy && holder != txID {
		return fmt.Errorf("dlfs: %s is reserved by transaction %d", op.Path, holder)
	}
	switch op.Kind {
	case med.OpLink:
		// FILE LINK CONTROL: "a check should be made to ensure the
		// existence of the file during a database insert or update".
		fi, err := os.Stat(fsPath)
		if err != nil || fi.IsDir() {
			return fmt.Errorf("%w: %s", ErrNotFound, op.Path)
		}
		if _, linked := s.links[op.Path]; linked {
			return fmt.Errorf("%w: %s", ErrAlreadyLinked, op.Path)
		}
	case med.OpUnlink:
		if _, linked := s.links[op.Path]; !linked {
			return fmt.Errorf("%w: %s", ErrNotLinked, op.Path)
		}
	default:
		return fmt.Errorf("dlfs: unknown link op %d", op.Kind)
	}
	// Idempotent per (txID, op): skip duplicates.
	for _, existing := range s.pending[txID] {
		if existing.Kind == op.Kind && existing.Path == op.Path {
			return nil
		}
	}
	s.pending[txID] = append(s.pending[txID], op)
	s.reserved[op.Path] = txID
	return nil
}

// Commit applies every operation prepared under txID. Unknown txIDs are
// a no-op (idempotence for coordinator retries).
func (s *Store) Commit(txID uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ops := s.pending[txID]
	delete(s.pending, txID)
	var errs []error
	for _, op := range ops {
		delete(s.reserved, op.Path)
		switch op.Kind {
		case med.OpLink:
			s.links[op.Path] = LinkState{Path: op.Path, Opts: op.Opts, LinkedAt: time.Now().UTC()}
			delete(s.unlinked, op.Path) // a fresh link supersedes any tombstone
		case med.OpUnlink:
			st, linked := s.links[op.Path]
			delete(s.links, op.Path)
			// Tombstone the unlink so a replica that missed it (partition,
			// crash) cannot resurrect the link via the registry union.
			s.unlinked[op.Path] = LinkState{Path: op.Path, Opts: st.Opts, LinkedAt: st.LinkedAt, UnlinkedAt: time.Now().UTC()}
			if linked && st.Opts.OnUnlink == sqltypes.UnlinkDelete {
				if fsPath, err := s.resolve(op.Path); err == nil {
					if err := s.fs.Remove(fsPath); err != nil && !iofault.IsNotExist(err) {
						errs = append(errs, err)
					}
				}
			}
			// ON UNLINK RESTORE: the file simply returns to file-system
			// control — it stays in place, no longer protected.
		}
	}
	if len(ops) > 0 {
		if err := s.saveRegistryLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Abort discards every operation prepared under txID.
func (s *Store) Abort(txID uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, op := range s.pending[txID] {
		delete(s.reserved, op.Path)
	}
	delete(s.pending, txID)
}

// EnsureLinked forces path into the linked state (crash reconciliation).
func (s *Store) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	fsPath, err := s.resolve(path)
	if err != nil {
		return err
	}
	if _, err := os.Stat(fsPath); err != nil {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if _, linked := s.links[path]; !linked {
		s.links[path] = LinkState{Path: path, Opts: opts, LinkedAt: time.Now().UTC()}
		delete(s.unlinked, path)
		return s.saveRegistryLocked()
	}
	return nil
}

// EnsureUnlinked forces path out of the linked state, recording the
// tombstone at the given event time (anti-entropy repair: the time is
// the original unlink's, not the repair's, so reconciliation ordering
// is preserved). A no-op when the path is not linked and a tombstone at
// least as new already exists.
func (s *Store) EnsureUnlinked(path string, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, linked := s.links[path]
	if cur, ok := s.unlinked[path]; !linked && ok && !cur.UnlinkedAt.Before(at) {
		return nil
	}
	st := s.links[path]
	delete(s.links, path)
	s.unlinked[path] = LinkState{Path: path, Opts: st.Opts, LinkedAt: st.LinkedAt, UnlinkedAt: at.UTC()}
	return s.saveRegistryLocked()
}

// LinkedCount reports how many files are currently linked.
func (s *Store) LinkedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.links)
}

// LinkedPaths returns the sorted paths of all linked files.
func (s *Store) LinkedPaths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.links))
	for p := range s.links {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LinkStates returns the full link registry — live links AND unlink
// tombstones (distinguish with Tombstone()) — sorted by path. The
// cluster's anti-entropy loop uses it to learn which state (and event
// time, for last-writer-wins ordering) each replica holds; tombstones
// are what stop a healed partition from resurrecting an unlinked file.
func (s *Store) LinkStates() []LinkState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]LinkState, 0, len(s.links)+len(s.unlinked))
	for _, ls := range s.links {
		out = append(out, ls)
	}
	cutoff := time.Now().UTC().Add(-s.tombstoneTTL)
	for _, ls := range s.unlinked {
		if ls.UnlinkedAt.Before(cutoff) {
			continue // expired; the next save GCs it
		}
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ---------- file operations with link enforcement ----------

// Put writes a file (creating directories as needed). Writes to linked
// files are governed by the link's WRITE PERMISSION.
func (s *Store) Put(path string, r io.Reader) (int64, error) {
	s.mu.Lock()
	if ls, linked := s.links[path]; linked && ls.Opts.WritePerm == sqltypes.WriteBlocked {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %s", ErrWriteBlocked, path)
	}
	if holder, busy := s.reserved[path]; busy {
		s.mu.Unlock()
		return 0, fmt.Errorf("dlfs: %s is reserved by transaction %d", path, holder)
	}
	s.mu.Unlock()
	fsPath, err := s.resolve(path)
	if err != nil {
		return 0, err
	}
	if err := s.fs.MkdirAll(filepath.Dir(fsPath), 0o755); err != nil {
		return 0, err
	}
	f, err := iofault.Create(s.fs, fsPath)
	if err != nil {
		return 0, err
	}
	n, err := io.Copy(f, r)
	if err == nil {
		// A Put that returns success must survive a host crash: the
		// archive acknowledges ingested simulation output upstream.
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}

// Rename moves a file; refused while the source or target is linked
// (referential integrity: "an external file referenced by the database
// cannot be renamed or deleted").
func (s *Store) Rename(oldPath, newPath string) error {
	s.mu.Lock()
	if _, linked := s.links[oldPath]; linked {
		s.mu.Unlock()
		return fmt.Errorf("%w: rename %s", ErrLinked, oldPath)
	}
	if _, linked := s.links[newPath]; linked {
		s.mu.Unlock()
		return fmt.Errorf("%w: rename onto %s", ErrLinked, newPath)
	}
	s.mu.Unlock()
	oldFS, err := s.resolve(oldPath)
	if err != nil {
		return err
	}
	newFS, err := s.resolve(newPath)
	if err != nil {
		return err
	}
	if err := s.fs.MkdirAll(filepath.Dir(newFS), 0o755); err != nil {
		return err
	}
	return s.fs.Rename(oldFS, newFS)
}

// Remove deletes a file; refused while linked.
func (s *Store) Remove(path string) error {
	s.mu.Lock()
	if _, linked := s.links[path]; linked {
		s.mu.Unlock()
		return fmt.Errorf("%w: remove %s", ErrLinked, path)
	}
	s.mu.Unlock()
	fsPath, err := s.resolve(path)
	if err != nil {
		return err
	}
	if err := s.fs.Remove(fsPath); err != nil {
		if iofault.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotFound, path)
		}
		return err
	}
	return nil
}

// Open returns a reader for path after access control. auth supplies
// token validation; it may be nil only for stores that hold no READ
// PERMISSION DB links.
func (s *Store) Open(path, token string, auth *med.TokenAuthority) (io.ReadCloser, FileInfo, error) {
	s.mu.Lock()
	ls, linked := s.links[path]
	s.mu.Unlock()
	if linked && ls.Opts.ReadPerm == sqltypes.ReadDB {
		if token == "" {
			return nil, FileInfo{}, fmt.Errorf("%w: %s", ErrTokenRequired, path)
		}
		if auth == nil {
			return nil, FileInfo{}, fmt.Errorf("dlfs: no token authority configured for %s", path)
		}
		if _, err := auth.Validate(token, path); err != nil {
			return nil, FileInfo{}, err
		}
	}
	fsPath, err := s.resolve(path)
	if err != nil {
		return nil, FileInfo{}, err
	}
	f, err := os.Open(fsPath)
	if err != nil {
		return nil, FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, FileInfo{}, err
	}
	info := FileInfo{Path: path, Size: fi.Size(), ModTime: fi.ModTime(), Linked: linked, Opts: ls.Opts}
	return f, info, nil
}

// Stat describes a file without opening it.
func (s *Store) Stat(path string) (FileInfo, error) {
	fsPath, err := s.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	fi, err := os.Stat(fsPath)
	if err != nil {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	s.mu.Lock()
	ls, linked := s.links[path]
	s.mu.Unlock()
	return FileInfo{Path: path, Size: fi.Size(), ModTime: fi.ModTime(), Linked: linked, Opts: ls.Opts}, nil
}

// ---------- coordinated backup ----------

// BackupLinked copies every linked RECOVERY YES file under dst.
func (s *Store) BackupLinked(dst string) (int, error) {
	s.mu.Lock()
	var paths []string
	for p, ls := range s.links {
		if ls.Opts.RecoveryYes {
			paths = append(paths, p)
		}
	}
	s.mu.Unlock()
	sort.Strings(paths)
	n := 0
	for _, p := range paths {
		fsPath, err := s.resolve(p)
		if err != nil {
			return n, err
		}
		target := filepath.Join(dst, filepath.FromSlash(strings.TrimPrefix(p, "/")))
		if err := copyFileMk(fsPath, target); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// RestoreLinked copies files back from a BackupLinked tree and re-links
// them with their registered options (or default EASIA options when the
// registry entry was lost with the store).
func (s *Store) RestoreLinked(src string) (int, error) {
	n := 0
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		local := "/" + filepath.ToSlash(rel)
		fsPath, err := s.resolve(local)
		if err != nil {
			return err
		}
		if err := copyFileMk(path, fsPath); err != nil {
			return err
		}
		s.mu.Lock()
		if _, linked := s.links[local]; !linked {
			s.links[local] = LinkState{Path: local, Opts: sqltypes.DefaultEASIA(), LinkedAt: time.Now().UTC()}
			delete(s.unlinked, local) // an explicit restore overrides any tombstone
		}
		s.mu.Unlock()
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return n, s.saveRegistryLocked()
}

func copyFileMk(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
