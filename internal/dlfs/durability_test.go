package dlfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/med"
	"repro/internal/sqltypes"
)

func writePayload(t *testing.T, root, rel string) {
	t.Helper()
	p := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// A link Commit whose registry write cannot be made durable must say so:
// the in-memory link exists, but a crash before the next successful save
// would forget it, and the caller (the 2PC coordinator) is the one who
// can retry or reconcile.
func TestRegistryCommitSurfacesSyncFailure(t *testing.T) {
	faults := iofault.New(nil)
	s, err := NewStoreFS(t.TempDir(), faults)
	if err != nil {
		t.Fatal(err)
	}
	writePayload(t, s.Root(), "f.dat")
	faults.FailSync(".dlfm-links")
	if err := s.Prepare(1, med.LinkOp{Kind: med.OpLink, Path: "/f.dat", Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(1); !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("Commit with unsyncable registry: %v, want ErrInjected surfaced", err)
	}
	// After the fault clears, the next registry mutation persists
	// everything, including the link the failed save could not.
	faults.HealSync(".dlfm-links")
	writePayload(t, s.Root(), "g.dat")
	if err := s.EnsureLinked("/g.dat", sqltypes.DefaultEASIA()); err != nil {
		t.Fatal(err)
	}
	reloaded, err := NewStore(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if got := reloaded.LinkedCount(); got != 2 {
		t.Fatalf("links after reload = %d, want 2", got)
	}
}

// Unlinking leaves a tombstone that rides the LinkStates wire, and a
// fresh link supersedes it.
func TestUnlinkLeavesTombstone(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	writePayload(t, s.Root(), "f.dat")
	opts := sqltypes.DefaultEASIA()
	if err := s.EnsureLinked("/f.dat", opts); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: "/f.dat", Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(2); err != nil {
		t.Fatal(err)
	}
	states := s.LinkStates()
	var tomb *LinkState
	for i := range states {
		if states[i].Path == "/f.dat" && states[i].Tombstone() {
			tomb = &states[i]
		}
	}
	if tomb == nil {
		t.Fatalf("no tombstone in LinkStates: %+v", states)
	}
	if !tomb.EventTime().Equal(tomb.UnlinkedAt) {
		t.Fatal("tombstone EventTime should be its UnlinkedAt")
	}
	// The tombstone survives a restart (it is part of the registry).
	reloaded, err := NewStore(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ls := range reloaded.LinkStates() {
		if ls.Path == "/f.dat" && ls.Tombstone() {
			found = true
		}
	}
	if !found {
		t.Fatal("tombstone lost across restart")
	}
	// Relinking supersedes it.
	if err := reloaded.EnsureLinked("/f.dat", opts); err != nil {
		t.Fatal(err)
	}
	for _, ls := range reloaded.LinkStates() {
		if ls.Path == "/f.dat" && ls.Tombstone() {
			t.Fatal("tombstone survived a fresh link")
		}
	}
}

// Tombstones are garbage-collected after their TTL, at save time and
// when reporting LinkStates.
func TestTombstoneTTLGC(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetTombstoneTTL(time.Minute)
	// An unlink from two minutes ago: already expired.
	if err := s.EnsureUnlinked("/old.dat", time.Now().Add(-2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	// A fresh unlink: retained.
	if err := s.EnsureUnlinked("/new.dat", time.Now()); err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, ls := range s.LinkStates() {
		if ls.Tombstone() {
			paths = append(paths, ls.Path)
		}
	}
	if len(paths) != 1 || paths[0] != "/new.dat" {
		t.Fatalf("tombstones visible = %v, want only /new.dat", paths)
	}
	reloaded, err := NewStore(s.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, ls := range reloaded.LinkStates() {
		if ls.Path == "/old.dat" {
			t.Fatal("expired tombstone persisted across save")
		}
	}
}

// A v1 registry (bare JSON array of links) loads transparently and is
// rewritten as v2 on the next save.
func TestRegistryLegacyV1Upgrade(t *testing.T) {
	dir := t.TempDir()
	legacy := `[{"path":"/a.dat","opts":{},"linked_at":"2024-01-02T03:04:05Z"}]`
	if err := os.WriteFile(filepath.Join(dir, ".dlfm-links.json"), []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.LinkedCount(); got != 1 {
		t.Fatalf("legacy registry loaded %d links, want 1", got)
	}
	writePayload(t, dir, "b.dat")
	if err := s.EnsureLinked("/b.dat", sqltypes.DefaultEASIA()); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, ".dlfm-links.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"version": 2`) {
		t.Fatalf("registry not upgraded to v2:\n%s", b)
	}
	reloaded, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := reloaded.LinkedCount(); got != 2 {
		t.Fatalf("links after upgrade round-trip = %d, want 2", got)
	}
}
