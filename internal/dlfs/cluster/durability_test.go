package cluster

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dlfs"
	"repro/internal/iofault"
	"repro/internal/med"
	"repro/internal/sqltypes"
)

// newSharedSet builds n managers once and a constructor that assembles a
// fresh ReplicaSet over those same managers — simulating a gateway
// restart that keeps the file servers but loses all in-memory state.
func newSharedSet(t *testing.T, n int, cfg Config) (func() *ReplicaSet, map[string]*dlfs.Manager) {
	t.Helper()
	auth := newAuth(t)
	cfg.Host = "fs.sim:80"
	cfg.Tokens = auth
	mgrs := make(map[string]*dlfs.Manager, n)
	for i := 0; i < n; i++ {
		host := string(rune('a'+i)) + ".replica.sim:80"
		store, err := dlfs.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		mgrs[host] = dlfs.NewManager(host, store, auth)
	}
	build := func() *ReplicaSet {
		rs := New(cfg)
		for _, m := range mgrs {
			if err := rs.Add(NewManagerNode(m)); err != nil {
				t.Fatal(err)
			}
		}
		return rs
	}
	return build, mgrs
}

// The LWW registry union used to resurrect a stale link when the member
// that missed the unlink rejoined after the gateway lost its dirty set
// (the documented caveat). Unlink tombstones close it: the tombstone
// rides the registry wire with the newer event time, wins the union, and
// Repair drops the stale link — no repair state needed.
func TestTombstoneBlocksResurrectionWithoutRepairState(t *testing.T) {
	build, mgrs := newSharedSet(t, 3, Config{ReplicationFactor: 2})
	path := "/runs/s1/tomb.tsf"
	opts := sqltypes.DefaultEASIA()

	rs1 := build()
	if _, err := rs1.Put(path, strings.NewReader("data")); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs1, 1, path, opts)
	placed := rankMembers(rs1.Members(), path)[:2]

	// One placed replica misses the unlink.
	if err := rs1.MarkDown(placed[1]); err != nil {
		t.Fatal(err)
	}
	if err := rs1.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: path, Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := rs1.Commit(2); err != nil {
		t.Fatal(err)
	}
	if got := linkedOn(mgrs, path); len(got) != 1 {
		t.Fatalf("stale link expected on exactly the down member, got %v", got)
	}

	// Gateway "restarts" with no StatePath: dirty set and retry queue are
	// gone, every member is up again. Only the stores' registries remain.
	rs2 := build()
	stats, err := rs2.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := linkedOn(mgrs, path); len(got) != 0 {
		t.Fatalf("stale link resurrected/survived on %v; tombstone should have dropped it (repair stats %+v)", got, stats)
	}
	if stats.Unlinked == 0 {
		t.Fatalf("repair did not report the stale-link drop: %+v", stats)
	}
}

// Repair-state checkpointing is best-effort but counted: a state file
// that cannot be written durably increments StateCheckpointFailures
// instead of being silently discarded, and the next mutation retries.
func TestStateCheckpointFailuresCounted(t *testing.T) {
	faults := iofault.New(nil)
	statePath := filepath.Join(t.TempDir(), "repair-state.json")
	build, _ := newSharedSet(t, 3, Config{
		ReplicationFactor: 2,
		StatePath:         statePath,
		FS:                faults,
	})
	rs := build()
	path := "/runs/s1/ckpt.tsf"
	if _, err := rs.Put(path, strings.NewReader("data")); err != nil {
		t.Fatal(err)
	}
	placed := rankMembers(rs.Members(), path)[:2]
	if err := rs.MarkDown(placed[1]); err != nil {
		t.Fatal(err)
	}

	faults.FailSync("repair-state")
	linkVia(t, rs, 1, path, sqltypes.DefaultEASIA()) // partial → dirty → checkpoint fails
	if got := rs.Stats().StateCheckpointFailures; got == 0 {
		t.Fatal("failed state checkpoint not counted")
	}

	// Fault clears: the next mutation checkpoints successfully and a new
	// gateway can load the dirty set it recorded.
	faults.HealSync("repair-state")
	if err := rs.MarkUp(placed[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Repair(); err != nil {
		t.Fatal(err)
	}
	rs2 := build()
	if err := rs2.LoadState(); err != nil {
		t.Fatalf("LoadState after healed checkpoint: %v", err)
	}
}
