// Integration tests: the replicated tier dropped into the full
// archive stack (sqldb engine → med coordinator → cluster → dlfs
// stores), including real HTTP daemons with netsim-injected faults —
// partitions, a crash between prepare and commit, a slow replica.
package cluster_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dlfs"
	"repro/internal/dlfs/cluster"
	"repro/internal/med"
	"repro/internal/netsim"
)

const logicalHost = "fs.sim:80"

var testSecret = []byte("cluster-integration-secret")

// newArchive opens an archive plus a replica set of n in-process
// manager members attached as the logical host.
func newArchive(t *testing.T, n, rf int) (*core.Archive, *cluster.ReplicaSet, map[string]*dlfs.Manager) {
	t.Helper()
	a, err := core.Open(core.Config{Secret: testSecret, WorkRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	rs := cluster.New(cluster.Config{Host: logicalHost, ReplicationFactor: rf, Tokens: a.Tokens})
	mgrs := make(map[string]*dlfs.Manager, n)
	auth, err := med.NewTokenAuthority(testSecret, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("m%d.sim:80", i)
		store, err := dlfs.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		m := dlfs.NewManager(host, store, auth)
		mgrs[host] = m
		if err := rs.Add(cluster.NewManagerNode(m)); err != nil {
			t.Fatal(err)
		}
	}
	a.AttachFileServer(rs)
	if err := a.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, a, `INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 'Southampton', NULL)`)
	mustExec(t, a, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Replicated demo', NULL, 16, 100.0, 2, NOW())`)
	return a, rs, mgrs
}

func mustExec(t *testing.T, a *core.Archive, sql string) {
	t.Helper()
	if _, err := a.DB.Exec(sql); err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
}

// archiveResult stores content through the set and inserts its
// RESULT_FILE row, returning the DATALINK URL.
func archiveResult(t *testing.T, a *core.Archive, name, path, content string, timestep int) string {
	t.Helper()
	url, err := a.ArchiveFile(logicalHost, path, strings.NewReader(content))
	if err != nil {
		t.Fatalf("ArchiveFile(%s): %v", path, err)
	}
	mustExec(t, a, fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('%s', 'S1', %d, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
		name, timestep, len(content), url))
	return url
}

func linkedMembers(mgrs map[string]*dlfs.Manager, path string) []string {
	var out []string
	for host, m := range mgrs {
		if fi, err := m.Stat(path); err == nil && fi.Linked {
			out = append(out, host)
		}
	}
	return out
}

// TestArchiveFailoverEndToEnd is the acceptance scenario: RF=2, one
// member down — SELECTed DATALINK files stay readable through tokens,
// new links commit through 2PC, and after MarkUp anti-entropy restores
// full replication.
func TestArchiveFailoverEndToEnd(t *testing.T) {
	a, rs, mgrs := newArchive(t, 3, 2)
	url := archiveResult(t, a, "ts0.tsf", "/runs/s1/ts0.tsf", "timestep-zero", 0)
	if got := linkedMembers(mgrs, "/runs/s1/ts0.tsf"); len(got) != 2 {
		t.Fatalf("linked on %v, want 2 replicas", got)
	}

	// Take down a member that holds the file.
	holders := linkedMembers(mgrs, "/runs/s1/ts0.tsf")
	down := holders[0]
	if err := rs.MarkDown(down); err != nil {
		t.Fatal(err)
	}

	// SELECT → tokenized URL → download, all while a replica is dark.
	rows, err := a.DB.Query(`SELECT DOWNLOAD_RESULT FROM RESULT_FILE WHERE FILE_NAME = 'ts0.tsf'`)
	if err != nil {
		t.Fatal(err)
	}
	dl := rows.Data[0][0].Str()
	if dl != url {
		t.Fatalf("stored URL %q != %q", dl, url)
	}
	tokURL, err := a.DownloadURL(dl, core.User{Name: "papiani"})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := a.OpenDownload(tokURL)
	if err != nil {
		t.Fatalf("download with replica down: %v", err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "timestep-zero" {
		t.Fatalf("downloaded %q", body)
	}
	// The raw (tokenless) URL stays refused — failover preserves the
	// READ PERMISSION DB check.
	if _, err := a.OpenDownload(dl); err == nil {
		t.Fatal("tokenless download succeeded during failover")
	}

	// New links commit through 2PC while the member is down.
	archiveResult(t, a, "ts1.tsf", "/runs/s1/ts1.tsf", "timestep-one", 1)
	if len(rs.UnderReplicated()) == 0 {
		// Only fails if placement never chose the down member for
		// either path; with 2 of 3 members per path that cannot happen
		// for both paths and the member that held ts0.
		t.Log("note: down member not placed for new paths")
	}

	// Rejoin + anti-entropy: full replication restored.
	if err := rs.MarkUp(down); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	for _, p := range []string{"/runs/s1/ts0.tsf", "/runs/s1/ts1.tsf"} {
		if got := linkedMembers(mgrs, p); len(got) != 2 {
			t.Fatalf("after repair %s linked on %v, want 2", p, got)
		}
	}
	if got := rs.UnderReplicated(); len(got) != 0 {
		t.Fatalf("dirty set not drained: %v", got)
	}
}

// TestInsertFailsWhenAllReplicasDown: with every replica dark the
// prepare fails and the transaction rolls back cleanly.
func TestInsertFailsWhenAllReplicasDown(t *testing.T) {
	a, rs, _ := newArchive(t, 2, 2)
	if _, err := a.ArchiveFile(logicalHost, "/runs/s1/ts9.tsf", strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	for _, m := range rs.Members() {
		if err := rs.MarkDown(m); err != nil {
			t.Fatal(err)
		}
	}
	_, err := a.DB.Exec(`INSERT INTO RESULT_FILE VALUES ('ts9.tsf', 'S1', 9, 'u', 'TSF', 1,
		DLVALUE('http://` + logicalHost + `/runs/s1/ts9.tsf'))`)
	if !errors.Is(err, cluster.ErrNoReplica) {
		t.Fatalf("insert with all replicas down: %v, want ErrNoReplica", err)
	}
	rows, qerr := a.DB.Query(`SELECT COUNT(*) FROM RESULT_FILE`)
	if qerr != nil {
		t.Fatal(qerr)
	}
	if rows.Data[0][0].Int() != 0 {
		t.Fatal("failed insert left a row behind")
	}
}

// httpMember is one real daemon: an httptest server over a manager.
type httpMember struct {
	host  string // 127.0.0.1:port — both the member name and fault key
	mgr   *dlfs.Manager
	close func()
}

// newHTTPSet builds n real daemons and a replica set of HTTP client
// nodes whose traffic runs through the netsim fault controller.
func newHTTPSet(t *testing.T, a *core.Archive, n, rf int, faults *netsim.Faults) (*cluster.ReplicaSet, []*httpMember) {
	t.Helper()
	auth, err := med.NewTokenAuthority(testSecret, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs := cluster.New(cluster.Config{Host: logicalHost, ReplicationFactor: rf, Tokens: a.Tokens})
	hc := faults.Client(nil)
	var members []*httpMember
	for i := 0; i < n; i++ {
		store, err := dlfs.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(nil) // handler set below, after the host is known
		host := strings.TrimPrefix(srv.URL, "http://")
		mgr := dlfs.NewManager(host, store, auth)
		srv.Config.Handler = dlfs.NewServer(mgr)
		m := &httpMember{host: host, mgr: mgr, close: srv.Close}
		t.Cleanup(srv.Close)
		if err := rs.Add(cluster.NewClientNode(dlfs.NewClient(host, srv.URL, hc))); err != nil {
			t.Fatal(err)
		}
		members = append(members, m)
	}
	a.AttachFileServer(rs)
	return rs, members
}

// TestCrashBetweenPrepareAndCommit: one replica answers its prepare
// and then drops off the network. The transaction still commits (the
// database is durable, the healthy replica applies), the divergence is
// queued, and after the partition heals Repair drains the staged
// commit so the rejoined replica converges.
func TestCrashBetweenPrepareAndCommit(t *testing.T) {
	a, err := core.Open(core.Config{Secret: testSecret, WorkRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	faults := netsim.NewFaults()
	rs, members := newHTTPSet(t, a, 2, 2, faults)
	if err := a.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, a, `INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 'Southampton', NULL)`)
	mustExec(t, a, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Crash demo', NULL, 16, 100.0, 2, NOW())`)

	path := "/runs/s1/ts0.tsf"
	if _, err := a.ArchiveFile(logicalHost, path, strings.NewReader("payload")); err != nil {
		t.Fatal(err)
	}
	victim := members[1]
	faults.CrashAfter(victim.host, "/dlfm/prepare", 1)

	mustExec(t, a, fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts0.tsf', 'S1', 0, 'u', 'TSF', 7, DLVALUE('http://%s%s'))`,
		logicalHost, path))

	// The survivor holds the link; the crashed replica staged but never
	// committed it.
	if fi, err := members[0].mgr.Stat(path); err != nil || !fi.Linked {
		t.Fatalf("survivor state: %+v err=%v", fi, err)
	}
	if fi, err := victim.mgr.Stat(path); err != nil || fi.Linked {
		t.Fatalf("victim applied a commit it never received: %+v err=%v", fi, err)
	}
	if rs.Stats().PartialCommits == 0 {
		t.Fatal("partial commit not counted")
	}

	// Partition heals; anti-entropy replays the staged commit.
	faults.Heal(victim.host)
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if fi, err := victim.mgr.Stat(path); err != nil || !fi.Linked {
		t.Fatalf("victim not converged after heal: %+v err=%v", fi, err)
	}
}

// TestPartitionDuringReconcileAndFailoverReads: a member is partitioned
// while the archive reconciles after recovery; reads fail over to the
// reachable replica (token checks intact, slow-replica delay applied),
// and the healed member is caught up by Repair.
func TestPartitionDuringReconcileAndFailoverReads(t *testing.T) {
	a, err := core.Open(core.Config{Secret: testSecret, WorkRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	faults := netsim.NewFaults()
	rs, members := newHTTPSet(t, a, 2, 2, faults)
	if err := a.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, a, `INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 'Southampton', NULL)`)
	mustExec(t, a, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Partition demo', NULL, 16, 100.0, 2, NOW())`)

	path := "/runs/s1/ts0.tsf"
	url, err := a.ArchiveFile(logicalHost, path, strings.NewReader("survivor-data"))
	if err != nil {
		t.Fatal(err)
	}
	// Link while one member is dark: only the other replica gets it.
	victim := members[1]
	if err := rs.MarkDown(victim.host); err != nil {
		t.Fatal(err)
	}
	mustExec(t, a, fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts0.tsf', 'S1', 0, 'u', 'TSF', 13, DLVALUE('%s'))`, url))
	if err := rs.MarkUp(victim.host); err != nil {
		t.Fatal(err)
	}

	// Now PARTITION the same member at the network and reconcile: the
	// coordinator must succeed against the reachable replica and queue
	// the dark one, not wedge.
	faults.Partition(victim.host)
	if err := a.Reconcile(); err != nil {
		t.Fatalf("Reconcile with a partitioned member: %v", err)
	}

	// Token-authenticated read served by the failover replica, with the
	// healthy member also degraded to a slow replica.
	faults.SetDelay(members[0].host, 10*time.Millisecond)
	tokURL, err := a.DownloadURL(url, core.User{Name: "papiani"})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := a.OpenDownload(tokURL)
	if err != nil {
		t.Fatalf("failover read during partition: %v", err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "survivor-data" {
		t.Fatalf("failover read %q", body)
	}
	if _, err := a.OpenDownload(url); err == nil {
		t.Fatal("tokenless read during partition succeeded")
	}

	// Heal, probe (the failover attempts above tripped the victim's
	// circuit breaker — the health checker closes it again), and
	// repair: the partitioned member receives file + link.
	faults.Heal(victim.host)
	faults.SetDelay(members[0].host, 0)
	rs.Probe()
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	fi, err := victim.mgr.Stat(path)
	if err != nil || !fi.Linked {
		t.Fatalf("victim not repaired: %+v err=%v", fi, err)
	}
	var buf bytes.Buffer
	rc2, _, err := victim.mgr.Open(path, mustToken(t, a, path))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(&buf, rc2) //nolint:errcheck
	rc2.Close()
	if buf.String() != "survivor-data" {
		t.Fatalf("repaired content %q", buf.String())
	}
}

func mustToken(t *testing.T, a *core.Archive, path string) string {
	t.Helper()
	tok, err := a.Tokens.Mint(path, "test", 0)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}
