package cluster

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/dlfs"
	"repro/internal/med"
)

// Failure detection: a per-member circuit breaker fed by two sources —
// the periodic Ping probe (Probe / the background loop started by
// Start) and transport failures observed inline by reads and writes.
// FailureThreshold consecutive failures open the circuit (the member is
// skipped by routing, except as a last resort for reads); one success
// closes it. MarkDown/MarkUp pin the state manually — probes will not
// flip a held member — which is what tests and operators drain/restore
// members with.

// MarkDown manually opens a member's circuit and holds it open.
func (rs *ReplicaSet) MarkDown(name string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m, ok := rs.members[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMember, name)
	}
	m.down = true
	m.held = true
	return nil
}

// MarkUp closes a member's circuit and releases any manual hold. The
// caller should follow with Repair (the background loop does) so the
// member catches up on what it missed.
func (rs *ReplicaSet) MarkUp(name string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m, ok := rs.members[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownMember, name)
	}
	m.down = false
	m.held = false
	m.fails = 0
	return nil
}

// Down lists the members whose circuit is currently open, sorted.
func (rs *ReplicaSet) Down() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []string
	for _, name := range rs.order {
		if rs.members[name].down {
			out = append(out, name)
		}
	}
	return out
}

// Probe runs one health-check round: every member that is not manually
// held is pinged, failures feed its breaker, and a recovered member is
// routed to again (its catch-up copy happens on the next Repair).
// It returns the names of members whose circuit changed state.
func (rs *ReplicaSet) Probe() []string {
	rs.mu.Lock()
	ms := make([]*member, 0, len(rs.order))
	for _, name := range rs.order {
		if m := rs.members[name]; !m.held {
			ms = append(ms, m)
		}
	}
	rs.mu.Unlock()
	var flipped []string
	for _, m := range ms {
		err := m.node.Ping()
		var changed bool
		if err != nil {
			changed = rs.noteFailure(m)
		} else {
			changed = rs.noteSuccess(m)
		}
		if changed {
			flipped = append(flipped, m.name)
		}
	}
	return flipped
}

// noteFailure feeds one failure into the member's breaker; reports
// whether the circuit just opened. Held members never flip.
func (rs *ReplicaSet) noteFailure(m *member) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m.fails++
	if !m.down && !m.held && m.fails >= rs.cfg.FailureThreshold {
		m.down = true
		rs.met.breakerTrips.Inc()
		return true
	}
	return false
}

// noteSuccess resets the member's breaker; reports whether the circuit
// just closed. Held members stay down until MarkUp.
func (rs *ReplicaSet) noteSuccess(m *member) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	m.fails = 0
	if m.down && !m.held {
		m.down = false
		return true
	}
	return false
}

// Start launches the background health checker + anti-entropy loop:
// every ProbeInterval it probes all members and, whenever a member
// rejoined or the dirty set is non-empty, runs a Repair pass. Stop
// shuts it down.
func (rs *ReplicaSet) Start() {
	rs.mu.Lock()
	if rs.stopCh != nil {
		rs.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	rs.stopCh = stop
	rs.mu.Unlock()
	rs.wg.Add(1)
	go func() {
		defer rs.wg.Done()
		// One unconditional pass at startup: a freshly (re)started
		// gateway has an empty dirty set and sees no member flip, yet
		// the replicas may have diverged while it was away (an unlink
		// tombstone one member slept through, a partial Put). The
		// steady-state loop below is event-driven; this pass converges
		// pre-existing divergence without waiting for the next flap or
		// database Reconcile.
		rs.Probe()
		rs.Repair() //nolint:errcheck // next tick retries; Repair keeps its own stats
		ticker := time.NewTicker(rs.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				flipped := rs.Probe()
				rs.mu.Lock()
				pending := len(rs.dirty) > 0 || len(rs.retryCommits) > 0
				rs.mu.Unlock()
				if len(flipped) > 0 || pending {
					rs.Repair() //nolint:errcheck // next tick retries; Repair keeps its own stats
				}
			}
		}
	}()
}

// Stop halts the background loop started by Start.
func (rs *ReplicaSet) Stop() {
	rs.mu.Lock()
	stop := rs.stopCh
	rs.stopCh = nil
	rs.mu.Unlock()
	if stop != nil {
		close(stop)
		rs.wg.Wait()
	}
}

// isDomainErr reports whether err is a verdict of the dlfs/med
// protocol itself — a refusal every replica would agree on — rather
// than a transport failure particular to one replica.
func isDomainErr(err error) bool {
	switch {
	case errors.Is(err, dlfs.ErrNotFound),
		errors.Is(err, dlfs.ErrAlreadyLinked),
		errors.Is(err, dlfs.ErrNotLinked),
		errors.Is(err, dlfs.ErrLinked),
		errors.Is(err, dlfs.ErrWriteBlocked),
		errors.Is(err, dlfs.ErrBadPath),
		isAuthErr(err):
		return true
	}
	// Link-control reservation conflicts are plain errors on the store
	// and arrive as message-mapped remote errors over the wire.
	return err != nil && strings.Contains(err.Error(), "reserved by transaction")
}

// isAuthErr reports access-control verdicts, which reads must return
// immediately instead of failing over (every replica shares the token
// authority, so the verdict is the same everywhere).
func isAuthErr(err error) bool {
	return errors.Is(err, dlfs.ErrTokenRequired) ||
		errors.Is(err, med.ErrTokenExpired) ||
		errors.Is(err, med.ErrTokenTampered) ||
		errors.Is(err, med.ErrTokenWrongFile)
}
