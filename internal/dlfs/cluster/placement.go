package cluster

import (
	"hash/fnv"
	"sort"
)

// Replica placement uses rendezvous (highest-random-weight) hashing:
// every (member, path) pair gets a pseudo-random score and the path
// lives on the top-RF scorers. The properties the tier relies on:
//
//   - deterministic — every coordinator computes the same placement
//     from the same membership, with no placement table to replicate;
//   - minimal movement — registering or removing one member only
//     remaps the paths that gained or lost a top-RF slot, which keeps
//     anti-entropy's re-replication work proportional to the change;
//   - balanced — scores are independent per member, so load spreads
//     evenly without virtual-node bookkeeping.
//
// Placement ranks ALL registered members, not just healthy ones:
// health is a routing concern (skip down members, repair later), not a
// placement concern. If placement chased health, every flap would remap
// paths and anti-entropy would thrash.

// rendezvousScore hashes one (member, path) pair.
func rendezvousScore(member, path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member)) //nolint:errcheck // fnv cannot fail
	h.Write([]byte{0})      //nolint:errcheck
	h.Write([]byte(path))   //nolint:errcheck
	return h.Sum64()
}

// rankMembers orders member names for a path by descending score (name
// ascending on the vanishingly-rare tie, for determinism).
func rankMembers(names []string, path string) []string {
	type scored struct {
		name  string
		score uint64
	}
	ranked := make([]scored, len(names))
	for i, n := range names {
		ranked[i] = scored{name: n, score: rendezvousScore(n, path)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].name < ranked[j].name
	})
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.name
	}
	return out
}
