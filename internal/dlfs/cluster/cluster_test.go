package cluster

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/sqltypes"
)

func newAuth(t testing.TB) *med.TokenAuthority {
	t.Helper()
	ta, err := med.NewTokenAuthority([]byte("cluster-test-secret"), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	return ta
}

// newSet builds a replica set of n in-process managers sharing one
// token authority. Returns the set and the managers by member host.
func newSet(t testing.TB, n, rf int) (*ReplicaSet, map[string]*dlfs.Manager) {
	t.Helper()
	auth := newAuth(t)
	rs := New(Config{Host: "fs.sim:80", ReplicationFactor: rf, Tokens: auth})
	mgrs := make(map[string]*dlfs.Manager, n)
	for i := 0; i < n; i++ {
		host := string(rune('a'+i)) + ".replica.sim:80"
		store, err := dlfs.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		m := dlfs.NewManager(host, store, auth)
		mgrs[host] = m
		if err := rs.Add(NewManagerNode(m)); err != nil {
			t.Fatal(err)
		}
	}
	return rs, mgrs
}

// holders returns which managers have the file on disk.
func holders(mgrs map[string]*dlfs.Manager, path string) []string {
	var out []string
	for host, m := range mgrs {
		if _, err := m.Stat(path); err == nil {
			out = append(out, host)
		}
	}
	return out
}

// linkedOn returns which managers have the path linked.
func linkedOn(mgrs map[string]*dlfs.Manager, path string) []string {
	var out []string
	for host, m := range mgrs {
		if fi, err := m.Stat(path); err == nil && fi.Linked {
			out = append(out, host)
		}
	}
	return out
}

func linkVia(t *testing.T, rs *ReplicaSet, tx uint64, path string, opts sqltypes.DatalinkOptions) {
	t.Helper()
	if err := rs.Prepare(tx, med.LinkOp{Kind: med.OpLink, Path: path, Opts: opts}); err != nil {
		t.Fatalf("Prepare link %s: %v", path, err)
	}
	if err := rs.Commit(tx); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestPlacementDeterministicAndSpread(t *testing.T) {
	names := []string{"a.sim", "b.sim", "c.sim", "d.sim"}
	counts := map[string]int{}
	for i := 0; i < 400; i++ {
		path := "/runs/s1/ts" + string(rune('0'+i%10)) + strings.Repeat("x", i%7) + ".tsf"
		r1 := rankMembers(names, path)
		r2 := rankMembers(names, path)
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("placement not deterministic for %s", path)
			}
		}
		counts[r1[0]]++
	}
	for _, n := range names {
		if counts[n] == 0 {
			t.Fatalf("member %s never primary: %v", n, counts)
		}
	}
	// Minimal movement: adding a member must not reshuffle the relative
	// order of the existing ones.
	for i := 0; i < 100; i++ {
		path := "/d/f" + strings.Repeat("y", i%13) + ".dat"
		before := rankMembers(names, path)
		after := rankMembers(append(append([]string{}, names...), "e.sim"), path)
		var filtered []string
		for _, n := range after {
			if n != "e.sim" {
				filtered = append(filtered, n)
			}
		}
		for j := range before {
			if before[j] != filtered[j] {
				t.Fatalf("adding a member reshuffled placement of %s: %v vs %v", path, before, after)
			}
		}
	}
}

func TestReplicatedPutAndLink(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	if _, err := rs.Put("/runs/s1/ts0.tsf", strings.NewReader("payload")); err != nil {
		t.Fatal(err)
	}
	if got := holders(mgrs, "/runs/s1/ts0.tsf"); len(got) != 2 {
		t.Fatalf("holders = %v, want 2 replicas", got)
	}
	linkVia(t, rs, 1, "/runs/s1/ts0.tsf", sqltypes.DefaultEASIA())
	if got := linkedOn(mgrs, "/runs/s1/ts0.tsf"); len(got) != 2 {
		t.Fatalf("linked on %v, want 2 replicas", got)
	}
	// Integrity holds on every replica through the set, too.
	if err := rs.Remove("/runs/s1/ts0.tsf"); !errors.Is(err, dlfs.ErrLinked) {
		t.Fatalf("Remove linked: %v, want ErrLinked", err)
	}
}

func TestFailoverReadWithTokenChecks(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	auth := newAuth(t)
	path := "/runs/s1/ts1.tsf"
	if _, err := rs.Put(path, strings.NewReader("classified")); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs, 1, path, sqltypes.DefaultEASIA())

	// Take down the PRIMARY replica for this path.
	primary := rankMembers(rs.Members(), path)[0]
	if err := rs.MarkDown(primary); err != nil {
		t.Fatal(err)
	}

	// Tokenless read still refused (failover must not bypass security).
	if _, _, err := rs.Open(path, ""); !errors.Is(err, dlfs.ErrTokenRequired) {
		t.Fatalf("tokenless read with primary down: %v, want ErrTokenRequired", err)
	}
	// Tokened read fails over to the surviving replica.
	tok, _ := auth.Mint(path, "u", 0)
	rc, _, err := rs.Open(path, tok)
	if err != nil {
		t.Fatalf("failover read: %v", err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "classified" {
		t.Fatalf("failover read body = %q", body)
	}
	if rs.Stats().Failovers == 0 {
		t.Fatal("failover not counted")
	}
	_ = mgrs
}

func TestCommitWithReplicaDownThenRepair(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/runs/s1/ts2.tsf"
	placed := rankMembers(rs.Members(), path)[:2]

	if _, err := rs.Put(path, strings.NewReader("data")); err != nil {
		t.Fatal(err)
	}
	// One placed replica goes dark before the link transaction.
	if err := rs.MarkDown(placed[1]); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs, 7, path, sqltypes.DefaultEASIA())

	if got := linkedOn(mgrs, path); len(got) != 1 {
		t.Fatalf("linked on %v while replica down, want 1", got)
	}
	if len(rs.UnderReplicated()) == 0 {
		t.Fatal("partial commit not queued for repair")
	}

	// The member rejoins: anti-entropy restores full replication.
	if err := rs.MarkUp(placed[1]); err != nil {
		t.Fatal(err)
	}
	stats, err := rs.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.Copied == 0 && stats.Relinked == 0 {
		t.Fatalf("repair did nothing: %+v", stats)
	}
	if got := linkedOn(mgrs, path); len(got) != 2 {
		t.Fatalf("after repair linked on %v, want 2", got)
	}
	if len(rs.UnderReplicated()) != 0 {
		t.Fatalf("dirty set not drained: %v", rs.UnderReplicated())
	}
}

func TestUnlinkWhileReplicaDownRepaired(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/runs/s1/ts3.tsf"
	placed := rankMembers(rs.Members(), path)[:2]
	opts := sqltypes.DefaultEASIA()

	if _, err := rs.Put(path, strings.NewReader("data")); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs, 1, path, opts)

	if err := rs.MarkDown(placed[0]); err != nil {
		t.Fatal(err)
	}
	if err := rs.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: path, Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Commit(2); err != nil {
		t.Fatal(err)
	}
	// The down replica still thinks the file is linked.
	if got := linkedOn(mgrs, path); len(got) != 1 {
		t.Fatalf("stale links: %v", got)
	}
	if err := rs.MarkUp(placed[0]); err != nil {
		t.Fatal(err)
	}
	stats, err := rs.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.Unlinked == 0 {
		t.Fatalf("stale link not removed: %+v", stats)
	}
	if got := linkedOn(mgrs, path); len(got) != 0 {
		t.Fatalf("after repair still linked on %v", got)
	}
}

func TestReplacementMemberCatchesUp(t *testing.T) {
	rs, mgrs := newSet(t, 2, 2)
	auth := newAuth(t)
	path := "/runs/s1/ts4.tsf"
	if _, err := rs.Put(path, strings.NewReader("survivor")); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs, 1, path, sqltypes.DefaultEASIA())

	// A replacement host registers; repair must copy + link onto it if
	// placement selects it.
	store, err := dlfs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fresh := dlfs.NewManager("z.replica.sim:80", store, auth)
	if err := rs.Add(NewManagerNode(fresh)); err != nil {
		t.Fatal(err)
	}
	mgrs["z.replica.sim:80"] = fresh
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	placedNow := rankMembers(rs.Members(), path)[:2]
	for _, name := range placedNow {
		fi, err := mgrs[name].Stat(path)
		if err != nil || !fi.Linked {
			t.Fatalf("placed replica %s not caught up: fi=%+v err=%v", name, fi, err)
		}
	}
}

func TestHealthCheckerCircuitBreaker(t *testing.T) {
	auth := newAuth(t)
	rs := New(Config{Host: "fs.sim:80", ReplicationFactor: 1, FailureThreshold: 3, Tokens: auth})
	flaky := &flakyNode{Node: newManagerNode(t, auth, "f.sim:80")}
	if err := rs.Add(flaky); err != nil {
		t.Fatal(err)
	}
	flaky.fail = true
	for i := 0; i < 2; i++ {
		rs.Probe()
	}
	if len(rs.Down()) != 0 {
		t.Fatal("breaker tripped before threshold")
	}
	if flipped := rs.Probe(); len(flipped) != 1 {
		t.Fatalf("third failure did not trip: %v", flipped)
	}
	if got := rs.Down(); len(got) != 1 {
		t.Fatalf("Down = %v", got)
	}
	// Recovery closes the circuit on the next probe.
	flaky.fail = false
	if flipped := rs.Probe(); len(flipped) != 1 {
		t.Fatalf("recovery not detected: %v", flipped)
	}
	if len(rs.Down()) != 0 {
		t.Fatal("breaker still open after recovery")
	}
	// A manual hold survives healthy probes.
	if err := rs.MarkDown("f.sim:80"); err != nil {
		t.Fatal(err)
	}
	rs.Probe()
	if len(rs.Down()) != 1 {
		t.Fatal("probe overrode manual MarkDown")
	}
}

func TestAbortFailureSurfacedAndRetried(t *testing.T) {
	auth := newAuth(t)
	rs := New(Config{Host: "fs.sim:80", ReplicationFactor: 2, Tokens: auth})
	good := newManagerNode(t, auth, "g.sim:80")
	flaky := &flakyNode{Node: newManagerNode(t, auth, "h.sim:80")}
	if err := rs.Add(good); err != nil {
		t.Fatal(err)
	}
	if err := rs.Add(flaky); err != nil {
		t.Fatal(err)
	}
	path := "/d/f.dat"
	if _, err := rs.Put(path, strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	// Drive the whole flow through the coordinator: prepare on both
	// replicas, then the flaky member drops off before the abort lands.
	c := med.NewCoordinator()
	c.Register(rs)
	if err := c.PrepareLink(10, "http://fs.sim:80"+path, sqltypes.DefaultEASIA()); err != nil {
		t.Fatal(err)
	}
	flaky.fail = true
	if err := c.Abort(10); err == nil {
		t.Fatal("coordinator swallowed abort failure")
	}
	if c.FailedAbortCount() != 1 {
		t.Fatalf("FailedAbortCount = %d", c.FailedAbortCount())
	}
	// While the member is still dark the path stays reserved there, and
	// the retry keeps the abort queued rather than dropping it.
	if err := c.RetryFailedAborts(); err == nil || c.FailedAbortCount() != 1 {
		t.Fatalf("retry against dark member: err=%v queued=%d", err, c.FailedAbortCount())
	}
	flaky.fail = false
	if err := c.RetryFailedAborts(); err != nil {
		t.Fatalf("retry: %v", err)
	}
	if c.FailedAbortCount() != 0 {
		t.Fatal("retry did not drain the queue")
	}
	// The reservation is gone everywhere: a new transaction can claim
	// the path on both replicas.
	if err := rs.Prepare(11, med.LinkOp{Kind: med.OpLink, Path: path, Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatalf("path still reserved after retried abort: %v", err)
	}
	if err := rs.Abort(11); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveTombstoneRepaired: deleting a file while one holder is
// down must not let the rejoined member resurrect it.
func TestRemoveTombstoneRepaired(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/staging/tmp.dat"
	if _, err := rs.Put(path, strings.NewReader("doomed")); err != nil {
		t.Fatal(err)
	}
	downHolder := holders(mgrs, path)[0]
	if err := rs.MarkDown(downHolder); err != nil {
		t.Fatal(err)
	}
	if err := rs.Remove(path); err != nil {
		t.Fatalf("Remove with a holder down: %v", err)
	}
	if got := rs.UnderReplicated(); len(got) != 1 {
		t.Fatalf("deletion not tombstoned: %v", got)
	}
	if err := rs.MarkUp(downHolder); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := holders(mgrs, path); len(got) != 0 {
		t.Fatalf("deleted file resurrected on %v", got)
	}
	if got := rs.UnderReplicated(); len(got) != 0 {
		t.Fatalf("tombstone not cleared: %v", got)
	}
}

// TestStaleContentResynced: an overwrite that missed a down replica is
// re-copied onto it by anti-entropy, newest version winning.
func TestStaleContentResynced(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/staging/data.dat"
	if _, err := rs.Put(path, strings.NewReader("version-one")); err != nil {
		t.Fatal(err)
	}
	stale := holders(mgrs, path)[0]
	if err := rs.MarkDown(stale); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // ModTime must move past v1's
	if _, err := rs.Put(path, strings.NewReader("version-two!")); err != nil {
		t.Fatal(err)
	}
	if err := rs.MarkUp(stale); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	rc, _, err := mgrs[stale].Open(path, "")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "version-two!" {
		t.Fatalf("rejoined member serves stale content %q", body)
	}
}

// TestPartialPutDoesNotEraseUnlinkTombstone: a partial Put recorded
// after a partial unlink must merge with — not clobber — the pending
// unlink, or Repair would trust the rejoined replica's stale registry
// and resurrect a link the database already dropped.
func TestPartialPutDoesNotEraseUnlinkTombstone(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/runs/s1/ts5.tsf"
	opts := sqltypes.DefaultEASIA()
	if _, err := rs.Put(path, strings.NewReader("v1")); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs, 1, path, opts)

	victim := holders(mgrs, path)[0]
	if err := rs.MarkDown(victim); err != nil {
		t.Fatal(err)
	}
	// Unlink commits only on the reachable replica…
	if err := rs.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: path, Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Commit(2); err != nil {
		t.Fatal(err)
	}
	// …then a new Put of the now-unlinked path is partial too.
	if _, err := rs.Put(path, strings.NewReader("v2-longer")); err != nil {
		t.Fatal(err)
	}
	if err := rs.MarkUp(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := linkedOn(mgrs, path); len(got) != 0 {
		t.Fatalf("unlink tombstone lost: stale link resurrected on %v", got)
	}
	rc, _, err := mgrs[victim].Open(path, "")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "v2-longer" {
		t.Fatalf("rejoined replica content %q, want the post-unlink overwrite", body)
	}
}

// TestRemoveAfterPartialUnlinkRepaired: unlink commits while a member
// is down, then the file is removed — the rejoined member still holds
// the stale LINK, so repair must unlink it before deleting the copy
// (a bare remove tombstone would fail with ErrLinked forever).
func TestRemoveAfterPartialUnlinkRepaired(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/runs/s1/ts6.tsf"
	opts := sqltypes.DefaultEASIA()
	if _, err := rs.Put(path, strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs, 1, path, opts)
	victim := holders(mgrs, path)[0]
	if err := rs.MarkDown(victim); err != nil {
		t.Fatal(err)
	}
	if err := rs.Prepare(2, med.LinkOp{Kind: med.OpUnlink, Path: path, Opts: opts}); err != nil {
		t.Fatal(err)
	}
	if err := rs.Commit(2); err != nil {
		t.Fatal(err)
	}
	if err := rs.Remove(path); err != nil {
		t.Fatalf("Remove after unlink: %v", err)
	}
	if err := rs.MarkUp(victim); err != nil {
		t.Fatal(err)
	}
	stats, err := rs.Repair()
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if stats.Unlinked == 0 {
		t.Fatalf("stale link not removed before deletion: %+v", stats)
	}
	if got := holders(mgrs, path); len(got) != 0 {
		t.Fatalf("removed file survives on %v", got)
	}
	if got := rs.UnderReplicated(); len(got) != 0 {
		t.Fatalf("tombstone not cleared: %v", got)
	}
}

// TestCommitReachingNoReplicaIsRetried: a commit that lands nowhere is
// queued and drained by Repair once a replica returns, because the
// database is already durable by then.
func TestCommitReachingNoReplicaIsRetried(t *testing.T) {
	auth := newAuth(t)
	rs := New(Config{Host: "fs.sim:80", ReplicationFactor: 1, Tokens: auth})
	store, err := dlfs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := dlfs.NewManager("only.sim:80", store, auth)
	flaky := &flakyNode{Node: NewManagerNode(mgr)}
	if err := rs.Add(flaky); err != nil {
		t.Fatal(err)
	}
	path := "/d/f.dat"
	if _, err := rs.Put(path, strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	if err := rs.Prepare(5, med.LinkOp{Kind: med.OpLink, Path: path, Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatal(err)
	}
	flaky.fail = true
	if err := rs.Commit(5); err == nil {
		t.Fatal("commit reaching no replica reported success")
	}
	flaky.fail = false
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	fi, err := mgr.Stat(path)
	if err != nil || !fi.Linked {
		t.Fatalf("staged commit never drained: %+v err=%v", fi, err)
	}
	// The path reservation is gone: new link work proceeds.
	if err := rs.Prepare(6, med.LinkOp{Kind: med.OpUnlink, Path: path, Opts: sqltypes.DefaultEASIA()}); err != nil {
		t.Fatalf("path still wedged after retried commit: %v", err)
	}
	if err := rs.Abort(6); err != nil {
		t.Fatal(err)
	}
}

// TestFullPutSupersedesRemoveTombstone: a Remove that misses a down
// member queues a tombstone; if the member rejoins and a new Put of the
// same path then reaches EVERY placed replica, the tombstone is stale —
// a later Repair must not apply it and delete the freshly-written file.
func TestFullPutSupersedesRemoveTombstone(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/staging/reborn.dat"
	if _, err := rs.Put(path, strings.NewReader("v1")); err != nil {
		t.Fatal(err)
	}
	down := holders(mgrs, path)[0]
	if err := rs.MarkDown(down); err != nil {
		t.Fatal(err)
	}
	if err := rs.Remove(path); err != nil {
		t.Fatalf("Remove with a holder down: %v", err)
	}
	if got := rs.UnderReplicated(); len(got) != 1 {
		t.Fatalf("deletion not tombstoned: %v", got)
	}
	// The member rejoins, and before any Repair pass the path is fully
	// re-created on every placed replica.
	if err := rs.MarkUp(down); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Put(path, strings.NewReader("v2-reborn")); err != nil {
		t.Fatal(err)
	}
	if got := rs.UnderReplicated(); len(got) != 0 {
		t.Fatalf("fully-successful Put left stale dirty entry: %v", got)
	}
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := holders(mgrs, path); len(got) != 2 {
		t.Fatalf("Repair applied superseded tombstone: holders = %v, want 2", got)
	}
	rc, _, err := rs.Open(path, "")
	if err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	body, _ := io.ReadAll(rc)
	rc.Close()
	if string(body) != "v2-reborn" {
		t.Fatalf("content = %q, want the re-created file", body)
	}
}

// TestFullCommitSupersedesStaleDirtyVerdict: a pending-unlink verdict
// left over from a partial pass must not survive a re-link commit that
// reached every placed replica — Repair would otherwise unlink the path
// everywhere while the database still holds the DATALINK.
func TestFullCommitSupersedesStaleDirtyVerdict(t *testing.T) {
	rs, mgrs := newSet(t, 3, 2)
	path := "/runs/s1/ts9.tsf"
	opts := sqltypes.DefaultEASIA()
	if _, err := rs.Put(path, strings.NewReader("x")); err != nil {
		t.Fatal(err)
	}
	// A stale desired-unlinked verdict lingers from an earlier pass.
	rs.mu.Lock()
	rs.markDirtyLocked(path, dirtyState{wantLinked: boolPtr(false), opts: opts})
	rs.mu.Unlock()
	// The engine links the path with every replica reachable: the
	// commit is complete, so the stale verdict is superseded.
	linkVia(t, rs, 3, path, opts)
	if got := rs.UnderReplicated(); len(got) != 0 {
		t.Fatalf("full commit left stale dirty verdict: %v", got)
	}
	if _, err := rs.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if got := linkedOn(mgrs, path); len(got) != 2 {
		t.Fatalf("Repair applied superseded unlink: linked on %v, want 2", got)
	}
}

// TestRepairStateSurvivesRestart: with StatePath set, a removal
// tombstone queued while a member was down must survive a gateway
// restart, so the rejoined member's stale copy is still deleted.
func TestRepairStateSurvivesRestart(t *testing.T) {
	auth := newAuth(t)
	statePath := filepath.Join(t.TempDir(), "repair-state.json")
	dirA, dirB := t.TempDir(), t.TempDir()
	build := func() (*ReplicaSet, map[string]*dlfs.Manager) {
		rs := New(Config{Host: "fs.sim:80", ReplicationFactor: 2, Tokens: auth, StatePath: statePath})
		mgrs := make(map[string]*dlfs.Manager, 2)
		for host, dir := range map[string]string{"a.sim:80": dirA, "b.sim:80": dirB} {
			store, err := dlfs.NewStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			m := dlfs.NewManager(host, store, auth)
			mgrs[host] = m
			if err := rs.Add(NewManagerNode(m)); err != nil {
				t.Fatal(err)
			}
		}
		if err := rs.LoadState(); err != nil {
			t.Fatalf("LoadState: %v", err)
		}
		return rs, mgrs
	}
	rs, _ := build()
	path := "/staging/ghost.dat"
	if _, err := rs.Put(path, strings.NewReader("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := rs.MarkDown("b.sim:80"); err != nil {
		t.Fatal(err)
	}
	if err := rs.Remove(path); err != nil {
		t.Fatalf("Remove with a holder down: %v", err)
	}
	// The gateway restarts: a fresh set over the same stores and state
	// file must still know about the tombstone.
	rs2, mgrs2 := build()
	if got := rs2.UnderReplicated(); len(got) != 1 {
		t.Fatalf("tombstone lost across restart: %v", got)
	}
	if _, err := rs2.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if _, err := mgrs2["b.sim:80"].Stat(path); !errors.Is(err, dlfs.ErrNotFound) {
		t.Fatalf("deleted file resurrected after restart: %v", err)
	}
	if got := rs2.UnderReplicated(); len(got) != 0 {
		t.Fatalf("tombstone not cleared: %v", got)
	}
}

// TestAbortConcurrentWithPrepare: in gateway mode a retried abort can
// race a prepare for the same transaction; the fan-out must snapshot
// the prepared set instead of iterating it live (-race guards this).
func TestAbortConcurrentWithPrepare(t *testing.T) {
	rs, _ := newSet(t, 3, 2)
	opts := sqltypes.DefaultEASIA()
	for i := 0; i < 25; i++ {
		tx := uint64(1000 + i)
		pathA := fmt.Sprintf("/race/a%d.dat", i)
		pathB := fmt.Sprintf("/race/b%d.dat", i)
		for _, p := range []string{pathA, pathB} {
			if _, err := rs.Put(p, strings.NewReader("x")); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			rs.Prepare(tx, med.LinkOp{Kind: med.OpLink, Path: pathA, Opts: opts}) //nolint:errcheck
			rs.Prepare(tx, med.LinkOp{Kind: med.OpLink, Path: pathB, Opts: opts}) //nolint:errcheck
		}()
		go func() {
			defer wg.Done()
			rs.Abort(tx) //nolint:errcheck
			rs.Abort(tx) //nolint:errcheck
		}()
		wg.Wait()
		// Whatever interleaving happened, a final abort must release
		// every reservation a late prepare staged.
		if err := rs.Abort(tx); err != nil {
			t.Fatalf("final abort: %v", err)
		}
		if err := rs.Prepare(tx+10000, med.LinkOp{Kind: med.OpLink, Path: pathA, Opts: opts}); err != nil {
			t.Fatalf("path %s still reserved after abort: %v", pathA, err)
		}
		if err := rs.Abort(tx + 10000); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBackupRestoreThroughSet(t *testing.T) {
	rs, _ := newSet(t, 3, 2)
	path := "/runs/s1/keep.tsf"
	if _, err := rs.Put(path, strings.NewReader("precious")); err != nil {
		t.Fatal(err)
	}
	linkVia(t, rs, 1, path, sqltypes.DefaultEASIA())
	dst := t.TempDir()
	n, err := rs.BackupLinked(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("backed up %d files, want 1", n)
	}
	rs2, mgrs2 := newSet(t, 2, 2)
	if _, err := rs2.RestoreLinked(dst); err != nil {
		t.Fatal(err)
	}
	if got := linkedOn(mgrs2, path); len(got) != 2 {
		t.Fatalf("restore linked on %v, want both members", got)
	}
}

// newManagerNode builds a single-manager node on a temp store.
func newManagerNode(t testing.TB, auth *med.TokenAuthority, host string) Node {
	t.Helper()
	store, err := dlfs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewManagerNode(dlfs.NewManager(host, store, auth))
}

// flakyNode simulates a crashed daemon: every call errors while fail
// is set. (HTTP-level faults are exercised in integration_test.go via
// netsim; this keeps the unit tests in-process.)
type flakyNode struct {
	Node
	fail bool
}

var errDown = errors.New("dial tcp: connection refused (simulated)")

func (f *flakyNode) guard() error {
	if f.fail {
		return errDown
	}
	return nil
}

func (f *flakyNode) Prepare(tx uint64, op med.LinkOp) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.Node.Prepare(tx, op)
}

func (f *flakyNode) Commit(tx uint64) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.Node.Commit(tx)
}

func (f *flakyNode) Abort(tx uint64) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.Node.Abort(tx)
}

func (f *flakyNode) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.Node.EnsureLinked(path, opts)
}

func (f *flakyNode) Put(path string, r io.Reader) (int64, error) {
	if err := f.guard(); err != nil {
		return 0, err
	}
	return f.Node.Put(path, r)
}

func (f *flakyNode) Open(path, token string) (io.ReadCloser, dlfs.FileInfo, error) {
	if err := f.guard(); err != nil {
		return nil, dlfs.FileInfo{}, err
	}
	return f.Node.Open(path, token)
}

func (f *flakyNode) Stat(path string) (dlfs.FileInfo, error) {
	if err := f.guard(); err != nil {
		return dlfs.FileInfo{}, err
	}
	return f.Node.Stat(path)
}

func (f *flakyNode) LinkStates() ([]dlfs.LinkState, error) {
	if err := f.guard(); err != nil {
		return nil, err
	}
	return f.Node.LinkStates()
}

func (f *flakyNode) Ping() error {
	if err := f.guard(); err != nil {
		return err
	}
	return f.Node.Ping()
}
