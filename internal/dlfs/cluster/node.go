package cluster

import (
	"context"
	"io"
	"time"

	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/sqltypes"
)

// Node is the replica set's view of one physical file-server process:
// the SQL/MED participant protocol plus file, registry and liveness
// access. An in-process dlfs.Manager satisfies it through
// NewManagerNode; a remote daemon through NewClientNode.
type Node interface {
	med.FileServer
	Put(path string, r io.Reader) (int64, error)
	Open(path, token string) (io.ReadCloser, dlfs.FileInfo, error)
	Stat(path string) (dlfs.FileInfo, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	LinkStates() ([]dlfs.LinkState, error)
	Ping() error
}

// ContextNode is an optional Node capability: a node that can rebind
// its RPCs to a caller's context, so a fan-out's attempts are aborted
// the moment the request that asked for them gives up. Remote client
// nodes implement it; in-process managers (no wire, nothing to cancel)
// do not.
type ContextNode interface {
	WithContext(ctx context.Context) Node
}

// managerNode adapts an in-process manager. Only LinkStates needs a
// shim (the local registry read cannot fail).
type managerNode struct{ *dlfs.Manager }

func (n managerNode) LinkStates() ([]dlfs.LinkState, error) { return n.Manager.LinkStates(), nil }

// NewManagerNode wraps an in-process manager as a cluster node.
func NewManagerNode(m *dlfs.Manager) Node { return managerNode{m} }

// clientNode adapts a remote daemon client.
type clientNode struct{ c *dlfs.Client }

// NewClientNode wraps a remote daemon client as a cluster node.
func NewClientNode(c *dlfs.Client) Node { return clientNode{c} }

func (n clientNode) Host() string                         { return n.c.Host() }
func (n clientNode) Prepare(tx uint64, op med.LinkOp) error { return n.c.Prepare(tx, op) }
func (n clientNode) Commit(tx uint64) error               { return n.c.Commit(tx) }
func (n clientNode) Abort(tx uint64) error                { return n.c.Abort(tx) }
func (n clientNode) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	return n.c.EnsureLinked(path, opts)
}

func (n clientNode) Put(path string, r io.Reader) (int64, error) {
	cr := &countingReader{r: r}
	if err := n.c.Put(path, cr); err != nil {
		return 0, err
	}
	return cr.n, nil
}

func (n clientNode) Open(path, token string) (io.ReadCloser, dlfs.FileInfo, error) {
	return n.c.OpenStat(path, token)
}

func (n clientNode) Stat(path string) (dlfs.FileInfo, error)  { return n.c.Stat(path) }
func (n clientNode) Rename(oldPath, newPath string) error     { return n.c.Rename(oldPath, newPath) }
func (n clientNode) Remove(path string) error                 { return n.c.Remove(path) }
func (n clientNode) LinkStates() ([]dlfs.LinkState, error)    { return n.c.LinkStates() }
func (n clientNode) Ping() error                              { return n.c.Ping() }

// SetRPCTimeout forwards the tier's per-attempt deadline to the client
// (applied by ReplicaSet.Add before the node is routed to).
func (n clientNode) SetRPCTimeout(d time.Duration) { n.c.SetRPCTimeout(d) }

// SetRetry forwards the tier's idempotent-retry policy to the client.
func (n clientNode) SetRetry(extra int, base time.Duration) { n.c.SetRetry(extra, base) }

// WithContext implements ContextNode: a view of this node whose RPCs
// are bounded by ctx.
func (n clientNode) WithContext(ctx context.Context) Node { return clientNode{n.c.WithContext(ctx)} }

// countingReader counts bytes as the upload streams them, since the
// wire protocol does not echo the stored size back.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
