// Chaos test for the replicated tier: rotating partitions injected
// during anti-entropy repair, under deadline-bounded ("cancel-heavy")
// read load. The overload-safety contract: every read returns within
// its context deadline (failover or a typed error — never a hang),
// repair never wedges on a dark member, and once every partition heals
// the tier converges back to full replication with intact content.
package cluster_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

func TestChaosPartitionDuringRepairUnderCanceledReads(t *testing.T) {
	a, err := core.Open(core.Config{Secret: testSecret, WorkRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	faults := netsim.NewFaults()
	rs, members := newHTTPSet(t, a, 3, 2, faults)
	if err := a.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, a, `INSERT INTO AUTHOR VALUES ('A1', 'Papiani', 'Southampton', NULL)`)
	mustExec(t, a, `INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Chaos demo', NULL, 16, 100.0, 2, NOW())`)

	// Six linked files spread across the members, plus their payloads.
	payload := func(i int) string { return fmt.Sprintf("chaos-payload-%02d", i) }
	paths := make([]string, 6)
	tokens := make([]string, len(paths))
	for i := range paths {
		paths[i] = fmt.Sprintf("/runs/s1/chaos%d.tsf", i)
		archiveResult(t, a, fmt.Sprintf("chaos%d.tsf", i), paths[i], payload(i), i)
		tokens[i] = mustToken(t, a, paths[i])
	}

	// Rotate a partition through every member while readers hammer the
	// tier with short-deadline contexts and repair runs concurrently.
	for round := 0; round < 6; round++ {
		victim := members[round%len(members)]
		faults.Partition(victim.host)

		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					pi := (seed + i) % len(paths)
					p := paths[pi]
					ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
					start := time.Now()
					rc, _, err := rs.OpenContext(ctx, p, tokens[pi])
					if err == nil {
						var buf bytes.Buffer
						io.Copy(&buf, rc) //nolint:errcheck
						rc.Close()
						if got, want := buf.String(), payload(pi); got != want {
							t.Errorf("read %s under partition: %q, want %q", p, got, want)
						}
					}
					// The real assertion: bounded, hang-free returns. A
					// partitioned replica fails fast and the scan fails
					// over; the deadline caps the worst case.
					if took := time.Since(start); took > 2*time.Second {
						t.Errorf("read %s took %v under a 250ms deadline", p, took)
					}
					cancel()
				}
			}(round + w)
		}
		// Repair mid-partition must not wedge: unreachable members queue
		// as under-replicated work, reachable ones converge.
		if _, err := rs.Repair(); err != nil {
			t.Fatalf("round %d: Repair with %s partitioned: %v", round, victim.host, err)
		}
		wg.Wait()

		faults.Heal(victim.host)
		rs.Probe() // close the breaker the failovers tripped
	}

	// All partitions healed: drain the dirty set and verify full
	// replication with intact content on every member that holds a path.
	for i := 0; i < 5 && len(rs.UnderReplicated()) > 0; i++ {
		rs.Probe()
		if _, err := rs.Repair(); err != nil {
			t.Fatalf("post-heal Repair: %v", err)
		}
	}
	if dirty := rs.UnderReplicated(); len(dirty) != 0 {
		t.Fatalf("dirty set not drained after heal: %v", dirty)
	}
	for i, p := range paths {
		holders := 0
		for _, m := range members {
			fi, err := m.mgr.Stat(p)
			if err != nil || !fi.Linked {
				continue
			}
			holders++
			rc, _, err := m.mgr.Open(p, mustToken(t, a, p))
			if err != nil {
				t.Fatalf("%s on %s after heal: %v", p, m.host, err)
			}
			var buf bytes.Buffer
			io.Copy(&buf, rc) //nolint:errcheck
			rc.Close()
			if !strings.Contains(buf.String(), payload(i)) {
				t.Fatalf("%s on %s diverged: %q", p, m.host, buf.String())
			}
		}
		if holders != 2 {
			t.Fatalf("%s linked on %d members after heal+repair, want 2", p, holders)
		}
	}
}
