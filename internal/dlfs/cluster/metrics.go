package cluster

import "repro/internal/telemetry"

// clusterMetrics holds the tier's metric handles, registered once at
// New. The legacy Stats / RepairStats accessors are thin views over
// these counters. Metric families:
//
//	dlfs_cluster_failovers_total                  reads served by a non-first replica
//	dlfs_cluster_partial_commits_total            commits that missed a replica
//	dlfs_cluster_partial_writes_total             puts/links that missed a replica
//	dlfs_cluster_state_checkpoint_failures_total  repair-state checkpoints lost
//	dlfs_cluster_breaker_trips_total              member circuits opened
//	dlfs_cluster_put_ns                           fan-out Put latency histogram
//	dlfs_cluster_repair_*_total                   cumulative Repair pass work
//	dlfs_cluster_repair_pending                   paths still under-replicated
type clusterMetrics struct {
	reg *telemetry.Registry

	failovers      *telemetry.Counter
	partialCommits *telemetry.Counter
	partialWrites  *telemetry.Counter
	stateCkptFails *telemetry.Counter
	breakerTrips   *telemetry.Counter
	putNs          *telemetry.Histogram
	repairScanned  *telemetry.Counter
	repairCopied   *telemetry.Counter
	repairRelinked *telemetry.Counter
	repairUnlinked *telemetry.Counter
	repairErrors   *telemetry.Counter
	repairPending  *telemetry.Gauge
}

func newClusterMetrics(reg *telemetry.Registry) clusterMetrics {
	return clusterMetrics{
		reg:            reg,
		failovers:      reg.Counter("dlfs_cluster_failovers_total", "Reads served by a non-first replica."),
		partialCommits: reg.Counter("dlfs_cluster_partial_commits_total", "Link-control commits that missed at least one replica."),
		partialWrites:  reg.Counter("dlfs_cluster_partial_writes_total", "Puts/links that missed at least one replica."),
		stateCkptFails: reg.Counter("dlfs_cluster_state_checkpoint_failures_total", "Repair-state checkpoints that did not reach disk."),
		breakerTrips:   reg.Counter("dlfs_cluster_breaker_trips_total", "Member circuit breakers opened by consecutive failures."),
		putNs:          reg.Histogram("dlfs_cluster_put_ns", "Fan-out Put latency in nanoseconds."),
		repairScanned:  reg.Counter("dlfs_cluster_repair_scanned_total", "Paths examined by anti-entropy passes."),
		repairCopied:   reg.Counter("dlfs_cluster_repair_copied_total", "File bodies re-replicated by anti-entropy passes."),
		repairRelinked: reg.Counter("dlfs_cluster_repair_relinked_total", "Links re-established by anti-entropy passes."),
		repairUnlinked: reg.Counter("dlfs_cluster_repair_unlinked_total", "Stale links removed by anti-entropy passes."),
		repairErrors:   reg.Counter("dlfs_cluster_repair_errors_total", "Per-replica repair failures."),
		repairPending:  reg.Gauge("dlfs_cluster_repair_pending", "Paths still under-replicated after the latest Repair pass."),
	}
}

// Metrics exposes the tier's telemetry registry (the one passed in
// Config.Metrics, or the private registry New created).
func (rs *ReplicaSet) Metrics() *telemetry.Registry { return rs.met.reg }

// MetricsSnapshot captures every tier metric for status pages and tests.
func (rs *ReplicaSet) MetricsSnapshot() []telemetry.Metric { return rs.met.reg.Snapshot() }
