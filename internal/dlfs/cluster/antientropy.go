package cluster

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/sqltypes"
)

// Anti-entropy re-replication. Repair reconciles every member against
// the tier's desired state, assembled from two sources:
//
//   - the dirty set: desired states the tier witnessed itself (a link
//     commit, ensure or put that missed a replica). These are
//     authoritative and override the union;
//   - the union of all reachable members' link registries — live links
//     AND unlink tombstones — with the newest event winning per path
//     (last-writer-wins). This is what pulls a rejoining or
//     freshly-registered replacement member up to date even when the
//     coordinator that witnessed the divergence is gone; tombstones are
//     what stop that union from resurrecting a link the member missed
//     the unlink of (bounded retention: dlfs.DefaultTombstoneTTL).
//
// For each desired-linked path, every healthy placed replica must hold
// the file (copied from any member that has it, through the normal
// token-checked read path) and the link. For each desired-unlinked
// path, a replica still holding the link runs a private unlink 2PC.
// Dirty entries are dropped once fully applied; paths that still miss
// a replica (member still down) stay queued for the next pass.

// RepairStats reports one Repair pass.
type RepairStats struct {
	Scanned  int // paths examined
	Copied   int // file bodies re-replicated onto a member
	Relinked int // links re-established on a member
	Unlinked int // stale links removed from a member
	Pending  int // paths still under-replicated (member down)
	Errors   int // per-replica repair failures
}

// isStructuralRepairErr separates failures worth surfacing from a
// repair pass (a protocol refusal, no surviving copy of a file, no
// token authority to copy READ PERMISSION DB files) from the transport
// failures that are the expected condition during a partition — those
// keep the path pending and the next pass retries them.
func isStructuralRepairErr(err error) bool {
	return isDomainErr(err) || errors.Is(err, ErrNoTokenMinting) || errors.Is(err, ErrNoReplica)
}

// RepairLinks runs one anti-entropy pass, discarding the statistics.
// It exists so layers above (core's Reconcile) can declare the repair
// hook structurally without importing this package's types.
func (rs *ReplicaSet) RepairLinks() error {
	_, err := rs.Repair()
	return err
}

// Repair runs one anti-entropy pass and reports what it did. It is safe
// to call concurrently with reads and link traffic; the background loop
// started by Start calls it after every membership flip.
func (rs *ReplicaSet) Repair() (RepairStats, error) {
	var stats RepairStats
	var errs []error

	// First drain commits that never reached a replica: the member
	// still holds the staged transaction and its path reservations,
	// which would block future link work on those paths. Commit is
	// idempotent, and a member that crash-restarted (losing the staged
	// state) treats it as an unknown-transaction no-op — the file/link
	// divergence is then healed by the scan below either way.
	rs.mu.Lock()
	queued := rs.retryCommits
	rs.retryCommits = make(map[uint64]map[string]*member)
	rs.mu.Unlock()
	for txID, members := range queued {
		for name, m := range members {
			rs.mu.Lock()
			isDown := m.down
			rs.mu.Unlock()
			if !isDown {
				if err := m.node.Commit(txID); err == nil {
					rs.noteSuccess(m)
					continue
				} else {
					rs.noteFailure(m)
					stats.Errors++
					if isStructuralRepairErr(err) {
						errs = append(errs, fmt.Errorf("retry commit tx %d on %s: %w", txID, name, err))
					}
				}
			}
			rs.mu.Lock()
			if rs.retryCommits[txID] == nil {
				rs.retryCommits[txID] = make(map[string]*member)
			}
			rs.retryCommits[txID][name] = m
			rs.mu.Unlock()
		}
	}
	// Checkpoint the drained queue. Deliberately not done at the
	// snapshot above: a crash mid-pass must leave the old (larger)
	// queue on disk — retrying a commit is idempotent, dropping one is
	// not.
	rs.mu.Lock()
	rs.saveStateLocked()
	rs.mu.Unlock()

	union, unionErr := rs.linkUnion()
	if unionErr != nil && isStructuralRepairErr(unionErr) {
		errs = append(errs, unionErr)
	}

	// Desired state: registry union first, dirty overrides on top.
	// orig keeps the dirty entry exactly as snapshotted, so the
	// compare-and-delete below can tell whether a concurrent partial
	// write re-marked the path while this pass was repairing it.
	type want struct {
		dirtyState
		fromDirt bool
		orig     dirtyState
	}
	desired := make(map[string]want, len(union))
	for path, ls := range union {
		if ls.Tombstone() {
			// The newest event for this path is an unlink: members that
			// missed it (partition, crash) must drop their stale link
			// instead of the union resurrecting it onto everyone.
			desired[path] = want{dirtyState: dirtyState{wantLinked: boolPtr(false), opts: ls.Opts}}
			continue
		}
		desired[path] = want{dirtyState: dirtyState{wantLinked: boolPtr(true), opts: ls.Opts}}
	}
	rs.mu.Lock()
	for path, d := range rs.dirty {
		if d.syncContent && d.wantLinked == nil && !d.remove {
			// Content-only entry: keep the union's link verdict if any,
			// but still force the content sync.
			if w, ok := desired[path]; ok {
				w.syncContent = true
				w.fromDirt = true
				w.orig = d
				desired[path] = w
				continue
			}
		}
		desired[path] = want{dirtyState: d, fromDirt: true, orig: d}
	}
	rs.mu.Unlock()

	paths := make([]string, 0, len(desired))
	for p := range desired {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, path := range paths {
		w := desired[path]
		stats.Scanned++
		var targets []*member
		var downCount int
		if w.remove {
			// A tombstoned deletion must reach every member holding a
			// stray copy, not just the placed replicas.
			for _, m := range rs.allMembers() {
				rs.mu.Lock()
				isDown := m.down
				rs.mu.Unlock()
				if isDown {
					downCount++
				} else {
					targets = append(targets, m)
				}
			}
		} else {
			up, downPlaced := rs.routeSnapshot(path)
			targets, downCount = up, len(downPlaced)
		}
		incomplete := downCount > 0
		// Destructive verdicts (a tombstoned remove, a pending unlink)
		// come only from the dirty set; re-validate the snapshotted
		// entry before each one fires, since a concurrent write that
		// reached every placed replica settles it mid-pass and the stale
		// verdict must not delete what that write just created.
		destructive := w.fromDirt && (w.remove || (w.wantLinked != nil && !*w.wantLinked))
		superseded := false
		for _, m := range targets {
			if destructive && !rs.dirtyStillCurrent(path, w.orig.gen) {
				superseded = true
				break
			}
			changed, err := rs.repairOn(m, path, w.dirtyState)
			if err != nil {
				stats.Errors++
				incomplete = true
				if isStructuralRepairErr(err) {
					errs = append(errs, fmt.Errorf("repair %s on %s: %w", path, m.name, err))
				}
				continue
			}
			stats.Copied += changed.copied
			stats.Relinked += changed.relinked
			stats.Unlinked += changed.unlinked
		}
		if superseded {
			// The entry changed under the pass; whatever replaced it (or
			// nothing, if a full write settled it) is the next pass's
			// business. The compare-and-delete below would fail on the
			// generation anyway.
			continue
		}
		if incomplete {
			stats.Pending++
		}
		if w.fromDirt && !incomplete {
			// Compare-and-delete: a partial write that raced this pass
			// re-marked the entry (boolPtr allocates, so any re-mark
			// changes the struct), and its divergence must survive for
			// the next pass rather than be wiped with the old one.
			rs.mu.Lock()
			if cur, ok := rs.dirty[path]; ok && cur == w.orig {
				delete(rs.dirty, path)
				rs.saveStateLocked()
			}
			rs.mu.Unlock()
		}
	}
	// Fold the pass into the cumulative tier counters; Pending is a
	// level, not a total, so it sets the gauge.
	rs.met.repairScanned.Add(int64(stats.Scanned))
	rs.met.repairCopied.Add(int64(stats.Copied))
	rs.met.repairRelinked.Add(int64(stats.Relinked))
	rs.met.repairUnlinked.Add(int64(stats.Unlinked))
	rs.met.repairErrors.Add(int64(stats.Errors))
	rs.met.repairPending.Set(int64(stats.Pending))
	return stats, errors.Join(errs...)
}

// repairDelta is what repairOn changed on one member.
type repairDelta struct {
	copied, relinked, unlinked int
}

// repairOn drives one member to the desired state of one path.
func (rs *ReplicaSet) repairOn(m *member, path string, w dirtyState) (repairDelta, error) {
	var d repairDelta
	wantLinked, opts := w.wantLinked, w.opts
	if w.remove {
		err := m.node.Remove(path)
		if errors.Is(err, dlfs.ErrLinked) && wantLinked != nil && !*wantLinked {
			// The member missed the unlink AND the removal: drop the
			// stale link first, then the copy.
			if uerr := rs.unlinkOn(m, path, opts); uerr != nil {
				return d, uerr
			}
			d.unlinked++
			err = m.node.Remove(path)
		}
		if err == nil || errors.Is(err, dlfs.ErrNotFound) {
			return d, nil
		}
		return d, err
	}
	fi, err := m.node.Stat(path)
	switch {
	case err == nil:
	case errors.Is(err, dlfs.ErrNotFound):
		if wantLinked != nil && !*wantLinked {
			return d, nil // no file, no link: nothing to undo
		}
		if cerr := rs.copyTo(m, path, opts); cerr != nil {
			return d, cerr
		}
		d.copied++
		fi = dlfs.FileInfo{Path: path}
	default:
		return d, err
	}
	// Content can only be synced while the file is unlinked (linked
	// files are immutable), so the sync is ordered around the link
	// repair by direction: when the desired state is LINKED, stale
	// bytes must be replaced BEFORE the link goes on — afterwards they
	// would be baked in; when the desired state is UNLINKED, the stale
	// link must come off first or the sync guard would skip the file.
	syncContent := func() error {
		if !w.syncContent || fi.Linked || d.copied > 0 {
			return nil
		}
		vs := rs.versions(path)
		if len(vs) == 0 {
			return nil
		}
		src := vs[0]
		if src.m == m || (!src.info.ModTime.After(fi.ModTime) && src.info.Size == fi.Size) {
			return nil
		}
		if cerr := rs.copyFrom(m, path, opts, vs); cerr != nil {
			return cerr
		}
		d.copied++
		return nil
	}
	if wantLinked != nil && *wantLinked {
		if err := syncContent(); err != nil {
			return d, err
		}
	}
	switch {
	case wantLinked == nil:
	case *wantLinked && !fi.Linked:
		if err := m.node.EnsureLinked(path, opts); err != nil {
			return d, err
		}
		fi.Linked = true
		d.relinked++
	case !*wantLinked && fi.Linked:
		if err := rs.unlinkOn(m, path, opts); err != nil {
			return d, err
		}
		fi.Linked = false
		d.unlinked++
	}
	if err := syncContent(); err != nil {
		return d, err
	}
	return d, nil
}

// nextRepairTx allocates a synthetic transaction id for repair-time
// link operations (high bit set so it can never collide with engine
// transaction ids).
func (rs *ReplicaSet) nextRepairTx() uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.repairTx++
	return rs.repairTx
}

// unlinkOn removes a stale link from one member that missed an unlink
// commit, via a private unlink 2PC against just that member. ON UNLINK
// DELETE must not fire here — the unlink already happened logically;
// deleting now would destroy the only copies left on rejoining members
// under RESTORE semantics on the others. Use RESTORE.
func (rs *ReplicaSet) unlinkOn(m *member, path string, opts sqltypes.DatalinkOptions) error {
	restore := opts
	restore.OnUnlink = sqltypes.UnlinkRestore
	tx := rs.nextRepairTx()
	if err := m.node.Prepare(tx, med.LinkOp{Kind: med.OpUnlink, Path: path, Opts: restore}); err != nil {
		return err
	}
	return m.node.Commit(tx)
}

// versionInfo names a member holding a copy of a path.
type versionInfo struct {
	m    *member
	info dlfs.FileInfo
}

// versions stats path on every reachable member and returns the copies
// newest-first (one Stat sweep feeds both source ranking and the copy
// loop, so a repair copy pays N stats, not 2N).
func (rs *ReplicaSet) versions(path string) []versionInfo {
	var out []versionInfo
	for _, m := range rs.upMembers() {
		fi, err := m.node.Stat(path)
		if err != nil {
			if !errors.Is(err, dlfs.ErrNotFound) && !isDomainErr(err) {
				rs.noteFailure(m)
			}
			continue
		}
		out = append(out, versionInfo{m: m, info: fi})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].info.ModTime.After(out[j].info.ModTime) })
	return out
}

// copyTo re-replicates path's content onto member dst from the newest
// reachable copy. Runs its own Stat sweep; callers that already hold
// one use copyFrom.
func (rs *ReplicaSet) copyTo(dst *member, path string, opts sqltypes.DatalinkOptions) error {
	return rs.copyFrom(dst, path, opts, rs.versions(path))
}

// copyFrom re-replicates path's content onto member dst from the
// given newest-first candidate sources (falling back through older
// holders if a source fails mid-copy), through the normal
// token-checked read path: for READ PERMISSION DB files the configured
// token authority mints an internal replication token, exactly as the
// archive mints download tokens.
func (rs *ReplicaSet) copyFrom(dst *member, path string, opts sqltypes.DatalinkOptions, vs []versionInfo) error {
	var errs []error
	tried := false
	for _, v := range vs {
		if v.m == dst {
			continue
		}
		tried = true
		src, fi := v.m, v.info
		token := ""
		if fi.Linked && fi.Opts.ReadPerm == sqltypes.ReadDB || !fi.Linked && opts.ReadPerm == sqltypes.ReadDB {
			if rs.cfg.Tokens == nil {
				return fmt.Errorf("%w: %s", ErrNoTokenMinting, path)
			}
			var err error
			token, err = rs.cfg.Tokens.Mint(path, "dlfs-replication", 0)
			if err != nil {
				return err
			}
		}
		rc, _, err := src.node.Open(path, token)
		if err != nil {
			if !isDomainErr(err) {
				rs.noteFailure(src)
			}
			errs = append(errs, fmt.Errorf("source %s: %w", src.name, err))
			continue
		}
		// Spool the source stream to a temp file before storing: a
		// mid-stream source failure must fall back to the next holder
		// without leaving dst truncated, and repair copies move the
		// same multi-GB datasets the daemon is sized for, so no
		// buffering in memory.
		sp, err := newSpool(rs.cfg.SpoolDir, rc)
		rc.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("source %s: %w", src.name, err))
			continue
		}
		_, err = dst.node.Put(path, sp.reader())
		sp.Close()
		if err != nil {
			return fmt.Errorf("store on %s: %w", dst.name, err)
		}
		return nil
	}
	if !tried && len(errs) == 0 {
		errs = append(errs, fmt.Errorf("%w: no replica holds %s", dlfs.ErrNotFound, path))
	}
	return fmt.Errorf("cluster: re-replicate %s: %w", path, errors.Join(errs...))
}
