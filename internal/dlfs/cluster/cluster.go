// Package cluster is the replicated DATALINK file-server tier. A
// ReplicaSet groups several Data Links File Managers behind one logical
// DATALINK host: each file is placed on ReplicationFactor members by
// rendezvous hashing, link-control 2PC fans out to the placed replicas,
// reads fail over to the first healthy replica (token checks intact),
// and an anti-entropy pass re-replicates whatever a crashed or
// partitioned member missed once it rejoins.
//
// The set drops into the existing architecture unchanged: it implements
// med.FileServer and med.BackupParticipant (so med.Coordinator drives
// it like a single manager), dlfs.Backend (so cmd/dlfsd can serve it as
// a replication gateway), and core.FileHost's file methods (so the
// archive attaches it like any host).
//
// Consistency model: availability first, bounded divergence after.
// Writes apply to every placed replica that is reachable; a down
// replica never blocks a link or a read (the paper's availability goal
// for distributed scientific archives). Divergence created while a
// replica is unreachable is recorded (the dirty set) and repaired by
// Repair — last writer wins on rejoin, with the database's Reconcile
// remaining the final authority after a coordinator crash.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dlfs"
	"repro/internal/iofault"
	"repro/internal/med"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
)

// Tier errors.
var (
	ErrNoReplica      = errors.New("cluster: no healthy replica available")
	ErrUnknownMember  = errors.New("cluster: unknown member")
	ErrDuplicateHost  = errors.New("cluster: member host already registered")
	ErrNoTokenMinting = errors.New("cluster: no token authority configured for replicating READ PERMISSION DB files")
)

// Config shapes a ReplicaSet.
type Config struct {
	// Host is the logical host[:port] appearing in DATALINK URLs served
	// by this set.
	Host string
	// ReplicationFactor is how many members hold each file; 0 selects
	// the default of 2. Capped at the member count.
	ReplicationFactor int
	// FailureThreshold is how many consecutive probe/transport failures
	// trip a member's circuit breaker; 0 selects 3.
	FailureThreshold int
	// ProbeInterval paces the background health checker and anti-entropy
	// loop started by Start; 0 selects 2s.
	ProbeInterval time.Duration
	// RPCTimeout bounds each RPC attempt against a remote member; 0
	// leaves attempts unbounded. Applied to capable nodes (remote
	// clients) as they are registered with Add — a hung member then
	// surfaces as a transport failure feeding its breaker instead of
	// stalling a fan-out indefinitely.
	RPCTimeout time.Duration
	// RetryAttempts allows that many extra attempts (jittered
	// exponential backoff, RetryBackoff base) for idempotent RPCs
	// against remote members. 0 disables retries, keeping every fault
	// visible to the breaker exactly once.
	RetryAttempts int
	// RetryBackoff is the base backoff between retry attempts; 0
	// selects the client default (50ms).
	RetryBackoff time.Duration
	// Tokens mints internal access tokens so replication reads can copy
	// READ PERMISSION DB files between members. It must share the secret
	// with the members' validators. Without it, repairing such files
	// fails with ErrNoTokenMinting.
	Tokens *med.TokenAuthority
	// StatePath, when set, checkpoints the tier's repair state (the
	// dirty set and queued commit retries) to this file, so removal
	// tombstones and pending repairs survive a gateway restart. Call
	// LoadState after registering members to restore it. Empty keeps
	// the state memory-only.
	StatePath string
	// SpoolDir is where fan-out writes and repair copies spool their
	// payload for per-replica replay. Empty selects the OS temp dir —
	// which on many Linux hosts is RAM-backed tmpfs, so gateways moving
	// multi-GB datasets should point this at a real disk.
	SpoolDir string
	// FS is the filesystem the repair-state checkpoint goes through;
	// nil selects the real disk. Tests inject an iofault controller.
	FS iofault.FS
	// Metrics is the telemetry registry the tier's counters register
	// into, letting a daemon share one /metrics endpoint across
	// subsystems. Nil creates a private registry (reachable via
	// ReplicaSet.Metrics).
	Metrics *telemetry.Registry
}

// DefaultReplicationFactor is used when Config leaves it zero.
const DefaultReplicationFactor = 2

// member is one registered file server plus its health bookkeeping
// (all fields beyond name/node are guarded by ReplicaSet.mu).
type member struct {
	name string
	node Node

	down  bool // circuit open: skipped by routing until it closes
	held  bool // MarkDown was manual; probes must not flip it up
	fails int  // consecutive failures toward FailureThreshold
}

// dirtyState records the desired state of a path that could not be
// applied to every placed replica (a member was down or unreachable).
// wantLinked nil with syncContent set means the newest file content
// must be re-replicated (a partial Put); remove tombstones a deletion
// so a rejoined member cannot resurrect the file.
type dirtyState struct {
	wantLinked  *bool
	opts        sqltypes.DatalinkOptions
	syncContent bool
	remove      bool
	// gen is bumped on every (re-)mark, so Repair's compare-and-delete
	// can tell a concurrent re-mark from the entry it snapshotted even
	// when the semantic fields come out identical.
	gen uint64
}

// txWork accumulates one transaction's prepares across calls.
type txWork struct {
	ops      []med.LinkOp
	prepared map[string]*member // members that accepted at least one prepare
	partial  bool               // some placed replica missed a prepare
}

// Stats counts tier events (observability and tests). It is a view
// over the tier's telemetry counters — see ReplicaSet.Metrics for the
// full registry including histograms and repair totals.
type Stats struct {
	Failovers      int // reads served by a non-first replica
	PartialCommits int // commits that missed at least one replica
	PartialWrites  int // puts/links that missed at least one replica
	// StateCheckpointFailures counts repair-state checkpoints that did
	// not reach disk. The in-memory state stays correct and the next
	// mutation retries, but each count is a window where a gateway
	// restart would forget tombstones and pending repairs — worth an
	// operator's attention, not a silent discard.
	StateCheckpointFailures int
}

// ReplicaSet is the replicated tier for one logical DATALINK host.
type ReplicaSet struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
	order   []string // sorted member names, for deterministic iteration
	pending  map[uint64]*txWork
	dirty    map[string]dirtyState
	dirtyGen uint64
	// retryCommits queues (txID → members) whose Commit did not get
	// through: the member still holds the staged transaction and its
	// path reservations. Repair drains it (Commit is idempotent).
	retryCommits map[uint64]map[string]*member
	met          clusterMetrics

	repairTx uint64 // synthetic tx ids for repair-time unlinks

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// New creates an empty replica set; register members with Add.
func New(cfg Config) *ReplicaSet {
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = DefaultReplicationFactor
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = iofault.Disk{}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.New()
	}
	return &ReplicaSet{
		cfg:          cfg,
		met:          newClusterMetrics(reg),
		members:      make(map[string]*member),
		pending:      make(map[uint64]*txWork),
		dirty:        make(map[string]dirtyState),
		retryCommits: make(map[uint64]map[string]*member),
		// High bit set: repair unlinks run a private 2PC against single
		// members and must never collide with engine transaction ids.
		repairTx: 1 << 63,
	}
}

// Add registers a member file server. Registering a replacement for a
// failed host is how capacity is restored: the next Repair copies every
// placed file onto it.
func (rs *ReplicaSet) Add(n Node) error {
	name := strings.ToLower(n.Host())
	// Apply the tier's RPC governance to nodes that support it (remote
	// clients do; in-process managers have no wire to govern).
	if rs.cfg.RPCTimeout > 0 {
		if tn, ok := n.(interface{ SetRPCTimeout(time.Duration) }); ok {
			tn.SetRPCTimeout(rs.cfg.RPCTimeout)
		}
	}
	if rs.cfg.RetryAttempts > 0 {
		if rn, ok := n.(interface{ SetRetry(int, time.Duration) }); ok {
			rn.SetRetry(rs.cfg.RetryAttempts, rs.cfg.RetryBackoff)
		}
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, dup := rs.members[name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateHost, name)
	}
	rs.members[name] = &member{name: name, node: n}
	rs.order = append(rs.order, name)
	sort.Strings(rs.order)
	return nil
}

// Host implements med.FileServer: the logical host the set serves.
func (rs *ReplicaSet) Host() string { return rs.cfg.Host }

// Members lists registered member hosts, sorted.
func (rs *ReplicaSet) Members() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]string(nil), rs.order...)
}

// Replicas reports which members hold path, in placement (failover)
// order — the first entry is the path's primary.
func (rs *ReplicaSet) Replicas(path string) []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	placed := rs.placedLocked(path)
	out := make([]string, len(placed))
	for i, m := range placed {
		out[i] = m.name
	}
	return out
}

// Stats returns a snapshot of the tier counters.
func (rs *ReplicaSet) Stats() Stats {
	return Stats{
		Failovers:               int(rs.met.failovers.Value()),
		PartialCommits:          int(rs.met.partialCommits.Value()),
		PartialWrites:           int(rs.met.partialWrites.Value()),
		StateCheckpointFailures: int(rs.met.stateCkptFails.Value()),
	}
}

// UnderReplicated lists the paths currently known to be missing a
// replica (the dirty set), sorted.
func (rs *ReplicaSet) UnderReplicated() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, 0, len(rs.dirty))
	for p := range rs.dirty {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// placedLocked returns the members holding path, in placement order.
func (rs *ReplicaSet) placedLocked(path string) []*member {
	rf := rs.cfg.ReplicationFactor
	ranked := rankMembers(rs.order, path)
	if rf > len(ranked) {
		rf = len(ranked)
	}
	out := make([]*member, 0, rf)
	for _, name := range ranked[:rf] {
		out = append(out, rs.members[name])
	}
	return out
}

// upMembers snapshots the reachable members in sorted order.
func (rs *ReplicaSet) upMembers() []*member {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]*member, 0, len(rs.order))
	for _, name := range rs.order {
		if m := rs.members[name]; !m.down {
			out = append(out, m)
		}
	}
	return out
}

// allMembers snapshots every member in sorted order.
func (rs *ReplicaSet) allMembers() []*member {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]*member, 0, len(rs.order))
	for _, name := range rs.order {
		out = append(out, rs.members[name])
	}
	return out
}

// routeSnapshot splits the placed replicas of path into healthy (in
// placement order) and down, under one lock acquisition.
func (rs *ReplicaSet) routeSnapshot(path string) (up, down []*member) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, m := range rs.placedLocked(path) {
		if m.down {
			down = append(down, m)
		} else {
			up = append(up, m)
		}
	}
	return up, down
}

// markDirtyLocked merges desired state for repair into the path's
// dirty entry. Merging, not replacing, matters: a partial Put must not
// erase a pending unlink tombstone recorded earlier (Repair would then
// trust the rejoining replica's stale registry and resurrect the
// link), and a partial link commit must not drop a pending content
// sync. A removal supersedes earlier content/link work but keeps a
// pending unlink verdict — a rejoined member still holding the stale
// link must be unlinked before its copy can be deleted — and any later
// write clears a pending removal (the file exists again).
func (rs *ReplicaSet) markDirtyLocked(path string, d dirtyState) {
	// Checkpoint on every mark, whatever the merge path below: call
	// sites must not be able to forget it (a lost tombstone is exactly
	// the failure the checkpoint exists to prevent).
	defer rs.saveStateLocked()
	rs.dirtyGen++
	d.gen = rs.dirtyGen
	cur, ok := rs.dirty[path]
	if !ok {
		rs.dirty[path] = d
		return
	}
	if d.remove {
		if cur.wantLinked != nil && !*cur.wantLinked {
			d.wantLinked = cur.wantLinked
			d.opts = cur.opts
		}
		rs.dirty[path] = d
		return
	}
	merged := dirtyState{
		wantLinked:  cur.wantLinked,
		opts:        cur.opts,
		syncContent: cur.syncContent || d.syncContent,
		gen:         d.gen,
	}
	if d.wantLinked != nil {
		merged.wantLinked = d.wantLinked
		merged.opts = d.opts
	}
	rs.dirty[path] = merged
}

func boolPtr(b bool) *bool { return &b }

// dirtyGenOf snapshots the generation of path's dirty entry (0 when
// absent). Fan-outs take it before touching any replica, so settleDirty
// can tell the entry they saw from one a concurrent writer re-marked.
func (rs *ReplicaSet) dirtyGenOf(path string) uint64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.dirty[path].gen
}

// dirtyStillCurrent reports whether path's dirty entry still carries the
// generation a Repair pass snapshotted. Repair re-checks this just
// before every destructive step (a remove or unlink driven by the dirty
// set): a concurrent fully-successful write settles the entry, and a
// pass that already snapshotted the stale verdict must notice and stand
// down instead of deleting data the write just acknowledged.
func (rs *ReplicaSet) dirtyStillCurrent(path string, gen uint64) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	cur, ok := rs.dirty[path]
	return ok && cur.gen == gen
}

// settled enumerates what a fully-successful fan-out decided for a path
// on every placed replica.
type settled struct {
	link    bool // the link/remove verdict was applied everywhere placed
	content bool // the bytes were rewritten everywhere placed
}

// settleDirty clears the parts of path's dirty entry that a fully-
// successful fan-out has just superseded. Without this, Repair would
// later apply a stale verdict: a removal tombstone queued while a
// member was down would delete the file a newer fully-replicated Put
// recreated, and a pending unlink would tear down a link the engine
// has since fully re-committed — both violating last-writer-wins.
// snapGen is the entry's generation observed before the fan-out began;
// a newer generation means a concurrent partial write re-marked the
// path mid-flight, and that record must survive untouched.
func (rs *ReplicaSet) settleDirty(path string, snapGen uint64, s settled) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	cur, ok := rs.dirty[path]
	if !ok || cur.gen != snapGen {
		return
	}
	if s.link {
		cur.wantLinked = nil
		cur.opts = sqltypes.DatalinkOptions{}
		cur.remove = false
	}
	if s.content {
		cur.syncContent = false
		cur.remove = false
	}
	if cur.wantLinked == nil && !cur.syncContent && !cur.remove {
		delete(rs.dirty, path)
	} else {
		rs.dirty[path] = cur
	}
	rs.saveStateLocked()
}

// ---------- two-phase link control (med.FileServer) ----------

// Prepare fans the operation out to every healthy placed replica.
//
// Replica-disagreement policy: a validation error every replica would
// agree on (already linked, reserved by another transaction, bad path)
// fails the prepare. A minority replica missing the file (OpLink
// ErrNotFound) or missing the link (OpUnlink ErrNotLinked) is exactly
// the divergence anti-entropy exists to fix, so the prepare proceeds on
// the replicas that can take it and the path is queued for repair.
func (rs *ReplicaSet) Prepare(txID uint64, op med.LinkOp) error {
	up, downPlaced := rs.routeSnapshot(op.Path)
	if len(up) == 0 {
		return fmt.Errorf("%w: prepare %s", ErrNoReplica, op.Path)
	}
	var (
		acceptedBy []*member
		repairable []error // minority divergence, tolerated
		errs       []error
	)
	for _, m := range up {
		err := m.node.Prepare(txID, op)
		switch {
		case err == nil:
			rs.noteSuccess(m)
			acceptedBy = append(acceptedBy, m)
		case op.Kind == med.OpLink && errors.Is(err, dlfs.ErrNotFound),
			op.Kind == med.OpUnlink && errors.Is(err, dlfs.ErrNotLinked):
			repairable = append(repairable, fmt.Errorf("replica %s: %w", m.name, err))
		case isDomainErr(err):
			// Definitive refusal: undo this op on the replicas that took
			// it (idempotent; the engine will also Abort the whole tx).
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
		default:
			rs.noteFailure(m)
			repairable = append(repairable, fmt.Errorf("replica %s: %w", m.name, err))
		}
		if len(errs) > 0 {
			break
		}
	}
	// Record every replica that accepted a prepare — even when the
	// overall prepare fails — so the transaction's Abort reaches them
	// and releases their reservations.
	rs.mu.Lock()
	w := rs.pending[txID]
	if w == nil {
		w = &txWork{prepared: make(map[string]*member)}
		rs.pending[txID] = w
	}
	for _, m := range acceptedBy {
		w.prepared[m.name] = m
	}
	if len(errs) == 0 && len(acceptedBy) > 0 {
		w.ops = append(w.ops, op)
		if len(downPlaced) > 0 || len(repairable) > 0 {
			w.partial = true
		}
	}
	rs.mu.Unlock()
	if len(errs) > 0 || len(acceptedBy) == 0 {
		errs = append(errs, repairable...)
		return fmt.Errorf("cluster: prepare %s: %w", op.Path, errors.Join(errs...))
	}
	return nil
}

// Commit applies the transaction on every replica that prepared it. The
// logical commit succeeds if ANY replica commits — the database is
// already durable by the time the coordinator calls this, so a replica
// that crashed between prepare and commit must not fail the
// transaction; its divergence is queued for anti-entropy instead.
func (rs *ReplicaSet) Commit(txID uint64) error {
	rs.mu.Lock()
	w := rs.pending[txID]
	delete(rs.pending, txID)
	var snapGens map[string]uint64
	if w != nil {
		snapGens = make(map[string]uint64, len(w.ops))
		for _, op := range w.ops {
			snapGens[op.Path] = rs.dirty[op.Path].gen
		}
	}
	rs.mu.Unlock()
	if w == nil {
		return nil // idempotence, like a single manager
	}
	var errs []error
	missed := make(map[string]*member)
	committed := 0
	for _, name := range sortedKeys(w.prepared) {
		m := w.prepared[name]
		if err := m.node.Commit(txID); err != nil {
			rs.noteFailure(m)
			missed[name] = m
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
			continue
		}
		rs.noteSuccess(m)
		committed++
	}
	if committed == 0 && len(w.prepared) > 0 {
		// Nothing applied anywhere. The database is already durable, so
		// the work cannot be dropped: queue the commit for Repair to
		// drain (Commit is idempotent on the replicas) and record the
		// desired link state so the scan converges the stores even if a
		// replica crash-restarted and lost the staged transaction.
		rs.mu.Lock()
		rs.retryCommits[txID] = missed
		for _, op := range w.ops {
			rs.markDirtyLocked(op.Path, dirtyState{wantLinked: boolPtr(op.Kind == med.OpLink), opts: op.Opts})
		}
		rs.met.partialCommits.Inc()
		rs.saveStateLocked()
		rs.mu.Unlock()
		return fmt.Errorf("cluster: commit tx %d reached no replica: %w", txID, errors.Join(errs...))
	}
	if w.partial || len(errs) > 0 {
		rs.mu.Lock()
		for _, op := range w.ops {
			rs.markDirtyLocked(op.Path, dirtyState{wantLinked: boolPtr(op.Kind == med.OpLink), opts: op.Opts})
		}
		// A replica that missed the commit still holds the staged
		// transaction and its reservations; queue the commit for Repair
		// to drain once the replica is reachable.
		if len(missed) > 0 {
			rs.retryCommits[txID] = missed
		}
		rs.met.partialCommits.Inc()
		rs.saveStateLocked()
		rs.mu.Unlock()
	} else {
		// Every placed replica committed: the transaction's verdict is
		// the path's true state everywhere, so any stale dirty entry (a
		// removal tombstone, a pending unlink from an earlier partial
		// pass) is superseded and must not be applied by a later Repair.
		for _, op := range w.ops {
			rs.settleDirty(op.Path, snapGens[op.Path], settled{link: true})
		}
	}
	return nil
}

// Abort discards the transaction on every replica that prepared it.
// Failures are surfaced — the coordinator queues them for retry so a
// staged prepare cannot leak files on a replica that missed the abort.
func (rs *ReplicaSet) Abort(txID uint64) error {
	// Snapshot the prepared members under the lock: the engine
	// serializes per-transaction calls, but in gateway mode a retried
	// abort can race a prepare for the same transaction, and iterating
	// w.prepared while Prepare mutates it is a map race. Taking the
	// snapshot OUT of pending (ownership transfer) matters too: a
	// concurrent Prepare that re-stages on one of these members then
	// creates its own surviving record instead of being wiped by this
	// abort's cleanup, so a later retry still reaches it.
	rs.mu.Lock()
	w := rs.pending[txID]
	var snap []*member
	if w != nil {
		for _, name := range sortedKeys(w.prepared) {
			snap = append(snap, w.prepared[name])
			delete(w.prepared, name)
		}
	}
	rs.mu.Unlock()
	if w == nil {
		return nil
	}
	var errs []error
	failed := make(map[string]bool, len(snap))
	for _, m := range snap {
		if err := m.node.Abort(txID); err != nil {
			rs.noteFailure(m)
			failed[m.name] = true
			errs = append(errs, fmt.Errorf("replica %s: abort tx %d: %w", m.name, txID, err))
		} else {
			rs.noteSuccess(m)
		}
	}
	// Members whose abort failed keep the staged prepare and its path
	// reservations: put them back so a retried Abort — the coordinator
	// queues one — reaches them. Merge into whatever pending holds NOW
	// (a concurrent Prepare or duplicated abort may have replaced or
	// dropped the entry this call snapshotted from).
	rs.mu.Lock()
	cur := rs.pending[txID]
	if len(failed) > 0 {
		if cur == nil {
			cur = &txWork{prepared: make(map[string]*member)}
			rs.pending[txID] = cur
		}
		for _, m := range snap {
			if failed[m.name] {
				if _, exists := cur.prepared[m.name]; !exists {
					cur.prepared[m.name] = m
				}
			}
		}
	} else if cur == w && len(cur.prepared) == 0 {
		delete(rs.pending, txID)
	}
	rs.mu.Unlock()
	return errors.Join(errs...)
}

// EnsureLinked forces path into the linked state on every reachable
// placed replica (crash reconciliation). A replica missing the file is
// healed in place by copying from a holder; replicas that stay
// unreachable are queued for repair. It succeeds if at least one
// replica holds the link afterwards.
func (rs *ReplicaSet) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	up, downPlaced := rs.routeSnapshot(path)
	if len(up) == 0 {
		return fmt.Errorf("%w: ensure %s", ErrNoReplica, path)
	}
	snapGen := rs.dirtyGenOf(path)
	var errs []error
	ensured := 0
	for _, m := range up {
		err := m.node.EnsureLinked(path, opts)
		if errors.Is(err, dlfs.ErrNotFound) {
			// The replica lost the file: re-replicate, then link.
			if cerr := rs.copyTo(m, path, opts); cerr != nil {
				errs = append(errs, fmt.Errorf("replica %s: %w", m.name, errors.Join(err, cerr)))
				continue
			}
			err = m.node.EnsureLinked(path, opts)
		}
		if err != nil {
			if !isDomainErr(err) {
				rs.noteFailure(m)
			}
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
			continue
		}
		rs.noteSuccess(m)
		ensured++
	}
	if ensured == 0 {
		return fmt.Errorf("cluster: ensure %s: %w", path, errors.Join(errs...))
	}
	if len(errs) > 0 || len(downPlaced) > 0 {
		rs.mu.Lock()
		rs.markDirtyLocked(path, dirtyState{wantLinked: boolPtr(true), opts: opts})
		rs.met.partialWrites.Inc()
		rs.mu.Unlock()
	} else {
		// Every placed replica holds the link: supersede any stale
		// tombstone or unlink verdict lingering from a partial pass.
		rs.settleDirty(path, snapGen, settled{link: true})
	}
	return nil
}

// ---------- file operations (dlfs.Backend / core.FileHost) ----------

// Put stores the file on every healthy placed replica ("fan-out
// write"). It succeeds when at least one replica stored the content;
// replicas that were down or unreachable are queued for repair. A
// refusal every replica would agree on (WRITE PERMISSION BLOCKED, a
// link-control reservation, a bad path) fails the write outright.
func (rs *ReplicaSet) Put(path string, r io.Reader) (int64, error) {
	start := time.Now()
	up, downPlaced := rs.routeSnapshot(path)
	if len(up) == 0 {
		return 0, fmt.Errorf("%w: put %s", ErrNoReplica, path)
	}
	snapGen := rs.dirtyGenOf(path)
	// Pre-flight: a WRITE PERMISSION BLOCKED refusal must surface
	// before ANY replica is mutated — discovering it mid-fan-out would
	// leave the replicas that already accepted holding rejected bytes.
	for _, m := range up {
		fi, err := m.node.Stat(path)
		if err == nil && fi.Linked && fi.Opts.WritePerm == sqltypes.WriteBlocked {
			return 0, fmt.Errorf("cluster: put %s: replica %s: %w", path, m.name, dlfs.ErrWriteBlocked)
		}
	}
	// Fan-out needs a rewindable source; spool it to a temp file rather
	// than memory — the daemon is sized for multi-GB dataset transfers,
	// and a few concurrent fan-outs must not exhaust RAM.
	sp, err := newSpool(rs.cfg.SpoolDir, r)
	if err != nil {
		return 0, err
	}
	defer sp.Close()
	var errs []error
	stored := 0
	for _, m := range up {
		_, err := m.node.Put(path, sp.reader())
		switch {
		case err == nil:
			rs.noteSuccess(m)
			stored++
		case isDomainErr(err):
			// A refusal that raced past the pre-flight (a concurrent
			// link or reservation). Replicas written before it now hold
			// bytes the caller is told were rejected: record the
			// divergence so anti-entropy converges the content.
			if stored > 0 {
				rs.mu.Lock()
				rs.markDirtyLocked(path, dirtyState{syncContent: true})
				rs.mu.Unlock()
			}
			return 0, fmt.Errorf("cluster: put %s: replica %s: %w", path, m.name, err)
		default:
			rs.noteFailure(m)
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
		}
	}
	if stored == 0 {
		return 0, fmt.Errorf("cluster: put %s: %w", path, errors.Join(errs...))
	}
	if len(errs) > 0 || len(downPlaced) > 0 {
		rs.mu.Lock()
		rs.markDirtyLocked(path, dirtyState{syncContent: true})
		rs.met.partialWrites.Inc()
		rs.mu.Unlock()
	} else {
		// Every placed replica holds the new bytes: the file exists
		// again, superseding any removal tombstone or content-sync
		// verdict a Repair pass might otherwise apply on top of it.
		rs.settleDirty(path, snapGen, settled{content: true})
	}
	rs.met.putNs.ObserveSince(start)
	return sp.size, nil
}

// spool buffers an upload in a temp file so a fan-out can replay it
// once per replica without holding the whole payload in memory. dir ""
// selects the OS temp dir (see Config.SpoolDir for the tmpfs caveat).
type spool struct {
	f    *os.File
	size int64
}

func newSpool(dir string, r io.Reader) (*spool, error) {
	f, err := os.CreateTemp(dir, "dlfs-fanout-*")
	if err != nil {
		return nil, err
	}
	sp := &spool{f: f}
	if sp.size, err = io.Copy(f, r); err != nil {
		sp.Close()
		return nil, err
	}
	return sp, nil
}

// reader returns a fresh reader over the spooled bytes.
func (sp *spool) reader() io.Reader { return io.NewSectionReader(sp.f, 0, sp.size) }

func (sp *spool) Close() error {
	name := sp.f.Name()
	err := sp.f.Close()
	os.Remove(name)
	return err
}

// Open reads path with replica failover: placed replicas are tried in
// placement order (then any other member as a last resort, in case a
// membership change left a stray copy), skipping members whose circuit
// breaker is open. Token enforcement is preserved: an access-control
// verdict (missing/expired/tampered token) is returned immediately —
// every replica validates with the same authority, so failing over
// would only mask the refusal.
func (rs *ReplicaSet) Open(path, token string) (io.ReadCloser, dlfs.FileInfo, error) {
	return rs.OpenContext(context.Background(), path, token)
}

// OpenContext is Open bounded by the caller's context: the failover
// scan stops trying further replicas once ctx ends, and each attempt
// against a context-capable node (a remote client) inherits ctx — its
// cancellation aborts the in-flight RPC and any backoff wait.
func (rs *ReplicaSet) OpenContext(ctx context.Context, path, token string) (io.ReadCloser, dlfs.FileInfo, error) {
	var (
		rc  io.ReadCloser
		fi  dlfs.FileInfo
		err error
	)
	err = rs.eachReplica(ctx, path, func(m *member, n Node) error {
		var e error
		rc, fi, e = n.Open(path, token)
		return e
	})
	return rc, fi, err
}

// Stat describes path, with the same failover as Open.
func (rs *ReplicaSet) Stat(path string) (dlfs.FileInfo, error) {
	return rs.StatContext(context.Background(), path)
}

// StatContext is Stat bounded by the caller's context (see OpenContext).
func (rs *ReplicaSet) StatContext(ctx context.Context, path string) (dlfs.FileInfo, error) {
	var fi dlfs.FileInfo
	err := rs.eachReplica(ctx, path, func(m *member, n Node) error {
		var e error
		fi, e = n.Stat(path)
		return e
	})
	return fi, err
}

// eachReplica runs f against replicas of path until one succeeds:
// healthy placed replicas in placement order, then the remaining
// members (down or non-placed) as a last resort. Access-control errors
// abort the scan immediately, and so does the caller's deadline — a
// fan-out must not outlive the request that asked for it. f receives
// the member (for breaker bookkeeping by callers that need it) and the
// node to call, rebound to ctx when the node supports it.
func (rs *ReplicaSet) eachReplica(ctx context.Context, path string, f func(*member, Node) error) error {
	rs.mu.Lock()
	placed := rs.placedLocked(path)
	inPlaced := make(map[string]bool, len(placed))
	var tryOrder []*member
	for _, m := range placed {
		inPlaced[m.name] = true
		if !m.down {
			tryOrder = append(tryOrder, m)
		}
	}
	// Last-resort passes: down placed replicas (they may have recovered
	// since the last probe), then everything else that might hold a
	// stray copy from before a membership change.
	for _, m := range placed {
		if m.down {
			tryOrder = append(tryOrder, m)
		}
	}
	for _, name := range rs.order {
		if !inPlaced[name] {
			tryOrder = append(tryOrder, rs.members[name])
		}
	}
	rs.mu.Unlock()
	if len(tryOrder) == 0 || len(placed) == 0 {
		return fmt.Errorf("%w: %s", ErrNoReplica, path)
	}
	primary := placed[0]
	var errs []error
	for _, m := range tryOrder {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		node := m.node
		if cn, ok := node.(ContextNode); ok {
			node = cn.WithContext(ctx)
		}
		err := f(m, node)
		if err == nil {
			rs.noteSuccess(m)
			if m != primary {
				rs.met.failovers.Inc()
			}
			return nil
		}
		if isAuthErr(err) {
			return err
		}
		if !isDomainErr(err) {
			rs.noteFailure(m)
		}
		errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
	}
	return fmt.Errorf("cluster: %s: all replicas failed: %w", path, errors.Join(errs...))
}

// Rename moves an unlinked file within the set. Placement follows the
// path, so the content is re-placed: read, write to the new path's
// replicas, remove the old copies. Linked files are refused, exactly
// like a single store.
func (rs *ReplicaSet) Rename(oldPath, newPath string) error {
	fi, err := rs.Stat(oldPath)
	if err != nil {
		return err
	}
	if fi.Linked {
		return fmt.Errorf("%w: rename %s", dlfs.ErrLinked, oldPath)
	}
	var rc io.ReadCloser
	if err := rs.eachReplica(context.Background(), oldPath, func(m *member, n Node) error {
		var e error
		rc, _, e = n.Open(oldPath, "")
		return e
	}); err != nil {
		return err
	}
	defer rc.Close()
	if _, err := rs.Put(newPath, rc); err != nil {
		return err
	}
	return rs.Remove(oldPath)
}

// Remove deletes a file from every member holding it (placed or stray);
// refused while linked anywhere. Members that are down or unreachable
// are tolerated when at least one copy was removed: the deletion is
// tombstoned in the dirty set so Repair finishes it once the member
// rejoins — otherwise a rejoining member would resurrect the file
// through the read fallback.
func (rs *ReplicaSet) Remove(path string) error {
	snapGen := rs.dirtyGenOf(path)
	var errs []error
	removed, skipped := 0, 0
	for _, m := range rs.allMembers() {
		rs.mu.Lock()
		isDown := m.down
		rs.mu.Unlock()
		if isDown {
			skipped++
			continue
		}
		err := m.node.Remove(path)
		switch {
		case err == nil:
			rs.noteSuccess(m)
			removed++
		case errors.Is(err, dlfs.ErrNotFound):
			// This member never held it.
		case errors.Is(err, dlfs.ErrLinked):
			// A replica still holds the link (divergent link state).
			// Copies deleted from earlier members in this fan-out now
			// under-replicate a linked file: record a content sync so
			// Repair restores them from the linked holder (the union
			// scan supplies the desired-linked verdict).
			if removed > 0 {
				rs.mu.Lock()
				rs.markDirtyLocked(path, dirtyState{syncContent: true})
				rs.mu.Unlock()
			}
			return fmt.Errorf("cluster: remove %s: replica %s: %w", path, m.name, err)
		default:
			if !isDomainErr(err) {
				rs.noteFailure(m)
			}
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
		}
	}
	if removed == 0 {
		switch {
		case len(errs) > 0:
			return fmt.Errorf("cluster: remove %s: %w", path, errors.Join(errs...))
		case skipped > 0:
			return fmt.Errorf("%w: remove %s", ErrNoReplica, path)
		default:
			return fmt.Errorf("%w: %s", dlfs.ErrNotFound, path)
		}
	}
	if skipped > 0 || len(errs) > 0 {
		rs.mu.Lock()
		rs.markDirtyLocked(path, dirtyState{remove: true})
		rs.mu.Unlock()
	} else {
		// The file is gone from every member: nothing left to repair.
		rs.settleDirty(path, snapGen, settled{link: true, content: true})
	}
	return errors.Join(errs...)
}

// LinkStates merges the link registries of all reachable members: one
// entry per path, the newest event winning (the tier's last-writer-wins
// rule). Unlink tombstones participate in the merge — an unlink newer
// than every link suppresses the path — but are not returned: the
// Backend contract reports live links. Implements dlfs.Backend.
func (rs *ReplicaSet) LinkStates() []dlfs.LinkState {
	union, _ := rs.linkUnion()
	out := make([]dlfs.LinkState, 0, len(union))
	for _, ls := range union {
		if ls.Tombstone() {
			continue
		}
		out = append(out, ls)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// linkUnion gathers every reachable member's registry — live links and
// unlink tombstones — keeping the newest event per path. A tombstone
// that outranks every link is the record that stops a healed partition
// from resurrecting an unlinked file; a link newer than the tombstone
// (an explicit re-link) wins back.
func (rs *ReplicaSet) linkUnion() (map[string]dlfs.LinkState, error) {
	ms := rs.upMembers()
	union := make(map[string]dlfs.LinkState)
	var errs []error
	for _, m := range ms {
		states, err := m.node.LinkStates()
		if err != nil {
			rs.noteFailure(m)
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
			continue
		}
		rs.noteSuccess(m)
		for _, ls := range states {
			if cur, ok := union[ls.Path]; !ok || ls.EventTime().After(cur.EventTime()) {
				union[ls.Path] = ls
			}
		}
	}
	return union, errors.Join(errs...)
}

// ---------- coordinated backup (med.BackupParticipant) ----------

// BackupLinked delegates to the first healthy member that supports
// backup (in-process managers do; remote clients do not). Anti-entropy
// keeps replicas converged, so any one replica's registry captures the
// set's RECOVERY YES files.
func (rs *ReplicaSet) BackupLinked(dst string) (int, error) {
	var errs []error
	for _, m := range rs.upMembers() {
		bp, ok := nodeBackup(m.node)
		if !ok {
			continue
		}
		n, err := bp.BackupLinked(dst)
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
			continue
		}
		return n, nil
	}
	if len(errs) > 0 {
		return 0, errors.Join(errs...)
	}
	return 0, fmt.Errorf("cluster: no backup-capable replica in set %s", rs.cfg.Host)
}

// RestoreLinked restores the backup into every healthy backup-capable
// member, so the replicas come back converged.
func (rs *ReplicaSet) RestoreLinked(src string) (int, error) {
	var errs []error
	best := 0
	restored := false
	for _, m := range rs.upMembers() {
		bp, ok := nodeBackup(m.node)
		if !ok {
			continue
		}
		n, err := bp.RestoreLinked(src)
		if err != nil {
			errs = append(errs, fmt.Errorf("replica %s: %w", m.name, err))
			continue
		}
		restored = true
		if n > best {
			best = n
		}
	}
	if !restored {
		if len(errs) > 0 {
			return 0, errors.Join(errs...)
		}
		return 0, fmt.Errorf("cluster: no backup-capable replica in set %s", rs.cfg.Host)
	}
	return best, errors.Join(errs...)
}

// nodeBackup unwraps a node's backup capability.
func nodeBackup(n Node) (med.BackupParticipant, bool) {
	bp, ok := n.(med.BackupParticipant)
	return bp, ok
}

// ---------- core.FileHost adapters ----------

// OpenFile implements the archive's FileHost read path.
func (rs *ReplicaSet) OpenFile(path, token string) (io.ReadCloser, error) {
	rc, _, err := rs.Open(path, token)
	return rc, err
}

// PutFile implements the archive's FileHost write path.
func (rs *ReplicaSet) PutFile(path string, r io.Reader) error {
	_, err := rs.Put(path, r)
	return err
}

// StatFile implements the archive's FileHost stat path.
func (rs *ReplicaSet) StatFile(path string) (dlfs.FileInfo, error) { return rs.Stat(path) }

// sortedKeys returns the map's keys in sorted order (deterministic
// fan-out and error text).
func sortedKeys(m map[string]*member) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Compile-time interface checks.
var (
	_ med.FileServer        = (*ReplicaSet)(nil)
	_ med.BackupParticipant = (*ReplicaSet)(nil)
	_ dlfs.Backend          = (*ReplicaSet)(nil)
)
