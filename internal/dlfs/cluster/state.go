package cluster

import (
	"encoding/json"
	"fmt"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// Repair-state persistence. The dirty set and the queued commit
// retries otherwise live only in memory, so a gateway restart would
// permanently lose removal tombstones and pending repairs: a member
// that was down during a Remove would resurrect the deleted file
// through the read fallback forever, because the registry union cannot
// express deletions. With Config.StatePath set, every mutation of the
// repair state is checkpointed (atomic rename, like the store's link
// registry) and LoadState restores it on startup.
//
// Checkpointing is best-effort by design: a failed write must not fail
// the link or file operation that triggered it — the in-memory state
// is still correct, and the next mutation retries the checkpoint. But
// best-effort is not silent: every failed checkpoint (including a
// failed rename, which used to be discarded outright) is counted in
// Stats.StateCheckpointFailures, because each one is a window where a
// gateway restart forgets tombstones and pending repairs. The write
// itself is fully durable when it succeeds: tmp + fsync + rename +
// parent-dir fsync, like the store's link registry.

// persistedDirty is the JSON image of one dirty entry.
type persistedDirty struct {
	WantLinked  *bool                    `json:"want_linked,omitempty"`
	Opts        sqltypes.DatalinkOptions `json:"opts"`
	SyncContent bool                     `json:"sync_content,omitempty"`
	Remove      bool                     `json:"remove,omitempty"`
}

// persistedState is the JSON image of the checkpoint file.
type persistedState struct {
	Dirty        map[string]persistedDirty `json:"dirty"`
	RetryCommits map[uint64][]string       `json:"retry_commits,omitempty"`
}

// saveStateLocked checkpoints the repair state to Config.StatePath
// (no-op when unset). rs.mu must be held.
func (rs *ReplicaSet) saveStateLocked() {
	if rs.cfg.StatePath == "" {
		return
	}
	ps := persistedState{Dirty: make(map[string]persistedDirty, len(rs.dirty))}
	for path, d := range rs.dirty {
		ps.Dirty[path] = persistedDirty{
			WantLinked:  d.wantLinked,
			Opts:        d.opts,
			SyncContent: d.syncContent,
			Remove:      d.remove,
		}
	}
	if len(rs.retryCommits) > 0 {
		ps.RetryCommits = make(map[uint64][]string, len(rs.retryCommits))
		for tx, members := range rs.retryCommits {
			ps.RetryCommits[tx] = sortedKeys(members)
		}
	}
	b, err := json.MarshalIndent(ps, "", "  ")
	if err != nil {
		rs.met.stateCkptFails.Inc()
		return
	}
	if err := iofault.WriteFileAtomic(rs.cfg.FS, rs.cfg.StatePath, b, 0o644); err != nil {
		rs.met.stateCkptFails.Inc()
	}
}

// LoadState restores the repair state checkpointed at Config.StatePath.
// Call it after registering members: queued commit retries are resolved
// by member name, and entries naming members no longer registered are
// dropped (the staged transaction died with the member). A missing file
// is a clean start; an unreadable one is surfaced so an operator does
// not silently lose tombstones.
func (rs *ReplicaSet) LoadState() error {
	if rs.cfg.StatePath == "" {
		return nil
	}
	b, err := iofault.ReadFile(rs.cfg.FS, rs.cfg.StatePath)
	if iofault.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var ps persistedState
	if err := json.Unmarshal(b, &ps); err != nil {
		return fmt.Errorf("cluster: corrupt repair-state file %s: %w", rs.cfg.StatePath, err)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for path, d := range ps.Dirty {
		rs.markDirtyLocked(path, dirtyState{
			wantLinked:  d.WantLinked,
			opts:        d.Opts,
			syncContent: d.SyncContent,
			remove:      d.Remove,
		})
	}
	for tx, names := range ps.RetryCommits {
		for _, name := range names {
			m, ok := rs.members[name]
			if !ok {
				continue
			}
			if rs.retryCommits[tx] == nil {
				rs.retryCommits[tx] = make(map[string]*member)
			}
			rs.retryCommits[tx][name] = m
		}
	}
	return nil
}
