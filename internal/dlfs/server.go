package dlfs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/med"
	"repro/internal/sqltypes"
)

// Backend is what the HTTP daemon serves: the SQL/MED participant
// protocol plus file and registry access. dlfs.Manager (one local
// store) implements it, and so does cluster.ReplicaSet (a replicated
// tier fanning out to several stores) — which is how cmd/dlfsd can run
// either as a plain file manager or as a replication gateway without
// the wire protocol changing.
type Backend interface {
	med.FileServer
	Put(path string, r io.Reader) (int64, error)
	Open(path, token string) (io.ReadCloser, FileInfo, error)
	Stat(path string) (FileInfo, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	LinkStates() []LinkState
}

// ContextBackend is an optional Backend capability: reads bounded by
// the caller's context. A gateway backend (cluster.ReplicaSet)
// implements it so a client that disconnects mid-download stops the
// replica failover scan instead of letting it run to completion.
type ContextBackend interface {
	OpenContext(ctx context.Context, path, token string) (io.ReadCloser, FileInfo, error)
}

// Server exposes a Backend over HTTP: the wire protocol between the
// database host's coordinator and a remote file-server host, plus plain
// file GET/PUT for browsers and archiving tools.
//
// Routes:
//
//	POST /dlfm/prepare  {"tx":1,"kind":0,"path":"/d/f","opts":{...}}
//	POST /dlfm/commit   {"tx":1}
//	POST /dlfm/abort    {"tx":1}
//	POST /dlfm/ensure   {"path":"/d/f","opts":{...}}
//	POST /dlfm/rename   {"old":"/a","new":"/b"}
//	POST /dlfm/remove   {"path":"/d/f"}
//	GET  /dlfm/stat?path=/d/f
//	GET  /dlfm/linked
//	GET  /dlfm/links
//	PUT  /files/<path>
//	GET  /files/<dir>/<token;file>          (token segment optional)
//	GET  /healthz
type Server struct {
	mgr Backend
	mux *http.ServeMux
}

// NewServer wraps a backend in the HTTP daemon.
func NewServer(mgr Backend) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("/dlfm/prepare", s.handlePrepare)
	s.mux.HandleFunc("/dlfm/commit", s.handleCommit)
	s.mux.HandleFunc("/dlfm/abort", s.handleAbort)
	s.mux.HandleFunc("/dlfm/ensure", s.handleEnsure)
	s.mux.HandleFunc("/dlfm/rename", s.handleRename)
	s.mux.HandleFunc("/dlfm/remove", s.handleRemove)
	s.mux.HandleFunc("/dlfm/stat", s.handleStat)
	s.mux.HandleFunc("/dlfm/linked", s.handleLinked)
	s.mux.HandleFunc("/dlfm/links", s.handleLinks)
	s.mux.HandleFunc("/files/", s.handleFiles)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// wire messages

type prepareReq struct {
	Tx   uint64                   `json:"tx"`
	Kind med.LinkOpKind           `json:"kind"`
	Path string                   `json:"path"`
	Opts sqltypes.DatalinkOptions `json:"opts"`
}

type txReq struct {
	Tx uint64 `json:"tx"`
}

type ensureReq struct {
	Path string                   `json:"path"`
	Opts sqltypes.DatalinkOptions `json:"opts"`
}

type renameReq struct {
	Old string `json:"old"`
	New string `json:"new"`
}

type pathReq struct {
	Path string `json:"path"`
}

type statResp struct {
	Path    string                   `json:"path"`
	Size    int64                    `json:"size"`
	ModTime time.Time                `json:"mod_time"`
	Linked  bool                     `json:"linked"`
	Opts    sqltypes.DatalinkOptions `json:"opts"` // meaningful when linked
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrLinked), errors.Is(err, ErrWriteBlocked),
		errors.Is(err, ErrAlreadyLinked), errors.Is(err, ErrNotLinked):
		code = http.StatusConflict
	case errors.Is(err, ErrTokenRequired), errors.Is(err, med.ErrTokenExpired),
		errors.Is(err, med.ErrTokenTampered), errors.Is(err, med.ErrTokenWrongFile):
		code = http.StatusForbidden
	case errors.Is(err, ErrBadPath):
		code = http.StatusBadRequest
	}
	http.Error(w, err.Error(), code)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareReq
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.mgr.Prepare(req.Tx, med.LinkOp{Kind: req.Kind, Path: req.Path, Opts: req.Opts}); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	var req txReq
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.mgr.Commit(req.Tx); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleAbort(w http.ResponseWriter, r *http.Request) {
	var req txReq
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.mgr.Abort(req.Tx); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleEnsure(w http.ResponseWriter, r *http.Request) {
	var req ensureReq
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.mgr.EnsureLinked(req.Path, req.Opts); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleRename(w http.ResponseWriter, r *http.Request) {
	var req renameReq
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.mgr.Rename(req.Old, req.New); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleRemove(w http.ResponseWriter, r *http.Request) {
	var req pathReq
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := s.mgr.Remove(req.Path); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleStat(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Query().Get("path")
	fi, err := s.mgr.Stat(path)
	if err != nil {
		writeErr(w, err)
		return
	}
	json.NewEncoder(w).Encode(statResp{
		Path: fi.Path, Size: fi.Size, ModTime: fi.ModTime, Linked: fi.Linked, Opts: fi.Opts,
	})
}

func (s *Server) handleLinked(w http.ResponseWriter, r *http.Request) {
	states := s.mgr.LinkStates()
	paths := make([]string, 0, len(states))
	for _, ls := range states {
		if ls.Tombstone() {
			continue // unlink tombstones are registry metadata, not links
		}
		paths = append(paths, ls.Path)
	}
	json.NewEncoder(w).Encode(paths)
}

// handleLinks serves the full registry — paths plus options and link
// times — which the replication tier's anti-entropy scan consumes.
func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	json.NewEncoder(w).Encode(s.mgr.LinkStates())
}

// handleFiles serves uploads and (token-gated) downloads. The download
// URL carries the access token the way the paper shows:
// /files/dir/access_token;filename.
func (s *Server) handleFiles(w http.ResponseWriter, r *http.Request) {
	raw := strings.TrimPrefix(r.URL.Path, "/files")
	if raw == "" {
		http.Error(w, "missing path", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		n, err := s.mgr.Put(raw, r.Body)
		if err != nil {
			writeErr(w, err)
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, "%d bytes stored\n", n)
	case http.MethodGet:
		path, token := sqltypes.SplitTokenizedPath(raw)
		var (
			rc  io.ReadCloser
			fi  FileInfo
			err error
		)
		if cb, ok := s.mgr.(ContextBackend); ok {
			rc, fi, err = cb.OpenContext(r.Context(), path, token)
		} else {
			rc, fi, err = s.mgr.Open(path, token)
		}
		if err != nil {
			writeErr(w, err)
			return
		}
		defer rc.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprintf("%d", fi.Size))
		// Metadata headers let Client.OpenStat rebuild FileInfo without
		// a separate stat round trip (the replication tier's read path).
		w.Header().Set("Last-Modified", fi.ModTime.UTC().Format(http.TimeFormat))
		w.Header().Set("X-Dlfs-Linked", fmt.Sprintf("%t", fi.Linked))
		io.Copy(w, rc) //nolint:errcheck // client disconnects are not server errors
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}
