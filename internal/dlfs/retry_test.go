package dlfs

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer serves /dlfm/stat after failing the first `fail` attempts
// with 503, and always fails /dlfm/remove — counting every request so
// tests can assert the exact retry discipline on the wire.
type flakyServer struct {
	statCalls   atomic.Int64
	removeCalls atomic.Int64
	fail        int64
}

func (f *flakyServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/dlfm/stat", func(w http.ResponseWriter, r *http.Request) {
		if f.statCalls.Add(1) <= f.fail {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"path": r.URL.Query().Get("path"), "size": 7, "mod_time": time.Now(), "linked": false,
		})
	})
	mux.HandleFunc("/dlfm/remove", func(w http.ResponseWriter, r *http.Request) {
		f.removeCalls.Add(1)
		http.Error(w, "flaky", http.StatusServiceUnavailable)
	})
	return mux
}

// TestClientRetryIdempotent: with SetRetry, transient 502/503/504
// responses to an idempotent RPC are retried with backoff until the
// daemon recovers; without SetRetry the first fault surfaces (the
// default, so fault injection and breaker accounting see every fault).
func TestClientRetryIdempotent(t *testing.T) {
	f := &flakyServer{fail: 2}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c := NewClient("fs.sim:80", srv.URL, nil)
	c.SetRetry(3, time.Millisecond)
	fi, err := c.Stat("/d/f")
	if err != nil {
		t.Fatalf("Stat with retries: %v", err)
	}
	if fi.Size != 7 {
		t.Fatalf("Stat size = %d, want 7", fi.Size)
	}
	if got := f.statCalls.Load(); got != 3 {
		t.Fatalf("daemon saw %d stat attempts, want 3 (2 faults + 1 success)", got)
	}

	f.statCalls.Store(0)
	bare := NewClient("fs.sim:80", srv.URL, nil)
	if _, err := bare.Stat("/d/f"); err == nil {
		t.Fatal("Stat without retries swallowed the 503")
	}
	if got := f.statCalls.Load(); got != 1 {
		t.Fatalf("retry-less client issued %d attempts, want 1", got)
	}
}

// TestClientNoRetryNonIdempotent: destructive RPCs are never retried —
// replaying a Remove past an ambiguous failure could delete a file
// relinked in between.
func TestClientNoRetryNonIdempotent(t *testing.T) {
	f := &flakyServer{}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	c := NewClient("fs.sim:80", srv.URL, nil)
	c.SetRetry(5, time.Millisecond)
	if err := c.Remove("/d/f"); err == nil {
		t.Fatal("Remove against a failing daemon succeeded")
	}
	if got := f.removeCalls.Load(); got != 1 {
		t.Fatalf("daemon saw %d remove attempts, want 1 (non-idempotent)", got)
	}
}

// TestClientContextAbortsBackoff: a canceled caller context ends the
// retry sequence immediately, including mid-backoff, and new attempts
// are never issued against the wire.
func TestClientContextAbortsBackoff(t *testing.T) {
	f := &flakyServer{fail: 1 << 30} // never recovers
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	c := NewClient("fs.sim:80", srv.URL, nil).WithContext(ctx)
	c.SetRetry(10, time.Second) // backoff windows far beyond the deadline

	start := time.Now()
	_, err := c.Stat("/d/f")
	took := time.Since(start)
	if err == nil {
		t.Fatal("Stat succeeded against a permanently failing daemon")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Stat error = %v, want the caller's deadline", err)
	}
	if took > 500*time.Millisecond {
		t.Fatalf("deadline-bounded Stat took %v — backoff ignored the context", took)
	}
	if got := f.statCalls.Load(); got > 2 {
		t.Fatalf("daemon saw %d attempts inside a 30ms deadline, want <= 2", got)
	}
}

// TestClientRPCTimeout: a per-attempt deadline bounds a stalled daemon
// even when the caller context is unbounded.
func TestClientRPCTimeout(t *testing.T) {
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	defer srv.Close()
	defer close(stall)

	c := NewClient("fs.sim:80", srv.URL, nil)
	c.SetRPCTimeout(25 * time.Millisecond)
	start := time.Now()
	if err := c.Ping(); err == nil {
		t.Fatal("Ping against a stalled daemon succeeded")
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("RPC timeout took %v to fire", took)
	}
}
