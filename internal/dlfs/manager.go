package dlfs

import (
	"io"
	"time"

	"repro/internal/med"
	"repro/internal/sqltypes"
)

// Manager is the in-process Data Links File Manager for one host. It
// binds a Store to a host name and a token authority, and implements
// both med.FileServer (link control) and med.BackupParticipant
// (coordinated backup). Tests, simulations and the benchmarks use
// Manager directly; cmd/dlfsd wraps one in the HTTP daemon.
type Manager struct {
	host  string
	store *Store
	auth  *med.TokenAuthority
}

// NewManager creates a manager serving host from the given store. auth
// validates access tokens for READ PERMISSION DB files; it must be the
// same authority (same secret) the database host mints with.
func NewManager(host string, store *Store, auth *med.TokenAuthority) *Manager {
	return &Manager{host: host, store: store, auth: auth}
}

// Host implements med.FileServer.
func (m *Manager) Host() string { return m.host }

// Store exposes the underlying store (daemon wiring and tests).
func (m *Manager) Store() *Store { return m.store }

// Prepare implements med.FileServer.
func (m *Manager) Prepare(txID uint64, op med.LinkOp) error { return m.store.Prepare(txID, op) }

// Commit implements med.FileServer.
func (m *Manager) Commit(txID uint64) error { return m.store.Commit(txID) }

// Abort implements med.FileServer. In-process aborts cannot fail.
func (m *Manager) Abort(txID uint64) error { m.store.Abort(txID); return nil }

// EnsureLinked implements med.FileServer.
func (m *Manager) EnsureLinked(path string, opts sqltypes.DatalinkOptions) error {
	return m.store.EnsureLinked(path, opts)
}

// EnsureUnlinked forces path out of the linked state, tombstoning the
// unlink at the given event time (reconciliation counterpart of
// EnsureLinked).
func (m *Manager) EnsureUnlinked(path string, at time.Time) error {
	return m.store.EnsureUnlinked(path, at)
}

// BackupLinked implements med.BackupParticipant.
func (m *Manager) BackupLinked(dst string) (int, error) { return m.store.BackupLinked(dst) }

// RestoreLinked implements med.BackupParticipant.
func (m *Manager) RestoreLinked(src string) (int, error) { return m.store.RestoreLinked(src) }

// Put stores a file on this host (archiving data where it is generated).
func (m *Manager) Put(path string, r io.Reader) (int64, error) { return m.store.Put(path, r) }

// Open reads a file, enforcing READ PERMISSION DB token checks.
func (m *Manager) Open(path, token string) (io.ReadCloser, FileInfo, error) {
	return m.store.Open(path, token, m.auth)
}

// Stat describes a file.
func (m *Manager) Stat(path string) (FileInfo, error) { return m.store.Stat(path) }

// Rename moves a file (refused while either end is linked).
func (m *Manager) Rename(oldPath, newPath string) error { return m.store.Rename(oldPath, newPath) }

// Remove deletes a file (refused while linked).
func (m *Manager) Remove(path string) error { return m.store.Remove(path) }

// LinkStates lists the link registry (anti-entropy and the daemon's
// /dlfm/links route).
func (m *Manager) LinkStates() []LinkState { return m.store.LinkStates() }

// Ping reports liveness; an in-process manager is always reachable.
func (m *Manager) Ping() error { return nil }

// Compile-time interface checks.
var (
	_ med.FileServer        = (*Manager)(nil)
	_ med.BackupParticipant = (*Manager)(nil)
	_ Backend               = (*Manager)(nil)
)
