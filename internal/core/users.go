package core

import (
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"sort"
	"sync"
)

// User is an authenticated archive user. The privilege model mirrors
// the paper's demo: "Guest users cannot download datasets, cannot
// upload post-processing codes, and are limited in the types of
// operations they can run."
type User struct {
	Name  string
	Guest bool
	// Admin users manage accounts and run coordinated backups.
	Admin bool
}

// CanDownload reports whether the user may retrieve archived datasets.
func (u User) CanDownload() bool { return !u.Guest }

// CanUpload reports whether the user may upload post-processing codes.
func (u User) CanUpload() bool { return !u.Guest }

// UserStore is the web-based user-management backend: a salted-hash
// credential table with the guest account pre-provisioned.
type UserStore struct {
	mu    sync.RWMutex
	users map[string]storedUser
}

type storedUser struct {
	User
	hash [32]byte
}

// NewUserStore creates a store holding the paper's guest/guest account.
func NewUserStore() *UserStore {
	s := &UserStore{users: make(map[string]storedUser)}
	// Demo account from the paper: username guest, password guest.
	if err := s.Add(User{Name: "guest", Guest: true}, "guest"); err != nil {
		panic("core: provisioning guest account: " + err.Error())
	}
	return s
}

func credentialHash(name, password string) [32]byte {
	return sha256.Sum256([]byte("easia:" + name + ":" + password))
}

// Add provisions an account.
func (s *UserStore) Add(u User, password string) error {
	if u.Name == "" {
		return fmt.Errorf("core: user name must not be empty")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.users[u.Name]; exists {
		return fmt.Errorf("core: user %s already exists", u.Name)
	}
	s.users[u.Name] = storedUser{User: u, hash: credentialHash(u.Name, password)}
	return nil
}

// Remove deletes an account (the guest account may not be removed).
func (s *UserStore) Remove(name string) error {
	if name == "guest" {
		return fmt.Errorf("core: the guest account cannot be removed")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.users[name]; !exists {
		return fmt.Errorf("core: user %s does not exist", name)
	}
	delete(s.users, name)
	return nil
}

// SetPassword rotates a credential.
func (s *UserStore) SetPassword(name, password string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	su, exists := s.users[name]
	if !exists {
		return fmt.Errorf("core: user %s does not exist", name)
	}
	su.hash = credentialHash(name, password)
	s.users[name] = su
	return nil
}

// Authenticate verifies credentials in constant time.
func (s *UserStore) Authenticate(name, password string) (User, error) {
	s.mu.RLock()
	su, exists := s.users[name]
	s.mu.RUnlock()
	candidate := credentialHash(name, password)
	if !exists {
		// Burn the same comparison time for unknown users.
		var zero [32]byte
		subtle.ConstantTimeCompare(candidate[:], zero[:])
		return User{}, fmt.Errorf("core: invalid username or password")
	}
	if subtle.ConstantTimeCompare(candidate[:], su.hash[:]) != 1 {
		return User{}, fmt.Errorf("core: invalid username or password")
	}
	return su.User, nil
}

// Names lists account names, sorted.
func (s *UserStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.users))
	for n := range s.users {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
