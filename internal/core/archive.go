// Package core is the EASIA archive engine — the paper's primary
// contribution assembled as a library. An Archive binds together the
// relational engine (metadata), the SQL/MED coordinator and token
// authority (DATALINK semantics), the distributed file-server hosts
// (bulk data, archived where it was generated), the XUIS (schema-driven
// UI specification) and the operations engine (server-side
// post-processing and code upload).
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/ops"
	"repro/internal/script"
	"repro/internal/sqldb"
	"repro/internal/sqltypes"
	"repro/internal/telemetry"
	"repro/internal/xuis"
)

// FileHost is the archive's handle on one file-server host: the SQL/MED
// participant protocol plus plain file access. Both dlfs.Manager
// (in-process) and dlfs.Client (remote daemon) satisfy it via the
// adapters below.
type FileHost interface {
	med.FileServer
	OpenFile(path, token string) (io.ReadCloser, error)
	PutFile(path string, r io.Reader) error
	StatFile(path string) (dlfs.FileInfo, error)
}

// managerHost adapts an in-process dlfs.Manager.
type managerHost struct{ *dlfs.Manager }

func (m managerHost) OpenFile(path, token string) (io.ReadCloser, error) {
	rc, _, err := m.Open(path, token)
	return rc, err
}
func (m managerHost) PutFile(path string, r io.Reader) error {
	_, err := m.Put(path, r)
	return err
}
func (m managerHost) StatFile(path string) (dlfs.FileInfo, error) { return m.Stat(path) }

// WrapManager adapts an in-process manager into a FileHost.
func WrapManager(m *dlfs.Manager) FileHost { return managerHost{m} }

// clientHost adapts a remote dlfs.Client.
type clientHost struct{ *dlfs.Client }

func (c clientHost) OpenFile(path, token string) (io.ReadCloser, error) { return c.Open(path, token) }
func (c clientHost) PutFile(path string, r io.Reader) error             { return c.Put(path, r) }
func (c clientHost) StatFile(path string) (dlfs.FileInfo, error)        { return c.Stat(path) }

// WrapClient adapts a remote daemon client into a FileHost.
func WrapClient(c *dlfs.Client) FileHost { return clientHost{c} }

// Config configures an Archive.
type Config struct {
	// DBDir is the database directory; empty means in-memory.
	DBDir string
	// Secret keys the token authority (shared with the file servers).
	Secret []byte
	// TokenTTL is the access-token lifetime ("a database configuration
	// parameter"); zero selects med.DefaultTokenTTL.
	TokenTTL time.Duration
	// WorkRoot hosts operation working directories.
	WorkRoot string
	// ScriptLimits bounds sandboxed post-processing; zero = defaults.
	ScriptLimits script.Limits
	// Clock is injectable for tests; nil = time.Now.
	Clock func() time.Time
	// Salvage accepts committed-data loss when the WAL shows mid-log
	// corruption: recovery keeps the intact prefix instead of refusing
	// to open. Operator opt-in only (cmd/easiad -salvage).
	Salvage bool
}

// Archive is a running EASIA instance.
type Archive struct {
	DB     *sqldb.DB
	Coord  *med.Coordinator
	Tokens *med.TokenAuthority
	Users  *UserStore

	mu    sync.RWMutex
	cfg   Config
	spec  *xuis.Spec
	eng   *ops.Engine
	hosts map[string]FileHost
}

// Open creates or reopens an archive.
func Open(cfg Config) (*Archive, error) {
	if len(cfg.Secret) == 0 {
		return nil, fmt.Errorf("core: Config.Secret is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	db, err := sqldb.OpenWith(cfg.DBDir, sqldb.Options{Salvage: cfg.Salvage})
	if err != nil {
		return nil, err
	}
	db.SetClock(cfg.Clock)
	tokens, err := med.NewTokenAuthority(cfg.Secret, cfg.TokenTTL)
	if err != nil {
		db.Close()
		return nil, err
	}
	tokens.SetClock(cfg.Clock)
	coord := med.NewCoordinator()
	db.SetLinkController(coord)
	a := &Archive{
		DB:     db,
		Coord:  coord,
		Tokens: tokens,
		Users:  NewUserStore(),
		cfg:    cfg,
		hosts:  make(map[string]FileHost),
	}
	return a, nil
}

// Close shuts the archive down, checkpointing the database.
func (a *Archive) Close() error { return a.DB.Close() }

// InitTurbulenceSchema installs the paper's five-table schema.
func (a *Archive) InitTurbulenceSchema() error {
	return a.DB.ExecScript(TurbulenceSchema)
}

// AttachFileServer registers a file-server host with both the SQL/MED
// coordinator and the archive's read/write paths.
func (a *Archive) AttachFileServer(h FileHost) {
	a.Coord.Register(h)
	a.mu.Lock()
	a.hosts[strings.ToLower(h.Host())] = h
	a.mu.Unlock()
}

// Host returns the registered host, if any.
func (a *Archive) Host(host string) (FileHost, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	h, ok := a.hosts[strings.ToLower(host)]
	return h, ok
}

// HostStatus is the replication-health snapshot of one registered
// file-server host, surfaced on the web UI's status page.
type HostStatus struct {
	Host       string
	Replicated bool // backed by a replica set (the fields below apply)
	// Members lists the replica-set members; Down the members whose
	// health breaker is currently open; UnderReplicated the paths known
	// to be missing a replica (pending anti-entropy repair).
	Members         []string
	Down            []string
	UnderReplicated []string
	// Metrics is the host's telemetry snapshot (replica-set counters and
	// latency summaries) when the host exposes one; nil otherwise.
	Metrics []telemetry.Metric
}

// clusterStatus is the health surface a replicated host (e.g.
// cluster.ReplicaSet) exposes; plain single-manager hosts don't.
type clusterStatus interface {
	Members() []string
	Down() []string
	UnderReplicated() []string
}

// metricsSource is the telemetry surface a host may expose in addition
// to clusterStatus (cluster.ReplicaSet does).
type metricsSource interface {
	MetricsSnapshot() []telemetry.Metric
}

// metricsRegistry is the registry surface a host may expose; used by
// WriteMetrics to render a host's full exposition (histogram buckets
// included, which snapshots do not carry).
type metricsRegistry interface {
	Metrics() *telemetry.Registry
}

// WriteMetrics renders the archive's full telemetry — the SQL engine's
// registry plus every registry exposed by a registered file-server
// host — in Prometheus text exposition format. Registries shared by
// several hosts (a common Config.Metrics) are written once.
func (a *Archive) WriteMetrics(w io.Writer) error {
	if err := a.DB.Metrics().WritePrometheus(w); err != nil {
		return err
	}
	a.mu.RLock()
	names := make([]string, 0, len(a.hosts))
	for name := range a.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	regs := make([]*telemetry.Registry, 0, len(names))
	seen := make(map[*telemetry.Registry]bool)
	for _, name := range names {
		if mr, ok := a.hosts[name].(metricsRegistry); ok {
			if reg := mr.Metrics(); reg != nil && !seen[reg] {
				seen[reg] = true
				regs = append(regs, reg)
			}
		}
	}
	a.mu.RUnlock()
	for _, reg := range regs {
		if err := reg.WritePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

// HostStatuses reports every registered file-server host, sorted by
// name, with replication health where the host exposes it.
func (a *Archive) HostStatuses() []HostStatus {
	a.mu.RLock()
	names := make([]string, 0, len(a.hosts))
	for name := range a.hosts {
		names = append(names, name)
	}
	sort.Strings(names)
	hosts := make([]FileHost, len(names))
	for i, name := range names {
		hosts[i] = a.hosts[name]
	}
	a.mu.RUnlock()

	out := make([]HostStatus, len(names))
	for i, h := range hosts {
		st := HostStatus{Host: names[i]}
		if cs, ok := h.(clusterStatus); ok {
			st.Replicated = true
			st.Members = cs.Members()
			st.Down = cs.Down()
			st.UnderReplicated = cs.UnderReplicated()
		}
		if ms, ok := h.(metricsSource); ok {
			st.Metrics = ms.MetricsSnapshot()
		}
		out[i] = st
	}
	return out
}

// Spec returns the active XUIS (nil before generation/loading).
func (a *Archive) Spec() *xuis.Spec {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.spec
}

// GenerateXUIS builds the default XUIS from the live catalogue and
// installs it ("the system is started by initialising … with an XUIS").
func (a *Archive) GenerateXUIS(databaseName string) (*xuis.Spec, error) {
	spec, err := xuis.Generator{MaxSamples: 4}.Generate(a.DB, databaseName)
	if err != nil {
		return nil, err
	}
	if err := a.SetSpec(spec); err != nil {
		return nil, err
	}
	return spec, nil
}

// SetSpec validates and installs a (possibly customised) XUIS, and
// rebuilds the operations engine bound to it.
func (a *Archive) SetSpec(spec *xuis.Spec) error {
	if err := xuis.Validate(spec, a.DB.Catalog()); err != nil {
		return err
	}
	workRoot := a.cfg.WorkRoot
	if workRoot == "" {
		workRoot = "easia-work"
	}
	eng, err := ops.NewEngine(ops.Config{
		DB:       a.DB,
		Spec:     spec,
		Fetch:    a.fetchURL,
		WorkRoot: workRoot,
		Limits:   a.cfg.ScriptLimits,
		Clock:    a.cfg.Clock,
	})
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.spec = spec
	a.eng = eng
	a.mu.Unlock()
	return nil
}

// Ops returns the operations engine (nil before SetSpec/GenerateXUIS).
func (a *Archive) Ops() *ops.Engine {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.eng
}

// fetchURL opens a DATALINK URL through the owning host, minting an
// internal token (the archive itself holds SELECT privilege).
func (a *Archive) fetchURL(url string) (io.ReadCloser, error) {
	u, err := sqltypes.ParseDatalinkURL(url)
	if err != nil {
		return nil, err
	}
	h, ok := a.Host(u.Host)
	if !ok {
		return nil, fmt.Errorf("core: no file server registered for host %s", u.Host)
	}
	token, err := a.Tokens.Mint(u.Path, "easia-internal", 0)
	if err != nil {
		return nil, err
	}
	return h.OpenFile(u.Path, token)
}

// ArchiveFile stores content on the named host ("archive data where it
// is generated") and returns the DATALINK URL for the metadata INSERT.
func (a *Archive) ArchiveFile(host, path string, r io.Reader) (string, error) {
	h, ok := a.Host(host)
	if !ok {
		return "", fmt.Errorf("core: no file server registered for host %s", host)
	}
	if err := h.PutFile(path, r); err != nil {
		return "", err
	}
	return "http://" + h.Host() + path, nil
}

// DownloadURL produces the tokenized URL a SELECT hands to an
// authorised user — "http://host/filesystem/directory/access_token;filename".
// Guests cannot download datasets (the paper's demo policy).
func (a *Archive) DownloadURL(datalink string, u User) (string, error) {
	if !u.CanDownload() {
		return "", fmt.Errorf("core: user %s may not download datasets", u.Name)
	}
	parsed, err := sqltypes.ParseDatalinkURL(datalink)
	if err != nil {
		return "", err
	}
	col, colOK := a.datalinkColumnFor(datalink)
	ttl := time.Duration(0)
	if colOK && col.Type.Datalink != nil && col.Type.Datalink.TokenLifetime > 0 {
		ttl = time.Duration(col.Type.Datalink.TokenLifetime) * time.Second
	}
	token, err := a.Tokens.Mint(parsed.Path, u.Name, ttl)
	if err != nil {
		return "", err
	}
	return parsed.WithToken(token), nil
}

// datalinkColumnFor finds the column currently holding the URL, so the
// per-column EXPIRY option can shape token lifetimes. Ambiguity (the
// same URL in two columns) is impossible: a file is linked once.
func (a *Archive) datalinkColumnFor(url string) (sqldb.Column, bool) {
	cat := a.DB.Catalog()
	for _, name := range cat.TableNames() {
		schema, _ := cat.Table(name)
		for _, ci := range schema.DatalinkColumns() {
			col := schema.Cols[ci]
			// Link-control lookup on every download-link render: prepared
			// per (table, column), so only the first render pays for
			// parsing and binding.
			stmt, err := a.DB.Prepare(
				fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE %s = DLVALUE(?)", schema.Name, col.Name))
			if err != nil {
				continue
			}
			rows, err := stmt.Query(sqltypes.NewString(url))
			if err == nil && len(rows.Data) == 1 && rows.Data[0][0].Int() > 0 {
				return col, true
			}
		}
	}
	return sqldb.Column{}, false
}

// OpenDownload streams a file given its tokenized or raw URL on behalf
// of a user (the web layer's /download path; the token in the URL is
// validated by the file server).
func (a *Archive) OpenDownload(tokenizedURL string) (io.ReadCloser, error) {
	u, err := sqltypes.ParseDatalinkURL(tokenizedURL)
	if err != nil {
		return nil, err
	}
	path, token := sqltypes.SplitTokenizedPath(u.Path)
	h, ok := a.Host(u.Host)
	if !ok {
		return nil, fmt.Errorf("core: no file server registered for host %s", u.Host)
	}
	return h.OpenFile(path, token)
}

// repairer is the replication hook: a host backed by a replica set
// (cluster.ReplicaSet) exposes an anti-entropy pass, which Reconcile
// runs after link repair so rejoined members converge immediately.
type repairer interface {
	RepairLinks() error
}

// Reconcile repairs file-manager link state after crash recovery: every
// controlled DATALINK value in the database must be linked on its host.
// Replicated hosts additionally get an anti-entropy pass, and aborts
// that never reached a file server are retried by the coordinator.
func (a *Archive) Reconcile() error {
	cat := a.DB.Catalog()
	var firstErr error
	for _, name := range cat.TableNames() {
		schema, _ := cat.Table(name)
		for _, ci := range schema.DatalinkColumns() {
			col := schema.Cols[ci]
			opts := col.Type.Datalink
			if opts == nil || !opts.FileLinkControl {
				continue
			}
			stmt, err := a.DB.Prepare(fmt.Sprintf(
				"SELECT %s FROM %s WHERE %s IS NOT NULL", col.Name, schema.Name, col.Name))
			if err != nil {
				return err
			}
			rows, err := stmt.Query()
			if err != nil {
				return err
			}
			var urls []string
			for _, r := range rows.Data {
				urls = append(urls, r[0].Str())
			}
			if err := a.Coord.Reconcile(urls, *opts); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	a.mu.RLock()
	hosts := make([]FileHost, 0, len(a.hosts))
	for _, h := range a.hosts {
		hosts = append(hosts, h)
	}
	a.mu.RUnlock()
	for _, h := range hosts {
		if r, ok := h.(repairer); ok {
			if err := r.RepairLinks(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Backup runs a coordinated backup (database + linked RECOVERY YES
// files on every host) into dir and returns the external-file count.
func (a *Archive) Backup(dir string) (int, error) {
	var parts []med.BackupParticipant
	a.mu.RLock()
	for _, h := range a.hosts {
		if bp, ok := h.(med.BackupParticipant); ok {
			parts = append(parts, bp)
		}
	}
	a.mu.RUnlock()
	return med.BackupSet{Dir: dir}.Backup(a.DB, a.cfg.DBDir, parts)
}

// RowByKey fetches one row of a table as a colid→value map, the shape
// the operations engine consumes.
func (a *Archive) RowByKey(table string, key map[string]string) (map[string]sqltypes.Value, error) {
	schema, ok := a.DB.Catalog().Table(table)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %s", table)
	}
	if len(key) == 0 {
		return nil, fmt.Errorf("core: empty row key")
	}
	// Sort the key columns so the same key shape always renders the same
	// SQL text (map iteration order would otherwise scatter it across
	// distinct plan-cache entries).
	cols := make([]string, 0, len(key))
	for col := range key {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	var conds []string
	var args []sqltypes.Value
	for _, col := range cols {
		if schema.ColIndex(col) < 0 {
			return nil, fmt.Errorf("core: unknown key column %s.%s", table, col)
		}
		conds = append(conds, fmt.Sprintf("%s = ?", strings.ToUpper(col)))
		args = append(args, sqltypes.NewString(key[col]))
	}
	// The key columns of a table rarely vary per caller (LOB links and
	// operation forms always address rows by primary key), so this text
	// repeats and the prepared plan is shared.
	stmt, err := a.DB.Prepare(
		fmt.Sprintf("SELECT * FROM %s WHERE %s", schema.Name, strings.Join(conds, " AND ")))
	if err != nil {
		return nil, err
	}
	rows, err := stmt.Query(args...)
	if err != nil {
		return nil, err
	}
	if len(rows.Data) == 0 {
		return nil, fmt.Errorf("core: no %s row matches %v", table, key)
	}
	if len(rows.Data) > 1 {
		return nil, fmt.Errorf("core: key %v matches %d rows of %s", key, len(rows.Data), table)
	}
	out := make(map[string]sqltypes.Value, len(rows.Columns))
	for i, col := range rows.Columns {
		out[schema.Name+"."+strings.ToUpper(col)] = rows.Data[0][i]
	}
	return out, nil
}

// RunOperation executes a named operation for a user against the row
// identified by key.
func (a *Archive) RunOperation(opName, colID, table string, key map[string]string, params map[string]string, u User) (*ops.Result, error) {
	eng := a.Ops()
	if eng == nil {
		return nil, fmt.Errorf("core: no XUIS installed")
	}
	row, err := a.RowByKey(table, key)
	if err != nil {
		return nil, err
	}
	return eng.Run(opName, colID, row, params, ops.User{Name: u.Name, Guest: u.Guest})
}

// UploadAndRun executes user-uploaded code against the row identified
// by key, under the column's <upload> policy.
func (a *Archive) UploadAndRun(colID, table string, key map[string]string, code []byte, format, entry string, params map[string]string, u User) (*ops.Result, error) {
	eng := a.Ops()
	if eng == nil {
		return nil, fmt.Errorf("core: no XUIS installed")
	}
	if !u.CanUpload() {
		return nil, fmt.Errorf("core: user %s may not upload post-processing codes", u.Name)
	}
	row, err := a.RowByKey(table, key)
	if err != nil {
		return nil, err
	}
	return eng.RunUploaded(colID, row, code, format, entry, params, ops.User{Name: u.Name, Guest: u.Guest})
}
