package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/dlfs"
	"repro/internal/med"
	"repro/internal/sqltypes"
	"repro/internal/turb"
	"repro/internal/xuis"
)

// newArchive assembles a full in-process EASIA deployment: metadata DB,
// token authority, and two file-server hosts.
func newArchive(t *testing.T, dbDir string) (*Archive, *dlfs.Manager, *dlfs.Manager) {
	t.Helper()
	secret := []byte("integration-secret")
	a, err := Open(Config{
		DBDir:    dbDir,
		Secret:   secret,
		WorkRoot: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	auth, err := med.NewTokenAuthority(secret, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(host string) *dlfs.Manager {
		store, err := dlfs.NewStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		m := dlfs.NewManager(host, store, auth)
		a.AttachFileServer(WrapManager(m))
		return m
	}
	return a, mk("fs1.sim:80"), mk("fs2.sim:80")
}

// seedSimulation archives one simulation with a real TSF dataset and an
// EASL post-processing code, mirroring the paper's demo content.
func seedSimulation(t *testing.T, a *Archive, n int) {
	t.Helper()
	if err := a.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`INSERT INTO AUTHOR VALUES ('A19990110151042', 'Papiani', 'University of Southampton', 'p@soton.ac.uk')`,
		`INSERT INTO SIMULATION VALUES ('S19990110150932', 'A19990110151042',
			'Turbulent channel flow', 'Direct numerical simulation of channel flow.',
			` + fmt.Sprint(n) + `, 1395.0, 100, '2000-03-27 09:00:00')`,
	} {
		if _, err := a.DB.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	// Archive the dataset where it was generated (fs1).
	var tsf bytes.Buffer
	if _, err := turb.Generate(n, 4, 7).WriteTo(&tsf); err != nil {
		t.Fatal(err)
	}
	url, err := a.ArchiveFile("fs1.sim:80", "/vol0/run1/ts4.tsf", bytes.NewReader(tsf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('ts4.tsf', 'S19990110150932', 4, 'u,v,w,p', 'TSF', %d, DLVALUE('%s'))`,
		tsf.Len(), url)); err != nil {
		t.Fatal(err)
	}
	// Archive the post-processing code on fs2.
	codeURL, err := a.ArchiveFile("fs2.sim:80", "/codes/getimage.easl", strings.NewReader(`
let st = sliceStats(filename, "u", "z", floor(datasetInfo(filename).n / 2))
writeFile("report.txt", "rms=" + str(st.rms))
print("GetImage done")
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO CODE_FILE VALUES ('GetImage.easl', 'S19990110150932', 'EASL', 'Slice visualiser', DLVALUE('%s'))`,
		codeURL)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.GenerateXUIS("TURBULENCE"); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndArchiveFlow(t *testing.T) {
	a, fs1, _ := newArchive(t, "")
	seedSimulation(t, a, 12)

	// The INSERT linked the file: the file manager now protects it.
	if fs1.Store().LinkedCount() != 1 {
		t.Fatalf("linked files on fs1 = %d, want 1", fs1.Store().LinkedCount())
	}
	if err := fs1.Store().Remove("/vol0/run1/ts4.tsf"); !errors.Is(err, dlfs.ErrLinked) {
		t.Fatalf("linked dataset deletable: %v", err)
	}

	// Search via QBE (the paper's query form).
	rs, err := a.Search(QBE{
		Table:        "RESULT_FILE",
		Restrictions: []Restriction{{Column: "MEASUREMENT", Op: "=", Value: "u,v,w,p"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("search rows = %d", len(rs.Rows))
	}

	// DATALINK browsing: authorised users get a tokenized URL.
	dl := rs.Row(0)["RESULT_FILE.DOWNLOAD_RESULT"]
	tokURL, err := a.DownloadURL(dl.Str(), User{Name: "papiani"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tokURL, ";ts4.tsf") {
		t.Fatalf("tokenized URL = %q", tokURL)
	}
	rc, err := a.OpenDownload(tokURL)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(rc)
	rc.Close()
	if int64(len(data)) != turb.FileBytes(12) {
		t.Fatalf("downloaded %d bytes, want %d", len(data), turb.FileBytes(12))
	}

	// Guests cannot download (the paper's demo policy).
	if _, err := a.DownloadURL(dl.Str(), User{Name: "guest", Guest: true}); err == nil {
		t.Fatal("guest obtained a download URL")
	}
	// Tokenless direct access is refused.
	if _, err := a.OpenDownload(dl.Str()); err == nil {
		t.Fatal("tokenless download succeeded")
	}
}

func TestBrowsing(t *testing.T) {
	a, _, _ := newArchive(t, "")
	seedSimulation(t, a, 8)

	// FK browsing: AUTHOR_KEY → full author details.
	rs, err := a.BrowseFK("AUTHOR", "AUTHOR_KEY", "A19990110151042")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Row(0)["AUTHOR.NAME"].AsString() != "Papiani" {
		t.Fatalf("fk browse: %v", rs.Rows)
	}

	// PK browsing: SIMULATION_KEY → rows of RESULT_FILE referencing it.
	rs, err = a.BrowsePK("RESULT_FILE", "SIMULATION_KEY", "S19990110150932")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 || rs.Row(0)["RESULT_FILE.FILE_NAME"].AsString() != "ts4.tsf" {
		t.Fatalf("pk browse: %v", rs.Rows)
	}

	// FK substitution: raw key → author name.
	name, err := a.SubstituteFK("AUTHOR", "AUTHOR_KEY", "NAME", "A19990110151042")
	if err != nil {
		t.Fatal(err)
	}
	if name != "Papiani" {
		t.Fatalf("substituted = %q", name)
	}
}

func TestQBEBuildSQL(t *testing.T) {
	a, _, _ := newArchive(t, "")
	seedSimulation(t, a, 8)

	sql, args, err := a.BuildSQL(QBE{
		Table:  "SIMULATION",
		Select: []string{"SIMULATION_KEY", "TITLE"},
		Restrictions: []Restriction{
			{Column: "TITLE", Op: "CONTAINS", Value: "channel"},
			{Column: "GRID_SIZE", Op: ">=", Value: "8"},
			{Column: "REYNOLDS", Op: "=", Value: ""}, // empty: dropped
		},
		OrderBy: "SIMULATION_KEY",
		Limit:   10,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT SIMULATION_KEY, TITLE FROM SIMULATION WHERE TITLE LIKE ? AND GRID_SIZE >= ? ORDER BY SIMULATION_KEY LIMIT 10"
	if sql != want {
		t.Fatalf("sql = %q", sql)
	}
	if len(args) != 2 || args[0].AsString() != "%channel%" {
		t.Fatalf("args = %v", args)
	}

	// Injection attempts fail cleanly: names are validated, values bound.
	if _, _, err := a.BuildSQL(QBE{Table: "SIMULATION; DROP TABLE AUTHOR"}); err == nil {
		t.Fatal("bad table accepted")
	}
	if _, _, err := a.BuildSQL(QBE{Table: "SIMULATION",
		Restrictions: []Restriction{{Column: "TITLE", Op: "= 1 OR", Value: "x"}}}); err == nil {
		t.Fatal("bad operator accepted")
	}
	rs, err := a.Search(QBE{Table: "SIMULATION",
		Restrictions: []Restriction{{Column: "TITLE", Op: "=", Value: "x' OR '1'='1"}}})
	if err != nil || len(rs.Rows) != 0 {
		t.Fatalf("injection through value: rows=%d err=%v", len(rs.Rows), err)
	}
}

func TestCaseInsensitiveQBESearch(t *testing.T) {
	a, _, _ := newArchive(t, "")
	seedSimulation(t, a, 8)
	rs, err := a.Search(QBE{Table: "simulation", Select: []string{"title"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
}

func TestRunOperationThroughArchive(t *testing.T) {
	a, _, _ := newArchive(t, "")
	seedSimulation(t, a, 12)
	spec := a.Spec()
	op := &xuis.Operation{
		Name: "GetImage", Type: "EASL", Filename: "getimage.easl", Format: "easl", GuestAccess: true,
		Location: &xuis.Location{DatabaseResult: &xuis.DatabaseResult{
			ColID:      "CODE_FILE.DOWNLOAD_CODE_FILE",
			Conditions: []xuis.Condition{{ColID: "CODE_FILE.CODE_NAME", Eq: "'GetImage.easl'"}},
		}},
	}
	if err := spec.AddOperation("RESULT_FILE", "DOWNLOAD_RESULT", op); err != nil {
		t.Fatal(err)
	}
	if err := a.SetSpec(spec); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunOperation("GetImage", "RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE",
		map[string]string{"FILE_NAME": "ts4.tsf", "SIMULATION_KEY": "S19990110150932"},
		nil, User{Name: "guest", Guest: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "GetImage done") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
	if len(res.Files) != 1 || res.Files[0].Name != "report.txt" {
		t.Fatalf("files = %v", res.Files)
	}
}

func TestUploadThroughArchive(t *testing.T) {
	a, _, _ := newArchive(t, "")
	seedSimulation(t, a, 12)
	spec := a.Spec()
	if err := spec.SetUpload("RESULT_FILE", "DOWNLOAD_RESULT", &xuis.Upload{
		Type: "EASL", Format: "easl", GuestAccess: false,
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetSpec(spec); err != nil {
		t.Fatal(err)
	}
	code := []byte(`print("energy:", datasetInfo(filename).n)`)
	key := map[string]string{"FILE_NAME": "ts4.tsf", "SIMULATION_KEY": "S19990110150932"}
	// Guests refused at the archive layer.
	if _, err := a.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key, code, "easl", "u.easl", nil,
		User{Name: "guest", Guest: true}); err == nil {
		t.Fatal("guest upload ran")
	}
	res, err := a.UploadAndRun("RESULT_FILE.DOWNLOAD_RESULT", "RESULT_FILE", key, code, "easl", "u.easl", nil,
		User{Name: "papiani"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, "energy: 12") {
		t.Fatalf("stdout = %q", res.Stdout)
	}
}

// TestCrashRecoveryAndReconcile: after a database restart, WAL replay
// restores metadata and Reconcile re-asserts link state on file hosts.
func TestCrashRecoveryAndReconcile(t *testing.T) {
	dbDir := t.TempDir()
	secret := []byte("integration-secret")
	fsDir := t.TempDir()

	a1, err := Open(Config{DBDir: dbDir, Secret: secret, WorkRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	auth, _ := med.NewTokenAuthority(secret, 0)
	store1, err := dlfs.NewStore(fsDir)
	if err != nil {
		t.Fatal(err)
	}
	m1 := dlfs.NewManager("fs1.sim:80", store1, auth)
	a1.AttachFileServer(WrapManager(m1))
	if err := a1.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	if _, err := a1.DB.Exec(`INSERT INTO AUTHOR VALUES ('A1', 'Papiani', NULL, NULL)`); err != nil {
		t.Fatal(err)
	}
	if _, err := a1.DB.Exec(`INSERT INTO SIMULATION VALUES ('S1', 'A1', 'Run', NULL, 8, 100.0, 1, NOW())`); err != nil {
		t.Fatal(err)
	}
	url, err := a1.ArchiveFile("fs1.sim:80", "/d/f.tsf", strings.NewReader("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a1.DB.Exec(fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('f.tsf', 'S1', 0, 'u', 'TSF', 4, DLVALUE('%s'))`, url)); err != nil {
		t.Fatal(err)
	}
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" the file host: fresh store over the same directory but
	// with the registry wiped (simulating lost file-manager state).
	if err := store1.Remove("/nonexistent"); err == nil {
		t.Fatal("sanity: remove should fail")
	}
	store2, err := dlfs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store2.Put("/d/f.tsf", strings.NewReader("data")); err != nil {
		t.Fatal(err)
	}

	a2, err := Open(Config{DBDir: dbDir, Secret: secret, WorkRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	m2 := dlfs.NewManager("fs1.sim:80", store2, auth)
	a2.AttachFileServer(WrapManager(m2))

	// Metadata survived.
	rows, err := a2.DB.Query(`SELECT COUNT(*) FROM RESULT_FILE`)
	if err != nil || rows.Data[0][0].Int() != 1 {
		t.Fatalf("metadata lost: %v %v", rows, err)
	}
	// Reconcile restores the link.
	if store2.LinkedCount() != 0 {
		t.Fatal("sanity: fresh store should have no links")
	}
	if err := a2.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if store2.LinkedCount() != 1 {
		t.Fatalf("reconcile linked %d files, want 1", store2.LinkedCount())
	}
}

func TestCoordinatedBackupRestore(t *testing.T) {
	a, fs1, fs2 := newArchive(t, t.TempDir())
	seedSimulation(t, a, 8)
	_ = fs2

	backupDir := t.TempDir()
	n, err := a.Backup(backupDir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 { // dataset on fs1 + code on fs2
		t.Fatalf("backup captured %d files, want 2", n)
	}

	// Restore the dataset host from the backup after "disk loss".
	freshStore, err := dlfs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	auth, _ := med.NewTokenAuthority([]byte("integration-secret"), 0)
	fresh := dlfs.NewManager("fs1.sim:80", freshStore, auth)
	set := med.BackupSet{Dir: backupDir}
	restored, err := set.Restore("", []med.BackupParticipant{fresh})
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 || freshStore.LinkedCount() != 1 {
		t.Fatalf("restored=%d linked=%d", restored, freshStore.LinkedCount())
	}
	_ = fs1
}

func TestUserStore(t *testing.T) {
	s := NewUserStore()
	// Guest account pre-provisioned with the demo credentials.
	u, err := s.Authenticate("guest", "guest")
	if err != nil || !u.Guest {
		t.Fatalf("guest auth: %+v %v", u, err)
	}
	if _, err := s.Authenticate("guest", "wrong"); err == nil {
		t.Fatal("wrong password accepted")
	}
	if _, err := s.Authenticate("nobody", "x"); err == nil {
		t.Fatal("unknown user accepted")
	}
	if err := s.Add(User{Name: "papiani"}, "s3cret"); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(User{Name: "papiani"}, "dup"); err == nil {
		t.Fatal("duplicate user accepted")
	}
	u, err = s.Authenticate("papiani", "s3cret")
	if err != nil || u.Guest {
		t.Fatalf("full user auth: %+v %v", u, err)
	}
	if err := s.SetPassword("papiani", "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Authenticate("papiani", "s3cret"); err == nil {
		t.Fatal("old password still valid")
	}
	if err := s.Remove("guest"); err == nil {
		t.Fatal("guest removal allowed")
	}
	if err := s.Remove("papiani"); err != nil {
		t.Fatal(err)
	}
	names := s.Names()
	if len(names) != 1 || names[0] != "guest" {
		t.Fatalf("names = %v", names)
	}
}

func TestTokenExpiryThroughArchive(t *testing.T) {
	now := time.Date(2000, 3, 27, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	secret := []byte("expiry-secret")
	a, err := Open(Config{Secret: secret, TokenTTL: 30 * time.Second, WorkRoot: t.TempDir(), Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	auth, _ := med.NewTokenAuthority(secret, 0)
	auth.SetClock(clock)
	store, err := dlfs.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m := dlfs.NewManager("fs1.sim:80", store, auth)
	a.AttachFileServer(WrapManager(m))
	if err := a.InitTurbulenceSchema(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(`INSERT INTO AUTHOR VALUES ('A1', 'X', NULL, NULL)`); err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(`INSERT INTO SIMULATION VALUES ('S1', 'A1', 'R', NULL, 4, 1.0, 1, NOW())`); err != nil {
		t.Fatal(err)
	}
	url, err := a.ArchiveFile("fs1.sim:80", "/d/f.tsf", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(fmt.Sprintf(
		`INSERT INTO RESULT_FILE VALUES ('f.tsf', 'S1', 0, 'u', 'TSF', 1, DLVALUE('%s'))`, url)); err != nil {
		t.Fatal(err)
	}

	tokURL, err := a.DownloadURL(url, User{Name: "u"})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := a.OpenDownload(tokURL)
	if err != nil {
		t.Fatalf("fresh token refused: %v", err)
	}
	rc.Close()
	// Let the token age past its finite life.
	now = now.Add(time.Hour)
	if _, err := a.OpenDownload(tokURL); !errors.Is(err, med.ErrTokenExpired) {
		t.Fatalf("expired token: %v", err)
	}
}

// TestDatalinkUpdateRelinks: an SQL UPDATE that re-points a DATALINK
// unlinks the old file (releasing it) and links the new one, all inside
// the transaction.
func TestDatalinkUpdateRelinks(t *testing.T) {
	a, fs1, _ := newArchive(t, "")
	seedSimulation(t, a, 8)

	// Archive a replacement file.
	newURL, err := a.ArchiveFile("fs1.sim:80", "/vol0/run1/ts4-v2.tsf", strings.NewReader("replacement"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.DB.Exec(
		`UPDATE RESULT_FILE SET DOWNLOAD_RESULT = DLVALUE(?) WHERE FILE_NAME = 'ts4.tsf'`,
		sqltypes.NewString(newURL)); err != nil {
		t.Fatal(err)
	}
	// The old file is free again; the new file is protected.
	if err := fs1.Store().Remove("/vol0/run1/ts4.tsf"); err != nil {
		t.Fatalf("old file still protected after relink: %v", err)
	}
	if err := fs1.Store().Remove("/vol0/run1/ts4-v2.tsf"); !errors.Is(err, dlfs.ErrLinked) {
		t.Fatalf("new file not protected: %v", err)
	}
	// And exactly one file is linked on fs1 (the new one).
	if got := fs1.Store().LinkedCount(); got != 1 {
		t.Fatalf("linked count = %d, want 1", got)
	}
}

// TestDatalinkUpdateToMissingFileFails: re-pointing at a nonexistent
// file aborts the UPDATE and leaves everything as it was.
func TestDatalinkUpdateToMissingFileFails(t *testing.T) {
	a, fs1, _ := newArchive(t, "")
	seedSimulation(t, a, 8)
	_, err := a.DB.Exec(
		`UPDATE RESULT_FILE SET DOWNLOAD_RESULT = DLVALUE('http://fs1.sim:80/nope/ghost.tsf')
		 WHERE FILE_NAME = 'ts4.tsf'`)
	if err == nil {
		t.Fatal("update to missing file succeeded")
	}
	// Old link intact, row unchanged.
	if err := fs1.Store().Remove("/vol0/run1/ts4.tsf"); !errors.Is(err, dlfs.ErrLinked) {
		t.Fatalf("old link lost after failed update: %v", err)
	}
	rows, err := a.DB.Query(`SELECT DLURLPATH(DOWNLOAD_RESULT) FROM RESULT_FILE WHERE FILE_NAME = 'ts4.tsf'`)
	if err != nil || rows.Data[0][0].AsString() != "/vol0/run1/ts4.tsf" {
		t.Fatalf("row changed after failed update: %v %v", rows, err)
	}
}
