package core

import (
	"fmt"
	"strings"

	"repro/internal/sqltypes"
)

// QBE is the Query-by-Example model behind the paper's query forms:
// "the user selects the fields to be returned. Also for each field
// present, restrictions including wildcards may be put on the values".
type QBE struct {
	Table string
	// Select lists the columns to return; empty means all visible
	// columns ("alternatively request all data for a table").
	Select       []string
	Restrictions []Restriction
	OrderBy      string
	Desc         bool
	Limit        int // 0 = no limit
}

// Restriction is one field condition from the form.
type Restriction struct {
	Column string
	Op     string // = <> < <= > >= LIKE CONTAINS STARTS
	Value  string
}

// qbeOps maps form operators to SQL. CONTAINS and STARTS are
// conveniences that compile to LIKE patterns.
var qbeOps = map[string]string{
	"=": "=", "<>": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
	"LIKE": "LIKE", "CONTAINS": "LIKE", "STARTS": "LIKE",
}

// escapeLike neutralises user-supplied wildcard characters when the
// operator injects its own wildcards.
func escapeLike(s string) string {
	s = strings.ReplaceAll(s, `%`, `\%`)
	return strings.ReplaceAll(s, `_`, `\_`)
}

// BuildSQL compiles a QBE into parameterised SQL against the archive
// schema, rejecting unknown tables, columns and operators (the form is
// user input; nothing is spliced into the SQL text).
func (a *Archive) BuildSQL(q QBE) (string, []sqltypes.Value, error) {
	schema, ok := a.DB.Catalog().Table(q.Table)
	if !ok {
		return "", nil, fmt.Errorf("core: unknown table %s", q.Table)
	}
	cols := q.Select
	if len(cols) == 0 {
		cols = schema.ColNames()
	}
	var sel []string
	for _, c := range cols {
		if schema.ColIndex(c) < 0 {
			return "", nil, fmt.Errorf("core: unknown column %s.%s", q.Table, c)
		}
		sel = append(sel, strings.ToUpper(c))
	}
	var (
		sql  strings.Builder
		args []sqltypes.Value
	)
	fmt.Fprintf(&sql, "SELECT %s FROM %s", strings.Join(sel, ", "), schema.Name)
	var conds []string
	for _, r := range q.Restrictions {
		if strings.TrimSpace(r.Value) == "" {
			continue // empty form fields mean "no restriction"
		}
		if schema.ColIndex(r.Column) < 0 {
			return "", nil, fmt.Errorf("core: unknown column %s.%s", q.Table, r.Column)
		}
		op, ok := qbeOps[strings.ToUpper(strings.TrimSpace(r.Op))]
		if !ok {
			return "", nil, fmt.Errorf("core: unsupported operator %q", r.Op)
		}
		val := r.Value
		switch strings.ToUpper(strings.TrimSpace(r.Op)) {
		case "CONTAINS":
			val = "%" + escapeLike(val) + "%"
		case "STARTS":
			val = escapeLike(val) + "%"
		}
		conds = append(conds, fmt.Sprintf("%s %s ?", strings.ToUpper(r.Column), op))
		args = append(args, sqltypes.NewString(val))
	}
	if len(conds) > 0 {
		sql.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if q.OrderBy != "" {
		if schema.ColIndex(q.OrderBy) < 0 {
			return "", nil, fmt.Errorf("core: unknown ORDER BY column %s", q.OrderBy)
		}
		fmt.Fprintf(&sql, " ORDER BY %s", strings.ToUpper(q.OrderBy))
		if q.Desc {
			sql.WriteString(" DESC")
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&sql, " LIMIT %d", q.Limit)
	}
	return sql.String(), args, nil
}

// ResultSet is a decorated query result: plain values plus the metadata
// the web layer needs to render browsing links.
type ResultSet struct {
	Table   string
	Columns []string // upper-cased column names
	ColIDs  []string // "TABLE.COLUMN"
	Kinds   []sqltypes.Kind
	Rows    [][]sqltypes.Value
}

// Row returns row i as the colid→value map operations consume.
func (rs *ResultSet) Row(i int) map[string]sqltypes.Value {
	out := make(map[string]sqltypes.Value, len(rs.Columns))
	for j, id := range rs.ColIDs {
		out[id] = rs.Rows[i][j]
	}
	return out
}

// Search runs a QBE and returns the decorated result set. A given
// search shape (table, selected columns, restriction operators) always
// compiles to the same parameterised SQL text, so Prepare resolves to
// one shared cached plan: repeated form submissions and browse clicks
// skip parsing and binding entirely.
func (a *Archive) Search(q QBE) (*ResultSet, error) {
	sql, args, err := a.BuildSQL(q)
	if err != nil {
		return nil, err
	}
	stmt, err := a.DB.Prepare(sql)
	if err != nil {
		return nil, err
	}
	rows, err := stmt.Query(args...)
	if err != nil {
		return nil, err
	}
	schema, _ := a.DB.Catalog().Table(q.Table)
	rs := &ResultSet{
		Table:   schema.Name,
		Columns: rows.Columns,
		Kinds:   rows.Kinds,
		Rows:    rows.Data,
	}
	for _, c := range rows.Columns {
		rs.ColIDs = append(rs.ColIDs, schema.Name+"."+strings.ToUpper(c))
	}
	return rs, nil
}

// BrowseFK implements foreign-key browsing: "selecting a link on an
// AUTHOR_KEY value will retrieve full details of the author".
func (a *Archive) BrowseFK(refTable, refColumn, value string) (*ResultSet, error) {
	return a.Search(QBE{
		Table:        refTable,
		Restrictions: []Restriction{{Column: refColumn, Op: "=", Value: value}},
	})
}

// BrowsePK implements primary-key browsing: all rows of a referencing
// table in which this key value appears as a foreign key.
func (a *Archive) BrowsePK(childTable, childColumn, value string) (*ResultSet, error) {
	return a.Search(QBE{
		Table:        childTable,
		Restrictions: []Restriction{{Column: childColumn, Op: "=", Value: value}},
	})
}

// SubstituteFK resolves the paper's customisation: show a named column
// of the referenced table instead of the raw key value.
func (a *Archive) SubstituteFK(refTable, refColumn, substColumn, keyValue string) (string, error) {
	// Called once per FK cell on the result page; the statement text is
	// identical for every cell of a column, so the prepared plan is
	// shared across the whole render.
	stmt, err := a.DB.Prepare(fmt.Sprintf("SELECT %s FROM %s WHERE %s = ?",
		strings.ToUpper(substColumn), strings.ToUpper(refTable), strings.ToUpper(refColumn)))
	if err != nil {
		return "", err
	}
	rows, err := stmt.Query(sqltypes.NewString(keyValue))
	if err != nil {
		return "", err
	}
	if len(rows.Data) == 0 {
		return keyValue, nil // dangling user-defined relationship: show the raw key
	}
	return rows.Data[0][0].AsString(), nil
}
