package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// buildPropertyDB creates the table the planner property tests run
// against: typed columns with NULLs, duplicates and adversarial string
// values, plus a mixed set of hash and ordered indexes.
func buildPropertyDB(t testing.TB, rng *rand.Rand, rows int) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`CREATE TABLE P (
		ID INTEGER PRIMARY KEY,
		N  INTEGER,
		D  DOUBLE,
		S  VARCHAR(30),
		TS TIMESTAMP,
		B  BOOLEAN
	)`); err != nil {
		t.Fatal(err)
	}
	words := []string{"alpha", "beta", "gamma", "delta", "", "5", "TRUE", "1999-01-10 15:09:32", "zz"}
	ins, err := db.Prepare(`INSERT INTO P VALUES (?, ?, ?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	maybeNull := func(v sqltypes.Value) sqltypes.Value {
		if rng.Intn(8) == 0 {
			return sqltypes.Null
		}
		return v
	}
	for i := 0; i < rows; i++ {
		_, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			maybeNull(sqltypes.NewInt(int64(rng.Intn(200)-100))),
			maybeNull(sqltypes.NewDouble(float64(rng.Intn(4000))/8-250)),
			maybeNull(sqltypes.NewString(words[rng.Intn(len(words))])),
			maybeNull(sqltypes.NewString(fmt.Sprintf("20%02d-0%d-1%d 0%d:00:00",
				rng.Intn(10), 1+rng.Intn(8), rng.Intn(9), rng.Intn(10)))),
			maybeNull(sqltypes.NewBool(rng.Intn(2) == 0)),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, ddl := range []string{
		`CREATE INDEX PIX_N ON P (N) USING ORDERED`,
		`CREATE INDEX PIX_D ON P (D) USING ORDERED`,
		`CREATE INDEX PIX_S ON P (S) USING HASH`,
		`CREATE INDEX PIX_TS ON P (TS) USING ORDERED`,
	} {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// randomPredicate builds one WHERE conjunct, sometimes passing numeric
// and timestamp bounds as strings the way the QBE layer does.
func randomPredicate(rng *rand.Rand) (string, []sqltypes.Value) {
	num := func(v int) sqltypes.Value {
		if rng.Intn(3) == 0 {
			return sqltypes.NewString(fmt.Sprintf("%d", v))
		}
		return sqltypes.NewInt(int64(v))
	}
	switch rng.Intn(10) {
	case 0:
		return "N = ?", []sqltypes.Value{num(rng.Intn(200) - 100)}
	case 1:
		lo := rng.Intn(200) - 100
		return "N BETWEEN ? AND ?", []sqltypes.Value{num(lo), num(lo + rng.Intn(60))}
	case 2:
		return "N >= ?", []sqltypes.Value{num(rng.Intn(200) - 100)}
	case 3:
		return "N < ?", []sqltypes.Value{num(rng.Intn(200) - 100)}
	case 4:
		return "D BETWEEN ? AND ?", []sqltypes.Value{
			sqltypes.NewDouble(float64(rng.Intn(2000))/8 - 250),
			sqltypes.NewDouble(float64(rng.Intn(2000))/8 - 100)}
	case 5:
		words := []string{"alpha", "beta", "5", "TRUE", "", "nothere"}
		return "S = ?", []sqltypes.Value{sqltypes.NewString(words[rng.Intn(len(words))])}
	case 6:
		return "TS >= ?", []sqltypes.Value{sqltypes.NewString(fmt.Sprintf("200%d-01-01", rng.Intn(10)))}
	case 7:
		return "N IS NULL", nil
	case 8:
		return "S IS NOT NULL", nil
	default:
		return "D > ?", []sqltypes.Value{num(rng.Intn(300) - 150)}
	}
}

// rowsKey flattens a result into one comparable multiset fingerprint.
func rowsKey(r *Rows, ordered bool) string {
	keys := make([]string, len(r.Data))
	for i, row := range r.Data {
		keys[i] = encodeKey(row...)
	}
	if !ordered {
		sort.Strings(keys)
	}
	return strings.Join(keys, "|")
}

// assertSorted checks ORDER BY output against SortCompare.
func assertSorted(t *testing.T, r *Rows, col string, desc bool, sql string) {
	t.Helper()
	ci := r.ColIndex(col)
	if ci < 0 {
		t.Fatalf("%s: ORDER BY column %s missing from result", sql, col)
	}
	for i := 1; i < len(r.Data); i++ {
		c := sqltypes.SortCompare(r.Data[i-1][ci], r.Data[i][ci])
		if (desc && c < 0) || (!desc && c > 0) {
			t.Fatalf("%s: output not sorted at row %d", sql, i)
		}
	}
}

// TestPlannerPropertyIndexVsScan: every randomly generated SELECT must
// return identical rows through the planner's index paths and through a
// forced full scan. ORDER BY results are additionally checked for
// sortedness; exact sequences are compared when ordering by the unique
// ID column.
func TestPlannerPropertyIndexVsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := buildPropertyDB(t, rng, 500)
	defer db.Close()

	runOne := func(sql string, args []sqltypes.Value, exactOrder bool, orderCol string, desc bool) {
		t.Helper()
		indexed, ierr := db.Query(sql, args...)
		db.SetFullScanOnly(true)
		scanned, serr := db.Query(sql, args...)
		db.SetFullScanOnly(false)
		if (ierr == nil) != (serr == nil) {
			t.Fatalf("%s args=%v: error mismatch: index=%v scan=%v", sql, args, ierr, serr)
		}
		if ierr != nil {
			if ierr.Error() != serr.Error() {
				t.Fatalf("%s: differing errors: %v vs %v", sql, ierr, serr)
			}
			return
		}
		if rowsKey(indexed, exactOrder) != rowsKey(scanned, exactOrder) {
			t.Fatalf("%s args=%v: index path and full scan disagree:\n index: %d rows\n scan:  %d rows",
				sql, args, len(indexed.Data), len(scanned.Data))
		}
		if orderCol != "" {
			assertSorted(t, indexed, orderCol, desc, sql)
			assertSorted(t, scanned, orderCol, desc, sql)
		}
	}

	phase := func(iterations int) {
		for i := 0; i < iterations; i++ {
			var conds []string
			var args []sqltypes.Value
			for n := rng.Intn(3); n >= 0; n-- {
				c, a := randomPredicate(rng)
				conds = append(conds, c)
				args = append(args, a...)
			}
			sql := "SELECT ID, N, D, S, TS, B FROM P"
			if len(conds) > 0 && rng.Intn(10) > 0 {
				sql += " WHERE " + strings.Join(conds, " AND ")
			}
			orderCol, exact, desc := "", false, false
			switch rng.Intn(4) {
			case 0: // no ORDER BY
			case 1: // ORDER BY unique key: exact comparison + LIMIT allowed
				desc = rng.Intn(2) == 0
				orderCol, exact = "ID", true
				sql += " ORDER BY ID"
				if desc {
					sql += " DESC"
				}
				if rng.Intn(2) == 0 {
					sql += fmt.Sprintf(" LIMIT %d", rng.Intn(20))
					if rng.Intn(2) == 0 {
						sql += fmt.Sprintf(" OFFSET %d", rng.Intn(10))
					}
				}
			default: // ORDER BY possibly-duplicated indexed column
				cols := []string{"N", "D", "TS", "S"}
				orderCol = cols[rng.Intn(len(cols))]
				desc = rng.Intn(2) == 0
				sql += " ORDER BY " + orderCol
				if desc {
					sql += " DESC"
				}
			}
			runOne(sql, args, exact, orderCol, desc)
		}
	}

	phase(250)

	// Mutate: deletes and updates must keep every index consistent.
	if _, err := db.Exec(`DELETE FROM P WHERE N BETWEEN ? AND ?`,
		sqltypes.NewInt(-20), sqltypes.NewInt(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`UPDATE P SET N = ?, S = ? WHERE D > ?`,
		sqltypes.NewInt(77), sqltypes.NewString("updated"), sqltypes.NewDouble(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`DELETE FROM P WHERE S = ?`, sqltypes.NewString("gamma")); err != nil {
		t.Fatal(err)
	}
	phase(250)

	// Aggregates over index-served predicates.
	for i := 0; i < 50; i++ {
		c, a := randomPredicate(rng)
		runOne("SELECT COUNT(*), MIN(N), MAX(D) FROM P WHERE "+c, a, false, "", false)
	}
}

// TestPlannerPropertyDML: UPDATE/DELETE row selection through index
// paths must match the forced-scan selection.
func TestPlannerPropertyDML(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mkDB := func(scanOnly bool) *DB {
		r := rand.New(rand.NewSource(99))
		db := buildPropertyDB(t, r, 300)
		db.SetFullScanOnly(scanOnly)
		return db
	}
	a, b := mkDB(false), mkDB(true)
	defer a.Close()
	defer b.Close()
	for i := 0; i < 60; i++ {
		c, args := randomPredicate(rng)
		var sql string
		if i%2 == 0 {
			sql = "UPDATE P SET D = 999 WHERE " + c
		} else {
			sql = "DELETE FROM P WHERE " + c
		}
		ra, ea := a.Exec(sql, args...)
		rb, eb := b.Exec(sql, args...)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", sql, ea, eb)
		}
		if ea == nil && ra.RowsAffected != rb.RowsAffected {
			t.Fatalf("%s: affected %d (index) vs %d (scan)", sql, ra.RowsAffected, rb.RowsAffected)
		}
	}
	ra, _ := a.Query("SELECT * FROM P ORDER BY ID")
	rb, _ := b.Query("SELECT * FROM P ORDER BY ID")
	if rowsKey(ra, true) != rowsKey(rb, true) {
		t.Fatal("databases diverged after DML through index vs scan paths")
	}
}

// TestPlanInvalidationOnIndexDDL: cached plans must re-run the planner
// when indexes appear or disappear (schema epoch invalidation), and the
// chosen access path must follow.
func TestPlanInvalidationOnIndexDDL(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY, N INTEGER, S VARCHAR(10));
		INSERT INTO T VALUES (1, 10, 'a'); INSERT INTO T VALUES (2, 20, 'b');
		INSERT INTO T VALUES (3, 30, 'c')`); err != nil {
		t.Fatal(err)
	}
	rangeStmt, err := db.Prepare(`SELECT ID FROM T WHERE N BETWEEN ? AND ? ORDER BY N`)
	if err != nil {
		t.Fatal(err)
	}
	eqStmt, err := db.Prepare(`SELECT ID FROM T WHERE S = ?`)
	if err != nil {
		t.Fatal(err)
	}
	expectPath := func(st *Stmt, want string) {
		t.Helper()
		got, err := st.AccessPath()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("AccessPath = %q, want %q", got, want)
		}
	}
	expectRows := func(st *Stmt, args []sqltypes.Value, want int) {
		t.Helper()
		rows, err := st.Query(args...)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != want {
			t.Fatalf("%s: %d rows, want %d", st.Text(), len(rows.Data), want)
		}
	}
	rangeArgs := []sqltypes.Value{sqltypes.NewInt(15), sqltypes.NewInt(35)}

	expectPath(rangeStmt, "full-scan")
	expectRows(rangeStmt, rangeArgs, 2)

	if _, err := db.Exec(`CREATE INDEX IXN ON T (N)`); err != nil { // defaults to ORDERED
		t.Fatal(err)
	}
	expectPath(rangeStmt, "range(T.N) order")
	expectRows(rangeStmt, rangeArgs, 2)

	if _, err := db.Exec(`CREATE INDEX IXS ON T (S) USING HASH`); err != nil {
		t.Fatal(err)
	}
	expectPath(eqStmt, "hash-eq(T.S)")
	expectRows(eqStmt, []sqltypes.Value{sqltypes.NewString("b")}, 1)

	if _, err := db.Exec(`DROP INDEX IXN`); err != nil {
		t.Fatal(err)
	}
	expectPath(rangeStmt, "full-scan")
	expectRows(rangeStmt, rangeArgs, 2)

	if _, err := db.Exec(`DROP INDEX IXS`); err != nil {
		t.Fatal(err)
	}
	expectPath(eqStmt, "full-scan")
	expectRows(eqStmt, []sqltypes.Value{sqltypes.NewString("b")}, 1)
}

// TestOrderedIndexReplay: CREATE INDEX ... USING survives the WAL/DDL
// log and the rebuilt index serves range scans after reopen.
func TestOrderedIndexReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY, N INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX IXN ON T (N) USING ORDERED`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := db.Exec(`INSERT INTO T VALUES (?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i%50))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.Prepare(`SELECT COUNT(*) FROM T WHERE N BETWEEN 10 AND 19`)
	if err != nil {
		t.Fatal(err)
	}
	// COUNT(*) over an exactly-consumed BETWEEN now plans as an
	// index-only aggregate on top of the replayed range path.
	if path, err := st.AccessPath(); err != nil || path != "range(T.N) index-only" {
		t.Fatalf("replayed path = %q err=%v, want range(T.N) index-only", path, err)
	}
	rows, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 40 {
		t.Fatalf("COUNT = %d, want 40", got)
	}
}

// TestOrderedScanSatisfiesOrderBy: ORDER BY on an ordered-indexed
// column must be served by the in-order scan (no sort) in both
// directions, including the NULLs-first/last convention, and LIMIT must
// stop the scan early with correct results.
func TestOrderedScanSatisfiesOrderBy(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY, N INTEGER);
		INSERT INTO T VALUES (1, 5); INSERT INTO T VALUES (2, NULL);
		INSERT INTO T VALUES (3, -2); INSERT INTO T VALUES (4, 9);
		INSERT INTO T VALUES (5, NULL); INSERT INTO T VALUES (6, 0)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX IXN ON T (N)`); err != nil {
		t.Fatal(err)
	}
	asc, err := db.Prepare(`SELECT ID FROM T ORDER BY N`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := asc.AccessPath(); p != "ordered-scan(T.N) order" {
		t.Fatalf("asc path = %q", p)
	}
	rows, err := asc.Query()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := func(r *Rows, want ...int64) {
		t.Helper()
		if len(r.Data) != len(want) {
			t.Fatalf("got %d rows, want %d", len(r.Data), len(want))
		}
		for i, w := range want {
			if r.Data[i][0].Int() != w {
				got := make([]int64, len(r.Data))
				for j := range r.Data {
					got[j] = r.Data[j][0].Int()
				}
				t.Fatalf("ID order %v, want %v", got, want)
			}
		}
	}
	wantIDs(rows, 2, 5, 3, 6, 1, 4) // NULLs first, then -2, 0, 5, 9

	desc, err := db.Prepare(`SELECT ID FROM T ORDER BY N DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := desc.AccessPath(); p != "ordered-scan(T.N) order-desc" {
		t.Fatalf("desc path = %q", p)
	}
	rows, err = desc.Query()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(rows, 4, 1, 6) // 9, 5, 0 — NULLs last under DESC

	ranged, err := db.Prepare(`SELECT ID FROM T WHERE N >= 0 ORDER BY N DESC`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := ranged.AccessPath(); p != "range(T.N) order-desc" {
		t.Fatalf("ranged path = %q", p)
	}
	rows, err = ranged.Query()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs(rows, 4, 1, 6)
}
