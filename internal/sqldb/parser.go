package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sqltypes"
)

// Parse parses a single SQL statement. A trailing semicolon is allowed.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements,
// ignoring empty statements. Used for DDL scripts such as the turbulence
// schema.
func ParseScript(sql string) ([]Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	var out []Statement
	for {
		for p.accept(tokSymbol, ";") {
		}
		if p.at(tokEOF, "") {
			return out, nil
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.accept(tokSymbol, ";") && !p.at(tokEOF, "") {
			return nil, p.errf("expected ';' between statements, got %s", p.cur())
		}
	}
}

type parser struct {
	toks   []token
	pos    int
	src    string
	params int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) atKeyword(kw string) bool { return p.at(tokKeyword, kw) }

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool { return p.accept(tokKeyword, kw) }

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, p.errf("expected %s, got %s", want, p.cur())
}

func (p *parser) expectKeyword(kw string) error {
	_, err := p.expect(tokKeyword, kw)
	return err
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// identifier accepts an identifier or any keyword usable as a name
// (column names like KEY would be unusual; we allow non-reserved words).
func (p *parser) identifier(what string) (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	// Permit a few keywords that commonly appear as identifiers.
	if t.kind == tokKeyword {
		switch t.text {
		case "URL", "DB", "FS", "KEY", "YES", "NO", "ALL", "FILE", "READ", "WRITE", "CONTROL", "LINK",
			"HASH", "ORDERED":
			p.pos++
			return t.text, nil
		}
	}
	return "", p.errf("expected %s, got %s", what, t)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.atKeyword("SELECT"):
		return p.parseSelect()
	case p.atKeyword("INSERT"):
		return p.parseInsert()
	case p.atKeyword("UPDATE"):
		return p.parseUpdate()
	case p.atKeyword("DELETE"):
		return p.parseDelete()
	case p.atKeyword("CREATE"):
		return p.parseCreate()
	case p.atKeyword("DROP"):
		return p.parseDrop()
	case p.acceptKeyword("BEGIN"):
		return &TxStmt{Op: "BEGIN"}, nil
	case p.acceptKeyword("COMMIT"):
		return &TxStmt{Op: "COMMIT"}, nil
	case p.acceptKeyword("ROLLBACK"):
		return &TxStmt{Op: "ROLLBACK"}, nil
	default:
		return nil, p.errf("unexpected %s at start of statement", p.cur())
	}
}

// ---------- DDL ----------

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex()
	case p.acceptKeyword("UNIQUE"):
		if err := p.expectKeyword("INDEX"); err != nil {
			return nil, err
		}
		return p.parseCreateIndex()
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	stmt := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	stmt.Table = name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atKeyword("PRIMARY"):
			p.pos++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenColumnList()
			if err != nil {
				return nil, err
			}
			if stmt.PrimaryKey != nil {
				return nil, p.errf("duplicate PRIMARY KEY clause")
			}
			stmt.PrimaryKey = cols
		case p.atKeyword("UNIQUE"):
			p.pos++
			cols, err := p.parenColumnList()
			if err != nil {
				return nil, err
			}
			stmt.Uniques = append(stmt.Uniques, cols)
		case p.atKeyword("FOREIGN"):
			p.pos++
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parenColumnList()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.identifier("referenced table")
			if err != nil {
				return nil, err
			}
			refCols, err := p.parenColumnList()
			if err != nil {
				return nil, err
			}
			stmt.ForeignKeys = append(stmt.ForeignKeys, ForeignKeyDef{Cols: cols, RefTable: ref, RefCols: refCols})
		case p.atKeyword("CONSTRAINT"):
			p.pos++
			if _, err := p.identifier("constraint name"); err != nil {
				return nil, err
			}
			continue // the named constraint body follows on the next loop pass
		default:
			col, err := p.parseColumnDef(stmt)
			if err != nil {
				return nil, err
			}
			stmt.Cols = append(stmt.Cols, col)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parenColumnList() ([]string, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) parseColumnDef(stmt *CreateTableStmt) (ColumnDef, error) {
	var col ColumnDef
	name, err := p.identifier("column name")
	if err != nil {
		return col, err
	}
	col.Name = name
	ti, err := p.parseType()
	if err != nil {
		return col, err
	}
	col.Type = ti
	for {
		switch {
		case p.acceptKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.acceptKeyword("PRIMARY"):
			if err := p.expectKeyword("KEY"); err != nil {
				return col, err
			}
			if stmt.PrimaryKey != nil {
				return col, p.errf("duplicate PRIMARY KEY")
			}
			stmt.PrimaryKey = []string{col.Name}
			col.NotNull = true
		case p.acceptKeyword("UNIQUE"):
			stmt.Uniques = append(stmt.Uniques, []string{col.Name})
		case p.acceptKeyword("REFERENCES"):
			ref, err := p.identifier("referenced table")
			if err != nil {
				return col, err
			}
			refCols, err := p.parenColumnList()
			if err != nil {
				return col, err
			}
			stmt.ForeignKeys = append(stmt.ForeignKeys, ForeignKeyDef{Cols: []string{col.Name}, RefTable: ref, RefCols: refCols})
		case p.acceptKeyword("DEFAULT"):
			lit, err := p.parseLiteral()
			if err != nil {
				return col, err
			}
			col.Default = &lit
		default:
			return col, nil
		}
	}
}

// parseType parses a column type, including the full SQL/MED DATALINK
// option clauses from the paper's CREATE TABLE slide.
func (p *parser) parseType() (sqltypes.TypeInfo, error) {
	var ti sqltypes.TypeInfo
	t := p.cur()
	if t.kind != tokKeyword {
		return ti, p.errf("expected type name, got %s", t)
	}
	p.pos++
	switch t.text {
	case "INTEGER", "INT", "BIGINT":
		ti.Kind = sqltypes.KindInt
	case "DOUBLE":
		p.acceptKeyword("PRECISION")
		ti.Kind = sqltypes.KindDouble
	case "FLOAT":
		ti.Kind = sqltypes.KindDouble
	case "VARCHAR", "CHAR":
		ti.Kind = sqltypes.KindString
		if p.accept(tokSymbol, "(") {
			num, err := p.expect(tokNumber, "")
			if err != nil {
				return ti, err
			}
			size, err := strconv.Atoi(num.text)
			if err != nil || size <= 0 {
				return ti, p.errf("invalid VARCHAR size %q", num.text)
			}
			ti.Size = size
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return ti, err
			}
		}
	case "BOOLEAN":
		ti.Kind = sqltypes.KindBool
	case "TIMESTAMP":
		ti.Kind = sqltypes.KindTime
	case "BLOB":
		ti.Kind = sqltypes.KindBytes
	case "CLOB":
		ti.Kind = sqltypes.KindClob
	case "DATALINK":
		ti.Kind = sqltypes.KindDatalink
		opts, err := p.parseDatalinkOptions()
		if err != nil {
			return ti, err
		}
		ti.Datalink = opts
	default:
		return ti, p.errf("unknown type %s", t)
	}
	return ti, nil
}

func (p *parser) parseDatalinkOptions() (*sqltypes.DatalinkOptions, error) {
	opts := sqltypes.DatalinkOptions{IntegrityAll: true} // INTEGRITY ALL is the default under link control
	sawControl := false
	for {
		switch {
		case p.acceptKeyword("LINKTYPE"):
			if err := p.expectKeyword("URL"); err != nil {
				return nil, err
			}
		case p.atKeyword("FILE"):
			p.pos++
			if err := p.expectKeyword("LINK"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("CONTROL"); err != nil {
				return nil, err
			}
			opts.FileLinkControl = true
			sawControl = true
		case p.atKeyword("NO"):
			p.pos++
			if err := p.expectKeyword("FILE"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("LINK"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("CONTROL"); err != nil {
				return nil, err
			}
			opts.FileLinkControl = false
			sawControl = true
		case p.acceptKeyword("INTEGRITY"):
			switch {
			case p.acceptKeyword("ALL"):
				opts.IntegrityAll = true
			case p.acceptKeyword("SELECTIVE"):
				opts.IntegrityAll = false
			default:
				return nil, p.errf("expected ALL or SELECTIVE after INTEGRITY")
			}
		case p.acceptKeyword("READ"):
			if err := p.expectKeyword("PERMISSION"); err != nil {
				return nil, err
			}
			switch {
			case p.acceptKeyword("DB"):
				opts.ReadPerm = sqltypes.ReadDB
			case p.acceptKeyword("FS"):
				opts.ReadPerm = sqltypes.ReadFS
			default:
				return nil, p.errf("expected DB or FS after READ PERMISSION")
			}
		case p.acceptKeyword("WRITE"):
			if err := p.expectKeyword("PERMISSION"); err != nil {
				return nil, err
			}
			switch {
			case p.acceptKeyword("BLOCKED"):
				opts.WritePerm = sqltypes.WriteBlocked
			case p.acceptKeyword("FS"):
				opts.WritePerm = sqltypes.WriteFS
			default:
				return nil, p.errf("expected BLOCKED or FS after WRITE PERMISSION")
			}
		case p.acceptKeyword("RECOVERY"):
			switch {
			case p.acceptKeyword("YES"):
				opts.RecoveryYes = true
			case p.acceptKeyword("NO"):
				opts.RecoveryYes = false
			default:
				return nil, p.errf("expected YES or NO after RECOVERY")
			}
		case p.acceptKeyword("ON"):
			if err := p.expectKeyword("UNLINK"); err != nil {
				return nil, err
			}
			switch {
			case p.acceptKeyword("RESTORE"):
				opts.OnUnlink = sqltypes.UnlinkRestore
			case p.acceptKeyword("DELETE"):
				opts.OnUnlink = sqltypes.UnlinkDelete
			default:
				return nil, p.errf("expected RESTORE or DELETE after ON UNLINK")
			}
		case p.acceptKeyword("EXPIRY"):
			num, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			secs, err := strconv.Atoi(num.text)
			if err != nil || secs < 0 {
				return nil, p.errf("invalid EXPIRY %q", num.text)
			}
			opts.TokenLifetime = secs
		default:
			if opts.FileLinkControl && opts.OnUnlink == sqltypes.UnlinkNone {
				opts.OnUnlink = sqltypes.UnlinkRestore
			}
			if !sawControl {
				opts.IntegrityAll = false
			}
			if err := opts.Validate(); err != nil {
				return nil, err
			}
			return &opts, nil
		}
	}
}

func (p *parser) parseCreateIndex() (Statement, error) {
	name, err := p.identifier("index name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	cols, err := p.parenColumnList()
	if err != nil {
		return nil, err
	}
	stmt := &CreateIndexStmt{Name: name, Table: table, Columns: cols}
	if p.acceptKeyword("USING") {
		switch {
		case p.acceptKeyword("HASH"):
			stmt.Using = IndexKindHash
		case p.acceptKeyword("ORDERED"):
			stmt.Using = IndexKindOrdered
		default:
			return nil, p.errf("expected HASH or ORDERED after USING")
		}
	}
	return stmt, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TABLE"):
		ifExists := false
		if p.acceptKeyword("IF") {
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			ifExists = true
		}
		name, err := p.identifier("table name")
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Table: name, IfExists: ifExists}, nil
	case p.acceptKeyword("INDEX"):
		name, err := p.identifier("index name")
		if err != nil {
			return nil, err
		}
		return &DropIndexStmt{Name: name}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after DROP")
	}
}

// ---------- DML ----------

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	if p.at(tokSymbol, "(") {
		cols, err := p.parenColumnList()
		if err != nil {
			return nil, err
		}
		stmt.Cols = cols
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Sets = append(stmt.Sets, SetClause{Col: col, Expr: e})
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

// ---------- SELECT ----------

func (p *parser) parseSelect() (Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	stmt.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if p.acceptKeyword("FROM") {
		first := true
		for {
			var fi FromItem
			if !first {
				switch {
				case p.accept(tokSymbol, ","):
					// comma join: cross product constrained by WHERE
				case p.acceptKeyword("JOIN"):
					fi.JoinCond = nil // set below
				case p.acceptKeyword("INNER"):
					if err := p.expectKeyword("JOIN"); err != nil {
						return nil, err
					}
				case p.acceptKeyword("LEFT"):
					p.acceptKeyword("OUTER")
					if err := p.expectKeyword("JOIN"); err != nil {
						return nil, err
					}
					fi.LeftJoin = true
				default:
					goto fromDone
				}
			}
			name, err := p.identifier("table name")
			if err != nil {
				return nil, err
			}
			fi.Table = name
			if p.acceptKeyword("AS") {
				alias, err := p.identifier("alias")
				if err != nil {
					return nil, err
				}
				fi.Alias = alias
			} else if p.at(tokIdent, "") {
				fi.Alias = p.next().text
			}
			if !first && p.acceptKeyword("ON") {
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fi.JoinCond = cond
			}
			stmt.From = append(stmt.From, fi)
			first = false
			if p.at(tokSymbol, ",") || p.atKeyword("JOIN") || p.atKeyword("INNER") || p.atKeyword("LEFT") {
				continue
			}
			break
		}
	}
fromDone:
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.accept(tokSymbol, ",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", num.text)
		}
		stmt.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(num.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid OFFSET %q", num.text)
		}
		stmt.Offset = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	var item SelectItem
	if p.accept(tokSymbol, "*") {
		item.Star = true
		return item, nil
	}
	// "t.*"
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "." &&
		p.toks[p.pos+2].kind == tokSymbol && p.toks[p.pos+2].text == "*" {
		item.Star = true
		item.Table = p.next().text
		p.pos += 2
		return item, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return item, err
	}
	item.Expr = e
	if p.acceptKeyword("AS") {
		alias, err := p.identifier("alias")
		if err != nil {
			return item, err
		}
		item.Alias = alias
	} else if p.at(tokIdent, "") {
		item.Alias = p.next().text
	}
	return item, nil
}

// ---------- expressions ----------
// Precedence (low→high): OR, AND, NOT, comparison/LIKE/IN/BETWEEN/IS,
// additive (+ - ||), multiplicative (* / %), unary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.pos++
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "="), p.at(tokSymbol, "<"), p.at(tokSymbol, ">"),
			p.at(tokSymbol, "<="), p.at(tokSymbol, ">="), p.at(tokSymbol, "<>"), p.at(tokSymbol, "!="):
			op := p.next().text
			if op == "!=" {
				op = "<>"
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		case p.atKeyword("LIKE"):
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "LIKE", L: l, R: r}
		case p.atKeyword("NOT"):
			// x NOT LIKE / NOT IN / NOT BETWEEN
			save := p.pos
			p.pos++
			switch {
			case p.acceptKeyword("LIKE"):
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &Unary{Op: "NOT", X: &Binary{Op: "LIKE", L: l, R: r}}
			case p.atKeyword("IN"):
				in, err := p.parseIn(l)
				if err != nil {
					return nil, err
				}
				in.Not = true
				l = in
			case p.atKeyword("BETWEEN"):
				bt, err := p.parseBetween(l)
				if err != nil {
					return nil, err
				}
				bt.Not = true
				l = bt
			default:
				p.pos = save
				return l, nil
			}
		case p.atKeyword("IN"):
			in, err := p.parseIn(l)
			if err != nil {
				return nil, err
			}
			l = in
		case p.atKeyword("BETWEEN"):
			bt, err := p.parseBetween(l)
			if err != nil {
				return nil, err
			}
			l = bt
		case p.atKeyword("IS"):
			p.pos++
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{X: l, Not: not}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseIn(l Expr) (*InExpr, error) {
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	in := &InExpr{X: l}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseBetween(l Expr) (*BetweenExpr, error) {
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return nil, err
	}
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{X: l, Lo: lo, Hi: hi}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "+"), p.at(tokSymbol, "-"), p.at(tokSymbol, "||"):
			op := p.next().text
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "*"), p.at(tokSymbol, "/"), p.at(tokSymbol, "%"):
			op := p.next().text
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: op, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := x.(*Literal); ok { // fold negative literals
			switch lit.Val.Kind() {
			case sqltypes.KindInt:
				return &Literal{Val: sqltypes.NewInt(-lit.Val.Int())}, nil
			case sqltypes.KindDouble:
				return &Literal{Val: sqltypes.NewDouble(-lit.Val.Double())}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.accept(tokSymbol, "+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber || t.kind == tokString ||
		(t.kind == tokKeyword && (t.text == "NULL" || t.text == "TRUE" || t.text == "FALSE")):
		v, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	case t.kind == tokSymbol && t.text == "?":
		p.pos++
		p.params++
		return &Param{N: p.params - 1}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokKeyword && (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" || t.text == "MIN" || t.text == "MAX"):
		p.pos++
		return p.parseFuncArgs(t.text)
	case t.kind == tokIdent || t.kind == tokKeyword:
		// Function call or column reference.
		if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			name := strings.ToUpper(t.text)
			p.pos++
			return p.parseFuncArgs(name)
		}
		name, err := p.identifier("column reference")
		if err != nil {
			return nil, err
		}
		if p.accept(tokSymbol, ".") {
			col, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Col: col, Index: -1}, nil
		}
		return &ColRef{Col: name, Index: -1}, nil
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}

func (p *parser) parseFuncArgs(name string) (Expr, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: name}
	if name == "COUNT" && p.accept(tokSymbol, "*") {
		fc.Star = true
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.accept(tokSymbol, ")") {
		return fc, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func (p *parser) parseLiteral() (sqltypes.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return sqltypes.Null, p.errf("invalid number %q", t.text)
			}
			return sqltypes.NewDouble(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return sqltypes.Null, p.errf("invalid number %q", t.text)
			}
			return sqltypes.NewDouble(f), nil
		}
		return sqltypes.NewInt(n), nil
	case tokString:
		p.pos++
		return sqltypes.NewString(t.text), nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return sqltypes.Null, nil
		case "TRUE":
			p.pos++
			return sqltypes.NewBool(true), nil
		case "FALSE":
			p.pos++
			return sqltypes.NewBool(false), nil
		}
	}
	return sqltypes.Null, p.errf("expected literal, got %s", t)
}
