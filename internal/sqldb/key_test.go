package sqldb

import (
	"math"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// TestEncodeKeyCrossKindCollisions is the regression suite for the old
// AsString-based index key, which rendered different kinds to identical
// keys (BOOLEAN TRUE vs VARCHAR 'TRUE', TIMESTAMP vs its text form) and
// missed equal values with different renderings.
func TestEncodeKeyCrossKindCollisions(t *testing.T) {
	ts := time.Date(1999, 1, 10, 15, 9, 32, 0, time.UTC)
	distinct := [][2]sqltypes.Value{
		{sqltypes.NewBool(true), sqltypes.NewString("TRUE")},
		{sqltypes.NewBool(false), sqltypes.NewString("FALSE")},
		{sqltypes.NewTime(ts), sqltypes.NewString("1999-01-10 15:09:32")},
		{sqltypes.NewBytes([]byte("abc")), sqltypes.NewString("abc")},
		{sqltypes.NewDatalink("http://fs1/x"), sqltypes.NewString("http://fs1/x")},
		{sqltypes.NewString("2"), sqltypes.NewBool(true)},
		{sqltypes.Null, sqltypes.NewString("")},
	}
	for _, pair := range distinct {
		if encodeKey(pair[0]) == encodeKey(pair[1]) {
			t.Errorf("encodeKey collision: %v vs %v", pair[0], pair[1])
		}
	}
	// Intentional equivalences: numeric kinds share a class, and values
	// Compare reports equal must share one key (-0.0 vs +0.0, any NaN
	// payload vs any other).
	same := [][2]sqltypes.Value{
		{sqltypes.NewInt(2), sqltypes.NewDouble(2.0)},
		{sqltypes.NewInt(0), sqltypes.NewDouble(0)},
		{sqltypes.NewInt(-7), sqltypes.NewDouble(-7)},
		{sqltypes.NewString("x"), sqltypes.NewClob("x")},
		{sqltypes.NewDouble(math.Copysign(0, -1)), sqltypes.NewInt(0)},
		{sqltypes.NewDouble(math.NaN()), sqltypes.NewDouble(math.Float64frombits(0x7ff8000000000001))},
	}
	for _, pair := range same {
		if encodeKey(pair[0]) != encodeKey(pair[1]) {
			t.Errorf("encodeKey should normalise %v and %v to one key", pair[0], pair[1])
		}
	}
}

// TestDecodeKeyRoundTrip: for every kind whose encoding round-trips,
// decodeKeyValue(appendKey(v)) must reproduce a value equal to v in the
// column's declared kind — the contract the boundary-key MIN/MAX read
// relies on.
func TestDecodeKeyRoundTrip(t *testing.T) {
	ts := time.Date(1999, 1, 10, 15, 9, 32, 123456789, time.UTC)
	far := time.Date(3999, 6, 1, 0, 0, 0, 42, time.UTC) // outside the inline unix-ns window
	cases := []struct {
		v    sqltypes.Value
		kind sqltypes.Kind
	}{
		{sqltypes.Null, sqltypes.KindInt},
		{sqltypes.NewInt(0), sqltypes.KindInt},
		{sqltypes.NewInt(-12345), sqltypes.KindInt},
		{sqltypes.NewInt(1<<53 - 1), sqltypes.KindInt},
		{sqltypes.NewInt(-(1<<53 - 1)), sqltypes.KindInt},
		{sqltypes.NewDouble(3.25), sqltypes.KindDouble},
		{sqltypes.NewDouble(-1e300), sqltypes.KindDouble},
		{sqltypes.NewDouble(math.NaN()), sqltypes.KindDouble},
		{sqltypes.NewString(""), sqltypes.KindString},
		{sqltypes.NewString("hello"), sqltypes.KindString},
		{sqltypes.NewString("nul\x00byte"), sqltypes.KindString},
		{sqltypes.NewClob("clob body"), sqltypes.KindClob},
		{sqltypes.NewBool(true), sqltypes.KindBool},
		{sqltypes.NewBool(false), sqltypes.KindBool},
		{sqltypes.NewTime(ts), sqltypes.KindTime},
		{sqltypes.NewTime(far), sqltypes.KindTime},
		{sqltypes.NewBytes([]byte{0, 1, 2, 0xFF}), sqltypes.KindBytes},
		{sqltypes.NewDatalink("http://fs1.sim:80/a/b"), sqltypes.KindDatalink},
	}
	for _, tc := range cases {
		k := encodeKey(tc.v)
		got, ok := decodeKeyValue(k, tc.kind)
		if !ok {
			t.Errorf("decodeKeyValue(%v as %v): not decodable", tc.v, tc.kind)
			continue
		}
		if tc.v.IsNull() {
			if !got.IsNull() {
				t.Errorf("decode(NULL) = %v", got)
			}
			continue
		}
		if got.Kind() != tc.v.Kind() {
			t.Errorf("decode(%v): kind %v, want %v", tc.v, got.Kind(), tc.v.Kind())
		}
		// NaN compares unordered; its identity is the shared key image.
		if f, isNum := got.AsDouble(); isNum && math.IsNaN(f) {
			if g, _ := tc.v.AsDouble(); !math.IsNaN(g) {
				t.Errorf("decode(%v) = NaN", tc.v)
			}
			continue
		}
		if c, ok := sqltypes.Compare(got, tc.v); !ok || c != 0 {
			t.Errorf("decode(%v) = %v (cmp ok=%v c=%d)", tc.v, got, ok, c)
		}
		// The decoded value must re-encode to the identical key.
		if encodeKey(got) != k {
			t.Errorf("decode(%v) does not re-encode to the same key", tc.v)
		}
	}
}

// TestDecodeKeyRejectsAmbiguous: components that do not round-trip —
// far integers sharing a float64 image, a DOUBLE zero key (±0.0), and
// class/kind mismatches — must refuse to decode rather than guess.
func TestDecodeKeyRejectsAmbiguous(t *testing.T) {
	reject := []struct {
		v    sqltypes.Value
		kind sqltypes.Kind
	}{
		{sqltypes.NewInt(1 << 53), sqltypes.KindInt},
		{sqltypes.NewInt(-(1 << 53)), sqltypes.KindInt},
		{sqltypes.NewDouble(0), sqltypes.KindDouble},
		{sqltypes.NewDouble(math.Copysign(0, -1)), sqltypes.KindDouble},
		{sqltypes.NewDouble(1.5), sqltypes.KindInt}, // non-integral image
		{sqltypes.NewString("x"), sqltypes.KindInt}, // class mismatch
		{sqltypes.NewInt(1), sqltypes.KindString},
		{sqltypes.NewBool(true), sqltypes.KindTime},
	}
	for _, tc := range reject {
		if got, ok := decodeKeyValue(encodeKey(tc.v), tc.kind); ok {
			t.Errorf("decodeKeyValue(%v as %v) = %v, want refusal", tc.v, tc.kind, got)
		}
	}
	if _, ok := decodeKeyValue("", sqltypes.KindInt); ok {
		t.Error("empty key decoded")
	}
	if _, ok := decodeKeyValue(string([]byte{keyTagNumeric, 1, 2}), sqltypes.KindInt); ok {
		t.Error("truncated numeric key decoded")
	}
}

// TestDecodeKeyColumnSkipsComponents: decodeKeyColumn must step over
// earlier tuple components of every class to reach its target.
func TestDecodeKeyColumnSkipsComponents(t *testing.T) {
	ts := time.Date(2001, 2, 3, 4, 5, 6, 0, time.UTC)
	tuple := []sqltypes.Value{
		sqltypes.NewString("pre\x00fix"),
		sqltypes.Null,
		sqltypes.NewInt(77),
		sqltypes.NewBool(true),
		sqltypes.NewTime(ts),
		sqltypes.NewString("target"),
	}
	k := encodeKey(tuple...)
	kinds := []sqltypes.Kind{sqltypes.KindString, sqltypes.KindInt, sqltypes.KindInt,
		sqltypes.KindBool, sqltypes.KindTime, sqltypes.KindString}
	for slot, want := range tuple {
		got, ok := decodeKeyColumn(k, slot, kinds[slot])
		if !ok {
			t.Fatalf("slot %d not decodable", slot)
		}
		if want.IsNull() {
			if !got.IsNull() {
				t.Fatalf("slot %d: got %v, want NULL", slot, got)
			}
			continue
		}
		if c, ok := sqltypes.Compare(got, want); !ok || c != 0 {
			t.Fatalf("slot %d: got %v, want %v", slot, got, want)
		}
	}
	if _, ok := decodeKeyColumn(k, len(tuple), sqltypes.KindInt); ok {
		t.Fatal("out-of-range slot decoded")
	}
}

// TestEncodeKeyTupleUnambiguous: composite keys must not collide across
// different splits of the same concatenated text.
func TestEncodeKeyTupleUnambiguous(t *testing.T) {
	a := encodeKey(sqltypes.NewString("ab"), sqltypes.NewString("c"))
	b := encodeKey(sqltypes.NewString("a"), sqltypes.NewString("bc"))
	if a == b {
		t.Fatal("tuple keys collide across splits")
	}
	c := encodeKey(sqltypes.NewString("a\x00b"))
	d := encodeKey(sqltypes.NewString("a"), sqltypes.NewString("b"))
	if c == d {
		t.Fatal("embedded NUL collides with tuple boundary")
	}
}

// TestEncodeKeyOrder: within each comparable class, lexicographic byte
// order of the encodings must match SortCompare.
func TestEncodeKeyOrder(t *testing.T) {
	day := func(d int) sqltypes.Value {
		return sqltypes.NewTime(time.Date(2000, 1, d, 0, 0, 0, d*1000, time.UTC))
	}
	classes := map[string][]sqltypes.Value{
		"numeric": {
			sqltypes.Null, sqltypes.NewDouble(math.NaN()), sqltypes.NewDouble(math.Inf(-1)),
			sqltypes.NewDouble(-1e300), sqltypes.NewInt(-5000),
			sqltypes.NewDouble(-2.5), sqltypes.NewInt(-1), sqltypes.NewDouble(-0.001),
			sqltypes.NewInt(0), sqltypes.NewDouble(0.25), sqltypes.NewInt(1),
			sqltypes.NewDouble(1.5), sqltypes.NewInt(42), sqltypes.NewDouble(1e18),
			sqltypes.NewDouble(math.Inf(1)),
		},
		"text": {
			sqltypes.Null, sqltypes.NewString(""), sqltypes.NewString("A"),
			sqltypes.NewString("a"), sqltypes.NewString("a\x00b"), sqltypes.NewString("ab"),
			sqltypes.NewString("b"), sqltypes.NewClob("bb"),
		},
		"time": {
			sqltypes.Null, day(1), day(2), day(3), day(28),
		},
		"bool": {
			sqltypes.Null, sqltypes.NewBool(false), sqltypes.NewBool(true),
		},
	}
	for name, vals := range classes {
		for i := range vals {
			for j := range vals {
				want := sqltypes.SortCompare(vals[i], vals[j])
				ki, kj := encodeKey(vals[i]), encodeKey(vals[j])
				got := 0
				if ki < kj {
					got = -1
				} else if ki > kj {
					got = 1
				}
				if got != want {
					t.Errorf("%s: key order of %v vs %v = %d, SortCompare = %d",
						name, vals[i], vals[j], got, want)
				}
			}
		}
	}
}

// TestEncodeKeyOrderRandomNumeric cross-checks the sortable-double
// encoding on a deterministic pseudo-random mix of ints and doubles.
func TestEncodeKeyOrderRandomNumeric(t *testing.T) {
	var vals []sqltypes.Value
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	for i := 0; i < 200; i++ {
		n := int64(next()%2_000_001) - 1_000_000
		if i%2 == 0 {
			vals = append(vals, sqltypes.NewInt(n))
		} else {
			vals = append(vals, sqltypes.NewDouble(float64(n)/3))
		}
	}
	byKey := append([]sqltypes.Value(nil), vals...)
	sort.SliceStable(byKey, func(a, b int) bool { return encodeKey(byKey[a]) < encodeKey(byKey[b]) })
	for i := 1; i < len(byKey); i++ {
		if sqltypes.SortCompare(byKey[i-1], byKey[i]) > 0 {
			t.Fatalf("key order violates SortCompare at %d: %v then %v", i, byKey[i-1], byKey[i])
		}
	}
}

// TestProbeValueAlignment exercises the probe coercion rules that keep
// index lookups semantically identical to heap scans.
func TestProbeValueAlignment(t *testing.T) {
	ts := time.Date(1999, 1, 10, 15, 9, 32, 0, time.UTC)
	cases := []struct {
		col    sqltypes.Kind
		probe  sqltypes.Value
		ok     bool
		expect sqltypes.Value // matched stored value when ok
	}{
		{sqltypes.KindInt, sqltypes.NewString("5"), true, sqltypes.NewInt(5)},
		{sqltypes.KindInt, sqltypes.NewString(" 5 "), true, sqltypes.NewInt(5)},
		{sqltypes.KindInt, sqltypes.NewString("abc"), false, sqltypes.Null},
		{sqltypes.KindDouble, sqltypes.NewInt(2), true, sqltypes.NewDouble(2)},
		{sqltypes.KindString, sqltypes.NewInt(5), false, sqltypes.Null},
		{sqltypes.KindString, sqltypes.NewBool(true), false, sqltypes.Null},
		{sqltypes.KindTime, sqltypes.NewString("1999-01-10T15:09:32Z"), true, sqltypes.NewTime(ts)},
		{sqltypes.KindTime, sqltypes.NewString("not a time"), false, sqltypes.Null},
		{sqltypes.KindBool, sqltypes.NewString("TRUE"), false, sqltypes.Null},
		{sqltypes.KindInt, sqltypes.Null, false, sqltypes.Null},
	}
	for _, c := range cases {
		pv, ok := probeValue(c.col, c.probe)
		if ok != c.ok {
			t.Errorf("probeValue(%v, %v) ok=%v want %v", c.col, c.probe, ok, c.ok)
			continue
		}
		if ok && encodeKey(pv) != encodeKey(c.expect) {
			t.Errorf("probeValue(%v, %v) = %v, does not key-match %v", c.col, c.probe, pv, c.expect)
		}
	}
}

// TestIndexZeroAndNaN: -0.0 and +0.0 are one SQL value and every NaN
// is one value ordered below all numbers; indexed equality/range/order
// must agree with the forced full scan on both.
func TestIndexZeroAndNaN(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	// (1e308*10)-(1e308*10) evaluates to Inf-Inf = NaN inside the engine.
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY, D DOUBLE);
		INSERT INTO T VALUES (1, 0.0); INSERT INTO T VALUES (2, -0.0);
		INSERT INTO T VALUES (3, 1.5); INSERT INTO T VALUES (4, -2.5);
		INSERT INTO T VALUES (5, (1e308*10)-(1e308*10));
		CREATE INDEX IXD ON T (D) USING ORDERED`); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		`SELECT ID FROM T WHERE D = 0.0`,
		`SELECT ID FROM T WHERE D = -0.0`,
		`SELECT ID FROM T WHERE D >= 0.0`,
		`SELECT ID FROM T WHERE D < 0.0`,
		`SELECT ID FROM T WHERE D BETWEEN -1 AND 1`,
		`SELECT ID FROM T ORDER BY D`,
	} {
		indexed, err := db.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		db.SetFullScanOnly(true)
		scanned, err := db.Query(q)
		db.SetFullScanOnly(false)
		if err != nil {
			t.Fatalf("%s (scan): %v", q, err)
		}
		ik, sk := make([]string, 0), make([]string, 0)
		for _, r := range indexed.Data {
			ik = append(ik, encodeKey(r...))
		}
		for _, r := range scanned.Data {
			sk = append(sk, encodeKey(r...))
		}
		sort.Strings(ik)
		sort.Strings(sk)
		if strings.Join(ik, "|") != strings.Join(sk, "|") {
			t.Errorf("%s: index path %d rows, scan %d rows", q, len(indexed.Data), len(scanned.Data))
		}
	}
	// Both zeros satisfy D = 0.0.
	rows, err := db.Query(`SELECT COUNT(*) FROM T WHERE D = 0.0`)
	if err != nil || rows.Data[0][0].Int() != 2 {
		t.Fatalf("D = 0.0 matched %v (err=%v), want 2", rows.Data[0][0], err)
	}
}

// TestHashIndexProbeSemantics: with the canonical encoder, an indexed
// equality behaves exactly like the unindexed scan — the QBE layer's
// all-strings probes keep matching typed columns, and probes the index
// cannot align with fall back to the scan path.
func TestHashIndexProbeSemantics(t *testing.T) {
	for _, using := range []string{"HASH", "ORDERED"} {
		db, err := Open("")
		if err != nil {
			t.Fatal(err)
		}
		if err := db.ExecScript(`
			CREATE TABLE T (ID INTEGER PRIMARY KEY, N INTEGER, S VARCHAR(20), TS TIMESTAMP);
			INSERT INTO T VALUES (1, 5, 'TRUE', '1999-01-10 15:09:32');
			INSERT INTO T VALUES (2, -3, '5', '2001-06-30 08:00:00');
		`); err != nil {
			t.Fatal(err)
		}
		for _, col := range []string{"N", "S", "TS"} {
			if _, err := db.Exec("CREATE INDEX IX_" + col + using + " ON T (" + col + ") USING " + using); err != nil {
				t.Fatal(err)
			}
		}
		queries := []struct {
			sql  string
			arg  sqltypes.Value
			want int // -1: both paths must fail the same way
		}{
			{"SELECT ID FROM T WHERE N = ?", sqltypes.NewString("5"), 1},
			{"SELECT ID FROM T WHERE N = ?", sqltypes.NewInt(5), 1},
			{"SELECT ID FROM T WHERE N = ?", sqltypes.NewDouble(5.0), 1},
			{"SELECT ID FROM T WHERE N = ?", sqltypes.NewString("nope"), -1},
			{"SELECT ID FROM T WHERE S = ?", sqltypes.NewString("TRUE"), 1},
			{"SELECT ID FROM T WHERE S = ?", sqltypes.NewString("missing"), 0},
			{"SELECT ID FROM T WHERE TS = ?", sqltypes.NewString("1999-01-10T15:09:32Z"), 1},
			{"SELECT ID FROM T WHERE TS = ?", sqltypes.NewString("1999-01-10 15:09:32"), 1},
		}
		for _, q := range queries {
			indexed, ierr := db.Query(q.sql, q.arg)
			db.SetFullScanOnly(true)
			scanned, serr := db.Query(q.sql, q.arg)
			db.SetFullScanOnly(false)
			if q.want < 0 {
				// Unalignable probe: the index path must fall back to the
				// scan and surface the same comparison error.
				if ierr == nil || serr == nil || ierr.Error() != serr.Error() {
					t.Errorf("USING %s %s: want matching errors, got %v vs %v", using, q.sql, ierr, serr)
				}
				continue
			}
			if ierr != nil || serr != nil {
				t.Fatalf("USING %s %s: indexed err=%v scanned err=%v", using, q.sql, ierr, serr)
			}
			if len(indexed.Data) != q.want || len(scanned.Data) != q.want {
				t.Errorf("USING %s %s: indexed=%d scanned=%d want %d",
					using, q.sql, len(indexed.Data), len(scanned.Data), q.want)
			}
		}
		db.Close()
	}
}
