// Package sqldb is an embedded relational database engine written from
// scratch for the EASIA reproduction. It provides the subset of SQL the
// archive needs — DDL with PRIMARY KEY / FOREIGN KEY / UNIQUE / NOT NULL
// constraints, DML, and SELECT with joins, aggregation, ordering and
// limits — plus the SQL/MED DATALINK column type with transactional
// link control hooks, write-ahead logging and snapshot persistence.
//
// The engine stands in for the commercial ORDBMS the paper used; see
// DESIGN.md §2 for the substitution rationale.
package sqldb

import (
	"fmt"
	"strings"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , ; . * = < > <= >= <> != + - / % ||
)

type token struct {
	kind tokKind
	text string // keywords are upper-cased; identifiers preserve case but match case-insensitively
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of statement"
	}
	return fmt.Sprintf("%q", t.text)
}

// keywords recognised by the lexer. Anything else alphabetic is an
// identifier. Keeping the set explicit lets identifiers reuse most words.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true,
	"SET": true, "DELETE": true, "CREATE": true, "TABLE": true, "DROP": true,
	"INDEX": true, "ON": true, "PRIMARY": true, "KEY": true, "FOREIGN": true,
	"REFERENCES": true, "UNIQUE": true, "NULL": true, "DEFAULT": true,
	"ORDER": true, "BY": true, "GROUP": true, "HAVING": true, "LIMIT": true,
	"OFFSET": true, "ASC": true, "DESC": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "AS": true, "DISTINCT": true, "LIKE": true,
	"IN": true, "BETWEEN": true, "IS": true, "TRUE": true, "FALSE": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "DOUBLE": true, "FLOAT": true,
	"PRECISION": true, "VARCHAR": true, "CHAR": true, "BOOLEAN": true,
	"TIMESTAMP": true, "BLOB": true, "CLOB": true, "DATALINK": true,
	"LINKTYPE": true, "URL": true, "FILE": true, "LINK": true, "CONTROL": true,
	"NO": true, "INTEGRITY": true, "ALL": true, "SELECTIVE": true, "READ": true,
	"WRITE": true, "PERMISSION": true, "DB": true, "FS": true, "BLOCKED": true,
	"RECOVERY": true, "YES": true, "UNLINK": true, "RESTORE": true,
	"EXPIRY": true, "BEGIN": true, "COMMIT": true, "ROLLBACK": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"CASCADE": true, "RESTRICT": true, "IF": true, "EXISTS": true, "CONSTRAINT": true,
	"USING": true, "HASH": true, "ORDERED": true,
}

// lex converts an SQL string into tokens. It reports errors with byte
// offsets so the web layer can show the failing position.
func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && sql[i+1] == '-': // line comment
			for i < n && sql[i] != '\n' {
				i++
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
				}
				if sql[i] == '\'' {
					if i+1 < n && sql[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(sql[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && sql[i+1] >= '0' && sql[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := sql[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && i+1 < n {
					j := i + 1
					if sql[j] == '+' || sql[j] == '-' {
						j++
					}
					if j < n && sql[j] >= '0' && sql[j] <= '9' {
						i = j + 1
						for i < n && sql[i] >= '0' && sql[i] <= '9' {
							i++
						}
						seenDot = true // force float
					}
				}
				break
			}
			toks = append(toks, token{tokNumber, sql[start:i], start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(sql[i]) {
				i++
			}
			word := sql[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c == '"': // quoted identifier
			start := i
			i++
			j := strings.IndexByte(sql[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("sqldb: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, token{tokIdent, sql[i : i+j], start})
			i += j + 1
		default:
			start := i
			two := ""
			if i+1 < n {
				two = sql[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				toks = append(toks, token{tokSymbol, two, start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', ';', '.', '*', '=', '<', '>', '+', '-', '/', '%', '?':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sqldb: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '$' || c == '#'
}
