package sqldb

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// seedDB creates a database with committed rows and returns its
// directory. The WAL holds the DDL plus n single-row transactions; no
// checkpoint runs, so everything committed is in the log.
func seedDB(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.CheckpointEvery = 0
	if _, err := db.Exec(`CREATE TABLE T (ID INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := db.Exec(`INSERT INTO T VALUES (?)`, sqltypes.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Release the descriptor without checkpointing (Close would fold the
	// WAL into the snapshot and truncate it).
	db.mu.Lock()
	db.closed = true
	wal := db.wal
	db.mu.Unlock()
	if err := wal.close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func countRows(t *testing.T, db *DB) int64 {
	t.Helper()
	rows, err := db.Query(`SELECT COUNT(*) FROM T`)
	if err != nil {
		t.Fatal(err)
	}
	return rows.Data[0][0].Int()
}

// lastFrameOffsets parses the log and returns the byte offset and
// length of every frame, in order.
func frameOffsets(t *testing.T, path string) (offs, lens []int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var off int64
	for off < int64(len(data)) {
		length := int64(getUint32(data[off : off+4]))
		offs = append(offs, off)
		lens = append(lens, 8+length)
		off += 8 + length
	}
	return offs, lens
}

// TestWALTailCorpus pins the truncate-vs-refuse decision for every tail
// shape the crash injector can produce.
func TestWALTailCorpus(t *testing.T) {
	const rowsSeeded = 8

	t.Run("clean tail", func(t *testing.T) {
		dir := seedDB(t, rowsSeeded)
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if got := countRows(t, db); got != rowsSeeded {
			t.Fatalf("recovered %d rows, want %d", got, rowsSeeded)
		}
		if rec := db.Recovery(); rec.Tail != "clean" || rec.TruncatedBytes != 0 {
			t.Fatalf("recovery info %+v, want clean/0", rec)
		}
	})

	t.Run("empty file", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal.log"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if rec := db.Recovery(); rec.Tail != "clean" || rec.ReplayedTx != 0 {
			t.Fatalf("empty log recovery %+v, want clean/0", rec)
		}
	})

	t.Run("torn header", func(t *testing.T) {
		dir := seedDB(t, rowsSeeded)
		wal := filepath.Join(dir, "wal.log")
		// Leave 3 bytes of a new frame header dangling.
		if err := iofault.AppendGarbage(wal, rand.New(rand.NewSource(7)), 3); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if got := countRows(t, db); got != rowsSeeded {
			t.Fatalf("recovered %d rows, want %d", got, rowsSeeded)
		}
		if rec := db.Recovery(); rec.Tail != "torn-tail" || rec.TruncatedBytes != 3 {
			t.Fatalf("recovery info %+v, want torn-tail/3", rec)
		}
	})

	t.Run("torn payload", func(t *testing.T) {
		dir := seedDB(t, rowsSeeded)
		wal := filepath.Join(dir, "wal.log")
		offs, lens := frameOffsets(t, wal)
		last := len(offs) - 1
		// Cut the final frame mid-payload: a crash during the append.
		if err := iofault.TruncateTail(wal, lens[last]-9); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		// The torn frame was the last transaction's COMMIT: that
		// transaction is (correctly) gone, everything before survives.
		if got := countRows(t, db); got != rowsSeeded-1 {
			t.Fatalf("recovered %d rows, want %d", got, rowsSeeded-1)
		}
	})

	t.Run("garbage tail", func(t *testing.T) {
		dir := seedDB(t, rowsSeeded)
		wal := filepath.Join(dir, "wal.log")
		if err := iofault.AppendGarbage(wal, rand.New(rand.NewSource(3)), 200); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if got := countRows(t, db); got != rowsSeeded {
			t.Fatalf("recovered %d rows, want %d", got, rowsSeeded)
		}
		if rec := db.Recovery(); rec.TruncatedBytes != 200 {
			t.Fatalf("truncated %d bytes, want 200", rec.TruncatedBytes)
		}
		// The garbage must be gone from disk: new commits append at the
		// frame boundary, not after the junk.
		db2, err := Open(dir)
		if err != nil {
			t.Fatalf("second reopen after garbage truncation: %v", err)
		}
		defer db2.Close()
		if rec := db2.Recovery(); rec.Tail != "clean" {
			t.Fatalf("second reopen tail %q, want clean", rec.Tail)
		}
	})

	t.Run("final frame CRC flip truncates", func(t *testing.T) {
		dir := seedDB(t, rowsSeeded)
		wal := filepath.Join(dir, "wal.log")
		// Flip a payload bit of the FINAL frame: structurally complete,
		// CRC fails, nothing valid after it → torn, truncate, continue.
		if err := iofault.FlipBit(wal, -2); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		if got := countRows(t, db); got != rowsSeeded-1 {
			t.Fatalf("recovered %d rows, want %d", got, rowsSeeded-1)
		}
	})

	t.Run("mid-log CRC flip refuses", func(t *testing.T) {
		dir := seedDB(t, rowsSeeded)
		wal := filepath.Join(dir, "wal.log")
		offs, _ := frameOffsets(t, wal)
		// Corrupt a payload byte in the middle of the log: intact frames
		// after it prove this was once-durable data. Refuse.
		mid := offs[len(offs)/2] + 9
		if err := iofault.FlipBit(wal, mid); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir)
		if !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("open on mid-log corruption: %v, want ErrWALCorrupt", err)
		}

		// Salvage opt-in recovers the prefix before the damage.
		db, err := OpenWith(dir, Options{Salvage: true})
		if err != nil {
			t.Fatalf("salvage open: %v", err)
		}
		defer db.Close()
		rec := db.Recovery()
		if !rec.Salvaged {
			t.Fatalf("recovery info %+v, want Salvaged", rec)
		}
		if got := countRows(t, db); got >= rowsSeeded || got < 1 {
			t.Fatalf("salvaged %d rows, want a strict prefix of %d", got, rowsSeeded)
		}
	})

	t.Run("mid-log frame header corruption refuses", func(t *testing.T) {
		dir := seedDB(t, rowsSeeded)
		wal := filepath.Join(dir, "wal.log")
		offs, _ := frameOffsets(t, wal)
		// Smash a mid-log LENGTH field to an absurd value. The parser
		// cannot skip the frame, but the byte-scan finds intact frames
		// beyond it → mid-log corruption, refuse.
		f, err := os.OpenFile(wal, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0x7f}, offs[len(offs)/2]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := Open(dir); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("open: %v, want ErrWALCorrupt", err)
		}
	})
}

// TestSnapshotChecksum pins snapshot load behaviour: a bit flip anywhere
// refuses the open with the typed error; clean snapshots round-trip.
func TestSnapshotChecksum(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY, NAME VARCHAR(20));
		INSERT INTO T VALUES (1, 'alpha'); INSERT INTO T VALUES (2, 'beta')`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // checkpoints into snapshot.db
		t.Fatal(err)
	}

	// Clean round-trip first.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, db2); got != 2 {
		t.Fatalf("round-trip lost rows: %d", got)
	}
	if db2.Recovery().SnapshotGen == 0 {
		t.Fatal("checkpointed snapshot still at generation 0")
	}
	db2.Close()

	snap := filepath.Join(dir, "snapshot.db")
	// Corrupt one byte mid-file.
	if err := iofault.FlipBit(snap, 40); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("open on flipped snapshot byte: %v, want ErrSnapshotCorrupt", err)
	}
	// Salvage does NOT override snapshot corruption — there is no safe
	// prefix of a snapshot.
	if _, err := OpenWith(dir, Options{Salvage: true}); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("salvage open on corrupt snapshot: %v, want ErrSnapshotCorrupt", err)
	}
}

// TestSnapshotLegacyFormatRefused: a pre-checksum EASIADB1 snapshot must
// refuse with the typed error, not parse garbage.
func TestSnapshotLegacyFormatRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.db"), []byte("EASIADB1junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("open on legacy snapshot: %v, want ErrSnapshotCorrupt", err)
	}
}

// TestFsyncPoisonsDB: after a failed WAL fsync no later commit may be
// acknowledged, even once the fault clears — fsyncgate semantics. A
// fresh reopen of the directory recovers everything acknowledged before
// the failure.
func TestFsyncPoisonsDB(t *testing.T) {
	dir := t.TempDir()
	faults := iofault.New(nil)
	db, err := OpenWith(dir, Options{FS: faults})
	if err != nil {
		t.Fatal(err)
	}
	db.CheckpointEvery = 0
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY);
		INSERT INTO T VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	faults.FailSync("wal.log")
	if _, err := db.Exec(`INSERT INTO T VALUES (2)`); err == nil {
		t.Fatal("commit acknowledged through a failing fsync")
	}
	// The failed transaction's effects must be rolled back in memory.
	if got := countRows(t, db); got != 1 {
		t.Fatalf("failed commit left %d rows visible, want 1", got)
	}

	// The fault clears — but the DB must stay poisoned: the kernel may
	// have dropped the dirty pages the failed fsync covered.
	faults.HealSync("wal.log")
	if _, err := db.Exec(`INSERT INTO T VALUES (3)`); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("commit after heal: %v, want ErrPoisoned", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("checkpoint on poisoned DB: %v, want ErrPoisoned", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("closing a poisoned DB must still release it: %v", err)
	}

	// Reopen on a clean disk: everything acknowledged pre-failure is
	// there, nothing after it.
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := countRows(t, db2); got != 1 {
		t.Fatalf("recovered %d rows, want 1", got)
	}
}

// TestCheckpointCrashWindows drives a crash into every phase of the
// checkpoint (snapshot tmp write, rename, dir sync, WAL rotation) and
// asserts the reopened database always holds exactly the committed
// rows — the epoch mechanism resolves which side of the rename won.
func TestCheckpointCrashWindows(t *testing.T) {
	const rows = 6
	// Probe how many mutating ops a checkpoint performs, then crash at
	// each op index in turn.
	for crashAt := 1; crashAt <= 24; crashAt++ {
		dir := t.TempDir()
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		db.CheckpointEvery = 0
		if _, err := db.Exec(`CREATE TABLE T (ID INTEGER PRIMARY KEY)`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if _, err := db.Exec(`INSERT INTO T VALUES (?)`, sqltypes.NewInt(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Checkpoint(); err != nil { // gen 0 → 1, rows in snapshot
			t.Fatal(err)
		}
		// More rows into the gen-1 WAL.
		for i := rows; i < rows+2; i++ {
			if _, err := db.Exec(`INSERT INTO T VALUES (?)`, sqltypes.NewInt(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil { // clean close: snapshot gen 2
			t.Fatal(err)
		}

		// Reopen under the injector and crash mid-checkpoint.
		faults := iofault.New(nil)
		db, err = OpenWith(dir, Options{FS: faults})
		if err != nil {
			t.Fatal(err)
		}
		db.CheckpointEvery = 0
		if _, err := db.Exec(`INSERT INTO T VALUES (?)`, sqltypes.NewInt(100)); err != nil {
			t.Fatal(err)
		}
		faults.CrashAfterOps("", crashAt, 0)
		cpErr := db.Checkpoint()
		crashed := faults.Crashed()
		db.Close() //nolint:errcheck // post-crash close releases fds only
		if !crashed && cpErr == nil {
			// Crash point beyond the checkpoint's op count: nothing to test
			// at larger indices either, but keep looping — later indices
			// stay cheap no-ops and the loop bound documents the budget.
			continue
		}

		db2, err := Open(dir)
		if err != nil {
			t.Fatalf("crashAt=%d: reopen after checkpoint crash: %v", crashAt, err)
		}
		if got := countRows(t, db2); got != rows+3 {
			t.Fatalf("crashAt=%d: recovered %d rows, want %d (recovery=%+v)", crashAt, got, rows+3, db2.Recovery())
		}
		db2.Close()
	}
}

// TestEpochFrameFormat sanity-checks the log header frame so on-disk
// compatibility breaks loudly, not silently.
func TestEpochFrameFormat(t *testing.T) {
	payload := encodeWALRecord(walRecord{op: walOpEpoch}, 42)
	rec, epoch, err := decodeWALRecord(payload)
	if err != nil || rec.op != walOpEpoch || epoch != 42 {
		t.Fatalf("epoch frame round-trip: rec=%+v epoch=%d err=%v", rec, epoch, err)
	}
	frame := frameBytes(payload)
	if getUint32(frame[4:8]) != crc32.ChecksumIEEE(payload) {
		t.Fatal("frame CRC mismatch")
	}
}
