package sqldb

import (
	"bytes"
	"fmt"

	"repro/internal/sqltypes"
)

// The fold-based aggregation pipeline.
//
// The legacy executor (kept behind DB.SetLegacyAggregation as the
// ablation baseline and property-test oracle) materialises every source
// row, partitions the materialised set into groups via a string-keyed
// map of row slices, and then walks each group once per aggregate call
// (groupRows/evalAgg/computeAggregate in select.go). That costs O(rows)
// memory for the retained groups plus one key-string allocation per
// input row.
//
// The fold pipeline replaces that with per-group accumulator structs:
// every aggregate call in the query gets one slot (aggCall), every
// group one accumulator per slot (aggAccum), and each source row is
// folded into its group's accumulators as it streams out of the scan —
// no row is retained beyond the fold. Two grouping strategies share the
// fold:
//
//   - streaming ("group-ordered" in Stmt.AccessPath): when the chosen
//     ordered index emits rows clustered by the GROUP BY columns
//     (pathClustersGroups in planner.go — equality-constant columns are
//     skipped exactly like ORDER BY satisfaction does), consecutive
//     equal group keys form one run, so the folder keeps a single open
//     group and O(groups) total state, never a hash table.
//
//   - hash aggregation ("hash-agg"): arbitrary input order; groups live
//     in a map keyed by the canonical tuple encoding (key.go). The
//     per-row lookup converts the scratch key buffer with a
//     no-allocation map access; a key string is allocated only when a
//     new group first appears.
//
// Group identity is the canonical encoding of the evaluated GROUP BY
// expressions, so NULL, '' and 0 vs '0' land in distinct groups (class
// tags differ) in every strategy. The one shared caveat is the numeric
// collision window: integers beyond ±2^53 that share a float64 image
// group together — in the legacy path, the hash folder and the
// streaming folder alike (the ordered index clusters by the same
// encoding), so all strategies stay result-identical.

// aggCall is one aggregate invocation appearing in the projection,
// HAVING or bound ORDER BY of an aggregated SELECT. Collected once at
// plan time; the slot index into groupState.accs is recorded in
// selectPlan.aggSlots keyed by AST node identity.
type aggCall struct {
	fn   string
	star bool // COUNT(*)
	arg  Expr // nil for COUNT(*) and for mis-arity calls (error at finalize)
}

// aggAccum is the running state of one aggregate call within one group.
// One struct serves every aggregate kind; fold and finalize only touch
// the fields their function reads. Evaluation errors met during the
// fold are DEFERRED into err and surfaced by finalize: the legacy
// executor only evaluates aggregates for groups that survive HAVING,
// so a group the HAVING clause discards must not fail the query just
// because its rows were folded.
type aggAccum struct {
	count   int64
	sumF    float64
	sumI    int64
	allInt  bool
	minV    sqltypes.Value
	maxV    sqltypes.Value
	started bool
	err     error
}

// groupState is one group's accumulators plus its first source row:
// scalar (non-aggregate) parts of the projection evaluate against it,
// exactly as the legacy evaluator uses group[0]. firstRow == nil marks
// the empty group of an aggregate-only query over no rows.
type groupState struct {
	firstRow []sqltypes.Value
	accs     []aggAccum
}

func (plan *selectPlan) newGroupState() *groupState {
	gs := &groupState{accs: make([]aggAccum, len(plan.aggCalls))}
	for i := range gs.accs {
		gs.accs[i].allInt = true
		gs.accs[i].minV = sqltypes.Null
		gs.accs[i].maxV = sqltypes.Null
	}
	return gs
}

// collectAggCalls records every aggregate call the fold evaluator can
// reach, mirroring evalAggFold's traversal exactly: aggregates under
// scalar function arguments and binary/unary operators are reachable;
// anything under other node kinds (IN, BETWEEN, IS NULL) is evaluated
// row-wise against the group's first row, where an aggregate errors in
// the legacy path too, so it needs no slot. Runs once per plan build.
func collectAggCalls(plan *selectPlan) {
	if !plan.aggregated {
		return
	}
	plan.aggSlots = make(map[*FuncCall]int)
	add := func(n *FuncCall) {
		if _, ok := plan.aggSlots[n]; ok {
			return
		}
		c := aggCall{fn: n.Name, star: n.Star}
		if !n.Star && len(n.Args) == 1 {
			c.arg = n.Args[0]
		}
		plan.aggSlots[n] = len(plan.aggCalls)
		plan.aggCalls = append(plan.aggCalls, c)
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *FuncCall:
			if isAggregate(n.Name) {
				add(n)
				return
			}
			for _, a := range n.Args {
				walk(a)
			}
		case *Binary:
			walk(n.L)
			walk(n.R)
		case *Unary:
			walk(n.X)
		}
	}
	for _, e := range plan.proj {
		walk(e)
	}
	if plan.stmt.Having != nil {
		walk(plan.stmt.Having)
	}
	for i, o := range plan.stmt.OrderBy {
		if plan.orderBound[i] {
			walk(o.Expr)
		}
	}
}

// foldRow folds one source row into the group's accumulators, matching
// computeAggregate's per-row semantics exactly: NULL arguments are
// skipped, SUM/AVG demand numeric operands, MIN/MAX use
// sqltypes.Compare and keep the incumbent on incomparable pairs.
// Evaluation errors defer into the accumulator (see aggAccum.err) so
// HAVING-excluded groups never surface them.
func (plan *selectPlan) foldRow(gs *groupState, row []sqltypes.Value, ctx *evalCtx) {
	if gs.firstRow == nil {
		gs.firstRow = row
	}
	for i := range plan.aggCalls {
		c := &plan.aggCalls[i]
		acc := &gs.accs[i]
		if c.star {
			acc.count++
			continue
		}
		if c.arg == nil {
			continue // arity error surfaces at finalize
		}
		ctx.vals = row
		v, err := evalExpr(c.arg, ctx)
		if err != nil {
			if acc.err == nil {
				acc.err = err
			}
			continue
		}
		if v.IsNull() {
			continue
		}
		foldValue(acc, c.fn, v, 1)
	}
}

// foldValue folds one non-NULL argument value, repeated n times (n > 1
// only for the index-key fold, where one key stands for n identical
// rows), into the accumulator. Shared by the row fold and the
// index-only grouped fold so their semantics cannot drift. SUM/AVG add
// the double image n times rather than multiplying — floating-point
// addition is what the legacy executor does per row, and f*n rounds
// differently (e.g. ten rows of 0.1).
func foldValue(acc *aggAccum, fn string, v sqltypes.Value, n int64) {
	acc.count += n
	switch fn {
	case "COUNT":
	case "SUM", "AVG":
		f, ok := v.AsDouble()
		if !ok {
			if acc.err == nil {
				acc.err = fmt.Errorf("sqldb: %s over non-numeric value", fn)
			}
			return
		}
		for i := int64(0); i < n; i++ {
			acc.sumF += f
		}
		if v.Kind() == sqltypes.KindInt {
			acc.sumI += v.Int() * n
		} else {
			acc.allInt = false
		}
	case "MIN":
		// fn is fixed per slot, so only the extremum finalize reads is
		// maintained (one Compare per row, not two).
		if !acc.started {
			acc.minV = v
			acc.started = true
			return
		}
		if cmp, ok := sqltypes.Compare(v, acc.minV); ok && cmp < 0 {
			acc.minV = v
		}
	case "MAX":
		if !acc.started {
			acc.maxV = v
			acc.started = true
			return
		}
		if cmp, ok := sqltypes.Compare(v, acc.maxV); ok && cmp > 0 {
			acc.maxV = v
		}
	}
}

// finalize extracts the aggregate's value from a folded accumulator,
// mirroring computeAggregate's result rules (SUM/AVG over an empty or
// all-NULL group are NULL; integer SUM stays integer).
func (c *aggCall) finalize(acc *aggAccum) (sqltypes.Value, error) {
	if c.star {
		return sqltypes.NewInt(acc.count), nil
	}
	if c.arg == nil {
		return sqltypes.Null, fmt.Errorf("sqldb: %s expects exactly one argument", c.fn)
	}
	if acc.err != nil {
		return sqltypes.Null, acc.err
	}
	switch c.fn {
	case "COUNT":
		return sqltypes.NewInt(acc.count), nil
	case "SUM":
		if acc.count == 0 {
			return sqltypes.Null, nil
		}
		if acc.allInt {
			return sqltypes.NewInt(acc.sumI), nil
		}
		return sqltypes.NewDouble(acc.sumF), nil
	case "AVG":
		if acc.count == 0 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewDouble(acc.sumF / float64(acc.count)), nil
	case "MIN":
		return acc.minV, nil
	case "MAX":
		return acc.maxV, nil
	}
	return sqltypes.Null, fmt.Errorf("sqldb: unknown aggregate %s", c.fn)
}

// evalAggFold evaluates an expression over a folded group: aggregate
// calls read their accumulator slot, everything else mirrors evalAgg —
// scalar functions and operators recurse with evaluated operands
// (preserving three-valued logic), and leaf expressions evaluate
// against the group's first row.
func evalAggFold(e Expr, plan *selectPlan, gs *groupState, ctx *evalCtx) (sqltypes.Value, error) {
	switch n := e.(type) {
	case *FuncCall:
		if isAggregate(n.Name) {
			slot, ok := plan.aggSlots[n]
			if !ok {
				return sqltypes.Null, fmt.Errorf("sqldb: aggregate %s outside GROUP BY context", n.Name)
			}
			return plan.aggCalls[slot].finalize(&gs.accs[slot])
		}
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			v, err := evalAggFold(a, plan, gs, ctx)
			if err != nil {
				return sqltypes.Null, err
			}
			args[i] = &Literal{Val: v}
		}
		return evalFunc(&FuncCall{Name: n.Name, Args: args}, ctx)
	case *Binary:
		l, err := evalAggFold(n.L, plan, gs, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		r, err := evalAggFold(n.R, plan, gs, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		return evalBinary(&Binary{Op: n.Op, L: &Literal{Val: l}, R: &Literal{Val: r}}, ctx)
	case *Unary:
		v, err := evalAggFold(n.X, plan, gs, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		return evalUnary(&Unary{Op: n.Op, X: &Literal{Val: v}}, ctx)
	default:
		if gs.firstRow == nil {
			// Aggregate query over an empty input: scalar parts are NULL.
			if _, ok := e.(*Literal); ok {
				return evalExpr(e, ctx)
			}
			return sqltypes.Null, nil
		}
		ctx.vals = gs.firstRow
		return evalExpr(e, ctx)
	}
}

// groupFolder routes source rows into group accumulators. streaming
// mode trusts the input to arrive clustered by group key (consecutive
// equal keys) and keeps one open group; hash mode accepts any order.
type groupFolder struct {
	plan      *selectPlan
	streaming bool
	keyBuf    []byte
	curKey    []byte
	cur       *groupState
	byKey     map[string]*groupState
	groups    []*groupState // first-seen (streaming: scan) order

	// maxGroups > 0 (streaming only) stops the fold once that many
	// groups have closed: with a group-ordered scan, LIMIT k and no
	// HAVING/ORDER BY/DISTINCT reshaping the group list, rows beyond the
	// (k+1)th group key can never appear in the result, so the index
	// walk halts there (grouped-fold early-stop).
	maxGroups int
	stopped   bool
}

// groupFootprint estimates the retained bytes of one hash-agg group:
// the groupState shell plus one accumulator per aggregate slot.
func groupFootprint(slots int) int64 { return 64 + 48*int64(slots) }

func newGroupFolder(plan *selectPlan, streaming bool) *groupFolder {
	f := &groupFolder{plan: plan, streaming: streaming}
	if streaming {
		f.maxGroups = plan.groupStop
	} else {
		f.byKey = make(map[string]*groupState)
	}
	return f
}

// add folds one kept source row into its group.
func (f *groupFolder) add(row []sqltypes.Value, ctx *evalCtx) error {
	plan := f.plan
	groupBy := plan.stmt.GroupBy
	if len(groupBy) == 0 {
		if f.cur == nil {
			f.cur = plan.newGroupState()
			f.groups = append(f.groups, f.cur)
		}
		plan.foldRow(f.cur, row, ctx)
		return nil
	}
	f.keyBuf = f.keyBuf[:0]
	ctx.vals = row
	for _, g := range groupBy {
		v, err := evalExpr(g, ctx)
		if err != nil {
			return err
		}
		f.keyBuf = appendKey(f.keyBuf, v)
	}
	var gs *groupState
	if f.streaming {
		if f.cur != nil && bytes.Equal(f.keyBuf, f.curKey) {
			gs = f.cur
		} else {
			if f.maxGroups > 0 && len(f.groups) >= f.maxGroups {
				// The limit-th group just closed; ignore this row and
				// tell the scan to stop.
				f.stopped = true
				return nil
			}
			gs = plan.newGroupState()
			f.groups = append(f.groups, gs)
			f.cur = gs
			f.curKey = append(f.curKey[:0], f.keyBuf...)
		}
	} else {
		gs = f.byKey[string(f.keyBuf)] // no-allocation map lookup
		if gs == nil {
			// A new hash-agg group retains its key and accumulators for
			// the statement's lifetime: charge the memory budget.
			if err := ctx.intr.charge(int64(len(f.keyBuf)) + groupFootprint(len(plan.aggCalls))); err != nil {
				return err
			}
			gs = plan.newGroupState()
			f.byKey[string(f.keyBuf)] = gs
			f.groups = append(f.groups, gs)
		}
	}
	plan.foldRow(gs, row, ctx)
	return nil
}

// finish returns the folded groups. With no GROUP BY the whole input is
// one group even when empty, per SQL (COUNT(*) over no rows is 0).
func (f *groupFolder) finish() []*groupState {
	if len(f.plan.stmt.GroupBy) == 0 && len(f.groups) == 0 {
		f.groups = append(f.groups, f.plan.newGroupState())
	}
	return f.groups
}

// runFoldAggregate executes an aggregated SELECT through the fold
// pipeline: scan (or join), fold rows into group accumulators, then
// evaluate HAVING and the projection per group. It returns the
// projected output rows; the caller applies DISTINCT/ORDER BY/LIMIT.
// Read-only on the plan like the rest of runSelect.
func (db *DB) runFoldAggregate(plan *selectPlan, ctx *evalCtx) ([]outRow, error) {
	s := plan.stmt
	var groups []*groupState
	if len(plan.tables) == 1 {
		g, err := db.foldSingleTable(plan, ctx)
		if err != nil {
			return nil, err
		}
		groups = g
	} else {
		rows, err := db.joinRows(plan, ctx)
		if err != nil {
			return nil, err
		}
		folder := newGroupFolder(plan, false)
		for _, r := range rows {
			if err := ctx.intr.check(); err != nil {
				return nil, err
			}
			if s.Where != nil {
				ctx.vals = r
				v, err := evalExpr(s.Where, ctx)
				if err != nil {
					return nil, err
				}
				if v.IsNull() || !truthy(v) {
					continue
				}
			}
			if err := folder.add(r, ctx); err != nil {
				return nil, err
			}
		}
		groups = folder.finish()
	}

	out := make([]outRow, 0, len(groups))
	for _, gs := range groups {
		if s.Having != nil {
			v, err := evalAggFold(s.Having, plan, gs, ctx)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !truthy(v) {
				continue
			}
		}
		vals := ctx.ar.alloc(len(plan.proj))
		for i, e := range plan.proj {
			v, err := evalAggFold(e, plan, gs, ctx)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out = append(out, outRow{vals: vals, gs: gs})
	}
	return out, nil
}

// foldSingleTable scans the single FROM table (through the planned
// access path when it serves this execution) folding kept rows as they
// stream by — no row set is materialised. Streaming grouping is used
// only when the plan marked the path as group-clustered AND the path
// actually handled the scan; a probe-misalignment fallback to the heap
// scan loses the clustering, so it folds through the hash strategy.
func (db *DB) foldSingleTable(plan *selectPlan, ctx *evalCtx) ([]*groupState, error) {
	s := plan.stmt
	ft := plan.tables[0]
	var foldErr error
	emit := func(f *groupFolder) func(id rowID, vals []sqltypes.Value) bool {
		return func(_ rowID, vals []sqltypes.Value) bool {
			// Per-row cancellation checkpoint for the fold scans.
			if err := ctx.intr.check(); err != nil {
				foldErr = err
				return false
			}
			if s.Where != nil {
				ctx.vals = vals
				v, err := evalExpr(s.Where, ctx)
				if err != nil {
					foldErr = err
					return false
				}
				if v.IsNull() || !truthy(v) {
					return true
				}
			}
			if err := f.add(vals, ctx); err != nil {
				foldErr = err
				return false
			}
			return !f.stopped
		}
	}
	// Index-only grouped fold: whole groups answered from index keys,
	// zero heap fetches (aggplan.go). handled=false — probe misalignment
	// or inexact keys — falls to the scan-and-fold paths below.
	if plan.groupIdxFold != nil && !db.fullScanOnly {
		groups, handled, err := db.runGroupIndexFold(plan, ctx)
		if err != nil {
			return nil, err
		}
		if handled {
			return groups, nil
		}
	}
	if plan.path != nil && !db.fullScanOnly {
		folder := newGroupFolder(plan, plan.streamGroups)
		handled, err := scanAccessPath(ft.data, plan.path, ctx, emit(folder))
		if err != nil {
			return nil, err
		}
		if foldErr != nil {
			return nil, foldErr
		}
		if handled {
			return folder.finish(), nil
		}
		// handled=false emits nothing: fall through with a fresh folder.
	}
	folder := newGroupFolder(plan, false)
	ft.data.scan(ctx.snap, emit(folder))
	if foldErr != nil {
		return nil, foldErr
	}
	return folder.finish(), nil
}
