package sqldb

import (
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/sqltypes"
)

// Index kind names as they appear in CREATE INDEX ... USING and in the
// catalogue. The default for CREATE INDEX without USING is ORDERED: it
// serves every shape a hash index serves (point lookups cost O(log n)
// instead of O(1)) and additionally range, prefix and in-order scans,
// which dominate the archive's scientific-metadata queries.
const (
	IndexKindHash    = "HASH"
	IndexKindOrdered = "ORDERED"
)

// idxEntry is one stamped index posting: row id plus the MVCC begin/end
// stamps of the key↔row association. An entry is visible at a snapshot
// iff a version of the row visible at that snapshot has this key, which
// is what lets index-only aggregates (COUNT from posting counts, MIN/MAX
// from boundary keys) stay exact while dead postings linger until
// vacuum. Updates that keep a key untouched leave its entry alone;
// key-changing updates end the old entry and add a new one.
type idxEntry struct {
	id    rowID
	begin atomic.Uint64
	end   atomic.Uint64
}

func (e *idxEntry) visibleAt(snap uint64) bool {
	return visibleStamp(e.begin.Load(), e.end.Load(), snap)
}

// entryCurrent reports whether the posting is the latest live one
// (latest-mode visibility; also the vacuum keep-predicate, since vacuum
// runs under the barrier with every stamp resolved).
func entryCurrent(e *idxEntry) bool {
	return e.begin.Load() != abortedStamp && e.end.Load() == 0
}

// liveEntry returns a posting stamped as committed from the start —
// index backfill (CREATE INDEX over existing rows, snapshot load) and
// the direct index unit tests use it.
func liveEntry(id rowID) *idxEntry {
	e := &idxEntry{id: id}
	e.begin.Store(baseStamp)
	return e
}

// findCurrentEntry locates the live posting for (row id, key-of-vals),
// the one a delete or key-changing update must end. Caller holds the
// table latch at least shared plus the table's writer slot.
func findCurrentEntry(idx secondaryIndex, vals []sqltypes.Value, id rowID) *idxEntry {
	for _, e := range idx.lookupKey(idx.rowKeyOf(vals)) {
		if e.id == id && entryCurrent(e) {
			return e
		}
	}
	return nil
}

// indexedCols is the column tuple an index is declared over, shared by
// the hash and ordered implementations. Keys are the concatenated
// canonical encodings of the column values in declaration order (see
// key.go); the escape/terminator scheme keeps concatenation unambiguous,
// so a composite key's byte order equals the column-by-column tuple
// order and every single-column prefix of a composite key is a byte
// prefix of the full key — the property the planner's prefix scans rely
// on.
type indexedCols struct {
	cols []string // upper-cased column names, index order
	pos  []int    // schema positions, parallel to cols
}

func newIndexedCols(schema *TableSchema, cols []string) indexedCols {
	ic := indexedCols{cols: make([]string, len(cols)), pos: make([]int, len(cols))}
	for i, c := range cols {
		ic.cols[i] = strings.ToUpper(c)
		ic.pos[i] = schema.ColIndex(c)
	}
	return ic
}

func (ic indexedCols) columns() []string { return ic.cols }

// rowKeyOf encodes the index key of one stored row.
func (ic indexedCols) rowKeyOf(vals []sqltypes.Value) string {
	b := make([]byte, 0, 16*len(ic.pos))
	for _, p := range ic.pos {
		b = appendKey(b, vals[p])
	}
	return string(b)
}

// secondaryIndex is the access interface shared by the hash and ordered
// index implementations. Keys are canonical encodings (see encodeKey);
// maintenance callers pass the full stored row (values already coerced
// to their column types), while lookup callers must align probes via
// probeValue before encoding. Structural mutation (addRow, removeRow,
// sweepDead) requires the table latch exclusively; lookups require it
// shared (postings' stamps are atomics and may be read lock-free once
// located).
type secondaryIndex interface {
	kindName() string
	columns() []string
	rowKeyOf(vals []sqltypes.Value) string
	addRow(vals []sqltypes.Value, e *idxEntry)
	// removeRow structurally removes the current posting for id under
	// the key of vals (vacuum, backfill undo and unit tests; DML ends
	// postings by stamp instead).
	removeRow(vals []sqltypes.Value, id rowID)
	// lookupKey returns the postings stored under one encoded key (the
	// full column tuple). The returned slice aliases index storage;
	// callers must not mutate it and must copy what they keep past the
	// table latch.
	lookupKey(k string) []*idxEntry
	// sweepDead structurally removes every non-current posting (vacuum,
	// under the global barrier).
	sweepDead()
}

// rangeIndex is the extra surface of indexes that keep keys in order.
type rangeIndex interface {
	secondaryIndex
	// scanRange visits entries with lo <= key <= hi in key order
	// (reversed when desc); nil bounds are open ends. An exclusive
	// bound skips entries equal to the bound key. The visitor returns
	// false to stop.
	scanRange(lo, hi *keyBound, desc bool, f func(k string, es []*idxEntry) bool)
}

// keyBound is one end of an ordered-index scan.
type keyBound struct {
	key  string
	incl bool
}

// ---------- snapshot-filtered access helpers ----------
//
// Readers go through these: they hold the table latch shared only for
// bounded stretches (one point lookup, or one batch of keys), filter
// postings down to plain row ids visible at the snapshot, and hand the
// caller latch-free data. Because a reader never holds two table
// latches at once (join probes re-enter per probe, after the outer
// batch is released), reader/writer latch cycles cannot form.

// idxScanBatch is how many keys a range scan gathers per latch hold.
const idxScanBatch = 128

// lookupVisible returns the row ids visible at snap under one key.
func lookupVisible(td *tableData, idx secondaryIndex, k string, snap uint64) []rowID {
	td.latch.RLock()
	es := idx.lookupKey(k)
	var ids []rowID
	for _, e := range es {
		if e.visibleAt(snap) {
			ids = append(ids, e.id)
		}
	}
	td.latch.RUnlock()
	return ids
}

// scanVisibleRange drives a resumable, batched range scan: up to
// idxScanBatch keys are collected per latch hold, then f runs
// latch-free over each key's visible ids (keys with no visible posting
// are skipped). Between batches the scan resumes strictly after the
// last delivered key; committed-after-snapshot writers only add
// postings invisible at snap, and structural removal happens only under
// the global barrier, so the resumed walk observes exactly the
// snapshot's key set.
func scanVisibleRange(td *tableData, rix rangeIndex, lo, hi *keyBound, desc bool, snap uint64, f func(k string, ids []rowID) bool) {
	type keyIDs struct {
		k   string
		ids []rowID
	}
	batch := make([]keyIDs, 0, idxScanBatch)
	flat := make([]rowID, 0, 4*idxScanBatch)
	for {
		batch, flat = batch[:0], flat[:0]
		td.latch.RLock()
		rix.scanRange(lo, hi, desc, func(k string, es []*idxEntry) bool {
			start := len(flat)
			for _, e := range es {
				if e.visibleAt(snap) {
					flat = append(flat, e.id)
				}
			}
			if len(flat) > start {
				batch = append(batch, keyIDs{k: k, ids: flat[start:len(flat):len(flat)]})
			}
			return len(batch) < idxScanBatch
		})
		td.latch.RUnlock()
		for _, kv := range batch {
			if !f(kv.k, kv.ids) {
				return
			}
		}
		if len(batch) < idxScanBatch {
			return
		}
		resume := &keyBound{key: batch[len(batch)-1].k, incl: false}
		if desc {
			hi = resume
		} else {
			lo = resume
		}
	}
}

// ---------- hash index ----------

// hashIndex is a secondary equality index from canonical key → postings.
// A composite hash index only serves equality on its full column tuple.
type hashIndex struct {
	name string
	indexedCols
	entries map[string][]*idxEntry
}

func newHashIndex(name string, schema *TableSchema, cols []string) *hashIndex {
	return &hashIndex{name: name, indexedCols: newIndexedCols(schema, cols), entries: make(map[string][]*idxEntry)}
}

func (h *hashIndex) kindName() string { return IndexKindHash }

func (h *hashIndex) addRow(vals []sqltypes.Value, e *idxEntry) {
	k := h.rowKeyOf(vals)
	h.entries[k] = append(h.entries[k], e)
}

func (h *hashIndex) removeRow(vals []sqltypes.Value, id rowID) {
	k := h.rowKeyOf(vals)
	es := h.entries[k]
	for i, e := range es {
		if e.id == id && entryCurrent(e) {
			h.entries[k] = append(es[:i], es[i+1:]...)
			break
		}
	}
	if len(h.entries[k]) == 0 {
		delete(h.entries, k)
	}
}

func (h *hashIndex) lookupKey(k string) []*idxEntry { return h.entries[k] }

func (h *hashIndex) sweepDead() {
	for k, es := range h.entries {
		kept := es[:0]
		for _, e := range es {
			if entryCurrent(e) {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(h.entries, k)
		} else {
			h.entries[k] = kept
		}
	}
}

// ---------- ordered index (B+tree) ----------

// Node fan-out. Leaves hold up to btreeLeafMax key/posting entries,
// inner nodes up to btreeInnerMax children; splits happen one past the
// cap.
const (
	btreeLeafMax  = 64
	btreeInnerMax = 64
)

// orderedIndex is a B+tree over canonical key encodings supporting
// point, range and in-order scans. All keys live in leaves; inner nodes
// hold separators with len(seps) == len(children)-1, child i spanning
// [seps[i-1], seps[i]). Structurally removing the last posting under a
// key removes the leaf entry, and a leaf that empties out is merged away
// (its parent drops the hollow child and the adjoining separator), so
// delete-heavy tables do not accumulate dead nodes once vacuum sweeps
// the dead postings; within still-populated leaves no rebalancing
// happens, which is the right trade for the archive's insert-mostly
// workload.
type orderedIndex struct {
	name string
	indexedCols
	root *btreeNode
}

type btreeNode struct {
	leaf     bool
	keys     []string      // leaf entries
	ents     [][]*idxEntry // parallel to keys
	seps     []string      // inner separators
	children []*btreeNode
}

func newOrderedIndex(name string, schema *TableSchema, cols []string) *orderedIndex {
	return &orderedIndex{
		name:        name,
		indexedCols: newIndexedCols(schema, cols),
		root:        &btreeNode{leaf: true},
	}
}

func (ix *orderedIndex) kindName() string { return IndexKindOrdered }

func (ix *orderedIndex) addRow(vals []sqltypes.Value, e *idxEntry) {
	right, sep := ix.root.insert(ix.rowKeyOf(vals), e)
	if right != nil {
		ix.root = &btreeNode{
			seps:     []string{sep},
			children: []*btreeNode{ix.root, right},
		}
	}
}

func (ix *orderedIndex) removeRow(vals []sqltypes.Value, id rowID) {
	ix.removeEntry(ix.rowKeyOf(vals), func(e *idxEntry) bool {
		return e.id == id && entryCurrent(e)
	})
}

// removeEntry structurally removes the first posting under k matching
// the predicate and collapses single-child roots so the tree height
// tracks the live key count back down after bulk removal.
func (ix *orderedIndex) removeEntry(k string, match func(*idxEntry) bool) {
	ix.root.remove(k, match)
	for !ix.root.leaf && len(ix.root.children) == 1 {
		ix.root = ix.root.children[0]
	}
}

func (ix *orderedIndex) lookupKey(k string) []*idxEntry {
	n := ix.root
	for !n.leaf {
		n = n.children[n.childFor(k)]
	}
	i := sort.SearchStrings(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.ents[i]
	}
	return nil
}

func (ix *orderedIndex) scanRange(lo, hi *keyBound, desc bool, f func(k string, es []*idxEntry) bool) {
	if desc {
		ix.root.descend(lo, hi, f)
	} else {
		ix.root.ascend(lo, hi, f)
	}
}

func (ix *orderedIndex) sweepDead() {
	type deadPosting struct {
		k string
		e *idxEntry
	}
	var dead []deadPosting
	ix.root.ascend(nil, nil, func(k string, es []*idxEntry) bool {
		for _, e := range es {
			if !entryCurrent(e) {
				dead = append(dead, deadPosting{k: k, e: e})
			}
		}
		return true
	})
	for _, d := range dead {
		victim := d.e
		ix.removeEntry(d.k, func(e *idxEntry) bool { return e == victim })
	}
}

// nodeCount reports the number of tree nodes (diagnostics and the
// delete-reclaim regression test).
func (ix *orderedIndex) nodeCount() int { return ix.root.count() }

func (n *btreeNode) count() int {
	c := 1
	for _, ch := range n.children {
		c += ch.count()
	}
	return c
}

// childFor routes key k: entries equal to a separator live in the child
// to its right, matching the "separator = first key of right sibling"
// split convention.
func (n *btreeNode) childFor(k string) int {
	return sort.Search(len(n.seps), func(i int) bool { return n.seps[i] > k })
}

// insert adds a posting under key k, returning a new right sibling and
// its separator when the node split.
func (n *btreeNode) insert(k string, e *idxEntry) (*btreeNode, string) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.ents[i] = append(n.ents[i], e)
			return nil, ""
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.ents = append(n.ents, nil)
		copy(n.ents[i+1:], n.ents[i:])
		n.ents[i] = []*idxEntry{e}
		if len(n.keys) <= btreeLeafMax {
			return nil, ""
		}
		mid := len(n.keys) / 2
		right := &btreeNode{
			leaf: true,
			keys: append([]string(nil), n.keys[mid:]...),
			ents: append([][]*idxEntry(nil), n.ents[mid:]...),
		}
		n.keys = n.keys[:mid:mid]
		n.ents = n.ents[:mid:mid]
		return right, right.keys[0]
	}
	ci := n.childFor(k)
	right, sep := n.children[ci].insert(k, e)
	if right == nil {
		return nil, ""
	}
	n.seps = append(n.seps, "")
	copy(n.seps[ci+1:], n.seps[ci:])
	n.seps[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= btreeInnerMax {
		return nil, ""
	}
	mid := len(n.seps) / 2
	up := n.seps[mid]
	r := &btreeNode{
		seps:     append([]string(nil), n.seps[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.seps = n.seps[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return r, up
}

// remove deletes the first posting under key k matching the predicate
// and reports whether this node has become empty (merge-at-empty
// reclamation: a parent drops an emptied child together with one
// separator, so hollow leaves do not linger after delete-heavy
// workloads; partially-filled nodes are never rebalanced).
func (n *btreeNode) remove(k string, match func(*idxEntry) bool) (empty bool) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return len(n.keys) == 0
		}
		es := n.ents[i]
		for j, e := range es {
			if match(e) {
				n.ents[i] = append(es[:j], es[j+1:]...)
				break
			}
		}
		if len(n.ents[i]) == 0 {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.ents = append(n.ents[:i], n.ents[i+1:]...)
		}
		return len(n.keys) == 0
	}
	ci := n.childFor(k)
	if n.children[ci].remove(k, match) && len(n.children) > 1 {
		// Drop the hollow child and the separator adjoining it.
		n.children = append(n.children[:ci], n.children[ci+1:]...)
		si := ci
		if si > 0 {
			si--
		}
		n.seps = append(n.seps[:si], n.seps[si+1:]...)
	}
	if len(n.children) > 1 {
		return false
	}
	// A single remaining child: this node is as empty as that child
	// (the root collapse in removeEntry flattens the chain).
	return n.children[0].emptyNode()
}

// emptyNode reports whether the subtree holds no keys. Only single-child
// chains ever need the recursion, so this stays O(height).
func (n *btreeNode) emptyNode() bool {
	if n.leaf {
		return len(n.keys) == 0
	}
	return len(n.children) == 1 && n.children[0].emptyNode()
}

// within reports whether key k satisfies the scan bounds.
func within(k string, lo, hi *keyBound) bool {
	if lo != nil && (k < lo.key || (!lo.incl && k == lo.key)) {
		return false
	}
	if hi != nil && (k > hi.key || (!hi.incl && k == hi.key)) {
		return false
	}
	return true
}

func (n *btreeNode) ascend(lo, hi *keyBound, f func(k string, es []*idxEntry) bool) bool {
	if n.leaf {
		start := 0
		if lo != nil {
			start = sort.SearchStrings(n.keys, lo.key)
		}
		for i := start; i < len(n.keys); i++ {
			if !within(n.keys[i], lo, hi) {
				if hi != nil && n.keys[i] > hi.key {
					return false
				}
				continue
			}
			if !f(n.keys[i], n.ents[i]) {
				return false
			}
		}
		return true
	}
	start, end := 0, len(n.children)-1
	if lo != nil {
		start = n.childFor(lo.key)
	}
	if hi != nil {
		end = n.childFor(hi.key)
	}
	for ci := start; ci <= end; ci++ {
		if !n.children[ci].ascend(lo, hi, f) {
			return false
		}
	}
	return true
}

func (n *btreeNode) descend(lo, hi *keyBound, f func(k string, es []*idxEntry) bool) bool {
	if n.leaf {
		for i := len(n.keys) - 1; i >= 0; i-- {
			if !within(n.keys[i], lo, hi) {
				if lo != nil && n.keys[i] < lo.key {
					return false
				}
				continue
			}
			if !f(n.keys[i], n.ents[i]) {
				return false
			}
		}
		return true
	}
	start, end := 0, len(n.children)-1
	if lo != nil {
		start = n.childFor(lo.key)
	}
	if hi != nil {
		end = n.childFor(hi.key)
	}
	for ci := end; ci >= start; ci-- {
		if !n.children[ci].descend(lo, hi, f) {
			return false
		}
	}
	return true
}
