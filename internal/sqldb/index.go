package sqldb

import (
	"sort"
	"strings"

	"repro/internal/sqltypes"
)

// Index kind names as they appear in CREATE INDEX ... USING and in the
// catalogue. The default for CREATE INDEX without USING is ORDERED: it
// serves every shape a hash index serves (point lookups cost O(log n)
// instead of O(1)) and additionally range, prefix and in-order scans,
// which dominate the archive's scientific-metadata queries.
const (
	IndexKindHash    = "HASH"
	IndexKindOrdered = "ORDERED"
)

// indexedCols is the column tuple an index is declared over, shared by
// the hash and ordered implementations. Keys are the concatenated
// canonical encodings of the column values in declaration order (see
// key.go); the escape/terminator scheme keeps concatenation unambiguous,
// so a composite key's byte order equals the column-by-column tuple
// order and every single-column prefix of a composite key is a byte
// prefix of the full key — the property the planner's prefix scans rely
// on.
type indexedCols struct {
	cols []string // upper-cased column names, index order
	pos  []int    // schema positions, parallel to cols
}

func newIndexedCols(schema *TableSchema, cols []string) indexedCols {
	ic := indexedCols{cols: make([]string, len(cols)), pos: make([]int, len(cols))}
	for i, c := range cols {
		ic.cols[i] = strings.ToUpper(c)
		ic.pos[i] = schema.ColIndex(c)
	}
	return ic
}

func (ic indexedCols) columns() []string { return ic.cols }

// rowKey encodes the index key of one stored row.
func (ic indexedCols) rowKey(vals []sqltypes.Value) string {
	b := make([]byte, 0, 16*len(ic.pos))
	for _, p := range ic.pos {
		b = appendKey(b, vals[p])
	}
	return string(b)
}

// secondaryIndex is the access interface shared by the hash and ordered
// index implementations. Keys are canonical encodings (see encodeKey);
// maintenance callers pass the full stored row (values already coerced
// to their column types), while lookup callers must align probes via
// probeValue before encoding.
type secondaryIndex interface {
	kindName() string
	columns() []string
	addRow(vals []sqltypes.Value, id rowID)
	removeRow(vals []sqltypes.Value, id rowID)
	// lookupKey returns the row IDs stored under one encoded key (the
	// full column tuple). The returned slice aliases index storage;
	// callers must not mutate it and must copy it if it outlives the
	// engine lock.
	lookupKey(k string) []rowID
}

// rangeIndex is the extra surface of indexes that keep keys in order.
type rangeIndex interface {
	secondaryIndex
	// scanRange visits entries with lo <= key <= hi in key order
	// (reversed when desc); nil bounds are open ends. An exclusive
	// bound skips entries equal to the bound key. The visitor returns
	// false to stop.
	scanRange(lo, hi *keyBound, desc bool, f func(k string, ids []rowID) bool)
}

// keyBound is one end of an ordered-index scan.
type keyBound struct {
	key  string
	incl bool
}

// ---------- hash index ----------

// hashIndex is a secondary equality index from canonical key → row IDs.
// A composite hash index only serves equality on its full column tuple.
type hashIndex struct {
	name string
	indexedCols
	entries map[string][]rowID
}

func newHashIndex(name string, schema *TableSchema, cols []string) *hashIndex {
	return &hashIndex{name: name, indexedCols: newIndexedCols(schema, cols), entries: make(map[string][]rowID)}
}

func (h *hashIndex) kindName() string { return IndexKindHash }

func (h *hashIndex) addRow(vals []sqltypes.Value, id rowID) {
	k := h.rowKey(vals)
	h.entries[k] = append(h.entries[k], id)
}

func (h *hashIndex) removeRow(vals []sqltypes.Value, id rowID) {
	k := h.rowKey(vals)
	ids := h.entries[k]
	for i, x := range ids {
		if x == id {
			h.entries[k] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(h.entries[k]) == 0 {
		delete(h.entries, k)
	}
}

func (h *hashIndex) lookupKey(k string) []rowID { return h.entries[k] }

// ---------- ordered index (B+tree) ----------

// Node fan-out. Leaves hold up to btreeLeafMax key/id entries, inner
// nodes up to btreeInnerMax children; splits happen one past the cap.
const (
	btreeLeafMax  = 64
	btreeInnerMax = 64
)

// orderedIndex is a B+tree over canonical key encodings supporting
// point, range and in-order scans. All keys live in leaves; inner nodes
// hold separators with len(seps) == len(children)-1, child i spanning
// [seps[i-1], seps[i]). Deleting the last row ID under a key removes the
// leaf entry, and a leaf that empties out is merged away (its parent
// drops the hollow child and the adjoining separator), so delete-heavy
// tables do not accumulate dead nodes; within still-populated leaves no
// rebalancing happens, which is the right trade for the archive's
// insert-mostly workload.
type orderedIndex struct {
	name string
	indexedCols
	root *btreeNode
}

type btreeNode struct {
	leaf     bool
	keys     []string  // leaf entries
	ids      [][]rowID // parallel to keys
	seps     []string  // inner separators
	children []*btreeNode
}

func newOrderedIndex(name string, schema *TableSchema, cols []string) *orderedIndex {
	return &orderedIndex{
		name:        name,
		indexedCols: newIndexedCols(schema, cols),
		root:        &btreeNode{leaf: true},
	}
}

func (ix *orderedIndex) kindName() string { return IndexKindOrdered }

func (ix *orderedIndex) addRow(vals []sqltypes.Value, id rowID) {
	right, sep := ix.root.insert(ix.rowKey(vals), id)
	if right != nil {
		ix.root = &btreeNode{
			seps:     []string{sep},
			children: []*btreeNode{ix.root, right},
		}
	}
}

func (ix *orderedIndex) removeRow(vals []sqltypes.Value, id rowID) {
	ix.root.remove(ix.rowKey(vals), id)
	// Collapse single-child roots so the tree height tracks the live
	// key count back down after bulk deletes.
	for !ix.root.leaf && len(ix.root.children) == 1 {
		ix.root = ix.root.children[0]
	}
}

func (ix *orderedIndex) lookupKey(k string) []rowID {
	n := ix.root
	for !n.leaf {
		n = n.children[n.childFor(k)]
	}
	i := sort.SearchStrings(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.ids[i]
	}
	return nil
}

func (ix *orderedIndex) scanRange(lo, hi *keyBound, desc bool, f func(k string, ids []rowID) bool) {
	if desc {
		ix.root.descend(lo, hi, f)
	} else {
		ix.root.ascend(lo, hi, f)
	}
}

// nodeCount reports the number of tree nodes (diagnostics and the
// delete-reclaim regression test).
func (ix *orderedIndex) nodeCount() int { return ix.root.count() }

func (n *btreeNode) count() int {
	c := 1
	for _, ch := range n.children {
		c += ch.count()
	}
	return c
}

// childFor routes key k: entries equal to a separator live in the child
// to its right, matching the "separator = first key of right sibling"
// split convention.
func (n *btreeNode) childFor(k string) int {
	return sort.Search(len(n.seps), func(i int) bool { return n.seps[i] > k })
}

// insert adds id under key k, returning a new right sibling and its
// separator when the node split.
func (n *btreeNode) insert(k string, id rowID) (*btreeNode, string) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.ids[i] = append(n.ids[i], id)
			return nil, ""
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.ids = append(n.ids, nil)
		copy(n.ids[i+1:], n.ids[i:])
		n.ids[i] = []rowID{id}
		if len(n.keys) <= btreeLeafMax {
			return nil, ""
		}
		mid := len(n.keys) / 2
		right := &btreeNode{
			leaf: true,
			keys: append([]string(nil), n.keys[mid:]...),
			ids:  append([][]rowID(nil), n.ids[mid:]...),
		}
		n.keys = n.keys[:mid:mid]
		n.ids = n.ids[:mid:mid]
		return right, right.keys[0]
	}
	ci := n.childFor(k)
	right, sep := n.children[ci].insert(k, id)
	if right == nil {
		return nil, ""
	}
	n.seps = append(n.seps, "")
	copy(n.seps[ci+1:], n.seps[ci:])
	n.seps[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= btreeInnerMax {
		return nil, ""
	}
	mid := len(n.seps) / 2
	up := n.seps[mid]
	r := &btreeNode{
		seps:     append([]string(nil), n.seps[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.seps = n.seps[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return r, up
}

// remove deletes id from under key k and reports whether this node has
// become empty (merge-at-empty reclamation: a parent drops an emptied
// child together with one separator, so hollow leaves do not linger
// after delete-heavy workloads; partially-filled nodes are never
// rebalanced).
func (n *btreeNode) remove(k string, id rowID) (empty bool) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, k)
		if i >= len(n.keys) || n.keys[i] != k {
			return len(n.keys) == 0
		}
		ids := n.ids[i]
		for j, x := range ids {
			if x == id {
				n.ids[i] = append(ids[:j], ids[j+1:]...)
				break
			}
		}
		if len(n.ids[i]) == 0 {
			n.keys = append(n.keys[:i], n.keys[i+1:]...)
			n.ids = append(n.ids[:i], n.ids[i+1:]...)
		}
		return len(n.keys) == 0
	}
	ci := n.childFor(k)
	if n.children[ci].remove(k, id) && len(n.children) > 1 {
		// Drop the hollow child and the separator adjoining it.
		n.children = append(n.children[:ci], n.children[ci+1:]...)
		si := ci
		if si > 0 {
			si--
		}
		n.seps = append(n.seps[:si], n.seps[si+1:]...)
	}
	if len(n.children) > 1 {
		return false
	}
	// A single remaining child: this node is as empty as that child
	// (the root collapse in removeRow flattens the chain).
	return n.children[0].emptyNode()
}

// emptyNode reports whether the subtree holds no keys. Only single-child
// chains ever need the recursion, so this stays O(height).
func (n *btreeNode) emptyNode() bool {
	if n.leaf {
		return len(n.keys) == 0
	}
	return len(n.children) == 1 && n.children[0].emptyNode()
}

// within reports whether key k satisfies the scan bounds.
func within(k string, lo, hi *keyBound) bool {
	if lo != nil && (k < lo.key || (!lo.incl && k == lo.key)) {
		return false
	}
	if hi != nil && (k > hi.key || (!hi.incl && k == hi.key)) {
		return false
	}
	return true
}

func (n *btreeNode) ascend(lo, hi *keyBound, f func(k string, ids []rowID) bool) bool {
	if n.leaf {
		start := 0
		if lo != nil {
			start = sort.SearchStrings(n.keys, lo.key)
		}
		for i := start; i < len(n.keys); i++ {
			if !within(n.keys[i], lo, hi) {
				if hi != nil && n.keys[i] > hi.key {
					return false
				}
				continue
			}
			if !f(n.keys[i], n.ids[i]) {
				return false
			}
		}
		return true
	}
	start, end := 0, len(n.children)-1
	if lo != nil {
		start = n.childFor(lo.key)
	}
	if hi != nil {
		end = n.childFor(hi.key)
	}
	for ci := start; ci <= end; ci++ {
		if !n.children[ci].ascend(lo, hi, f) {
			return false
		}
	}
	return true
}

func (n *btreeNode) descend(lo, hi *keyBound, f func(k string, ids []rowID) bool) bool {
	if n.leaf {
		for i := len(n.keys) - 1; i >= 0; i-- {
			if !within(n.keys[i], lo, hi) {
				if lo != nil && n.keys[i] < lo.key {
					return false
				}
				continue
			}
			if !f(n.keys[i], n.ids[i]) {
				return false
			}
		}
		return true
	}
	start, end := 0, len(n.children)-1
	if lo != nil {
		start = n.childFor(lo.key)
	}
	if hi != nil {
		end = n.childFor(hi.key)
	}
	for ci := end; ci >= start; ci-- {
		if !n.children[ci].descend(lo, hi, f) {
			return false
		}
	}
	return true
}
