package sqldb

import (
	"sort"
	"strings"

	"repro/internal/sqltypes"
)

// Index kind names as they appear in CREATE INDEX ... USING and in the
// catalogue. The default for CREATE INDEX without USING is ORDERED: it
// serves every shape a hash index serves (point lookups cost O(log n)
// instead of O(1)) and additionally range, prefix and in-order scans,
// which dominate the archive's scientific-metadata queries.
const (
	IndexKindHash    = "HASH"
	IndexKindOrdered = "ORDERED"
)

// secondaryIndex is the access interface shared by the hash and ordered
// index implementations. Keys are canonical encodings (see encodeKey);
// maintenance callers pass stored column values (already coerced to the
// column type), while lookup callers must align probes via probeValue
// before encoding.
type secondaryIndex interface {
	kindName() string
	add(v sqltypes.Value, id rowID)
	remove(v sqltypes.Value, id rowID)
	// lookupKey returns the row IDs stored under one encoded key. The
	// returned slice aliases index storage; callers must not mutate it
	// and must copy it if it outlives the engine lock.
	lookupKey(k string) []rowID
}

// rangeIndex is the extra surface of indexes that keep keys in order.
type rangeIndex interface {
	secondaryIndex
	// scanRange visits entries with lo <= key <= hi in key order
	// (reversed when desc); nil bounds are open ends. An exclusive
	// bound skips entries equal to the bound key. The visitor returns
	// false to stop.
	scanRange(lo, hi *keyBound, desc bool, f func(k string, ids []rowID) bool)
}

// keyBound is one end of an ordered-index scan.
type keyBound struct {
	key  string
	incl bool
}

// ---------- hash index ----------

// hashIndex is a secondary equality index from canonical key → row IDs.
type hashIndex struct {
	name    string
	column  string
	entries map[string][]rowID
}

func newHashIndex(name, column string) *hashIndex {
	return &hashIndex{name: name, column: strings.ToUpper(column), entries: make(map[string][]rowID)}
}

func (h *hashIndex) kindName() string { return IndexKindHash }

func (h *hashIndex) add(v sqltypes.Value, id rowID) {
	k := encodeKey(v)
	h.entries[k] = append(h.entries[k], id)
}

func (h *hashIndex) remove(v sqltypes.Value, id rowID) {
	k := encodeKey(v)
	ids := h.entries[k]
	for i, x := range ids {
		if x == id {
			h.entries[k] = append(ids[:i], ids[i+1:]...)
			break
		}
	}
	if len(h.entries[k]) == 0 {
		delete(h.entries, k)
	}
}

func (h *hashIndex) lookupKey(k string) []rowID { return h.entries[k] }

// ---------- ordered index (B+tree) ----------

// Node fan-out. Leaves hold up to btreeLeafMax key/id entries, inner
// nodes up to btreeInnerMax children; splits happen one past the cap.
const (
	btreeLeafMax  = 64
	btreeInnerMax = 64
)

// orderedIndex is a B+tree over canonical key encodings supporting
// point, range and in-order scans. All keys live in leaves; inner nodes
// hold separators with len(seps) == len(children)-1, child i spanning
// [seps[i-1], seps[i]). Deleting the last row ID under a key removes
// the leaf entry but never rebalances: hollow nodes cost a little scan
// work until the index is rebuilt (CREATE INDEX, snapshot/WAL replay),
// which is the right trade for the archive's insert-mostly workload.
type orderedIndex struct {
	name   string
	column string
	root   *btreeNode
}

type btreeNode struct {
	leaf     bool
	keys     []string  // leaf entries
	ids      [][]rowID // parallel to keys
	seps     []string  // inner separators
	children []*btreeNode
}

func newOrderedIndex(name, column string) *orderedIndex {
	return &orderedIndex{
		name:   name,
		column: strings.ToUpper(column),
		root:   &btreeNode{leaf: true},
	}
}

func (ix *orderedIndex) kindName() string { return IndexKindOrdered }

func (ix *orderedIndex) add(v sqltypes.Value, id rowID) {
	right, sep := ix.root.insert(encodeKey(v), id)
	if right != nil {
		ix.root = &btreeNode{
			seps:     []string{sep},
			children: []*btreeNode{ix.root, right},
		}
	}
}

func (ix *orderedIndex) remove(v sqltypes.Value, id rowID) {
	ix.root.remove(encodeKey(v), id)
}

func (ix *orderedIndex) lookupKey(k string) []rowID {
	n := ix.root
	for !n.leaf {
		n = n.children[n.childFor(k)]
	}
	i := sort.SearchStrings(n.keys, k)
	if i < len(n.keys) && n.keys[i] == k {
		return n.ids[i]
	}
	return nil
}

func (ix *orderedIndex) scanRange(lo, hi *keyBound, desc bool, f func(k string, ids []rowID) bool) {
	if desc {
		ix.root.descend(lo, hi, f)
	} else {
		ix.root.ascend(lo, hi, f)
	}
}

// childFor routes key k: entries equal to a separator live in the child
// to its right, matching the "separator = first key of right sibling"
// split convention.
func (n *btreeNode) childFor(k string) int {
	return sort.Search(len(n.seps), func(i int) bool { return n.seps[i] > k })
}

// insert adds id under key k, returning a new right sibling and its
// separator when the node split.
func (n *btreeNode) insert(k string, id rowID) (*btreeNode, string) {
	if n.leaf {
		i := sort.SearchStrings(n.keys, k)
		if i < len(n.keys) && n.keys[i] == k {
			n.ids[i] = append(n.ids[i], id)
			return nil, ""
		}
		n.keys = append(n.keys, "")
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = k
		n.ids = append(n.ids, nil)
		copy(n.ids[i+1:], n.ids[i:])
		n.ids[i] = []rowID{id}
		if len(n.keys) <= btreeLeafMax {
			return nil, ""
		}
		mid := len(n.keys) / 2
		right := &btreeNode{
			leaf: true,
			keys: append([]string(nil), n.keys[mid:]...),
			ids:  append([][]rowID(nil), n.ids[mid:]...),
		}
		n.keys = n.keys[:mid:mid]
		n.ids = n.ids[:mid:mid]
		return right, right.keys[0]
	}
	ci := n.childFor(k)
	right, sep := n.children[ci].insert(k, id)
	if right == nil {
		return nil, ""
	}
	n.seps = append(n.seps, "")
	copy(n.seps[ci+1:], n.seps[ci:])
	n.seps[ci] = sep
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = right
	if len(n.children) <= btreeInnerMax {
		return nil, ""
	}
	mid := len(n.seps) / 2
	up := n.seps[mid]
	r := &btreeNode{
		seps:     append([]string(nil), n.seps[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.seps = n.seps[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return r, up
}

func (n *btreeNode) remove(k string, id rowID) {
	for !n.leaf {
		n = n.children[n.childFor(k)]
	}
	i := sort.SearchStrings(n.keys, k)
	if i >= len(n.keys) || n.keys[i] != k {
		return
	}
	ids := n.ids[i]
	for j, x := range ids {
		if x == id {
			n.ids[i] = append(ids[:j], ids[j+1:]...)
			break
		}
	}
	if len(n.ids[i]) == 0 {
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.ids = append(n.ids[:i], n.ids[i+1:]...)
	}
}

// within reports whether key k satisfies the scan bounds.
func within(k string, lo, hi *keyBound) bool {
	if lo != nil && (k < lo.key || (!lo.incl && k == lo.key)) {
		return false
	}
	if hi != nil && (k > hi.key || (!hi.incl && k == hi.key)) {
		return false
	}
	return true
}

func (n *btreeNode) ascend(lo, hi *keyBound, f func(k string, ids []rowID) bool) bool {
	if n.leaf {
		start := 0
		if lo != nil {
			start = sort.SearchStrings(n.keys, lo.key)
		}
		for i := start; i < len(n.keys); i++ {
			if !within(n.keys[i], lo, hi) {
				if hi != nil && n.keys[i] > hi.key {
					return false
				}
				continue
			}
			if !f(n.keys[i], n.ids[i]) {
				return false
			}
		}
		return true
	}
	start, end := 0, len(n.children)-1
	if lo != nil {
		start = n.childFor(lo.key)
	}
	if hi != nil {
		end = n.childFor(hi.key)
	}
	for ci := start; ci <= end; ci++ {
		if !n.children[ci].ascend(lo, hi, f) {
			return false
		}
	}
	return true
}

func (n *btreeNode) descend(lo, hi *keyBound, f func(k string, ids []rowID) bool) bool {
	if n.leaf {
		for i := len(n.keys) - 1; i >= 0; i-- {
			if !within(n.keys[i], lo, hi) {
				if lo != nil && n.keys[i] < lo.key {
					return false
				}
				continue
			}
			if !f(n.keys[i], n.ids[i]) {
				return false
			}
		}
		return true
	}
	start, end := 0, len(n.children)-1
	if lo != nil {
		start = n.childFor(lo.key)
	}
	if hi != nil {
		end = n.childFor(hi.key)
	}
	for ci := end; ci >= start; ci-- {
		if !n.children[ci].descend(lo, hi, f) {
			return false
		}
	}
	return true
}
