package sqldb

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/sqltypes"
)

// qualCol names one runtime row slot: table alias (upper-cased) plus
// column name (upper-cased).
type qualCol struct {
	table string
	col   string
}

// bindEnv is the column namespace an expression is resolved against.
type bindEnv struct {
	cols []qualCol
}

func (b *bindEnv) resolve(table, col string) (int, error) {
	table = strings.ToUpper(table)
	col = strings.ToUpper(col)
	found := -1
	for i, qc := range b.cols {
		if qc.col != col {
			continue
		}
		if table != "" && qc.table != table {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqldb: ambiguous column reference %s", col)
		}
		found = i
	}
	if found < 0 {
		if table != "" {
			return -1, fmt.Errorf("sqldb: unknown column %s.%s", table, col)
		}
		return -1, fmt.Errorf("sqldb: unknown column %s", col)
	}
	return found, nil
}

// bindExpr resolves every ColRef in e against env. It returns an error
// for unknown or ambiguous references; aggregates are rejected unless
// allowAgg.
func bindExpr(e Expr, env *bindEnv, allowAgg bool) error {
	var err error
	walkExpr(e, func(x Expr) bool {
		if err != nil {
			return false
		}
		switch n := x.(type) {
		case *ColRef:
			n.Index, err = env.resolve(n.Table, n.Col)
		case *FuncCall:
			if isAggregate(n.Name) && !allowAgg {
				err = fmt.Errorf("sqldb: aggregate %s not allowed here", n.Name)
			}
		}
		return true
	})
	return err
}

func isAggregate(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// exprHasAggregate reports whether the tree contains an aggregate call.
func exprHasAggregate(e Expr) bool {
	found := false
	walkExpr(e, func(x Expr) bool {
		if fc, ok := x.(*FuncCall); ok && isAggregate(fc.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

// evalCtx carries the runtime row and parameters during evaluation,
// plus the MVCC snapshot the statement reads at: a commit stamp pinned
// at statement start for queries, or snapLatest for DML row matching
// and constraint checks (which must see the newest non-aborted state).
type evalCtx struct {
	vals   []sqltypes.Value
	params []sqltypes.Value
	now    time.Time
	snap   uint64

	// intr is the owning statement's cancellation checker and memory
	// account (govern.go); nil — the ungoverned internal path — makes
	// every check/charge a no-op.
	intr *interrupt

	// ar backs the statement's result rows (owned by the returned Rows,
	// released on Rows.Close); scratch backs intermediate rows — joined
	// tuples the projection copies out of — and is released when the
	// statement finishes. Both nil on the legacy allocation path, which
	// makes every arena alloc an ordinary make (see arena.go).
	ar      *rowArena
	scratch *rowArena

	// keyBuf is a statement-scoped scratch buffer for canonical key
	// encoding (index nested-loop probes build one prefix per OUTER
	// row); reusing it keeps the probe loop allocation-free. Safe
	// because an evalCtx is owned by one statement execution.
	keyBuf []byte
}

// evalExpr computes e over the context. SQL three-valued logic is
// represented by returning sqltypes.Null for UNKNOWN.
func evalExpr(e Expr, ctx *evalCtx) (sqltypes.Value, error) {
	switch n := e.(type) {
	case *Literal:
		return n.Val, nil
	case *ColRef:
		if n.Index < 0 || n.Index >= len(ctx.vals) {
			return sqltypes.Null, fmt.Errorf("sqldb: unbound column %s", n.Col)
		}
		return ctx.vals[n.Index], nil
	case *Param:
		if n.N >= len(ctx.params) {
			return sqltypes.Null, fmt.Errorf("sqldb: missing argument for placeholder %d", n.N+1)
		}
		return ctx.params[n.N], nil
	case *Unary:
		return evalUnary(n, ctx)
	case *Binary:
		return evalBinary(n, ctx)
	case *FuncCall:
		return evalFunc(n, ctx)
	case *InExpr:
		return evalIn(n, ctx)
	case *BetweenExpr:
		return evalBetween(n, ctx)
	case *IsNullExpr:
		v, err := evalExpr(n.X, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		res := v.IsNull()
		if n.Not {
			res = !res
		}
		return sqltypes.NewBool(res), nil
	default:
		return sqltypes.Null, fmt.Errorf("sqldb: cannot evaluate %T", e)
	}
}

func evalUnary(n *Unary, ctx *evalCtx) (sqltypes.Value, error) {
	v, err := evalExpr(n.X, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	switch n.Op {
	case "NOT":
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(!truthy(v)), nil
	case "-":
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		switch v.Kind() {
		case sqltypes.KindInt:
			return sqltypes.NewInt(-v.Int()), nil
		case sqltypes.KindDouble:
			return sqltypes.NewDouble(-v.Double()), nil
		}
		return sqltypes.Null, fmt.Errorf("sqldb: cannot negate %s", v.Kind())
	}
	return sqltypes.Null, fmt.Errorf("sqldb: unknown unary operator %s", n.Op)
}

// truthy interprets a value as a boolean condition.
func truthy(v sqltypes.Value) bool {
	switch v.Kind() {
	case sqltypes.KindBool:
		return v.Bool()
	case sqltypes.KindInt:
		return v.Int() != 0
	case sqltypes.KindDouble:
		return v.Double() != 0
	default:
		return false
	}
}

func evalBinary(n *Binary, ctx *evalCtx) (sqltypes.Value, error) {
	// AND/OR implement Kleene logic with short circuit.
	if n.Op == "AND" || n.Op == "OR" {
		l, err := evalExpr(n.L, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		if n.Op == "AND" {
			if !l.IsNull() && !truthy(l) {
				return sqltypes.NewBool(false), nil
			}
		} else if !l.IsNull() && truthy(l) {
			return sqltypes.NewBool(true), nil
		}
		r, err := evalExpr(n.R, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		switch {
		case n.Op == "AND":
			if !r.IsNull() && !truthy(r) {
				return sqltypes.NewBool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(true), nil
		default: // OR
			if !r.IsNull() && truthy(r) {
				return sqltypes.NewBool(true), nil
			}
			if l.IsNull() || r.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(false), nil
		}
	}

	l, err := evalExpr(n.L, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := evalExpr(n.R, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	switch n.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		c, ok := sqltypes.Compare(l, r)
		if !ok {
			return sqltypes.Null, fmt.Errorf("sqldb: cannot compare %s with %s", l.Kind(), r.Kind())
		}
		var res bool
		switch n.Op {
		case "=":
			res = c == 0
		case "<>":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return sqltypes.NewBool(res), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(likeMatch(r.AsString(), l.AsString())), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(l.AsString() + r.AsString()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(n.Op, l, r)
	}
	return sqltypes.Null, fmt.Errorf("sqldb: unknown operator %s", n.Op)
}

func evalArith(op string, l, r sqltypes.Value) (sqltypes.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null, nil
	}
	if l.Kind() == sqltypes.KindInt && r.Kind() == sqltypes.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case "+":
			return sqltypes.NewInt(a + b), nil
		case "-":
			return sqltypes.NewInt(a - b), nil
		case "*":
			return sqltypes.NewInt(a * b), nil
		case "/":
			if b == 0 {
				return sqltypes.Null, fmt.Errorf("sqldb: division by zero")
			}
			return sqltypes.NewInt(a / b), nil
		case "%":
			if b == 0 {
				return sqltypes.Null, fmt.Errorf("sqldb: division by zero")
			}
			return sqltypes.NewInt(a % b), nil
		}
	}
	af, aok := l.AsDouble()
	bf, bok := r.AsDouble()
	if !aok || !bok {
		return sqltypes.Null, fmt.Errorf("sqldb: arithmetic on non-numeric operands (%s, %s)", l.Kind(), r.Kind())
	}
	switch op {
	case "+":
		return sqltypes.NewDouble(af + bf), nil
	case "-":
		return sqltypes.NewDouble(af - bf), nil
	case "*":
		return sqltypes.NewDouble(af * bf), nil
	case "/":
		if bf == 0 {
			return sqltypes.Null, fmt.Errorf("sqldb: division by zero")
		}
		return sqltypes.NewDouble(af / bf), nil
	case "%":
		if bf == 0 {
			return sqltypes.Null, fmt.Errorf("sqldb: division by zero")
		}
		return sqltypes.NewDouble(math.Mod(af, bf)), nil
	}
	return sqltypes.Null, fmt.Errorf("sqldb: unknown arithmetic operator %s", op)
}

func evalIn(n *InExpr, ctx *evalCtx) (sqltypes.Value, error) {
	x, err := evalExpr(n.X, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	if x.IsNull() {
		return sqltypes.Null, nil
	}
	sawNull := false
	for _, item := range n.List {
		v, err := evalExpr(item, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if c, ok := sqltypes.Compare(x, v); ok && c == 0 {
			return sqltypes.NewBool(!n.Not), nil
		}
	}
	if sawNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(n.Not), nil
}

func evalBetween(n *BetweenExpr, ctx *evalCtx) (sqltypes.Value, error) {
	x, err := evalExpr(n.X, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	lo, err := evalExpr(n.Lo, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	hi, err := evalExpr(n.Hi, ctx)
	if err != nil {
		return sqltypes.Null, err
	}
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return sqltypes.Null, nil
	}
	c1, ok1 := sqltypes.Compare(x, lo)
	c2, ok2 := sqltypes.Compare(x, hi)
	if !ok1 || !ok2 {
		return sqltypes.Null, fmt.Errorf("sqldb: BETWEEN operands are not comparable")
	}
	res := c1 >= 0 && c2 <= 0
	if n.Not {
		res = !res
	}
	return sqltypes.NewBool(res), nil
}

// likeMatch implements SQL LIKE with % (any run), _ (any single char)
// and backslash escapes for literal % _ \, matching case-sensitively as
// standard SQL does.
func likeMatch(pattern, s string) bool {
	return likeRec(pattern, s)
}

func likeRec(p, s string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '\\':
			if len(p) >= 2 {
				if len(s) == 0 || p[1] != s[0] {
					return false
				}
				p, s = p[2:], s[1:]
				continue
			}
			// Trailing backslash matches itself.
			if len(s) == 0 || s[0] != '\\' {
				return false
			}
			p, s = p[1:], s[1:]
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(p, s[i:]) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			p, s = p[1:], s[1:]
		default:
			if len(s) == 0 || p[0] != s[0] {
				return false
			}
			p, s = p[1:], s[1:]
		}
	}
	return len(s) == 0
}

// evalFunc evaluates scalar functions, including the SQL/MED datalink
// accessor functions (DLVALUE, DLURLPATH, DLURLSERVER, DLURLCOMPLETE).
// Aggregates never reach here; the executor intercepts them.
func evalFunc(n *FuncCall, ctx *evalCtx) (sqltypes.Value, error) {
	if isAggregate(n.Name) {
		return sqltypes.Null, fmt.Errorf("sqldb: aggregate %s outside GROUP BY context", n.Name)
	}
	args := make([]sqltypes.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := evalExpr(a, ctx)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	arity := func(want int) error {
		if len(args) != want {
			return fmt.Errorf("sqldb: %s expects %d argument(s), got %d", n.Name, want, len(args))
		}
		return nil
	}
	switch n.Name {
	case "LENGTH":
		if err := arity(1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewInt(int64(args[0].Size())), nil
	case "UPPER":
		if err := arity(1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToUpper(args[0].AsString())), nil
	case "LOWER":
		if err := arity(1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToLower(args[0].AsString())), nil
	case "TRIM":
		if err := arity(1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.TrimSpace(args[0].AsString())), nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return sqltypes.Null, fmt.Errorf("sqldb: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		s := args[0].AsString()
		start, ok := args[1].AsInt()
		if !ok {
			return sqltypes.Null, fmt.Errorf("sqldb: SUBSTR start must be an integer")
		}
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return sqltypes.NewString(""), nil
		}
		out := s[start-1:]
		if len(args) == 3 && !args[2].IsNull() {
			ln, ok := args[2].AsInt()
			if !ok || ln < 0 {
				return sqltypes.Null, fmt.Errorf("sqldb: SUBSTR length must be a non-negative integer")
			}
			if int(ln) < len(out) {
				out = out[:ln]
			}
		}
		return sqltypes.NewString(out), nil
	case "ABS":
		if err := arity(1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		switch args[0].Kind() {
		case sqltypes.KindInt:
			v := args[0].Int()
			if v < 0 {
				v = -v
			}
			return sqltypes.NewInt(v), nil
		case sqltypes.KindDouble:
			return sqltypes.NewDouble(math.Abs(args[0].Double())), nil
		}
		return sqltypes.Null, fmt.Errorf("sqldb: ABS on non-numeric value")
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return sqltypes.Null, fmt.Errorf("sqldb: ROUND expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		f, ok := args[0].AsDouble()
		if !ok {
			return sqltypes.Null, fmt.Errorf("sqldb: ROUND on non-numeric value")
		}
		digits := int64(0)
		if len(args) == 2 {
			digits, _ = args[1].AsInt()
		}
		scale := math.Pow(10, float64(digits))
		return sqltypes.NewDouble(math.Round(f*scale) / scale), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqltypes.Null, nil
	case "NOW", "CURRENT_TIMESTAMP":
		return sqltypes.NewTime(ctx.now), nil
	// --- SQL/MED datalink functions (ISO/IEC 9075-9 §6) ---
	case "DLVALUE":
		if err := arity(1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		url := args[0].AsString()
		if _, err := sqltypes.ParseDatalinkURL(url); err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewDatalink(url), nil
	case "DLURLPATH":
		u, err := dlArg(n.Name, args)
		if err != nil {
			return sqltypes.Null, err
		}
		if u == nil {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(u.Path), nil
	case "DLURLSERVER":
		u, err := dlArg(n.Name, args)
		if err != nil {
			return sqltypes.Null, err
		}
		if u == nil {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(u.Host), nil
	case "DLURLCOMPLETE":
		u, err := dlArg(n.Name, args)
		if err != nil {
			return sqltypes.Null, err
		}
		if u == nil {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(u.String()), nil
	case "DLLINKTYPE":
		if err := arity(1); err != nil {
			return sqltypes.Null, err
		}
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		if args[0].Kind() != sqltypes.KindDatalink {
			return sqltypes.Null, fmt.Errorf("sqldb: DLLINKTYPE expects a DATALINK argument")
		}
		return sqltypes.NewString("URL"), nil
	}
	return sqltypes.Null, fmt.Errorf("sqldb: unknown function %s", n.Name)
}

func dlArg(fn string, args []sqltypes.Value) (*sqltypes.DatalinkURL, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("sqldb: %s expects 1 argument", fn)
	}
	if args[0].IsNull() {
		return nil, nil
	}
	if args[0].Kind() != sqltypes.KindDatalink {
		return nil, fmt.Errorf("sqldb: %s expects a DATALINK argument, got %s", fn, args[0].Kind())
	}
	u, err := sqltypes.ParseDatalinkURL(args[0].Str())
	if err != nil {
		return nil, err
	}
	return &u, nil
}
