package sqldb

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// Typed durability errors. Callers distinguish them with errors.Is.
var (
	// ErrPoisoned marks a database whose durability can no longer be
	// trusted: an fsync failed (the kernel may have dropped the dirty
	// pages it covered, so retrying proves nothing), or a checkpoint
	// died after the new snapshot became visible but before the log was
	// rotated onto it. Every subsequent commit and checkpoint fails with
	// this error; reopening the directory recovers to the last state
	// that verifiably reached disk.
	ErrPoisoned = errors.New("sqldb: database poisoned by durability failure, reopen to recover")
	// ErrWALCorrupt refuses an open whose log shows mid-log corruption:
	// a bad frame with intact frames after it, i.e. damage to data that
	// was once durably written, not a torn crash tail. Opening with
	// Options.Salvage accepts the loss explicitly and recovers the
	// prefix before the damage.
	ErrWALCorrupt = errors.New("sqldb: WAL corrupt")
	// ErrSnapshotCorrupt refuses an open whose snapshot fails its
	// whole-file checksum (or predates it).
	ErrSnapshotCorrupt = errors.New("sqldb: snapshot corrupt")
)

// LinkController receives SQL/MED link-control callbacks from the engine
// whenever rows holding DATALINK values (with FILE LINK CONTROL) are
// inserted, updated or deleted. The med package implements it by talking
// to the file-manager daemons; the engine only defines the protocol:
//
//	PrepareLink/PrepareUnlink are called during statement execution,
//	inside the transaction; they must validate (e.g. file existence for
//	links) and reserve the action.
//	Commit is called after the transaction's WAL records are durable.
//	Abort is called on rollback and must release reservations. An abort
//	failure (an unreachable file server that still holds a staged
//	prepare) is surfaced alongside the rollback so the caller knows the
//	file side may leak until the coordinator retries or reconciles.
type LinkController interface {
	PrepareLink(txID uint64, url string, opts sqltypes.DatalinkOptions) error
	PrepareUnlink(txID uint64, url string, opts sqltypes.DatalinkOptions) error
	Commit(txID uint64) error
	Abort(txID uint64) error
}

// Result reports the effect of a DML statement.
type Result struct {
	RowsAffected int
}

// Rows is a fully materialised query result, detached from live storage:
// it shares no mutable state with the engine, so it stays valid (and
// safe to read from any goroutine) after the query returns, concurrent
// with later writes.
type Rows struct {
	Columns []string
	Kinds   []sqltypes.Kind
	Data    [][]sqltypes.Value

	// colIdx caches upper-cased column name → position so per-cell Get
	// calls (the result-page render path) avoid an O(columns) scan.
	colIdx map[string]int
}

// newRows builds a result shell with the column-lookup cache populated.
func newRows(columns []string, kinds []sqltypes.Kind) *Rows {
	r := &Rows{Columns: columns, Kinds: kinds}
	r.colIdx = make(map[string]int, len(columns))
	for i, c := range columns {
		key := strings.ToUpper(c)
		if _, dup := r.colIdx[key]; !dup { // first occurrence wins, like the scan
			r.colIdx[key] = i
		}
	}
	return r
}

// ColIndex returns the position of the named result column
// (case-insensitive), or -1.
func (r *Rows) ColIndex(name string) int {
	if r.colIdx != nil {
		if i, ok := r.colIdx[strings.ToUpper(name)]; ok {
			return i
		}
		return -1
	}
	// Hand-constructed Rows (tests, adapters) lack the cache.
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Get returns row i's value in the named column (Null when absent).
func (r *Rows) Get(i int, col string) sqltypes.Value {
	j := r.ColIndex(col)
	if j < 0 || i < 0 || i >= len(r.Data) {
		return sqltypes.Null
	}
	return r.Data[i][j]
}

// indexDef records a secondary index created with CREATE INDEX.
type indexDef struct {
	Name    string
	Table   string
	Columns []string // upper-cased, index order
	Kind    string   // IndexKindHash or IndexKindOrdered
}

// DB is an embedded SQL database with single-writer / multi-reader
// locking: SELECTs (Query, Stmt.Query) take mu as a read lock and run
// concurrently; DML, DDL, transactions and maintenance take it
// exclusively. The archive workload is metadata-scale (the bulk data
// lives on the file servers), so single-writer serialisable semantics
// with a concurrent read path is the honest, simple choice. A DB with an
// empty directory is purely in-memory; otherwise snapshot.db and wal.log
// in the directory provide durability with crash recovery.
//
// Secondary indexes: CREATE INDEX name ON table (col) USING {HASH|
// ORDERED} (ORDERED when USING is omitted) builds an equality hash
// index or an ordered B+tree over the canonical key encoding shared by
// every index (see key.go). The access-path planner (planner.go) routes
// SELECT/UPDATE/DELETE through them for equality, range, BETWEEN and
// IS [NOT] NULL predicates and satisfies single-key ORDER BY from an
// ordered index in either direction. Index definitions live in the WAL
// DDL log and are rebuilt on replay; CREATE/DROP INDEX bumps the schema
// epoch, so cached plans transparently re-plan.
//
// Locking rules (for maintainers):
//   - Everything reachable from cat, data, indexes, nowFn, fullScanOnly
//     and schemaEpoch is written only under mu.Lock and may be read
//     under mu.RLock.
//   - Query results are fully materialised copies, never views into
//     storage, so they outlive the read lock.
//   - The plan cache (plans) and per-statement plan builds (Stmt.mu)
//     have their own locks, never held while acquiring mu.
//   - Commit durability happens OUTSIDE mu: commitLocked stages WAL
//     frames under the writer lock and returns a finish closure that
//     waits for the group-commit flush after the lock is released, so
//     readers and other writers overlap with the fsync. The walFile has
//     its own mutex and must never be touched under mu except through
//     stageTx/checkpointLocked.
type DB struct {
	mu      sync.RWMutex
	cat     *Catalog
	data    map[string]*tableData
	indexes map[string]indexDef // index name (upper) → definition
	nextRow rowID
	nextTx  uint64

	// schemaEpoch counts DDL statements. Prepared plans record the epoch
	// they were bound at and re-bind when it moves, so no cached plan
	// ever executes against a changed catalogue.
	schemaEpoch uint64
	// inflight lists transactions whose WAL frames are staged but whose
	// durability is not yet acknowledged, in commit order. On a flush
	// failure the whole undurable suffix is unwound in REVERSE commit
	// order (see unwindFailedLocked) so overlapping transactions restore
	// cleanly.
	inflight []*txState
	// plans is the LRU of prepared statements Exec/Query consult, so
	// unprepared callers get statement caching for free.
	plans *planCache

	dir       string
	fs        iofault.FS // filesystem all durability I/O goes through
	gen       uint64     // checkpoint generation of the live snapshot+log
	wal       *walFile
	linkCtl   LinkController
	ddlLog    []string
	replaying bool
	closed    bool

	// poisonErr is the sticky database-level durability failure (wraps
	// ErrPoisoned). Set when a WAL flush fails or a checkpoint dies in
	// its non-atomic window; checked at every commit and checkpoint.
	poisonErr error

	// recovery describes what the Open that produced this DB found.
	recovery RecoveryInfo

	// legacyAggregation routes aggregated SELECTs through the
	// materialise-then-group executor instead of the fold pipeline —
	// the ablation baseline and property oracle. See SetLegacyAggregation.
	legacyAggregation bool

	// fullScanOnly disables index access paths at execution time (the
	// planner still runs; its choice is ignored). Ablation and
	// property-testing knob — see SetFullScanOnly.
	fullScanOnly bool

	// nowFn supplies the clock for NOW(); injectable for deterministic
	// tests and the network-simulated experiments.
	nowFn func() time.Time

	// walBytesSinceCheckpoint triggers automatic checkpoints.
	txSinceCheckpoint int
	// CheckpointEvery controls automatic checkpointing: after this many
	// committed transactions the engine folds the WAL into a fresh
	// snapshot. Zero disables automatic checkpoints.
	CheckpointEvery int
}

// Options tunes OpenWith.
type Options struct {
	// FS is the filesystem durability I/O goes through; nil selects the
	// real disk. Tests inject an iofault.Faults controller here.
	FS iofault.FS
	// Salvage accepts data loss on mid-log WAL corruption: instead of
	// refusing with ErrWALCorrupt, recovery keeps the intact prefix
	// before the damage and truncates the rest. RecoveryInfo.Salvaged
	// reports that it happened.
	Salvage bool
}

// RecoveryInfo describes what crash recovery found and did during Open.
type RecoveryInfo struct {
	SnapshotGen    uint64 // checkpoint generation of the loaded snapshot
	WALEpoch       uint64 // epoch declared by the log's header frame
	StaleWAL       bool   // log predated the snapshot and was discarded
	ReplayedTx     int    // committed transactions re-applied from the log
	Tail           string // tail classification: clean / torn-tail / ...
	TruncatedBytes int64  // torn-tail bytes removed from the log
	Salvaged       bool   // mid-log corruption was truncated under Salvage
}

// Open opens (creating if necessary) a database in dir. An empty dir
// yields an in-memory database with no durability.
func Open(dir string) (*DB, error) { return OpenWith(dir, Options{}) }

// OpenWith opens a database with explicit recovery options.
//
// Recovery proceeds: load + checksum-verify the snapshot, parse the
// log, classify its tail. A clean or torn tail recovers normally (the
// torn region — a crash mid-append, never acknowledged — is truncated
// away). Mid-log corruption refuses with ErrWALCorrupt unless
// opts.Salvage. A log whose epoch predates the snapshot's generation
// is a checkpoint that crashed between snapshot rename and log
// rotation; its contents are already folded into the snapshot, so it
// is discarded, not replayed.
func OpenWith(dir string, opts Options) (*DB, error) {
	db := &DB{
		cat:             NewCatalog(),
		data:            make(map[string]*tableData),
		indexes:         make(map[string]indexDef),
		plans:           newPlanCache(DefaultPlanCacheCapacity),
		dir:             dir,
		fs:              opts.FS,
		nowFn:           time.Now,
		nextTx:          1,
		nextRow:         1,
		CheckpointEvery: 1024,
	}
	if db.fs == nil {
		db.fs = iofault.Disk{}
	}
	if dir == "" {
		return db, nil
	}
	if err := db.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db.replaying = true
	if err := db.loadSnapshotLocked(); err != nil {
		return nil, err
	}
	db.recovery.SnapshotGen = db.gen
	walPath := filepath.Join(dir, "wal.log")
	rep, err := replayWAL(db.fs, walPath)
	if err != nil {
		return nil, err
	}
	db.recovery.WALEpoch = rep.epoch
	db.recovery.Tail = rep.tail.String()
	switch {
	case rep.total == 0:
		// No log (first boot, or clean checkpoint): nothing to decide.
	case rep.hasEpoch && rep.epoch < db.gen:
		// Stale log from before the snapshot's checkpoint: the crash hit
		// between snapshot rename and log rotation. Everything in it is
		// in the snapshot already; replaying would double-apply.
		db.recovery.StaleWAL = true
		if err := db.fs.Truncate(walPath, 0); err != nil {
			return nil, err
		}
		rep = walReplay{tail: tailClean}
	case rep.hasEpoch && rep.epoch > db.gen:
		// A log from the future of our snapshot: the snapshot rename
		// reached disk but a previous snapshot is what we read, or the
		// directory was hand-assembled. Either way replaying records
		// that assume a newer base would corrupt silently — refuse.
		return nil, fmt.Errorf("%w: log epoch %d is newer than snapshot generation %d", ErrWALCorrupt, rep.epoch, db.gen)
	case !rep.hasEpoch && rep.goodLen > 0:
		// Pre-epoch log format (or a first frame lost to corruption with
		// the rest intact — replayWAL reports the latter as tailCorrupt
		// only via frame damage, so this arm is the legacy-format one).
		// Replay it against generation 0 snapshots only.
		if db.gen != 0 {
			return nil, fmt.Errorf("%w: log carries no epoch but snapshot is generation %d", ErrWALCorrupt, db.gen)
		}
	}
	if rep.tail == tailCorrupt {
		if !opts.Salvage {
			return nil, fmt.Errorf("%w: %s in %s (%d of %d bytes recoverable; reopen with the salvage option to accept losing the rest)",
				ErrWALCorrupt, rep.detail, walPath, rep.goodLen, rep.total)
		}
		db.recovery.Salvaged = true
	}
	if rep.goodLen < rep.total {
		// Torn tail (or salvage): drop the bytes past the last intact
		// frame BEFORE reopening for append, so new commits land on the
		// frame boundary. Appending after garbage would strand every
		// later commit behind an unparseable region — silent loss on the
		// next replay.
		db.recovery.TruncatedBytes = rep.total - rep.goodLen
		if err := db.fs.Truncate(walPath, rep.goodLen); err != nil {
			return nil, err
		}
	}
	for _, tx := range rep.committed {
		for _, rec := range tx {
			if err := db.applyWALRecord(rec); err != nil {
				return nil, fmt.Errorf("sqldb: WAL replay: %w", err)
			}
		}
	}
	db.recovery.ReplayedTx = len(rep.committed)
	db.replaying = false
	wal, err := openWAL(db.fs, walPath, db.gen)
	if err != nil {
		return nil, err
	}
	db.wal = wal
	return db, nil
}

// Recovery reports what crash recovery found when this DB was opened.
func (db *DB) Recovery() RecoveryInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.recovery
}

func (db *DB) applyWALRecord(rec walRecord) error {
	switch rec.op {
	case walOpDDL:
		return db.applyDDLText(rec.ddl)
	case walOpInsert:
		td, ok := db.data[rec.table]
		if !ok {
			return fmt.Errorf("insert into unknown table %s", rec.table)
		}
		if rec.row >= db.nextRow {
			db.nextRow = rec.row + 1
		}
		return td.insert(rec.row, rec.vals)
	case walOpDelete:
		td, ok := db.data[rec.table]
		if !ok {
			return fmt.Errorf("delete from unknown table %s", rec.table)
		}
		_, err := td.delete(rec.row)
		return err
	case walOpUpdate:
		td, ok := db.data[rec.table]
		if !ok {
			return fmt.Errorf("update of unknown table %s", rec.table)
		}
		_, err := td.update(rec.row, rec.vals)
		return err
	}
	return nil
}

// Close flushes a final checkpoint and releases the WAL. A poisoned
// database skips the checkpoint (its durability is already suspect; the
// on-disk state from the last successful fsync is what recovery will
// use) but still releases the log's descriptor.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var cpErr error
	if db.dir != "" && db.poisonErr == nil {
		cpErr = db.checkpointLocked()
	}
	// Always release the descriptor, even when the checkpoint failed —
	// leaking it would hold the old log open across a reopen.
	return errors.Join(cpErr, db.wal.close())
}

// SetLinkController installs the SQL/MED coordinator. It must be set
// before DATALINK columns with FILE LINK CONTROL are written; without a
// controller such writes are rejected, matching a DBMS with no Data
// Links File Manager configured.
func (db *DB) SetLinkController(lc LinkController) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.linkCtl = lc
}

// SetFullScanOnly disables (on=true) or re-enables index-driven access
// paths for SELECT/UPDATE/DELETE execution. With it on, every statement
// scans the heap; results are identical because index paths only ever
// narrow the candidate set before the residual predicate re-checks it.
// This is the ablation baseline for BenchmarkAblation_OrderedIndex and
// the oracle the planner property tests compare against.
func (db *DB) SetFullScanOnly(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.fullScanOnly = on
}

// SetLegacyAggregation routes (on=true) aggregated SELECTs through the
// legacy executor — materialise every source row, partition into groups
// via a map of row slices, then walk each group per aggregate call —
// instead of the fold-based pipeline (agg.go) that streams rows into
// per-group accumulators. Results are identical (the aggregation
// property tests compare the two); this is the ablation baseline for
// BenchmarkAblation_GroupPushdown and the oracle those tests use.
func (db *DB) SetLegacyAggregation(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.legacyAggregation = on
}

// HeapRowReads reports how many rows have been materialised out of the
// named table's heap since it was created (point gets plus scan
// visits). Access-path introspection: the index-only aggregate tests
// assert a COUNT over an indexed predicate leaves this counter
// untouched, proving the answer came from the index alone.
func (db *DB) HeapRowReads(table string) int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, ok := db.data[strings.ToUpper(table)]
	if !ok {
		return 0
	}
	return td.heapReads.Load()
}

// SetClock injects the NOW() clock (tests and simulation).
func (db *DB) SetClock(now func() time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nowFn = now
}

// Catalog exposes the live schema catalogue for read-only use (XUIS
// generation, browsing). Callers must not mutate it.
func (db *DB) Catalog() *Catalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat
}

// Checkpoint folds the WAL into a fresh snapshot and truncates the log.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// poisonLocked records a database-level durability failure. Sticky:
// the first cause wins; every later commit and checkpoint reports it.
func (db *DB) poisonLocked(cause error) {
	if db.poisonErr == nil {
		db.poisonErr = fmt.Errorf("%w: %v", ErrPoisoned, cause)
	}
}

// checkpointLocked folds the log into a fresh snapshot at generation
// gen+1, then rotates the log onto the new generation.
//
// Failure handling is zoned by the snapshot rename. Before it, the old
// snapshot+log pair is untouched and the error is plainly retryable.
// From the rename on, the directory may hold the NEW snapshot while the
// live log still declares the OLD epoch — any commit appended to that
// log would be skipped by replay (stale epoch) if the new snapshot is
// what a restart reads. No further commit may be acknowledged, so every
// failure in that window poisons the database; reopening recovers
// cleanly (the epoch check resolves which side of the rename won).
func (db *DB) checkpointLocked() error {
	if db.dir == "" {
		return nil
	}
	if db.poisonErr != nil {
		return db.poisonErr
	}
	// Fence the WAL before snapshotting: staged-but-unflushed
	// transactions are visible in memory, and if their flush failed
	// they will be unwound — a snapshot taken first would persist them
	// anyway and resurrect "rolled back" data on restart. A barrier
	// failure therefore aborts the checkpoint.
	if db.wal != nil {
		if err := db.wal.barrier(); err != nil {
			db.poisonLocked(err)
			return fmt.Errorf("sqldb: checkpoint aborted, WAL flush failed: %w", err)
		}
	}
	for _, td := range db.data {
		td.compact()
	}
	renamed, err := db.saveSnapshotLocked(db.gen + 1)
	if err != nil {
		if renamed {
			db.poisonLocked(fmt.Errorf("checkpoint failed after snapshot rename: %v", err))
			return db.poisonErr
		}
		return err
	}
	db.gen++
	// The snapshot for db.gen is durable; rotate the log onto it. The
	// old log is now entirely redundant (its epoch is db.gen-1).
	walPath := filepath.Join(db.dir, "wal.log")
	oldErr := db.wal.close()
	db.wal = nil
	if oldErr != nil {
		db.poisonLocked(fmt.Errorf("closing pre-checkpoint WAL: %v", oldErr))
		return db.poisonErr
	}
	if err := db.fs.Truncate(walPath, 0); err != nil && !iofault.IsNotExist(err) {
		db.poisonLocked(fmt.Errorf("truncating pre-checkpoint WAL: %v", err))
		return db.poisonErr
	}
	wal, err := openWAL(db.fs, walPath, db.gen)
	if err != nil {
		db.poisonLocked(fmt.Errorf("rotating WAL onto generation %d: %v", db.gen, err))
		return db.poisonErr
	}
	db.wal = wal
	db.txSinceCheckpoint = 0
	return nil
}

// Exec parses and executes one statement in autocommit mode. SELECT is
// allowed (the result is discarded); use Query to read rows. The parsed
// statement comes from the plan cache, so hot DML loops (link control,
// archival inserts) skip the lexer and parser after the first call.
func (db *DB) Exec(sql string, args ...sqltypes.Value) (Result, error) {
	st, err := db.preparedStmt(sql)
	if err != nil {
		return Result{}, err
	}
	return st.Exec(args...)
}

// ExecScript runs a semicolon-separated DDL/DML script, each statement
// autocommitted.
func (db *DB) ExecScript(sql string) error {
	stmts, err := ParseScript(sql)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if _, ok := stmt.(*TxStmt); ok {
			return fmt.Errorf("sqldb: transaction control not allowed in scripts")
		}
		db.mu.Lock()
		tx := db.newTxLocked()
		_, _, err := db.execStmtLocked(tx, stmt, nil)
		if err != nil {
			rbErr := db.rollbackLocked(tx)
			db.mu.Unlock()
			return errors.Join(err, rbErr)
		}
		finish, err := db.commitLocked(tx)
		db.mu.Unlock()
		if err != nil {
			return err
		}
		if err := finish(); err != nil {
			return err
		}
	}
	return nil
}

// Query parses and executes a SELECT, returning materialised rows. It
// runs under the shared read lock — concurrent Query calls proceed in
// parallel — and reuses the cached plan when the same SQL text was seen
// before.
func (db *DB) Query(sql string, args ...sqltypes.Value) (*Rows, error) {
	st, err := db.preparedStmt(sql)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// ---------- transactions ----------

// txState is the in-flight transaction bookkeeping.
type txState struct {
	id       uint64
	undo     []undoOp
	redo     []walRecord
	usedLink bool

	// Group-commit fields, set when the transaction's frames are staged
	// in the WAL: its commit sequence and the log it was staged into
	// (checkpoints swap db.wal, so the pointer is captured here).
	seq uint64
	wal *walFile
}

type undoKind uint8

const (
	undoInsert undoKind = iota // inverse: delete
	undoDelete                 // inverse: re-insert
	undoUpdate                 // inverse: restore old values
)

type undoOp struct {
	kind  undoKind
	table string
	row   rowID
	vals  []sqltypes.Value // old values for delete/update
}

func (db *DB) newTxLocked() *txState {
	tx := &txState{id: db.nextTx}
	db.nextTx++
	return tx
}

// commitLocked stages the transaction's redo records into the WAL's
// pending buffer (pure memory work — on-disk order therefore matches
// commit order) and returns a finish function the caller MUST invoke
// after releasing db.mu. finish blocks until the records are durable:
// concurrent committers batch behind one fsync there (group commit),
// which is why it runs outside the writer lock. It then runs the
// link-control commit (only after durability, per the LinkController
// contract) and any due checkpoint.
//
// A staging failure rolls the transaction back immediately and returns
// a nil finish. A flush failure inside finish unwinds the WHOLE
// undurable suffix of staged transactions in reverse commit order under
// a re-acquired writer lock (overlapping transactions on the same rows
// must unwind LIFO to restore cleanly); the WAL error is sticky, so
// every transaction in and after the failed batch fails the same way
// rather than diverging from disk. Until finish returns, readers can
// observe the transaction's committed-but-not-yet-durable effects —
// the standard group-commit visibility window.
func (db *DB) commitLocked(tx *txState) (func() error, error) {
	if db.poisonErr != nil {
		rbErr := db.rollbackLocked(tx)
		return nil, errors.Join(db.poisonErr, rbErr)
	}
	staged := false
	var observedSeq uint64
	if db.wal != nil {
		if len(tx.redo) > 0 {
			seq, err := db.wal.stageTx(tx.id, tx.redo)
			if err != nil {
				// Durability failed: the in-memory effects must not survive.
				rbErr := db.rollbackLocked(tx)
				return nil, errors.Join(fmt.Errorf("sqldb: WAL append failed, transaction rolled back: %w", err), rbErr)
			}
			tx.seq = seq
			tx.wal = db.wal
			db.inflight = append(db.inflight, tx)
			staged = true
		} else {
			// Nothing to log, but the transaction's reads may have seen
			// effects of transactions staged ahead of it that are not yet
			// durable (the group-commit visibility window). Its commit
			// depends on that state: a DELETE that matched zero rows
			// because a concurrent not-yet-durable DELETE got there first
			// must not be acknowledged if that earlier flush fails and
			// unwinds. Record the dependency frontier; finish waits on it.
			observedSeq = db.wal.currentSeq()
		}
	}
	db.txSinceCheckpoint++
	checkpointDue := db.CheckpointEvery > 0 && db.txSinceCheckpoint >= db.CheckpointEvery
	wal := db.wal
	linkCtl := db.linkCtl
	finish := func() error {
		if staged {
			werr := wal.waitDurable(tx.seq)
			db.mu.Lock()
			if werr != nil {
				// The fsync failed. The kernel may already have dropped
				// the dirty pages it covered, so no retry can be trusted:
				// poison the database and unwind the undurable suffix.
				db.poisonLocked(werr)
				abortErr := db.unwindFailedLocked()
				db.mu.Unlock()
				return errors.Join(fmt.Errorf("sqldb: WAL flush failed, transaction rolled back: %w", werr), abortErr)
			}
			db.dropInflightLocked(tx)
			db.mu.Unlock()
		} else if wal != nil && observedSeq > 0 {
			// Empty-redo commit: acknowledge only once the state it could
			// have observed is durable (no-op if nothing is in flight).
			if werr := wal.waitDurable(observedSeq); werr != nil {
				return fmt.Errorf("sqldb: commit depends on a WAL flush that failed: %w", werr)
			}
		}
		if tx.usedLink && linkCtl != nil {
			if err := linkCtl.Commit(tx.id); err != nil {
				// The DB transaction is durable; surface the file-side error
				// but do not undo committed state. Reconciliation at startup
				// repairs divergence (see med.Coordinator.Reconcile).
				return fmt.Errorf("sqldb: transaction committed but link control failed: %w", err)
			}
		}
		if checkpointDue {
			db.mu.Lock()
			defer db.mu.Unlock()
			// Re-check: a concurrent finisher may have checkpointed first.
			if db.closed || db.CheckpointEvery <= 0 || db.txSinceCheckpoint < db.CheckpointEvery {
				return nil
			}
			return db.checkpointLocked()
		}
		return nil
	}
	return finish, nil
}

// dropInflightLocked removes a now-durable transaction from the staged
// list. The list is short (bounded by concurrent committers), so a
// linear scan is fine.
func (db *DB) dropInflightLocked(tx *txState) {
	for i, t := range db.inflight {
		if t == tx {
			db.inflight = append(db.inflight[:i], db.inflight[i+1:]...)
			return
		}
	}
}

// unwindFailedLocked rolls back every staged transaction that did not
// reach disk, newest first, after a WAL flush failure. Reverse commit
// order matters: if T1 inserted a row and T2 deleted it, undoing T2
// (re-insert) before T1 (delete) restores the pre-batch state, while
// arrival-order undo would leave the row dangling. Transactions whose
// sequence is already durable are left for their own finish to retire.
// Idempotent: the first finisher to observe the sticky error unwinds
// the batch; later ones find their transaction already gone. The
// returned error aggregates link-control abort failures from the
// unwound transactions.
func (db *DB) unwindFailedLocked() error {
	var durable []*txState
	var abortErrs []error
	for i := len(db.inflight) - 1; i >= 0; i-- {
		tx := db.inflight[i]
		if tx.wal.isDurable(tx.seq) {
			durable = append(durable, tx)
			continue
		}
		if err := db.rollbackLocked(tx); err != nil {
			abortErrs = append(abortErrs, err)
		}
	}
	// durable was collected newest-first; restore commit order.
	for i, j := 0, len(durable)-1; i < j; i, j = i+1, j-1 {
		durable[i], durable[j] = durable[j], durable[i]
	}
	db.inflight = durable
	return errors.Join(abortErrs...)
}

// rollbackLocked undoes the transaction's in-memory effects and releases
// its link-control reservations. The returned error never means the
// database rollback failed (undo cannot fail); it reports a link-control
// abort that could not reach a file server, so a staged prepare may
// survive there until the coordinator retries the abort or reconciles.
func (db *DB) rollbackLocked(tx *txState) error {
	// Apply undo in reverse order.
	for i := len(tx.undo) - 1; i >= 0; i-- {
		u := tx.undo[i]
		td := db.data[u.table]
		if td == nil {
			continue
		}
		switch u.kind {
		case undoInsert:
			td.delete(u.row) //nolint:errcheck // undo of our own insert cannot fail
		case undoDelete:
			td.insert(u.row, u.vals) //nolint:errcheck // restoring a row we removed
		case undoUpdate:
			td.update(u.row, u.vals) //nolint:errcheck // restoring prior values
		}
	}
	if tx.usedLink && db.linkCtl != nil {
		if err := db.linkCtl.Abort(tx.id); err != nil {
			return fmt.Errorf("sqldb: link-control abort of tx %d failed (file-side reservations may leak until retry/reconcile): %w", tx.id, err)
		}
	}
	return nil
}

// Tx is an explicit transaction. It holds the database lock for its whole
// lifetime (serialisable isolation); Commit or Rollback must be called
// exactly once. Do not use the parent DB from the same goroutine while a
// Tx is open.
type Tx struct {
	db    *DB
	state *txState
	done  bool
}

// Begin starts an explicit transaction.
func (db *DB) Begin() (*Tx, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, fmt.Errorf("sqldb: database is closed")
	}
	return &Tx{db: db, state: db.newTxLocked()}, nil
}

// Exec runs a DML statement inside the transaction. DDL is rejected:
// schema changes are autocommit-only in this engine.
func (tx *Tx) Exec(sql string, args ...sqltypes.Value) (Result, error) {
	if tx.done {
		return Result{}, fmt.Errorf("sqldb: transaction already finished")
	}
	stmt, err := Parse(sql)
	if err != nil {
		return Result{}, err
	}
	switch stmt.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt, *SelectStmt:
	default:
		return Result{}, fmt.Errorf("sqldb: only DML is allowed inside a transaction")
	}
	res, _, err := tx.db.execStmtLocked(tx.state, stmt, args)
	return res, err
}

// Query runs a SELECT inside the transaction.
func (tx *Tx) Query(sql string, args ...sqltypes.Value) (*Rows, error) {
	if tx.done {
		return nil, fmt.Errorf("sqldb: transaction already finished")
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	return tx.db.execSelectLocked(sel, args)
}

// Commit makes the transaction durable and releases the lock. The
// fsync (batched with concurrent committers — see commitLocked) happens
// after the lock is released, so readers and other writers proceed
// while this transaction's records reach disk.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("sqldb: transaction already finished")
	}
	tx.done = true
	finish, err := tx.db.commitLocked(tx.state)
	tx.db.mu.Unlock()
	if err != nil {
		return err
	}
	return finish()
}

// Rollback undoes the transaction and releases the lock. A non-nil
// error reports a link-control abort that could not reach its file
// server (the database rollback itself cannot fail).
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	err := tx.db.rollbackLocked(tx.state)
	tx.db.mu.Unlock()
	return err
}

// applyDDLText re-executes logged DDL during snapshot/WAL replay.
func (db *DB) applyDDLText(sql string) error {
	stmt, err := Parse(sql)
	if err != nil {
		return err
	}
	tx := &txState{} // replay: no WAL, no link control
	_, _, err = db.execStmtLocked(tx, stmt, nil)
	return err
}
