package sqldb

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// Typed durability errors. Callers distinguish them with errors.Is.
var (
	// ErrPoisoned marks a database whose durability can no longer be
	// trusted: an fsync failed (the kernel may have dropped the dirty
	// pages it covered, so retrying proves nothing), or a checkpoint
	// died after the new snapshot became visible but before the log was
	// rotated onto it. Every subsequent commit and checkpoint fails with
	// this error; reopening the directory recovers to the last state
	// that verifiably reached disk.
	ErrPoisoned = errors.New("sqldb: database poisoned by durability failure, reopen to recover")
	// ErrWALCorrupt refuses an open whose log shows mid-log corruption:
	// a bad frame with intact frames after it, i.e. damage to data that
	// was once durably written, not a torn crash tail. Opening with
	// Options.Salvage accepts the loss explicitly and recovers the
	// prefix before the damage.
	ErrWALCorrupt = errors.New("sqldb: WAL corrupt")
	// ErrSnapshotCorrupt refuses an open whose snapshot fails its
	// whole-file checksum (or predates it).
	ErrSnapshotCorrupt = errors.New("sqldb: snapshot corrupt")
)

// LinkController receives SQL/MED link-control callbacks from the engine
// whenever rows holding DATALINK values (with FILE LINK CONTROL) are
// inserted, updated or deleted. The med package implements it by talking
// to the file-manager daemons; the engine only defines the protocol:
//
//	PrepareLink/PrepareUnlink are called during statement execution,
//	inside the transaction; they must validate (e.g. file existence for
//	links) and reserve the action.
//	Commit is called after the transaction's WAL records are durable.
//	Abort is called on rollback and must release reservations. An abort
//	failure (an unreachable file server that still holds a staged
//	prepare) is surfaced alongside the rollback so the caller knows the
//	file side may leak until the coordinator retries or reconciles.
type LinkController interface {
	PrepareLink(txID uint64, url string, opts sqltypes.DatalinkOptions) error
	PrepareUnlink(txID uint64, url string, opts sqltypes.DatalinkOptions) error
	Commit(txID uint64) error
	Abort(txID uint64) error
}

// Result reports the effect of a DML statement.
type Result struct {
	RowsAffected int
}

// Rows is a fully materialised query result, detached from live storage:
// it shares no mutable state with the engine, so it stays valid (and
// safe to read from any goroutine) after the query returns, concurrent
// with later writes.
//
// Result rows are backed by a per-statement arena (arena.go). Close
// releases the arena's chunks to a reuse pool wholesale; after Close
// the Data slices must not be read. Close is optional — an unclosed
// result is reclaimed by the GC like any other value, its chunks just
// miss the pool. Callers that retain a result indefinitely while
// closing eagerly elsewhere call Detach first, which copies the rows
// onto the plain heap (the detached-Rows contract: detach forces a
// copy-out, after which Close is a no-op).
type Rows struct {
	Columns []string
	Kinds   []sqltypes.Kind
	Data    [][]sqltypes.Value

	// colIdx caches upper-cased column name → position so per-cell Get
	// calls (the result-page render path) avoid an O(columns) scan.
	colIdx map[string]int

	// arena backs the Data row slices when the statement ran on the
	// arena path; nil for legacy-allocated, detached and cache-served
	// results (whose rows live on the plain heap).
	arena *rowArena
}

// Close releases the result's arena-backed row storage to the reuse
// pool. The Data slices are invalid afterwards. Nil-safe, idempotent,
// and a no-op for detached or legacy-allocated results.
func (r *Rows) Close() {
	if r == nil || r.arena == nil {
		return
	}
	ar := r.arena
	r.arena = nil
	r.Data = nil
	ar.release()
}

// Detach copies the result out of its arena onto the plain heap, so it
// stays valid indefinitely even if the arena's chunks are recycled.
// After Detach, Close is a no-op. Nil-safe; detaching an already plain
// result does nothing.
func (r *Rows) Detach() {
	if r == nil || r.arena == nil {
		return
	}
	ar := r.arena
	r.arena = nil
	if n := len(r.Data); n > 0 {
		ncols := 0
		for _, row := range r.Data {
			ncols += len(row)
		}
		flat := make([]sqltypes.Value, 0, ncols)
		for i, row := range r.Data {
			flat = append(flat, row...)
			r.Data[i] = flat[len(flat)-len(row) : len(flat) : len(flat)]
		}
	}
	ar.release()
}

// newRows builds a result shell with the column-lookup cache populated.
func newRows(columns []string, kinds []sqltypes.Kind) *Rows {
	r := &Rows{Columns: columns, Kinds: kinds}
	r.colIdx = make(map[string]int, len(columns))
	for i, c := range columns {
		key := strings.ToUpper(c)
		if _, dup := r.colIdx[key]; !dup { // first occurrence wins, like the scan
			r.colIdx[key] = i
		}
	}
	return r
}

// ColIndex returns the position of the named result column
// (case-insensitive), or -1.
func (r *Rows) ColIndex(name string) int {
	if r.colIdx != nil {
		if i, ok := r.colIdx[strings.ToUpper(name)]; ok {
			return i
		}
		return -1
	}
	// Hand-constructed Rows (tests, adapters) lack the cache.
	for i, c := range r.Columns {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Get returns row i's value in the named column (Null when absent).
func (r *Rows) Get(i int, col string) sqltypes.Value {
	j := r.ColIndex(col)
	if j < 0 || i < 0 || i >= len(r.Data) {
		return sqltypes.Null
	}
	return r.Data[i][j]
}

// indexDef records a secondary index created with CREATE INDEX.
type indexDef struct {
	Name    string
	Table   string
	Columns []string // upper-cased, index order
	Kind    string   // IndexKindHash or IndexKindOrdered
}

// DB is an embedded SQL database with MVCC snapshot reads and a sharded
// write path. SELECTs (Query, Stmt.Query) take mu as a read lock, pin a
// commit-stamp snapshot at statement start and run concurrently — with
// each other AND with writers, which install new row versions without
// disturbing what an open reader's snapshot sees. Single-table DML with
// no foreign keys in either direction and no DATALINK columns commits
// through a per-table writer latch (tableData.wmu), so non-conflicting
// writes to different tables proceed concurrently through the shared
// WAL group-commit path. DDL, explicit transactions, FK-involved DML
// and maintenance (checkpoint, vacuum) take mu exclusively — the global
// barrier. A DB with an empty directory is purely in-memory; otherwise
// snapshot.db and wal.log in the directory provide durability with
// crash recovery.
//
// Secondary indexes: CREATE INDEX name ON table (col) USING {HASH|
// ORDERED} (ORDERED when USING is omitted) builds an equality hash
// index or an ordered B+tree over the canonical key encoding shared by
// every index (see key.go). The access-path planner (planner.go) routes
// SELECT/UPDATE/DELETE through them for equality, range, BETWEEN and
// IS [NOT] NULL predicates and satisfies single-key ORDER BY from an
// ordered index in either direction. Index definitions live in the WAL
// DDL log and are rebuilt on replay; CREATE/DROP INDEX bumps the schema
// epoch, so cached plans transparently re-plan.
//
// Locking rules (for maintainers):
//   - Catalogue/topology state — cat, data (the map itself), each
//     table's indexes map, indexes, nowFn, fullScanOnly, schemaEpoch,
//     closed — is written only under mu.Lock and may be read under
//     mu.RLock.
//   - Row and index CONTENT is MVCC-stamped: readers traverse versions
//     lock-free (or under short tableData.latch read sections) at the
//     snapshot pinned by readSnapshot; writers serialise per table on
//     tableData.wmu while holding mu.RLock, or skip wmu under mu.Lock.
//     Lock order: mu (any mode) → wmu → latch/commitMu. Never acquire
//     mu while holding commitMu or a wmu.
//   - Commit-path state — wal, inflight, poisonErr, txSinceCheckpoint,
//     lastTS advancement — is guarded by commitMu, so sharded writers
//     holding only mu.RLock commit safely. Exclusive paths (checkpoint,
//     unwind, Close) take commitMu too.
//   - Query results are fully materialised copies, never views into
//     storage, so they outlive the read lock.
//   - The plan cache (plans) and per-statement plan builds (Stmt.mu)
//     have their own locks, never held while acquiring mu.
//   - Commit durability happens OUTSIDE mu: commitTx stages WAL frames
//     and stamps versions under commitMu, then returns a finish closure
//     that waits for the group-commit flush after every engine lock is
//     released, so readers and other writers overlap with the fsync.
//     The walFile has its own mutex and must never be touched under mu
//     except through stageTx/checkpointLocked/vacuumLocked.
type DB struct {
	// governState holds the statement-governance machinery: default
	// statement timeout, memory budget pool, admission semaphore and
	// the Close drain bookkeeping. See govern.go.
	governState

	mu      sync.RWMutex
	cat     *Catalog
	data    map[string]*tableData
	indexes map[string]indexDef // index name (upper) → definition
	nextRow atomic.Uint64       // row-id allocator (sharded writers race)
	nextTx  atomic.Uint64       // transaction-id allocator

	// commitMu serialises the commit point: WAL staging, commit-stamp
	// allocation and lastTS publication happen under it, so on-disk
	// order, stamp order and visibility order all agree. See the
	// locking rules above for what else it guards.
	commitMu sync.Mutex
	// lastTS is the newest published commit stamp; readSnapshot loads it
	// to pin a statement's snapshot. Starts at baseStamp so snapshot-
	// loaded rows are visible to every reader.
	lastTS atomic.Uint64

	// Background vacuum coordination: vacRunning admits one auto-vacuum
	// at a time, vacWG lets Close wait the goroutine out.
	vacRunning atomic.Bool
	vacWG      sync.WaitGroup

	// schemaEpoch counts DDL statements. Prepared plans record the epoch
	// they were bound at and re-bind when it moves, so no cached plan
	// ever executes against a changed catalogue.
	schemaEpoch uint64
	// inflight lists transactions whose WAL frames are staged but whose
	// durability is not yet acknowledged, in commit order. On a flush
	// failure the whole undurable suffix is unwound in REVERSE commit
	// order (see unwindFailedLocked) so overlapping transactions restore
	// cleanly.
	inflight []*txState
	// plans is the LRU of prepared statements Exec/Query consult, so
	// unprepared callers get statement caching for free.
	plans *planCache

	// met is the telemetry registry and resolved metric handles; always
	// non-nil (set in OpenWith before any statement can run).
	met *dbMetrics
	// lastCommitWall is the wall-clock UnixNano of the newest published
	// commit stamp, feeding the sqldb_snapshot_age_ns gauge.
	lastCommitWall atomic.Int64
	// traceThresholdNs > 0 turns on per-statement tracing; statements at
	// or above it emit a slow-query JSON line. See SetTraceThreshold.
	traceThresholdNs atomic.Int64
	slowMu           sync.Mutex
	slowLog          io.Writer

	dir       string
	fs        iofault.FS // filesystem all durability I/O goes through
	gen       uint64     // checkpoint generation of the live snapshot+log
	wal       *walFile
	linkCtl   LinkController
	ddlLog    []string
	replaying bool
	closed    bool

	// poisonErr is the sticky database-level durability failure (wraps
	// ErrPoisoned). Set when a WAL flush fails or a checkpoint dies in
	// its non-atomic window; checked at every commit and checkpoint.
	poisonErr error

	// recovery describes what the Open that produced this DB found.
	recovery RecoveryInfo

	// legacyAggregation routes aggregated SELECTs through the
	// materialise-then-group executor instead of the fold pipeline —
	// the ablation baseline and property oracle. See SetLegacyAggregation.
	legacyAggregation bool

	// legacyResults disables the arena/columnar result path: every
	// result row is an individual make, the pre-arena behaviour — the
	// ablation baseline and property oracle. See SetLegacyResultAlloc.
	legacyResults bool

	// rcache is the opt-in query result cache (resultcache.go); nil
	// when disabled. Swapped atomically so the read path loads it
	// without touching mu's write side.
	rcache atomic.Pointer[resultCache]

	// fullScanOnly disables index access paths at execution time (the
	// planner still runs; its choice is ignored). Ablation and
	// property-testing knob — see SetFullScanOnly.
	fullScanOnly bool

	// nowFn supplies the clock for NOW(); injectable for deterministic
	// tests and the network-simulated experiments.
	nowFn func() time.Time

	// walBytesSinceCheckpoint triggers automatic checkpoints.
	txSinceCheckpoint int
	// CheckpointEvery controls automatic checkpointing: after this many
	// committed transactions the engine folds the WAL into a fresh
	// snapshot. Zero disables automatic checkpoints.
	CheckpointEvery int
	// AutoVacuumDeadRows triggers a background vacuum once the total
	// count of dead row versions and dead index entries across all
	// tables exceeds it. Zero disables auto-vacuum (DB.Vacuum and
	// checkpoints still reclaim).
	AutoVacuumDeadRows int64
}

// Options tunes OpenWith.
type Options struct {
	// FS is the filesystem durability I/O goes through; nil selects the
	// real disk. Tests inject an iofault.Faults controller here.
	FS iofault.FS
	// Salvage accepts data loss on mid-log WAL corruption: instead of
	// refusing with ErrWALCorrupt, recovery keeps the intact prefix
	// before the damage and truncates the rest. RecoveryInfo.Salvaged
	// reports that it happened.
	Salvage bool
	// MaxConcurrentStatements bounds how many statements execute at
	// once. Over the limit, arrivals wait in a bounded queue (length
	// AdmissionQueue); a full queue sheds with ErrAdmissionRejected.
	// Zero disables admission control.
	MaxConcurrentStatements int
	// AdmissionQueue is the admission wait-queue bound; defaults to
	// 4×MaxConcurrentStatements when zero.
	AdmissionQueue int
	// MemoryBudget caps the bytes buffered by hash aggregation, join
	// hash builds and sort/materialise buffers across all concurrent
	// statements; a statement that would exceed it fails with
	// ErrMemoryBudget. Zero means unlimited.
	MemoryBudget int64
}

// RecoveryInfo describes what crash recovery found and did during Open.
type RecoveryInfo struct {
	SnapshotGen    uint64 // checkpoint generation of the loaded snapshot
	WALEpoch       uint64 // epoch declared by the log's header frame
	StaleWAL       bool   // log predated the snapshot and was discarded
	ReplayedTx     int    // committed transactions re-applied from the log
	Tail           string // tail classification: clean / torn-tail / ...
	TruncatedBytes int64  // torn-tail bytes removed from the log
	Salvaged       bool   // mid-log corruption was truncated under Salvage
}

// Open opens (creating if necessary) a database in dir. An empty dir
// yields an in-memory database with no durability.
func Open(dir string) (*DB, error) { return OpenWith(dir, Options{}) }

// OpenWith opens a database with explicit recovery options.
//
// Recovery proceeds: load + checksum-verify the snapshot, parse the
// log, classify its tail. A clean or torn tail recovers normally (the
// torn region — a crash mid-append, never acknowledged — is truncated
// away). Mid-log corruption refuses with ErrWALCorrupt unless
// opts.Salvage. A log whose epoch predates the snapshot's generation
// is a checkpoint that crashed between snapshot rename and log
// rotation; its contents are already folded into the snapshot, so it
// is discarded, not replayed.
func OpenWith(dir string, opts Options) (*DB, error) {
	db := &DB{
		cat:                NewCatalog(),
		data:               make(map[string]*tableData),
		indexes:            make(map[string]indexDef),
		plans:              newPlanCache(DefaultPlanCacheCapacity),
		dir:                dir,
		fs:                 opts.FS,
		nowFn:              time.Now,
		CheckpointEvery:    1024,
		AutoVacuumDeadRows: 16384,
	}
	db.nextTx.Store(1)
	db.nextRow.Store(1)
	db.lastTS.Store(baseStamp)
	db.initGovern(opts)
	db.met = newDBMetrics(db)
	if db.fs == nil {
		db.fs = iofault.Disk{}
	}
	if dir == "" {
		return db, nil
	}
	if err := db.fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	db.replaying = true
	if err := db.loadSnapshotLocked(); err != nil {
		return nil, err
	}
	db.recovery.SnapshotGen = db.gen
	walPath := filepath.Join(dir, "wal.log")
	rep, err := replayWAL(db.fs, walPath)
	if err != nil {
		return nil, err
	}
	db.recovery.WALEpoch = rep.epoch
	db.recovery.Tail = rep.tail.String()
	switch {
	case rep.total == 0:
		// No log (first boot, or clean checkpoint): nothing to decide.
	case rep.hasEpoch && rep.epoch < db.gen:
		// Stale log from before the snapshot's checkpoint: the crash hit
		// between snapshot rename and log rotation. Everything in it is
		// in the snapshot already; replaying would double-apply.
		db.recovery.StaleWAL = true
		if err := db.fs.Truncate(walPath, 0); err != nil {
			return nil, err
		}
		rep = walReplay{tail: tailClean}
	case rep.hasEpoch && rep.epoch > db.gen:
		// A log from the future of our snapshot: the snapshot rename
		// reached disk but a previous snapshot is what we read, or the
		// directory was hand-assembled. Either way replaying records
		// that assume a newer base would corrupt silently — refuse.
		return nil, fmt.Errorf("%w: log epoch %d is newer than snapshot generation %d", ErrWALCorrupt, rep.epoch, db.gen)
	case !rep.hasEpoch && rep.goodLen > 0:
		// Pre-epoch log format (or a first frame lost to corruption with
		// the rest intact — replayWAL reports the latter as tailCorrupt
		// only via frame damage, so this arm is the legacy-format one).
		// Replay it against generation 0 snapshots only.
		if db.gen != 0 {
			return nil, fmt.Errorf("%w: log carries no epoch but snapshot is generation %d", ErrWALCorrupt, db.gen)
		}
	}
	if rep.tail == tailCorrupt {
		if !opts.Salvage {
			return nil, fmt.Errorf("%w: %s in %s (%d of %d bytes recoverable; reopen with the salvage option to accept losing the rest)",
				ErrWALCorrupt, rep.detail, walPath, rep.goodLen, rep.total)
		}
		db.recovery.Salvaged = true
	}
	if rep.goodLen < rep.total {
		// Torn tail (or salvage): drop the bytes past the last intact
		// frame BEFORE reopening for append, so new commits land on the
		// frame boundary. Appending after garbage would strand every
		// later commit behind an unparseable region — silent loss on the
		// next replay.
		db.recovery.TruncatedBytes = rep.total - rep.goodLen
		if err := db.fs.Truncate(walPath, rep.goodLen); err != nil {
			return nil, err
		}
	}
	for _, tx := range rep.committed {
		// Each replayed transaction gets its own commit stamp, in log
		// order — the same order the stamps were allocated before the
		// crash — so post-replay visibility matches pre-crash visibility.
		var refs mvccRefs
		for _, rec := range tx {
			if err := db.applyWALRecord(rec, &refs); err != nil {
				return nil, fmt.Errorf("sqldb: WAL replay: %w", err)
			}
		}
		if !refs.empty() {
			ts := db.lastTS.Load() + 1
			refs.commit(ts)
			db.lastTS.Store(ts)
		}
	}
	db.recovery.ReplayedTx = len(rep.committed)
	db.replaying = false
	wal, err := openWAL(db.fs, walPath, db.gen)
	if err != nil {
		return nil, err
	}
	wal.setMetrics(db.met.walMetrics())
	db.wal = wal
	return db, nil
}

// Recovery reports what crash recovery found when this DB was opened.
func (db *DB) Recovery() RecoveryInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.recovery
}

func (db *DB) applyWALRecord(rec walRecord, refs *mvccRefs) error {
	switch rec.op {
	case walOpDDL:
		return db.applyDDLText(rec.ddl)
	case walOpInsert:
		td, ok := db.data[rec.table]
		if !ok {
			return fmt.Errorf("insert into unknown table %s", rec.table)
		}
		if uint64(rec.row) >= db.nextRow.Load() {
			db.nextRow.Store(uint64(rec.row) + 1)
		}
		return td.insert(rec.row, rec.vals, refs)
	case walOpDelete:
		td, ok := db.data[rec.table]
		if !ok {
			return fmt.Errorf("delete from unknown table %s", rec.table)
		}
		_, err := td.delete(rec.row, refs)
		return err
	case walOpUpdate:
		td, ok := db.data[rec.table]
		if !ok {
			return fmt.Errorf("update of unknown table %s", rec.table)
		}
		_, err := td.update(rec.row, rec.vals, refs)
		return err
	}
	return nil
}

// Close drains in-flight statements, flushes a final checkpoint and
// releases the WAL. The drain is cooperative: Close first broadcasts
// cancellation (new statements are refused with ErrClosed, running
// statements observe the broadcast at their next interrupt checkpoint
// and fail with ErrCanceled), then waits up to CloseGrace for the
// admitted set to finish before proceeding to teardown — at which point
// mu.Lock still serialises with any straggler holding the read lock. A
// poisoned database skips the checkpoint (its durability is already
// suspect; the on-disk state from the last successful fsync is what
// recovery will use) but still releases the log's descriptor. Any
// background vacuum is waited out, and the slow-query log writer is
// flushed and closed, before Close returns.
func (db *DB) Close() error {
	// Stop admission and cancel in-flight statements. Idempotent.
	db.closeOnce.Do(func() {
		db.closingFlag.Store(true)
		close(db.closing)
	})
	drained := make(chan struct{})
	go func() {
		db.stmtWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(db.CloseGrace):
		// A statement ignored the broadcast past the grace period.
		// Teardown proceeds; mu.Lock below is the hard barrier.
	}
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	var cpErr error
	if db.dir != "" && db.poisonErr == nil {
		cpErr = db.checkpointLocked()
	}
	// Always release the descriptor, even when the checkpoint failed —
	// leaking it would hold the old log open across a reopen.
	db.commitMu.Lock()
	err := errors.Join(cpErr, db.wal.close())
	db.commitMu.Unlock()
	db.mu.Unlock()
	// A pending auto-vacuum observes closed under mu.Lock and bails.
	db.vacWG.Wait()
	// Flush and release the slow-query log so buffered trace lines are
	// not lost when the process exits right after Close.
	db.slowMu.Lock()
	if db.slowLog != nil {
		type flusher interface{ Flush() error }
		if f, ok := db.slowLog.(flusher); ok {
			err = errors.Join(err, f.Flush())
		}
		if c, ok := db.slowLog.(io.Closer); ok {
			err = errors.Join(err, c.Close())
		}
		db.slowLog = nil
	}
	db.slowMu.Unlock()
	return err
}

// SetLinkController installs the SQL/MED coordinator. It must be set
// before DATALINK columns with FILE LINK CONTROL are written; without a
// controller such writes are rejected, matching a DBMS with no Data
// Links File Manager configured.
func (db *DB) SetLinkController(lc LinkController) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.linkCtl = lc
}

// SetFullScanOnly disables (on=true) or re-enables index-driven access
// paths for SELECT/UPDATE/DELETE execution. With it on, every statement
// scans the heap; results are identical because index paths only ever
// narrow the candidate set before the residual predicate re-checks it.
// This is the ablation baseline for BenchmarkAblation_OrderedIndex and
// the oracle the planner property tests compare against.
func (db *DB) SetFullScanOnly(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.fullScanOnly = on
}

// SetLegacyAggregation routes (on=true) aggregated SELECTs through the
// legacy executor — materialise every source row, partition into groups
// via a map of row slices, then walk each group per aggregate call —
// instead of the fold-based pipeline (agg.go) that streams rows into
// per-group accumulators. Results are identical (the aggregation
// property tests compare the two); this is the ablation baseline for
// BenchmarkAblation_GroupPushdown and the oracle those tests use.
func (db *DB) SetLegacyAggregation(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.legacyAggregation = on
}

// SetLegacyResultAlloc routes (on=true) result materialisation through
// the pre-arena allocator — one make([]Value, ...) per output row —
// instead of the per-statement arena and columnar projection batches
// (arena.go). Results are identical (the arena property tests compare
// the two); this is the ablation baseline for BenchmarkAblation_Arena
// and the oracle those tests use.
func (db *DB) SetLegacyResultAlloc(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.legacyResults = on
}

// SetResultCache enables the query result cache with the given byte
// capacity, or disables it (bytes <= 0). The cache serves repeated
// auto-commit SELECTs from completed small result sets, invalidated by
// table writes (commit-stamp publication) and DDL (schema epoch), so a
// hit is always exactly what re-running the statement at the caller's
// snapshot would return — see resultcache.go for the visibility
// contract. Cached bytes are charged against Options.MemoryBudget when
// one is set. Enabling replaces (and empties) any previous cache.
func (db *DB) SetResultCache(bytes int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	old := db.rcache.Load()
	if bytes <= 0 {
		db.rcache.Store(nil)
	} else {
		db.rcache.Store(newResultCache(db, bytes))
	}
	if old != nil {
		old.flush() // refund budget charges
	}
}

// flushResultCache empties the result cache, if enabled. Called at
// every schema-epoch bump: DDL changes what a statement text means, so
// nothing cached under the old catalogue may be served.
func (db *DB) flushResultCache() {
	if rc := db.rcache.Load(); rc != nil {
		rc.flush()
	}
}

// HeapRowReads reports how many rows have been materialised out of the
// named table's heap since it was created (point gets plus scan
// visits). Access-path introspection: the index-only aggregate tests
// assert a COUNT over an indexed predicate leaves this counter
// untouched, proving the answer came from the index alone.
func (db *DB) HeapRowReads(table string) int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	td, ok := db.data[strings.ToUpper(table)]
	if !ok {
		return 0
	}
	return td.heapReads.Load()
}

// SetClock injects the NOW() clock (tests and simulation).
func (db *DB) SetClock(now func() time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.nowFn = now
}

// Catalog exposes the live schema catalogue for read-only use (XUIS
// generation, browsing). Callers must not mutate it.
func (db *DB) Catalog() *Catalog {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.cat
}

// Checkpoint folds the WAL into a fresh snapshot and truncates the log.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked()
}

// poisonLocked records a database-level durability failure. Sticky:
// the first cause wins; every later commit and checkpoint reports it.
// Caller holds commitMu.
func (db *DB) poisonLocked(cause error) {
	if db.poisonErr == nil {
		db.poisonErr = fmt.Errorf("%w: %v", ErrPoisoned, cause)
	}
}

// checkpointLocked folds the log into a fresh snapshot at generation
// gen+1, then rotates the log onto the new generation.
//
// Failure handling is zoned by the snapshot rename. Before it, the old
// snapshot+log pair is untouched and the error is plainly retryable.
// From the rename on, the directory may hold the NEW snapshot while the
// live log still declares the OLD epoch — any commit appended to that
// log would be skipped by replay (stale epoch) if the new snapshot is
// what a restart reads. No further commit may be acknowledged, so every
// failure in that window poisons the database; reopening recovers
// cleanly (the epoch check resolves which side of the rename won).
func (db *DB) checkpointLocked() error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.dir == "" {
		return nil
	}
	if db.poisonErr != nil {
		return db.poisonErr
	}
	// Fence the WAL before snapshotting: staged-but-unflushed
	// transactions are visible in memory, and if their flush failed
	// they will be unwound — a snapshot taken first would persist them
	// anyway and resurrect "rolled back" data on restart. A barrier
	// failure therefore aborts the checkpoint.
	if db.wal != nil {
		if err := db.wal.barrier(); err != nil {
			db.poisonLocked(err)
			return fmt.Errorf("sqldb: checkpoint aborted, WAL flush failed: %w", err)
		}
	}
	// Post-barrier every stamp is resolved and (holding mu exclusively)
	// no snapshot is open, so vacuum can fold version chains down to the
	// single current version each — the image the snapshot writer saves.
	ts := db.lastTS.Load()
	for _, td := range db.data {
		td.vacuum(ts)
	}
	renamed, err := db.saveSnapshotLocked(db.gen + 1)
	if err != nil {
		if renamed {
			db.poisonLocked(fmt.Errorf("checkpoint failed after snapshot rename: %v", err))
			return db.poisonErr
		}
		return err
	}
	db.gen++
	// The snapshot for db.gen is durable; rotate the log onto it. The
	// old log is now entirely redundant (its epoch is db.gen-1).
	walPath := filepath.Join(db.dir, "wal.log")
	oldErr := db.wal.close()
	db.wal = nil
	if oldErr != nil {
		db.poisonLocked(fmt.Errorf("closing pre-checkpoint WAL: %v", oldErr))
		return db.poisonErr
	}
	if err := db.fs.Truncate(walPath, 0); err != nil && !iofault.IsNotExist(err) {
		db.poisonLocked(fmt.Errorf("truncating pre-checkpoint WAL: %v", err))
		return db.poisonErr
	}
	wal, err := openWAL(db.fs, walPath, db.gen)
	if err != nil {
		db.poisonLocked(fmt.Errorf("rotating WAL onto generation %d: %v", db.gen, err))
		return db.poisonErr
	}
	wal.setMetrics(db.met.walMetrics())
	db.wal = wal
	db.txSinceCheckpoint = 0
	return nil
}

// Exec parses and executes one statement in autocommit mode. SELECT is
// allowed (the result is discarded); use Query to read rows. The parsed
// statement comes from the plan cache, so hot DML loops (link control,
// archival inserts) skip the lexer and parser after the first call.
func (db *DB) Exec(sql string, args ...sqltypes.Value) (Result, error) {
	st, err := db.preparedStmt(sql)
	if err != nil {
		return Result{}, err
	}
	return st.Exec(args...)
}

// ExecContext is Exec with cooperative cancellation: the statement is
// subject to admission control, the ctx deadline (or the
// SetStatementTimeout default when ctx has none) and per-row
// cancellation checkpoints, returning ErrCanceled/ErrDeadlineExceeded
// when stopped. A DML statement canceled before its WAL frames are
// staged rolls back cleanly; once staged, it commits (see the
// cancellation-boundary notes in govern.go).
func (db *DB) ExecContext(ctx context.Context, sql string, args ...sqltypes.Value) (Result, error) {
	st, err := db.preparedStmt(sql)
	if err != nil {
		return Result{}, err
	}
	return st.ExecContext(ctx, args...)
}

// ExecScript runs a semicolon-separated DDL/DML script, each statement
// autocommitted.
func (db *DB) ExecScript(sql string) error {
	stmts, err := ParseScript(sql)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if _, ok := stmt.(*TxStmt); ok {
			return fmt.Errorf("sqldb: transaction control not allowed in scripts")
		}
		db.mu.Lock()
		tx := db.newTx()
		_, _, err := db.execStmtLocked(tx, stmt, nil)
		if err != nil {
			rbErr := db.rollbackTx(tx)
			db.mu.Unlock()
			return errors.Join(err, rbErr)
		}
		finish, err := db.commitTx(tx)
		db.mu.Unlock()
		if err != nil {
			return err
		}
		if err := finish(); err != nil {
			return err
		}
	}
	return nil
}

// Query parses and executes a SELECT, returning materialised rows. It
// runs under the shared read lock — concurrent Query calls proceed in
// parallel — and reuses the cached plan when the same SQL text was seen
// before.
func (db *DB) Query(sql string, args ...sqltypes.Value) (*Rows, error) {
	st, err := db.preparedStmt(sql)
	if err != nil {
		return nil, err
	}
	return st.Query(args...)
}

// QueryContext is Query with cooperative cancellation: admission
// control, deadline (ctx's own or the SetStatementTimeout default) and
// per-row checkpoints in every scan, join, sort and fold loop. A
// canceled read leaves no latches held and the database unpoisoned.
func (db *DB) QueryContext(ctx context.Context, sql string, args ...sqltypes.Value) (*Rows, error) {
	st, err := db.preparedStmt(sql)
	if err != nil {
		return nil, err
	}
	return st.QueryContext(ctx, args...)
}

// ---------- transactions ----------

// txState is the in-flight transaction bookkeeping.
type txState struct {
	id       uint64
	refs     mvccRefs // everything this transaction stamped (see storage.go)
	redo     []walRecord
	usedLink bool

	// intr is the owning statement's cancellation checker; nil for
	// internal executions (scripts, replay, explicit Tx). DML row loops
	// poll it so a canceled statement unwinds before its WAL stage.
	intr *interrupt

	// Group-commit fields, set when the transaction's frames are staged
	// in the WAL: its commit sequence and the log it was staged into
	// (checkpoints swap db.wal, so the pointer is captured here).
	seq uint64
	wal *walFile
}

// newTx allocates a transaction. Safe under any mu mode — sharded
// writers holding only the read lock race on the atomic allocator.
func (db *DB) newTx() *txState {
	return &txState{id: db.nextTx.Add(1) - 1}
}

// readSnapshot pins a statement-level snapshot: every transaction whose
// commit stamp was published before the call is visible, everything
// later (and everything in flight) is not.
func (db *DB) readSnapshot() uint64 { return db.lastTS.Load() }

// commitTx stages the transaction's redo records into the WAL's pending
// buffer, allocates its commit stamp and publishes it — all under
// commitMu, so on-disk order, stamp order and visibility order agree —
// and returns a finish function the caller MUST invoke after releasing
// the engine locks. finish blocks until the records are durable:
// concurrent committers batch behind one fsync there (group commit),
// which is why it runs outside the locks. It then runs the link-control
// commit (only after durability, per the LinkController contract), any
// due auto-vacuum and any due checkpoint.
//
// The caller holds mu (read mode for the sharded path, plus the table's
// wmu; write mode for the global paths) across execution AND this call,
// so the stamp is installed before another writer can touch the same
// rows. A staging failure rolls the transaction back immediately and
// returns a nil finish. A flush failure inside finish unwinds the WHOLE
// undurable suffix of staged transactions in reverse commit order under
// a re-acquired exclusive lock (overlapping transactions on the same
// rows must unwind LIFO to restore cleanly); the WAL error is sticky,
// so every transaction in and after the failed batch fails the same way
// rather than diverging from disk. Until finish returns, readers can
// observe the transaction's committed-but-not-yet-durable effects —
// the standard group-commit visibility window.
func (db *DB) commitTx(tx *txState) (func() error, error) {
	db.commitMu.Lock()
	if db.poisonErr != nil {
		perr := db.poisonErr
		db.commitMu.Unlock()
		rbErr := db.rollbackTx(tx)
		return nil, errors.Join(perr, rbErr)
	}
	staged := false
	var observedSeq uint64
	if db.wal != nil {
		if len(tx.redo) > 0 {
			seq, err := db.wal.stageTx(tx.id, tx.redo)
			if err != nil {
				// Durability failed: the in-memory effects must not survive.
				db.commitMu.Unlock()
				rbErr := db.rollbackTx(tx)
				return nil, errors.Join(fmt.Errorf("sqldb: WAL append failed, transaction rolled back: %w", err), rbErr)
			}
			tx.seq = seq
			tx.wal = db.wal
			db.inflight = append(db.inflight, tx)
			staged = true
		} else {
			// Nothing to log, but the transaction's reads may have seen
			// effects of transactions staged ahead of it that are not yet
			// durable (the group-commit visibility window). Its commit
			// depends on that state: a DELETE that matched zero rows
			// because a concurrent not-yet-durable DELETE got there first
			// must not be acknowledged if that earlier flush fails and
			// unwinds. Record the dependency frontier; finish waits on it.
			observedSeq = db.wal.currentSeq()
		}
	}
	// Resolve this transaction's in-flight stamps to a fresh commit
	// stamp, then publish it. Readers pinning a snapshot after the
	// lastTS store see the new versions; open snapshots never do.
	if !tx.refs.empty() {
		ts := db.lastTS.Load() + 1
		tx.refs.commit(ts)
		db.lastTS.Store(ts)
		db.lastCommitWall.Store(time.Now().UnixNano())
	}
	db.met.commits.Inc()
	db.txSinceCheckpoint++
	checkpointDue := db.CheckpointEvery > 0 && db.txSinceCheckpoint >= db.CheckpointEvery
	wal := db.wal
	db.commitMu.Unlock()
	// Result-cache invalidation rides the commit-stamp publish: every
	// entry over a table this transaction touched is dropped. Running
	// after the commitMu release is safe — the per-table lastWrite stamp
	// (stored inside refs.commit above, before lastTS advanced) is the
	// serve-time correctness backstop; this sweep just reclaims memory
	// eagerly. See resultcache.go.
	if rc := db.rcache.Load(); rc != nil && len(tx.refs.touched) > 0 {
		rc.invalidateTables(tx.refs.touched)
	}
	linkCtl := db.linkCtl
	finish := func() error {
		if staged {
			werr := wal.waitDurable(tx.seq)
			if werr != nil {
				// The fsync failed. The kernel may already have dropped
				// the dirty pages it covered, so no retry can be trusted:
				// poison the database and unwind the undurable suffix.
				db.mu.Lock()
				db.commitMu.Lock()
				db.poisonLocked(werr)
				abortErr := db.unwindFailedLocked()
				db.commitMu.Unlock()
				db.mu.Unlock()
				return errors.Join(fmt.Errorf("sqldb: WAL flush failed, transaction rolled back: %w", werr), abortErr)
			}
			db.commitMu.Lock()
			db.dropInflightLocked(tx)
			db.commitMu.Unlock()
		} else if wal != nil && observedSeq > 0 {
			// Empty-redo commit: acknowledge only once the state it could
			// have observed is durable (no-op if nothing is in flight).
			if werr := wal.waitDurable(observedSeq); werr != nil {
				return fmt.Errorf("sqldb: commit depends on a WAL flush that failed: %w", werr)
			}
		}
		if tx.usedLink && linkCtl != nil {
			if err := linkCtl.Commit(tx.id); err != nil {
				// The DB transaction is durable; surface the file-side error
				// but do not undo committed state. Reconciliation at startup
				// repairs divergence (see med.Coordinator.Reconcile).
				return fmt.Errorf("sqldb: transaction committed but link control failed: %w", err)
			}
		}
		db.maybeAutoVacuum()
		if checkpointDue {
			db.mu.Lock()
			defer db.mu.Unlock()
			if db.closed {
				return nil
			}
			// Re-check: a concurrent finisher may have checkpointed first.
			db.commitMu.Lock()
			due := db.CheckpointEvery > 0 && db.txSinceCheckpoint >= db.CheckpointEvery
			db.commitMu.Unlock()
			if !due {
				return nil
			}
			return db.checkpointLocked()
		}
		return nil
	}
	return finish, nil
}

// dropInflightLocked removes a now-durable transaction from the staged
// list. The list is short (bounded by concurrent committers), so a
// linear scan is fine. Caller holds commitMu.
func (db *DB) dropInflightLocked(tx *txState) {
	for i, t := range db.inflight {
		if t == tx {
			db.inflight = append(db.inflight[:i], db.inflight[i+1:]...)
			return
		}
	}
}

// unwindFailedLocked rolls back every staged transaction that did not
// reach disk, newest first, after a WAL flush failure. Reverse commit
// order matters: if T1 inserted a row and T2 deleted it, undoing T2
// (re-insert) before T1 (delete) restores the pre-batch state, while
// arrival-order undo would leave the row dangling. Transactions whose
// sequence is already durable are left for their own finish to retire.
// Idempotent: the first finisher to observe the sticky error unwinds
// the batch; later ones find their transaction already gone. The
// returned error aggregates link-control abort failures from the
// unwound transactions. Caller holds mu exclusively (the stamp flips
// and structural undo must not interleave with sharded writers) plus
// commitMu (inflight).
func (db *DB) unwindFailedLocked() error {
	var durable []*txState
	var abortErrs []error
	for i := len(db.inflight) - 1; i >= 0; i-- {
		tx := db.inflight[i]
		if tx.wal.isDurable(tx.seq) {
			durable = append(durable, tx)
			continue
		}
		if err := db.rollbackTx(tx); err != nil {
			abortErrs = append(abortErrs, err)
		}
	}
	// durable was collected newest-first; restore commit order.
	for i, j := 0, len(durable)-1; i < j; i, j = i+1, j-1 {
		durable[i], durable[j] = durable[j], durable[i]
	}
	db.inflight = durable
	return errors.Join(abortErrs...)
}

// rollbackTx undoes the transaction's in-memory effects — flipping its
// MVCC stamps to the aborted state and reversing structural side
// effects, see mvccRefs.abort — and releases its link-control
// reservations. The caller must own the touched tables' writer slots
// (wmu, or mu exclusively). The returned error never means the database
// rollback failed (stamp flips cannot fail); it reports a link-control
// abort that could not reach a file server, so a staged prepare may
// survive there until the coordinator retries the abort or reconciles.
func (db *DB) rollbackTx(tx *txState) error {
	tx.refs.abort()
	if tx.usedLink && db.linkCtl != nil {
		if err := db.linkCtl.Abort(tx.id); err != nil {
			return fmt.Errorf("sqldb: link-control abort of tx %d failed (file-side reservations may leak until retry/reconcile): %w", tx.id, err)
		}
	}
	return nil
}

// ---------- vacuum ----------

// Vacuum reclaims every dead row version and dead index entry across
// all tables: version chains fold down to the single current committed
// version, index entries ended by committed deletes/updates are removed
// (B+tree nodes merge as they empty), and the per-table live-count
// history collapses. It takes the global barrier — no statement is in
// flight while it runs — and fences the WAL first, so no stamp it
// reclaims can later be unwound.
func (db *DB) Vacuum() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("sqldb: database is closed")
	}
	return db.vacuumLocked()
}

// vacuumLocked is Vacuum under an already-held exclusive mu.
func (db *DB) vacuumLocked() error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.wal != nil {
		if err := db.wal.barrier(); err != nil {
			// Same contract as the checkpoint fence: an fsync failed, the
			// staged suffix will be unwound — reclaiming now would treat
			// soon-to-be-aborted versions as committed.
			db.poisonLocked(err)
			return fmt.Errorf("sqldb: vacuum aborted, WAL flush failed: %w", err)
		}
	}
	start := time.Now()
	var reclaimed int64
	ts := db.lastTS.Load()
	for _, td := range db.data {
		reclaimed += td.dead.Load()
		td.vacuum(ts)
	}
	db.met.vacuumNs.ObserveSince(start)
	db.met.vacuumPass.Inc()
	db.met.vacuumRows.Add(reclaimed)
	return nil
}

// maybeAutoVacuum starts a background vacuum when the dead-version debt
// crosses the configured threshold. At most one runs at a time; it
// serialises with everything else on mu like any maintenance op.
func (db *DB) maybeAutoVacuum() {
	threshold := db.AutoVacuumDeadRows
	if threshold <= 0 || db.vacRunning.Load() {
		return
	}
	var dead int64
	db.mu.RLock()
	for _, td := range db.data {
		dead += td.dead.Load()
	}
	db.mu.RUnlock()
	if dead < threshold || !db.vacRunning.CompareAndSwap(false, true) {
		return
	}
	db.met.autoVacuum.Inc()
	db.vacWG.Add(1)
	go func() {
		defer db.vacWG.Done()
		defer db.vacRunning.Store(false)
		db.mu.Lock()
		defer db.mu.Unlock()
		if db.closed {
			return
		}
		db.vacuumLocked() //nolint:errcheck // best-effort; sticky errors resurface at commit
	}()
}

// Tx is an explicit transaction. It holds the database lock for its whole
// lifetime (serialisable isolation); Commit or Rollback must be called
// exactly once. Do not use the parent DB from the same goroutine while a
// Tx is open.
type Tx struct {
	db    *DB
	state *txState
	done  bool
}

// Begin starts an explicit transaction.
func (db *DB) Begin() (*Tx, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, fmt.Errorf("sqldb: database is closed")
	}
	return &Tx{db: db, state: db.newTx()}, nil
}

// Exec runs a DML statement inside the transaction. DDL is rejected:
// schema changes are autocommit-only in this engine.
func (tx *Tx) Exec(sql string, args ...sqltypes.Value) (Result, error) {
	if tx.done {
		return Result{}, fmt.Errorf("sqldb: transaction already finished")
	}
	stmt, err := Parse(sql)
	if err != nil {
		return Result{}, err
	}
	switch stmt.(type) {
	case *InsertStmt, *UpdateStmt, *DeleteStmt, *SelectStmt:
	default:
		return Result{}, fmt.Errorf("sqldb: only DML is allowed inside a transaction")
	}
	res, _, err := tx.db.execStmtLocked(tx.state, stmt, args)
	return res, err
}

// Query runs a SELECT inside the transaction.
func (tx *Tx) Query(sql string, args ...sqltypes.Value) (*Rows, error) {
	if tx.done {
		return nil, fmt.Errorf("sqldb: transaction already finished")
	}
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	return tx.db.execSelectLocked(sel, args, tx.state.intr)
}

// Commit makes the transaction durable and releases the lock. The
// fsync (batched with concurrent committers — see commitLocked) happens
// after the lock is released, so readers and other writers proceed
// while this transaction's records reach disk.
func (tx *Tx) Commit() error {
	if tx.done {
		return fmt.Errorf("sqldb: transaction already finished")
	}
	tx.done = true
	finish, err := tx.db.commitTx(tx.state)
	tx.db.mu.Unlock()
	if err != nil {
		return err
	}
	return finish()
}

// Rollback undoes the transaction and releases the lock. A non-nil
// error reports a link-control abort that could not reach its file
// server (the database rollback itself cannot fail).
func (tx *Tx) Rollback() error {
	if tx.done {
		return nil
	}
	tx.done = true
	err := tx.db.rollbackTx(tx.state)
	tx.db.mu.Unlock()
	return err
}

// applyDDLText re-executes logged DDL during snapshot/WAL replay.
func (db *DB) applyDDLText(sql string) error {
	stmt, err := Parse(sql)
	if err != nil {
		return err
	}
	tx := &txState{} // replay: no WAL, no link control
	_, _, err = db.execStmtLocked(tx, stmt, nil)
	return err
}
