package sqldb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sqltypes"
)

func mustExec(t *testing.T, db *DB, sql string, args ...sqltypes.Value) Result {
	t.Helper()
	res, err := db.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, sql string, args ...sqltypes.Value) *Rows {
	t.Helper()
	rows, err := db.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rows
}

func memDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestCreateInsertSelect(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE author (author_key VARCHAR(30) PRIMARY KEY, name VARCHAR(100) NOT NULL, email VARCHAR(100))`)
	res := mustExec(t, db, `INSERT INTO author (author_key, name, email) VALUES ('A1', 'Papiani', 'p@soton.ac.uk'), ('A2', 'Wason', NULL)`)
	if res.RowsAffected != 2 {
		t.Fatalf("RowsAffected = %d, want 2", res.RowsAffected)
	}
	rows := mustQuery(t, db, `SELECT name FROM author WHERE author_key = 'A1'`)
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "Papiani" {
		t.Fatalf("got %v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT * FROM author ORDER BY author_key`)
	if len(rows.Columns) != 3 || rows.Columns[0] != "AUTHOR_KEY" {
		t.Fatalf("columns = %v", rows.Columns)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows.Data))
	}
	if !rows.Data[1][2].IsNull() {
		t.Fatalf("expected NULL email for A2, got %v", rows.Data[1][2])
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'a')`)
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 'b')`); err == nil {
		t.Fatal("duplicate PK insert succeeded")
	}
	// The failed statement must not leave a row behind.
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].Int() != 1 {
		t.Fatalf("count = %v, want 1", rows.Data[0][0])
	}
}

func TestNotNullAndDefault(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, status VARCHAR(10) DEFAULT 'new', note VARCHAR(10) NOT NULL)`)
	if _, err := db.Exec(`INSERT INTO t (id) VALUES (1)`); err == nil {
		t.Fatal("NOT NULL violation not caught")
	}
	mustExec(t, db, `INSERT INTO t (id, note) VALUES (1, 'x')`)
	rows := mustQuery(t, db, `SELECT status FROM t`)
	if rows.Data[0][0].AsString() != "new" {
		t.Fatalf("default not applied: %v", rows.Data[0][0])
	}
}

func TestForeignKeyEnforcement(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE author (author_key VARCHAR(30) PRIMARY KEY, name VARCHAR(100))`)
	mustExec(t, db, `CREATE TABLE simulation (
		simulation_key VARCHAR(30) PRIMARY KEY,
		author_key VARCHAR(30) REFERENCES author (author_key),
		title VARCHAR(200))`)
	mustExec(t, db, `INSERT INTO author VALUES ('A1', 'Papiani')`)
	mustExec(t, db, `INSERT INTO simulation VALUES ('S1', 'A1', 'Channel flow')`)

	if _, err := db.Exec(`INSERT INTO simulation VALUES ('S2', 'A9', 'Bad author')`); err == nil {
		t.Fatal("FK violation on insert not caught")
	}
	if _, err := db.Exec(`DELETE FROM author WHERE author_key = 'A1'`); err == nil {
		t.Fatal("RESTRICT delete of referenced parent not caught")
	}
	if _, err := db.Exec(`UPDATE author SET author_key = 'A2' WHERE author_key = 'A1'`); err == nil {
		t.Fatal("RESTRICT update of referenced key not caught")
	}
	// NULL FK is allowed.
	mustExec(t, db, `INSERT INTO simulation VALUES ('S3', NULL, 'Anonymous')`)
	// Deleting the child releases the parent.
	mustExec(t, db, `DELETE FROM simulation WHERE simulation_key = 'S1'`)
	mustExec(t, db, `DELETE FROM author WHERE author_key = 'A1'`)
}

func TestJoins(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE a (id INTEGER PRIMARY KEY, name VARCHAR(10))`)
	mustExec(t, db, `CREATE TABLE b (id INTEGER PRIMARY KEY, a_id INTEGER, v DOUBLE)`)
	mustExec(t, db, `INSERT INTO a VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	mustExec(t, db, `INSERT INTO b VALUES (10, 1, 1.5), (11, 1, 2.5), (12, 2, 9.0)`)

	rows := mustQuery(t, db, `SELECT a.name, b.v FROM a JOIN b ON a.id = b.a_id ORDER BY b.v`)
	if len(rows.Data) != 3 {
		t.Fatalf("inner join rows = %d, want 3", len(rows.Data))
	}
	if rows.Data[0][0].AsString() != "one" || rows.Data[2][0].AsString() != "two" {
		t.Fatalf("join order wrong: %v", rows.Data)
	}

	rows = mustQuery(t, db, `SELECT a.name, b.v FROM a LEFT JOIN b ON a.id = b.a_id WHERE b.id IS NULL`)
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "three" {
		t.Fatalf("left join anti rows: %v", rows.Data)
	}

	// Comma join with WHERE acts as inner join.
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM a, b WHERE a.id = b.a_id`)
	if rows.Data[0][0].Int() != 3 {
		t.Fatalf("comma join count = %v", rows.Data[0][0])
	}
}

func TestAggregation(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE m (sim VARCHAR(10), step INTEGER, bytes INTEGER)`)
	mustExec(t, db, `INSERT INTO m VALUES
		('S1', 1, 100), ('S1', 2, 200), ('S1', 3, 300),
		('S2', 1, 1000), ('S2', 2, 3000)`)

	rows := mustQuery(t, db, `SELECT sim, COUNT(*) AS n, SUM(bytes) AS total, AVG(bytes) AS mean, MIN(step), MAX(step)
		FROM m GROUP BY sim ORDER BY sim`)
	if len(rows.Data) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows.Data))
	}
	if rows.Data[0][1].Int() != 3 || rows.Data[0][2].Int() != 600 {
		t.Fatalf("S1 aggregates wrong: %v", rows.Data[0])
	}
	if rows.Data[1][3].Double() != 2000 {
		t.Fatalf("S2 avg = %v, want 2000", rows.Data[1][3])
	}

	rows = mustQuery(t, db, `SELECT sim FROM m GROUP BY sim HAVING SUM(bytes) > 1000 ORDER BY sim`)
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "S2" {
		t.Fatalf("HAVING result: %v", rows.Data)
	}

	// Aggregate over empty input yields one row with COUNT 0.
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM m WHERE sim = 'NOPE'`)
	if len(rows.Data) != 1 || rows.Data[0][0].Int() != 0 {
		t.Fatalf("empty COUNT: %v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT SUM(bytes) FROM m WHERE sim = 'NOPE'`)
	if !rows.Data[0][0].IsNull() {
		t.Fatalf("empty SUM should be NULL, got %v", rows.Data[0][0])
	}
}

func TestExpressions(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER, s VARCHAR(50), f DOUBLE)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'Turbulence', 1.5), (2, 'Vortex', -2.5), (3, NULL, NULL)`)

	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT id + 1 FROM t WHERE id = 1`, "2"},
		{`SELECT id * 2 + 1 FROM t WHERE id = 2`, "5"},
		{`SELECT UPPER(s) FROM t WHERE id = 1`, "TURBULENCE"},
		{`SELECT LOWER(s) FROM t WHERE id = 2`, "vortex"},
		{`SELECT LENGTH(s) FROM t WHERE id = 1`, "10"},
		{`SELECT SUBSTR(s, 1, 4) FROM t WHERE id = 1`, "Turb"},
		{`SELECT ABS(f) FROM t WHERE id = 2`, "2.5"},
		{`SELECT s || '-' || id FROM t WHERE id = 1`, "Turbulence-1"},
		{`SELECT COALESCE(s, 'none') FROM t WHERE id = 3`, "none"},
		{`SELECT ROUND(f * 2, 0) FROM t WHERE id = 1`, "3"},
	}
	for _, tc := range cases {
		rows := mustQuery(t, db, tc.sql)
		if len(rows.Data) != 1 {
			t.Fatalf("%s: rows = %d", tc.sql, len(rows.Data))
		}
		if got := rows.Data[0][0].AsString(); got != tc.want {
			t.Errorf("%s = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

func TestWherePredicates(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER, s VARCHAR(50))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'alpha'), (2, 'beta'), (3, 'alphabet'), (4, NULL)`)

	count := func(sql string) int64 {
		rows := mustQuery(t, db, sql)
		return rows.Data[0][0].Int()
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE s LIKE 'alpha%'`); n != 2 {
		t.Errorf("LIKE prefix = %d, want 2", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE s LIKE '%bet%'`); n != 2 {
		t.Errorf("LIKE infix = %d, want 2", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE s LIKE '_lpha'`); n != 1 {
		t.Errorf("LIKE underscore = %d, want 1", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE id IN (1, 3, 5)`); n != 2 {
		t.Errorf("IN = %d, want 2", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE id NOT IN (1, 3)`); n != 2 {
		t.Errorf("NOT IN = %d, want 2", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE id BETWEEN 2 AND 3`); n != 2 {
		t.Errorf("BETWEEN = %d, want 2", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE s IS NULL`); n != 1 {
		t.Errorf("IS NULL = %d, want 1", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE s IS NOT NULL`); n != 3 {
		t.Errorf("IS NOT NULL = %d, want 3", n)
	}
	if n := count(`SELECT COUNT(*) FROM t WHERE NOT (id = 1)`); n != 3 {
		t.Errorf("NOT = %d, want 3", n)
	}
	// NULL comparisons are UNKNOWN, filtered out.
	if n := count(`SELECT COUNT(*) FROM t WHERE s = 'zzz' OR id = 4`); n != 1 {
		t.Errorf("OR with null text = %d, want 1", n)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)`)

	res := mustExec(t, db, `UPDATE t SET v = v + 5 WHERE id >= 2`)
	if res.RowsAffected != 2 {
		t.Fatalf("update affected %d, want 2", res.RowsAffected)
	}
	rows := mustQuery(t, db, `SELECT v FROM t ORDER BY id`)
	want := []int64{10, 25, 35}
	for i, w := range want {
		if rows.Data[i][0].Int() != w {
			t.Errorf("row %d = %v, want %d", i, rows.Data[i][0], w)
		}
	}
	res = mustExec(t, db, `DELETE FROM t WHERE v > 20`)
	if res.RowsAffected != 2 {
		t.Fatalf("delete affected %d, want 2", res.RowsAffected)
	}
}

func TestDistinctLimitOffset(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (3), (1), (2), (3), (1)`)
	rows := mustQuery(t, db, `SELECT DISTINCT v FROM t ORDER BY v`)
	if len(rows.Data) != 3 || rows.Data[0][0].Int() != 1 || rows.Data[2][0].Int() != 3 {
		t.Fatalf("distinct: %v", rows.Data)
	}
	rows = mustQuery(t, db, `SELECT v FROM t ORDER BY v LIMIT 2 OFFSET 1`)
	if len(rows.Data) != 2 || rows.Data[0][0].Int() != 1 || rows.Data[1][0].Int() != 2 {
		t.Fatalf("limit/offset: %v", rows.Data)
	}
}

func TestParams(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER, s VARCHAR(20))`)
	mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, sqltypes.NewInt(7), sqltypes.NewString("seven"))
	rows := mustQuery(t, db, `SELECT s FROM t WHERE id = ?`, sqltypes.NewInt(7))
	if len(rows.Data) != 1 || rows.Data[0][0].AsString() != "seven" {
		t.Fatalf("param query: %v", rows.Data)
	}
	if _, err := db.Query(`SELECT s FROM t WHERE id = ?`); err == nil {
		t.Fatal("missing parameter not reported")
	}
}

func TestTransactions(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10)`)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`UPDATE t SET v = 99 WHERE id = 1`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	rows := mustQuery(t, db, `SELECT v FROM t ORDER BY id`)
	if len(rows.Data) != 1 || rows.Data[0][0].Int() != 10 {
		t.Fatalf("rollback failed: %v", rows.Data)
	}

	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (2, 20)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].Int() != 2 {
		t.Fatalf("commit failed: %v", rows.Data)
	}

	// DDL inside transactions is rejected.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`CREATE TABLE u (id INTEGER)`); err == nil {
		t.Fatal("DDL inside transaction should fail")
	}
	tx.Rollback()
}

func TestPersistenceAndRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, s VARCHAR(20))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'one'), (2, 'two')`)
	mustExec(t, db, `UPDATE t SET s = 'TWO' WHERE id = 2`)
	mustExec(t, db, `DELETE FROM t WHERE id = 1`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT id, s FROM t`)
	if len(rows.Data) != 1 || rows.Data[0][1].AsString() != "TWO" {
		t.Fatalf("recovered state wrong: %v", rows.Data)
	}
}

func TestWALRecoveryWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.CheckpointEvery = 0 // never checkpoint: everything lives in the WAL
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	for i := 1; i <= 10; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	// Simulate a crash: drop the handle without Close (no final snapshot).
	db.wal.f.Sync()
	db.wal.f.Close()
	db.wal = nil
	db.closed = true

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].Int() != 10 {
		t.Fatalf("WAL replay recovered %v rows, want 10", rows.Data[0][0])
	}
}

func TestTornWALTailIgnored(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.CheckpointEvery = 0
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	// Append garbage simulating a torn write.
	db.wal.f.Write([]byte{0xde, 0xad, 0xbe})
	db.wal.f.Sync()
	db.wal.f.Close()
	db.wal = nil
	db.closed = true

	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows := mustQuery(t, db2, `SELECT COUNT(*) FROM t`)
	if rows.Data[0][0].Int() != 1 {
		t.Fatalf("recovered %v rows, want 1", rows.Data[0][0])
	}
}

func TestSecondaryIndex(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, cat VARCHAR(10))`)
	for i := 0; i < 100; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'c%d')`, i, i%10))
	}
	mustExec(t, db, `CREATE INDEX idx_cat ON t (cat)`)
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE cat = 'c3'`)
	if rows.Data[0][0].Int() != 10 {
		t.Fatalf("indexed count = %v, want 10", rows.Data[0][0])
	}
	// Index stays correct across updates and deletes.
	mustExec(t, db, `UPDATE t SET cat = 'c3' WHERE id = 4`)
	mustExec(t, db, `DELETE FROM t WHERE id = 3`)
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE cat = 'c3'`)
	if rows.Data[0][0].Int() != 10 {
		t.Fatalf("post-mutation indexed count = %v, want 10", rows.Data[0][0])
	}
	mustExec(t, db, `DROP INDEX idx_cat`)
	rows = mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE cat = 'c3'`)
	if rows.Data[0][0].Int() != 10 {
		t.Fatalf("post-drop count = %v, want 10", rows.Data[0][0])
	}
}

func TestDatalinkColumnRequiresController(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE rf (
		file_name VARCHAR(100) PRIMARY KEY,
		download_result DATALINK LINKTYPE URL FILE LINK CONTROL INTEGRITY ALL
			READ PERMISSION DB WRITE PERMISSION BLOCKED RECOVERY YES ON UNLINK RESTORE)`)
	_, err := db.Exec(`INSERT INTO rf VALUES ('f1', DLVALUE('http://fs1.soton.ac.uk/data/run1/f1.tsf'))`)
	if err == nil || !strings.Contains(err.Error(), "no link controller") {
		t.Fatalf("expected link-controller error, got %v", err)
	}
	// NO FILE LINK CONTROL columns need no controller.
	mustExec(t, db, `CREATE TABLE loose (id INTEGER PRIMARY KEY, link DATALINK LINKTYPE URL NO FILE LINK CONTROL)`)
	mustExec(t, db, `INSERT INTO loose VALUES (1, DLVALUE('http://anywhere/x/y.dat'))`)
}

// recordingController counts link-control callbacks.
type recordingController struct {
	prepLink, prepUnlink []string
	commits, aborts      int
	failLink             bool
}

func (rc *recordingController) PrepareLink(txID uint64, url string, opts sqltypes.DatalinkOptions) error {
	if rc.failLink {
		return fmt.Errorf("file does not exist")
	}
	rc.prepLink = append(rc.prepLink, url)
	return nil
}
func (rc *recordingController) PrepareUnlink(txID uint64, url string, opts sqltypes.DatalinkOptions) error {
	rc.prepUnlink = append(rc.prepUnlink, url)
	return nil
}
func (rc *recordingController) Commit(txID uint64) error { rc.commits++; return nil }
func (rc *recordingController) Abort(txID uint64) error  { rc.aborts++; return nil }

func TestDatalinkLinkControlFlow(t *testing.T) {
	db := memDB(t)
	rc := &recordingController{}
	db.SetLinkController(rc)
	mustExec(t, db, `CREATE TABLE rf (
		file_name VARCHAR(100) PRIMARY KEY,
		link DATALINK LINKTYPE URL FILE LINK CONTROL READ PERMISSION DB ON UNLINK RESTORE)`)

	mustExec(t, db, `INSERT INTO rf VALUES ('f1', DLVALUE('http://fs1/data/f1.tsf'))`)
	if len(rc.prepLink) != 1 || rc.commits != 1 {
		t.Fatalf("link flow: prepLink=%v commits=%d", rc.prepLink, rc.commits)
	}

	mustExec(t, db, `UPDATE rf SET link = DLVALUE('http://fs2/data/f1.tsf') WHERE file_name = 'f1'`)
	if len(rc.prepUnlink) != 1 || len(rc.prepLink) != 2 {
		t.Fatalf("update flow: unlink=%v link=%v", rc.prepUnlink, rc.prepLink)
	}

	mustExec(t, db, `DELETE FROM rf WHERE file_name = 'f1'`)
	if len(rc.prepUnlink) != 2 {
		t.Fatalf("delete flow: unlink=%v", rc.prepUnlink)
	}

	// FILE LINK CONTROL: when the file manager refuses (missing file),
	// the INSERT fails and nothing is stored.
	rc.failLink = true
	if _, err := db.Exec(`INSERT INTO rf VALUES ('f2', DLVALUE('http://fs1/data/missing.tsf'))`); err == nil {
		t.Fatal("insert with failing link control succeeded")
	}
	if rc.aborts == 0 {
		t.Fatal("failed transaction did not abort link work")
	}
	rows := mustQuery(t, db, `SELECT COUNT(*) FROM rf`)
	if rows.Data[0][0].Int() != 0 {
		t.Fatalf("phantom row after failed link: %v", rows.Data)
	}
}

func TestDatalinkFunctions(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE rf (id INTEGER, link DATALINK NO FILE LINK CONTROL)`)
	mustExec(t, db, `INSERT INTO rf VALUES (1, DLVALUE('http://fs1.soton.ac.uk:8080/vol0/run1/ts42.tsf'))`)
	rows := mustQuery(t, db, `SELECT DLURLSERVER(link), DLURLPATH(link), DLURLCOMPLETE(link), DLLINKTYPE(link) FROM rf`)
	r := rows.Data[0]
	if r[0].AsString() != "fs1.soton.ac.uk:8080" {
		t.Errorf("DLURLSERVER = %q", r[0].AsString())
	}
	if r[1].AsString() != "/vol0/run1/ts42.tsf" {
		t.Errorf("DLURLPATH = %q", r[1].AsString())
	}
	if r[2].AsString() != "http://fs1.soton.ac.uk:8080/vol0/run1/ts42.tsf" {
		t.Errorf("DLURLCOMPLETE = %q", r[2].AsString())
	}
	if r[3].AsString() != "URL" {
		t.Errorf("DLLINKTYPE = %q", r[3].AsString())
	}
}

func TestDropTableRestrict(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE p (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `CREATE TABLE c (id INTEGER PRIMARY KEY, p_id INTEGER REFERENCES p (id))`)
	if _, err := db.Exec(`DROP TABLE p`); err == nil {
		t.Fatal("drop of referenced table succeeded")
	}
	mustExec(t, db, `DROP TABLE c`)
	mustExec(t, db, `DROP TABLE p`)
	if _, err := db.Exec(`DROP TABLE p`); err == nil {
		t.Fatal("double drop succeeded")
	}
	mustExec(t, db, `DROP TABLE IF EXISTS p`)
}

func TestTimestampsAndClock(t *testing.T) {
	db := memDB(t)
	fixed := time.Date(2000, 3, 27, 12, 0, 0, 0, time.UTC) // EDBT 2000 week
	db.SetClock(func() time.Time { return fixed })
	mustExec(t, db, `CREATE TABLE t (id INTEGER, at TIMESTAMP)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, NOW())`)
	mustExec(t, db, `INSERT INTO t VALUES (2, '2000-03-26 09:30:00')`)
	rows := mustQuery(t, db, `SELECT id FROM t WHERE at > '2000-03-27 00:00:00'`)
	if len(rows.Data) != 1 || rows.Data[0][0].Int() != 1 {
		t.Fatalf("timestamp compare: %v", rows.Data)
	}
}

func TestOrderByDescAndAlias(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)`)
	rows := mustQuery(t, db, `SELECT id, v * 2 AS dbl FROM t ORDER BY dbl DESC`)
	if rows.Data[0][1].Int() != 60 || rows.Data[2][1].Int() != 20 {
		t.Fatalf("alias order: %v", rows.Data)
	}
}

func TestCatalogIntrospection(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE author (author_key VARCHAR(30) PRIMARY KEY, name VARCHAR(100))`)
	mustExec(t, db, `CREATE TABLE simulation (simulation_key VARCHAR(30) PRIMARY KEY,
		author_key VARCHAR(30) REFERENCES author (author_key))`)
	cat := db.Catalog()
	names := cat.TableNames()
	if len(names) != 2 || names[0] != "AUTHOR" {
		t.Fatalf("table names: %v", names)
	}
	refs := cat.ReferencedBy("author")
	if len(refs) != 1 || refs[0].Table != "SIMULATION" || refs[0].Column != "AUTHOR_KEY" {
		t.Fatalf("ReferencedBy: %+v", refs)
	}
	sim, _ := cat.Table("simulation")
	if len(sim.ForeignKeys) != 1 || sim.ForeignKeys[0].RefTable != "AUTHOR" {
		t.Fatalf("FKs: %+v", sim.ForeignKeys)
	}
}

func TestParseErrors(t *testing.T) {
	db := memDB(t)
	bad := []string{
		`SELEC 1`,
		`SELECT FROM`,
		`CREATE TABLE`,
		`INSERT INTO t VALUES`,
		`SELECT * FROM t WHERE`,
		`SELECT 'unterminated`,
	}
	for _, sql := range bad {
		if _, err := db.Query(sql); err == nil {
			if _, err2 := db.Exec(sql); err2 == nil {
				t.Errorf("no error for %q", sql)
			}
		}
	}
}

func TestUnknownColumnAndAmbiguity(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE a (id INTEGER, x INTEGER)`)
	mustExec(t, db, `CREATE TABLE b (id INTEGER, y INTEGER)`)
	mustExec(t, db, `INSERT INTO a VALUES (1, 1)`)
	mustExec(t, db, `INSERT INTO b VALUES (1, 2)`)
	if _, err := db.Query(`SELECT nope FROM a`); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := db.Query(`SELECT id FROM a, b`); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	rows := mustQuery(t, db, `SELECT a.id FROM a, b WHERE a.id = b.id`)
	if len(rows.Data) != 1 {
		t.Fatalf("qualified join: %v", rows.Data)
	}
}

func TestLikeEscapes(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE t (s VARCHAR(30))`)
	mustExec(t, db, `INSERT INTO t VALUES ('100%'), ('100x'), ('a_b'), ('axb')`)
	count := func(pattern string) int64 {
		rows := mustQuery(t, db, `SELECT COUNT(*) FROM t WHERE s LIKE ?`, sqltypes.NewString(pattern))
		return rows.Data[0][0].Int()
	}
	// Escaped wildcards match literally (the QBE CONTAINS path).
	if n := count(`100\%`); n != 1 {
		t.Errorf("escaped %% matched %d, want 1", n)
	}
	if n := count(`a\_b`); n != 1 {
		t.Errorf("escaped _ matched %d, want 1", n)
	}
	// Unescaped wildcards stay wildcards.
	if n := count(`100_`); n != 2 {
		t.Errorf("unescaped _ matched %d, want 2", n)
	}
}

// Property: LIKE with a literal pattern (no wildcards) is equality.
func TestLikeLiteralProperty(t *testing.T) {
	f := func(raw string) bool {
		s := strings.Map(func(r rune) rune {
			if r == '%' || r == '_' || r == '\\' || r == 0 {
				return 'x'
			}
			return r
		}, raw)
		return likeMatch(s, s) && !likeMatch(s+"x", s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: INSERT then SELECT returns the same value for every kind.
func TestInsertSelectRoundTripProperty(t *testing.T) {
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE rt (id INTEGER PRIMARY KEY, i INTEGER, d DOUBLE, s VARCHAR(200))`)
	id := int64(0)
	f := func(i int64, d float64, sRaw string) bool {
		if d != d { // NaN never round-trips through comparisons
			d = 0
		}
		s := strings.ToValidUTF8(sRaw, "?")
		if len(s) > 200 {
			s = s[:200]
		}
		id++
		if _, err := db.Exec(`INSERT INTO rt VALUES (?, ?, ?, ?)`,
			sqltypes.NewInt(id), sqltypes.NewInt(i), sqltypes.NewDouble(d), sqltypes.NewString(s)); err != nil {
			return false
		}
		rows, err := db.Query(`SELECT i, d, s FROM rt WHERE id = ?`, sqltypes.NewInt(id))
		if err != nil || len(rows.Data) != 1 {
			return false
		}
		r := rows.Data[0]
		return r[0].Int() == i && r[1].Double() == d && r[2].Str() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
