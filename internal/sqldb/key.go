package sqldb

import (
	"encoding/binary"
	"math"
	"time"

	"repro/internal/sqltypes"
)

// Canonical index-key encoding.
//
// encodeKey maps a tuple of values onto a byte string such that
//
//  1. two tuples encode to the same key exactly when they are equal
//     under the engine's comparison rules within one column's type
//     domain (so the encoding is usable as a hash-map key), and
//  2. the lexicographic byte order of single-value keys matches
//     sqltypes.SortCompare (so the same encoding drives the ordered
//     index's range and in-order scans).
//
// Every index in the engine — hash, ordered and the unique/PK indexes —
// shares this one encoder. The previous encoder rendered values through
// AsString, which collided across kinds (BOOLEAN TRUE vs VARCHAR 'TRUE',
// TIMESTAMP vs its formatted text) and missed equal values with distinct
// renderings (a timestamp probed via its RFC3339 spelling). Here each
// value carries a class tag:
//
//	0x01 NULL
//	0x02 numeric (INTEGER and DOUBLE share the class: 2 and 2.0 index
//	     equally, as SQL comparison promotes them)
//	0x03 text (VARCHAR and CLOB)
//	0x04 BOOLEAN
//	0x05 TIMESTAMP
//	0x06 BLOB
//	0x07 DATALINK
//
// Tag order matches the kind order SortCompare falls back to for
// incomparable pairs, and within a class the payload is byte-comparable:
// numerics use the sign-flipped IEEE-754 trick, timestamps sign-flipped
// seconds plus nanoseconds, and byte strings an escape encoding that
// keeps 0x00 transparent and orders prefixes first.
//
// Integers beyond 2^53 share their float64 image with neighbouring
// values (the prior encoder had the same normalisation, and the
// engine's own mixed int/double comparison promotes through float64).
// Equality and range row SETS stay correct because every index consumer
// re-applies the residual predicate; the one observable difference from
// a heap scan is ordering WITHIN such a colliding key when an ordered
// index serves ORDER BY — those rows come back in insertion order
// rather than exact-integer order.

const (
	keyTagNull    = 0x01
	keyTagNumeric = 0x02
	keyTagText    = 0x03
	keyTagBool    = 0x04
	keyTagTime    = 0x05
	keyTagBytes   = 0x06
	keyTagLink    = 0x07
)

// encodeKey encodes a tuple of values into one canonical key.
func encodeKey(vals ...sqltypes.Value) string {
	var b []byte
	for _, v := range vals {
		b = appendKey(b, v)
	}
	return string(b)
}

// appendKey appends the canonical encoding of one value.
func appendKey(b []byte, v sqltypes.Value) []byte {
	switch v.Kind() {
	case sqltypes.KindNull:
		return append(b, keyTagNull)
	case sqltypes.KindInt, sqltypes.KindDouble:
		f, _ := v.AsDouble()
		// Canonicalise values Compare treats as equal to one key:
		// -0.0 equals +0.0, and all NaN payloads are one value that
		// sorts below every number (matching sqltypes.Compare).
		if f == 0 {
			f = 0
		} else if math.IsNaN(f) {
			f = math.Float64frombits(math.Float64bits(math.NaN()) | 1<<63)
		}
		bits := math.Float64bits(f)
		if bits&(1<<63) != 0 {
			bits = ^bits // negative: flip everything
		} else {
			bits |= 1 << 63 // non-negative: set the sign bit
		}
		b = append(b, keyTagNumeric)
		return binary.BigEndian.AppendUint64(b, bits)
	case sqltypes.KindString, sqltypes.KindClob:
		return appendEscaped(append(b, keyTagText), v.Str())
	case sqltypes.KindBool:
		if v.Bool() {
			return append(b, keyTagBool, 1)
		}
		return append(b, keyTagBool, 0)
	case sqltypes.KindTime:
		t := v.Time()
		b = append(b, keyTagTime)
		b = binary.BigEndian.AppendUint64(b, uint64(t.Unix())^(1<<63))
		return binary.BigEndian.AppendUint32(b, uint32(t.Nanosecond()))
	case sqltypes.KindBytes:
		return appendEscaped(append(b, keyTagBytes), string(v.Bytes()))
	case sqltypes.KindDatalink:
		return appendEscaped(append(b, keyTagLink), v.Str())
	}
	return append(b, keyTagNull)
}

// appendEscaped writes s with 0x00 escaped as {0x00,0xFF} and a
// {0x00,0x01} terminator, so concatenated tuple keys stay unambiguous
// and "a" orders before "ab" and before "a\x00b".
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			b = append(b, 0x00, 0xFF)
		} else {
			b = append(b, s[i])
		}
	}
	return append(b, 0x00, 0x01)
}

// nullKey is the canonical encoding of a single NULL, the boundary the
// ordered index uses for IS NULL / IS NOT NULL scans.
var nullKey = encodeKey(sqltypes.Null)

// ---------- decoding ----------
//
// The encoding is also (partially) decodable: the index-only MIN/MAX
// executor reads the aggregate's answer straight off the boundary KEY
// instead of fetching the boundary rows, but only for components that
// round-trip exactly to the stored value. The non-round-tripping cases
// — where one key image is shared by more than one storable value —
// make decodeKeyValue report ok=false and the caller falls back to the
// row fetch:
//
//	numeric, INTEGER column — beyond ±2^53 distinct integers share a
//	    float64 image; inside the window the integer is exact.
//	numeric, DOUBLE column  — -0.0 and +0.0 share one key (Compare
//	    treats them as equal), so a zero key cannot name its sign.
//	    All NaN payloads were canonicalised to one key, but every NaN
//	    is observably identical to the engine, so NaN round-trips.
//
// Text, BLOB and DATALINK escape encodings invert exactly; BOOLEAN is
// one byte; TIMESTAMP keys carry the full (seconds, nanoseconds) pair.
// The decoded value is materialised in the COLUMN's declared kind —
// stored values were coerced to it on write, so the class tag alone
// (numeric, text) would not distinguish INTEGER from DOUBLE or VARCHAR
// from CLOB.

// skipKeyComponent returns the remainder of k after one encoded value,
// or ok=false on a truncated or unrecognised component.
func skipKeyComponent(k string) (rest string, ok bool) {
	if len(k) == 0 {
		return "", false
	}
	switch k[0] {
	case keyTagNull:
		return k[1:], true
	case keyTagNumeric:
		if len(k) < 9 {
			return "", false
		}
		return k[9:], true
	case keyTagBool:
		if len(k) < 2 {
			return "", false
		}
		return k[2:], true
	case keyTagTime:
		if len(k) < 13 {
			return "", false
		}
		return k[13:], true
	case keyTagText, keyTagBytes, keyTagLink:
		for i := 1; i < len(k); i++ {
			if k[i] != 0x00 {
				continue
			}
			if i+1 >= len(k) {
				return "", false
			}
			if k[i+1] == 0x01 {
				return k[i+2:], true
			}
			i++ // skip the escaped byte
		}
		return "", false
	}
	return "", false
}

// unescapeKey inverts appendEscaped on the leading component of k.
func unescapeKey(k string) (s string, ok bool) {
	var b []byte
	for i := 0; i < len(k); i++ {
		if k[i] != 0x00 {
			b = append(b, k[i])
			continue
		}
		if i+1 >= len(k) {
			return "", false
		}
		switch k[i+1] {
		case 0x01:
			return string(b), true
		case 0xFF:
			b = append(b, 0x00)
			i++
		default:
			return "", false
		}
	}
	return "", false
}

// decodeKeyValue decodes the leading component of k into the domain of
// a column of kind colKind. ok=false means the component does not
// round-trip (see the decoding notes above) or its class does not match
// the column's kind; the caller must fall back to fetching rows.
func decodeKeyValue(k string, colKind sqltypes.Kind) (sqltypes.Value, bool) {
	if len(k) == 0 {
		return sqltypes.Null, false
	}
	switch k[0] {
	case keyTagNull:
		return sqltypes.Null, true
	case keyTagNumeric:
		if len(k) < 9 {
			return sqltypes.Null, false
		}
		bits := binary.BigEndian.Uint64([]byte(k[1:9]))
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63 // non-negative: clear the set sign bit
		} else {
			bits = ^bits // negative: unflip everything
		}
		f := math.Float64frombits(bits)
		switch colKind {
		case sqltypes.KindInt:
			if math.IsNaN(f) || math.IsInf(f, 0) || f != math.Trunc(f) || math.Abs(f) >= 1<<53 {
				return sqltypes.Null, false
			}
			return sqltypes.NewInt(int64(f)), true
		case sqltypes.KindDouble:
			if f == 0 {
				return sqltypes.Null, false // cannot reconstruct the sign of ±0.0
			}
			return sqltypes.NewDouble(f), true
		}
		return sqltypes.Null, false
	case keyTagText:
		s, ok := unescapeKey(k[1:])
		if !ok {
			return sqltypes.Null, false
		}
		switch colKind {
		case sqltypes.KindString:
			return sqltypes.NewString(s), true
		case sqltypes.KindClob:
			return sqltypes.NewClob(s), true
		}
		return sqltypes.Null, false
	case keyTagBool:
		if len(k) < 2 || colKind != sqltypes.KindBool {
			return sqltypes.Null, false
		}
		return sqltypes.NewBool(k[1] != 0), true
	case keyTagTime:
		if len(k) < 13 || colKind != sqltypes.KindTime {
			return sqltypes.Null, false
		}
		sec := int64(binary.BigEndian.Uint64([]byte(k[1:9])) ^ (1 << 63))
		nsec := int64(binary.BigEndian.Uint32([]byte(k[9:13])))
		return sqltypes.NewTime(time.Unix(sec, nsec).UTC()), true
	case keyTagBytes:
		s, ok := unescapeKey(k[1:])
		if !ok || colKind != sqltypes.KindBytes {
			return sqltypes.Null, false
		}
		return sqltypes.NewBytes([]byte(s)), true
	case keyTagLink:
		s, ok := unescapeKey(k[1:])
		if !ok || colKind != sqltypes.KindDatalink {
			return sqltypes.Null, false
		}
		return sqltypes.NewDatalink(s), true
	}
	return sqltypes.Null, false
}

// decodeKeyColumn decodes the slot-th component of a concatenated index
// key as a value of the column's kind (the boundary-key MIN/MAX read).
func decodeKeyColumn(k string, slot int, colKind sqltypes.Kind) (sqltypes.Value, bool) {
	for i := 0; i < slot; i++ {
		rest, ok := skipKeyComponent(k)
		if !ok {
			return sqltypes.Null, false
		}
		k = rest
	}
	return decodeKeyValue(k, colKind)
}

// probeValue maps a lookup value into the key domain of a column of
// kind colKind. Stored values are coerced to their column's type on
// INSERT/UPDATE, so every key in a column's index belongs to one class;
// a probe arriving as a different kind (the QBE layer sends every
// restriction as text) must be coerced the same way before encoding.
// ok=false means the probe cannot be aligned with the index — e.g. a
// numeric probe against a VARCHAR column, which SQL compares by parsing
// each stored string — and the caller must fall back to a heap scan,
// which preserves exact comparison semantics.
func probeValue(colKind sqltypes.Kind, v sqltypes.Value) (sqltypes.Value, bool) {
	if v.IsNull() {
		return v, false
	}
	switch colKind {
	case sqltypes.KindInt, sqltypes.KindDouble:
		if v.IsNumeric() {
			return v, true
		}
		if v.IsTextual() {
			if f, ok := v.AsDouble(); ok {
				return sqltypes.NewDouble(f), true
			}
		}
	case sqltypes.KindString, sqltypes.KindClob:
		if v.IsTextual() {
			return v, true
		}
	case sqltypes.KindBool:
		if v.Kind() == sqltypes.KindBool {
			return v, true
		}
	case sqltypes.KindTime:
		if v.Kind() == sqltypes.KindTime {
			return v, true
		}
		if v.IsTextual() {
			if t, err := sqltypes.ParseTimestamp(v.Str()); err == nil {
				return sqltypes.NewTime(t), true
			}
		}
	case sqltypes.KindBytes:
		if v.Kind() == sqltypes.KindBytes {
			return v, true
		}
	case sqltypes.KindDatalink:
		if v.Kind() == sqltypes.KindDatalink {
			return v, true
		}
	}
	return v, false
}
