package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// Randomized crash-recovery soak: N seeded crash schedules, each a
// sequence of rounds that open the database under a scripted crash
// point, commit work until the "process" dies mid-I/O, then reopen on a
// clean disk and check the committed-transaction oracle:
//
//   - zero committed loss: every acknowledged insert is present, every
//     acknowledged delete is absent;
//   - no phantoms: every present row was at least attempted;
//   - atomicity: a multi-row transaction is all-in or all-out;
//   - honest recovery: a directory that saw only crashes (never
//     corruption of synced data) always reopens without refusal.
//
// Env knobs (CI runs the bounded version, scripts/soak.sh the long one):
//
//	SOAK_SCHEDULES — number of seeded schedules (default 100)
//	SOAK_SEED      — base seed (default 1); schedule i uses seed+i

var soakDebug = os.Getenv("SOAK_DEBUG") != ""

func soakLogf(format string, args ...any) {
	if soakDebug {
		fmt.Printf(format+"\n", args...)
	}
}

func soakEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// soakOracle tracks ground truth across crash rounds of one schedule.
type soakOracle struct {
	mu        sync.Mutex
	acked     map[int64]bool // insert acknowledged, must be present
	deleted   map[int64]bool // delete acknowledged, must be absent
	delLimbo  map[int64]bool // delete attempted, outcome unknown: the
	// commit record may have hit the platter before the crash killed the
	// acknowledgement, so the row is legitimately either present or absent
	attempted map[int64]bool // insert issued (outcome possibly unknown)
	groups    [][]int64      // multi-row transactions, for atomicity
	groupAck  map[int]bool   // index into groups → commit acknowledged
}

func newSoakOracle() *soakOracle {
	return &soakOracle{
		acked:     make(map[int64]bool),
		deleted:   make(map[int64]bool),
		delLimbo:  make(map[int64]bool),
		attempted: make(map[int64]bool),
		groupAck:  make(map[int]bool),
	}
}

// soakTable routes a row id to its table: even ids live in K, odd in
// K2. Two FK-free tables make concurrent workers commit through
// independent sharded latches, so crash schedules capture genuinely
// overlapping commit stamps that recovery must replay in order.
func soakTable(k int64) string {
	if k%2 == 0 {
		return "K"
	}
	return "K2"
}

// verify checks the oracle against a freshly recovered database.
func (o *soakOracle) verify(t *testing.T, db *DB, round int) {
	t.Helper()
	present := make(map[int64]bool)
	for _, table := range []string{"K", "K2"} {
		rows, err := db.Query(`SELECT ID FROM ` + table)
		if err != nil {
			t.Fatalf("round %d: oracle query (%s): %v", round, table, err)
		}
		for _, r := range rows.Data {
			k := r[0].Int()
			if soakTable(k) != table {
				t.Fatalf("round %d: row %d recovered into %s, belongs in %s", round, k, table, soakTable(k))
			}
			present[k] = true
		}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for k := range o.acked {
		if o.deleted[k] || o.delLimbo[k] {
			continue // absent, or in-flight delete with unknown outcome
		}
		if !present[k] {
			t.Fatalf("round %d: COMMITTED ROW LOST: id %d was acknowledged but is gone after recovery", round, k)
		}
	}
	for k := range o.deleted {
		if present[k] {
			t.Fatalf("round %d: acknowledged delete of id %d resurrected after recovery", round, k)
		}
	}
	for k := range present {
		if !o.attempted[k] {
			t.Fatalf("round %d: phantom row %d present but never attempted", round, k)
		}
	}
	for gi, g := range o.groups {
		n := 0
		for _, k := range g {
			if present[k] && !o.deleted[k] {
				n++
			}
		}
		if o.groupAck[gi] {
			if n != len(g) {
				t.Fatalf("round %d: committed tx group %v only %d/%d present", round, g, n, len(g))
			}
		} else if n != 0 && n != len(g) {
			t.Fatalf("round %d: tx group %v torn: %d/%d present (atomicity violated)", round, g, n, len(g))
		}
	}
}

// runWorkload issues operations against db until the crash point fires
// (or the op budget runs out), updating the oracle. nextID hands out
// fresh row ids; withConcurrency splits the work across goroutines to
// push crashes into the group-commit path.
func runWorkload(db *DB, faults *iofault.Faults, rng *rand.Rand, o *soakOracle, nextID *int64, withConcurrency bool) {
	workers := 1
	if withConcurrency {
		workers = 4
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60 && !faults.Crashed(); i++ {
				switch r := wrng.Intn(100); {
				case r < 70: // single insert
					o.mu.Lock()
					k := *nextID
					*nextID++
					o.attempted[k] = true
					o.mu.Unlock()
					_, err := db.Exec(`INSERT INTO `+soakTable(k)+` VALUES (?)`, sqltypes.NewInt(k))
					soakLogf("  insert %d -> %v", k, err)
					if err == nil {
						o.mu.Lock()
						o.acked[k] = true
						o.mu.Unlock()
					}
				case r < 85: // multi-row transaction (atomicity probe)
					o.mu.Lock()
					g := make([]int64, 3)
					for j := range g {
						g[j] = *nextID
						*nextID++
						o.attempted[g[j]] = true
					}
					o.groups = append(o.groups, g)
					gi := len(o.groups) - 1
					o.mu.Unlock()
					tx, err := db.Begin()
					if err != nil {
						continue
					}
					ok := true
					for _, k := range g {
						// Consecutive ids straddle both tables, so one
						// transaction's stamps land in two heaps and its
						// atomicity survives a cross-table replay.
						if _, err := tx.Exec(`INSERT INTO `+soakTable(k)+` VALUES (?)`, sqltypes.NewInt(k)); err != nil {
							ok = false
							break
						}
					}
					if !ok {
						tx.Rollback() //nolint:errcheck
						continue
					}
					err = tx.Commit()
					soakLogf("  tx %v -> %v", g, err)
					if err == nil {
						o.mu.Lock()
						o.groupAck[gi] = true
						o.mu.Unlock()
					}
				case r < 93: // delete an acknowledged row
					o.mu.Lock()
					var victim int64 = -1
					for k := range o.acked {
						if !o.deleted[k] {
							victim = k
							break
						}
					}
					o.mu.Unlock()
					if victim < 0 {
						continue
					}
					o.mu.Lock()
					o.delLimbo[victim] = true
					o.mu.Unlock()
					_, err := db.Exec(`DELETE FROM `+soakTable(victim)+` WHERE ID = ?`, sqltypes.NewInt(victim))
					soakLogf("  delete %d -> %v", victim, err)
					if err == nil {
						o.mu.Lock()
						o.deleted[victim] = true
						delete(o.delLimbo, victim)
						o.mu.Unlock()
					}
				default: // checkpoint under fire
					err := db.Checkpoint()
					soakLogf("  checkpoint -> %v", err)
					_ = err
				}
			}
		}(rng.Int63())
	}
	wg.Wait()
}

// TestCrashRecoverySoak is the randomized soak. Each schedule's rounds
// share one database directory: crash state accumulates exactly as it
// would on a real host that keeps crashing and restarting.
func TestCrashRecoverySoak(t *testing.T) {
	schedules := soakEnvInt("SOAK_SCHEDULES", 100)
	baseSeed := int64(soakEnvInt("SOAK_SEED", 1))
	if testing.Short() {
		schedules = 10
	}

	for s := 0; s < schedules; s++ {
		s := s
		t.Run(fmt.Sprintf("schedule-%03d", s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(baseSeed + int64(s)))
			dir := t.TempDir()

			// Setup on a clean disk: schema only.
			db, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE K (ID INTEGER PRIMARY KEY)`); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE K2 (ID INTEGER PRIMARY KEY)`); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			o := newSoakOracle()
			var nextID int64
			rounds := 3 + rng.Intn(3)
			for round := 0; round < rounds; round++ {
				faults := iofault.New(nil)
				// Arm the crash before the open about a third of the time,
				// so recovery itself (tail truncation, epoch rotation,
				// checkpoint-on-close) also runs into crash points.
				armEarly := rng.Intn(3) == 0
				crashAfter := 1 + rng.Intn(40)
				torn := rng.Intn(64)
				if armEarly {
					faults.CrashAfterOps("", crashAfter, torn)
				}
				soakLogf("round %d: armEarly=%v crashAfter=%d torn=%d", round, armEarly, crashAfter, torn)
				db, err := OpenWith(dir, Options{FS: faults})
				if err != nil {
					soakLogf("  open -> %v", err)
					if !errors.Is(err, iofault.ErrCrashed) {
						t.Fatalf("round %d: open under injector failed for a non-crash reason: %v", round, err)
					}
				} else {
					if !armEarly {
						faults.CrashAfterOps("", crashAfter, torn)
					}
					db.CheckpointEvery = 4 + rng.Intn(9)
					// Two rounds in three run four workers: their sharded
					// commits interleave stamps across K and K2, which the
					// post-crash replay must reproduce in order.
					runWorkload(db, faults, rng, o, &nextID, round%3 != 0)
					db.Close() //nolint:errcheck // post-crash close only releases fds
				}

				// The moment of truth: reopen on a clean disk. A history of
				// crashes alone must never look like corruption — recovery
				// either finds a clean tail or truncates a torn one, and
				// every acknowledged transaction is intact.
				clean, err := Open(dir)
				if err != nil {
					t.Fatalf("round %d: refused to reopen after crash (seed %d): %v", round, baseSeed+int64(s), err)
				}
				soakLogf("  recovery: %+v", clean.Recovery())
				o.verify(t, clean, round)
				if err := clean.Close(); err != nil {
					t.Fatalf("round %d: clean close: %v", round, err)
				}
			}
		})
	}
}

// TestSoakHonestRefusal closes the loop on the "honest refusal"
// acceptance criterion inside the soak harness: take a crashed-and-
// recovered directory, corrupt synced WAL data mid-log, and require the
// typed refusal rather than silent truncation.
func TestSoakHonestRefusal(t *testing.T) {
	dir := seedDB(t, 12)
	wal := dir + "/wal.log"
	offs, _ := frameOffsets(t, wal)
	if err := iofault.FlipBit(wal, offs[len(offs)/2]+9); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("mid-log corruption after crash history: %v, want ErrWALCorrupt", err)
	}
}
