package sqldb

import (
	"sync"

	"repro/internal/sqltypes"
)

// Arena/columnar result pipeline.
//
// Plain projections historically materialised one make([]Value, ncols)
// per output row — the dominant allocation cost of the browse-style
// queries the archive UI issues constantly (~36MB and ~100k allocs per
// 100k projected rows). Two mechanisms remove it:
//
//   - rowArena: a chunked bump allocator over []sqltypes.Value slabs.
//     Every projected row of one statement is carved out of the same
//     few chunks, and the whole set is released wholesale — returned to
//     a process-wide pool — when the owning Rows is Closed. Value
//     structs are copied into the arena by value; string/BLOB payloads
//     are immutable Go strings shared with storage, so the arena never
//     needs to own byte data to stay safe.
//
//   - colBatch: a per-column batch buffer the streaming projection
//     fills column-at-a-time (plain copy loops for bare column
//     references, one evalExpr sweep per computed column) and then
//     transposes into arena-backed rows. Projection cost becomes a few
//     tight loops per 1024 rows instead of an interpreter dispatch and
//     an allocation per row.
//
// Ownership rules (the contract doc.go documents for callers):
//
//   - Rows returned by Query/QueryContext/Stmt.Query own their arena.
//     Rows.Close releases it; after Close the Data slices are invalid.
//     Close is optional — an unclosed result is reclaimed by the GC
//     like any other value, the chunks just miss the reuse pool.
//   - Rows.Detach copies the result out of its arena onto the plain
//     heap (and releases the arena), for callers that retain results
//     indefinitely while closing eagerly elsewhere.
//   - A nil *rowArena is the legacy allocation path: alloc falls back
//     to make, byte-for-byte the pre-arena behaviour. This is the
//     ablation baseline behind DB.SetLegacyResultAlloc and the oracle
//     the arena property tests compare against.
//
// Intermediate join rows use a second, scratch arena that is released
// when the statement finishes (the result rows copy values out of
// them, never alias them), so the reuse benefits extend to the join
// paths without pinning intermediates in the result's arena.

// arenaChunkValues is the slab size in Value slots: 8192 × 32 bytes =
// 256 KiB per chunk, large enough that a 100k-row projection needs a
// few dozen chunk grabs, small enough that tiny results waste little.
const arenaChunkValues = 8192

// arenaChunkPool recycles slabs across statements. Chunks are zeroed
// before being returned so a pooled slab never pins old string payloads
// and a use-after-Close reads NULLs, not another statement's rows.
var arenaChunkPool = sync.Pool{
	New: func() any { return make([]sqltypes.Value, arenaChunkValues) },
}

// rowArena is a chunked bump allocator for result-row value slices.
// Not safe for concurrent use: each statement execution owns its own.
type rowArena struct {
	cur    []sqltypes.Value   // remaining free slots of the newest chunk
	chunks [][]sqltypes.Value // full-capacity slabs, for release
}

// alloc returns a zeroed n-slot slice backed by the arena (capacity
// exactly n, so appends can never bleed into a neighbouring row). A nil
// arena falls back to make — the legacy path. Requests larger than a
// chunk are served straight from the heap.
func (a *rowArena) alloc(n int) []sqltypes.Value {
	return a.allocCap(n, n)
}

// allocCap is alloc with extra capacity (len n, cap c ≥ n): the join
// assembly builds combined rows by appending to a base prefix, and the
// reserved capacity keeps that append inside the arena region.
func (a *rowArena) allocCap(n, c int) []sqltypes.Value {
	if c < n {
		c = n
	}
	if a == nil || c > arenaChunkValues {
		return make([]sqltypes.Value, n, c)
	}
	if c > len(a.cur) {
		chunk := arenaChunkPool.Get().([]sqltypes.Value)
		a.chunks = append(a.chunks, chunk)
		a.cur = chunk
	}
	s := a.cur[:n:c]
	a.cur = a.cur[c:]
	return s
}

// release returns every chunk to the pool, zeroed. The arena is
// reusable (empty) afterwards; any slice previously handed out is
// invalid. Nil-safe.
func (a *rowArena) release() {
	if a == nil {
		return
	}
	for i, chunk := range a.chunks {
		clear(chunk)
		arenaChunkPool.Put(chunk) //nolint:staticcheck // slabs are slice values by design
		a.chunks[i] = nil
	}
	a.chunks = a.chunks[:0]
	a.cur = nil
}

// colBatchRows is how many source rows a colBatch buffers per flush.
const colBatchRows = 1024

// colBatch is the columnar projection buffer: source rows accumulate
// (by reference — single-table scans alias storage rows, which is safe
// under the statement's read lock), then flush projects them one
// COLUMN at a time into per-column slabs and transposes the slabs into
// arena-backed output rows.
type colBatch struct {
	proj   []Expr
	colIdx []int // source slot for bare ColRef projections; -1 = general expr
	cols   [][]sqltypes.Value
	src    [][]sqltypes.Value
}

func newColBatch(proj []Expr) *colBatch {
	cb := &colBatch{
		proj:   proj,
		colIdx: make([]int, len(proj)),
		cols:   make([][]sqltypes.Value, len(proj)),
		src:    make([][]sqltypes.Value, 0, colBatchRows),
	}
	for i, e := range proj {
		cb.colIdx[i] = -1
		if cr, ok := e.(*ColRef); ok && cr.Index >= 0 {
			cb.colIdx[i] = cr.Index
		}
		cb.cols[i] = make([]sqltypes.Value, colBatchRows)
	}
	return cb
}

// push buffers one source row, reporting whether the batch is full and
// must be flushed before the next push.
func (cb *colBatch) push(row []sqltypes.Value) bool {
	cb.src = append(cb.src, row)
	return len(cb.src) == colBatchRows
}

// flush projects the buffered rows column-at-a-time and appends the
// transposed, arena-backed rows to out.Data. The batch is empty after
// a successful flush.
func (cb *colBatch) flush(ctx *evalCtx, ar *rowArena, out *Rows) error {
	n := len(cb.src)
	if n == 0 {
		return nil
	}
	for j := range cb.proj {
		col := cb.cols[j]
		if k := cb.colIdx[j]; k >= 0 {
			// Bare column reference: a plain copy loop, no dispatch.
			for i := 0; i < n; i++ {
				col[i] = cb.src[i][k]
			}
			continue
		}
		for i := 0; i < n; i++ {
			ctx.vals = cb.src[i]
			v, err := evalExpr(cb.proj[j], ctx)
			if err != nil {
				return err
			}
			col[i] = v
		}
	}
	ncols := len(cb.proj)
	for i := 0; i < n; i++ {
		row := ar.alloc(ncols)
		for j := 0; j < ncols; j++ {
			row[j] = cb.cols[j][i]
		}
		out.Data = append(out.Data, row)
	}
	cb.src = cb.src[:0]
	return nil
}
