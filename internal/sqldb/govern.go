package sqldb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Statement governance: cooperative cancellation, deadlines, memory
// budgets and admission control.
//
// Every statement execution owns one *interrupt. The streaming loops —
// heap and index scans, fold aggregation, hash-join build and probe,
// top-k and sort key assembly, DML row matching — call check() once per
// row; it polls the statement's context (and the database's close
// broadcast) every interruptStride rows, so a canceled statement stops
// within a few hundred row visits regardless of how much data remains.
// The first governance failure is sticky: once check() has reported an
// error, every later call reports the same one, so a cancellation
// surfaces through the existing scanErr/foldErr plumbing exactly like
// an evaluation error would.
//
// Cancellation boundary (the contract DML callers rely on): checks run
// only during statement execution, BEFORE commitTx stages the
// transaction's WAL frames. A canceled DML statement therefore unwinds
// through rollbackTx — mvccRefs.abort flips its stamps to the aborted
// state — and leaves no visible effect. Once commitTx has been entered
// the statement is past its last checkpoint and commits normally: a
// context that expires during the WAL stage or the group-commit fsync
// does not (and must not) undo a durable transaction.
//
// The memory budget is a database-wide byte pool (Options.MemoryBudget)
// charged by the operators that buffer unbounded state: hash-agg group
// tables, join hash builds, materialised/sort row buffers. Charges are
// estimates (estimated value-slot sizes, not precise heap accounting);
// the point is to fail one statement with ErrMemoryBudget instead of
// taking the process down with an OOM kill. A statement's charges are
// released in full when it finishes.
//
// Admission control bounds concurrent statement executions
// (Options.MaxConcurrentStatements) with a bounded wait queue: an
// arriving statement over the limit queues; once the queue itself is
// full the statement is shed immediately with ErrAdmissionRejected.
// Queued statements still honor their deadlines and the database's
// close broadcast, so overload degrades into fast failures instead of
// unbounded goroutine pileup.

// Typed governance errors. Callers distinguish them with errors.Is.
var (
	// ErrCanceled reports a statement stopped by its context being
	// canceled (or by DB.Close canceling in-flight statements). The
	// database is left unpoisoned: reads simply stop, DML canceled
	// before the WAL stage rolls back cleanly.
	ErrCanceled = errors.New("sqldb: statement canceled")
	// ErrDeadlineExceeded reports a statement stopped by its context
	// deadline (per-call or the DB.SetStatementTimeout default).
	ErrDeadlineExceeded = errors.New("sqldb: statement deadline exceeded")
	// ErrMemoryBudget reports a statement that would have pushed the
	// database's buffered-operator memory (hash aggregation, join hash
	// builds, sort buffers) past Options.MemoryBudget.
	ErrMemoryBudget = errors.New("sqldb: statement memory budget exceeded")
	// ErrAdmissionRejected reports a statement shed at admission: the
	// concurrent-statement limit was reached AND the wait queue was
	// full. The caller should back off and retry.
	ErrAdmissionRejected = errors.New("sqldb: statement rejected: admission queue full")
	// ErrClosed reports a statement that arrived at (or was in flight
	// across) DB.Close.
	ErrClosed = errors.New("sqldb: database is closed")
)

// interruptStride is how many check() calls pass between context polls.
// A power of two: the fast path is one branch and a mask. At even a
// pessimistic 1µs per row visit, 256 rows bound the cancellation
// latency around a quarter millisecond — far inside the 50ms target.
const interruptStride = 256

// Cancel reasons recorded on traces and the slow-query log.
const (
	cancelReasonCanceled = "canceled"
	cancelReasonDeadline = "deadline"
	cancelReasonMemory   = "memory"
	cancelReasonShutdown = "shutdown"
)

// interrupt is one statement's cancellation checker and memory-budget
// account. A nil *interrupt is the ungoverned path (internal executions,
// replay): every method no-ops.
type interrupt struct {
	db      *DB
	ctx     context.Context
	done    <-chan struct{} // ctx.Done(); nil never fires
	closing <-chan struct{} // DB close broadcast

	n      uint32 // check() calls since the last poll
	err    error  // sticky governance failure
	reason string // cancel reason for telemetry/tracing

	mem        int64 // bytes currently charged against db.memUsed
	deadlineNs int64 // effective statement deadline budget (0 = none)
}

// check is the per-row checkpoint. The fast path — no sticky error,
// stride not yet reached — is a branch and a counter increment.
func (ic *interrupt) check() error {
	if ic == nil {
		return nil
	}
	if ic.err != nil {
		return ic.err
	}
	ic.n++
	if ic.n&(interruptStride-1) != 0 {
		return nil
	}
	return ic.poll()
}

// poll consults the context and close broadcast immediately (no stride).
// Statement entry points call it directly at phase boundaries — e.g.
// right before commitTx, the last point a DML statement can cancel.
func (ic *interrupt) poll() error {
	if ic == nil {
		return nil
	}
	if ic.err != nil {
		return ic.err
	}
	select {
	case <-ic.done:
		ic.failCtx()
	case <-ic.closing:
		ic.fail(fmt.Errorf("%w: %w", ErrCanceled, ErrClosed), cancelReasonShutdown)
	default:
	}
	return ic.err
}

// failCtx maps the context's error onto the engine's sentinel pair.
func (ic *interrupt) failCtx() {
	switch {
	case errors.Is(ic.ctx.Err(), context.DeadlineExceeded):
		ic.fail(ErrDeadlineExceeded, cancelReasonDeadline)
	default:
		ic.fail(ErrCanceled, cancelReasonCanceled)
	}
}

// fail records the sticky governance failure (first cause wins).
func (ic *interrupt) fail(err error, reason string) {
	if ic.err == nil {
		ic.err = err
		ic.reason = reason
	}
}

// rowFootprint estimates the buffered cost of retaining one row of n
// value slots: the slice header plus 32 bytes per sqltypes.Value. An
// estimate by design — see the memory-budget notes above.
func rowFootprint(n int) int64 { return 48 + 32*int64(n) }

// charge reserves n bytes of the database's memory budget for this
// statement, failing with ErrMemoryBudget when the pool is exhausted.
// Charges accumulate on the statement and release() returns them all.
func (ic *interrupt) charge(n int64) error {
	if ic == nil || ic.db == nil || ic.db.memBudget <= 0 {
		return nil
	}
	if ic.err != nil {
		return ic.err
	}
	if ic.db.memUsed.Add(n) > ic.db.memBudget {
		ic.db.memUsed.Add(-n)
		ic.db.met.memRejected.Inc()
		ic.fail(fmt.Errorf("%w (budget %d bytes)", ErrMemoryBudget, ic.db.memBudget), cancelReasonMemory)
		return ic.err
	}
	ic.mem += n
	return nil
}

// releaseMem returns every byte the statement charged to the pool.
func (ic *interrupt) releaseMem() {
	if ic == nil || ic.mem == 0 {
		return
	}
	ic.db.memUsed.Add(-ic.mem)
	ic.mem = 0
}

// admitStatement is the statement entry gate: it applies the default
// statement timeout, passes (or sheds at) admission control, and builds
// the statement's interrupt. The returned release function MUST be
// called when the statement finishes, on every path; it frees the
// admission slot, returns memory charges and records the cancellation
// telemetry. ctx may be nil (the context-less Exec/Query entry points).
func (db *DB) admitStatement(ctx context.Context) (*interrupt, func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if db.closingFlag.Load() {
		return nil, nil, ErrClosed
	}
	cancel := func() {}
	var deadlineNs int64
	if d := time.Duration(db.stmtTimeout.Load()); d > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, d)
		}
	}
	if dl, has := ctx.Deadline(); has {
		deadlineNs = time.Until(dl).Nanoseconds()
	}

	admitted := false
	if db.admit != nil {
		select {
		case db.admit <- struct{}{}:
			admitted = true
		default:
			// Over the concurrency limit: queue, bounded.
			if db.admitWaiting.Add(1) > int64(db.admitMaxQueue) {
				db.admitWaiting.Add(-1)
				db.met.stmtShed.Inc()
				cancel()
				return nil, nil, ErrAdmissionRejected
			}
			start := time.Now()
			select {
			case db.admit <- struct{}{}:
				db.admitWaiting.Add(-1)
				db.met.admissionWaitNs.ObserveSince(start)
				admitted = true
			case <-ctx.Done():
				db.admitWaiting.Add(-1)
				cancel()
				if errors.Is(ctx.Err(), context.DeadlineExceeded) {
					db.met.stmtTimedOut.Inc()
					return nil, nil, ErrDeadlineExceeded
				}
				db.met.stmtCanceled.Inc()
				return nil, nil, ErrCanceled
			case <-db.closing:
				db.admitWaiting.Add(-1)
				cancel()
				return nil, nil, ErrClosed
			}
		}
	}

	// Track the in-flight statement so Close can drain. Re-check the
	// closing flag after registering: a Close that raced past the first
	// check has already (or will immediately) see this registration.
	db.stmtWG.Add(1)
	if db.closingFlag.Load() {
		if admitted {
			<-db.admit
		}
		db.stmtWG.Done()
		cancel()
		return nil, nil, ErrClosed
	}

	ic := &interrupt{
		db:         db,
		ctx:        ctx,
		done:       ctx.Done(),
		closing:    db.closing,
		deadlineNs: deadlineNs,
	}
	release := func() {
		ic.releaseMem()
		switch ic.reason {
		case cancelReasonCanceled, cancelReasonShutdown:
			db.met.stmtCanceled.Inc()
		case cancelReasonDeadline:
			db.met.stmtTimedOut.Inc()
		}
		if admitted {
			<-db.admit
		}
		db.stmtWG.Done()
		cancel()
	}
	return ic, release, nil
}

// SetStatementTimeout installs a default deadline applied to every
// statement whose context does not already carry one (including the
// context-less Exec/Query entry points). Zero disables the default.
func (db *DB) SetStatementTimeout(d time.Duration) {
	db.stmtTimeout.Store(int64(d))
}

// MemoryInUse reports the bytes currently charged against the
// statement memory budget (0 when no budget is configured).
func (db *DB) MemoryInUse() int64 { return db.memUsed.Load() }

// AdmissionQueueDepth reports how many statements are currently waiting
// for an admission slot.
func (db *DB) AdmissionQueueDepth() int64 { return db.admitWaiting.Load() }

// govern state embedded in DB (fields declared here to keep the
// governance surface in one file; initialised in OpenWith/initGovern).
type governState struct {
	stmtTimeout atomic.Int64 // default statement deadline, ns
	memBudget   int64        // Options.MemoryBudget; 0 = unlimited
	memUsed     atomic.Int64

	admit         chan struct{} // admission semaphore; nil = unlimited
	admitMaxQueue int
	admitWaiting  atomic.Int64

	stmtWG      sync.WaitGroup
	closing     chan struct{}
	closingFlag atomic.Bool
	closeOnce   sync.Once

	// CloseGrace bounds how long Close waits for in-flight statements
	// to observe the cancel broadcast before proceeding to teardown.
	CloseGrace time.Duration
}

// initGovern wires the admission/budget configuration at Open.
func (db *DB) initGovern(opts Options) {
	db.closing = make(chan struct{})
	db.CloseGrace = 5 * time.Second
	db.memBudget = opts.MemoryBudget
	if n := opts.MaxConcurrentStatements; n > 0 {
		db.admit = make(chan struct{}, n)
		db.admitMaxQueue = opts.AdmissionQueue
		if db.admitMaxQueue <= 0 {
			db.admitMaxQueue = 4 * n
		}
	}
}
