package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// buildCompositeDB: typed columns with NULLs and a mix of composite and
// single-column indexes over them.
func buildCompositeDB(t testing.TB, rng *rand.Rand, rows int) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`CREATE TABLE C (
		ID INTEGER PRIMARY KEY,
		A  INTEGER,
		B  INTEGER,
		S  VARCHAR(30),
		TS TIMESTAMP
	)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO C VALUES (?, ?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"alpha", "beta", "gamma", "", "42"}
	maybeNull := func(v sqltypes.Value) sqltypes.Value {
		if rng.Intn(7) == 0 {
			return sqltypes.Null
		}
		return v
	}
	for i := 0; i < rows; i++ {
		_, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			maybeNull(sqltypes.NewInt(int64(rng.Intn(20)))),
			maybeNull(sqltypes.NewInt(int64(rng.Intn(50)-25))),
			maybeNull(sqltypes.NewString(words[rng.Intn(len(words))])),
			maybeNull(sqltypes.NewString(fmt.Sprintf("200%d-01-1%d 00:00:00", rng.Intn(10), rng.Intn(9)))),
		)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, ddl := range []string{
		`CREATE INDEX CIX_AB ON C (A, B) USING ORDERED`,
		`CREATE INDEX CIX_SA ON C (S, A) USING HASH`,
		`CREATE INDEX CIX_TS ON C (TS) USING ORDERED`,
	} {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestCompositeAccessPaths checks the planner's composite matching and
// its EXPLAIN strings, and that every path returns the same rows as the
// forced scan.
func TestCompositeAccessPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := buildCompositeDB(t, rng, 400)
	defer db.Close()

	cases := []struct {
		sql  string
		args []sqltypes.Value
		path string
	}{
		{`SELECT ID FROM C WHERE A = ? AND B = ?`,
			[]sqltypes.Value{sqltypes.NewInt(3), sqltypes.NewInt(7)}, "eq(C.A+B)"},
		{`SELECT ID FROM C WHERE B = ? AND A = ?`, // conjunct order immaterial
			[]sqltypes.Value{sqltypes.NewInt(7), sqltypes.NewInt(3)}, "eq(C.A+B)"},
		{`SELECT ID FROM C WHERE A = ? AND B BETWEEN ? AND ?`,
			[]sqltypes.Value{sqltypes.NewInt(3), sqltypes.NewInt(-5), sqltypes.NewInt(5)}, "range(C.A+B)"},
		{`SELECT ID FROM C WHERE A = ? AND B > ?`,
			[]sqltypes.Value{sqltypes.NewInt(3), sqltypes.NewInt(0)}, "range(C.A+B)"},
		{`SELECT ID FROM C WHERE A = ?`,
			[]sqltypes.Value{sqltypes.NewInt(3)}, "prefix(C.A)"},
		{`SELECT ID FROM C WHERE A = ? AND B IS NOT NULL`,
			[]sqltypes.Value{sqltypes.NewInt(3)}, "not-null(C.A+B)"},
		{`SELECT ID FROM C WHERE A = ? AND B IS NULL`,
			[]sqltypes.Value{sqltypes.NewInt(3)}, "null(C.A+B)"},
		{`SELECT ID FROM C WHERE S = ? AND A = ?`,
			[]sqltypes.Value{sqltypes.NewString("alpha"), sqltypes.NewInt(3)}, "hash-eq(C.S+A)"},
		// Multi-key ORDER BY served by the composite index.
		{`SELECT ID FROM C ORDER BY A, B`, nil, "ordered-scan(C.A+B) order"},
		{`SELECT ID FROM C ORDER BY A DESC, B DESC`, nil, "ordered-scan(C.A+B) order-desc"},
		{`SELECT ID FROM C WHERE A = ? ORDER BY B`,
			[]sqltypes.Value{sqltypes.NewInt(3)}, "prefix(C.A) order"},
		{`SELECT ID FROM C WHERE A = ? AND B > ? ORDER BY B DESC`,
			[]sqltypes.Value{sqltypes.NewInt(3), sqltypes.NewInt(-10)}, "range(C.A+B) order-desc"},
		// Mixed directions cannot be served in order.
		{`SELECT ID FROM C WHERE A = ? ORDER BY B DESC, A`,
			[]sqltypes.Value{sqltypes.NewInt(3)}, "prefix(C.A)"},
	}
	for _, tc := range cases {
		st, err := db.Prepare(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.AccessPath()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.path {
			t.Errorf("%s: path %q, want %q", tc.sql, got, tc.path)
		}
		indexed, err := st.Query(tc.args...)
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		db.SetFullScanOnly(true)
		scanned, err := st.Query(tc.args...)
		db.SetFullScanOnly(false)
		if err != nil {
			t.Fatalf("%s (scan): %v", tc.sql, err)
		}
		ordered := strings.Contains(tc.sql, "ORDER BY")
		if rowsKey(indexed, ordered) != rowsKey(scanned, ordered) {
			t.Errorf("%s: index path and scan disagree (%d vs %d rows)",
				tc.sql, len(indexed.Data), len(scanned.Data))
		}
	}
}

// TestIndexOnlyAggregates: COUNT over an exactly-consumed predicate
// must be answered without materialising any heap row; MIN/MAX touch
// only boundary rows. Results must equal the full-scan oracle.
func TestIndexOnlyAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := buildCompositeDB(t, rng, 600)
	defer db.Close()

	checkAgainstScan := func(sql string, args ...sqltypes.Value) *Rows {
		t.Helper()
		indexed, err := db.Query(sql, args...)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		db.SetFullScanOnly(true)
		scanned, err := db.Query(sql, args...)
		db.SetFullScanOnly(false)
		if err != nil {
			t.Fatalf("%s (scan): %v", sql, err)
		}
		if rowsKey(indexed, true) != rowsKey(scanned, true) {
			t.Fatalf("%s: index-only %v != scan %v", sql, indexed.Data, scanned.Data)
		}
		return indexed
	}

	// COUNT(*) with a two-column equality: zero heap rows.
	st, err := db.Prepare(`SELECT COUNT(*) FROM C WHERE A = ? AND B = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.AccessPath(); p != "eq(C.A+B) index-only" {
		t.Fatalf("path = %q, want eq(C.A+B) index-only", p)
	}
	before := db.HeapRowReads("C")
	checkAgainstScan(`SELECT COUNT(*) FROM C WHERE A = ? AND B = ?`, sqltypes.NewInt(4), sqltypes.NewInt(2))
	// The full-scan oracle ran in between; re-run only the indexed side.
	before = db.HeapRowReads("C")
	if _, err := st.Query(sqltypes.NewInt(4), sqltypes.NewInt(2)); err != nil {
		t.Fatal(err)
	}
	if got := db.HeapRowReads("C") - before; got != 0 {
		t.Fatalf("COUNT read %d heap rows, want 0", got)
	}

	// COUNT(*) + COUNT(col) + MIN/MAX over a prefix+range path.
	checkAgainstScan(`SELECT COUNT(*), COUNT(B), MIN(B), MAX(B) FROM C WHERE A = ? AND B BETWEEN ? AND ?`,
		sqltypes.NewInt(4), sqltypes.NewInt(-30), sqltypes.NewInt(30))

	// Strict bounds must stay exact in the index-only path.
	checkAgainstScan(`SELECT COUNT(*) FROM C WHERE A = ? AND B > ?`,
		sqltypes.NewInt(4), sqltypes.NewInt(0))
	checkAgainstScan(`SELECT COUNT(*) FROM C WHERE A = ? AND B < ?`,
		sqltypes.NewInt(4), sqltypes.NewInt(0))

	// IS NOT NULL / IS NULL shapes.
	checkAgainstScan(`SELECT COUNT(*), MIN(B) FROM C WHERE A = ? AND B IS NOT NULL`, sqltypes.NewInt(4))
	checkAgainstScan(`SELECT COUNT(*) FROM C WHERE A = ? AND B IS NULL`, sqltypes.NewInt(4))

	// No WHERE at all: COUNT(*) from the live counter, zero reads.
	before = db.HeapRowReads("C")
	rows := checkAgainstScan(`SELECT COUNT(*) FROM C`)
	if rows.Data[0][0].Int() != 600 {
		t.Fatalf("COUNT(*) = %v", rows.Data[0][0])
	}

	// MIN over the single-column ordered index.
	checkAgainstScan(`SELECT MIN(TS), MAX(TS), COUNT(TS) FROM C WHERE TS IS NOT NULL`)

	// NULL probe: no rows match, count 0, MIN NULL.
	rows = checkAgainstScan(`SELECT COUNT(*), MIN(B) FROM C WHERE A = ? AND B > ?`,
		sqltypes.Null, sqltypes.NewInt(0))
	if rows.Data[0][0].Int() != 0 || !rows.Data[0][1].IsNull() {
		t.Fatalf("NULL probe gave %v", rows.Data[0])
	}

	// Inexact probes (far-integer collision window) must fall back to
	// the residual-checked path and still agree with the scan.
	if _, err := db.Exec(`INSERT INTO C VALUES (?, ?, ?, ?, ?)`,
		sqltypes.NewInt(100001), sqltypes.NewInt(1<<53), sqltypes.NewInt(1), sqltypes.Null, sqltypes.Null); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO C VALUES (?, ?, ?, ?, ?)`,
		sqltypes.NewInt(100002), sqltypes.NewInt(1<<53+2), sqltypes.NewInt(1), sqltypes.Null, sqltypes.Null); err != nil {
		t.Fatal(err)
	}
	checkAgainstScan(`SELECT COUNT(*) FROM C WHERE A = ? AND B = ?`,
		sqltypes.NewInt(1<<53), sqltypes.NewInt(1))

	// A residual-bearing WHERE must NOT be answered index-only.
	st2, err := db.Prepare(`SELECT COUNT(*) FROM C WHERE A = ? AND S LIKE 'a%'`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st2.AccessPath(); strings.Contains(p, "index-only") {
		t.Fatalf("residual-bearing plan claims index-only: %q", p)
	}
	checkAgainstScan(`SELECT COUNT(*) FROM C WHERE A = ? AND S LIKE 'a%'`, sqltypes.NewInt(4))
}

// TestCompositeIndexReplay: multi-column CREATE INDEX survives the DDL
// log and serves the same plans after reopen.
func TestCompositeIndexReplay(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY, A INTEGER, B INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX IX_AB ON T (A, B)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if _, err := db.Exec(`INSERT INTO T VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i%10)), sqltypes.NewInt(int64(i%30))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st, err := db2.Prepare(`SELECT COUNT(*) FROM T WHERE A = ? AND B = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.AccessPath(); p != "eq(T.A+B) index-only" {
		t.Fatalf("replayed path = %q", p)
	}
	rows, err := st.Query(sqltypes.NewInt(3), sqltypes.NewInt(13))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 10 {
		t.Fatalf("COUNT = %d, want 10", got)
	}
}

// TestPlannerPropertyCompositeVsScan: random predicates over composite
// and single indexes, SELECT and DML, must match the full-scan oracle.
func TestPlannerPropertyCompositeVsScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))

	randPred := func() (string, []sqltypes.Value) {
		a := func() sqltypes.Value { return sqltypes.NewInt(int64(rng.Intn(20))) }
		b := func() sqltypes.Value { return sqltypes.NewInt(int64(rng.Intn(50) - 25)) }
		switch rng.Intn(10) {
		case 0:
			return "A = ? AND B = ?", []sqltypes.Value{a(), b()}
		case 1:
			lo := rng.Intn(50) - 25
			return "A = ? AND B BETWEEN ? AND ?", []sqltypes.Value{a(),
				sqltypes.NewInt(int64(lo)), sqltypes.NewInt(int64(lo + rng.Intn(20)))}
		case 2:
			return "A = ? AND B >= ?", []sqltypes.Value{a(), b()}
		case 3:
			return "A = ? AND B < ?", []sqltypes.Value{a(), b()}
		case 4:
			return "A = ?", []sqltypes.Value{a()}
		case 5:
			return "A = ? AND B IS NULL", []sqltypes.Value{a()}
		case 6:
			return "A = ? AND B IS NOT NULL", []sqltypes.Value{a()}
		case 7:
			words := []string{"alpha", "beta", "", "42", "zz"}
			return "S = ? AND A = ?", []sqltypes.Value{
				sqltypes.NewString(words[rng.Intn(len(words))]), a()}
		case 8:
			return "B = ? AND A = ?", []sqltypes.Value{b(), a()}
		default:
			return "A = ? AND B = ? AND S IS NOT NULL", []sqltypes.Value{a(), b()}
		}
	}

	t.Run("select", func(t *testing.T) {
		db := buildCompositeDB(t, rand.New(rand.NewSource(23)), 500)
		defer db.Close()
		for i := 0; i < 300; i++ {
			cond, args := randPred()
			sql := "SELECT ID, A, B, S FROM C WHERE " + cond
			ordered := false
			switch rng.Intn(3) {
			case 1:
				sql += " ORDER BY A, B"
			case 2:
				sql += " ORDER BY B DESC"
			}
			if rng.Intn(4) == 0 {
				sql = "SELECT COUNT(*), MIN(B), MAX(B) FROM C WHERE " + cond
				ordered = true
			}
			indexed, ierr := db.Query(sql, args...)
			db.SetFullScanOnly(true)
			scanned, serr := db.Query(sql, args...)
			db.SetFullScanOnly(false)
			if (ierr == nil) != (serr == nil) {
				t.Fatalf("%s: error mismatch %v vs %v", sql, ierr, serr)
			}
			if ierr != nil {
				continue
			}
			if rowsKey(indexed, ordered) != rowsKey(scanned, ordered) {
				t.Fatalf("%s args=%v: index %d rows, scan %d rows",
					sql, args, len(indexed.Data), len(scanned.Data))
			}
		}
	})

	t.Run("dml", func(t *testing.T) {
		mk := func(scanOnly bool) *DB {
			db := buildCompositeDB(t, rand.New(rand.NewSource(29)), 400)
			db.SetFullScanOnly(scanOnly)
			return db
		}
		a, b := mk(false), mk(true)
		defer a.Close()
		defer b.Close()
		for i := 0; i < 80; i++ {
			cond, args := randPred()
			var sql string
			if i%2 == 0 {
				sql = "UPDATE C SET S = 'mut' WHERE " + cond
			} else {
				sql = "DELETE FROM C WHERE " + cond
			}
			ra, ea := a.Exec(sql, args...)
			rb, eb := b.Exec(sql, args...)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("%s: error mismatch %v vs %v", sql, ea, eb)
			}
			if ea == nil && ra.RowsAffected != rb.RowsAffected {
				t.Fatalf("%s: affected %d vs %d", sql, ra.RowsAffected, rb.RowsAffected)
			}
		}
		ra, _ := a.Query("SELECT * FROM C ORDER BY ID")
		rb, _ := b.Query("SELECT * FROM C ORDER BY ID")
		if rowsKey(ra, true) != rowsKey(rb, true) {
			t.Fatal("databases diverged after DML through composite vs scan paths")
		}
	})
}

// TestOrderedIndexDeleteReclaim: hollow leaves are merged away on
// delete, so a delete-heavy workload cannot leave the tree full of dead
// nodes; lookups and scans stay correct throughout.
func TestOrderedIndexDeleteReclaim(t *testing.T) {
	schema := &TableSchema{Name: "X", Cols: []Column{{Name: "K", Type: sqltypes.TypeInfo{Kind: sqltypes.KindInt}}}}
	schema.rebuildIndex()
	ix := newOrderedIndex("IX", schema, []string{"K"})

	const n = 20000
	row := func(k int64) []sqltypes.Value { return []sqltypes.Value{sqltypes.NewInt(k)} }
	for i := int64(0); i < n; i++ {
		ix.addRow(row(i), liveEntry(rowID(i)))
	}
	full := ix.nodeCount()
	if full < n/btreeLeafMax {
		t.Fatalf("tree suspiciously small: %d nodes", full)
	}
	// Delete everything: the tree must collapse back to a single node.
	for i := int64(0); i < n; i++ {
		ix.removeRow(row(i), rowID(i))
	}
	if got := ix.nodeCount(); got != 1 {
		t.Fatalf("after deleting all keys: %d nodes, want 1 (was %d)", got, full)
	}
	// And it must still be a working index.
	ix.addRow(row(42), liveEntry(rowID(1)))
	if es := ix.lookupKey(encodeKey(sqltypes.NewInt(42))); len(es) != 1 || es[0].id != 1 {
		t.Fatalf("lookup after reclaim: %v", es)
	}

	// Interleaved random inserts/deletes against a map oracle.
	rng := rand.New(rand.NewSource(41))
	ix2 := newOrderedIndex("IX2", schema, []string{"K"})
	oracle := map[int64][]rowID{}
	nextID := rowID(1)
	for op := 0; op < 30000; op++ {
		k := int64(rng.Intn(500))
		if rng.Intn(3) > 0 && len(oracle[k]) == 0 || rng.Intn(2) == 0 {
			ix2.addRow(row(k), liveEntry(nextID))
			oracle[k] = append(oracle[k], nextID)
			nextID++
		} else if ids := oracle[k]; len(ids) > 0 {
			victim := ids[rng.Intn(len(ids))]
			ix2.removeRow(row(k), victim)
			for j, id := range ids {
				if id == victim {
					oracle[k] = append(ids[:j], ids[j+1:]...)
					break
				}
			}
		}
	}
	for k, want := range oracle {
		got := ix2.lookupKey(encodeKey(sqltypes.NewInt(k)))
		if len(got) != len(want) {
			t.Fatalf("key %d: %d ids, want %d", k, len(got), len(want))
		}
	}
	// In-order scan yields sorted, live keys only.
	prev := ""
	keys := 0
	ix2.scanRange(nil, nil, false, func(k string, es []*idxEntry) bool {
		if len(es) == 0 {
			t.Fatalf("empty id list under key %q", k)
		}
		if k <= prev && prev != "" {
			t.Fatal("scan out of order")
		}
		prev = k
		keys++
		return true
	})
	live := 0
	for _, ids := range oracle {
		if len(ids) > 0 {
			live++
		}
	}
	if keys != live {
		t.Fatalf("scan saw %d keys, oracle has %d live", keys, live)
	}

	// End-to-end: a delete-heavy SQL workload stays correct.
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE D (ID INTEGER PRIMARY KEY, N INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE INDEX DIX ON D (N)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if _, err := db.Exec(`INSERT INTO D VALUES (?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`DELETE FROM D WHERE N >= ? AND N < ?`,
		sqltypes.NewInt(0), sqltypes.NewInt(4900)); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT COUNT(*) FROM D WHERE N BETWEEN ? AND ?`,
		sqltypes.NewInt(0), sqltypes.NewInt(10000))
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Data[0][0].Int(); got != 100 {
		t.Fatalf("COUNT after delete-heavy workload = %d, want 100", got)
	}
}
