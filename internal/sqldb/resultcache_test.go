package sqldb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

func cacheDB(t *testing.T) *DB {
	t.Helper()
	db := memDB(t)
	db.SetResultCache(4 << 20)
	return db
}

// TestResultCacheHitAndAccessPath: the second execution of an identical
// cacheable statement is served from the cache, the hit/miss counters
// advance, and AccessPath advertises the cached state.
func TestResultCacheHitAndAccessPath(t *testing.T) {
	db := cacheDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')`)

	const q = `SELECT id, v FROM t WHERE id > 1 ORDER BY id`
	first := mustQuery(t, db, q)
	first.Detach()
	if got := counterValue(t, db, "sqldb_result_cache_misses_total"); got != 1 {
		t.Fatalf("misses after first query = %d, want 1", got)
	}
	second := mustQuery(t, db, q)
	second.Detach()
	if got := counterValue(t, db, "sqldb_result_cache_hits_total"); got != 1 {
		t.Fatalf("hits after second query = %d, want 1", got)
	}
	rowsMustEqual(t, "cached replay", second, first)

	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	path, err := stmt.AccessPath()
	if err != nil {
		t.Fatalf("AccessPath: %v", err)
	}
	if !strings.Contains(path, " cached") {
		t.Fatalf("AccessPath = %q, want ' cached' suffix", path)
	}

	// Distinct bound args are distinct cache keys.
	p2, err := db.Prepare(`SELECT v FROM t WHERE id = ?`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	r1, err := p2.Query(sqltypes.NewInt(1))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	r2, err := p2.Query(sqltypes.NewInt(2))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if r1.Data[0][0].AsString() != "a" || r2.Data[0][0].AsString() != "b" {
		t.Fatalf("args not part of the cache key: %v / %v", r1.Data, r2.Data)
	}
	r1.Close()
	r2.Close()
}

// TestResultCacheInvalidationOnWrite: a committed write to a referenced
// table must never let a later query observe the stale cached result.
func TestResultCacheInvalidationOnWrite(t *testing.T) {
	db := cacheDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 10), (2, 20)`)

	const q = `SELECT COUNT(*), SUM(v) FROM t`
	r := mustQuery(t, db, q)
	if r.Data[0][0].Int() != 2 {
		t.Fatalf("count = %v, want 2", r.Data[0][0])
	}
	r.Close()
	mustQuery(t, db, q).Close() // hit, warm the entry

	mustExec(t, db, `INSERT INTO t VALUES (3, 30)`)
	r = mustQuery(t, db, q)
	if r.Data[0][0].Int() != 3 || r.Data[0][1].Int() != 60 {
		t.Fatalf("post-insert cached read stale: %v", r.Data)
	}
	r.Close()

	mustQuery(t, db, q).Close()
	mustExec(t, db, `UPDATE t SET v = 0 WHERE id = 1`)
	r = mustQuery(t, db, q)
	if r.Data[0][1].Int() != 50 {
		t.Fatalf("post-update cached read stale: %v", r.Data)
	}
	r.Close()

	mustQuery(t, db, q).Close()
	mustExec(t, db, `DELETE FROM t WHERE id = 3`)
	r = mustQuery(t, db, q)
	if r.Data[0][0].Int() != 2 || r.Data[0][1].Int() != 20 {
		t.Fatalf("post-delete cached read stale: %v", r.Data)
	}
	r.Close()

	if got := counterValue(t, db, "sqldb_result_cache_invalidations_total"); got == 0 {
		t.Fatal("invalidations counter never advanced")
	}
}

// TestResultCacheDDLFlush: any schema change flushes the whole cache
// (the schema epoch is part of every entry's validity check).
func TestResultCacheDDLFlush(t *testing.T) {
	db := cacheDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO t VALUES (1, 'a')`)
	mustQuery(t, db, `SELECT v FROM t`).Close()
	rc := db.rcache.Load()
	if rc.entryCount() != 1 {
		t.Fatalf("entries before DDL = %d, want 1", rc.entryCount())
	}
	mustExec(t, db, `CREATE TABLE other (k INTEGER PRIMARY KEY)`)
	if rc.entryCount() != 0 {
		t.Fatalf("entries after DDL = %d, want 0", rc.entryCount())
	}
	if rc.bytesUsed() != 0 {
		t.Fatalf("bytes after DDL = %d, want 0", rc.bytesUsed())
	}
	r := mustQuery(t, db, `SELECT v FROM t`)
	if r.Data[0][0].AsString() != "a" {
		t.Fatalf("post-DDL query: %v", r.Data)
	}
	r.Close()
}

// TestResultCacheLRUEviction: a byte-capped cache evicts least-recently
// used entries instead of growing without bound.
func TestResultCacheLRUEviction(t *testing.T) {
	db := memDB(t)
	db.SetResultCache(8 << 10)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, pad VARCHAR(100))`)
	pad := strings.Repeat("x", 100)
	for i := 0; i < 40; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewString(pad))
	}
	rc := db.rcache.Load()
	// One row per entry (~240 bytes) stays under the per-entry cap
	// (capBytes/8); forty of them overflow the 8 KiB cache.
	for i := 0; i < 40; i++ {
		r := mustQuery(t, db, fmt.Sprintf(`SELECT id, pad FROM t WHERE id = %d`, i))
		r.Close()
		if used, cap := rc.bytesUsed(), int64(8<<10); used > cap {
			t.Fatalf("cache bytes %d exceed cap %d", used, cap)
		}
	}
	if got := counterValue(t, db, "sqldb_result_cache_evictions_total"); got == 0 {
		t.Fatal("no evictions under byte pressure")
	}
}

// TestResultCacheEquivalenceSequential replays one seeded DML+query
// script against a cache-on and a cache-off database and requires every
// query result to match exactly.
func TestResultCacheEquivalenceSequential(t *testing.T) {
	setup := func(t *testing.T, cached bool) *DB {
		db := memDB(t)
		if cached {
			db.SetResultCache(4 << 20)
		}
		mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, bucket INTEGER, v DOUBLE)`)
		return db
	}
	on, off := setup(t, true), setup(t, false)

	queries := []string{
		`SELECT COUNT(*) FROM t`,
		`SELECT bucket, COUNT(*), SUM(v) FROM t GROUP BY bucket ORDER BY bucket`,
		`SELECT id, v FROM t WHERE bucket = 2 ORDER BY id`,
		`SELECT id FROM t ORDER BY v DESC LIMIT 5`,
	}
	rng := rand.New(rand.NewSource(7))
	next := int64(0)
	for step := 0; step < 400; step++ {
		switch rng.Intn(4) {
		case 0:
			args := []sqltypes.Value{
				sqltypes.NewInt(next),
				sqltypes.NewInt(int64(rng.Intn(5))),
				sqltypes.NewDouble(rng.Float64() * 100),
			}
			next++
			mustExec(t, on, `INSERT INTO t VALUES (?, ?, ?)`, args...)
			mustExec(t, off, `INSERT INTO t VALUES (?, ?, ?)`, args...)
		case 1:
			if next > 0 {
				id := sqltypes.NewInt(rng.Int63n(next))
				mustExec(t, on, `UPDATE t SET v = v + 1 WHERE id = ?`, id)
				mustExec(t, off, `UPDATE t SET v = v + 1 WHERE id = ?`, id)
			}
		case 2:
			if next > 0 {
				id := sqltypes.NewInt(rng.Int63n(next))
				mustExec(t, on, `DELETE FROM t WHERE id = ?`, id)
				mustExec(t, off, `DELETE FROM t WHERE id = ?`, id)
			}
		case 3:
			q := queries[rng.Intn(len(queries))]
			a, b := mustQuery(t, on, q), mustQuery(t, off, q)
			rowsMustEqual(t, fmt.Sprintf("step %d %s", step, q), a, b)
			a.Close()
			b.Close()
		}
	}
	if counterValue(t, on, "sqldb_result_cache_hits_total") == 0 {
		t.Fatal("script never hit the cache — equivalence test exercised nothing")
	}
}

// TestResultCacheConcurrentNoStaleReads is the load-bearing visibility
// property under -race: a writer that just committed row i must observe
// COUNT(*) == i+1 on the very next query even while reader goroutines
// keep the same statement hot in the cache; readers must observe
// monotonically non-decreasing counts.
func TestResultCacheConcurrentNoStaleReads(t *testing.T) {
	db := cacheDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)

	const q = `SELECT COUNT(*) FROM t`
	const writes = 300
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 6; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			last := int64(-1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows, err := db.Query(q)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				n := rows.Data[0][0].Int()
				rows.Close()
				if n < last {
					t.Errorf("reader count went backwards: %d after %d", n, last)
					return
				}
				last = n
			}
		}()
	}

	for i := 0; i < writes; i++ {
		mustExec(t, db, `INSERT INTO t VALUES (?, 0)`, sqltypes.NewInt(int64(i)))
		rows := mustQuery(t, db, q)
		if n := rows.Data[0][0].Int(); n != int64(i+1) {
			t.Fatalf("stale read after commit: COUNT = %d, want %d", n, i+1)
		}
		rows.Close()
	}
	close(stop)
	readers.Wait()
}

// TestResultCacheMemoryBudget: cached bytes are charged against
// Options.MemoryBudget, an entry that would blow the budget is rejected
// with a full refund (the query itself still succeeds), and disabling
// the cache returns every charged byte.
func TestResultCacheMemoryBudget(t *testing.T) {
	db, err := OpenWith("", Options{MemoryBudget: 12_000})
	if err != nil {
		t.Fatalf("OpenWith: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	db.SetResultCache(4 << 20)

	mustExec(t, db, `CREATE TABLE small (id INTEGER PRIMARY KEY, v VARCHAR(10))`)
	mustExec(t, db, `INSERT INTO small VALUES (1, 'a'), (2, 'b')`)
	// Wide VARCHAR rows: the execution-time charge (row footprints only)
	// stays within budget, but the cache entry also accounts the string
	// payloads and exceeds it.
	mustExec(t, db, `CREATE TABLE big (id INTEGER PRIMARY KEY, pad VARCHAR(250))`)
	pad := strings.Repeat("y", 250)
	for i := 0; i < 50; i++ {
		mustExec(t, db, `INSERT INTO big VALUES (?, ?)`, sqltypes.NewInt(int64(i)), sqltypes.NewString(pad))
	}

	mustQuery(t, db, `SELECT id, v FROM small ORDER BY id`).Close()
	rc := db.rcache.Load()
	held := db.MemoryInUse()
	if held <= 0 || held != rc.bytesUsed() {
		t.Fatalf("MemoryInUse = %d, cache holds %d — cached bytes not charged", held, rc.bytesUsed())
	}

	r := mustQuery(t, db, `SELECT id, pad FROM big`)
	if len(r.Data) != 50 {
		t.Fatalf("big query rows = %d, want 50", len(r.Data))
	}
	r.Close()
	if rc.hasStmt(`SELECT id, pad FROM big`) {
		t.Fatal("over-budget entry was published")
	}
	if got := db.MemoryInUse(); got != held {
		t.Fatalf("MemoryInUse = %d after rejected insert, want %d (full refund)", got, held)
	}

	// The small entry is still live and served.
	mustQuery(t, db, `SELECT id, v FROM small ORDER BY id`).Close()
	if counterValue(t, db, "sqldb_result_cache_hits_total") == 0 {
		t.Fatal("small entry lost")
	}

	db.SetResultCache(0)
	if got := db.MemoryInUse(); got != 0 {
		t.Fatalf("MemoryInUse = %d after cache disabled, want 0", got)
	}
}

// TestResultCacheCancellationNoPartialEntry: a statement that dies
// under cancellation must not publish a partial result.
func TestResultCacheCancellationNoPartialEntry(t *testing.T) {
	db := cacheDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)`)
	for i := 0; i < 500; i += 100 {
		vals := make([]string, 0, 100)
		for j := i; j < i+100; j++ {
			vals = append(vals, fmt.Sprintf("(%d, %d)", j, j))
		}
		mustExec(t, db, `INSERT INTO t VALUES `+strings.Join(vals, ", "))
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	const q = `SELECT id, v FROM t WHERE v >= 0`
	if _, err := db.QueryContext(canceled, q); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled query: err = %v, want ErrCanceled", err)
	}
	rc := db.rcache.Load()
	if rc.hasStmt(q) || rc.entryCount() != 0 {
		t.Fatal("canceled statement published a cache entry")
	}

	// The same statement on a live context executes, caches and hits.
	r, err := db.Query(q)
	if err != nil {
		t.Fatalf("live query: %v", err)
	}
	if len(r.Data) != 500 {
		t.Fatalf("rows = %d, want 500", len(r.Data))
	}
	r.Close()
	if !rc.hasStmt(q) {
		t.Fatal("live statement did not cache")
	}
}

// TestResultCacheTraceStates: EXPLAIN ANALYZE traces carry the
// cache:"hit"|"miss"|"bypass" tag, and no tag when the cache is off.
func TestResultCacheTraceStates(t *testing.T) {
	db := cacheDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1), (2)`)

	stmt, err := db.Prepare(`SELECT id FROM t ORDER BY id`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	tr, err := stmt.Trace()
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if tr.Cache != "miss" {
		t.Fatalf("first trace cache = %q, want miss", tr.Cache)
	}
	tr, err = stmt.Trace()
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if tr.Cache != "hit" {
		t.Fatalf("second trace cache = %q, want hit", tr.Cache)
	}
	if !strings.Contains(tr.Path, " cached") {
		t.Fatalf("hit trace path = %q, want ' cached'", tr.Path)
	}

	volatile, err := db.Prepare(`SELECT id, NOW() FROM t`)
	if err != nil {
		t.Fatalf("prepare volatile: %v", err)
	}
	tr, err = volatile.Trace()
	if err != nil {
		t.Fatalf("trace volatile: %v", err)
	}
	if tr.Cache != "bypass" {
		t.Fatalf("volatile trace cache = %q, want bypass", tr.Cache)
	}

	off := memDB(t)
	mustExec(t, off, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	s2, err := off.Prepare(`SELECT id FROM t`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	tr, err = s2.Trace()
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	if tr.Cache != "" {
		t.Fatalf("cache-off trace cache = %q, want empty", tr.Cache)
	}
}

// TestResultCacheSnapshotTxBypass: statements inside an explicit
// transaction read their own snapshot and never consult the cache, so a
// cached entry can't leak newer data into an older transaction.
func TestResultCacheSnapshotTxBypass(t *testing.T) {
	db := cacheDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustQuery(t, db, `SELECT COUNT(*) FROM t`).Close() // seed the entry

	tx, err := db.Begin()
	if err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := tx.Exec(`INSERT INTO t VALUES (2)`); err != nil {
		t.Fatalf("tx insert: %v", err)
	}
	rows, err := tx.Query(`SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatalf("tx query: %v", err)
	}
	if n := rows.Data[0][0].Int(); n != 2 {
		t.Fatalf("tx sees COUNT = %d, want 2 (own write)", n)
	}
	rows.Close()
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	r := mustQuery(t, db, `SELECT COUNT(*) FROM t`)
	if n := r.Data[0][0].Int(); n != 2 {
		t.Fatalf("post-commit COUNT = %d, want 2", n)
	}
	r.Close()
}
