package sqldb

import (
	"errors"
	"testing"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// A transaction that stages nothing in the WAL (e.g. a DELETE that
// matched zero rows) may still have based that emptiness on the
// not-yet-durable effects of a concurrent transaction — the
// group-commit visibility window. Its acknowledgement must wait for
// that state to become durable: if the flush it depended on fails and
// the earlier transaction unwinds, acknowledging the empty commit means
// telling the client "the row is gone" about a row that recovery will
// bring back. The crash-recovery soak found this as an "acknowledged
// delete resurrected" violation; this is the deterministic distillation.
func TestEmptyCommitDependsOnObservedState(t *testing.T) {
	dir := t.TempDir()
	faults := iofault.New(nil)
	db, err := OpenWith(dir, Options{FS: faults})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE K (ID INTEGER PRIMARY KEY)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO K VALUES (?)`, sqltypes.NewInt(1)); err != nil {
		t.Fatal(err)
	}

	// Stage a DELETE but do not run its finish: the row is gone from
	// memory, while the frames sit unflushed in the WAL buffer.
	stmts, err := ParseScript(`DELETE FROM K WHERE ID = 1`)
	if err != nil {
		t.Fatal(err)
	}
	db.mu.Lock()
	txA := db.newTx()
	if _, _, err := db.execStmtLocked(txA, stmts[0], nil); err != nil {
		db.mu.Unlock()
		t.Fatal(err)
	}
	finishA, err := db.commitTx(txA)
	db.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	// The flush that would make the staged delete durable will fail.
	faults.FailSync("wal.log")

	// A second DELETE of the same row sees the undurable delete, matches
	// nothing, and stages nothing. Its commit still depends on that
	// observed state, so it must not be acknowledged.
	if _, err := db.Exec(`DELETE FROM K WHERE ID = 1`); err == nil {
		t.Fatal("empty commit acknowledged despite depending on a flush that failed")
	} else if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("dependent empty commit failed with %v, want ErrPoisoned in the chain", err)
	}

	// The staged delete itself was rolled back by the same failure.
	if err := finishA(); err == nil {
		t.Fatal("staged delete reported durable despite failed fsync")
	}
	db.Close() //nolint:errcheck // poisoned

	// Recovery proves the point: the row is back.
	clean, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	rows, err := clean.Query(`SELECT COUNT(*) N FROM K`)
	if err != nil {
		t.Fatal(err)
	}
	if n := rows.Data[0][0].Int(); n != 1 {
		t.Fatalf("row count after recovery = %d, want 1 (delete was never durable)", n)
	}
}
