package sqldb

import (
	"encoding/json"
	"io"
	"time"
)

// TraceNode is one plan-node measurement inside an execution trace:
// how long the stage ran, how many rows it produced and how many heap
// row versions it visited (zero for index-only stages).
type TraceNode struct {
	Node      string `json:"node"`
	Rows      int64  `json:"rows"`
	HeapReads int64  `json:"heap_reads"`
	WallNs    int64  `json:"wall_ns"`
}

// Trace is an EXPLAIN ANALYZE record for one statement execution: the
// access-path description the planner chose plus measured per-node wall
// time and row/heap-read counts, and — for DML — the commit-pipeline
// breakdown (latch or barrier wait, WAL staging, fsync wait and the
// group-commit batch the fsync rode in). Traces marshal to one JSON
// object; the slow-query log emits them one per line.
type Trace struct {
	Time string `json:"time"`
	SQL  string `json:"sql"`
	Kind string `json:"kind"` // "select" | "exec"
	// Path is the planner's access-path description (see Stmt.AccessPath);
	// empty for non-SELECT statements.
	Path string `json:"path,omitempty"`
	// Cache records the statement's result-cache interaction: "hit"
	// (served without execution), "miss" (executed, then cached if it
	// fit) or "bypass" (cacheable=false — volatile functions). Empty
	// when the result cache is disabled or for non-SELECT statements.
	Cache     string      `json:"cache,omitempty"`
	Rows      int64       `json:"rows"`
	HeapReads int64       `json:"heap_reads"`
	WallNs    int64       `json:"wall_ns"`
	Nodes     []TraceNode `json:"nodes,omitempty"`

	// DML commit-pipeline breakdown (all zero for SELECT).
	LatchWaitNs      int64 `json:"latch_wait_ns,omitempty"`
	BarrierWaitNs    int64 `json:"barrier_wait_ns,omitempty"`
	WALStageNs       int64 `json:"wal_stage_ns,omitempty"`
	FsyncWaitNs      int64 `json:"fsync_wait_ns,omitempty"`
	GroupCommitBatch int64 `json:"group_commit_batch,omitempty"`

	// Slow is set when the statement exceeded the slow-query threshold
	// (always false for traces forced via Stmt.Trace under the threshold).
	Slow bool `json:"slow,omitempty"`

	// CancelReason records why a governed statement stopped early:
	// "canceled", "deadline", "memory" or "shutdown". Empty for
	// statements that ran to completion.
	CancelReason string `json:"cancel_reason,omitempty"`
	// DeadlineNs is the statement's remaining deadline budget at
	// admission (ctx deadline or the SetStatementTimeout default);
	// zero when the statement had no deadline.
	DeadlineNs int64 `json:"deadline_ns,omitempty"`
}

// execTrace is the in-flight collector behind a Trace. A nil *execTrace
// is the disabled path: every method no-ops, so execution code calls
// span()/endHeap() unconditionally.
type execTrace struct {
	db    *DB
	t     *Trace
	start time.Time
	h0    int64
}

// newTrace starts collecting a trace for one statement execution.
func (db *DB) newTrace(sql, kind string) *execTrace {
	return &execTrace{
		db:    db,
		t:     &Trace{Time: db.nowFn().UTC().Format(time.RFC3339Nano), SQL: sql, Kind: kind},
		start: time.Now(),
	}
}

// heapSum totals heap row-version reads across all tables. Caller must
// hold db.mu (any mode): the table map only changes under the exclusive
// lock.
func (tr *execTrace) heapSum() int64 {
	var n int64
	for _, td := range tr.db.data {
		n += td.heapReads.Load()
	}
	return n
}

// beginHeap/endHeap bracket the locked execution region and record the
// statement's total heap reads. Both need db.mu held.
func (tr *execTrace) beginHeap() {
	if tr != nil {
		tr.h0 = tr.heapSum()
	}
}

func (tr *execTrace) endHeap() {
	if tr != nil {
		tr.t.HeapReads = tr.heapSum() - tr.h0
	}
}

var noopEnd = func(int64) {}

// span starts a plan-node measurement; the returned closure ends it
// with the node's output row count. Spans that never end (a stage that
// declined to run) leave no node behind. Caller must hold db.mu.
func (tr *execTrace) span(name string) func(rows int64) {
	if tr == nil {
		return noopEnd
	}
	start := time.Now()
	h0 := tr.heapSum()
	return func(rows int64) {
		tr.t.Nodes = append(tr.t.Nodes, TraceNode{
			Node:      name,
			Rows:      rows,
			HeapReads: tr.heapSum() - h0,
			WallNs:    time.Since(start).Nanoseconds(),
		})
	}
}

// finishRows closes the trace with the statement's result cardinality.
func (tr *execTrace) finishRows(rows int64) {
	if tr == nil {
		return
	}
	tr.t.Rows = rows
	tr.t.WallNs = time.Since(tr.start).Nanoseconds()
}

// trace unwraps the collected Trace (nil when tracing was disabled).
func (tr *execTrace) trace() *Trace {
	if tr == nil {
		return nil
	}
	return tr.t
}

// setDeadline records the statement's deadline budget on the trace.
func (tr *execTrace) setDeadline(ic *interrupt) {
	if tr == nil || ic == nil {
		return
	}
	tr.t.DeadlineNs = ic.deadlineNs
}

// traceCanceled closes and logs the trace of a statement that failed
// under governance, tagging it with the cancel reason so the slow-query
// log distinguishes a deadline kill from a plain slow statement. A
// statement that failed for non-governance reasons (ic.reason empty)
// is left untraced, as before.
func (db *DB) traceCanceled(tr *execTrace, ic *interrupt, thresholdNs int64) {
	if tr == nil || ic == nil || ic.reason == "" {
		return
	}
	tr.t.CancelReason = ic.reason
	tr.finishRows(tr.t.Rows)
	db.noteSlow(tr, thresholdNs)
}

// noteSlow marks and logs the trace when it crossed the threshold:
// one JSON line per slow statement on the configured writer, plus the
// sqldb_slow_queries_total counter. Called with no engine locks held.
func (db *DB) noteSlow(tr *execTrace, thresholdNs int64) {
	if tr == nil || thresholdNs <= 0 || tr.t.WallNs < thresholdNs {
		return
	}
	tr.t.Slow = true
	db.met.slowQueries.Inc()
	db.slowMu.Lock()
	defer db.slowMu.Unlock()
	if db.slowLog == nil {
		return
	}
	line, err := json.Marshal(tr.t)
	if err != nil {
		return
	}
	db.slowLog.Write(append(line, '\n')) //nolint:errcheck // diagnostics only
}

// SetTraceThreshold enables per-statement execution tracing: every
// statement is traced, and any whose wall time reaches d is written to
// the slow-query log (see SetSlowQueryLog) as one JSON line and counted
// in sqldb_slow_queries_total. Zero disables tracing entirely — the
// default, and the near-zero-overhead path. Stmt.Trace forces a trace
// for one execution regardless of this setting.
func (db *DB) SetTraceThreshold(d time.Duration) {
	db.traceThresholdNs.Store(int64(d))
}

// SetSlowQueryLog directs slow-query JSON lines to w (nil discards
// them; the threshold counter still advances). The writer is called
// with an internal lock held, one complete line per call, so a plain
// *os.File or bytes.Buffer needs no extra synchronisation.
func (db *DB) SetSlowQueryLog(w io.Writer) {
	db.slowMu.Lock()
	db.slowLog = w
	db.slowMu.Unlock()
}
