package sqldb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// Chaos soak: the crash-recovery soak's disk-fault schedules combined
// with cancel-heavy load and admission pressure. Every insert runs
// under a context canceled at a random point, four workers contend for
// two admission slots, and the scripted crash still fires mid-I/O.
// The oracle is the crash soak's committed-prefix contract plus one
// new clause with real teeth:
//
//   - a statement that returned ErrCanceled (or was shed at admission)
//     without a concurrent injected crash contributed NOTHING — its row
//     must be absent after recovery, every round, under -race.
//
// Env knobs (CI runs the bounded version; scripts/soak.sh SOAK_CHAOS=1
// runs the long one):
//
//	CHAOS_SCHEDULES — number of seeded schedules (default 25)
//	CHAOS_SEED      — base seed (default 1); schedule i uses seed+i

// chaosOutcome classifies one governed insert for the oracle.
func chaosRecord(o *soakOracle, canceled map[int64]bool, mu *sync.Mutex, k int64, err error) {
	switch {
	case err == nil:
		o.mu.Lock()
		o.acked[k] = true
		o.mu.Unlock()
	case (errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrAdmissionRejected)) && !errors.Is(err, iofault.ErrCrashed):
		// Cleanly governed failure: the statement unwound pre-WAL-stage
		// (or never ran). It must have no visible effect, ever.
		mu.Lock()
		canceled[k] = true
		mu.Unlock()
	default:
		// Crash-tainted or poisoned: outcome unknown, stays in the
		// attempted set only (the crash soak's limbo semantics).
	}
}

// runChaosWorkload is runWorkload's cancel-heavy sibling: all inserts
// run under randomly canceled contexts, transactions and deletes stay
// ungoverned (crash-only limbo), and checkpoints still fire under load.
func runChaosWorkload(db *DB, faults *iofault.Faults, rng *rand.Rand, o *soakOracle, canceled map[int64]bool, mu *sync.Mutex, nextID *int64) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50 && !faults.Crashed(); i++ {
				switch r := wrng.Intn(100); {
				case r < 70: // insert under a randomly canceled context
					o.mu.Lock()
					k := *nextID
					*nextID++
					o.attempted[k] = true
					o.mu.Unlock()
					ctx, cancel := context.WithCancel(context.Background())
					timer := time.AfterFunc(time.Duration(wrng.Intn(1200))*time.Microsecond, cancel)
					_, err := db.ExecContext(ctx, `INSERT INTO `+soakTable(k)+` VALUES (?)`, sqltypes.NewInt(k))
					timer.Stop()
					cancel()
					soakLogf("  chaos insert %d -> %v", k, err)
					chaosRecord(o, canceled, mu, k, err)
				case r < 85: // multi-row transaction, ungoverned (atomicity probe)
					o.mu.Lock()
					g := make([]int64, 3)
					for j := range g {
						g[j] = *nextID
						*nextID++
						o.attempted[g[j]] = true
					}
					o.groups = append(o.groups, g)
					gi := len(o.groups) - 1
					o.mu.Unlock()
					tx, err := db.Begin()
					if err != nil {
						continue
					}
					ok := true
					for _, k := range g {
						if _, err := tx.Exec(`INSERT INTO `+soakTable(k)+` VALUES (?)`, sqltypes.NewInt(k)); err != nil {
							ok = false
							break
						}
					}
					if !ok {
						tx.Rollback() //nolint:errcheck
						continue
					}
					if tx.Commit() == nil {
						o.mu.Lock()
						o.groupAck[gi] = true
						o.mu.Unlock()
					}
				case r < 93: // ungoverned delete of an acknowledged row
					o.mu.Lock()
					var victim int64 = -1
					for k := range o.acked {
						if !o.deleted[k] {
							victim = k
							break
						}
					}
					if victim >= 0 {
						o.delLimbo[victim] = true
					}
					o.mu.Unlock()
					if victim < 0 {
						continue
					}
					_, err := db.Exec(`DELETE FROM `+soakTable(victim)+` WHERE ID = ?`, sqltypes.NewInt(victim))
					if err == nil {
						o.mu.Lock()
						o.deleted[victim] = true
						delete(o.delLimbo, victim)
						o.mu.Unlock()
					}
				default: // checkpoint under fire
					_ = db.Checkpoint()
				}
			}
		}(rng.Int63())
	}
	wg.Wait()
}

// chaosPresent collects every visible row id from a recovered database.
func chaosPresent(t *testing.T, db *DB) map[int64]bool {
	t.Helper()
	present := make(map[int64]bool)
	for _, table := range []string{"K", "K2"} {
		rows, err := db.Query(`SELECT ID FROM ` + table)
		if err != nil {
			t.Fatalf("chaos oracle query (%s): %v", table, err)
		}
		for _, r := range rows.Data {
			present[r[0].Int()] = true
		}
	}
	return present
}

// TestChaosCancelSoak drives seeded schedules of crash + cancel + admission
// chaos and holds every recovery to the extended oracle.
func TestChaosCancelSoak(t *testing.T) {
	schedules := soakEnvInt("CHAOS_SCHEDULES", 25)
	baseSeed := int64(soakEnvInt("CHAOS_SEED", 1))
	if testing.Short() {
		schedules = 5
	}

	for s := 0; s < schedules; s++ {
		s := s
		t.Run(fmt.Sprintf("schedule-%03d", s), func(t *testing.T) {
			rng := rand.New(rand.NewSource(baseSeed + int64(s)))
			dir := t.TempDir()
			db, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE K (ID INTEGER PRIMARY KEY)`); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec(`CREATE TABLE K2 (ID INTEGER PRIMARY KEY)`); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			o := newSoakOracle()
			canceled := make(map[int64]bool)
			var mu sync.Mutex
			var nextID int64
			rounds := 2 + rng.Intn(2)
			for round := 0; round < rounds; round++ {
				faults := iofault.New(nil)
				armEarly := rng.Intn(3) == 0
				crashAfter := 5 + rng.Intn(50)
				torn := rng.Intn(64)
				if armEarly {
					faults.CrashAfterOps("", crashAfter, torn)
				}
				db, err := OpenWith(dir, Options{FS: faults, MaxConcurrentStatements: 2})
				if err != nil {
					if !errors.Is(err, iofault.ErrCrashed) {
						t.Fatalf("round %d: open under injector failed for a non-crash reason: %v", round, err)
					}
				} else {
					if !armEarly {
						faults.CrashAfterOps("", crashAfter, torn)
					}
					db.CheckpointEvery = 4 + rng.Intn(9)
					runChaosWorkload(db, faults, rng, o, canceled, &mu, &nextID)
					db.Close() //nolint:errcheck // post-crash close only releases fds
				}

				clean, err := Open(dir)
				if err != nil {
					t.Fatalf("round %d: refused to reopen after chaos (seed %d): %v", round, baseSeed+int64(s), err)
				}
				o.verify(t, clean, round)
				present := chaosPresent(t, clean)
				mu.Lock()
				for k := range canceled {
					if present[k] {
						mu.Unlock()
						t.Fatalf("round %d: CANCELED STATEMENT LEAKED: insert %d returned ErrCanceled but its row survived recovery (seed %d)",
							round, k, baseSeed+int64(s))
					}
				}
				mu.Unlock()
				if err := clean.Close(); err != nil {
					t.Fatalf("round %d: clean close: %v", round, err)
				}
			}
		})
	}
}
