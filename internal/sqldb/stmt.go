package sqldb

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/sqltypes"
)

// DefaultPlanCacheCapacity bounds the internal LRU of prepared plans
// that Exec/Query consult. The archive's statement population is small
// (QBE shapes, browse/link-control templates), so a few hundred entries
// cover the working set with room to spare.
const DefaultPlanCacheCapacity = 256

// Stmt is a prepared statement: SQL parsed once, with — for SELECTs — a
// bound plan (resolved table/column references, expanded projection)
// reused across executions. A Stmt is safe for concurrent use. Plans are
// invalidated by schema epoch: any DDL bumps the database's epoch, and
// the next execution transparently re-binds against the new catalogue,
// so a prepared statement never serves a stale plan.
type Stmt struct {
	db   *DB
	text string
	ast  Statement

	// mu serialises plan (re)builds. Binding writes ColRef.Index into
	// the shared AST, so it must never run concurrently with another
	// build; executions of an already-built plan are read-only and run
	// concurrently under the engine's read lock.
	mu    sync.Mutex
	plan  *selectPlan
	epoch uint64
}

// Prepare parses sql into a reusable statement. Repeated Prepare calls
// with identical text share one Stmt through the plan cache, so holding
// prepared statements is free; transaction control is rejected.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	return db.preparedStmt(sql)
}

// Text returns the statement's SQL text.
func (s *Stmt) Text() string { return s.text }

// AccessPath describes how the statement's current plan reaches the
// first FROM table — "hash-eq(T.C)", "eq(T.C)", "range(T.C)",
// "not-null(T.C)", "ordered-scan(T.C)" (with an " order"/" order-desc"
// suffix when the index scan also satisfies ORDER BY) or "full-scan".
// Composite paths join the used index columns with '+' ("eq(T.A+B)").
//
// Aggregated plans append their strategy: " index-only" (answered from
// the index without materialising rows), " group-ordered(COLS)" (the
// scan emits rows clustered by the GROUP BY columns and groups are
// folded one at a time), " hash-agg" (grouped fold through a hash
// table) or " agg-fold" (a single-group fold, no GROUP BY). Plans whose
// ORDER BY ... LIMIT runs as a bounded heap selection instead of a full
// sort append " top-k". Joined
// tables probed by an index nested-loop append " inl(ALIAS.COLS)" (or
// " inl-rev(...)" for the two-table swap candidate that probes the
// first table); unindexed equi-joins append " hash-join(ALIAS.COLS)"
// (or " hash-join-rev(...)"). A statement with a live result-cache
// entry appends " cached" — its repeats are served without execution.
//
// EXPLAIN-style introspection for tests and diagnostics; building the
// plan on demand, it reflects the live schema epoch, so it shows the
// re-planned path after CREATE INDEX / DROP INDEX.
func (s *Stmt) AccessPath() (string, error) {
	sel, ok := s.ast.(*SelectStmt)
	if !ok {
		return "", fmt.Errorf("sqldb: AccessPath requires a SELECT statement")
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	plan, err := s.selectPlanLocked(sel)
	if err != nil {
		return "", err
	}
	out := pathString(plan, sel)
	// A live result-cache entry for this statement means repeats are
	// answered without execution: surface it like the other strategies.
	if rc := s.db.rcache.Load(); rc != nil && plan.cacheable && rc.hasStmt(s.text) {
		out += " cached"
	}
	return out, nil
}

// pathString renders a bound plan's access-path description — the
// shared vocabulary of AccessPath and execution traces.
func pathString(plan *selectPlan, sel *SelectStmt) string {
	if plan.noFrom {
		return "no-from"
	}
	out := plan.path.String()
	switch {
	case plan.aggItems != nil:
		out += " index-only"
	case plan.streamGroups:
		out += " group-ordered(" + strings.Join(plan.groupCols, "+") + ")"
		if plan.groupIdxFold != nil {
			out += " index-only"
		}
	case plan.aggregated && len(sel.GroupBy) > 0:
		out += " hash-agg"
	case plan.aggregated:
		out += " agg-fold"
	}
	if plan.topK {
		out += " top-k"
	}
	for i, jp := range plan.joins {
		if jp != nil {
			out += " inl(" + plan.tables[i].alias + "." + jp.String() + ")"
		}
	}
	if plan.revProbe != nil {
		out += " inl-rev(" + plan.tables[0].alias + "." + plan.revProbe.String() + ")"
	}
	for i, hj := range plan.hashJoins {
		if hj != nil {
			out += " hash-join(" + plan.tables[i].alias + "." + hj.String() + ")"
		}
	}
	if plan.revHash != nil {
		out += " hash-join-rev(" + plan.tables[0].alias + "." + plan.revHash.String() + ")"
	}
	return out
}

// Exec runs the prepared statement in autocommit mode. Single-table
// DML against a table with no foreign keys (either direction) and no
// DATALINK columns takes the sharded write path: the shared engine lock
// plus that table's write latch, so writers on different tables commit
// concurrently (and MVCC readers are never blocked). Everything else —
// DDL, FK-bearing DML, link-control writes — falls back to the
// exclusive writer lock. A prepared SELECT via Exec is allowed, with
// the result discarded.
func (s *Stmt) Exec(args ...sqltypes.Value) (Result, error) {
	res, _, err := s.exec(nil, args, false)
	return res, err
}

// ExecContext is Exec under cooperative cancellation: admission
// control, the ctx deadline (or the SetStatementTimeout default) and
// per-row interrupt checkpoints. Canceled DML unwinds cleanly via the
// MVCC abort path when stopped before its WAL frames are staged; once
// staged, it commits (see govern.go for the boundary).
func (s *Stmt) ExecContext(ctx context.Context, args ...sqltypes.Value) (Result, error) {
	res, _, err := s.exec(ctx, args, false)
	return res, err
}

// QueryContext is Query under cooperative cancellation — see
// DB.QueryContext.
func (s *Stmt) QueryContext(ctx context.Context, args ...sqltypes.Value) (*Rows, error) {
	rows, _, err := s.query(ctx, args, false)
	return rows, err
}

// Trace executes the statement once with tracing forced on, regardless
// of the database's trace threshold, and returns the execution trace —
// EXPLAIN ANALYZE. SELECT traces carry the access path and per-node
// timings; DML traces carry the commit-pipeline breakdown. The traced
// execution's result is discarded; side effects of DML happen normally.
func (s *Stmt) Trace(args ...sqltypes.Value) (*Trace, error) {
	if _, ok := s.ast.(*SelectStmt); ok {
		_, t, err := s.query(nil, args, true)
		return t, err
	}
	_, t, err := s.exec(nil, args, true)
	return t, err
}

// exec is Exec with optional tracing (forced, or threshold-armed) and
// optional cancellation (ctx may be nil: background, default timeout
// still applies).
func (s *Stmt) exec(ctx context.Context, args []sqltypes.Value, force bool) (Result, *Trace, error) {
	// SELECT via Exec: reuse the cached plan through the same path as
	// Query. This is not just an optimisation — it keeps every binding
	// of this statement's shared AST serialised under s.mu.
	if _, ok := s.ast.(*SelectStmt); ok {
		_, t, err := s.query(ctx, args, force)
		return Result{}, t, err
	}
	db := s.db
	thr := db.traceThresholdNs.Load()
	var tr *execTrace
	if force || thr > 0 {
		tr = db.newTrace(s.text, "exec")
	}
	// Admission + deadline gate. Acquired before any engine lock, so a
	// queued statement holds nothing while it waits.
	ic, release, err := db.admitStatement(ctx)
	if err != nil {
		return Result{}, nil, err
	}
	defer release()
	tr.setDeadline(ic)
	db.mu.RLock()
	if td := db.shardedTarget(s.ast); td != nil {
		if db.closed {
			db.mu.RUnlock()
			return Result{}, nil, ErrClosed
		}
		// The write latch serialises writers of this one table; it also
		// serialises bindings of this statement's shared AST (same
		// statement → same table → same latch).
		latchStart := time.Now()
		td.wmu.Lock()
		latchNs := time.Since(latchStart).Nanoseconds()
		db.met.latchWaitNs.Observe(latchNs)
		tx := db.newTx()
		tx.intr = ic
		tr.beginHeap()
		endExec := tr.span("dml")
		res, _, err := db.execStmtLocked(tx, s.ast, args)
		if err == nil {
			// Last cancellation checkpoint: past this poll the
			// transaction stages its WAL frames and commits.
			err = ic.poll()
		}
		if err != nil {
			rbErr := db.rollbackTx(tx)
			td.wmu.Unlock()
			db.mu.RUnlock()
			db.traceCanceled(tr, ic, thr)
			return Result{}, nil, errors.Join(err, rbErr)
		}
		endExec(int64(res.RowsAffected))
		tr.endHeap()
		stageStart := time.Now()
		finish, err := db.commitTx(tx)
		stageNs := time.Since(stageStart).Nanoseconds()
		// Release the latch only after commitTx published the stamp:
		// the next writer on this table must observe these versions as
		// committed, not in flight. All engine locks drop before
		// finish() — its failure unwind and checkpoint re-check take
		// db.mu exclusively.
		td.wmu.Unlock()
		db.mu.RUnlock()
		if err != nil {
			return Result{}, nil, err
		}
		if tr != nil {
			tr.t.LatchWaitNs = latchNs
			tr.t.WALStageNs = stageNs
		}
		if err := s.finishTraced(tr, tx, finish, thr, res); err != nil {
			return Result{}, nil, err
		}
		return res, tr.trace(), nil
	}
	db.mu.RUnlock()

	barrierStart := time.Now()
	db.mu.Lock()
	barrierNs := time.Since(barrierStart).Nanoseconds()
	db.met.barrierNs.Observe(barrierNs)
	if db.closed {
		db.mu.Unlock()
		return Result{}, nil, ErrClosed
	}
	tx := db.newTx()
	tx.intr = ic
	tr.beginHeap()
	endExec := tr.span("dml")
	res, _, err := db.execStmtLocked(tx, s.ast, args)
	if err == nil {
		// Same pre-WAL-stage cancellation boundary as the sharded path.
		err = ic.poll()
	}
	if err != nil {
		rbErr := db.rollbackTx(tx)
		db.mu.Unlock()
		db.traceCanceled(tr, ic, thr)
		return Result{}, nil, errors.Join(err, rbErr)
	}
	endExec(int64(res.RowsAffected))
	tr.endHeap()
	stageStart := time.Now()
	finish, err := db.commitTx(tx)
	stageNs := time.Since(stageStart).Nanoseconds()
	db.mu.Unlock()
	if err != nil {
		return Result{}, nil, err
	}
	if tr != nil {
		tr.t.BarrierWaitNs = barrierNs
		tr.t.WALStageNs = stageNs
	}
	// The fsync happens here, outside the writer lock, batched with any
	// concurrently committing transactions (WAL group commit).
	if err := s.finishTraced(tr, tx, finish, thr, res); err != nil {
		return Result{}, nil, err
	}
	return res, tr.trace(), nil
}

// finishTraced runs the commit's finish closure, timing the durability
// wait and recording the group-commit batch the fsync rode in, then
// closes the trace and hands it to the slow-query log.
func (s *Stmt) finishTraced(tr *execTrace, tx *txState, finish func() error, thr int64, res Result) error {
	fsyncStart := time.Now()
	err := finish()
	if tr != nil {
		tr.t.FsyncWaitNs = time.Since(fsyncStart).Nanoseconds()
		if tx.wal != nil {
			tr.t.GroupCommitBatch = tx.wal.lastBatch.Load()
		}
		tr.finishRows(int64(res.RowsAffected))
		s.db.noteSlow(tr, thr)
	}
	return err
}

// shardedTarget classifies a statement for the sharded write path,
// returning the target table when eligible: single-table DML whose
// table declares no outgoing foreign keys, is referenced by no other
// table's foreign keys, and has no DATALINK columns. Such a statement
// reads and writes exactly one table's heap and indexes, so the
// per-table write latch is a full substitute for the exclusive engine
// lock. Caller holds db.mu (read mode suffices: the catalogue only
// changes under the write lock).
func (db *DB) shardedTarget(stmt Statement) *tableData {
	var name string
	switch s := stmt.(type) {
	case *InsertStmt:
		name = s.Table
	case *UpdateStmt:
		name = s.Table
	case *DeleteStmt:
		name = s.Table
	default:
		return nil
	}
	ts, ok := db.cat.Table(name)
	if !ok {
		return nil // let the exclusive path report the unknown table
	}
	if len(ts.ForeignKeys) > 0 || len(ts.DatalinkColumns()) > 0 {
		return nil
	}
	for _, other := range db.cat.tables {
		for _, fk := range other.ForeignKeys {
			if strings.EqualFold(fk.RefTable, ts.Name) {
				return nil
			}
		}
	}
	return db.data[strings.ToUpper(ts.Name)]
}

// Query runs a prepared SELECT under the shared read lock: any number of
// prepared queries execute concurrently, serialising only against
// writers. The bound plan is reused as long as the schema epoch is
// unchanged.
func (s *Stmt) Query(args ...sqltypes.Value) (*Rows, error) {
	rows, _, err := s.query(nil, args, false)
	return rows, err
}

// query is Query with optional tracing (forced, or threshold-armed) and
// optional cancellation (ctx may be nil).
func (s *Stmt) query(ctx context.Context, args []sqltypes.Value, force bool) (*Rows, *Trace, error) {
	sel, ok := s.ast.(*SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("sqldb: Query requires a SELECT statement")
	}
	db := s.db
	thr := db.traceThresholdNs.Load()
	var tr *execTrace
	if force || thr > 0 {
		tr = db.newTrace(s.text, "select")
	}
	ic, release, err := db.admitStatement(ctx)
	if err != nil {
		return nil, nil, err
	}
	defer release()
	tr.setDeadline(ic)
	cacheState := ""
	rows, err := func() (*Rows, error) {
		db.mu.RLock()
		defer db.mu.RUnlock()
		if db.closed {
			return nil, ErrClosed
		}
		plan, err := s.selectPlanLocked(sel)
		if err != nil {
			return nil, err
		}
		if tr != nil {
			tr.t.Path = pathString(plan, sel)
		}
		snap := db.readSnapshot()
		// Result-cache consult: only cacheable plans (no volatile
		// functions), only this auto-commit path — Tx/script SELECTs run
		// in latest-mode visibility and never reach here.
		rc := db.rcache.Load()
		var key string
		if rc != nil {
			if plan.cacheable {
				key = cacheKey(s.text, args)
				if out := rc.lookup(key, db.schemaEpoch, snap); out != nil {
					cacheState = "hit"
					if tr != nil {
						tr.t.Path += " cached"
					}
					return out, nil
				}
				cacheState = "miss"
			} else {
				cacheState = "bypass"
			}
		}
		tr.beginHeap()
		out, err := db.runSelectAt(plan, args, snap, tr, ic)
		tr.endHeap()
		if err == nil && cacheState == "miss" {
			// Only COMPLETED results are published: any error above —
			// including cancellation mid-fill — returns before this
			// point, so a partial result can never be served.
			tables := make([]*tableData, len(plan.tables))
			for i, t := range plan.tables {
				tables[i] = t.data
			}
			rc.insert(key, s.text, tables, out, snap, db.schemaEpoch)
		}
		return out, err
	}()
	if tr != nil {
		tr.t.Cache = cacheState
	}
	if err != nil {
		db.traceCanceled(tr, ic, thr)
		return nil, nil, err
	}
	if tr != nil {
		tr.finishRows(int64(len(rows.Data)))
		db.noteSlow(tr, thr)
	}
	return rows, tr.trace(), nil
}

// selectPlanLocked returns the statement's plan, (re)building it when
// missing or built against an older schema epoch. Caller holds db.mu
// (read suffices: the epoch only changes under the writer lock, so it
// cannot move while we hold the read lock).
func (s *Stmt) selectPlanLocked(sel *SelectStmt) (*selectPlan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.plan != nil && s.epoch == s.db.schemaEpoch {
		return s.plan, nil
	}
	plan, err := s.db.planSelect(sel)
	if err != nil {
		return nil, err
	}
	s.plan = plan
	s.epoch = s.db.schemaEpoch
	return plan, nil
}

// ---------- plan cache ----------

// planCache is a bounded LRU of prepared statements keyed by SQL text.
// It has its own lock (never held together with db.mu) so cache lookups
// stay off the engine's critical path.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *Stmt
	entries map[string]*list.Element
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

func (c *planCache) get(text string) (*Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[text]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*Stmt), true
}

func (c *planCache) put(st *Stmt) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[st.text]; ok {
		c.order.MoveToFront(el)
		return
	}
	c.entries[st.text] = c.order.PushFront(st)
	for c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*Stmt).text)
	}
}

func (c *planCache) reset(capacity int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = capacity
	c.order.Init()
	c.entries = make(map[string]*list.Element)
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// SetPlanCacheCapacity resizes the internal plan cache, dropping all
// cached entries; zero disables caching entirely (every Exec/Query then
// parses and binds from scratch — the ablation baseline).
func (db *DB) SetPlanCacheCapacity(n int) {
	db.plans.reset(n)
}

// PlanCacheLen reports how many statements are currently cached.
func (db *DB) PlanCacheLen() int { return db.plans.len() }

// preparedStmt returns the shared prepared statement for sql, parsing
// and caching it on a miss. Evicted statements keep working — eviction
// only drops the cache's reference.
func (db *DB) preparedStmt(sql string) (*Stmt, error) {
	if st, ok := db.plans.get(sql); ok {
		db.met.planHits.Inc()
		return st, nil
	}
	db.met.planMisses.Inc()
	ast, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	if _, ok := ast.(*TxStmt); ok {
		return nil, fmt.Errorf("sqldb: use Begin/Commit/Rollback on *DB, not SQL text")
	}
	st := &Stmt{db: db, text: sql, ast: ast}
	db.plans.put(st)
	return st, nil
}
