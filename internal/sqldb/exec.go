package sqldb

import (
	"fmt"
	"strings"

	"repro/internal/sqltypes"
)

// execStmtLocked dispatches a parsed statement. It returns a Result for
// DML/DDL or Rows for SELECT. The caller holds db.mu and owns commit or
// rollback of tx.
func (db *DB) execStmtLocked(tx *txState, stmt Statement, params []sqltypes.Value) (Result, *Rows, error) {
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return db.execCreateTableLocked(tx, s)
	case *DropTableStmt:
		return db.execDropTableLocked(tx, s)
	case *CreateIndexStmt:
		return db.execCreateIndexLocked(tx, s)
	case *DropIndexStmt:
		return db.execDropIndexLocked(tx, s)
	case *InsertStmt:
		res, err := db.execInsertLocked(tx, s, params)
		return res, nil, err
	case *UpdateStmt:
		res, err := db.execUpdateLocked(tx, s, params)
		return res, nil, err
	case *DeleteStmt:
		res, err := db.execDeleteLocked(tx, s, params)
		return res, nil, err
	case *SelectStmt:
		rows, err := db.execSelectLocked(s, params, tx.intr)
		return Result{RowsAffected: 0}, rows, err
	default:
		return Result{}, nil, fmt.Errorf("sqldb: unsupported statement %T", stmt)
	}
}

// ---------- DDL ----------

// renderCreateTable reconstructs canonical DDL text for the DDL log, so
// snapshots replay through the normal code path.
func renderCreateTable(s *CreateTableStmt) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CREATE TABLE %s (", strings.ToUpper(s.Table))
	for i, c := range s.Cols {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", strings.ToUpper(c.Name), c.Type.String())
		if c.NotNull {
			b.WriteString(" NOT NULL")
		}
		if c.Default != nil {
			fmt.Fprintf(&b, " DEFAULT %s", c.Default.String())
		}
	}
	if len(s.PrimaryKey) > 0 {
		fmt.Fprintf(&b, ", PRIMARY KEY (%s)", strings.Join(upperAll(s.PrimaryKey), ", "))
	}
	for _, u := range s.Uniques {
		fmt.Fprintf(&b, ", UNIQUE (%s)", strings.Join(upperAll(u), ", "))
	}
	for _, fk := range s.ForeignKeys {
		fmt.Fprintf(&b, ", FOREIGN KEY (%s) REFERENCES %s (%s)",
			strings.Join(upperAll(fk.Cols), ", "), strings.ToUpper(fk.RefTable), strings.Join(upperAll(fk.RefCols), ", "))
	}
	b.WriteString(")")
	return b.String()
}

func (db *DB) execCreateTableLocked(tx *txState, s *CreateTableStmt) (Result, *Rows, error) {
	if s.IfNotExists {
		if _, exists := db.cat.Table(s.Table); exists {
			return Result{}, nil, nil
		}
	}
	schema, err := db.cat.addTable(s)
	if err != nil {
		return Result{}, nil, err
	}
	db.data[schema.Name] = newTableData(schema)
	ddl := renderCreateTable(s)
	db.ddlLog = append(db.ddlLog, ddl)
	db.schemaEpoch++ // invalidate cached plans
	db.flushResultCache()
	tx.redo = append(tx.redo, walRecord{op: walOpDDL, ddl: ddl})
	return Result{}, nil, nil
}

func (db *DB) execDropTableLocked(tx *txState, s *DropTableStmt) (Result, *Rows, error) {
	schema, ok := db.cat.Table(s.Table)
	if !ok {
		if s.IfExists {
			return Result{}, nil, nil
		}
		return Result{}, nil, fmt.Errorf("sqldb: table %s does not exist", s.Table)
	}
	td := db.data[schema.Name]
	if td != nil && td.live.Load() > 0 {
		// Unlink every controlled DATALINK before the table vanishes.
		dlCols := schema.DatalinkColumns()
		if len(dlCols) > 0 {
			var err error
			td.scan(snapLatest, func(id rowID, vals []sqltypes.Value) bool {
				for _, ci := range dlCols {
					if e := db.unlinkValueLocked(tx, schema, ci, vals[ci]); e != nil {
						err = e
						return false
					}
				}
				return true
			})
			if err != nil {
				return Result{}, nil, err
			}
		}
	}
	if err := db.cat.dropTable(s.Table); err != nil {
		return Result{}, nil, err
	}
	delete(db.data, schema.Name)
	for name, def := range db.indexes {
		if def.Table == schema.Name {
			delete(db.indexes, name)
		}
	}
	ddl := "DROP TABLE " + schema.Name
	db.ddlLog = append(db.ddlLog, ddl)
	db.schemaEpoch++ // invalidate cached plans
	db.flushResultCache()
	tx.redo = append(tx.redo, walRecord{op: walOpDDL, ddl: ddl})
	return Result{}, nil, nil
}

func (db *DB) execCreateIndexLocked(tx *txState, s *CreateIndexStmt) (Result, *Rows, error) {
	name := strings.ToUpper(s.Name)
	if _, exists := db.indexes[name]; exists {
		return Result{}, nil, fmt.Errorf("sqldb: index %s already exists", s.Name)
	}
	schema, ok := db.cat.Table(s.Table)
	if !ok {
		return Result{}, nil, fmt.Errorf("sqldb: table %s does not exist", s.Table)
	}
	if len(s.Columns) == 0 {
		return Result{}, nil, fmt.Errorf("sqldb: index %s has no columns", s.Name)
	}
	cols := upperAll(s.Columns)
	seen := map[string]bool{}
	for _, col := range cols {
		if schema.ColIndex(col) < 0 {
			return Result{}, nil, fmt.Errorf("sqldb: column %s not in table %s", col, s.Table)
		}
		if seen[col] {
			return Result{}, nil, fmt.Errorf("sqldb: duplicate column %s in index %s", col, s.Name)
		}
		seen[col] = true
	}
	td := db.data[schema.Name]
	if _, exists := td.indexOnColumns(cols); exists {
		return Result{}, nil, fmt.Errorf("sqldb: columns (%s) of %s are already indexed",
			strings.Join(cols, ", "), s.Table)
	}
	kind := strings.ToUpper(s.Using)
	if kind == "" {
		kind = IndexKindOrdered
	}
	var idx secondaryIndex
	switch kind {
	case IndexKindHash:
		idx = newHashIndex(name, schema, cols)
	case IndexKindOrdered:
		idx = newOrderedIndex(name, schema, cols)
	default:
		return Result{}, nil, fmt.Errorf("sqldb: unknown index kind %s (want HASH or ORDERED)", s.Using)
	}
	// Backfill under the DDL barrier: every row is committed and no
	// snapshot that predates the index can be open, so entries carry the
	// always-visible base stamp.
	td.scan(snapLatest, func(id rowID, vals []sqltypes.Value) bool {
		idx.addRow(vals, liveEntry(id))
		return true
	})
	td.indexes[name] = idx
	db.indexes[name] = indexDef{Name: name, Table: schema.Name, Columns: cols, Kind: kind}
	ddl := fmt.Sprintf("CREATE INDEX %s ON %s (%s) USING %s", name, schema.Name, strings.Join(cols, ", "), kind)
	db.ddlLog = append(db.ddlLog, ddl)
	db.schemaEpoch++ // invalidate cached plans
	db.flushResultCache()
	tx.redo = append(tx.redo, walRecord{op: walOpDDL, ddl: ddl})
	return Result{}, nil, nil
}

func (db *DB) execDropIndexLocked(tx *txState, s *DropIndexStmt) (Result, *Rows, error) {
	name := strings.ToUpper(s.Name)
	def, ok := db.indexes[name]
	if !ok {
		return Result{}, nil, fmt.Errorf("sqldb: index %s does not exist", s.Name)
	}
	delete(db.indexes, name)
	if td, ok := db.data[def.Table]; ok {
		delete(td.indexes, name)
	}
	ddl := "DROP INDEX " + name
	db.ddlLog = append(db.ddlLog, ddl)
	db.schemaEpoch++ // invalidate cached plans
	db.flushResultCache()
	tx.redo = append(tx.redo, walRecord{op: walOpDDL, ddl: ddl})
	return Result{}, nil, nil
}

// ---------- DML ----------

func (db *DB) execInsertLocked(tx *txState, s *InsertStmt, params []sqltypes.Value) (Result, error) {
	schema, ok := db.cat.Table(s.Table)
	if !ok {
		return Result{}, fmt.Errorf("sqldb: table %s does not exist", s.Table)
	}
	td := db.data[schema.Name]

	// Map statement columns to schema positions.
	var colPos []int
	if len(s.Cols) == 0 {
		colPos = make([]int, len(schema.Cols))
		for i := range colPos {
			colPos[i] = i
		}
	} else {
		colPos = make([]int, len(s.Cols))
		for i, c := range s.Cols {
			ci := schema.ColIndex(c)
			if ci < 0 {
				return Result{}, fmt.Errorf("sqldb: column %s not in table %s", c, s.Table)
			}
			colPos[i] = ci
		}
	}

	ctx := &evalCtx{params: params, now: db.nowFn(), snap: snapLatest, intr: tx.intr}
	inserted := 0
	for _, exprRow := range s.Rows {
		if err := ctx.intr.check(); err != nil {
			return Result{}, err
		}
		if len(exprRow) != len(colPos) {
			return Result{}, fmt.Errorf("sqldb: INSERT has %d values for %d columns", len(exprRow), len(colPos))
		}
		vals := make([]sqltypes.Value, len(schema.Cols))
		filled := make([]bool, len(schema.Cols))
		for i, e := range exprRow {
			v, err := evalExpr(e, ctx)
			if err != nil {
				return Result{}, err
			}
			ci := colPos[i]
			cv, err := sqltypes.CoerceFor(schema.Cols[ci].Type, v)
			if err != nil {
				return Result{}, fmt.Errorf("sqldb: column %s: %w", schema.Cols[ci].Name, err)
			}
			vals[ci] = cv
			filled[ci] = true
		}
		for ci := range vals {
			if !filled[ci] {
				if schema.Cols[ci].Default != nil {
					vals[ci] = *schema.Cols[ci].Default
				} else {
					vals[ci] = sqltypes.Null
				}
			}
		}
		if err := db.checkRowConstraintsLocked(schema, vals); err != nil {
			return Result{}, err
		}
		// SQL/MED: link every non-null controlled DATALINK before the
		// row becomes visible; failure aborts the statement.
		for _, ci := range schema.DatalinkColumns() {
			if err := db.linkValueLocked(tx, schema, ci, vals[ci]); err != nil {
				return Result{}, err
			}
		}
		id := rowID(db.nextRow.Add(1) - 1)
		if err := td.insert(id, vals, &tx.refs); err != nil {
			return Result{}, err
		}
		tx.redo = append(tx.redo, walRecord{op: walOpInsert, table: schema.Name, row: id, vals: vals})
		inserted++
	}
	return Result{RowsAffected: inserted}, nil
}

func (db *DB) execUpdateLocked(tx *txState, s *UpdateStmt, params []sqltypes.Value) (Result, error) {
	schema, ok := db.cat.Table(s.Table)
	if !ok {
		return Result{}, fmt.Errorf("sqldb: table %s does not exist", s.Table)
	}
	td := db.data[schema.Name]
	env := envForTable(schema, "")
	for _, sc := range s.Sets {
		if schema.ColIndex(sc.Col) < 0 {
			return Result{}, fmt.Errorf("sqldb: column %s not in table %s", sc.Col, s.Table)
		}
		if err := bindExpr(sc.Expr, env, false); err != nil {
			return Result{}, err
		}
	}
	if s.Where != nil {
		if err := bindExpr(s.Where, env, false); err != nil {
			return Result{}, err
		}
	}

	// Phase 1: collect matching rows (stable against mutation).
	ids, err := db.matchRowsLocked(td, schema, s.Where, params, tx.intr)
	if err != nil {
		return Result{}, err
	}

	ctx := &evalCtx{params: params, now: db.nowFn(), snap: snapLatest, intr: tx.intr}
	updated := 0
	for _, id := range ids {
		if err := ctx.intr.check(); err != nil {
			return Result{}, err
		}
		old, ok := td.get(id, snapLatest)
		if !ok {
			continue
		}
		ctx.vals = old
		newVals := make([]sqltypes.Value, len(old))
		copy(newVals, old)
		for _, sc := range s.Sets {
			ci := schema.ColIndex(sc.Col)
			v, err := evalExpr(sc.Expr, ctx)
			if err != nil {
				return Result{}, err
			}
			cv, err := sqltypes.CoerceFor(schema.Cols[ci].Type, v)
			if err != nil {
				return Result{}, fmt.Errorf("sqldb: column %s: %w", schema.Cols[ci].Name, err)
			}
			newVals[ci] = cv
		}
		if err := db.checkRowConstraintsLocked(schema, newVals); err != nil {
			return Result{}, err
		}
		// Updating a key referenced by children is RESTRICTed.
		if err := db.checkNoChildRefsLocked(schema, old, newVals); err != nil {
			return Result{}, err
		}
		// SQL/MED: changing a controlled DATALINK unlinks the old file
		// and links the new one inside the same transaction.
		for _, ci := range schema.DatalinkColumns() {
			if old[ci].Equal(newVals[ci]) || (old[ci].IsNull() && newVals[ci].IsNull()) {
				continue
			}
			if err := db.unlinkValueLocked(tx, schema, ci, old[ci]); err != nil {
				return Result{}, err
			}
			if err := db.linkValueLocked(tx, schema, ci, newVals[ci]); err != nil {
				return Result{}, err
			}
		}
		if _, err := td.update(id, newVals, &tx.refs); err != nil {
			return Result{}, err
		}
		tx.redo = append(tx.redo, walRecord{op: walOpUpdate, table: schema.Name, row: id, vals: newVals})
		updated++
	}
	return Result{RowsAffected: updated}, nil
}

func (db *DB) execDeleteLocked(tx *txState, s *DeleteStmt, params []sqltypes.Value) (Result, error) {
	schema, ok := db.cat.Table(s.Table)
	if !ok {
		return Result{}, fmt.Errorf("sqldb: table %s does not exist", s.Table)
	}
	td := db.data[schema.Name]
	if s.Where != nil {
		if err := bindExpr(s.Where, envForTable(schema, ""), false); err != nil {
			return Result{}, err
		}
	}
	ids, err := db.matchRowsLocked(td, schema, s.Where, params, tx.intr)
	if err != nil {
		return Result{}, err
	}
	deleted := 0
	for _, id := range ids {
		if err := tx.intr.check(); err != nil {
			return Result{}, err
		}
		old, ok := td.get(id, snapLatest)
		if !ok {
			continue
		}
		if err := db.checkNoChildRefsLocked(schema, old, nil); err != nil {
			return Result{}, err
		}
		for _, ci := range schema.DatalinkColumns() {
			if err := db.unlinkValueLocked(tx, schema, ci, old[ci]); err != nil {
				return Result{}, err
			}
		}
		if _, err := td.delete(id, &tx.refs); err != nil {
			return Result{}, err
		}
		tx.redo = append(tx.redo, walRecord{op: walOpDelete, table: schema.Name, row: id})
		deleted++
	}
	return Result{RowsAffected: deleted}, nil
}

// matchRowsLocked returns the IDs of rows satisfying where, routed
// through the access-path planner: equality, range and null predicates
// on indexed columns narrow the candidate set, and the full predicate is
// re-applied to every candidate so index-path and scan-path semantics
// are identical (the old equality fast path skipped that residual check,
// which let encoded-key over-approximations reach UPDATE/DELETE).
func (db *DB) matchRowsLocked(td *tableData, schema *TableSchema, where Expr, params []sqltypes.Value, ic *interrupt) ([]rowID, error) {
	// Latest-mode visibility: DML must see the current state, including
	// this transaction's own earlier writes (the owning writer slot —
	// wmu or the global lock — guarantees no foreign in-flight stamps).
	ctx := &evalCtx{params: params, now: db.nowFn(), snap: snapLatest, intr: ic}
	var ids []rowID
	var evalErr error
	visit := func(id rowID, vals []sqltypes.Value) bool {
		if err := ic.check(); err != nil {
			evalErr = err
			return false
		}
		if where == nil {
			ids = append(ids, id)
			return true
		}
		ctx.vals = vals
		v, err := evalExpr(where, ctx)
		if err != nil {
			evalErr = err
			return false
		}
		if !v.IsNull() && truthy(v) {
			ids = append(ids, id)
		}
		return true
	}
	handled := false
	if !db.fullScanOnly {
		if path := planAccess(td, schema.Name, where, nil, nil, false, false); path != nil {
			var err error
			handled, err = scanAccessPath(td, path, ctx, visit)
			if err != nil {
				return nil, err
			}
		}
	}
	if !handled {
		td.scan(snapLatest, visit)
	}
	return ids, evalErr
}

// ---------- constraints ----------

// checkRowConstraintsLocked enforces NOT NULL and FK-parent existence.
// Unique/PK constraints are enforced by the storage layer's indexes.
func (db *DB) checkRowConstraintsLocked(schema *TableSchema, vals []sqltypes.Value) error {
	for i, c := range schema.Cols {
		if c.NotNull && vals[i].IsNull() {
			return fmt.Errorf("sqldb: column %s.%s may not be NULL", schema.Name, c.Name)
		}
	}
	for _, fk := range schema.ForeignKeys {
		tuple := make([]sqltypes.Value, len(fk.Cols))
		anyNull := false
		for i, col := range fk.Cols {
			tuple[i] = vals[schema.ColIndex(col)]
			if tuple[i].IsNull() {
				anyNull = true
			}
		}
		if anyNull {
			continue // SQL: NULL FK values are not checked
		}
		parent, ok := db.cat.Table(fk.RefTable)
		if !ok {
			return fmt.Errorf("sqldb: foreign key references missing table %s", fk.RefTable)
		}
		if !db.parentExistsLocked(parent, fk.RefCols, tuple) {
			return fmt.Errorf("sqldb: foreign key violation: no %s row with (%s) = %v",
				fk.RefTable, strings.Join(fk.RefCols, ", "), tuple)
		}
	}
	return nil
}

// parentExistsLocked checks whether the parent table holds the key tuple,
// preferring a matching unique index; probes the index cannot align with
// its column types (usable=false) fall through to the scan.
func (db *DB) parentExistsLocked(parent *TableSchema, refCols []string, tuple []sqltypes.Value) bool {
	ptd := db.data[parent.Name]
	for _, ui := range ptd.uniqueIdx {
		if sameCols(ui.colName, refCols) {
			if _, found, usable := ui.lookup(tuple); usable {
				return found
			}
			break
		}
	}
	// Fallback scan for FKs referencing non-unique columns.
	found := false
	idx := make([]int, len(refCols))
	for i, c := range refCols {
		idx[i] = parent.ColIndex(c)
	}
	ptd.scan(snapLatest, func(id rowID, vals []sqltypes.Value) bool {
		for i, ci := range idx {
			if c, ok := sqltypes.Compare(vals[ci], tuple[i]); !ok || c != 0 {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// checkNoChildRefsLocked enforces RESTRICT when deleting a row or
// changing its key: if any child table references the old key values
// (and, for updates, the key actually changes), the operation fails.
func (db *DB) checkNoChildRefsLocked(schema *TableSchema, old, new []sqltypes.Value) error {
	for _, name := range db.cat.TableNames() {
		child, _ := db.cat.Table(name)
		for _, fk := range child.ForeignKeys {
			if fk.RefTable != schema.Name {
				continue
			}
			oldKey := make([]sqltypes.Value, len(fk.RefCols))
			anyNull := false
			for i, rc := range fk.RefCols {
				oldKey[i] = old[schema.ColIndex(rc)]
				if oldKey[i].IsNull() {
					anyNull = true
				}
			}
			if anyNull {
				continue
			}
			if new != nil {
				changed := false
				for i, rc := range fk.RefCols {
					if c, ok := sqltypes.Compare(oldKey[i], new[schema.ColIndex(rc)]); !ok || c != 0 {
						changed = true
						break
					}
				}
				if !changed {
					continue
				}
			}
			if db.childExistsLocked(child, fk.Cols, oldKey) {
				return fmt.Errorf("sqldb: RESTRICT: %s row is referenced by %s (%s)",
					schema.Name, child.Name, strings.Join(fk.Cols, ", "))
			}
		}
	}
	return nil
}

func (db *DB) childExistsLocked(child *TableSchema, cols []string, key []sqltypes.Value) bool {
	ctd := db.data[child.Name]
	// Single-column FK with an exactly-matching index: point lookup,
	// when the probe aligns with the child column's type.
	if len(cols) == 1 && !key[0].IsNull() {
		col := strings.ToUpper(cols[0])
		if idx, ok := ctd.indexOnColumns([]string{col}); ok {
			ci := child.ColIndex(col)
			if pv, okp := probeValue(child.Cols[ci].Type.Kind, key[0]); okp {
				for _, e := range idx.lookupKey(encodeKey(pv)) {
					if entryCurrent(e) {
						return true
					}
				}
				return false
			}
		}
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = child.ColIndex(c)
	}
	found := false
	ctd.scan(snapLatest, func(id rowID, vals []sqltypes.Value) bool {
		for i, ci := range idx {
			if c, ok := sqltypes.Compare(vals[ci], key[i]); !ok || c != 0 {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

func sameCols(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strings.EqualFold(a[i], b[i]) {
			return false
		}
	}
	return true
}

// ---------- SQL/MED link control ----------

func (db *DB) linkValueLocked(tx *txState, schema *TableSchema, ci int, v sqltypes.Value) error {
	if v.IsNull() || db.replaying {
		return nil
	}
	opts := schema.Cols[ci].Type.Datalink
	if opts == nil || !opts.FileLinkControl {
		return nil
	}
	if db.linkCtl == nil {
		return fmt.Errorf("sqldb: column %s.%s has FILE LINK CONTROL but no link controller is configured",
			schema.Name, schema.Cols[ci].Name)
	}
	// Mark before the call: even a failed prepare obliges rollback to
	// send Abort so the coordinator can discard partial reservations.
	tx.usedLink = true
	if err := db.linkCtl.PrepareLink(tx.id, v.Str(), *opts); err != nil {
		return fmt.Errorf("sqldb: datalink %s: %w", v.Str(), err)
	}
	return nil
}

func (db *DB) unlinkValueLocked(tx *txState, schema *TableSchema, ci int, v sqltypes.Value) error {
	if v.IsNull() || db.replaying {
		return nil
	}
	opts := schema.Cols[ci].Type.Datalink
	if opts == nil || !opts.FileLinkControl {
		return nil
	}
	if db.linkCtl == nil {
		return fmt.Errorf("sqldb: column %s.%s has FILE LINK CONTROL but no link controller is configured",
			schema.Name, schema.Cols[ci].Name)
	}
	tx.usedLink = true
	if err := db.linkCtl.PrepareUnlink(tx.id, v.Str(), *opts); err != nil {
		return fmt.Errorf("sqldb: datalink %s: %w", v.Str(), err)
	}
	return nil
}

// envForTable builds the binding namespace of one table (alias optional).
func envForTable(schema *TableSchema, alias string) *bindEnv {
	name := strings.ToUpper(alias)
	if name == "" {
		name = schema.Name
	}
	env := &bindEnv{}
	for _, c := range schema.Cols {
		env.cols = append(env.cols, qualCol{table: name, col: c.Name})
	}
	return env
}
