package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// buildJoinDB: a parent/child pair with NULLable join keys and an
// ordered index on the child's key plus a composite on (K, V).
func buildJoinDB(t testing.TB, parents, children int, indexChild, indexParent bool) *DB {
	t.Helper()
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`CREATE TABLE PAR (
		PID INTEGER PRIMARY KEY, K INTEGER, NAME VARCHAR(20));
	CREATE TABLE CHI (
		CID INTEGER PRIMARY KEY, K INTEGER, V INTEGER)`); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(parents*1000 + children)))
	insP, _ := db.Prepare(`INSERT INTO PAR VALUES (?, ?, ?)`)
	insC, _ := db.Prepare(`INSERT INTO CHI VALUES (?, ?, ?)`)
	maybeNullKey := func() sqltypes.Value {
		if rng.Intn(10) == 0 {
			return sqltypes.Null
		}
		return sqltypes.NewInt(int64(rng.Intn(parents)))
	}
	for i := 0; i < parents; i++ {
		if _, err := insP.Exec(sqltypes.NewInt(int64(i)), maybeNullKey(),
			sqltypes.NewString(fmt.Sprintf("p%d", i%7))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < children; i++ {
		if _, err := insC.Exec(sqltypes.NewInt(int64(i)), maybeNullKey(),
			sqltypes.NewInt(int64(rng.Intn(100)))); err != nil {
			t.Fatal(err)
		}
	}
	if indexChild {
		if _, err := db.Exec(`CREATE INDEX CHI_K ON CHI (K)`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`CREATE INDEX CHI_KV ON CHI (K, V)`); err != nil {
			t.Fatal(err)
		}
	}
	if indexParent {
		if _, err := db.Exec(`CREATE INDEX PAR_K ON PAR (K)`); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestJoinProbePlan asserts the planner recognises indexed join keys
// and surfaces them in the access-path introspection.
func TestJoinProbePlan(t *testing.T) {
	db := buildJoinDB(t, 50, 200, true, true)
	defer db.Close()
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K`,
			"full-scan inl(CHI.K) inl-rev(PAR.K)"},
		{`SELECT PID, CID FROM PAR, CHI WHERE PAR.K = CHI.K`,
			"full-scan inl(CHI.K) inl-rev(PAR.K)"},
		{`SELECT PID, CID FROM PAR LEFT JOIN CHI ON CHI.K = PAR.K`,
			"full-scan inl(CHI.K)"},
		// Composite join probe: both K and V constrained.
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K AND CHI.V = PAR.PID`,
			"full-scan inl(CHI.K+V) inl-rev(PAR.K)"},
		// Un-probeable: inequality join.
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K > PAR.K`,
			"full-scan"},
	}
	for _, tc := range cases {
		st, err := db.Prepare(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.AccessPath()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s: path %q, want %q", tc.sql, got, tc.want)
		}
	}
}

// TestJoinINLPropertyVsNaive: every join result through the index
// nested-loop must equal the exhaustive cross-product path, for inner,
// comma and LEFT joins, including NULL join keys and extra predicates.
func TestJoinINLPropertyVsNaive(t *testing.T) {
	for _, cfg := range []struct {
		name                     string
		indexChild, indexParent  bool
	}{
		{"child-indexed", true, false},
		{"parent-indexed", false, true}, // exercises the swapped INL
		{"both-indexed", true, true},
		{"neither", false, false},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			db := buildJoinDB(t, 40, 150, cfg.indexChild, cfg.indexParent)
			defer db.Close()
			queries := []struct {
				sql  string
				args []sqltypes.Value
			}{
				{`SELECT PID, CID, V FROM PAR JOIN CHI ON CHI.K = PAR.K`, nil},
				{`SELECT PID, CID FROM PAR, CHI WHERE PAR.K = CHI.K`, nil},
				{`SELECT PID, CID FROM PAR LEFT JOIN CHI ON CHI.K = PAR.K`, nil},
				{`SELECT PID, CID FROM PAR LEFT JOIN CHI ON CHI.K = PAR.K AND CHI.V > ?`,
					[]sqltypes.Value{sqltypes.NewInt(50)}},
				{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K WHERE CHI.V BETWEEN ? AND ?`,
					[]sqltypes.Value{sqltypes.NewInt(10), sqltypes.NewInt(60)}},
				{`SELECT PID, CID FROM PAR, CHI WHERE PAR.K = CHI.K AND PAR.NAME = ?`,
					[]sqltypes.Value{sqltypes.NewString("p3")}},
				{`SELECT COUNT(*) FROM PAR JOIN CHI ON CHI.K = PAR.K`, nil},
				{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K ORDER BY PID, CID`, nil},
				// Constant probe on the inner side.
				{`SELECT PID, CID FROM PAR, CHI WHERE CHI.K = ? AND PAR.K = CHI.K`,
					[]sqltypes.Value{sqltypes.NewInt(7)}},
			}
			for _, q := range queries {
				indexed, ierr := db.Query(q.sql, q.args...)
				db.SetFullScanOnly(true)
				naive, nerr := db.Query(q.sql, q.args...)
				db.SetFullScanOnly(false)
				if (ierr == nil) != (nerr == nil) {
					t.Fatalf("%s: error mismatch %v vs %v", q.sql, ierr, nerr)
				}
				if ierr != nil {
					continue
				}
				ordered := strings.Contains(q.sql, "ORDER BY")
				if rowsKey(indexed, ordered) != rowsKey(naive, ordered) {
					t.Fatalf("%s: INL %d rows != naive %d rows",
						q.sql, len(indexed.Data), len(naive.Data))
				}
			}
		})
	}
}

// TestJoinHashPlan: with no usable index, equi-join conjuncts plan the
// hash-join fallback (and its two-table reverse candidate) instead of
// the cross product; non-equi joins still get nothing.
func TestJoinHashPlan(t *testing.T) {
	db := buildJoinDB(t, 50, 200, false, false)
	defer db.Close()
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K`,
			"full-scan hash-join(CHI.K) hash-join-rev(PAR.K)"},
		{`SELECT PID, CID FROM PAR, CHI WHERE PAR.K = CHI.K`,
			"full-scan hash-join(CHI.K) hash-join-rev(PAR.K)"},
		{`SELECT PID, CID FROM PAR LEFT JOIN CHI ON CHI.K = PAR.K`,
			"full-scan hash-join(CHI.K)"},
		// Every equi-conjunct joins the hash key, in both directions.
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K AND CHI.V = PAR.PID`,
			"full-scan hash-join(CHI.K+V) hash-join-rev(PAR.K+PID)"},
		// Inequality joins have no hash fallback.
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K > PAR.K`,
			"full-scan"},
	}
	for _, tc := range cases {
		st, err := db.Prepare(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.AccessPath()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s: path %q, want %q", tc.sql, got, tc.want)
		}
	}
	// An index on the join key displaces the hash fallback.
	if _, err := db.Exec(`CREATE INDEX CHI_K ON CHI (K)`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Prepare(`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K`)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.AccessPath(); p != "full-scan inl(CHI.K) hash-join-rev(PAR.K)" {
		t.Fatalf("post-index path = %q", p)
	}
}

// TestJoinHashPropertyVsNaive: hash-join results must equal the
// exhaustive cross-product path for inner, comma and LEFT joins,
// including NULL join keys (never matching), WHERE-derived keys and a
// three-table chain of hash probes.
func TestJoinHashPropertyVsNaive(t *testing.T) {
	db := buildJoinDB(t, 40, 150, false, false)
	defer db.Close()
	queries := []struct {
		sql  string
		args []sqltypes.Value
	}{
		{`SELECT PID, CID, V FROM PAR JOIN CHI ON CHI.K = PAR.K`, nil},
		{`SELECT PID, CID FROM PAR, CHI WHERE PAR.K = CHI.K`, nil},
		{`SELECT PID, CID FROM PAR LEFT JOIN CHI ON CHI.K = PAR.K`, nil},
		{`SELECT PID, CID FROM PAR LEFT JOIN CHI ON CHI.K = PAR.K AND CHI.V > ?`,
			[]sqltypes.Value{sqltypes.NewInt(50)}},
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K WHERE CHI.V BETWEEN ? AND ?`,
			[]sqltypes.Value{sqltypes.NewInt(10), sqltypes.NewInt(60)}},
		{`SELECT PID, CID FROM PAR, CHI WHERE PAR.K = CHI.K AND PAR.NAME = ?`,
			[]sqltypes.Value{sqltypes.NewString("p3")}},
		{`SELECT COUNT(*) FROM PAR JOIN CHI ON CHI.K = PAR.K`, nil},
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K ORDER BY PID, CID`, nil},
		{`SELECT PID, CID FROM PAR, CHI WHERE CHI.K = ? AND PAR.K = CHI.K`,
			[]sqltypes.Value{sqltypes.NewInt(7)}},
		// Composite hash key.
		{`SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K AND CHI.V = PAR.PID`, nil},
		// Three tables: two chained hash probes.
		{`SELECT COUNT(*) FROM PAR P, CHI A, CHI B WHERE A.K = P.K AND B.K = A.K AND B.V < ?`,
			[]sqltypes.Value{sqltypes.NewInt(40)}},
		// Grouped aggregate over a hash join.
		{`SELECT NAME, COUNT(*) FROM PAR JOIN CHI ON CHI.K = PAR.K GROUP BY NAME`, nil},
	}
	for _, q := range queries {
		hashed, herr := db.Query(q.sql, q.args...)
		db.SetFullScanOnly(true)
		naive, nerr := db.Query(q.sql, q.args...)
		db.SetFullScanOnly(false)
		if (herr == nil) != (nerr == nil) {
			t.Fatalf("%s: error mismatch %v vs %v", q.sql, herr, nerr)
		}
		if herr != nil {
			continue
		}
		ordered := strings.Contains(q.sql, "ORDER BY")
		if rowsKey(hashed, ordered) != rowsKey(naive, ordered) {
			t.Fatalf("%s: hash-join %d rows != naive %d rows",
				q.sql, len(hashed.Data), len(naive.Data))
		}
	}
}

// TestJoinHashBuildsOnSmallerSide: a fully-unindexed two-table inner
// join hashes the smaller table and lets the larger one drive the outer
// loop, so neither side is scanned more than once — heap reads stay
// near |PAR| + |CHI| instead of |PAR|·|CHI|.
func TestJoinHashBuildsOnSmallerSide(t *testing.T) {
	db := buildJoinDB(t, 12, 900, false, false)
	defer db.Close()
	const q = `SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K`
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	beforeP, beforeC := db.HeapRowReads("PAR"), db.HeapRowReads("CHI")
	hashed, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	parReads := db.HeapRowReads("PAR") - beforeP
	chiReads := db.HeapRowReads("CHI") - beforeC
	// PAR (12 live) is hashed once; CHI (900) drives the outer loop
	// once. The cross product would read 12×900 = 10800 PAR rows.
	if parReads > 50 {
		t.Fatalf("hash join read %d PAR heap rows (cross product reads 10800)", parReads)
	}
	if chiReads > 1000 {
		t.Fatalf("hash join read %d CHI heap rows", chiReads)
	}
	db.SetFullScanOnly(true)
	naive, err := st.Query()
	db.SetFullScanOnly(false)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(hashed, false) != rowsKey(naive, false) {
		t.Fatalf("hash-join %d rows != naive %d rows", len(hashed.Data), len(naive.Data))
	}
}

// TestJoinSwapPicksSmallerOuter: with both sides indexed and the first
// table much larger, the executor probes the first table so the smaller
// second table drives the outer loop; results stay identical.
func TestJoinSwapPicksSmallerOuter(t *testing.T) {
	db := buildJoinDB(t, 2000, 10, true, true)
	defer db.Close()
	const q = `SELECT PID, CID FROM PAR JOIN CHI ON CHI.K = PAR.K`
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.AccessPath(); !strings.Contains(p, "inl-rev(PAR.K)") {
		t.Fatalf("swap candidate missing from plan: %q", p)
	}
	// PAR (2000 live) > CHI (10 live): probing PAR means the big table
	// is never scanned per outer row — heap reads stay near |CHI| plus
	// the matches, far under |PAR|×|CHI|.
	before := db.HeapRowReads("PAR")
	indexed, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	parReads := db.HeapRowReads("PAR") - before
	if parReads > 3000 {
		t.Fatalf("swapped INL read %d PAR heap rows (scan would read 20000+)", parReads)
	}
	db.SetFullScanOnly(true)
	naive, err := st.Query()
	db.SetFullScanOnly(false)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(indexed, false) != rowsKey(naive, false) {
		t.Fatalf("swapped INL %d rows != naive %d rows", len(indexed.Data), len(naive.Data))
	}
}
