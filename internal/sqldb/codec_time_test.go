package sqldb

import (
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// TestTimestampDurabilityFullRange: every instant Value can hold —
// in-window, far-past, far-future and the zero time — must survive the
// WAL and snapshot round trips exactly. Regression: the codec used to
// persist UnixNano unconditionally, which is undefined outside
// 1678–2262 and corrupted far timestamps on replay.
func TestTimestampDurabilityFullRange(t *testing.T) {
	times := []time.Time{
		time.Date(1999, 1, 10, 15, 9, 32, 123456789, time.UTC),
		time.Date(1000, 6, 15, 12, 30, 45, 7, time.UTC),
		time.Date(2500, 6, 1, 0, 0, 0, 999, time.UTC),
		{},
	}
	check := func(db *DB, stage string) {
		t.Helper()
		rows, err := db.Query(`SELECT TS FROM T ORDER BY ID`)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows.Data) != len(times) {
			t.Fatalf("%s: %d rows, want %d", stage, len(rows.Data), len(times))
		}
		for i, want := range times {
			got := rows.Data[i][0]
			if want.IsZero() {
				// The zero time is stored; it must come back as the
				// same instant.
				if !got.Time().IsZero() {
					t.Fatalf("%s: row %d: zero time came back as %v", stage, i, got.Time())
				}
				continue
			}
			if !got.Time().Equal(want) {
				t.Fatalf("%s: row %d: %v, want %v", stage, i, got.Time(), want)
			}
		}
	}

	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`CREATE TABLE T (ID INTEGER PRIMARY KEY, TS TIMESTAMP)`); err != nil {
		t.Fatal(err)
	}
	for i, ts := range times {
		if _, err := db.Exec(`INSERT INTO T VALUES (?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewTime(ts)); err != nil {
			t.Fatal(err)
		}
	}
	check(db, "live")

	// WAL replay path.
	if err := db.wal.close(); err != nil { // simulate crash: no checkpoint
		t.Fatal(err)
	}
	db2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	check(db2, "wal-replay")

	// Snapshot path.
	if err := db2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	check(db3, "snapshot")
}
