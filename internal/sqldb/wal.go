package sqldb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/sqltypes"
)

// Write-ahead logging and snapshot persistence.
//
// On-disk layout inside the database directory:
//
//	snapshot.db — full image: DDL log + heaps + counters
//	wal.log     — redo records for transactions committed since the
//	              last checkpoint
//
// Every WAL record is framed as
//
//	uint32 length | uint32 crc32(payload) | payload
//
// and replay stops cleanly at the first torn or corrupt frame, which is
// exactly what a crash mid-write produces. Only transactions whose
// records are followed by a commit frame are applied.

const (
	walOpBegin  = byte(1)
	walOpCommit = byte(2)
	walOpInsert = byte(3)
	walOpDelete = byte(4)
	walOpUpdate = byte(5)
	walOpDDL    = byte(6)
)

// walRecord is one redo record, buffered per transaction and written at
// commit.
type walRecord struct {
	op    byte
	table string
	row   rowID
	vals  []sqltypes.Value // insert: new row; update: new row
	ddl   string
}

// Group commit parameters: a leader briefly waits for straggling
// committers before draining the pending buffer (skipped once enough
// transactions are queued), so concurrent commits share one fsync.
const (
	groupCommitWindow  = 50 * time.Microsecond
	groupCommitMaxTxns = 32
)

// walFile is the append-only log writer with group commit.
//
// Committers stage their frames under the engine's writer lock
// (stageTx: pure memory append, commit order = log order), then release
// the engine lock and block in waitDurable. The first waiter becomes
// the flush leader: it drains the whole pending buffer — its own frames
// plus those of every transaction staged meanwhile — with one write and
// one Sync; the rest just wait for their sequence to become durable.
// Under concurrent commit load this turns N fsyncs into roughly one per
// fsync latency window.
//
// A write or sync failure is sticky: the log is considered poisoned,
// every in-flight and subsequent commit fails, and callers roll their
// in-memory effects back, so acknowledged state never diverges further
// from disk.
type walFile struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	pending  bytes.Buffer // staged frames not yet written
	nPending int          // staged transactions in pending
	seq      uint64       // last staged commit sequence
	durable  uint64       // highest sequence known fsynced
	flushing bool         // a leader is draining/syncing
	waiters  int          // committers inside waitDurable
	flushes  int          // completed flush batches (observability/tests)
	err      error        // sticky write/sync failure
}

func openWAL(path string) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &walFile{f: f}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// close flushes everything staged, then closes the file.
func (w *walFile) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.barrier()
	cerr := w.f.Close()
	if err != nil {
		return err
	}
	return cerr
}

// stageTx appends BEGIN, the records and COMMIT to the pending buffer
// and returns the transaction's commit sequence for waitDurable. Called
// in commit order (the engine's writer lock serialises committers), so
// on-disk order always matches in-memory commit order. No I/O here.
func (w *walFile) stageTx(txID uint64, recs []walRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	writeFrame := func(payload []byte) {
		var hdr [8]byte
		putUint32(hdr[0:4], uint32(len(payload)))
		putUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		w.pending.Write(hdr[:])
		w.pending.Write(payload)
	}
	writeFrame(encodeWALRecord(walRecord{op: walOpBegin}, txID))
	for _, r := range recs {
		writeFrame(encodeWALRecord(r, txID))
	}
	writeFrame(encodeWALRecord(walRecord{op: walOpCommit}, txID))
	w.nPending++
	w.seq++
	return w.seq, nil
}

// waitDurable blocks until every staged sequence up to seq is on disk.
// The transaction is durable once it returns nil.
func (w *walFile) waitDurable(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waiters++
	defer func() { w.waiters-- }()
	for {
		if w.durable >= seq {
			return nil // our frames hit disk, even if a later flush failed
		}
		if w.err != nil {
			return w.err
		}
		if w.flushing {
			w.cond.Wait()
			continue
		}
		w.flushLocked()
	}
}

// isDurable reports whether the given commit sequence has been fsynced.
func (w *walFile) isDurable(seq uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return seq <= w.durable
}

// barrier flushes everything staged so far (checkpoint/close fence).
func (w *walFile) barrier() error {
	w.mu.Lock()
	seq := w.seq
	w.mu.Unlock()
	return w.waitDurable(seq)
}

// flushLocked elects the caller leader, drains the pending buffer and
// syncs once. Called with w.mu held; the lock is released around the
// straggler window and the file I/O.
func (w *walFile) flushLocked() {
	w.flushing = true
	if (w.nPending > 1 || w.waiters > 1) && w.nPending < groupCommitMaxTxns {
		// Company detected (another staged transaction or another
		// waiter): give concurrently-committing transactions a moment
		// to stage their frames into this flush. A lone serial
		// committer skips the window — it would be pure added latency.
		w.mu.Unlock()
		time.Sleep(groupCommitWindow)
		w.mu.Lock()
	}
	data := append([]byte(nil), w.pending.Bytes()...)
	target := w.seq
	w.pending.Reset()
	w.nPending = 0
	w.mu.Unlock()

	var err error
	if len(data) > 0 {
		if _, werr := w.f.Write(data); werr != nil {
			err = werr
		} else {
			err = w.f.Sync()
		}
	}

	w.mu.Lock()
	if err != nil && w.err == nil {
		w.err = err
	}
	if err == nil && target > w.durable {
		w.durable = target
	}
	w.flushes++
	w.flushing = false
	w.cond.Broadcast()
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func encodeWALRecord(r walRecord, txID uint64) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteByte(r.op)
	writeUint64(bw, txID)
	switch r.op {
	case walOpInsert, walOpUpdate:
		writeString(bw, r.table)
		writeUint64(bw, uint64(r.row))
		writeRow(bw, r.vals)
	case walOpDelete:
		writeString(bw, r.table)
		writeUint64(bw, uint64(r.row))
	case walOpDDL:
		writeString(bw, r.ddl)
	}
	bw.Flush()
	return buf.Bytes()
}

func decodeWALRecord(payload []byte) (walRecord, uint64, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	op, err := br.ReadByte()
	if err != nil {
		return walRecord{}, 0, err
	}
	txID, err := readUint64(br)
	if err != nil {
		return walRecord{}, 0, err
	}
	r := walRecord{op: op}
	switch op {
	case walOpInsert, walOpUpdate:
		if r.table, err = readString(br); err != nil {
			return r, 0, err
		}
		id, err := readUint64(br)
		if err != nil {
			return r, 0, err
		}
		r.row = rowID(id)
		if r.vals, err = readRow(br); err != nil {
			return r, 0, err
		}
	case walOpDelete:
		if r.table, err = readString(br); err != nil {
			return r, 0, err
		}
		id, err := readUint64(br)
		if err != nil {
			return r, 0, err
		}
		r.row = rowID(id)
	case walOpDDL:
		if r.ddl, err = readString(br); err != nil {
			return r, 0, err
		}
	case walOpBegin, walOpCommit:
	default:
		return r, 0, fmt.Errorf("sqldb: corrupt WAL op %d", op)
	}
	return r, txID, nil
}

// readWAL parses the log and returns the records of committed
// transactions, in commit order. Torn trailing frames are tolerated.
func readWAL(path string) ([][]walRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)

	var committed [][]walRecord
	pending := map[uint64][]walRecord{}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // clean EOF or torn header: stop
		}
		length := getUint32(hdr[0:4])
		sum := getUint32(hdr[4:8])
		if length > 64<<20 {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt frame
		}
		rec, txID, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		switch rec.op {
		case walOpBegin:
			pending[txID] = nil
		case walOpCommit:
			committed = append(committed, pending[txID])
			delete(pending, txID)
		default:
			pending[txID] = append(pending[txID], rec)
		}
	}
	return committed, nil
}

// ---------- snapshot ----------

const snapshotMagic = "EASIADB1"

// saveSnapshot writes the complete database image atomically
// (tmp + rename).
func (db *DB) saveSnapshotLocked() error {
	if db.dir == "" {
		return nil
	}
	tmp := filepath.Join(db.dir, "snapshot.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		f.Close()
		return err
	}
	writeUint64(bw, db.nextTx)
	writeUint64(bw, uint64(db.nextRow))
	// DDL log: replaying it rebuilds catalogue + indexes.
	writeUint64(bw, uint64(len(db.ddlLog)))
	for _, ddl := range db.ddlLog {
		writeString(bw, ddl)
	}
	// Heaps.
	names := db.cat.TableNames()
	writeUint64(bw, uint64(len(names)))
	for _, name := range names {
		td := db.data[name]
		writeString(bw, name)
		writeUint64(bw, uint64(td.live))
		var werr error
		td.scan(func(id rowID, vals []sqltypes.Value) bool {
			if werr = writeUint64(bw, uint64(id)); werr != nil {
				return false
			}
			if werr = writeRow(bw, vals); werr != nil {
				return false
			}
			return true
		})
		if werr != nil {
			f.Close()
			return werr
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(db.dir, "snapshot.db"))
}

// loadSnapshot restores the database image; missing snapshot is fine.
func (db *DB) loadSnapshotLocked() error {
	path := filepath.Join(db.dir, "snapshot.db")
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapshotMagic {
		return fmt.Errorf("sqldb: %s is not a database snapshot", path)
	}
	if db.nextTx, err = readUint64(br); err != nil {
		return err
	}
	nr, err := readUint64(br)
	if err != nil {
		return err
	}
	db.nextRow = rowID(nr)
	nDDL, err := readUint64(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nDDL; i++ {
		ddl, err := readString(br)
		if err != nil {
			return err
		}
		if err := db.applyDDLText(ddl); err != nil {
			return fmt.Errorf("sqldb: snapshot DDL replay: %w", err)
		}
	}
	nTables, err := readUint64(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nTables; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		td, ok := db.data[name]
		if !ok {
			return fmt.Errorf("sqldb: snapshot heap for unknown table %s", name)
		}
		nRows, err := readUint64(br)
		if err != nil {
			return err
		}
		for j := uint64(0); j < nRows; j++ {
			id, err := readUint64(br)
			if err != nil {
				return err
			}
			vals, err := readRow(br)
			if err != nil {
				return err
			}
			if err := td.insert(rowID(id), vals); err != nil {
				return fmt.Errorf("sqldb: snapshot row replay: %w", err)
			}
		}
	}
	return nil
}
