package sqldb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/sqltypes"
)

// Write-ahead logging and snapshot persistence.
//
// On-disk layout inside the database directory:
//
//	snapshot.db — full image: DDL log + heaps + counters
//	wal.log     — redo records for transactions committed since the
//	              last checkpoint
//
// Every WAL record is framed as
//
//	uint32 length | uint32 crc32(payload) | payload
//
// and replay stops cleanly at the first torn or corrupt frame, which is
// exactly what a crash mid-write produces. Only transactions whose
// records are followed by a commit frame are applied.

const (
	walOpBegin  = byte(1)
	walOpCommit = byte(2)
	walOpInsert = byte(3)
	walOpDelete = byte(4)
	walOpUpdate = byte(5)
	walOpDDL    = byte(6)
)

// walRecord is one redo record, buffered per transaction and written at
// commit.
type walRecord struct {
	op    byte
	table string
	row   rowID
	vals  []sqltypes.Value // insert: new row; update: new row
	ddl   string
}

// walFile is the append-only log writer.
type walFile struct {
	f *os.File
}

func openWAL(path string) (*walFile, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walFile{f: f}, nil
}

func (w *walFile) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	return w.f.Close()
}

// appendTx writes BEGIN, the buffered records, COMMIT, then syncs.
// The transaction is durable once appendTx returns nil.
func (w *walFile) appendTx(txID uint64, recs []walRecord) error {
	var frame bytes.Buffer
	writeFrame := func(payload []byte) {
		var hdr [8]byte
		putUint32(hdr[0:4], uint32(len(payload)))
		putUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		frame.Write(hdr[:])
		frame.Write(payload)
	}
	writeFrame(encodeWALRecord(walRecord{op: walOpBegin}, txID))
	for _, r := range recs {
		writeFrame(encodeWALRecord(r, txID))
	}
	writeFrame(encodeWALRecord(walRecord{op: walOpCommit}, txID))
	if _, err := w.f.Write(frame.Bytes()); err != nil {
		return err
	}
	return w.f.Sync()
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func encodeWALRecord(r walRecord, txID uint64) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteByte(r.op)
	writeUint64(bw, txID)
	switch r.op {
	case walOpInsert, walOpUpdate:
		writeString(bw, r.table)
		writeUint64(bw, uint64(r.row))
		writeRow(bw, r.vals)
	case walOpDelete:
		writeString(bw, r.table)
		writeUint64(bw, uint64(r.row))
	case walOpDDL:
		writeString(bw, r.ddl)
	}
	bw.Flush()
	return buf.Bytes()
}

func decodeWALRecord(payload []byte) (walRecord, uint64, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	op, err := br.ReadByte()
	if err != nil {
		return walRecord{}, 0, err
	}
	txID, err := readUint64(br)
	if err != nil {
		return walRecord{}, 0, err
	}
	r := walRecord{op: op}
	switch op {
	case walOpInsert, walOpUpdate:
		if r.table, err = readString(br); err != nil {
			return r, 0, err
		}
		id, err := readUint64(br)
		if err != nil {
			return r, 0, err
		}
		r.row = rowID(id)
		if r.vals, err = readRow(br); err != nil {
			return r, 0, err
		}
	case walOpDelete:
		if r.table, err = readString(br); err != nil {
			return r, 0, err
		}
		id, err := readUint64(br)
		if err != nil {
			return r, 0, err
		}
		r.row = rowID(id)
	case walOpDDL:
		if r.ddl, err = readString(br); err != nil {
			return r, 0, err
		}
	case walOpBegin, walOpCommit:
	default:
		return r, 0, fmt.Errorf("sqldb: corrupt WAL op %d", op)
	}
	return r, txID, nil
}

// readWAL parses the log and returns the records of committed
// transactions, in commit order. Torn trailing frames are tolerated.
func readWAL(path string) ([][]walRecord, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)

	var committed [][]walRecord
	pending := map[uint64][]walRecord{}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			break // clean EOF or torn header: stop
		}
		length := getUint32(hdr[0:4])
		sum := getUint32(hdr[4:8])
		if length > 64<<20 {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			break // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // corrupt frame
		}
		rec, txID, err := decodeWALRecord(payload)
		if err != nil {
			break
		}
		switch rec.op {
		case walOpBegin:
			pending[txID] = nil
		case walOpCommit:
			committed = append(committed, pending[txID])
			delete(pending, txID)
		default:
			pending[txID] = append(pending[txID], rec)
		}
	}
	return committed, nil
}

// ---------- snapshot ----------

const snapshotMagic = "EASIADB1"

// saveSnapshot writes the complete database image atomically
// (tmp + rename).
func (db *DB) saveSnapshotLocked() error {
	if db.dir == "" {
		return nil
	}
	tmp := filepath.Join(db.dir, "snapshot.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		f.Close()
		return err
	}
	writeUint64(bw, db.nextTx)
	writeUint64(bw, uint64(db.nextRow))
	// DDL log: replaying it rebuilds catalogue + indexes.
	writeUint64(bw, uint64(len(db.ddlLog)))
	for _, ddl := range db.ddlLog {
		writeString(bw, ddl)
	}
	// Heaps.
	names := db.cat.TableNames()
	writeUint64(bw, uint64(len(names)))
	for _, name := range names {
		td := db.data[name]
		writeString(bw, name)
		writeUint64(bw, uint64(td.live))
		var werr error
		td.scan(func(id rowID, vals []sqltypes.Value) bool {
			if werr = writeUint64(bw, uint64(id)); werr != nil {
				return false
			}
			if werr = writeRow(bw, vals); werr != nil {
				return false
			}
			return true
		})
		if werr != nil {
			f.Close()
			return werr
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(db.dir, "snapshot.db"))
}

// loadSnapshot restores the database image; missing snapshot is fine.
func (db *DB) loadSnapshotLocked() error {
	path := filepath.Join(db.dir, "snapshot.db")
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != snapshotMagic {
		return fmt.Errorf("sqldb: %s is not a database snapshot", path)
	}
	if db.nextTx, err = readUint64(br); err != nil {
		return err
	}
	nr, err := readUint64(br)
	if err != nil {
		return err
	}
	db.nextRow = rowID(nr)
	nDDL, err := readUint64(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nDDL; i++ {
		ddl, err := readString(br)
		if err != nil {
			return err
		}
		if err := db.applyDDLText(ddl); err != nil {
			return fmt.Errorf("sqldb: snapshot DDL replay: %w", err)
		}
	}
	nTables, err := readUint64(br)
	if err != nil {
		return err
	}
	for i := uint64(0); i < nTables; i++ {
		name, err := readString(br)
		if err != nil {
			return err
		}
		td, ok := db.data[name]
		if !ok {
			return fmt.Errorf("sqldb: snapshot heap for unknown table %s", name)
		}
		nRows, err := readUint64(br)
		if err != nil {
			return err
		}
		for j := uint64(0); j < nRows; j++ {
			id, err := readUint64(br)
			if err != nil {
				return err
			}
			vals, err := readRow(br)
			if err != nil {
				return err
			}
			if err := td.insert(rowID(id), vals); err != nil {
				return fmt.Errorf("sqldb: snapshot row replay: %w", err)
			}
		}
	}
	return nil
}
