package sqldb

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"

	"repro/internal/iofault"
	"repro/internal/sqltypes"
)

// Write-ahead logging and snapshot persistence.
//
// On-disk layout inside the database directory:
//
//	snapshot.db — full image: header + DDL log + heaps + counters,
//	              whole-file CRC32 trailer, rotated by
//	              tmp + fsync + rename + dir-fsync
//	wal.log     — redo records for transactions committed since the
//	              last checkpoint
//
// Every WAL record is framed as
//
//	uint32 length | uint32 crc32(payload) | payload
//
// The first frame of every log is an epoch frame naming the checkpoint
// generation the log applies on top of; replay ignores a log whose
// epoch does not match the snapshot's generation (a crash between the
// snapshot rename and the log rotation leaves exactly that stale log
// behind, already folded into the snapshot).
//
// Replay classifies the log tail instead of silently stopping at the
// first bad frame (see replayWAL): an incomplete final frame is the
// signature of a crash mid-append and is truncated away, while a bad
// frame with intact frames AFTER it proves mid-log corruption of data
// that was once durable — that refuses to open rather than silently
// dropping committed transactions.

const (
	walOpBegin  = byte(1)
	walOpCommit = byte(2)
	walOpInsert = byte(3)
	walOpDelete = byte(4)
	walOpUpdate = byte(5)
	walOpDDL    = byte(6)
	// walOpEpoch is the log-header frame; its txID slot carries the
	// checkpoint generation this log applies on top of.
	walOpEpoch = byte(7)
)

// maxWALFrame bounds a frame's payload; a length field beyond it is
// treated as corruption, not allocation advice.
const maxWALFrame = 64 << 20

// walRecord is one redo record, buffered per transaction and written at
// commit.
type walRecord struct {
	op    byte
	table string
	row   rowID
	vals  []sqltypes.Value // insert: new row; update: new row
	ddl   string
}

// Group commit parameters: a leader briefly waits for straggling
// committers before draining the pending buffer (skipped once enough
// transactions are queued), so concurrent commits share one fsync.
const (
	groupCommitWindow  = 50 * time.Microsecond
	groupCommitMaxTxns = 32
)

// walFile is the append-only log writer with group commit.
//
// Committers stage their frames under the engine's writer lock
// (stageTx: pure memory append, commit order = log order), then release
// the engine lock and block in waitDurable. The first waiter becomes
// the flush leader: it drains the whole pending buffer — its own frames
// plus those of every transaction staged meanwhile — with one write and
// one Sync; the rest just wait for their sequence to become durable.
// Under concurrent commit load this turns N fsyncs into roughly one per
// fsync latency window.
//
// A write or sync failure is sticky and wraps ErrPoisoned: once an
// fsync has failed, the kernel may already have dropped the dirty pages
// it covered, so a retry that "succeeds" proves nothing — the log is
// poisoned, every in-flight and subsequent commit fails, and callers
// roll their in-memory effects back, so acknowledged state never
// diverges further from disk.
type walFile struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        iofault.File
	fs       iofault.FS
	path     string
	pending  bytes.Buffer // staged frames not yet written
	nPending int          // staged transactions in pending
	seq      uint64       // last staged commit sequence
	durable  uint64       // highest sequence known fsynced
	// durableBytes is the log length at the last successful fsync. On a
	// flush failure the file is truncated back to it: the failed batch's
	// transactions are rolled back and reported failed, so their frames
	// must not sit in the log where a later replay would resurrect them.
	durableBytes int64
	flushing     bool // a leader is draining/syncing
	waiters      int  // committers inside waitDurable
	flushes      int  // completed flush batches (observability/tests)
	err          error // sticky write/sync failure (wraps ErrPoisoned)

	met walMetrics // nil-safe handles; zero value records nothing
	// lastBatch is the transaction count of the most recent flush batch,
	// read by execution traces to report the group-commit batch a
	// statement's fsync rode in (atomic: readers don't take w.mu).
	lastBatch atomic.Int64
}

// walMetrics is the handle set the WAL writer records into. All fields
// are nil-safe telemetry handles, so an unmetered walFile (zero value)
// pays only a nil check per flush.
type walMetrics struct {
	fsyncNs *telemetry.Histogram // write+fsync latency per flush
	batch   *telemetry.Histogram // transactions drained per flush
	poison  *telemetry.Counter   // flush failures that poisoned the log
}

// setMetrics attaches metric handles; called once right after openWAL
// (and after checkpoint rotation), before the log accepts commits.
func (w *walFile) setMetrics(m walMetrics) {
	w.mu.Lock()
	w.met = m
	w.mu.Unlock()
}

// frameBytes wraps payload in the length|crc frame header.
func frameBytes(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	putUint32(out[0:4], uint32(len(payload)))
	putUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// openWAL opens the log for appending, stamping a fresh (empty) log
// with an epoch frame for the given checkpoint generation — synced
// before any commit can stage, so a log on disk always declares what
// snapshot it applies to.
func openWAL(fs iofault.FS, path string, epoch uint64) (*walFile, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		frame := frameBytes(encodeWALRecord(walRecord{op: walOpEpoch}, epoch))
		if _, err := f.Write(frame); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		size = int64(len(frame))
	}
	w := &walFile{f: f, fs: fs, path: path, durableBytes: size}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// close flushes everything staged, then closes the file. The file is
// closed even when the flush fails (callers in crash tests must not
// leak descriptors). A sticky poison error is NOT re-reported here: it
// already failed every commit it affected, and close's remaining job is
// only to release the descriptor.
func (w *walFile) close() error {
	if w == nil || w.f == nil {
		return nil
	}
	err := w.barrier()
	cerr := w.f.Close()
	if err != nil && !errors.Is(err, ErrPoisoned) {
		return err
	}
	return cerr
}

// poisoned reports the sticky failure, if any.
func (w *walFile) poisoned() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// stageTx appends BEGIN, the records and COMMIT to the pending buffer
// and returns the transaction's commit sequence for waitDurable. Called
// in commit order (DB.commitMu serialises committers, sharded and
// global alike), so on-disk order always matches in-memory commit-stamp
// order. No I/O here.
func (w *walFile) stageTx(txID uint64, recs []walRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	writeFrame := func(payload []byte) {
		var hdr [8]byte
		putUint32(hdr[0:4], uint32(len(payload)))
		putUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		w.pending.Write(hdr[:])
		w.pending.Write(payload)
	}
	writeFrame(encodeWALRecord(walRecord{op: walOpBegin}, txID))
	for _, r := range recs {
		writeFrame(encodeWALRecord(r, txID))
	}
	writeFrame(encodeWALRecord(walRecord{op: walOpCommit}, txID))
	w.nPending++
	w.seq++
	return w.seq, nil
}

// waitDurable blocks until every staged sequence up to seq is on disk.
// The transaction is durable once it returns nil.
func (w *walFile) waitDurable(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.waiters++
	defer func() { w.waiters-- }()
	for {
		if w.durable >= seq {
			return nil // our frames hit disk, even if a later flush failed
		}
		if w.err != nil {
			return w.err
		}
		if w.flushing {
			w.cond.Wait()
			continue
		}
		w.flushLocked()
	}
}

// currentSeq reports the latest staged commit sequence. A transaction
// that stages nothing itself still commits "after" everything staged so
// far — waiting on this sequence before acknowledging makes its commit
// dependency on that state explicit.
func (w *walFile) currentSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// isDurable reports whether the given commit sequence has been fsynced.
func (w *walFile) isDurable(seq uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return seq <= w.durable
}

// barrier flushes everything staged so far (checkpoint/close fence).
func (w *walFile) barrier() error {
	w.mu.Lock()
	seq := w.seq
	w.mu.Unlock()
	return w.waitDurable(seq)
}

// flushLocked elects the caller leader, drains the pending buffer and
// syncs once. Called with w.mu held; the lock is released around the
// straggler window and the file I/O.
func (w *walFile) flushLocked() {
	w.flushing = true
	if (w.nPending > 1 || w.waiters > 1) && w.nPending < groupCommitMaxTxns {
		// Company detected (another staged transaction or another
		// waiter): give concurrently-committing transactions a moment
		// to stage their frames into this flush. A lone serial
		// committer skips the window — it would be pure added latency.
		w.mu.Unlock()
		time.Sleep(groupCommitWindow)
		w.mu.Lock()
	}
	data := append([]byte(nil), w.pending.Bytes()...)
	target := w.seq
	batch := w.nPending
	met := w.met
	w.pending.Reset()
	w.nPending = 0
	w.mu.Unlock()

	var err error
	if len(data) > 0 {
		start := time.Now()
		if _, werr := w.f.Write(data); werr != nil {
			err = werr
		} else {
			err = w.f.Sync()
		}
		met.fsyncNs.ObserveSince(start)
		met.batch.Observe(int64(batch))
		w.lastBatch.Store(int64(batch))
	}

	w.mu.Lock()
	if err != nil && w.err == nil {
		met.poison.Inc()
		w.err = fmt.Errorf("%w: %v", ErrPoisoned, err)
		// The batch's transactions will be rolled back and reported
		// failed, but their frames may have physically reached the file
		// (a write that stuck with only the fsync failing). Cut the log
		// back to its last-synced length so a later replay cannot
		// resurrect transactions the application was told failed.
		// Best-effort: if this fails too the log is at worst torn past
		// durableBytes, which replay already handles.
		w.fs.Truncate(w.path, w.durableBytes) //nolint:errcheck
	}
	if err == nil && target > w.durable {
		w.durable = target
		w.durableBytes += int64(len(data))
	}
	w.flushes++
	w.flushing = false
	w.cond.Broadcast()
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func encodeWALRecord(r walRecord, txID uint64) []byte {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	bw.WriteByte(r.op)
	writeUint64(bw, txID)
	switch r.op {
	case walOpInsert, walOpUpdate:
		writeString(bw, r.table)
		writeUint64(bw, uint64(r.row))
		writeRow(bw, r.vals)
	case walOpDelete:
		writeString(bw, r.table)
		writeUint64(bw, uint64(r.row))
	case walOpDDL:
		writeString(bw, r.ddl)
	}
	bw.Flush()
	return buf.Bytes()
}

func decodeWALRecord(payload []byte) (walRecord, uint64, error) {
	br := bufio.NewReader(bytes.NewReader(payload))
	op, err := br.ReadByte()
	if err != nil {
		return walRecord{}, 0, err
	}
	txID, err := readUint64(br)
	if err != nil {
		return walRecord{}, 0, err
	}
	r := walRecord{op: op}
	switch op {
	case walOpInsert, walOpUpdate:
		if r.table, err = readString(br); err != nil {
			return r, 0, err
		}
		id, err := readUint64(br)
		if err != nil {
			return r, 0, err
		}
		r.row = rowID(id)
		if r.vals, err = readRow(br); err != nil {
			return r, 0, err
		}
	case walOpDelete:
		if r.table, err = readString(br); err != nil {
			return r, 0, err
		}
		id, err := readUint64(br)
		if err != nil {
			return r, 0, err
		}
		r.row = rowID(id)
	case walOpDDL:
		if r.ddl, err = readString(br); err != nil {
			return r, 0, err
		}
	case walOpBegin, walOpCommit, walOpEpoch:
	default:
		return r, 0, fmt.Errorf("sqldb: corrupt WAL op %d", op)
	}
	return r, txID, nil
}

// ---------- replay with tail classification ----------

// tailClass is what the end of the log looked like at replay.
type tailClass int

const (
	// tailClean: the log ends exactly on a frame boundary.
	tailClean tailClass = iota
	// tailTorn: the final region is an incomplete or garbage frame with
	// nothing valid after it — the signature of a crash mid-append.
	// Truncating it loses nothing that was ever acknowledged.
	tailTorn
	// tailCorrupt: a bad frame has INTACT frames after it. The bad frame
	// once passed through a successful fsync (later appends prove it),
	// so committed transactions live in or after the damage. Opening
	// must refuse rather than silently truncate them away.
	tailCorrupt
)

func (c tailClass) String() string {
	switch c {
	case tailClean:
		return "clean"
	case tailTorn:
		return "torn-tail"
	case tailCorrupt:
		return "mid-log-corruption"
	}
	return "unknown"
}

// walReplay is the parsed state of one log file.
type walReplay struct {
	committed [][]walRecord // committed transactions, commit order
	epoch     uint64        // checkpoint generation from the epoch frame
	hasEpoch  bool
	goodLen   int64 // byte offset past the last intact frame
	total     int64 // file length
	tail      tailClass
	detail    string // human-readable corruption description
}

// parseWALFrame reads one frame at off. ok=false with torn=true means
// the bytes from off to EOF cannot hold a complete frame; torn=false
// means a structurally complete frame failed its CRC or decode.
func parseWALFrame(data []byte, off int64) (rec walRecord, txID uint64, next int64, ok, torn bool, why string) {
	rest := int64(len(data)) - off
	if rest < 8 {
		return rec, 0, off, false, true, "incomplete frame header"
	}
	length := int64(getUint32(data[off : off+4]))
	if length > maxWALFrame {
		// An absurd length field: either a torn header or foreign bytes.
		// There is no payload to skip, so the distinction is made by
		// whether anything after parses (see classify below).
		return rec, 0, off, false, false, fmt.Sprintf("implausible frame length %d", length)
	}
	if rest < 8+length {
		return rec, 0, off, false, true, "incomplete frame payload"
	}
	payload := data[off+8 : off+8+length]
	if crc32.ChecksumIEEE(payload) != getUint32(data[off+4:off+8]) {
		return rec, 0, off + 8 + length, false, false, "frame CRC mismatch"
	}
	rec, txID, err := decodeWALRecord(payload)
	if err != nil {
		return rec, 0, off + 8 + length, false, false, fmt.Sprintf("undecodable frame: %v", err)
	}
	return rec, txID, off + 8 + length, true, false, ""
}

// anyValidFrameAfter scans for any intact frame starting at or past
// from. Used to distinguish a torn tail (garbage to EOF — safe to
// truncate) from mid-log corruption (valid frames beyond the damage —
// durable data at risk). The scan tries every byte offset: corruption
// recovery is rare enough that O(n·m) honesty beats a fast guess.
func anyValidFrameAfter(data []byte, from int64) bool {
	for off := from; off+8 <= int64(len(data)); off++ {
		if _, _, _, ok, _, _ := parseWALFrame(data, off); ok {
			return true
		}
	}
	return false
}

// replayWAL parses the log, returning the committed transactions in
// commit order, the epoch, and the tail classification. It never
// mutates the file; the caller decides whether to truncate (torn) or
// refuse (corrupt, unless salvaging).
func replayWAL(fs iofault.FS, path string) (walReplay, error) {
	rep := walReplay{}
	data, err := iofault.ReadFile(fs, path)
	if iofault.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return rep, err
	}
	rep.total = int64(len(data))
	pending := map[uint64][]walRecord{}
	var off int64
	first := true
	for off < rep.total {
		rec, txID, next, ok, torn, why := parseWALFrame(data, off)
		if !ok {
			if torn {
				rep.tail = tailTorn
				rep.detail = why
			} else if anyValidFrameAfter(data, off+1) {
				rep.tail = tailCorrupt
				rep.detail = fmt.Sprintf("%s at offset %d with intact frames after it", why, off)
			} else {
				// A structurally complete but bad frame with nothing
				// valid behind it: indistinguishable from a torn append
				// of garbage — truncate, like any torn tail.
				rep.tail = tailTorn
				rep.detail = why
			}
			rep.goodLen = off
			return rep, nil
		}
		if first {
			first = false
			if rec.op == walOpEpoch {
				rep.epoch = txID
				rep.hasEpoch = true
				off = next
				rep.goodLen = off
				continue
			}
		}
		switch rec.op {
		case walOpBegin:
			pending[txID] = nil
		case walOpCommit:
			rep.committed = append(rep.committed, pending[txID])
			delete(pending, txID)
		case walOpEpoch:
			// A stray epoch frame mid-log (never written by this engine)
			// is ignored; the frame itself was intact.
		default:
			pending[txID] = append(pending[txID], rec)
		}
		off = next
		rep.goodLen = off
	}
	rep.tail = tailClean
	return rep, nil
}

// ---------- snapshot ----------

// snapshotMagic identifies the checksummed v2 snapshot format:
//
//	"EASIADB2" | gen | nextTx | nextRow | DDL log | heaps | crc32
//
// where the trailing CRC32 (IEEE) covers every preceding byte. Loading
// verifies the checksum before trusting a single field; a mismatch
// refuses the open with ErrSnapshotCorrupt — a half-written or
// bit-rotted snapshot must never be silently half-applied.
const (
	snapshotMagic       = "EASIADB2"
	snapshotMagicLegacy = "EASIADB1"
)

// crcWriter updates a running CRC32 with everything written through it.
type crcWriter struct {
	w   iofault.File
	sum uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.sum = crc32.Update(cw.sum, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// saveSnapshotLocked writes the complete database image for checkpoint
// generation gen, durably: tmp file + whole-file checksum + fsync +
// rename + parent-dir fsync.
//
// The returned renamed flag reports whether the rename was issued: a
// failure before it leaves the old snapshot fully intact (the
// checkpoint can simply be retried), while a failure after it means the
// directory now holds a snapshot newer than the live WAL's epoch — the
// caller must poison the database, because committing into the old log
// after that point would strand acknowledged transactions in a log
// replay will rightly skip.
func (db *DB) saveSnapshotLocked(gen uint64) (renamed bool, err error) {
	if db.dir == "" {
		return false, nil
	}
	tmp := filepath.Join(db.dir, "snapshot.tmp")
	f, err := iofault.Create(db.fs, tmp)
	if err != nil {
		return false, err
	}
	cleanup := func(werr error) (bool, error) {
		f.Close()
		db.fs.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return false, werr
	}
	cw := &crcWriter{w: f}
	bw := bufio.NewWriterSize(cw, 1<<16)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return cleanup(err)
	}
	writeUint64(bw, gen)
	writeUint64(bw, db.nextTx.Load())
	writeUint64(bw, db.nextRow.Load())
	// DDL log: replaying it rebuilds catalogue + indexes.
	writeUint64(bw, uint64(len(db.ddlLog)))
	for _, ddl := range db.ddlLog {
		writeString(bw, ddl)
	}
	// Heaps.
	names := db.cat.TableNames()
	writeUint64(bw, uint64(len(names)))
	for _, name := range names {
		td := db.data[name]
		writeString(bw, name)
		// Under the checkpoint barrier every stamp is resolved, so the
		// latest-mode count equals the number of rows the scan writes.
		writeUint64(bw, uint64(td.live.Load()))
		var werr error
		td.scan(snapLatest, func(id rowID, vals []sqltypes.Value) bool {
			if werr = writeUint64(bw, uint64(id)); werr != nil {
				return false
			}
			if werr = writeRow(bw, vals); werr != nil {
				return false
			}
			return true
		})
		if werr != nil {
			return cleanup(werr)
		}
	}
	if err := bw.Flush(); err != nil {
		return cleanup(err)
	}
	var tail [4]byte
	putUint32(tail[:], cw.sum)
	if _, err := f.Write(tail[:]); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		db.fs.Remove(tmp) //nolint:errcheck
		return false, err
	}
	if err := db.fs.Rename(tmp, filepath.Join(db.dir, "snapshot.db")); err != nil {
		db.fs.Remove(tmp) //nolint:errcheck
		return false, err
	}
	// Make the rename durable. Past this point (including on failure)
	// the new snapshot may be what a restart sees.
	if err := db.fs.SyncDir(db.dir); err != nil {
		return true, err
	}
	return true, nil
}

// loadSnapshotLocked restores the database image; a missing snapshot is
// a clean first boot. The whole-file checksum is verified before any
// field is trusted; failure refuses the open with ErrSnapshotCorrupt.
func (db *DB) loadSnapshotLocked() error {
	path := filepath.Join(db.dir, "snapshot.db")
	data, err := iofault.ReadFile(db.fs, path)
	if iofault.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) >= len(snapshotMagicLegacy) && string(data[:len(snapshotMagicLegacy)]) == snapshotMagicLegacy {
		return fmt.Errorf("%w: %s is a legacy pre-checksum snapshot (re-create the archive or checkpoint with the old binary first)", ErrSnapshotCorrupt, path)
	}
	if len(data) < len(snapshotMagic)+4 || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return fmt.Errorf("%w: %s is not a database snapshot", ErrSnapshotCorrupt, path)
	}
	body := data[:len(data)-4]
	if crc32.ChecksumIEEE(body) != getUint32(data[len(data)-4:]) {
		return fmt.Errorf("%w: %s fails its whole-file checksum", ErrSnapshotCorrupt, path)
	}
	br := bufio.NewReaderSize(bytes.NewReader(body[len(snapshotMagic):]), 1<<16)
	corrupt := func(err error) error {
		// The checksum passed, so a parse failure means a writer bug or
		// memory corruption — still refuse, still typed.
		return fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, path, err)
	}
	gen, err := readUint64(br)
	if err != nil {
		return corrupt(err)
	}
	db.gen = gen
	nt, err := readUint64(br)
	if err != nil {
		return corrupt(err)
	}
	db.nextTx.Store(nt)
	nr, err := readUint64(br)
	if err != nil {
		return corrupt(err)
	}
	db.nextRow.Store(nr)
	nDDL, err := readUint64(br)
	if err != nil {
		return corrupt(err)
	}
	for i := uint64(0); i < nDDL; i++ {
		ddl, err := readString(br)
		if err != nil {
			return corrupt(err)
		}
		if err := db.applyDDLText(ddl); err != nil {
			return fmt.Errorf("sqldb: snapshot DDL replay: %w", err)
		}
	}
	nTables, err := readUint64(br)
	if err != nil {
		return corrupt(err)
	}
	// Snapshot rows all collapse to one commit stamp, baseStamp: visible
	// to every reader, ordered before everything the WAL replays on top.
	var refs mvccRefs
	for i := uint64(0); i < nTables; i++ {
		name, err := readString(br)
		if err != nil {
			return corrupt(err)
		}
		td, ok := db.data[name]
		if !ok {
			return fmt.Errorf("sqldb: snapshot heap for unknown table %s", name)
		}
		nRows, err := readUint64(br)
		if err != nil {
			return corrupt(err)
		}
		for j := uint64(0); j < nRows; j++ {
			id, err := readUint64(br)
			if err != nil {
				return corrupt(err)
			}
			vals, err := readRow(br)
			if err != nil {
				return corrupt(err)
			}
			if err := td.insert(rowID(id), vals, &refs); err != nil {
				return fmt.Errorf("sqldb: snapshot row replay: %w", err)
			}
		}
	}
	if !refs.empty() {
		refs.commit(baseStamp)
	}
	return nil
}
