package sqldb

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sqltypes"
)

// TestGroupAggPlanStrings checks the planner's aggregation-strategy
// choice surfaces in AccessPath: streaming GROUP BY pushdown when an
// ordered index clusters the group columns (including the equality-
// constant-prefix skip), hash aggregation otherwise, and the groupless
// single-accumulator fold.
func TestGroupAggPlanStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := buildCompositeDB(t, rng, 300)
	defer db.Close()
	cases := []struct {
		sql  string
		want string
	}{
		// No WHERE: GROUP BY pushdown picks the ordered index itself;
		// COUNT/SUM of index columns fold from the keys (index-only).
		{`SELECT A, COUNT(*) FROM C GROUP BY A`,
			"ordered-scan(C.A+B) group-ordered(A) index-only"},
		{`SELECT A, B, COUNT(*), SUM(B) FROM C GROUP BY A, B`,
			"ordered-scan(C.A+B) group-ordered(A+B) index-only"},
		// An aggregate argument outside the index keeps the fold on
		// fetched rows.
		{`SELECT A, MIN(TS) FROM C GROUP BY A`,
			"ordered-scan(C.A+B) group-ordered(A)"},
		// Group column inside the equality prefix is constant: any path
		// order is clustered.
		{`SELECT A, COUNT(*) FROM C WHERE A = ? GROUP BY A`,
			"prefix(C.A) group-ordered(A) index-only"},
		// Residual WHERE rides along: the pushdown scan still clusters.
		{`SELECT A, COUNT(*) FROM C WHERE B > ? GROUP BY A`,
			"ordered-scan(C.A+B) group-ordered(A)"},
		// B is not a leading index column: hash aggregation.
		{`SELECT B, COUNT(*) FROM C GROUP BY B`, "full-scan hash-agg"},
		// S is only hash-indexed (no order): hash aggregation.
		{`SELECT S, COUNT(*) FROM C GROUP BY S`, "full-scan hash-agg"},
		// Computed group key cannot be read off an index.
		{`SELECT A + 1, COUNT(*) FROM C GROUP BY A + 1`, "full-scan hash-agg"},
		// Aggregate-only query: one accumulator, no grouping at all.
		{`SELECT COUNT(*), AVG(B) FROM C WHERE B > ?`, "full-scan agg-fold"},
	}
	for _, tc := range cases {
		st, err := db.Prepare(tc.sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.AccessPath()
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("%s: path %q, want %q", tc.sql, got, tc.want)
		}
	}
}

// TestGroupAggPropertyStrategies: every aggregated query must return
// identical results through the streaming fold (group-ordered index
// scan), the hash fold (full scan) and the legacy materialise-then-
// group executor, across GROUP BY / HAVING / ORDER BY / LIMIT / OFFSET
// combinations with NULLs in both group keys and aggregate arguments.
func TestGroupAggPropertyStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	db := buildCompositeDB(t, rng, 500)
	defer db.Close()
	queries := []struct {
		sql  string
		args []sqltypes.Value
	}{
		{`SELECT A, COUNT(*), SUM(B), AVG(B), MIN(B), MAX(B) FROM C GROUP BY A`, nil},
		{`SELECT A, B, COUNT(*) FROM C GROUP BY A, B`, nil},
		{`SELECT B, COUNT(*), MIN(A) FROM C GROUP BY B`, nil},
		{`SELECT S, COUNT(*), COUNT(S) FROM C GROUP BY S`, nil},
		{`SELECT A, COUNT(*) FROM C WHERE B > ? GROUP BY A`,
			[]sqltypes.Value{sqltypes.NewInt(0)}},
		{`SELECT A, COUNT(*) FROM C WHERE A = ? GROUP BY A`,
			[]sqltypes.Value{sqltypes.NewInt(3)}},
		{`SELECT A, COUNT(*) FROM C GROUP BY A HAVING COUNT(*) > ?`,
			[]sqltypes.Value{sqltypes.NewInt(10)}},
		{`SELECT A, SUM(B) FROM C GROUP BY A HAVING SUM(B) > ? ORDER BY A DESC LIMIT 5`,
			[]sqltypes.Value{sqltypes.NewInt(-100)}},
		{`SELECT A FROM C GROUP BY A ORDER BY COUNT(*) DESC, A LIMIT 7`, nil},
		{`SELECT A, COUNT(*) + SUM(B) FROM C GROUP BY A`, nil},
		{`SELECT A + 1, COUNT(*) FROM C GROUP BY A + 1`, nil},
		{`SELECT A, MAX(TS) FROM C GROUP BY A ORDER BY A LIMIT 4 OFFSET 2`, nil},
		{`SELECT COUNT(*), AVG(B), MIN(TS), MAX(S) FROM C`, nil},
		{`SELECT COUNT(*), SUM(B) FROM C WHERE A = ? AND B = ?`,
			[]sqltypes.Value{sqltypes.NewInt(2), sqltypes.NewInt(5)}},
		// Empty input: the groupless fold still yields its one group...
		{`SELECT COUNT(*), SUM(B) FROM C WHERE A = ?`,
			[]sqltypes.Value{sqltypes.NewInt(9999)}},
		// ...and a grouped query yields none.
		{`SELECT A, COUNT(*) FROM C WHERE A = ? GROUP BY A`,
			[]sqltypes.Value{sqltypes.NewInt(9999)}},
		{`SELECT UPPER(S), MIN(B) FROM C GROUP BY S ORDER BY S LIMIT 3`, nil},
	}
	// Sanity: the suite exercises the streaming path at least once.
	st, err := db.Prepare(queries[0].sql)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.AccessPath(); !strings.Contains(p, "group-ordered") {
		t.Fatalf("expected a streaming plan for %s, got %q", queries[0].sql, p)
	}
	for _, q := range queries {
		run := func(scanOnly, legacy bool) (*Rows, error) {
			db.SetFullScanOnly(scanOnly)
			db.SetLegacyAggregation(legacy)
			defer db.SetFullScanOnly(false)
			defer db.SetLegacyAggregation(false)
			return db.Query(q.sql, q.args...)
		}
		folded, err1 := run(false, false)   // streaming where planned
		hashed, err2 := run(true, false)    // fold through the hash table
		legacy, err3 := run(false, true)    // materialise-then-group oracle
		if (err1 == nil) != (err2 == nil) || (err1 == nil) != (err3 == nil) {
			t.Fatalf("%s: error mismatch %v / %v / %v", q.sql, err1, err2, err3)
		}
		if err1 != nil {
			continue
		}
		ordered := strings.Contains(q.sql, "ORDER BY")
		fk, hk, lk := rowsKey(folded, ordered), rowsKey(hashed, ordered), rowsKey(legacy, ordered)
		if fk != lk {
			t.Fatalf("%s: fold %d rows != legacy %d rows", q.sql, len(folded.Data), len(legacy.Data))
		}
		if hk != lk {
			t.Fatalf("%s: hash-agg %d rows != legacy %d rows", q.sql, len(hashed.Data), len(legacy.Data))
		}
	}
}

// TestGroupKeyDistinctness: the canonical group-key encoding must keep
// NULL, '' and 0 vs '0' in distinct groups (the legacy string-keyed map
// risk this regression test pins down), in every strategy and for
// multi-column keys whose components could smear into each other.
func TestGroupKeyDistinctness(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE G (
		ID INTEGER PRIMARY KEY, S VARCHAR(10), T VARCHAR(10), N INTEGER)`); err != nil {
		t.Fatal(err)
	}
	ins := func(id int, s, tt, n sqltypes.Value) {
		t.Helper()
		if _, err := db.Exec(`INSERT INTO G VALUES (?, ?, ?, ?)`,
			sqltypes.NewInt(int64(id)), s, tt, n); err != nil {
			t.Fatal(err)
		}
	}
	null := sqltypes.Null
	ins(1, null, sqltypes.NewString("x"), sqltypes.NewInt(0))
	ins(2, sqltypes.NewString(""), sqltypes.NewString("x"), null)
	ins(3, sqltypes.NewString("0"), sqltypes.NewString("x"), null)
	ins(4, null, sqltypes.NewString("x"), null)
	// Multi-column ambiguity: ('', NULL) vs (NULL, '').
	ins(5, sqltypes.NewString(""), null, null)
	ins(6, null, sqltypes.NewString(""), null)
	// Ordered index so the streaming strategy exercises the same keys.
	if _, err := db.Exec(`CREATE INDEX G_S ON G (S) USING ORDERED`); err != nil {
		t.Fatal(err)
	}
	check := func(sql string, wantGroups int) {
		t.Helper()
		for _, mode := range []struct {
			name             string
			scanOnly, legacy bool
		}{{"fold", false, false}, {"hash", true, false}, {"legacy", false, true}} {
			db.SetFullScanOnly(mode.scanOnly)
			db.SetLegacyAggregation(mode.legacy)
			rows, err := db.Query(sql)
			db.SetFullScanOnly(false)
			db.SetLegacyAggregation(false)
			if err != nil {
				t.Fatal(err)
			}
			if len(rows.Data) != wantGroups {
				t.Fatalf("%s [%s]: %d groups, want %d (%v)",
					sql, mode.name, len(rows.Data), wantGroups, rows.Data)
			}
		}
	}
	// NULL vs '' vs '0' are three distinct single-column groups.
	check(`SELECT S, COUNT(*) FROM G GROUP BY S`, 3)
	// ('', NULL-in-T rows fold by T): ('x') vs ('') vs (NULL).
	check(`SELECT T, COUNT(*) FROM G GROUP BY T`, 3)
	// Component boundaries stay unambiguous: ('', NULL) != (NULL, '').
	check(`SELECT S, T, COUNT(*) FROM G WHERE ID >= 5 GROUP BY S, T`, 2)
	// INTEGER 0 vs VARCHAR '0' (mixed kinds via COALESCE) stay apart.
	check(`SELECT COALESCE(N, S), COUNT(*) FROM G WHERE ID IN (1, 2, 3) GROUP BY COALESCE(N, S)`, 3)
}

// TestAggFoldMinMaxBoundaryDecode: residual-free MIN/MAX must be
// answered entirely from the boundary index KEY — zero heap rows — for
// the kinds whose canonical encoding round-trips (INTEGER in the exact
// window, VARCHAR, TIMESTAMP), while non-round-tripping keys (far
// integers, a DOUBLE zero) fall back to the boundary-row fetch with
// identical results.
func TestAggFoldMinMaxBoundaryDecode(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE M (
		ID INTEGER PRIMARY KEY, N INTEGER, S VARCHAR(20), TS TIMESTAMP, D DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO M VALUES (?, ?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		n := sqltypes.NewInt(int64(i%37 - 18))
		if i%11 == 0 {
			n = sqltypes.Null
		}
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)), n,
			sqltypes.NewString(fmt.Sprintf("s%03d", i%50)),
			sqltypes.NewString(fmt.Sprintf("200%d-01-1%d 00:00:00", i%10, i%9)),
			sqltypes.NewDouble(float64(i)-100.5)); err != nil {
			t.Fatal(err)
		}
	}
	for _, ddl := range []string{
		`CREATE INDEX M_N ON M (N) USING ORDERED`,
		`CREATE INDEX M_S ON M (S) USING ORDERED`,
		`CREATE INDEX M_TS ON M (TS) USING ORDERED`,
		`CREATE INDEX M_D ON M (D) USING ORDERED`,
	} {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	checkReads := func(sql string, wantZero bool, args ...sqltypes.Value) {
		t.Helper()
		st, err := db.Prepare(sql)
		if err != nil {
			t.Fatal(err)
		}
		if p, _ := st.AccessPath(); !strings.Contains(p, "index-only") {
			t.Fatalf("%s: not planned index-only: %q", sql, p)
		}
		indexed, err := st.Query(args...)
		if err != nil {
			t.Fatal(err)
		}
		before := db.HeapRowReads("M")
		if _, err := st.Query(args...); err != nil {
			t.Fatal(err)
		}
		reads := db.HeapRowReads("M") - before
		if wantZero && reads != 0 {
			t.Fatalf("%s: read %d heap rows, want 0", sql, reads)
		}
		if !wantZero && reads == 0 {
			t.Fatalf("%s: expected the boundary-row fallback to fetch rows", sql)
		}
		db.SetFullScanOnly(true)
		oracle, err := db.Query(sql, args...)
		db.SetFullScanOnly(false)
		if err != nil {
			t.Fatal(err)
		}
		if rowsKey(indexed, true) != rowsKey(oracle, true) {
			t.Fatalf("%s: index-only %v != scan %v", sql, indexed.Data, oracle.Data)
		}
	}
	// Round-tripping kinds: the boundary KEY answers, zero heap rows.
	checkReads(`SELECT MIN(N), MAX(N) FROM M WHERE N > ?`, true, sqltypes.NewInt(-10))
	checkReads(`SELECT MIN(N) FROM M WHERE N IS NOT NULL`, true)
	checkReads(`SELECT MIN(S), MAX(S) FROM M WHERE S IS NOT NULL`, true)
	checkReads(`SELECT MIN(TS), MAX(TS) FROM M WHERE TS IS NOT NULL`, true)
	checkReads(`SELECT MIN(D), MAX(D) FROM M WHERE D > ?`, true, sqltypes.NewDouble(-1000))

	// Far-integer boundary: the key image is ambiguous, so the executor
	// must fetch the boundary rows and resolve the exact maximum.
	if _, err := db.Exec(`INSERT INTO M VALUES (1000, ?, 'far', '2009-01-11 00:00:00', 1.5)`,
		sqltypes.NewInt(1<<53)); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO M VALUES (1001, ?, 'far', '2009-01-11 00:00:00', 1.5)`,
		sqltypes.NewInt(1<<53+2)); err != nil {
		t.Fatal(err)
	}
	checkReads(`SELECT MAX(N) FROM M WHERE N IS NOT NULL`, false)

	// A DOUBLE zero key cannot name its sign: fallback, correct result.
	if _, err := db.Exec(`INSERT INTO M VALUES (1002, 1, 'z', '2009-01-12 00:00:00', ?)`,
		sqltypes.NewDouble(math.Copysign(0, -1))); err != nil {
		t.Fatal(err)
	}
	checkReads(`SELECT MIN(D) FROM M WHERE D BETWEEN ? AND ?`, false,
		sqltypes.NewDouble(-0.25), sqltypes.NewDouble(0.25))
}

// TestGroupIndexFoldZeroHeapReads: a grouped COUNT/SUM/MIN/MAX whose
// arguments all live in the clustering index must be answered from the
// index keys alone — zero heap rows — while a far-integer group key
// falls back to fetching just that key's rows, with identical results.
func TestGroupIndexFoldZeroHeapReads(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE R (
		ID INTEGER PRIMARY KEY, SIM VARCHAR(20), TS INTEGER, SZ INTEGER)`); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare(`INSERT INTO R VALUES (?, ?, ?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		sz := sqltypes.NewInt(int64(i) * 3)
		if i%17 == 0 {
			sz = sqltypes.Null
		}
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%02d", i%20)),
			sqltypes.NewInt(int64(i/20)),
			sz); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX R_COVER ON R (SIM, TS, SZ) USING ORDERED`); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT SIM, COUNT(*), COUNT(SZ), SUM(SZ), AVG(SZ), MIN(TS), MAX(TS)
		FROM R GROUP BY SIM HAVING COUNT(*) > 1 ORDER BY SIM`
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.AccessPath(); p != "ordered-scan(R.SIM+TS+SZ) group-ordered(SIM) index-only" {
		t.Fatalf("path = %q", p)
	}
	before := db.HeapRowReads("R")
	indexed, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	if got := db.HeapRowReads("R") - before; got != 0 {
		t.Fatalf("grouped index-only fold read %d heap rows, want 0", got)
	}
	if len(indexed.Data) != 20 {
		t.Fatalf("%d groups, want 20", len(indexed.Data))
	}
	oracle := func() *Rows {
		db.SetLegacyAggregation(true)
		db.SetFullScanOnly(true)
		defer db.SetFullScanOnly(false)
		defer db.SetLegacyAggregation(false)
		r, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if rowsKey(indexed, true) != rowsKey(oracle(), true) {
		t.Fatalf("index-only fold diverges from the legacy oracle")
	}

	// A group key in the far-integer collision window: only that key's
	// rows are fetched, and results still match the oracle.
	if _, err := db.Exec(`CREATE TABLE F (ID INTEGER PRIMARY KEY, K INTEGER, V INTEGER)`); err != nil {
		t.Fatal(err)
	}
	for i, k := range []int64{1, 1, 1 << 53, 1<<53 + 2, 5} {
		if _, err := db.Exec(`INSERT INTO F VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(k), sqltypes.NewInt(int64(i)*10)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX F_KV ON F (K, V) USING ORDERED`); err != nil {
		t.Fatal(err)
	}
	const fq = `SELECT K, COUNT(*), SUM(V) FROM F GROUP BY K`
	fst, err := db.Prepare(fq)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := fst.AccessPath(); !strings.Contains(p, "index-only") {
		t.Fatalf("path = %q", p)
	}
	before = db.HeapRowReads("F")
	folded, err := fst.Query()
	if err != nil {
		t.Fatal(err)
	}
	reads := db.HeapRowReads("F") - before
	if reads == 0 || reads > 3 {
		t.Fatalf("collision fallback read %d heap rows, want 1..3 (the far keys plus first-row synth)", reads)
	}
	db.SetLegacyAggregation(true)
	db.SetFullScanOnly(true)
	legacy, err := db.Query(fq)
	db.SetFullScanOnly(false)
	db.SetLegacyAggregation(false)
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(folded, false) != rowsKey(legacy, false) {
		t.Fatalf("collision fallback diverges: %v vs %v", folded.Data, legacy.Data)
	}
}

// TestGroupIndexFoldDoubleSumParity: the index-key fold stands one key
// for n identical rows; its double SUM must accumulate by n additions,
// not one multiplication, or ten rows of 0.1 sum to 1.0 through the
// index and 0.9999999999999999 through every row-wise path.
func TestGroupIndexFoldDoubleSumParity(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE P (ID INTEGER PRIMARY KEY, G INTEGER, V DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(`INSERT INTO P VALUES (?, 1, ?)`,
			sqltypes.NewInt(int64(i)), sqltypes.NewDouble(0.1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`CREATE INDEX P_GV ON P (G, V) USING ORDERED`); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT G, SUM(V), AVG(V) FROM P GROUP BY G`
	st, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := st.AccessPath(); !strings.Contains(p, "index-only") {
		t.Fatalf("path = %q", p)
	}
	folded, err := st.Query()
	if err != nil {
		t.Fatal(err)
	}
	db.SetLegacyAggregation(true)
	legacy, err := db.Query(q)
	db.SetLegacyAggregation(false)
	if err != nil {
		t.Fatal(err)
	}
	if folded.Data[0][1].Double() != legacy.Data[0][1].Double() ||
		folded.Data[0][2].Double() != legacy.Data[0][2].Double() {
		t.Fatalf("index fold %v != legacy %v", folded.Data[0], legacy.Data[0])
	}
}

// TestAggFoldErrorParity: malformed aggregate usage must fail (or not)
// identically through the fold pipeline and the legacy oracle.
func TestAggFoldErrorParity(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`CREATE TABLE E (ID INTEGER PRIMARY KEY, S VARCHAR(10));
		INSERT INTO E VALUES (1, 'a'); INSERT INTO E VALUES (2, 'b')`); err != nil {
		t.Fatal(err)
	}
	for _, sql := range []string{
		`SELECT SUM(S) FROM E`,                // non-numeric SUM errors
		`SELECT COUNT(ID, S) FROM E`,          // arity error
		`SELECT SUM(S) FROM E WHERE ID > 100`, // empty input: SUM is NULL, no error
		`SELECT MIN(S) FROM E GROUP BY S`,
		// The erroring aggregate belongs only to groups HAVING discards:
		// the legacy executor never evaluates it, so the fold must defer
		// the error and return the same empty result.
		`SELECT S, SUM(S) FROM E GROUP BY S HAVING COUNT(*) > 100`,
	} {
		fold, ferr := db.Query(sql)
		db.SetLegacyAggregation(true)
		legacy, lerr := db.Query(sql)
		db.SetLegacyAggregation(false)
		if (ferr == nil) != (lerr == nil) {
			t.Fatalf("%s: fold err %v, legacy err %v", sql, ferr, lerr)
		}
		if ferr != nil {
			if ferr.Error() != lerr.Error() {
				t.Fatalf("%s: fold %q != legacy %q", sql, ferr, lerr)
			}
			continue
		}
		if rowsKey(fold, false) != rowsKey(legacy, false) {
			t.Fatalf("%s: fold %v != legacy %v", sql, fold.Data, legacy.Data)
		}
	}
}
