package sqldb

import (
	"strings"

	"repro/internal/sqltypes"
)

// Index nested-loop joins.
//
// The executor joins FROM items left to right, and historically scanned
// the whole inner table once per accumulated outer row — a cross
// product narrowed only afterwards by the ON/WHERE predicates. The join
// planner recognises equality conjuncts of the form
//
//	inner.col = <expression over earlier tables (or constants)>
//
// in the joining ON condition and in the WHERE clause, matches them
// against the inner table's indexes (longest leading prefix, hash needs
// the full tuple), and records a joinProbe in the cached plan. At
// execution each outer row evaluates the outer-side expressions and
// probes the index instead of scanning — O(probe) per outer row instead
// of O(|inner|). Probes only narrow the candidate set: the ON condition
// is still evaluated on every candidate and the WHERE clause is applied
// after the join, so results are identical to the scanning path (which
// remains both the fallback when a probe cannot be aligned with the
// indexed column's type and the SetFullScanOnly oracle).
//
// LEFT JOIN keeps its semantics: a probe that finds no candidates
// produces the NULL-extended row, exactly as an exhaustive scan with no
// ON match would. WHERE-derived probes are safe there too — an
// equality conjunct on an inner column evaluates UNKNOWN on the
// NULL-extended row, so the post-join WHERE drops exactly the rows the
// scanning path would drop.
//
// For a two-table inner join the planner also prepares the reverse
// probe (table 0 as the probed side). The executor picks the probed
// side at run time: the indexed one, or — when both sides are indexed —
// the larger one, so the smaller table drives the outer loop.
type joinProbe struct {
	idx    string   // index name on the probed (inner) table
	cols   []string // index columns
	colPos []int    // schema positions, parallel to cols
	nEq    int      // leading columns with join-equality probes
	eqs    []Expr   // outer-side expressions, len nEq
}

// planJoinProbes fills plan.joins (forward probes, one per FROM item)
// and plan.revProbe (two-table swap candidate). Runs at plan build; the
// schema epoch invalidates it with the rest of the plan.
func planJoinProbes(plan *selectPlan) {
	s := plan.stmt
	if len(plan.tables) < 2 {
		return
	}
	plan.joins = make([]*joinProbe, len(plan.tables))
	width := len(plan.env.cols)
	for i := 1; i < len(plan.tables); i++ {
		t := plan.tables[i]
		innerLo, innerHi := t.start, t.start+len(t.schema.Cols)
		eqs := make(map[string]Expr)
		outerOK := func(e Expr) bool { return exprRefsWithin(e, 0, innerLo) }
		collectJoinEqs(s.From[i].JoinCond, t.schema, innerLo, innerHi, outerOK, eqs)
		collectJoinEqs(s.Where, t.schema, innerLo, innerHi, outerOK, eqs)
		plan.joins[i] = bestJoinProbe(t.data, eqs)
	}
	// Reverse probe: two-table inner join, table 0 as the probed side.
	if len(plan.tables) == 2 && !s.From[1].LeftJoin {
		t0, t1 := plan.tables[0], plan.tables[1]
		eqs := make(map[string]Expr)
		outerOK := func(e Expr) bool { return exprRefsWithin(e, t1.start, width) }
		collectJoinEqs(s.From[1].JoinCond, t0.schema, 0, t1.start, outerOK, eqs)
		collectJoinEqs(s.Where, t0.schema, 0, t1.start, outerOK, eqs)
		plan.revProbe = bestJoinProbe(t0.data, eqs)
	}
}

// exprRefsWithin reports whether every column reference in e falls in
// [lo, hi) and no aggregate appears — i.e. e is evaluable against the
// outer side alone.
func exprRefsWithin(e Expr, lo, hi int) bool {
	ok := true
	walkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *ColRef:
			if n.Index < lo || n.Index >= hi {
				ok = false
				return false
			}
		case *FuncCall:
			if isAggregate(n.Name) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// collectJoinEqs walks the top-level AND conjuncts of e, recording
// inner.col = outerExpr equalities (either operand order) into eqs.
// The inner side must be a bare bound ColRef in [innerLo, innerHi);
// first claim per column wins.
func collectJoinEqs(e Expr, schema *TableSchema, innerLo, innerHi int, outerOK func(Expr) bool, eqs map[string]Expr) {
	if e == nil {
		return
	}
	b, ok := e.(*Binary)
	if !ok {
		return
	}
	if b.Op == "AND" {
		collectJoinEqs(b.L, schema, innerLo, innerHi, outerOK, eqs)
		collectJoinEqs(b.R, schema, innerLo, innerHi, outerOK, eqs)
		return
	}
	if b.Op != "=" {
		return
	}
	try := func(inner, outer Expr) {
		cr, ok := inner.(*ColRef)
		if !ok || cr.Index < innerLo || cr.Index >= innerHi {
			return
		}
		if !outerOK(outer) {
			return
		}
		col := strings.ToUpper(schema.Cols[cr.Index-innerLo].Name)
		if _, dup := eqs[col]; !dup {
			eqs[col] = outer
		}
	}
	try(b.L, b.R)
	try(b.R, b.L)
}

// bestJoinProbe matches the collected equalities against the table's
// indexes: longest covered leading prefix wins, hash indexes need full
// coverage, ordered indexes serve any non-empty prefix. Index names are
// visited in sorted order so the choice is deterministic.
func bestJoinProbe(td *tableData, eqs map[string]Expr) *joinProbe {
	if len(eqs) == 0 {
		return nil
	}
	var best *joinProbe
	bestScore := 0
	for _, name := range td.indexNames() {
		idx := td.indexes[name]
		cols := idx.columns()
		_, ordered := idx.(rangeIndex)
		nEq := 0
		var probes []Expr
		for nEq < len(cols) {
			e := eqs[cols[nEq]]
			if e == nil {
				break
			}
			probes = append(probes, e)
			nEq++
		}
		if nEq == 0 || (!ordered && nEq < len(cols)) {
			continue
		}
		score := nEq * 10
		if !ordered {
			score += 5
		} else {
			score += 4
		}
		if score > bestScore {
			jp := &joinProbe{idx: name, cols: cols, nEq: nEq, eqs: probes}
			jp.colPos = make([]int, len(cols))
			for i, c := range cols {
				jp.colPos[i] = td.schema.ColIndex(c)
			}
			best = jp
			bestScore = score
		}
	}
	return best
}

// String renders the probe for EXPLAIN-style introspection.
func (p *joinProbe) String() string {
	return strings.Join(p.cols[:p.nEq], "+")
}

// probeJoin returns the probed table's candidate rows for the outer row
// currently in ctx.vals. handled=false means a probe value failed to
// evaluate or align with the indexed column's type; the caller must
// fall back to the exhaustive scan, which preserves exact semantics.
// Candidate slices alias live storage: callers must copy values out
// (the join row assembly does) and not hold them past the engine lock.
func probeJoin(td *tableData, p *joinProbe, ctx *evalCtx) (cands [][]sqltypes.Value, handled bool) {
	idx := td.indexes[p.idx]
	if idx == nil {
		return nil, false
	}
	var prefix []byte
	for j := 0; j < p.nEq; j++ {
		v, err := evalExpr(p.eqs[j], ctx)
		if err != nil {
			// Let the scanning path surface (or not surface) the
			// evaluation error exactly as before.
			return nil, false
		}
		if v.IsNull() {
			return nil, true // inner.col = NULL is UNKNOWN: no matches
		}
		pv, ok := probeValue(td.schema.Cols[p.colPos[j]].Type.Kind, v)
		if !ok {
			return nil, false
		}
		prefix = appendKey(prefix, pv)
	}
	defer func() { td.heapReads.Add(int64(len(cands))) }()
	collect := func(ids []rowID) bool {
		for _, id := range ids {
			if vals, live := td.fetch(id); live {
				cands = append(cands, vals)
			}
		}
		return true
	}
	if p.nEq == len(p.cols) {
		collect(idx.lookupKey(string(prefix)))
		return cands, true
	}
	rix, ok := idx.(rangeIndex)
	if !ok {
		return nil, false
	}
	lo := &keyBound{key: string(prefix), incl: true}
	hi := &keyBound{key: string(prefix) + keyRangeHiSentinel, incl: true}
	rix.scanRange(lo, hi, false, func(_ string, ids []rowID) bool {
		return collect(ids)
	})
	return cands, true
}
