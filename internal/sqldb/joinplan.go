package sqldb

import (
	"sort"
	"strings"

	"repro/internal/sqltypes"
)

// Index nested-loop joins.
//
// The executor joins FROM items left to right, and historically scanned
// the whole inner table once per accumulated outer row — a cross
// product narrowed only afterwards by the ON/WHERE predicates. The join
// planner recognises equality conjuncts of the form
//
//	inner.col = <expression over earlier tables (or constants)>
//
// in the joining ON condition and in the WHERE clause, matches them
// against the inner table's indexes (longest leading prefix, hash needs
// the full tuple), and records a joinProbe in the cached plan. At
// execution each outer row evaluates the outer-side expressions and
// probes the index instead of scanning — O(probe) per outer row instead
// of O(|inner|). Probes only narrow the candidate set: the ON condition
// is still evaluated on every candidate and the WHERE clause is applied
// after the join, so results are identical to the scanning path (which
// remains both the fallback when a probe cannot be aligned with the
// indexed column's type and the SetFullScanOnly oracle).
//
// LEFT JOIN keeps its semantics: a probe that finds no candidates
// produces the NULL-extended row, exactly as an exhaustive scan with no
// ON match would. WHERE-derived probes are safe there too — an
// equality conjunct on an inner column evaluates UNKNOWN on the
// NULL-extended row, so the post-join WHERE drops exactly the rows the
// scanning path would drop.
//
// For a two-table inner join the planner also prepares the reverse
// probe (table 0 as the probed side). The executor picks the probed
// side at run time: the indexed one, or — when both sides are indexed —
// the larger one, so the smaller table drives the outer loop.
//
// When equi-join conjuncts exist but NO index covers them, the planner
// records a hash-join fallback instead (hashJoinPlan below): the
// executor hashes the probed table once on the canonical join-key
// encoding and probes the map per outer row, replacing the cross
// product. The same run-time side choice applies — for a two-table
// inner join the hash table is built on the smaller side.
type joinProbe struct {
	idx    string   // index name on the probed (inner) table
	cols   []string // index columns
	colPos []int    // schema positions, parallel to cols
	nEq    int      // leading columns with join-equality probes
	eqs    []Expr   // outer-side expressions, len nEq
}

// hashJoinPlan is the hash-join fallback for a probed table whose
// equi-join conjuncts no index serves: at execution the table's rows
// are hashed once on the canonical encoding of the join columns
// (buildJoinHash) and each outer row probes the map (probeJoinHash) —
// O(|inner| + |outer|·probe) instead of the cross product's
// O(|inner|·|outer|). Candidate sets over-approximate exactly like
// index probes do (the far-integer key-collision window), and the ON
// condition is still evaluated on every candidate with the WHERE
// applied after the join, so results are identical to the scanning
// path — including LEFT JOIN NULL extension and the WHERE-derived
// probe argument spelled out above for index probes.
type hashJoinPlan struct {
	cols   []string         // join columns on the probed table, sorted
	colPos []int            // schema positions, parallel to cols
	kinds  []sqltypes.Kind  // declared column kinds, for probe alignment
	eqs    []Expr           // outer-side expressions, parallel to cols
}

// planJoinProbes fills plan.joins (forward probes, one per FROM item)
// and plan.revProbe (two-table swap candidate), plus the hash-join
// fallbacks (plan.hashJoins / plan.revHash) wherever equi-conjuncts
// exist but no index covers them. Runs at plan build; the schema epoch
// invalidates it with the rest of the plan.
func planJoinProbes(plan *selectPlan) {
	s := plan.stmt
	if len(plan.tables) < 2 {
		return
	}
	plan.joins = make([]*joinProbe, len(plan.tables))
	plan.hashJoins = make([]*hashJoinPlan, len(plan.tables))
	width := len(plan.env.cols)
	for i := 1; i < len(plan.tables); i++ {
		t := plan.tables[i]
		innerLo, innerHi := t.start, t.start+len(t.schema.Cols)
		eqs := make(map[string]Expr)
		outerOK := func(e Expr) bool { return exprRefsWithin(e, 0, innerLo) }
		collectJoinEqs(s.From[i].JoinCond, t.schema, innerLo, innerHi, outerOK, eqs)
		collectJoinEqs(s.Where, t.schema, innerLo, innerHi, outerOK, eqs)
		plan.joins[i] = bestJoinProbe(t.data, eqs)
		if plan.joins[i] == nil {
			plan.hashJoins[i] = newHashJoinPlan(t.schema, eqs)
		}
	}
	// Reverse probe: two-table inner join, table 0 as the probed side.
	if len(plan.tables) == 2 && !s.From[1].LeftJoin {
		t0, t1 := plan.tables[0], plan.tables[1]
		eqs := make(map[string]Expr)
		outerOK := func(e Expr) bool { return exprRefsWithin(e, t1.start, width) }
		collectJoinEqs(s.From[1].JoinCond, t0.schema, 0, t1.start, outerOK, eqs)
		collectJoinEqs(s.Where, t0.schema, 0, t1.start, outerOK, eqs)
		plan.revProbe = bestJoinProbe(t0.data, eqs)
		if plan.revProbe == nil {
			plan.revHash = newHashJoinPlan(t0.schema, eqs)
		}
	}
}

// newHashJoinPlan builds the hash-join fallback over every collected
// equi-conjunct (more columns mean a more selective key). Columns are
// sorted so the plan — and its AccessPath rendering — is deterministic.
func newHashJoinPlan(schema *TableSchema, eqs map[string]Expr) *hashJoinPlan {
	if len(eqs) == 0 {
		return nil
	}
	cols := make([]string, 0, len(eqs))
	for c := range eqs {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	hp := &hashJoinPlan{cols: cols}
	for _, c := range cols {
		ci := schema.ColIndex(c)
		hp.colPos = append(hp.colPos, ci)
		hp.kinds = append(hp.kinds, schema.Cols[ci].Type.Kind)
		hp.eqs = append(hp.eqs, eqs[c])
	}
	return hp
}

// String renders the hash-join key for EXPLAIN-style introspection.
func (hp *hashJoinPlan) String() string {
	return strings.Join(hp.cols, "+")
}

// buildJoinHash hashes the probed table's live rows by the canonical
// encoding of the join columns. Rows with a NULL join column never
// match any probe (the equality is UNKNOWN) and are left out. The
// stored row slices are referenced, not copied — the join row assembly
// copies values out under the engine lock, like every probe path. The
// build is a cancellation checkpoint and charges every retained entry
// (key bytes + a row reference) against the statement memory budget.
func buildJoinHash(td *tableData, hp *hashJoinPlan, ctx *evalCtx) (map[string][][]sqltypes.Value, error) {
	m := make(map[string][][]sqltypes.Value)
	var buf []byte
	var buildErr error
	td.scan(ctx.snap, func(_ rowID, vals []sqltypes.Value) bool {
		if buildErr = ctx.intr.check(); buildErr != nil {
			return false
		}
		buf = buf[:0]
		for _, p := range hp.colPos {
			if vals[p].IsNull() {
				return true // skip the row
			}
			buf = appendKey(buf, vals[p])
		}
		if buildErr = ctx.intr.charge(int64(len(buf)) + rowFootprint(0)); buildErr != nil {
			return false
		}
		k := string(buf)
		m[k] = append(m[k], vals)
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	return m, nil
}

// hashProber probes one prebuilt join hash table, reusing its key
// buffer across outer rows (one prober per executing join side — never
// shared between concurrent executions).
type hashProber struct {
	table map[string][][]sqltypes.Value
	hp    *hashJoinPlan
	buf   []byte
}

func newHashProber(td *tableData, hp *hashJoinPlan, ctx *evalCtx) (*hashProber, error) {
	table, err := buildJoinHash(td, hp, ctx)
	if err != nil {
		return nil, err
	}
	return &hashProber{table: table, hp: hp}, nil
}

// probe returns the candidate rows for the outer row currently in
// ctx.vals. Semantics mirror probeJoin: handled=false (evaluation or
// alignment failure) sends the caller to the exhaustive scan for this
// outer row; a NULL probe matches nothing.
func (p *hashProber) probe(ctx *evalCtx) (cands [][]sqltypes.Value, handled bool) {
	p.buf = p.buf[:0]
	for j, e := range p.hp.eqs {
		v, err := evalExpr(e, ctx)
		if err != nil {
			return nil, false
		}
		if v.IsNull() {
			return nil, true // inner.col = NULL is UNKNOWN: no matches
		}
		pv, ok := probeValue(p.hp.kinds[j], v)
		if !ok {
			return nil, false
		}
		p.buf = appendKey(p.buf, pv)
	}
	return p.table[string(p.buf)], true
}

// exprRefsWithin reports whether every column reference in e falls in
// [lo, hi) and no aggregate appears — i.e. e is evaluable against the
// outer side alone.
func exprRefsWithin(e Expr, lo, hi int) bool {
	ok := true
	walkExpr(e, func(x Expr) bool {
		switch n := x.(type) {
		case *ColRef:
			if n.Index < lo || n.Index >= hi {
				ok = false
				return false
			}
		case *FuncCall:
			if isAggregate(n.Name) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// collectJoinEqs walks the top-level AND conjuncts of e, recording
// inner.col = outerExpr equalities (either operand order) into eqs.
// The inner side must be a bare bound ColRef in [innerLo, innerHi);
// first claim per column wins.
func collectJoinEqs(e Expr, schema *TableSchema, innerLo, innerHi int, outerOK func(Expr) bool, eqs map[string]Expr) {
	if e == nil {
		return
	}
	b, ok := e.(*Binary)
	if !ok {
		return
	}
	if b.Op == "AND" {
		collectJoinEqs(b.L, schema, innerLo, innerHi, outerOK, eqs)
		collectJoinEqs(b.R, schema, innerLo, innerHi, outerOK, eqs)
		return
	}
	if b.Op != "=" {
		return
	}
	try := func(inner, outer Expr) {
		cr, ok := inner.(*ColRef)
		if !ok || cr.Index < innerLo || cr.Index >= innerHi {
			return
		}
		if !outerOK(outer) {
			return
		}
		col := strings.ToUpper(schema.Cols[cr.Index-innerLo].Name)
		if _, dup := eqs[col]; !dup {
			eqs[col] = outer
		}
	}
	try(b.L, b.R)
	try(b.R, b.L)
}

// bestJoinProbe matches the collected equalities against the table's
// indexes: longest covered leading prefix wins, hash indexes need full
// coverage, ordered indexes serve any non-empty prefix. Index names are
// visited in sorted order so the choice is deterministic.
func bestJoinProbe(td *tableData, eqs map[string]Expr) *joinProbe {
	if len(eqs) == 0 {
		return nil
	}
	var best *joinProbe
	bestScore := 0
	for _, name := range td.indexNames() {
		idx := td.indexes[name]
		cols := idx.columns()
		_, ordered := idx.(rangeIndex)
		nEq := 0
		var probes []Expr
		for nEq < len(cols) {
			e := eqs[cols[nEq]]
			if e == nil {
				break
			}
			probes = append(probes, e)
			nEq++
		}
		if nEq == 0 || (!ordered && nEq < len(cols)) {
			continue
		}
		score := nEq * 10
		if !ordered {
			score += 5
		} else {
			score += 4
		}
		if score > bestScore {
			jp := &joinProbe{idx: name, cols: cols, nEq: nEq, eqs: probes}
			jp.colPos = make([]int, len(cols))
			for i, c := range cols {
				jp.colPos[i] = td.schema.ColIndex(c)
			}
			best = jp
			bestScore = score
		}
	}
	return best
}

// String renders the probe for EXPLAIN-style introspection.
func (p *joinProbe) String() string {
	return strings.Join(p.cols[:p.nEq], "+")
}

// probeJoin returns the probed table's candidate rows for the outer row
// currently in ctx.vals. handled=false means a probe value failed to
// evaluate or align with the indexed column's type; the caller must
// fall back to the exhaustive scan, which preserves exact semantics.
// Candidate slices alias live storage: callers must copy values out
// (the join row assembly does) and not hold them past the engine lock.
func probeJoin(td *tableData, p *joinProbe, ctx *evalCtx) (cands [][]sqltypes.Value, handled bool) {
	idx := td.indexes[p.idx]
	if idx == nil {
		return nil, false
	}
	// One probe prefix is built per outer row: reuse the statement's key
	// buffer (the string conversions below copy) so the nested-loop probe
	// allocates nothing per row.
	prefix := ctx.keyBuf[:0]
	defer func() { ctx.keyBuf = prefix }()
	for j := 0; j < p.nEq; j++ {
		v, err := evalExpr(p.eqs[j], ctx)
		if err != nil {
			// Let the scanning path surface (or not surface) the
			// evaluation error exactly as before.
			return nil, false
		}
		if v.IsNull() {
			return nil, true // inner.col = NULL is UNKNOWN: no matches
		}
		pv, ok := probeValue(td.schema.Cols[p.colPos[j]].Type.Kind, v)
		if !ok {
			return nil, false
		}
		prefix = appendKey(prefix, pv)
	}
	defer func() { td.heapReads.Add(int64(len(cands))) }()
	collect := func(ids []rowID) bool {
		for _, id := range ids {
			if vals, live := td.fetch(id, ctx.snap); live {
				cands = append(cands, vals)
			}
		}
		return true
	}
	if p.nEq == len(p.cols) {
		collect(lookupVisible(td, idx, string(prefix), ctx.snap))
		return cands, true
	}
	rix, ok := idx.(rangeIndex)
	if !ok {
		return nil, false
	}
	lo := &keyBound{key: string(prefix), incl: true}
	hi := &keyBound{key: string(prefix) + keyRangeHiSentinel, incl: true}
	scanVisibleRange(td, rix, lo, hi, false, ctx.snap, func(_ string, ids []rowID) bool {
		return collect(ids)
	})
	return cands, true
}
