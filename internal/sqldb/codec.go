package sqldb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/sqltypes"
)

// Binary value codec shared by the WAL and the snapshot format.
// Layout: one kind byte, then a kind-specific payload:
//
//	NULL                  — nothing
//	INT/BOOL              — 8-byte little-endian two's complement
//	DOUBLE                — 8-byte IEEE-754 bits
//	TIMESTAMP             — 8-byte unix nanoseconds (UTC)
//	VARCHAR/CLOB/DATALINK — uvarint length + UTF-8 bytes
//	BLOB                  — uvarint length + raw bytes
//
// Timestamps outside the int64-nanosecond window (before 1678 or after
// 2262, where UnixNano is undefined) and the zero time use the
// farTimeTag kind byte with a 12-byte unix seconds + nanoseconds
// payload, so every instant sqltypes.Value can hold survives the
// WAL/snapshot round trip. The plain 8-byte form is kept for in-window
// values so existing logs stay readable.

// farTimeTag marks the extended TIMESTAMP encoding. It sits far above
// the sqltypes.Kind range, so it can never collide with a kind byte.
const farTimeTag = 0x80 | byte(sqltypes.KindTime)

func writeValue(w *bufio.Writer, v sqltypes.Value) error {
	kindByte := byte(v.Kind())
	farTime := false
	if v.Kind() == sqltypes.KindTime {
		t := v.Time()
		if farTime = t.IsZero() || !sqltypes.InNanoRange(t); farTime {
			kindByte = farTimeTag
		}
	}
	if err := w.WriteByte(kindByte); err != nil {
		return err
	}
	var buf [12]byte
	switch v.Kind() {
	case sqltypes.KindNull:
		return nil
	case sqltypes.KindInt, sqltypes.KindBool:
		binary.LittleEndian.PutUint64(buf[:8], uint64(v.Int()))
		_, err := w.Write(buf[:8])
		return err
	case sqltypes.KindDouble:
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(v.Double()))
		_, err := w.Write(buf[:8])
		return err
	case sqltypes.KindTime:
		t := v.Time()
		if farTime {
			binary.LittleEndian.PutUint64(buf[:8], uint64(t.Unix()))
			binary.LittleEndian.PutUint32(buf[8:], uint32(t.Nanosecond()))
			_, err := w.Write(buf[:12])
			return err
		}
		binary.LittleEndian.PutUint64(buf[:8], uint64(t.UnixNano()))
		_, err := w.Write(buf[:8])
		return err
	case sqltypes.KindString, sqltypes.KindClob, sqltypes.KindDatalink:
		return writeBytes(w, []byte(v.Str()))
	case sqltypes.KindBytes:
		return writeBytes(w, v.Bytes())
	default:
		return fmt.Errorf("sqldb: cannot encode value kind %d", v.Kind())
	}
}

func readValue(r *bufio.Reader) (sqltypes.Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return sqltypes.Null, err
	}
	if kb == farTimeTag {
		var buf [12]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return sqltypes.Null, err
		}
		sec := int64(binary.LittleEndian.Uint64(buf[:8]))
		nsec := int64(binary.LittleEndian.Uint32(buf[8:]))
		return sqltypes.NewTime(time.Unix(sec, nsec).UTC()), nil
	}
	kind := sqltypes.Kind(kb)
	var buf [8]byte
	switch kind {
	case sqltypes.KindNull:
		return sqltypes.Null, nil
	case sqltypes.KindInt, sqltypes.KindBool:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return sqltypes.Null, err
		}
		n := int64(binary.LittleEndian.Uint64(buf[:]))
		if kind == sqltypes.KindBool {
			return sqltypes.NewBool(n != 0), nil
		}
		return sqltypes.NewInt(n), nil
	case sqltypes.KindDouble:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewDouble(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case sqltypes.KindTime:
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewTime(time.Unix(0, int64(binary.LittleEndian.Uint64(buf[:]))).UTC()), nil
	case sqltypes.KindString, sqltypes.KindClob, sqltypes.KindDatalink:
		b, err := readBytes(r)
		if err != nil {
			return sqltypes.Null, err
		}
		switch kind {
		case sqltypes.KindClob:
			return sqltypes.NewClob(string(b)), nil
		case sqltypes.KindDatalink:
			return sqltypes.NewDatalink(string(b)), nil
		default:
			return sqltypes.NewString(string(b)), nil
		}
	case sqltypes.KindBytes:
		b, err := readBytes(r)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBytes(b), nil
	default:
		return sqltypes.Null, fmt.Errorf("sqldb: corrupt value kind %d", kb)
	}
}

func writeBytes(w *bufio.Writer, b []byte) error {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(b)))
	if _, err := w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.Write(b)
	return err
}

func readBytes(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("sqldb: corrupt length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

func writeString(w *bufio.Writer, s string) error { return writeBytes(w, []byte(s)) }

func readString(r *bufio.Reader) (string, error) {
	b, err := readBytes(r)
	return string(b), err
}

func writeUint64(w *bufio.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readUint64(r *bufio.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeRow(w *bufio.Writer, vals []sqltypes.Value) error {
	if err := writeUint64(w, uint64(len(vals))); err != nil {
		return err
	}
	for _, v := range vals {
		if err := writeValue(w, v); err != nil {
			return err
		}
	}
	return nil
}

func readRow(r *bufio.Reader) ([]sqltypes.Value, error) {
	n, err := readUint64(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<20 {
		return nil, fmt.Errorf("sqldb: corrupt row width %d", n)
	}
	vals := make([]sqltypes.Value, n)
	for i := range vals {
		vals[i], err = readValue(r)
		if err != nil {
			return nil, err
		}
	}
	return vals, nil
}
