package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/sqltypes"
)

// arenaFixture builds a deterministic multi-table dataset that exercises
// every result-path shape: single-table scans, index paths, joins,
// grouped and fold aggregates, sorts and top-k.
func arenaFixture(t *testing.T, db *DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE sim (id INTEGER PRIMARY KEY, name VARCHAR(30), bucket INTEGER, score DOUBLE, ok BOOLEAN)`)
	mustExec(t, db, `CREATE TABLE run (rid INTEGER PRIMARY KEY, sim_id INTEGER, cost DOUBLE)`)
	ins, err := db.Prepare(`INSERT INTO sim VALUES (?, ?, ?, ?, ?)`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for i := 0; i < 500; i++ {
		if _, err := ins.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%03d", i%97)),
			sqltypes.NewInt(int64(i%7)),
			sqltypes.NewDouble(float64(i)*0.25),
			sqltypes.NewBool(i%3 == 0),
		); err != nil {
			t.Fatalf("insert sim %d: %v", i, err)
		}
	}
	insRun, err := db.Prepare(`INSERT INTO run VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	for i := 0; i < 200; i++ {
		if _, err := insRun.Exec(
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i*2%500)),
			sqltypes.NewDouble(float64(i)+0.5),
		); err != nil {
			t.Fatalf("insert run %d: %v", i, err)
		}
	}
}

// arenaShapes are the query shapes whose results must be byte-identical
// between the arena/columnar path and the legacy per-row make path.
var arenaShapes = []struct {
	name string
	sql  string
}{
	{"projection", `SELECT id, name, score FROM sim WHERE ok = TRUE`},
	{"star", `SELECT * FROM sim WHERE bucket = 3`},
	{"expr-proj", `SELECT id + 1, score * 2.0, name FROM sim WHERE id < 200`},
	{"sort", `SELECT id, name FROM sim WHERE bucket < 4 ORDER BY name, id DESC`},
	{"topk", `SELECT id, score FROM sim ORDER BY score DESC LIMIT 10`},
	{"limit-offset", `SELECT id FROM sim WHERE ok = TRUE LIMIT 25 OFFSET 5`},
	{"limit-no-order", `SELECT id, bucket FROM sim LIMIT 40`},
	{"distinct", `SELECT DISTINCT bucket FROM sim ORDER BY bucket`},
	{"group", `SELECT bucket, COUNT(*), SUM(score) FROM sim GROUP BY bucket ORDER BY bucket`},
	{"fold", `SELECT COUNT(*), MIN(score), MAX(score) FROM sim WHERE ok = TRUE`},
	{"having", `SELECT name, COUNT(*) FROM sim GROUP BY name HAVING COUNT(*) > 4 ORDER BY name`},
	{"join", `SELECT sim.id, sim.name, run.cost FROM sim, run WHERE sim.id = run.sim_id AND sim.ok = TRUE ORDER BY run.rid`},
	{"group-limit", `SELECT bucket, COUNT(*) FROM sim GROUP BY bucket ORDER BY COUNT(*) DESC LIMIT 3`},
}

func rowsMustEqual(t *testing.T, name string, got, want *Rows) {
	t.Helper()
	if len(got.Columns) != len(want.Columns) {
		t.Fatalf("%s: columns %v != %v", name, got.Columns, want.Columns)
	}
	if len(got.Data) != len(want.Data) {
		t.Fatalf("%s: %d rows, want %d", name, len(got.Data), len(want.Data))
	}
	for i := range got.Data {
		if len(got.Data[i]) != len(want.Data[i]) {
			t.Fatalf("%s row %d: width %d != %d", name, i, len(got.Data[i]), len(want.Data[i]))
		}
		for j := range got.Data[i] {
			if !got.Data[i][j].Equal(want.Data[i][j]) {
				t.Fatalf("%s row %d col %d: %s != %s", name, i, j,
					got.Data[i][j].String(), want.Data[i][j].String())
			}
		}
	}
}

// TestArenaLegacyEquivalence checks the arena/columnar result path
// produces exactly the same rows as the legacy per-row allocation path
// across projections, sorts, top-k, LIMIT without ORDER BY (both paths
// scan in the same deterministic order, so early-stop picks identical
// rows), DISTINCT, joins and aggregates.
func TestArenaLegacyEquivalence(t *testing.T) {
	db := memDB(t)
	arenaFixture(t, db)
	for _, shape := range arenaShapes {
		db.SetLegacyResultAlloc(true)
		want := mustQuery(t, db, shape.sql)
		want.Detach()
		db.SetLegacyResultAlloc(false)
		got := mustQuery(t, db, shape.sql)
		got.Detach()
		rowsMustEqual(t, shape.name, got, want)
		got.Close()
		want.Close()
	}
}

// TestArenaDetachSurvivesReuse: Detach must copy rows out of the arena
// so they stay valid after Close returns the chunks to the pool and
// later statements reuse them.
func TestArenaDetachSurvivesReuse(t *testing.T) {
	db := memDB(t)
	arenaFixture(t, db)

	detached := mustQuery(t, db, `SELECT id, name, score FROM sim WHERE bucket = 2 ORDER BY id`)
	detached.Detach()
	snapshot := make([][]string, len(detached.Data))
	for i, row := range detached.Data {
		snapshot[i] = []string{row[0].String(), row[1].String(), row[2].String()}
	}
	detached.Close() // must be a no-op for detached rows' data

	// Churn the chunk pool hard: these queries allocate and release
	// arenas that would alias the detached rows if Detach had not
	// copied them out.
	for i := 0; i < 50; i++ {
		r := mustQuery(t, db, `SELECT * FROM sim`)
		for ri := range r.Data {
			for ci := range r.Data[ri] {
				r.Data[ri][ci] = sqltypes.NewString("CLOBBER")
			}
		}
		r.Close()
	}

	if len(detached.Data) != len(snapshot) {
		t.Fatalf("detached rows shrank: %d != %d", len(detached.Data), len(snapshot))
	}
	for i, row := range detached.Data {
		for j := range row {
			if row[j].String() != snapshot[i][j] {
				t.Fatalf("detached row %d col %d corrupted: %s != %s", i, j, row[j].String(), snapshot[i][j])
			}
		}
	}

	// Close is idempotent and nil-safe.
	detached.Close()
	detached.Close()
	var nilRows *Rows
	nilRows.Close()
}

// TestArenaConcurrentQueries runs many readers against the arena path
// while a writer mutates the table, under -race. Each reader verifies a
// per-row invariant (score == id * 0.25) that chunk-reuse corruption
// would break.
func TestArenaConcurrentQueries(t *testing.T) {
	db := memDB(t)
	arenaFixture(t, db)

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 500; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := db.Exec(`INSERT INTO sim VALUES (?, 'W', 0, ?, FALSE)`,
				sqltypes.NewInt(int64(i)), sqltypes.NewDouble(float64(i)*0.25)); err != nil {
				t.Errorf("writer insert: %v", err)
				return
			}
		}
	}()

	const readers = 8
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 60; n++ {
				rows, err := db.Query(`SELECT id, score FROM sim WHERE ok = TRUE ORDER BY id LIMIT 50`)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				for _, row := range rows.Data {
					id, score := row[0].Int(), row[1].Double()
					if score != float64(id)*0.25 {
						t.Errorf("row invariant broken: id=%d score=%v", id, score)
						rows.Close()
						return
					}
				}
				rows.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
}
