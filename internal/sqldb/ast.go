package sqldb

import (
	"strings"

	"repro/internal/sqltypes"
)

// Statement is any parsed SQL statement (the AST root).
type Statement interface{ stmtNode() }

// CreateTableStmt is CREATE TABLE.
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Cols        []ColumnDef
	PrimaryKey  []string
	Uniques     [][]string
	ForeignKeys []ForeignKeyDef
}

// ColumnDef is one column definition inside CREATE TABLE.
type ColumnDef struct {
	Name    string
	Type    sqltypes.TypeInfo
	NotNull bool
	Default *sqltypes.Value // literal defaults only
	// Inline single-column constraint sugar, folded into the table-level
	// lists by the parser: PRIMARY KEY, UNIQUE, REFERENCES t(c).
}

// ForeignKeyDef is FOREIGN KEY (cols) REFERENCES table (cols).
type ForeignKeyDef struct {
	Cols     []string
	RefTable string
	RefCols  []string
}

// DropTableStmt is DROP TABLE.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

// CreateIndexStmt is CREATE INDEX name ON table (col, ...) [USING kind].
// Using is "HASH", "ORDERED" or "" (which defaults to ORDERED: it
// serves equality plus the range/prefix/ORDER BY shapes that dominate
// the archive's metadata queries). Multi-column indexes key on the
// concatenated canonical encoding of the columns in declaration order;
// a HASH index then serves only full-tuple equality, while an ORDERED
// index additionally serves any leading-prefix shape.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Using   string
}

// DropIndexStmt is DROP INDEX name.
type DropIndexStmt struct{ Name string }

// InsertStmt is INSERT INTO table [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table string
	Cols  []string // empty means all columns in declaration order
	Rows  [][]Expr
}

// UpdateStmt is UPDATE table SET col=expr, ... [WHERE expr].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr // nil means all rows
}

// SetClause is one col=expr assignment.
type SetClause struct {
	Col  string
	Expr Expr
}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Expr
}

// SelectStmt is a (possibly joined, grouped, ordered) query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem // nested-loop join order; empty for SELECT <exprs>
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 = none
	Offset   int
}

// SelectItem is one projected expression. Star selects every column of
// every FROM table (or of the named table for "t.*").
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // for "t.*"
}

// FromItem is one table reference with optional alias and join condition.
// The first FromItem has JoinCond nil; subsequent items are inner or left
// joins against the running row.
type FromItem struct {
	Table    string
	Alias    string
	LeftJoin bool
	JoinCond Expr // nil for the first item or comma joins
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// TxStmt is BEGIN/COMMIT/ROLLBACK issued as SQL text.
type TxStmt struct{ Op string }

func (*CreateTableStmt) stmtNode() {}
func (*DropTableStmt) stmtNode()   {}
func (*CreateIndexStmt) stmtNode() {}
func (*DropIndexStmt) stmtNode()   {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*SelectStmt) stmtNode()      {}
func (*TxStmt) stmtNode()          {}

// Expr is a scalar expression tree node.
type Expr interface{ exprNode() }

// Literal is a constant value.
type Literal struct{ Val sqltypes.Value }

// ColRef references a column, optionally qualified ("t.c"). The binder
// fills Index with the offset into the runtime row.
type ColRef struct {
	Table string
	Col   string
	Index int // -1 until bound
}

// Param is a positional placeholder '?' bound at execution time.
type Param struct{ N int }

// Binary is a binary operator: = <> < <= > >= + - * / % || AND OR LIKE.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary is NOT or unary minus.
type Unary struct {
	Op string // "NOT", "-"
	X  Expr
}

// FuncCall is a scalar or aggregate function invocation.
type FuncCall struct {
	Name string // upper-cased
	Args []Expr
	Star bool // COUNT(*)
}

// InExpr is x [NOT] IN (list).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*Literal) exprNode()     {}
func (*ColRef) exprNode()      {}
func (*Param) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Unary) exprNode()       {}
func (*FuncCall) exprNode()    {}
func (*InExpr) exprNode()      {}
func (*BetweenExpr) exprNode() {}
func (*IsNullExpr) exprNode()  {}

// exprLabel derives the result-column name for an unaliased projection,
// mirroring the usual engine behaviour (column name for refs, upper-cased
// function name otherwise).
func exprLabel(e Expr) string {
	switch x := e.(type) {
	case *ColRef:
		return strings.ToUpper(x.Col)
	case *FuncCall:
		return x.Name
	default:
		return "EXPR"
	}
}

// walkExpr visits e and all children in preorder. The visitor returns
// false to prune descent.
func walkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *Binary:
		walkExpr(x.L, f)
		walkExpr(x.R, f)
	case *Unary:
		walkExpr(x.X, f)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, f)
		}
	case *InExpr:
		walkExpr(x.X, f)
		for _, a := range x.List {
			walkExpr(a, f)
		}
	case *BetweenExpr:
		walkExpr(x.X, f)
		walkExpr(x.Lo, f)
		walkExpr(x.Hi, f)
	case *IsNullExpr:
		walkExpr(x.X, f)
	}
}
