package sqldb

import (
	"time"

	"repro/internal/telemetry"
)

// dbMetrics holds the engine's telemetry registry and the hot-path
// metric handles, resolved once at Open so instrumentation sites pay an
// atomic add, not a registry lookup. Metric families:
//
//	sqldb_wal_fsync_ns                 histogram  WAL flush write+fsync latency
//	sqldb_wal_group_commit_batch       histogram  transactions drained per flush
//	sqldb_wal_poison_total             counter    flush failures that poisoned the log
//	sqldb_commits_total                counter    committed transactions
//	sqldb_plan_cache_hits_total        counter    statement-cache hits
//	sqldb_plan_cache_misses_total      counter    statement-cache misses (parse+bind)
//	sqldb_plan_cache_entries           gauge      statements currently cached
//	sqldb_latch_wait_ns                histogram  sharded-write per-table latch wait
//	sqldb_barrier_wait_ns              histogram  exclusive-barrier acquisition wait
//	sqldb_vacuum_pass_ns               histogram  vacuum pass duration
//	sqldb_vacuum_passes_total          counter    completed vacuum passes
//	sqldb_vacuum_rows_reclaimed_total  counter    dead versions+entries reclaimed
//	sqldb_autovacuum_triggers_total    counter    background vacuums started
//	sqldb_dead_rows                    gauge      dead-version debt awaiting vacuum
//	sqldb_snapshot_age_ns              gauge      age of the newest commit stamp
//	sqldb_slow_queries_total           counter    statements over the trace threshold
//	sqldb_statements_canceled_total    counter    statements stopped by cancellation
//	sqldb_statements_timed_out_total   counter    statements stopped by their deadline
//	sqldb_statements_shed_total        counter    statements rejected at admission
//	sqldb_admission_wait_ns            histogram  time queued statements waited for a slot
//	sqldb_admission_queue_depth        gauge      statements currently queued for admission
//	sqldb_mem_budget_rejected_total    counter    statements stopped by the memory budget
//	sqldb_mem_budget_bytes_in_use      gauge      bytes charged against the memory budget
//	sqldb_result_cache_hits_total      counter    result-cache hits (statement not re-executed)
//	sqldb_result_cache_misses_total    counter    result-cache misses on cacheable statements
//	sqldb_result_cache_evictions_total counter    entries evicted by LRU capacity pressure
//	sqldb_result_cache_invalidations_total counter entries dropped by table writes
//	sqldb_result_cache_bytes           gauge      bytes currently held by the result cache
type dbMetrics struct {
	reg *telemetry.Registry

	walFsyncNs  *telemetry.Histogram
	walBatch    *telemetry.Histogram
	walPoison   *telemetry.Counter
	commits     *telemetry.Counter
	planHits    *telemetry.Counter
	planMisses  *telemetry.Counter
	latchWaitNs *telemetry.Histogram
	barrierNs   *telemetry.Histogram
	vacuumNs    *telemetry.Histogram
	vacuumPass  *telemetry.Counter
	vacuumRows  *telemetry.Counter
	autoVacuum  *telemetry.Counter
	slowQueries *telemetry.Counter

	stmtCanceled    *telemetry.Counter
	stmtTimedOut    *telemetry.Counter
	stmtShed        *telemetry.Counter
	admissionWaitNs *telemetry.Histogram
	memRejected     *telemetry.Counter

	rcHits          *telemetry.Counter
	rcMisses        *telemetry.Counter
	rcEvicts        *telemetry.Counter
	rcInvalidations *telemetry.Counter
}

// newDBMetrics builds the registry and registers the engine's metric
// set, including the callback gauges that read live engine state at
// scrape time.
func newDBMetrics(db *DB) *dbMetrics {
	reg := telemetry.New()
	m := &dbMetrics{
		reg:         reg,
		walFsyncNs:  reg.Histogram("sqldb_wal_fsync_ns", "WAL flush write+fsync latency in nanoseconds."),
		walBatch:    reg.Histogram("sqldb_wal_group_commit_batch", "Transactions drained per WAL group-commit flush."),
		walPoison:   reg.Counter("sqldb_wal_poison_total", "WAL flush failures that poisoned the database."),
		commits:     reg.Counter("sqldb_commits_total", "Committed transactions."),
		planHits:    reg.Counter("sqldb_plan_cache_hits_total", "Plan-cache hits."),
		planMisses:  reg.Counter("sqldb_plan_cache_misses_total", "Plan-cache misses (full parse and bind)."),
		latchWaitNs: reg.Histogram("sqldb_latch_wait_ns", "Sharded-write per-table latch acquisition wait in nanoseconds."),
		barrierNs:   reg.Histogram("sqldb_barrier_wait_ns", "Exclusive global-barrier acquisition wait in nanoseconds."),
		vacuumNs:    reg.Histogram("sqldb_vacuum_pass_ns", "Vacuum pass duration in nanoseconds."),
		vacuumPass:  reg.Counter("sqldb_vacuum_passes_total", "Completed vacuum passes."),
		vacuumRows:  reg.Counter("sqldb_vacuum_rows_reclaimed_total", "Dead row versions and index entries reclaimed by vacuum."),
		autoVacuum:  reg.Counter("sqldb_autovacuum_triggers_total", "Background auto-vacuum passes triggered."),
		slowQueries: reg.Counter("sqldb_slow_queries_total", "Statements that exceeded the trace threshold."),

		stmtCanceled:    reg.Counter("sqldb_statements_canceled_total", "Statements stopped by context cancellation or shutdown."),
		stmtTimedOut:    reg.Counter("sqldb_statements_timed_out_total", "Statements stopped by their deadline."),
		stmtShed:        reg.Counter("sqldb_statements_shed_total", "Statements rejected at admission (queue full)."),
		admissionWaitNs: reg.Histogram("sqldb_admission_wait_ns", "Time queued statements waited for an admission slot in nanoseconds."),
		memRejected:     reg.Counter("sqldb_mem_budget_rejected_total", "Statements stopped by the memory budget."),

		rcHits:          reg.Counter("sqldb_result_cache_hits_total", "Result-cache hits (statement answered without execution)."),
		rcMisses:        reg.Counter("sqldb_result_cache_misses_total", "Result-cache misses on cacheable statements."),
		rcEvicts:        reg.Counter("sqldb_result_cache_evictions_total", "Result-cache entries evicted by LRU capacity pressure."),
		rcInvalidations: reg.Counter("sqldb_result_cache_invalidations_total", "Result-cache entries dropped by table writes."),
	}
	reg.GaugeFunc("sqldb_dead_rows", "Dead row versions and index entries awaiting vacuum.", db.deadRowDebt)
	reg.GaugeFunc("sqldb_snapshot_age_ns", "Age of the newest published commit stamp in nanoseconds.", func() int64 {
		last := db.lastCommitWall.Load()
		if last == 0 {
			return 0
		}
		return time.Now().UnixNano() - last
	})
	reg.GaugeFunc("sqldb_plan_cache_entries", "Statements currently held by the plan cache.", func() int64 {
		return int64(db.plans.len())
	})
	reg.GaugeFunc("sqldb_admission_queue_depth", "Statements currently queued for admission.", func() int64 {
		return db.admitWaiting.Load()
	})
	reg.GaugeFunc("sqldb_mem_budget_bytes_in_use", "Bytes currently charged against the statement memory budget.", func() int64 {
		return db.memUsed.Load()
	})
	reg.GaugeFunc("sqldb_result_cache_bytes", "Bytes currently held by the result cache.", func() int64 {
		if rc := db.rcache.Load(); rc != nil {
			return rc.bytesUsed()
		}
		return 0
	})
	return m
}

// walMetrics returns the handle set the WAL writer records into.
func (m *dbMetrics) walMetrics() walMetrics {
	return walMetrics{fsyncNs: m.walFsyncNs, batch: m.walBatch, poison: m.walPoison}
}

// deadRowDebt sums the dead-version debt across all tables — the
// quantity auto-vacuum triggers on.
func (db *DB) deadRowDebt() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var dead int64
	for _, td := range db.data {
		dead += td.dead.Load()
	}
	return dead
}

// Metrics exposes the engine's telemetry registry — mount
// Metrics().Handler() to serve Prometheus text format, or use
// MetricsSnapshot for programmatic access.
func (db *DB) Metrics() *telemetry.Registry { return db.met.reg }

// MetricsSnapshot captures every engine metric (counters, gauges and
// histogram percentile summaries) for tests, status pages and bench
// tooling.
func (db *DB) MetricsSnapshot() []telemetry.Metric { return db.met.reg.Snapshot() }
