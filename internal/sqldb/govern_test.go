package sqldb

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// governDB opens an in-memory database under the given governance
// options and seeds `big` with rows rows across sims distinct SIM
// values. Row count must comfortably exceed the interrupt stride (256)
// so every streaming loop crosses at least one cancellation checkpoint.
func governDB(t testing.TB, opts Options, rows, sims int) *DB {
	t.Helper()
	db, err := OpenWith("", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() }) //nolint:errcheck // idempotent
	if _, err := db.Exec(`CREATE TABLE big (id INTEGER PRIMARY KEY, sim VARCHAR(30), v INTEGER)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if _, err := db.Exec(`INSERT INTO big VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%05d", i%sims)),
			sqltypes.NewInt(int64(i%97))); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// longJoinSQL is the canonical long-running statement: an unindexable
// cross join whose predicate never holds, so it burns through every
// row pair hitting interrupt checkpoints without materialising output.
const longJoinSQL = `SELECT COUNT(*) FROM big a, big b WHERE a.v + b.v < 0`

func counterValue(t *testing.T, db *DB, name string) int64 {
	t.Helper()
	m, ok := db.Metrics().Find(name)
	if !ok {
		t.Fatalf("metric %s not registered", name)
	}
	return m.Value
}

// TestCancelShapes drives a canceled context through each streaming
// shape — heap scan, hash aggregation, group fold, sort, hash join,
// nested-loop join — and requires the distinguishable ErrCanceled,
// followed by the identical statement succeeding on a live context
// with the same result as an untouched run.
func TestCancelShapes(t *testing.T) {
	db := governDB(t, Options{}, 2000, 50)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	shapes := []struct{ name, sql string }{
		{"heap-scan", `SELECT id FROM big WHERE v < 90`},
		{"hash-agg", `SELECT sim, COUNT(*), SUM(v) FROM big GROUP BY sim`},
		{"agg-fold", `SELECT COUNT(*), SUM(v) FROM big WHERE v < 96`},
		{"sort", `SELECT id, v FROM big ORDER BY v, id`},
		{"hash-join", `SELECT COUNT(*) FROM big a, big b WHERE a.sim = b.sim`},
		{"nested-loop", `SELECT COUNT(*) FROM big a, big b WHERE a.v + b.v < 2`},
	}
	for _, s := range shapes {
		t.Run(s.name, func(t *testing.T) {
			if _, err := db.QueryContext(canceled, s.sql); !errors.Is(err, ErrCanceled) {
				t.Fatalf("canceled %s: err = %v, want ErrCanceled", s.name, err)
			}
			want, err := db.Query(s.sql)
			if err != nil {
				t.Fatalf("%s after cancel: %v", s.name, err)
			}
			got, err := db.QueryContext(context.Background(), s.sql)
			if err != nil {
				t.Fatalf("%s on live context after cancel: %v", s.name, err)
			}
			if len(got.Data) != len(want.Data) {
				t.Fatalf("%s: %d rows after cancellation, want %d", s.name, len(got.Data), len(want.Data))
			}
		})
	}
	if c := counterValue(t, db, "sqldb_statements_canceled_total"); c < int64(len(shapes)) {
		t.Fatalf("sqldb_statements_canceled_total = %d, want >= %d", c, len(shapes))
	}
}

// TestCancelMidStatementLatency is the acceptance-criterion timing
// check: a statement canceled mid-flight returns ErrCanceled within
// 50ms of the cancel, and the identical statement then succeeds.
func TestCancelMidStatementLatency(t *testing.T) {
	db := governDB(t, Options{}, 1500, 50)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(ctx, longJoinSQL)
		errCh <- err
	}()
	// 1500x1500 pairs keep the join busy for hundreds of milliseconds;
	// 30ms in, it is deep inside the nested loop.
	time.Sleep(30 * time.Millisecond)
	start := time.Now()
	cancel()
	err := <-errCh
	latency := time.Since(start)
	if err == nil {
		t.Fatal("long join completed before the cancel — enlarge the table")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-statement cancel: err = %v, want ErrCanceled", err)
	}
	if latency > 50*time.Millisecond {
		t.Fatalf("cancel-to-return latency %v, want <= 50ms", latency)
	}
	// The identical statement succeeds on a fresh context: no poison,
	// no leaked latch, no stuck admission slot.
	rows, err := db.QueryContext(context.Background(), longJoinSQL)
	if err != nil {
		t.Fatalf("identical statement after cancel: %v", err)
	}
	if rows.Data[0][0].Int() != 0 {
		t.Fatalf("join matched %d rows, want 0", rows.Data[0][0].Int())
	}
}

// TestCancelDMLPreWALNoEffect: DML canceled before its WAL frames are
// staged unwinds through the MVCC abort path and leaves zero visible
// change; the identical statement then succeeds in full. This is the
// documented cancellation boundary (govern.go).
func TestCancelDMLPreWALNoEffect(t *testing.T) {
	db := governDB(t, Options{}, 600, 10)
	canceled, cancel := context.WithCancel(context.Background())
	cancel()

	sumBefore := mustInt(t, db, `SELECT SUM(v) FROM big`)
	countBefore := mustInt(t, db, `SELECT COUNT(*) FROM big`)

	if _, err := db.ExecContext(canceled, `UPDATE big SET v = v + 1`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled UPDATE: %v, want ErrCanceled", err)
	}
	if _, err := db.ExecContext(canceled, `DELETE FROM big WHERE v < 97`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled DELETE: %v, want ErrCanceled", err)
	}
	if _, err := db.ExecContext(canceled, `INSERT INTO big VALUES (?, ?, ?)`,
		sqltypes.NewInt(999999), sqltypes.NewString("SX"), sqltypes.NewInt(1)); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled INSERT: %v, want ErrCanceled", err)
	}

	if got := mustInt(t, db, `SELECT SUM(v) FROM big`); got != sumBefore {
		t.Fatalf("canceled UPDATE leaked: SUM(v) %d -> %d", sumBefore, got)
	}
	if got := mustInt(t, db, `SELECT COUNT(*) FROM big`); got != countBefore {
		t.Fatalf("canceled INSERT/DELETE leaked: COUNT %d -> %d", countBefore, got)
	}

	// Identical statements on a live context succeed in full.
	res, err := db.ExecContext(context.Background(), `UPDATE big SET v = v + 1`)
	if err != nil {
		t.Fatalf("UPDATE after canceled attempt: %v", err)
	}
	if int64(res.RowsAffected) != countBefore {
		t.Fatalf("UPDATE touched %d rows, want %d", res.RowsAffected, countBefore)
	}
	if got := mustInt(t, db, `SELECT SUM(v) FROM big`); got != sumBefore+countBefore {
		t.Fatalf("post-cancel UPDATE: SUM(v) = %d, want %d", got, sumBefore+countBefore)
	}
}

func mustInt(t *testing.T, db *DB, sql string) int64 {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return rows.Data[0][0].Int()
}

// TestStatementDeadlines covers both deadline sources — the
// per-database SetStatementTimeout default and an explicit context
// deadline — and then proves a deadline-killed read left no latch
// behind: DML (table write latch) and DDL (exclusive engine lock)
// both succeed immediately afterwards.
func TestStatementDeadlines(t *testing.T) {
	db := governDB(t, Options{}, 1200, 50)

	db.SetStatementTimeout(2 * time.Millisecond)
	if _, err := db.QueryContext(context.Background(), longJoinSQL); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("SetStatementTimeout kill: %v, want ErrDeadlineExceeded", err)
	}
	db.SetStatementTimeout(0)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	if _, err := db.QueryContext(ctx, longJoinSQL); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("context deadline kill: %v, want ErrDeadlineExceeded", err)
	}
	if c := counterValue(t, db, "sqldb_statements_timed_out_total"); c < 2 {
		t.Fatalf("sqldb_statements_timed_out_total = %d, want >= 2", c)
	}

	// Latch-free: the write latch and the exclusive engine lock are
	// both immediately acquirable after the deadline kills.
	if _, err := db.Exec(`UPDATE big SET v = v + 1 WHERE id = 7`); err != nil {
		t.Fatalf("DML after deadline kill: %v", err)
	}
	if _, err := db.Exec(`CREATE INDEX big_v ON big (v)`); err != nil {
		t.Fatalf("DDL after deadline kill: %v", err)
	}
	if got := mustInt(t, db, `SELECT COUNT(*) FROM big WHERE v >= 0`); got != 1200 {
		t.Fatalf("post-deadline read: %d rows, want 1200", got)
	}
}

// TestMemoryBudget: a hash aggregation over more groups than the
// budget allows fails with ErrMemoryBudget (instead of growing without
// bound), the pool drains back to zero, and budget-friendly statements
// on the same database keep working.
func TestMemoryBudget(t *testing.T) {
	// 2000 distinct SIM values: the hash-agg table alone wants
	// ~2000 x (key + groupFootprint) >> 8KB.
	db := governDB(t, Options{MemoryBudget: 8 << 10}, 2000, 2000)

	_, err := db.QueryContext(context.Background(), `SELECT sim, COUNT(*) FROM big GROUP BY sim`)
	if !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("hash-agg over budget: %v, want ErrMemoryBudget", err)
	}
	if _, err := db.QueryContext(context.Background(), `SELECT id, sim, v FROM big ORDER BY v, id`); !errors.Is(err, ErrMemoryBudget) {
		t.Fatalf("sort buffer over budget: %v, want ErrMemoryBudget", err)
	}
	if used := db.MemoryInUse(); used != 0 {
		t.Fatalf("MemoryInUse = %d after failed statements, want 0 (pool leak)", used)
	}
	if c := counterValue(t, db, "sqldb_mem_budget_rejected_total"); c < 2 {
		t.Fatalf("sqldb_mem_budget_rejected_total = %d, want >= 2", c)
	}
	// A single-group fold buffers almost nothing and stays admissible.
	if got := mustInt(t, db, `SELECT COUNT(*) FROM big`); got != 2000 {
		t.Fatalf("budget-friendly query after rejections: %d, want 2000", got)
	}
	if used := db.MemoryInUse(); used != 0 {
		t.Fatalf("MemoryInUse = %d after successful statement, want 0", used)
	}
}

// TestAdmissionQueueThenShed is the overload acceptance criterion:
// MaxConcurrentStatements=N under 4N concurrent clients admits N,
// queues up to the bound, and sheds the rest with ErrAdmissionRejected
// — goroutines never pile up behind the semaphore.
func TestAdmissionQueueThenShed(t *testing.T) {
	const n = 2 // 4N = 8 clients
	db := governDB(t, Options{MaxConcurrentStatements: n, AdmissionQueue: 1}, 1500, 50)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errs := make(chan error, 4*n)
	for i := 0; i < 4*n; i++ {
		go func() {
			_, err := db.QueryContext(ctx, longJoinSQL)
			errs <- err
		}()
	}

	// Sheds return immediately; admitted and queued statements block on
	// the long join until the cancel below. With 2 slots + 1 queue
	// entry, at least 5 of the 8 must shed.
	var shed, canceled, other int
	collected := 0
	deadline := time.After(10 * time.Second)
	for collected < 5 {
		select {
		case err := <-errs:
			collected++
			classifyAdmissionErr(t, err, &shed, &canceled, &other)
		case <-deadline:
			t.Fatalf("only %d of the expected sheds returned (shed=%d canceled=%d)", collected, shed, canceled)
		}
	}
	cancel()
	for collected < 4*n {
		select {
		case err := <-errs:
			collected++
			classifyAdmissionErr(t, err, &shed, &canceled, &other)
		case <-time.After(10 * time.Second):
			t.Fatalf("statements hung after cancel: %d/%d returned", collected, 4*n)
		}
	}
	if other != 0 {
		t.Fatalf("unexpected error class under overload (shed=%d canceled=%d other=%d)", shed, canceled, other)
	}
	if shed < 5 {
		t.Fatalf("shed %d of %d, want >= 5 (N admitted + 1 queued at most)", shed, 4*n)
	}
	if got := counterValue(t, db, "sqldb_statements_shed_total"); got != int64(shed) {
		t.Fatalf("sqldb_statements_shed_total = %d, want %d", got, shed)
	}
	if depth := db.AdmissionQueueDepth(); depth != 0 {
		t.Fatalf("AdmissionQueueDepth = %d after drain, want 0", depth)
	}
	// The database is healthy: a fresh client admits instantly.
	if got := mustInt(t, db, `SELECT COUNT(*) FROM big`); got != 1500 {
		t.Fatalf("query after overload: %d, want 1500", got)
	}
}

func classifyAdmissionErr(t *testing.T, err error, shed, canceled, other *int) {
	t.Helper()
	switch {
	case errors.Is(err, ErrAdmissionRejected):
		*shed++
	case errors.Is(err, ErrCanceled):
		*canceled++
	default:
		t.Logf("unexpected overload error: %v", err)
		*other++
	}
}

// TestCloseDrainsLongScan is the Close-vs-in-flight regression: Close
// broadcasts shutdown, the running scan observes it at the next
// checkpoint and fails with ErrCanceled (wrapping ErrClosed), Close
// completes its WAL teardown, and later statements get ErrClosed.
func TestCloseDrainsLongScan(t *testing.T) {
	db := governDB(t, Options{}, 1500, 50)
	errCh := make(chan error, 1)
	go func() {
		_, err := db.QueryContext(context.Background(), longJoinSQL)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // the join is mid-flight
	closeStart := time.Now()
	if err := db.Close(); err != nil {
		t.Fatalf("Close with in-flight scan: %v", err)
	}
	if took := time.Since(closeStart); took > db.CloseGrace {
		t.Fatalf("Close took %v, want well under the %v grace (drain, not timeout)", took, db.CloseGrace)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, ErrClosed) {
			t.Fatalf("drained scan error = %v, want ErrCanceled wrapping ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight scan never returned after Close")
	}
	if _, err := db.Query(`SELECT COUNT(*) FROM big`); !errors.Is(err, ErrClosed) {
		t.Fatalf("statement after Close: %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCanceledStatementsNeverMutate is the visibility property test:
// across many statements whose contexts are canceled at random points,
// the final visible state is exactly the set of acknowledged effects —
// every ErrCanceled statement contributed nothing (all-or-nothing per
// statement), on both the sharded write path (FK-free table) and the
// exclusive path (FK-bearing table).
func TestCanceledStatementsNeverMutate(t *testing.T) {
	db, err := OpenWith("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close() //nolint:errcheck
	// prop is FK-free (sharded path); child references parent
	// (exclusive path).
	for _, ddl := range []string{
		`CREATE TABLE prop (id INTEGER PRIMARY KEY, v INTEGER)`,
		`CREATE TABLE parent (id INTEGER PRIMARY KEY)`,
		`CREATE TABLE child (id INTEGER PRIMARY KEY, pid INTEGER REFERENCES parent (id))`,
	} {
		if _, err := db.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	const seeded = 400
	for i := 0; i < seeded; i++ {
		if _, err := db.Exec(`INSERT INTO prop VALUES (?, 0)`, sqltypes.NewInt(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Exec(`INSERT INTO parent VALUES (1)`); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	run := func(sql string, args ...sqltypes.Value) error {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(time.Duration(rng.Intn(1500))*time.Microsecond, cancel)
		_, err := db.ExecContext(ctx, sql, args...)
		timer.Stop()
		cancel()
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s: unexpected error class %v", sql, err)
		}
		return err
	}

	ackedUpdates := int64(0)
	ackedIns := make(map[int64]bool)
	for i := 0; i < 160; i++ {
		switch i % 3 {
		case 0: // sharded-path insert
			id := int64(10000 + i)
			if run(`INSERT INTO prop VALUES (?, 0)`, sqltypes.NewInt(id)) == nil {
				ackedIns[id] = true
			}
		case 1: // sharded-path multi-row update (atomicity probe)
			if run(`UPDATE prop SET v = v + 1 WHERE id < ?`, sqltypes.NewInt(seeded)) == nil {
				ackedUpdates++
			}
		default: // exclusive-path insert (FK check forces the engine lock)
			id := int64(20000 + i)
			if run(`INSERT INTO child VALUES (?, 1)`, sqltypes.NewInt(id)) == nil {
				ackedIns[id] = true
			}
		}
	}

	// Visible state == acknowledged effects, exactly.
	rows, err := db.Query(`SELECT id, v FROM prop`)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]bool)
	for _, r := range rows.Data {
		id, v := r[0].Int(), r[1].Int()
		seen[id] = true
		if id < seeded && v != ackedUpdates {
			t.Fatalf("row %d has v=%d, want %d (torn or phantom update)", id, v, ackedUpdates)
		}
		if id >= 10000 && !ackedIns[id] {
			t.Fatalf("canceled insert %d is visible", id)
		}
	}
	crows, err := db.Query(`SELECT id FROM child`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range crows.Data {
		seen[r[0].Int()] = true
		if !ackedIns[r[0].Int()] {
			t.Fatalf("canceled exclusive-path insert %d is visible", r[0].Int())
		}
	}
	for id := range ackedIns {
		if !seen[id] {
			t.Fatalf("acknowledged insert %d is missing", id)
		}
	}
}

// TestSlowLogCancelReason: governed failures land in the slow-query
// log tagged with their cancel reason and remaining deadline budget,
// and DB.Close closes the log writer.
func TestSlowLogCancelReason(t *testing.T) {
	db := governDB(t, Options{}, 1200, 50)
	log := &closableLog{}
	db.SetTraceThreshold(time.Nanosecond)
	db.SetSlowQueryLog(log)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(canceled, `SELECT id FROM big WHERE v < 90`); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled query: %v", err)
	}
	db.SetStatementTimeout(2 * time.Millisecond)
	if _, err := db.QueryContext(context.Background(), longJoinSQL); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("deadline query: %v", err)
	}
	db.SetStatementTimeout(0)

	lines := strings.Split(strings.TrimSpace(log.buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d slow-log lines, want 2:\n%s", len(lines), log.buf.String())
	}
	var first, second Trace
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.CancelReason != "canceled" {
		t.Fatalf("canceled trace reason %q, want \"canceled\"", first.CancelReason)
	}
	if second.CancelReason != "deadline" {
		t.Fatalf("deadline trace reason %q, want \"deadline\"", second.CancelReason)
	}
	if second.DeadlineNs <= 0 {
		t.Fatalf("deadline trace carries no budget: %+v", second)
	}

	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !log.closed {
		t.Fatal("slow-query log writer not closed by DB.Close")
	}
}

// closableLog records whether Close was called, standing in for the
// *os.File the daemons hand to SetSlowQueryLog.
type closableLog struct {
	buf    strings.Builder
	closed bool
}

func (c *closableLog) Write(p []byte) (int, error) { return c.buf.Write(p) }
func (c *closableLog) Close() error                { c.closed = true; return nil }

// TestAdmissionReleasedOnError: statements that fail for ordinary,
// non-governance reasons (unknown table, bad SQL) must still release
// their admission slot — a regression guard on the release path.
func TestAdmissionReleasedOnError(t *testing.T) {
	db := governDB(t, Options{MaxConcurrentStatements: 1}, 300, 10)
	for i := 0; i < 10; i++ {
		if _, err := db.QueryContext(context.Background(), `SELECT nope FROM missing`); err == nil {
			t.Fatal("query against missing table succeeded")
		}
	}
	// With a single slot, a leaked release would deadlock here.
	done := make(chan int64, 1)
	go func() { done <- mustInt(t, db, `SELECT COUNT(*) FROM big`) }()
	select {
	case got := <-done:
		if got != 300 {
			t.Fatalf("COUNT = %d, want 300", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("admission slot leaked by failed statements")
	}
	if db.MemoryInUse() != 0 || db.AdmissionQueueDepth() != 0 {
		t.Fatalf("governance state leaked: mem=%d depth=%d", db.MemoryInUse(), db.AdmissionQueueDepth())
	}
}
