package sqldb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/sqltypes"
)

// traceDB builds the two-table fixture the trace tests share: an
// indexed observation table (500 rows over 10 sims) and a small
// dimension table, enough to exercise the index-only, grouped-fold,
// join, full-scan and top-k access paths.
func traceDB(t *testing.T) *DB {
	t.Helper()
	db := memDB(t)
	mustExec(t, db, `CREATE TABLE obs (id INTEGER PRIMARY KEY, sim VARCHAR(8), v INTEGER)`)
	mustExec(t, db, `CREATE INDEX obs_sim ON obs (sim) USING ORDERED`)
	mustExec(t, db, `CREATE TABLE runs (sim VARCHAR(8) PRIMARY KEY, owner VARCHAR(8))`)
	for i := 0; i < 500; i++ {
		mustExec(t, db, `INSERT INTO obs VALUES (?, ?, ?)`,
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("S%d", i%10)),
			sqltypes.NewInt(int64(i%97)))
	}
	for i := 0; i < 10; i++ {
		mustExec(t, db, `INSERT INTO runs VALUES (?, ?)`,
			sqltypes.NewString(fmt.Sprintf("S%d", i)),
			sqltypes.NewString(fmt.Sprintf("U%d", i%3)))
	}
	return db
}

// heapReadsTotal sums the per-table heap-read counters the trace layer
// must agree with.
func heapReadsTotal(db *DB, tables ...string) int64 {
	var n int64
	for _, tb := range tables {
		n += db.HeapRowReads(tb)
	}
	return n
}

// TestTraceHeapReadAccounting is the EXPLAIN ANALYZE property test:
// for every access-path shape the planner can choose, the traced
// per-node heap-read counts must sum to the statement total, and the
// statement total must equal the engine's own HeapRowReads delta —
// i.e. the trace spans cover every heap-touching stage, and an
// index-only path really does report zero heap reads.
func TestTraceHeapReadAccounting(t *testing.T) {
	db := traceDB(t)
	tables := []string{"OBS", "RUNS"}

	cases := []struct {
		name     string
		sql      string
		args     []sqltypes.Value
		wantRows int64
	}{
		{"index-only-count", `SELECT COUNT(*) FROM obs WHERE sim = ?`,
			[]sqltypes.Value{sqltypes.NewString("S3")}, 1},
		{"group-fold", `SELECT sim, COUNT(*), AVG(v) FROM obs GROUP BY sim`, nil, 10},
		{"join", `SELECT o.id, r.owner FROM obs o, runs r WHERE o.sim = r.sim AND o.v < 5`, nil, -1},
		{"full-scan", `SELECT id FROM obs WHERE v = 42`, nil, -1},
		{"top-k", `SELECT id, v FROM obs ORDER BY v DESC LIMIT 5`, nil, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st, err := db.Prepare(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			path, err := st.AccessPath()
			if err != nil {
				t.Fatal(err)
			}

			before := heapReadsTotal(db, tables...)
			tr, err := st.Trace(tc.args...)
			if err != nil {
				t.Fatal(err)
			}
			delta := heapReadsTotal(db, tables...) - before

			if tr == nil {
				t.Fatal("Trace returned nil trace")
			}
			if tr.Kind != "select" {
				t.Fatalf("Kind = %q, want select", tr.Kind)
			}
			if tr.Path != path {
				t.Fatalf("trace path %q != AccessPath %q", tr.Path, path)
			}
			if tr.HeapReads != delta {
				t.Fatalf("trace HeapReads = %d, engine delta = %d (path %s)", tr.HeapReads, delta, path)
			}
			var nodeSum int64
			for _, n := range tr.Nodes {
				if n.WallNs < 0 || n.Rows < 0 || n.HeapReads < 0 {
					t.Fatalf("negative node measurement: %+v", n)
				}
				nodeSum += n.HeapReads
			}
			if len(tr.Nodes) == 0 {
				t.Fatalf("trace has no plan nodes (path %s)", path)
			}
			if nodeSum != tr.HeapReads {
				t.Fatalf("node heap-read sum %d != statement total %d (path %s, nodes %+v)",
					nodeSum, tr.HeapReads, path, tr.Nodes)
			}
			if tc.wantRows >= 0 && tr.Rows != tc.wantRows {
				t.Fatalf("Rows = %d, want %d", tr.Rows, tc.wantRows)
			}
			if tr.WallNs <= 0 {
				t.Fatalf("WallNs = %d, want > 0", tr.WallNs)
			}
			if tr.Slow {
				t.Fatal("forced trace under no threshold marked Slow")
			}

			// The index-only path is the reason heap reads are worth
			// tracing: it must report zero.
			if tc.name == "index-only-count" {
				if !strings.Contains(path, "index-only") {
					t.Fatalf("expected an index-only path, planner chose %q", path)
				}
				if tr.HeapReads != 0 {
					t.Fatalf("index-only path did %d heap reads", tr.HeapReads)
				}
			}
		})
	}
}

// TestTraceDMLPipeline traces an INSERT on a durable database and
// checks the commit-pipeline breakdown: a dml node with the affected
// row count, a group-commit batch of at least one transaction, and the
// WAL fsync histogram advancing.
func TestTraceDMLPipeline(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	mustExec(t, db, `CREATE TABLE evt (id INTEGER PRIMARY KEY, v INTEGER)`)

	st, err := db.Prepare(`INSERT INTO evt VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := st.Trace(sqltypes.NewInt(1), sqltypes.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != "exec" || tr.Rows != 1 {
		t.Fatalf("kind=%q rows=%d, want exec/1", tr.Kind, tr.Rows)
	}
	var dml *TraceNode
	for i := range tr.Nodes {
		if tr.Nodes[i].Node == "dml" {
			dml = &tr.Nodes[i]
		}
	}
	if dml == nil || dml.Rows != 1 {
		t.Fatalf("missing dml node with rows=1: %+v", tr.Nodes)
	}
	if tr.GroupCommitBatch < 1 {
		t.Fatalf("GroupCommitBatch = %d, want >= 1", tr.GroupCommitBatch)
	}
	if tr.WALStageNs < 0 || tr.FsyncWaitNs < 0 || tr.LatchWaitNs < 0 {
		t.Fatalf("negative pipeline timing: %+v", tr)
	}

	fsync, ok := db.Metrics().Find("sqldb_wal_fsync_ns")
	if !ok || fsync.Hist == nil || fsync.Hist.Count == 0 {
		t.Fatalf("sqldb_wal_fsync_ns not populated: %+v", fsync)
	}
	batch, _ := db.Metrics().Find("sqldb_wal_group_commit_batch")
	if batch.Hist == nil || batch.Hist.Count != fsync.Hist.Count {
		t.Fatalf("batch histogram count %+v != fsync count %d", batch.Hist, fsync.Hist.Count)
	}
	commits, _ := db.Metrics().Find("sqldb_commits_total")
	if commits.Value < 2 { // CREATE TABLE + INSERT
		t.Fatalf("sqldb_commits_total = %d, want >= 2", commits.Value)
	}
}

// TestSlowQueryLog sets a one-nanosecond threshold so every statement
// qualifies, and checks the log receives one parseable JSON trace per
// statement with plan nodes attached — then that a zero threshold
// turns the log off again.
func TestSlowQueryLog(t *testing.T) {
	db := traceDB(t)
	var buf bytes.Buffer
	db.SetTraceThreshold(time.Nanosecond)
	db.SetSlowQueryLog(&buf)

	if _, err := db.Query(`SELECT COUNT(*) FROM obs WHERE v < 50`); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d slow-log lines, want 1:\n%s", len(lines), buf.String())
	}
	var tr Trace
	if err := json.Unmarshal([]byte(lines[0]), &tr); err != nil {
		t.Fatalf("slow-log line is not JSON: %v\n%s", err, lines[0])
	}
	if !tr.Slow || tr.Kind != "select" || tr.SQL == "" || len(tr.Nodes) == 0 || tr.WallNs <= 0 {
		t.Fatalf("bad slow-log record: %+v", tr)
	}
	if tr.Time == "" {
		t.Fatal("slow-log record has no timestamp")
	}
	slow, _ := db.Metrics().Find("sqldb_slow_queries_total")
	if slow.Value != 1 {
		t.Fatalf("sqldb_slow_queries_total = %d, want 1", slow.Value)
	}

	// DML over the threshold logs the commit pipeline too.
	buf.Reset()
	if _, err := db.Exec(`UPDATE obs SET v = v + 1 WHERE id = 7`); err != nil {
		t.Fatal(err)
	}
	var dtr Trace
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &dtr); err != nil {
		t.Fatalf("DML slow-log line: %v\n%s", err, buf.String())
	}
	if dtr.Kind != "exec" || !dtr.Slow {
		t.Fatalf("bad DML slow-log record: %+v", dtr)
	}

	// Threshold zero: tracing off, nothing logged, counter frozen.
	db.SetTraceThreshold(0)
	buf.Reset()
	if _, err := db.Query(`SELECT COUNT(*) FROM obs`); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("slow log written with tracing disabled: %s", buf.String())
	}
	slow, _ = db.Metrics().Find("sqldb_slow_queries_total")
	if slow.Value != 2 {
		t.Fatalf("sqldb_slow_queries_total = %d, want 2", slow.Value)
	}
}

// TestEngineMetricsLifecycle walks the remaining metric families
// through their state machine: plan-cache hit/miss counters, the
// dead-row gauge rising on DELETE, and the vacuum counters reclaiming
// it.
func TestEngineMetricsLifecycle(t *testing.T) {
	db := traceDB(t)

	miss0, _ := db.Metrics().Find("sqldb_plan_cache_misses_total")
	hit0, _ := db.Metrics().Find("sqldb_plan_cache_hits_total")
	const q = `SELECT COUNT(*) FROM obs WHERE v = 13`
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	miss1, _ := db.Metrics().Find("sqldb_plan_cache_misses_total")
	hit1, _ := db.Metrics().Find("sqldb_plan_cache_hits_total")
	if miss1.Value != miss0.Value+1 {
		t.Fatalf("plan-cache misses %d -> %d, want +1", miss0.Value, miss1.Value)
	}
	if hit1.Value != hit0.Value+1 {
		t.Fatalf("plan-cache hits %d -> %d, want +1", hit0.Value, hit1.Value)
	}
	entries, ok := db.Metrics().Find("sqldb_plan_cache_entries")
	if !ok || entries.Value < 1 {
		t.Fatalf("sqldb_plan_cache_entries = %+v, want >= 1", entries)
	}

	mustExec(t, db, `DELETE FROM obs WHERE id < 100`)
	dead, _ := db.Metrics().Find("sqldb_dead_rows")
	if dead.Value <= 0 {
		t.Fatalf("sqldb_dead_rows = %d after DELETE, want > 0", dead.Value)
	}

	if err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	passes, _ := db.Metrics().Find("sqldb_vacuum_passes_total")
	if passes.Value < 1 {
		t.Fatalf("sqldb_vacuum_passes_total = %d, want >= 1", passes.Value)
	}
	reclaimed, _ := db.Metrics().Find("sqldb_vacuum_rows_reclaimed_total")
	if reclaimed.Value <= 0 {
		t.Fatalf("sqldb_vacuum_rows_reclaimed_total = %d, want > 0", reclaimed.Value)
	}
	dead, _ = db.Metrics().Find("sqldb_dead_rows")
	if dead.Value != 0 {
		t.Fatalf("sqldb_dead_rows = %d after vacuum, want 0", dead.Value)
	}
}
