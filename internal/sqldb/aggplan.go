package sqldb

import (
	"repro/internal/sqltypes"
)

// Index-only aggregates.
//
// A single-table aggregate query whose WHERE clause is consumed exactly
// by the access path (accessPath.residualFree) and whose projection is
// made only of COUNT/MIN/MAX calls the path can serve is answered from
// the index without materialising candidate rows:
//
//	COUNT(*) / COUNT(col)  — sum the row-ID list lengths under the
//	                         path's exact key range: zero heap reads.
//	MIN(col) / MAX(col)    — walk the key range in (reverse) order and
//	                         materialise only the boundary key's rows.
//
// Because encoded keys can over-approximate value equality (the float64
// image of integers beyond ±2^53), the executor re-verifies at each
// execution that every probe is exact (exactProbe); when it is not, it
// falls back to the ordinary row-materialising path, which re-applies
// the residual predicate. Strict range bounds, which the ordinary path
// widens to inclusive scans, are honoured exactly here for the same
// reason.

// aggItem is one projection item of an index-only aggregate plan.
type aggItem struct {
	fn     string // "COUNT", "MIN", "MAX"
	colPos int    // schema position of the argument; -1 for COUNT(*)
}

// planIndexOnlyAgg decides whether the bound SELECT qualifies for
// index-only aggregation and records the per-item plan. Called once per
// plan build; the schema epoch invalidates it with the rest of the plan.
func planIndexOnlyAgg(plan *selectPlan) {
	s := plan.stmt
	if plan.noFrom || len(plan.tables) != 1 || !plan.aggregated ||
		len(s.GroupBy) > 0 || s.Having != nil || s.Distinct || len(s.OrderBy) > 0 {
		return
	}
	path := plan.path
	if path == nil {
		if s.Where != nil {
			return
		}
	} else if !path.residualFree {
		return
	}
	items := make([]aggItem, 0, len(plan.proj))
	for _, e := range plan.proj {
		fc, ok := e.(*FuncCall)
		if !ok || !isAggregate(fc.Name) {
			return
		}
		if fc.Name == "COUNT" && fc.Star {
			items = append(items, aggItem{fn: "COUNT", colPos: -1})
			continue
		}
		if len(fc.Args) != 1 {
			return
		}
		cr, ok := fc.Args[0].(*ColRef)
		if !ok || cr.Index < 0 {
			return
		}
		// Single-table plan: the bound index IS the schema position.
		colPos := cr.Index
		switch fc.Name {
		case "COUNT":
			// COUNT(col) counts non-NULL values; equal to the key count
			// only when the path guarantees col is non-NULL in every
			// match.
			if !pathGuaranteesNotNull(path, colPos) {
				return
			}
		case "MIN", "MAX":
			if !pathServesMinMax(path, colPos) {
				return
			}
		default:
			return
		}
		items = append(items, aggItem{fn: fc.Name, colPos: colPos})
	}
	plan.aggItems = items
}

// pathGuaranteesNotNull reports whether every row the path emits has a
// non-NULL value in colPos: equality columns (a NULL probe matches
// nothing), and the scan column under a range bound or IS NOT NULL.
func pathGuaranteesNotNull(path *accessPath, colPos int) bool {
	if path == nil {
		return false
	}
	for i := 0; i < path.nEq; i++ {
		if path.colPos[i] == colPos {
			return true
		}
	}
	if path.nEq < len(path.cols) && path.colPos[path.nEq] == colPos {
		switch path.kind {
		case pathOrderedRange:
			return path.lo != nil || path.hi != nil
		case pathOrderedNull:
			return path.notNull
		}
	}
	return false
}

// pathServesMinMax reports whether the path can find MIN/MAX(colPos) at
// a key-range boundary: equality columns are constant over every match,
// and the ordered scan column is emitted in value order.
func pathServesMinMax(path *accessPath, colPos int) bool {
	if path == nil {
		return false
	}
	for i := 0; i < path.nEq; i++ {
		if path.colPos[i] == colPos {
			return true
		}
	}
	if path.nEq < len(path.cols) && path.colPos[path.nEq] == colPos {
		switch path.kind {
		case pathOrderedRange:
			return true
		case pathOrderedNull:
			return path.notNull
		}
	}
	return false
}

// exactRange is a resolved, exact key window over one index.
type exactRange struct {
	useLookup bool   // point lookup of lookup instead of a scan
	lookup    string // full-tuple key (useLookup)
	lo, hi    *keyBound
	empty     bool // a probe was NULL: no rows match
}

// exactKeyRange resolves the path's probes into exact bounds, honouring
// bound strictness. It shares the probe evaluation and key assembly
// with scanAccessPath (eqPrefix/encodePathBound/prefixUpper in
// planner.go), adding only the exactness requirement and the
// strictness-correct bound shapes. ok=false means a probe failed to
// evaluate, align or be exact, and the caller must use the ordinary
// residual-checked path.
func exactKeyRange(td *tableData, path *accessPath, ctx *evalCtx) (exactRange, bool) {
	var er exactRange
	prefix, nullProbe, ok := eqPrefix(td, path, ctx, true)
	if !ok {
		return er, false
	}
	if nullProbe {
		er.empty = true
		return er, true
	}

	switch path.kind {
	case pathHashEq, pathOrderedEq:
		er.useLookup = true
		er.lookup = string(prefix)
		return er, true

	case pathOrderedRange:
		switch {
		case path.lo != nil:
			enc, null, ok := encodePathBound(td, path, prefix, path.lo, ctx, true)
			if !ok {
				return er, false
			}
			if null {
				er.empty = true
				return er, true
			}
			if path.loIncl {
				er.lo = &keyBound{key: enc, incl: true}
			} else {
				er.lo = &keyBound{key: enc + keyRangeHiSentinel, incl: false}
			}
		case path.hi != nil:
			// Half range: exclude the NULL key and its continuations.
			er.lo = &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: false}
		default:
			er.lo = &keyBound{key: string(prefix), incl: true}
		}
		if path.hi != nil {
			enc, null, ok := encodePathBound(td, path, prefix, path.hi, ctx, true)
			if !ok {
				return er, false
			}
			if null {
				er.empty = true
				return er, true
			}
			if path.hiIncl {
				er.hi = &keyBound{key: enc + keyRangeHiSentinel, incl: true}
			} else {
				er.hi = &keyBound{key: enc, incl: false}
			}
		} else {
			er.hi = prefixUpper(prefix)
		}
		return er, true

	case pathOrderedNull:
		if path.notNull {
			er.lo = &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: false}
			er.hi = prefixUpper(prefix)
		} else {
			er.lo = &keyBound{key: string(prefix) + nullKey, incl: true}
			er.hi = &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: true}
		}
		return er, true

	case pathOrderedScan:
		// residualFree ordered scans only exist for WHERE-less queries.
		return er, true
	}
	return er, false
}

// runIndexOnlyAgg answers the planned aggregate items from the index.
// handled=false falls back to the row-materialising executor (probe
// misalignment or inexact keys). COUNT items read zero heap rows;
// MIN/MAX materialise only the boundary key's rows.
func (db *DB) runIndexOnlyAgg(plan *selectPlan, ctx *evalCtx) (*Rows, bool) {
	s := plan.stmt
	td := plan.tables[0].data
	path := plan.path

	var idx secondaryIndex
	var er exactRange
	if path == nil {
		// COUNT(*) with no WHERE: the live-row counter is the answer.
	} else {
		idx = td.indexes[path.idx]
		if idx == nil {
			return nil, false
		}
		var ok bool
		er, ok = exactKeyRange(td, path, ctx)
		if !ok {
			return nil, false
		}
	}

	count := int64(-1)
	countRows := func() int64 {
		if count >= 0 {
			return count
		}
		switch {
		case path == nil:
			count = int64(td.live)
		case er.empty:
			count = 0
		case er.useLookup:
			count = int64(len(idx.lookupKey(er.lookup)))
		default:
			count = 0
			rix, ok := idx.(rangeIndex)
			if !ok {
				return 0
			}
			rix.scanRange(er.lo, er.hi, false, func(_ string, ids []rowID) bool {
				count += int64(len(ids))
				return true
			})
		}
		return count
	}

	vals := make([]sqltypes.Value, len(plan.aggItems))
	for i, it := range plan.aggItems {
		switch it.fn {
		case "COUNT":
			vals[i] = sqltypes.NewInt(countRows())
		case "MIN":
			vals[i] = boundaryAgg(td, idx, er, it.colPos, false)
		case "MAX":
			vals[i] = boundaryAgg(td, idx, er, it.colPos, true)
		}
	}

	// Assemble the single aggregate row exactly like runSelect would.
	kinds := make([]sqltypes.Kind, len(plan.kinds))
	copy(kinds, plan.kinds)
	columns := make([]string, len(plan.labels))
	copy(columns, plan.labels)
	out := newRows(columns, kinds)
	if s.Offset == 0 && s.Limit != 0 {
		out.Data = [][]sqltypes.Value{vals}
	}
	for ci, k := range out.Kinds {
		if k != sqltypes.KindNull {
			continue
		}
		for _, r := range out.Data {
			if !r[ci].IsNull() {
				out.Kinds[ci] = r[ci].Kind()
				break
			}
		}
	}
	return out, true
}

// boundaryAgg finds MIN (desc=false) or MAX (desc=true) of colPos by
// walking the exact key range in order and materialising only the rows
// of the first key that holds a non-NULL value. All rows of that key
// are compared — distinct values can share a key in the far-integer
// collision window, so the boundary key is a tiny candidate set, not
// a single row.
func boundaryAgg(td *tableData, idx secondaryIndex, er exactRange, colPos int, desc bool) sqltypes.Value {
	if idx == nil || er.empty {
		return sqltypes.Null
	}
	best := sqltypes.Null
	reads := int64(0)
	defer func() { td.heapReads.Add(reads) }()
	visit := func(ids []rowID) bool {
		for _, id := range ids {
			vals, live := td.fetch(id)
			if !live {
				continue
			}
			reads++
			if vals[colPos].IsNull() {
				continue
			}
			v := vals[colPos]
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := sqltypes.Compare(v, best); ok && ((desc && c > 0) || (!desc && c < 0)) {
				best = v
			}
		}
		return best.IsNull() // stop after the first key with a value
	}
	if er.useLookup {
		visit(idx.lookupKey(er.lookup))
		return best
	}
	rix, ok := idx.(rangeIndex)
	if !ok {
		return sqltypes.Null
	}
	rix.scanRange(er.lo, er.hi, desc, func(_ string, ids []rowID) bool {
		return visit(ids)
	})
	return best
}
