package sqldb

import (
	"repro/internal/sqltypes"
)

// Index-only aggregates.
//
// A single-table aggregate query whose WHERE clause is consumed exactly
// by the access path (accessPath.residualFree) and whose projection is
// made only of COUNT/MIN/MAX calls the path can serve is answered from
// the index without materialising candidate rows:
//
//	COUNT(*) / COUNT(col)  — sum the row-ID list lengths under the
//	                         path's exact key range: zero heap reads.
//	MIN(col) / MAX(col)    — walk the key range in (reverse) order and
//	                         decode the answer straight off the boundary
//	                         KEY (key.go decode support): zero heap
//	                         reads for every kind whose encoding
//	                         round-trips. Components that do not
//	                         round-trip — integers in the ±2^53 float
//	                         collision window, a DOUBLE zero key (±0.0
//	                         share it) — fall back to materialising the
//	                         boundary key's rows, as every key did
//	                         before decode support existed.
//
// Because encoded keys can over-approximate value equality (the float64
// image of integers beyond ±2^53), the executor re-verifies at each
// execution that every probe is exact (exactProbe); when it is not, it
// falls back to the ordinary row-materialising path, which re-applies
// the residual predicate. Strict range bounds, which the ordinary path
// widens to inclusive scans, are honoured exactly here for the same
// reason.

// aggItem is one projection item of an index-only aggregate plan.
type aggItem struct {
	fn     string // "COUNT", "MIN", "MAX"
	colPos int    // schema position of the argument; -1 for COUNT(*)
}

// planIndexOnlyAgg decides whether the bound SELECT qualifies for
// index-only aggregation and records the per-item plan. Called once per
// plan build; the schema epoch invalidates it with the rest of the plan.
func planIndexOnlyAgg(plan *selectPlan) {
	s := plan.stmt
	if plan.noFrom || len(plan.tables) != 1 || !plan.aggregated ||
		len(s.GroupBy) > 0 || s.Having != nil || s.Distinct || len(s.OrderBy) > 0 {
		return
	}
	path := plan.path
	if path == nil {
		if s.Where != nil {
			return
		}
	} else if !path.residualFree {
		return
	}
	items := make([]aggItem, 0, len(plan.proj))
	for _, e := range plan.proj {
		fc, ok := e.(*FuncCall)
		if !ok || !isAggregate(fc.Name) {
			return
		}
		if fc.Name == "COUNT" && fc.Star {
			items = append(items, aggItem{fn: "COUNT", colPos: -1})
			continue
		}
		if len(fc.Args) != 1 {
			return
		}
		cr, ok := fc.Args[0].(*ColRef)
		if !ok || cr.Index < 0 {
			return
		}
		// Single-table plan: the bound index IS the schema position.
		colPos := cr.Index
		switch fc.Name {
		case "COUNT":
			// COUNT(col) counts non-NULL values; equal to the key count
			// only when the path guarantees col is non-NULL in every
			// match.
			if !pathGuaranteesNotNull(path, colPos) {
				return
			}
		case "MIN", "MAX":
			if !pathServesMinMax(path, colPos) {
				return
			}
		default:
			return
		}
		items = append(items, aggItem{fn: fc.Name, colPos: colPos})
	}
	plan.aggItems = items
}

// pathGuaranteesNotNull reports whether every row the path emits has a
// non-NULL value in colPos: equality columns (a NULL probe matches
// nothing), and the scan column under a range bound or IS NOT NULL.
func pathGuaranteesNotNull(path *accessPath, colPos int) bool {
	if path == nil {
		return false
	}
	for i := 0; i < path.nEq; i++ {
		if path.colPos[i] == colPos {
			return true
		}
	}
	if path.nEq < len(path.cols) && path.colPos[path.nEq] == colPos {
		switch path.kind {
		case pathOrderedRange:
			return path.lo != nil || path.hi != nil
		case pathOrderedNull:
			return path.notNull
		}
	}
	return false
}

// pathServesMinMax reports whether the path can find MIN/MAX(colPos) at
// a key-range boundary: equality columns are constant over every match,
// and the ordered scan column is emitted in value order.
func pathServesMinMax(path *accessPath, colPos int) bool {
	if path == nil {
		return false
	}
	for i := 0; i < path.nEq; i++ {
		if path.colPos[i] == colPos {
			return true
		}
	}
	if path.nEq < len(path.cols) && path.colPos[path.nEq] == colPos {
		switch path.kind {
		case pathOrderedRange:
			return true
		case pathOrderedNull:
			return path.notNull
		}
	}
	return false
}

// ---------- per-group index-only folding ----------
//
// The grouped counterpart of the single-row index-only aggregates: when
// a residual-free path's index clusters the GROUP BY columns AND every
// aggregate argument is itself an index column, whole groups fold from
// the index KEYS — each key names its full column tuple, so COUNT adds
// the row-ID list length, SUM folds the decoded value once per row the
// key stands for (see foldValue), MIN/MAX compare the decoded component
// once per key — and no heap row is ever fetched.
// Keys whose needed components do not round-trip (the far-integer
// collision window, a DOUBLE zero) fold that one key's rows through the
// ordinary row fetch, keeping results exact. Scalar (non-aggregate)
// expression parts are restricted at plan time to index columns and
// evaluate against a synthetic row decoded from the group's first key.

// idxFoldSlot is the per-aggregate-call decode recipe, parallel to
// selectPlan.aggCalls.
type idxFoldSlot struct {
	star      bool
	tupleSlot int // index tuple position of the argument column; -1 for *
	kind      sqltypes.Kind
	fn        string
}

// groupIdxFoldPlan is the plan for answering a grouped aggregate from
// index keys alone (see planGroupIndexFold).
type groupIdxFoldPlan struct {
	prefixComponents int // leading key components that identify a group
	slots            []idxFoldSlot
	synth            []int // tuple slots decoded into the synthetic first row

	// Single-pass decode recipe: the executor walks each key's
	// components once, decoding tuple slot j when needed[j]. walkLen
	// covers both the group prefix and the deepest needed slot.
	needed  []bool
	kinds   []sqltypes.Kind // parallel to needed
	walkLen int
}

// planGroupIndexFold decides whether the grouped fold can run off the
// index keys and records the decode recipe. Requires the streaming
// qualification (plan.streamGroups: the path clusters the group
// columns) plus a residual-free path, aggregate arguments that are bare
// index-column references, and scalar parts confined to index columns.
// Runs once per plan build.
func planGroupIndexFold(plan *selectPlan) {
	s := plan.stmt
	path := plan.path
	if !plan.streamGroups || plan.groupCols == nil || path == nil || !path.residualFree {
		return
	}
	td := plan.tables[0].data
	slotOf := func(pos int) int {
		for j, p := range path.colPos {
			if p == pos {
				return j
			}
		}
		return -1
	}
	slots := make([]idxFoldSlot, len(plan.aggCalls))
	for i := range plan.aggCalls {
		c := &plan.aggCalls[i]
		if c.star {
			slots[i] = idxFoldSlot{star: true, tupleSlot: -1}
			continue
		}
		cr, ok := c.arg.(*ColRef) // nil arg (arity error) fails here too
		if !ok || cr.Index < 0 {
			return
		}
		j := slotOf(cr.Index)
		if j < 0 {
			return
		}
		slots[i] = idxFoldSlot{tupleSlot: j, kind: td.schema.Cols[cr.Index].Type.Kind, fn: c.fn}
	}
	// Scalar parts evaluate against a synthetic row holding only the
	// decoded index columns, so they may reference nothing else.
	// Aggregate subtrees are pruned (their arguments were vetted above).
	synthSet := make(map[int]bool)
	ok := true
	checkScalars := func(e Expr) {
		walkExpr(e, func(x Expr) bool {
			if !ok {
				return false
			}
			if fc, isFunc := x.(*FuncCall); isFunc && isAggregate(fc.Name) {
				return false
			}
			if cr, isCol := x.(*ColRef); isCol {
				j := -1
				if cr.Index >= 0 {
					j = slotOf(cr.Index)
				}
				if j < 0 {
					ok = false
					return false
				}
				synthSet[j] = true
			}
			return true
		})
	}
	for _, e := range plan.proj {
		checkScalars(e)
	}
	if s.Having != nil {
		checkScalars(s.Having)
	}
	for i, o := range s.OrderBy {
		if plan.orderBound[i] {
			checkScalars(o.Expr)
		}
	}
	if !ok {
		return
	}
	// Group identity: the equality prefix (constant) plus the leading
	// run of distinct non-equality group columns — the same count the
	// streaming qualification proved sits right after it
	// (pathNonEqGroupCols, shared with pathClustersGroups).
	gp := &groupIdxFoldPlan{
		prefixComponents: path.nEq + pathNonEqGroupCols(path, plan.groupCols),
		slots:            slots,
	}
	for j := range path.cols {
		if synthSet[j] {
			gp.synth = append(gp.synth, j)
		}
	}
	// Per-key decode walk: every aggregate-argument slot, plus enough
	// components to delimit the group prefix.
	gp.needed = make([]bool, len(path.cols))
	gp.kinds = make([]sqltypes.Kind, len(path.cols))
	gp.walkLen = gp.prefixComponents
	for i := range slots {
		sl := &slots[i]
		if sl.star {
			continue
		}
		gp.needed[sl.tupleSlot] = true
		gp.kinds[sl.tupleSlot] = sl.kind
		if sl.tupleSlot+1 > gp.walkLen {
			gp.walkLen = sl.tupleSlot + 1
		}
	}
	plan.groupIdxFold = gp
}

// runGroupIndexFold folds the grouped aggregate from index keys.
// handled=false (probe misalignment or inexact keys) sends the caller
// to the ordinary scan-and-fold executor. Evaluation errors defer into
// the accumulators and surface at finalize, exactly like the row-wise
// fold (same messages, same HAVING-aware timing). Governance errors
// (cancellation, deadline, memory budget) surface immediately.
func (db *DB) runGroupIndexFold(plan *selectPlan, ctx *evalCtx) (groups []*groupState, handled bool, err error) {
	gp := plan.groupIdxFold
	path := plan.path
	td := plan.tables[0].data
	idx := td.indexes[path.idx]
	if idx == nil {
		return nil, false, nil
	}
	er, ok := exactKeyRange(td, path, ctx)
	if !ok {
		return nil, false, nil
	}
	if er.empty {
		return nil, true, nil
	}

	reads := int64(0)
	defer func() { td.heapReads.Add(reads) }()

	var (
		cur       *groupState
		curPrefix string
		foldErr   error
		decoded   = make([]sqltypes.Value, gp.walkLen) // per-slot scratch, reused per key
	)
	// foldRowsFallback folds one key's rows through the heap fetch (the
	// decode refused); nothing of this key has been folded yet.
	foldRowsFallback := func(ids []rowID) bool {
		for _, id := range ids {
			vals, live := td.fetch(id, ctx.snap)
			if !live {
				continue
			}
			reads++
			plan.foldRow(cur, vals, ctx)
		}
		return true
	}
	// startGroup opens the group identified by prefix, building the
	// synthetic first row for the scalar parts from the group's first
	// key; a non-round-tripping component falls back to one real row.
	startGroup := func(k, prefix string, ids []rowID) {
		// Each open group retains its state for the statement's lifetime:
		// charge the memory budget (surfaces through foldErr on the next
		// visit, since this path cannot abort mid-key).
		if gerr := ctx.intr.charge(int64(len(prefix)) + groupFootprint(len(plan.aggCalls))); gerr != nil {
			foldErr = gerr
		}
		cur = plan.newGroupState()
		groups = append(groups, cur)
		curPrefix = prefix
		row := make([]sqltypes.Value, len(td.schema.Cols))
		okSynth := true
		for _, j := range gp.synth {
			v, okd := decodeKeyColumn(k, j, td.schema.Cols[path.colPos[j]].Type.Kind)
			if !okd {
				okSynth = false
				break
			}
			row[path.colPos[j]] = v
		}
		if okSynth {
			cur.firstRow = row
		} else {
			for _, id := range ids {
				if vals, live := td.fetch(id, ctx.snap); live {
					reads++
					cur.firstRow = vals
					break
				}
			}
		}
	}
	visit := func(k string, ids []rowID) bool {
		// Per-key cancellation checkpoint for the index-key fold.
		if gerr := ctx.intr.check(); gerr != nil {
			foldErr = gerr
			return false
		}
		// One forward walk per key: delimit the group prefix and decode
		// the aggregate-argument components. Any refusal (malformed key,
		// non-round-tripping component) folds this key's rows through
		// the heap fetch instead — nothing has been folded yet.
		rest := k
		prefix := k
		decodeOK := true
		for j := 0; j < gp.walkLen; j++ {
			if decodeOK && gp.needed[j] {
				v, okd := decodeKeyValue(rest, gp.kinds[j])
				if okd {
					decoded[j] = v
				} else {
					decodeOK = false
				}
			}
			var okc bool
			rest, okc = skipKeyComponent(rest)
			if !okc {
				// Malformed key (cannot happen for keys the engine
				// built); the row fetch below still folds it exactly.
				decodeOK = false
				break
			}
			if j == gp.prefixComponents-1 {
				prefix = k[:len(k)-len(rest)]
				if !decodeOK {
					break // prefix delimited; nothing left to decode
				}
			}
		}
		if cur == nil || prefix != curPrefix {
			if plan.groupStop > 0 && len(groups) >= plan.groupStop {
				// Grouped-fold early-stop: the LIMIT-th group just
				// closed, so the rest of the key walk cannot contribute.
				return false
			}
			startGroup(k, prefix, ids)
		}
		if !decodeOK {
			return foldRowsFallback(ids)
		}
		n := int64(len(ids))
		for i := range gp.slots {
			sl := &gp.slots[i]
			acc := &cur.accs[i]
			if sl.star {
				acc.count += n
				continue
			}
			v := decoded[sl.tupleSlot]
			if v.IsNull() {
				continue
			}
			// One key stands for n identical rows; foldValue (shared
			// with the row fold) keeps the per-value semantics — and
			// double SUM rounding — bit-identical to folding each row.
			// Errors defer into the accumulator and surface at finalize,
			// matching the legacy executor's HAVING-aware timing.
			foldValue(acc, sl.fn, v, n)
		}
		return true
	}

	if er.useLookup {
		ids := lookupVisible(td, idx, er.lookup, ctx.snap)
		if len(ids) > 0 {
			visit(er.lookup, ids)
		}
	} else {
		rix, okr := idx.(rangeIndex)
		if !okr {
			return nil, false, nil
		}
		scanVisibleRange(td, rix, er.lo, er.hi, false, ctx.snap, visit)
	}
	if foldErr != nil {
		return nil, true, foldErr
	}
	return groups, true, nil
}

// exactRange is a resolved, exact key window over one index.
type exactRange struct {
	useLookup bool   // point lookup of lookup instead of a scan
	lookup    string // full-tuple key (useLookup)
	lo, hi    *keyBound
	empty     bool // a probe was NULL: no rows match
}

// exactKeyRange resolves the path's probes into exact bounds, honouring
// bound strictness. It shares the probe evaluation and key assembly
// with scanAccessPath (eqPrefix/encodePathBound/prefixUpper in
// planner.go), adding only the exactness requirement and the
// strictness-correct bound shapes. ok=false means a probe failed to
// evaluate, align or be exact, and the caller must use the ordinary
// residual-checked path.
func exactKeyRange(td *tableData, path *accessPath, ctx *evalCtx) (exactRange, bool) {
	var er exactRange
	prefix, nullProbe, ok := eqPrefix(td, path, ctx, true)
	if !ok {
		return er, false
	}
	if nullProbe {
		er.empty = true
		return er, true
	}

	switch path.kind {
	case pathHashEq, pathOrderedEq:
		er.useLookup = true
		er.lookup = string(prefix)
		return er, true

	case pathOrderedRange:
		switch {
		case path.lo != nil:
			enc, null, ok := encodePathBound(td, path, prefix, path.lo, ctx, true)
			if !ok {
				return er, false
			}
			if null {
				er.empty = true
				return er, true
			}
			if path.loIncl {
				er.lo = &keyBound{key: enc, incl: true}
			} else {
				er.lo = &keyBound{key: enc + keyRangeHiSentinel, incl: false}
			}
		case path.hi != nil:
			// Half range: exclude the NULL key and its continuations.
			er.lo = &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: false}
		default:
			er.lo = &keyBound{key: string(prefix), incl: true}
		}
		if path.hi != nil {
			enc, null, ok := encodePathBound(td, path, prefix, path.hi, ctx, true)
			if !ok {
				return er, false
			}
			if null {
				er.empty = true
				return er, true
			}
			if path.hiIncl {
				er.hi = &keyBound{key: enc + keyRangeHiSentinel, incl: true}
			} else {
				er.hi = &keyBound{key: enc, incl: false}
			}
		} else {
			er.hi = prefixUpper(prefix)
		}
		return er, true

	case pathOrderedNull:
		if path.notNull {
			er.lo = &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: false}
			er.hi = prefixUpper(prefix)
		} else {
			er.lo = &keyBound{key: string(prefix) + nullKey, incl: true}
			er.hi = &keyBound{key: string(prefix) + nullKey + keyRangeHiSentinel, incl: true}
		}
		return er, true

	case pathOrderedScan:
		// residualFree ordered scans only exist for WHERE-less queries.
		return er, true
	}
	return er, false
}

// runIndexOnlyAgg answers the planned aggregate items from the index.
// handled=false falls back to the row-materialising executor (probe
// misalignment or inexact keys). COUNT items read zero heap rows;
// MIN/MAX materialise only the boundary key's rows. Governance errors
// (cancellation, deadline) surface immediately.
func (db *DB) runIndexOnlyAgg(plan *selectPlan, ctx *evalCtx) (*Rows, bool, error) {
	s := plan.stmt
	td := plan.tables[0].data
	path := plan.path

	var idx secondaryIndex
	var er exactRange
	if path == nil {
		// COUNT(*) with no WHERE: the live-row counter is the answer.
	} else {
		idx = td.indexes[path.idx]
		if idx == nil {
			return nil, false, nil
		}
		var ok bool
		er, ok = exactKeyRange(td, path, ctx)
		if !ok {
			return nil, false, nil
		}
	}

	var govErr error
	count := int64(-1)
	countRows := func() int64 {
		if count >= 0 {
			return count
		}
		switch {
		case path == nil:
			// COUNT(*) with no WHERE: the committed live-count history
			// answers exactly for this statement's snapshot even while
			// writers keep committing.
			count = td.liveAt(ctx.snap)
		case er.empty:
			count = 0
		case er.useLookup:
			count = int64(len(lookupVisible(td, idx, er.lookup, ctx.snap)))
		default:
			count = 0
			rix, ok := idx.(rangeIndex)
			if !ok {
				return 0
			}
			scanVisibleRange(td, rix, er.lo, er.hi, false, ctx.snap, func(_ string, ids []rowID) bool {
				if err := ctx.intr.check(); err != nil {
					govErr = err
					return false
				}
				count += int64(len(ids))
				return true
			})
		}
		return count
	}

	vals := make([]sqltypes.Value, len(plan.aggItems))
	for i, it := range plan.aggItems {
		switch it.fn {
		case "COUNT":
			vals[i] = sqltypes.NewInt(countRows())
		case "MIN":
			vals[i] = boundaryAgg(td, idx, er, it.colPos, false, ctx)
		case "MAX":
			vals[i] = boundaryAgg(td, idx, er, it.colPos, true, ctx)
		}
		if govErr == nil {
			govErr = ctx.intr.check()
		}
		if govErr != nil {
			return nil, false, govErr
		}
	}

	// Assemble the single aggregate row exactly like runSelect would.
	kinds := make([]sqltypes.Kind, len(plan.kinds))
	copy(kinds, plan.kinds)
	columns := make([]string, len(plan.labels))
	copy(columns, plan.labels)
	out := newRows(columns, kinds)
	if s.Offset == 0 && s.Limit != 0 {
		out.Data = [][]sqltypes.Value{vals}
	}
	for ci, k := range out.Kinds {
		if k != sqltypes.KindNull {
			continue
		}
		for _, r := range out.Data {
			if !r[ci].IsNull() {
				out.Kinds[ci] = r[ci].Kind()
				break
			}
		}
	}
	return out, true, nil
}

// boundaryAgg finds MIN (desc=false) or MAX (desc=true) of colPos by
// walking the exact key range in order. Whenever the column's component
// of the boundary key round-trips (decodeKeyColumn), the answer is read
// straight off the key — zero heap rows. Otherwise the boundary key's
// rows are materialised and compared: distinct values can share a key
// in the far-integer collision window, so that key is a tiny candidate
// set, not a single row, and the fetch resolves the exact extremum.
func boundaryAgg(td *tableData, idx secondaryIndex, er exactRange, colPos int, desc bool, ctx *evalCtx) sqltypes.Value {
	snap := ctx.snap
	if idx == nil || er.empty {
		return sqltypes.Null
	}
	// Locate colPos inside the index tuple so the key component can be
	// decoded; colKind materialises the decoded value in the column's
	// declared kind (stored values were coerced to it).
	slot := -1
	for i, c := range idx.columns() {
		if td.schema.ColIndex(c) == colPos {
			slot = i
			break
		}
	}
	colKind := td.schema.Cols[colPos].Type.Kind
	best := sqltypes.Null
	reads := int64(0)
	defer func() { td.heapReads.Add(reads) }()
	visit := func(ids []rowID) bool {
		for _, id := range ids {
			vals, live := td.fetch(id, snap)
			if !live {
				continue
			}
			reads++
			if vals[colPos].IsNull() {
				continue
			}
			v := vals[colPos]
			if best.IsNull() {
				best = v
				continue
			}
			if c, ok := sqltypes.Compare(v, best); ok && ((desc && c > 0) || (!desc && c < 0)) {
				best = v
			}
		}
		return best.IsNull() // stop after the first key with a value
	}
	// visitKey serves one key: decoded when possible, fetched when not.
	// A cancellation mid-walk stops the scan; the sticky interrupt error
	// is picked up by the caller's checkpoint right after the walk.
	visitKey := func(k string, ids []rowID) bool {
		if ctx.intr.check() != nil {
			return false
		}
		if slot >= 0 {
			if v, ok := decodeKeyColumn(k, slot, colKind); ok {
				if v.IsNull() {
					return true // keep scanning past the NULL key
				}
				best = v
				return false
			}
		}
		return visit(ids)
	}
	if er.useLookup {
		ids := lookupVisible(td, idx, er.lookup, snap)
		if len(ids) > 0 {
			visitKey(er.lookup, ids)
		}
		return best
	}
	rix, ok := idx.(rangeIndex)
	if !ok {
		return sqltypes.Null
	}
	scanVisibleRange(td, rix, er.lo, er.hi, desc, snap, visitKey)
	return best
}
